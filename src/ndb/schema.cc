#include "ndb/schema.h"

#include <algorithm>
#include <cassert>

namespace hops::ndb {

bool Schema::Validate(std::string* error) const {
  auto fail = [&](const char* msg) {
    if (error) *error = msg;
    return false;
  };
  if (table_name.empty()) return fail("table name empty");
  if (columns.empty()) return fail("no columns");
  if (primary_key.empty()) return fail("no primary key");
  for (size_t idx : primary_key) {
    if (idx >= columns.size()) return fail("pk column out of range");
  }
  for (size_t idx : partition_key) {
    if (std::find(primary_key.begin(), primary_key.end(), idx) == primary_key.end()) {
      return fail("partition key must be a subset of the primary key");
    }
  }
  if (partition_key.empty() && !requires_explicit_partition) {
    return fail("table needs a partition key or explicit partitioning");
  }
  return true;
}

size_t Schema::ColumnIndex(std::string_view name) const {
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i].name == name) return i;
  }
  assert(false && "unknown column");
  return static_cast<size_t>(-1);
}

}  // namespace hops::ndb
