// Batched database operations (paper §6.3-6.4).
//
// HopsFS keeps round trips off the metadata hot path by staging many
// primary-key reads, partition-pruned scans, and row writes into a single
// batch that the transaction coordinator executes in one network round trip,
// fanning out to the touched partitions in parallel. A ReadBatch may mix
// point gets (per-slot lock mode) and pruned scans across tables; a
// WriteBatch stages inserts/updates/upserts/deletes. Execution groups the
// operations by partition and acquires every row lock in one global
// (table, partition, encoded-key) order, so two concurrent batches can never
// deadlock against each other regardless of the order their ops were staged.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "ndb/partition.h"
#include "ndb/schema.h"
#include "ndb/value.h"

namespace hops::kv {
class OccTxn;
}  // namespace hops::kv

namespace hops::ndb {

class Transaction;

// How a batch's row locks are ordered during acquisition.
//  * kGlobalOrder (default): the whole lock set is sorted into the global
//    (table, partition, encoded-key) order -- deadlock-free against every
//    other kGlobalOrder batch regardless of staging order, including other
//    batches pipelined in the same flush window. The guarantee covers point
//    gets and writes, whose keys are known up front. A *locking* scan's row
//    set is only discovered during execution, so (as in NDB) its locks are
//    taken row-by-row at that point; a locking scan that holds its locks
//    can therefore still deadlock against other lock holders and falls back
//    to the lock-wait timeout. The take-and-release quiesce scan holds at
//    most one transient lock and cannot participate in a cycle.
//  * kStagedOrder: locks are taken exactly in staging order. For callers
//    whose deadlock-freedom argument is an *external* total order (the
//    rename lock phase stages its items in left-ordered path order, the
//    same order per-row lockers like mkdir/create follow), so batching the
//    reads must not re-sort the waits. A kStagedOrder batch always flushes
//    as its own window -- it never shares a flush with other batches, whose
//    global-order guarantee would otherwise be voided.
enum class BatchLockOrder : uint8_t { kGlobalOrder, kStagedOrder };

struct ScanOptions {
  LockMode lock = LockMode::kReadCommitted;
  // Acquire then immediately release each row lock: the subtree-quiesce
  // primitive of paper §6.1 phase 2 (waits out in-flight writers).
  bool take_and_release = false;
  // Optional equality filter on a non-key column: (column index, value).
  std::optional<std::pair<size_t, Value>> eq_filter;
  // Optional arbitrary row predicate, applied after eq_filter.
  std::function<bool(const Row&)> predicate;
};

// A staged set of reads executed together by Transaction::Execute (one
// round trip) or pipelined through Transaction::ExecuteAsync (several
// batches sharing one overlapped round-trip window). Staging calls return a
// slot index; results are read back by slot after execution.
class ReadBatch {
 public:
  explicit ReadBatch(BatchLockOrder lock_order = BatchLockOrder::kGlobalOrder)
      : lock_order_(lock_order) {}

  // Primary-key get; result slot is nullopt when the row does not exist
  // (locked gets still lock the missing key, guarding the insert slot).
  size_t Get(TableId table, Key key, LockMode mode = LockMode::kReadCommitted,
             std::optional<uint64_t> pv = std::nullopt);
  // Partition-pruned prefix scan within the partition `prefix`/`pv` routes to.
  size_t Scan(TableId table, Key prefix, ScanOptions opts = {},
              std::optional<uint64_t> pv = std::nullopt);

  size_t size() const { return ops_.size(); }
  bool empty() const { return ops_.empty(); }
  bool executed() const { return executed_; }
  BatchLockOrder lock_order() const { return lock_order_; }
  // True if any staged scan locks rows (locking or take-and-release scans
  // discover their row set during execution, so their lock waits cannot go
  // through the non-blocking completion-mux lock pass; such windows flush on
  // the submitting thread instead).
  bool has_locking_scan() const {
    for (const auto& op : ops_) {
      if (op.kind == Op::Kind::kScan && op.opts.lock != LockMode::kReadCommitted) return true;
    }
    return false;
  }

  // Result accessors; valid only after a successful Execute (or, on the
  // pipelined path, after the batch's PendingBatch::Wait succeeded).
  const std::optional<Row>& row(size_t slot) const;
  const std::vector<Row>& rows(size_t slot) const;

 private:
  friend class Transaction;
  friend class ::hops::kv::OccTxn;  // the OCC backend executes batches too
  struct Op {
    enum class Kind : uint8_t { kGet, kScan };
    Kind kind = Kind::kGet;
    TableId table = 0;
    Key key;  // full PK for gets, PK prefix for scans
    LockMode mode = LockMode::kReadCommitted;
    ScanOptions opts;  // scans only
    std::optional<uint64_t> pv;
    // Filled during execution:
    uint32_t partition = 0;
    std::string ekey;
    std::optional<Row> row;  // get result
    std::vector<Row> rows;   // scan result
  };
  const BatchLockOrder lock_order_ = BatchLockOrder::kGlobalOrder;
  std::vector<Op> ops_;
  bool executed_ = false;
};

// A staged set of writes locked and validated together by
// Transaction::Execute (the staged rows are applied at commit, as for the
// per-row write calls), or pipelined through Transaction::ExecuteAsync. On
// error the batch is partially staged; callers are
// expected to abort the transaction, as they would after any failed write.
class WriteBatch {
 public:
  void Insert(TableId table, Row row, std::optional<uint64_t> pv = std::nullopt);
  void Update(TableId table, Row row, std::optional<uint64_t> pv = std::nullopt);
  // Upsert (NDB "write").
  void Write(TableId table, Row row, std::optional<uint64_t> pv = std::nullopt);
  void Delete(TableId table, Key key, std::optional<uint64_t> pv = std::nullopt);
  // Delete that succeeds (as a no-op) when the row is already gone.
  void DeleteIfExists(TableId table, Key key, std::optional<uint64_t> pv = std::nullopt);

  size_t size() const { return ops_.size(); }
  bool empty() const { return ops_.empty(); }
  bool executed() const { return executed_; }

 private:
  friend class Transaction;
  friend class ::hops::kv::OccTxn;  // the OCC backend executes batches too
  struct Op {
    enum class Kind : uint8_t { kInsert, kUpdate, kWrite, kDelete };
    Kind kind = Kind::kWrite;
    TableId table = 0;
    Row row;  // empty for deletes
    Key key;  // deletes only (extracted from `row` otherwise)
    std::optional<uint64_t> pv;
    bool ignore_missing = false;  // deletes: tolerate an absent row
    // Filled during execution:
    uint32_t partition = 0;
    std::string ekey;
  };
  std::vector<Op> ops_;
  bool executed_ = false;
};

}  // namespace hops::ndb
