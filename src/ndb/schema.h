// Table schemas with application-defined partitioning (ADP).
//
// As in MySQL Cluster, the partition key must be a subset of the primary key
// so that any primary-key access can be routed to its partition without a
// lookup. Tables may additionally demand an explicit per-access partition
// value: HopsFS uses this for the inode table, whose top levels are
// pseudo-randomly partitioned by child name while deeper levels are
// partitioned by parent inode id (paper §4.2.1).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "ndb/value.h"

namespace hops::ndb {

struct Column {
  std::string name;
  ColumnType type;
};

struct Schema {
  std::string table_name;
  std::vector<Column> columns;
  // Indices (into `columns`) of the primary key, in key order.
  std::vector<size_t> primary_key;
  // Indices of the partition-key columns; must be a subset of primary_key.
  // Ignored for accesses that supply an explicit partition value.
  std::vector<size_t> partition_key;
  // When true, every access must pass an explicit partition value; routing
  // from column values alone would be ambiguous (inode table).
  bool requires_explicit_partition = false;

  bool Validate(std::string* error) const;

  size_t ColumnIndex(std::string_view name) const;  // asserts on miss
};

using TableId = uint32_t;

}  // namespace hops::ndb
