// Cross-transaction completion multiplexer (the shared sendPollNdb reactor).
//
// PR 2's async engine overlaps batches *within* one transaction; a namenode,
// however, runs many concurrent handler threads, each owning its own
// transaction (paper §7.1), and every handler still paid its own poll/flush
// round trip. The CompletionMux is one completion loop per NDB cluster onto
// which ANY transaction's in-flight window is registered: windows from N
// concurrent transactions that are ready together flush as ONE overlapped
// round trip (cost max, not sum), while
//  * the combined lock set of a round is still acquired in the global
//    (table, partition, encoded key) order -- now ACROSS transactions;
//  * per-transaction read-your-writes is preserved (a transaction's window
//    members run in preparation order against its own write set; other
//    transactions' staged writes stay invisible until their commit);
//  * errors stay sticky per handle: a failing member poisons only its own
//    transaction, which still refuses to Commit().
//
// The loop never blocks on a row lock: the combined pass uses non-blocking
// try-acquisition, and a window that hits a contended row is *deferred* --
// its freshly taken locks are handed back, its shared->exclusive upgrades
// atomically stepped back down (a deferred window holds nothing it did not
// already hold), and the window retries on a later round, until the holder
// (whose handler the mux, by construction, is not blocking) commits --
// commits wake the loop immediately -- or until the window's lock-wait
// deadline expires and it fails with the same kLockTimeout an ordinary
// blocked acquisition reports. This keeps the reactor deadlock-free even
// when transactions keep locks across windows in crossing orders.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "ndb/cluster.h"
#include "util/status.h"

namespace hops::ndb {

class CompletionMux {
 public:
  explicit CompletionMux(Cluster* cluster);
  ~CompletionMux();

  CompletionMux(const CompletionMux&) = delete;
  CompletionMux& operator=(const CompletionMux&) = delete;

  // Registers the transaction's current in-flight window with the loop and
  // blocks the calling handler until the window's outcomes are delivered
  // into the transaction (batch_results_). Returns the first member's
  // failure, if any -- the same contract as Transaction::FlushPending. The
  // caller must be the thread driving `tx`; while parked here the mux owns
  // the transaction's state. Teardown contract: the Cluster (and so this
  // mux) must outlive every transaction, i.e. no thread may still be parked
  // here when the cluster is destroyed -- the destructor fails stragglers
  // defensively, but a parked handler at that point already holds dangling
  // cluster references.
  hops::Status SubmitAndWait(Transaction* tx);

  // Kicks the loop so deferred windows retry immediately after a
  // transaction releases its locks (called from Commit/Abort) instead of
  // waiting out the retry interval.
  void NotifyLocksReleased() { wake_.notify_all(); }

  // --- Test hooks ------------------------------------------------------------
  // Pausing stops the loop from starting new rounds (submissions still
  // queue), so a test can force windows from several threads into one
  // deterministic co-flushed round.
  void SetPausedForTesting(bool paused);
  size_t QueuedForTesting() const;

 private:
  struct Submission {
    Transaction* tx = nullptr;
    std::vector<Transaction::InFlightBatch> window;
    std::chrono::steady_clock::time_point deadline;
    bool done = false;
    hops::Status result;
  };

  void Loop();
  // One reactor round over `active`: route, combined global-order try-lock
  // pass, per-window data work, group trip accounting. Completed (or failed)
  // submissions are signalled and removed; deferred ones stay for the next
  // round. Returns the number of windows that flushed (reached the data
  // phase) this round. Each submission is one transaction's WHOLE in-flight
  // window and SubmitAndWait parks the owning thread, so a transaction
  // never has two submissions in a round: > 1 therefore means windows from
  // different transactions merged -- the signal the adaptive gather delay
  // keys off.
  size_t RunRound(std::vector<std::shared_ptr<Submission>>& active);
  void Complete(const std::shared_ptr<Submission>& sub, hops::Status result);

  Cluster* const cluster_;
  mutable std::mutex mu_;
  std::condition_variable wake_;       // loop wake-ups (submission/stop/resume)
  std::condition_variable done_;       // handler wake-ups
  std::deque<std::shared_ptr<Submission>> queue_;
  bool stop_ = false;
  bool paused_ = false;
  std::thread loop_;
};

}  // namespace hops::ndb
