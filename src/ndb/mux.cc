#include "ndb/mux.h"

#include <algorithm>
#include <tuple>

namespace hops::ndb {

CompletionMux::CompletionMux(Cluster* cluster) : cluster_(cluster) {
  loop_ = std::thread([this] { Loop(); });
}

CompletionMux::~CompletionMux() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  wake_.notify_all();
  loop_.join();
}

hops::Status CompletionMux::SubmitAndWait(Transaction* tx) {
  auto sub = std::make_shared<Submission>();
  sub->tx = tx;
  sub->window = std::move(tx->in_flight_);
  tx->in_flight_.clear();
  sub->deadline = std::chrono::steady_clock::now() + cluster_->config().lock_wait_timeout;

  std::unique_lock<std::mutex> lk(mu_);
  if (stop_) {
    auto st = hops::Status::TxAborted("completion mux stopped");
    for (const auto& f : sub->window) tx->batch_results_[f.seq] = st;
    return st;
  }
  queue_.push_back(sub);
  wake_.notify_all();
  done_.wait(lk, [&] { return sub->done; });
  return sub->result;
}

void CompletionMux::SetPausedForTesting(bool paused) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    paused_ = paused;
  }
  wake_.notify_all();
}

size_t CompletionMux::QueuedForTesting() const {
  std::lock_guard<std::mutex> lk(mu_);
  return queue_.size();
}

void CompletionMux::Complete(const std::shared_ptr<Submission>& sub, hops::Status result) {
  std::lock_guard<std::mutex> lk(mu_);
  sub->result = std::move(result);
  sub->done = true;
  done_.notify_all();
}

void CompletionMux::Loop() {
  std::vector<std::shared_ptr<Submission>> active;
  // Did the previous round merge windows from more than one transaction?
  // Under the adaptive gather policy that is the evidence that handlers are
  // submitting close together, so holding the door open a few microseconds
  // will likely merge one more trip into the shared flush.
  bool merged_recently = false;
  for (;;) {
    bool paused;
    {
      std::unique_lock<std::mutex> lk(mu_);
      auto ready = [&] { return stop_ || (!paused_ && !queue_.empty()); };
      if (active.empty()) {
        const auto idle_start = std::chrono::steady_clock::now();
        wake_.wait(lk, ready);
        // A long idle gap ends the burst the gather delay was betting on:
        // the first submission after it must not pay a wait for trailing
        // windows that cannot exist. Short blocks between back-to-back
        // rounds (the bursty regime the gather exists for) keep the signal.
        if (merged_recently &&
            std::chrono::steady_clock::now() - idle_start > std::chrono::milliseconds(100)) {
          merged_recently = false;
        }
      } else if (!ready()) {
        // Deferred windows: retry soon; the conflicting holder's handler is
        // free and will release its locks at commit.
        wake_.wait_for(lk, cluster_->config().mux_retry_interval);
      }
      if (stop_) {
        // Defensive drain (mu_ is already held here, so complete inline
        // rather than through Complete()). A submission still parked at
        // this point means the cluster is being torn down under live
        // transactions -- a caller contract violation -- but fail it
        // cleanly rather than leave the handler parked forever.
        auto st = hops::Status::TxAborted("completion mux stopped");
        while (!queue_.empty()) {
          active.push_back(queue_.front());
          queue_.pop_front();
        }
        for (auto& sub : active) {
          for (const auto& f : sub->window) sub->tx->batch_results_[f.seq] = st;
          sub->result = st;
          sub->done = true;
        }
        done_.notify_all();
        return;
      }
      paused = paused_;
      if (!paused) {
        size_t popped = 0;
        while (!queue_.empty()) {
          active.push_back(queue_.front());
          queue_.pop_front();
          popped++;
        }
        // Gate on a fresh submission this wakeup: a retry pass over only
        // deferred windows is waiting out a lock holder, not trailing
        // submissions -- gathering there would just delay the retry and
        // inflate the stat.
        if (cluster_->config().mux_adaptive_gather && merged_recently && popped > 0) {
          // Gather: recent rounds merged, so wait briefly for more windows
          // before flushing. A submission, stop or pause wakes us early; an
          // idle cluster (no recent merge) never reaches this wait.
          cluster_->stats_.mux_gather_waits.fetch_add(1, std::memory_order_relaxed);
          wake_.wait_for(lk, cluster_->config().mux_gather_delay,
                         [&] { return stop_ || paused_ || !queue_.empty(); });
          size_t gathered = 0;
          if (!stop_ && !paused_) {
            while (!queue_.empty()) {
              active.push_back(queue_.front());
              queue_.pop_front();
              gathered++;
            }
          }
          if (gathered > 0) {
            cluster_->stats_.mux_gathered_windows.fetch_add(gathered,
                                                            std::memory_order_relaxed);
          }
          paused = paused_;  // pausing mid-gather parks the round, not runs it
          if (stop_) continue;  // the top of the loop runs the stop drain
        }
      }
    }
    if (paused || active.empty()) continue;
    merged_recently = RunRound(active) > 1;
  }
}

size_t CompletionMux::RunRound(std::vector<std::shared_ptr<Submission>>& active) {
  const size_t n = active.size();
  constexpr size_t kNone = static_cast<size_t>(-1);
  struct RoundState {
    std::vector<std::vector<Transaction::LockRequest>> plans;  // per window member
    std::vector<bool> pays;
    bool routed = false;      // routing succeeded this round
    bool deferred = false;    // hit a contended row; retry next round
    bool finished = false;    // completed (result delivered) this round
    bool solo_rt = false;     // would pay its own trip flushing alone
    // Locks newly taken (or upgraded shared->exclusive) for this window in
    // this round's pass, handed back (or stepped back down) if the window
    // defers -- a deferred window holds nothing it did not already hold.
    std::vector<std::tuple<TableId, uint32_t, std::string>> fresh;
    std::vector<std::tuple<TableId, uint32_t, std::string>> upgraded;
    std::vector<Access> accesses;
    hops::Status result;
  };
  std::vector<RoundState> st(n);

  // Phase 1: route every member of every window; build per-window lock
  // plans. A routing failure fails only that window (every member reports
  // the same cause), exactly as a per-transaction flush would.
  for (size_t i = 0; i < n; ++i) {
    Submission& sub = *active[i];
    Transaction* tx = sub.tx;
    RoundState& rs = st[i];
    rs.plans.assign(sub.window.size(), {});
    hops::Status route;
    for (size_t m = 0; m < sub.window.size() && route.ok(); ++m) {
      auto& f = sub.window[m];
      route = f.read != nullptr ? tx->RouteReadBatch(*f.read, rs.plans[m])
                                : tx->RouteWriteBatch(*f.write, rs.plans[m]);
    }
    if (!route.ok()) {
      for (const auto& f : sub.window) tx->batch_results_[f.seq] = route;
      rs.finished = true;
      rs.result = route;
      continue;
    }
    rs.routed = true;
    rs.pays = tx->ComputeWindowPays(sub.window, rs.plans);
    // A window pays its own trip flushing alone exactly when any member
    // pays (read members always do; a write member iff some lock is
    // genuinely fresh -- the same predicate ComputeWindowPays applies).
    rs.solo_rt = std::find(rs.pays.begin(), rs.pays.end(), true) != rs.pays.end();
  }

  // Phase 2: ONE combined lock pass in the global (table, partition,
  // encoded key) order across every transaction in the round. Acquisition
  // never blocks: a contended request defers its whole window -- freshly
  // taken locks are handed back so the loop holds no lock any parked
  // handler could be waiting to see released -- and the window retries next
  // round (bounded by its lock-wait deadline).
  struct Entry {
    size_t sub;
    const Transaction::LockRequest* req;
  };
  std::vector<Entry> combined;
  for (size_t i = 0; i < n; ++i) {
    if (!st[i].routed) continue;
    for (const auto& plan : st[i].plans) {
      for (const auto& req : plan) {
        if (req.mode != LockMode::kReadCommitted) combined.push_back(Entry{i, &req});
      }
    }
  }
  std::stable_sort(combined.begin(), combined.end(), [](const Entry& a, const Entry& b) {
    return std::tie(a.req->table, a.req->partition, a.req->ekey) <
           std::tie(b.req->table, b.req->partition, b.req->ekey);
  });
  for (const Entry& e : combined) {
    RoundState& rs = st[e.sub];
    if (!rs.routed || rs.deferred) continue;
    Transaction* tx = active[e.sub]->tx;
    bool fresh = false, upgraded = false;
    if (tx->TryAcquireRowLock(e.req->table, e.req->partition, e.req->ekey, e.req->mode,
                              &fresh, &upgraded)) {
      if (fresh) rs.fresh.emplace_back(e.req->table, e.req->partition, e.req->ekey);
      if (upgraded) rs.upgraded.emplace_back(e.req->table, e.req->partition, e.req->ekey);
    } else {
      rs.deferred = true;
      for (const auto& [t, p, k] : rs.fresh) tx->DropRowLock(t, p, k);
      for (const auto& [t, p, k] : rs.upgraded) tx->DowngradeRowLock(t, p, k);
      rs.fresh.clear();
      rs.upgraded.clear();
    }
  }

  // Deferred windows past their lock-wait deadline time out exactly like a
  // blocked per-transaction acquisition: the transaction aborts and every
  // member reports kLockTimeout.
  const auto now = std::chrono::steady_clock::now();
  for (size_t i = 0; i < n; ++i) {
    if (!st[i].deferred || now < active[i]->deadline) continue;
    auto timeout = hops::Status::LockTimeout("row lock wait timed out");
    Transaction* tx = active[i]->tx;
    for (const auto& f : active[i]->window) tx->batch_results_[f.seq] = timeout;
    cluster_->stats_.lock_timeouts.fetch_add(1, std::memory_order_relaxed);
    tx->Abort();
    st[i].deferred = false;
    st[i].finished = true;
    st[i].result = timeout;
  }

  // Phase 3: data work per window, each transaction against its own write
  // set (read-your-writes stays per-transaction; other members' staged
  // writes are invisible until their commit). Errors poison only the owning
  // transaction.
  size_t carrier = kNone, flushed = 0, paying = 0, total_sync = 0;
  for (size_t i = 0; i < n; ++i) {
    RoundState& rs = st[i];
    if (!rs.routed || rs.deferred || rs.finished) continue;
    Submission& sub = *active[i];
    size_t sync_equiv = 0, read_members = 0;
    rs.result = sub.tx->RunWindowData(sub.window, rs.pays, rs.accesses, &sync_equiv,
                                      &read_members);
    rs.finished = true;
    flushed++;
    total_sync += sync_equiv;
    if (rs.solo_rt) {
      paying++;
      if (carrier == kNone) carrier = i;
    }
  }

  // Accounting: the whole round is ONE shared round trip (if any window
  // would have paid one), assigned to the first paying window; every other
  // paying window's opening access is marked co-scheduled so trace replay
  // still sees a window boundary but charges no second trip. The saving is
  // recorded exactly once for the round -- no per-member double counting --
  // preserving round_trips + overlapped_round_trips == sync-equivalent
  // trips.
  const uint32_t rt = carrier != kNone ? 1 : 0;
  if (carrier != kNone && !st[carrier].accesses.empty()) {
    st[carrier].accesses.front().round_trips = rt;
  }
  for (size_t i = 0; i < n; ++i) {
    if (i == carrier || !st[i].finished || !st[i].solo_rt || st[i].accesses.empty()) continue;
    if (!st[i].routed) continue;  // route failures never reached the wire
    st[i].accesses.front().co_scheduled = true;
  }
  auto& s = cluster_->stats_;
  if (rt > 0) s.round_trips.fetch_add(rt, std::memory_order_relaxed);
  if (rt > 0 && total_sync > rt) {
    s.overlapped_round_trips.fetch_add(total_sync - rt, std::memory_order_relaxed);
  }
  if (paying > rt) {
    s.cross_tx_overlapped_round_trips.fetch_add(paying - rt, std::memory_order_relaxed);
  }
  if (flushed > 0) {
    s.mux_rounds.fetch_add(1, std::memory_order_relaxed);
    s.mux_windows.fetch_add(flushed, std::memory_order_relaxed);
  }

  // Deliver traces and results, keep deferred windows for the next round.
  std::vector<std::shared_ptr<Submission>> remaining;
  for (size_t i = 0; i < n; ++i) {
    if (st[i].finished) {
      Transaction* tx = active[i]->tx;
      if (tx->trace_enabled_) {
        for (auto& a : st[i].accesses) tx->trace_.accesses.push_back(std::move(a));
      }
      Complete(active[i], st[i].result);
    } else {
      remaining.push_back(active[i]);
    }
  }
  active = std::move(remaining);
  return flushed;
}

}  // namespace hops::ndb
