// The NDB cluster engine: shared-nothing partitioned storage, node groups
// with replication, transaction coordinators at every datanode, and
// transactions with row locks + two-phase commit.
//
// This is the substrate the paper stores HopsFS metadata in (§2.2):
//  * tables are hash partitioned (application-defined partitioning supported
//    through explicit per-access partition values);
//  * partitions are assigned to node groups of `replication` datanodes; a
//    partition is available while any node of its group is alive, and the
//    cluster is unavailable if a whole group dies (§7.6.2);
//  * transactions start on a coordinator chosen by a distribution-aware hint
//    so single-partition work is node-local (§2.2, DAT);
//  * isolation is read-committed with explicit shared/exclusive row locks
//    (§2.2.2); deadlock resolution is by lock-wait timeout;
//  * a transaction coordinator failure aborts its transactions, which the
//    namenodes transparently retry (§7.6.2).
#pragma once

#include <atomic>
#include <chrono>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ndb/batch.h"
#include "ndb/cost.h"
#include "ndb/fault.h"
#include "ndb/partition.h"
#include "ndb/schema.h"
#include "ndb/value.h"
#include "util/status.h"

namespace hops::ndb {

struct ClusterConfig {
  uint32_t num_datanodes = 4;
  uint32_t replication = 2;          // NDB default (NoOfReplicas)
  uint32_t partitions_per_table = 0; // 0 => 2 * num_datanodes
  std::chrono::milliseconds lock_wait_timeout{1200};  // paper §7.6.2 default
  uint32_t threads_per_datanode = 22;  // §7.1; consumed by the simulator
  // Prepared-but-unflushed batches a transaction may hold (NDB's
  // executeAsynchPrepare window). Preparing one more forces a flush of the
  // whole window, so a transaction never exceeds this many in flight.
  uint32_t max_in_flight_batches = 8;
  // Cross-transaction completion mux (the shared sendPollNdb reactor): one
  // completion loop per cluster onto which every transaction's in-flight
  // windows are registered, so windows from N concurrent handler
  // transactions flush as one overlapped round trip instead of N. false =
  // every transaction flushes its own windows (the per-transaction path,
  // kept selectable for comparison benches).
  bool use_completion_mux = true;
  // How often the mux loop retries windows deferred on a row-lock conflict
  // (the conflict holder's handler is free to commit meanwhile; retries are
  // bounded by lock_wait_timeout).
  std::chrono::microseconds mux_retry_interval{100};
  // Adaptive gather delay: when the previous mux round merged windows from
  // more than one transaction, the loop waits up to mux_gather_delay for
  // further submissions before flushing the next round -- under load the
  // next window is usually microseconds away, and gathering it merges one
  // more trip into the shared flush. Rounds after a no-merge round flush
  // eagerly, so an idle or single-handler cluster never pays the delay.
  bool mux_adaptive_gather = false;
  // When true (the default), mux_adaptive_gather above is a placeholder the
  // embedding layer may resolve from its own concurrency knowledge --
  // fs::MiniCluster turns the gather delay on once the namenode handler pool
  // is wide enough that trailing windows are usually microseconds away (see
  // bench_fig07's sweep). Code that sets mux_adaptive_gather explicitly
  // should clear this so the policy leaves the choice alone. The raw mux
  // loop only ever reads mux_adaptive_gather.
  bool mux_adaptive_gather_auto = true;
  std::chrono::microseconds mux_gather_delay{4};
};

// Distribution-aware transaction hint: start the coordinator on the primary
// datanode of the partition that `partition_value` routes to in `table`.
struct TxHint {
  TableId table = 0;
  uint64_t partition_value = 0;
};

class Cluster;
class CompletionMux;
class Transaction;

// Future-like handle to a batch submitted through Transaction::ExecuteAsync
// (the executeAsynchPrepare/sendPollNdb idiom). The handle is cheap to copy
// and outlives nothing: it only names the batch within its transaction. The
// staged ReadBatch/WriteBatch object must stay alive until Wait() returns.
class PendingBatch {
 public:
  PendingBatch() = default;

  bool valid() const { return tx_ != nullptr; }
  // True once the batch's flush window executed (result available).
  bool done() const;
  // Flushes the transaction's in-flight window if this batch is still
  // pending, then returns this batch's outcome. Idempotent.
  hops::Status Wait();

 private:
  friend class Transaction;
  PendingBatch(Transaction* tx, uint64_t seq) : tx_(tx), seq_(seq) {}
  Transaction* tx_ = nullptr;
  uint64_t seq_ = 0;
};

class Transaction {
 public:
  ~Transaction();
  Transaction(const Transaction&) = delete;
  Transaction& operator=(const Transaction&) = delete;

  TxId id() const { return id_; }
  uint32_t coordinator() const { return coordinator_; }

  // --- Primary-key operations ---------------------------------------------
  // `pv` overrides the partition routing value (application-defined
  // partitioning); tables with requires_explicit_partition demand it.
  hops::Result<Row> Read(TableId table, const Key& key, LockMode mode,
                         std::optional<uint64_t> pv = std::nullopt);
  // One round trip for any number of keys; result[i] is nullopt when key i
  // does not exist (the inode-hint-cache miss signal, paper §5.1.1).
  hops::Result<std::vector<std::optional<Row>>> BatchRead(
      TableId table, const std::vector<Key>& keys, LockMode mode,
      const std::vector<uint64_t>* pvs = nullptr);
  hops::Status Insert(TableId table, Row row, std::optional<uint64_t> pv = std::nullopt);
  hops::Status Update(TableId table, Row row, std::optional<uint64_t> pv = std::nullopt);
  // Upsert (NDB "write").
  hops::Status Write(TableId table, Row row, std::optional<uint64_t> pv = std::nullopt);
  hops::Status Delete(TableId table, const Key& key, std::optional<uint64_t> pv = std::nullopt);

  // --- Batched operations ----------------------------------------------------
  // Executes every staged read of `batch` in one simulated round trip: ops
  // are grouped by partition, row locks are acquired in the global
  // (table, partition, encoded key) order, and the coordinator fans out to
  // the touched partitions in parallel. Results are read back through the
  // batch's slot accessors. A thin wrapper over ExecuteAsync + immediate
  // Wait, so a sync Execute also flushes any batches already in flight.
  hops::Status Execute(ReadBatch& batch);
  // Locks and stages every write of `batch` in one round trip; the staged
  // rows are applied atomically at Commit() like any other write.
  hops::Status Execute(WriteBatch& batch);

  // --- Pipelined (async) batch execution -------------------------------------
  // Prepares `batch` without executing it and returns a future-like handle
  // (NDB's executeAsynchPrepare). Prepared batches accumulate in an
  // in-flight window that is flushed as one *overlapped* round trip -- cost
  // max, not sum, of the member trips -- when any member's Wait() is called,
  // when a synchronous operation needs the transaction's state, at Commit(),
  // or when the window reaches ClusterConfig::max_in_flight_batches
  // (sendPollNdb). A flush routes every op of every in-flight batch first,
  // then acquires the *combined* lock set in the global (table, partition,
  // encoded key) order -- so the deadlock-freedom guarantee holds across
  // in-flight batches, not just within one -- and finally runs each batch's
  // data work in preparation order (later batches observe earlier batches'
  // staged writes: read-your-writes across the pipeline). Batches prepared
  // after a failed one complete with kTxAborted; errors surface at Wait(),
  // and a transaction with any failed batch refuses to Commit() (the
  // failure leaves that batch partially staged).
  PendingBatch ExecuteAsync(ReadBatch& batch);
  PendingBatch ExecuteAsync(WriteBatch& batch);
  // Prepared batches not yet flushed (bounded by max_in_flight_batches).
  size_t InFlightBatches() const { return in_flight_.size(); }
  // Flushes the in-flight window now; returns the first member's failure, if
  // any (individual outcomes stay readable through their handles).
  hops::Status FlushPending();
  // Releases a row lock this transaction holds without waiting for
  // commit/abort (NDB's unlockable reads). Only safe for a lock whose
  // protected value the caller discarded without acting on it -- e.g. a
  // batched locked read issued against a stale hint-cache entry. Rows with
  // staged writes are never unlocked; unknown locks are a no-op.
  void UnlockRow(TableId table, const Key& key, std::optional<uint64_t> pv = std::nullopt);

  // --- Scans ----------------------------------------------------------------
  using ScanOptions = hops::ndb::ScanOptions;
  // Partition-pruned index scan: rows whose PK starts with `prefix`, within
  // the single partition the prefix (or explicit `pv`) routes to. `pv` must
  // be used consistently with the values used at insert time.
  hops::Result<std::vector<Row>> Ppis(TableId table, const Key& prefix,
                                      const ScanOptions& opts = {},
                                      std::optional<uint64_t> pv = std::nullopt);
  // Ordered-index scan over every partition (PK prefix may be empty).
  hops::Result<std::vector<Row>> IndexScan(TableId table, const Key& prefix,
                                           const ScanOptions& opts = {});
  hops::Result<std::vector<Row>> FullTableScan(TableId table, const ScanOptions& opts = {});

  // --- Outcome ---------------------------------------------------------------
  hops::Status Commit();
  void Abort();
  bool active() const { return state_ == State::kActive; }

  // --- Cost trace -------------------------------------------------------------
  void EnableTrace() { trace_enabled_ = true; }
  const CostTrace& trace() const { return trace_; }
  // Marks every access this transaction records from here on as background
  // work (the asynchronous intent-apply stage): already acknowledged to the
  // client, so the DES model stops the op's latency clock at the first
  // background access while the drain still occupies database stations.
  void SetBackground(bool background) { background_ = background; }
  // Keeps this transaction's flush windows on the calling thread instead of
  // the shared completion loop: no merging with other transactions' round
  // trips, but also no queueing behind them. For latency-critical
  // control-path transactions (e.g. the intent log's acknowledged append)
  // whose wait in the mux line would dwarf their own work. Lock waits then
  // block the calling thread, exactly like a mux-less cluster.
  void SetLatencySensitive(bool v) { latency_sensitive_ = v; }

 private:
  friend class Cluster;
  friend class CompletionMux;
  friend class PendingBatch;
  enum class State { kActive, kCommitted, kAborted };

  Transaction(Cluster* cluster, TxId id, uint32_t coordinator);

  hops::Status CheckUsable(uint32_t partition);
  // The chaos harness's fault hook (see ndb/fault.h). `abort_tx` mirrors the
  // coordinator-failure semantics of the per-row path; batch routing and
  // scans report the error without aborting, like their real failure modes.
  hops::Status InjectFault(TableId table, bool abort_tx);
  hops::Status AcquireRowLock(TableId table, uint32_t partition, const std::string& ekey,
                              LockMode mode);
  // One row lock wanted by a batch. Batches acquire their whole lock set
  // through AcquireLockSet, which sorts by (table, partition, ekey) --
  // the global deadlock-free order -- and dedupes to the strongest mode.
  struct LockRequest {
    TableId table;
    uint32_t partition;
    std::string ekey;
    LockMode mode;
  };
  hops::Status AcquireLockSet(std::vector<LockRequest> requests, uint32_t* fresh_locks);
  // Scan of one partition: committed snapshot merged with this transaction's
  // staged writes, filters applied, per-row locks honored. `examined` counts
  // rows touched on the partition (for cost accounting).
  hops::Result<std::vector<Row>> ScanOnePartition(TableId table, uint32_t partition,
                                                  const std::string& eprefix,
                                                  const ScanOptions& opts,
                                                  uint32_t* examined);
  void RecordAccess(AccessKind kind, TableId table,
                    std::initializer_list<PartTouch> parts, uint32_t round_trips = 1);
  void RecordAccess(AccessKind kind, TableId table, std::vector<PartTouch> parts,
                    uint32_t round_trips = 1);
  hops::Result<std::vector<Row>> ScanPartitions(TableId table,
                                                const std::vector<uint32_t>& partitions,
                                                const Key& prefix, const ScanOptions& opts,
                                                AccessKind kind, bool full_scan);

  // --- Pipelined execution internals ---------------------------------------
  // One batch prepared by ExecuteAsync, awaiting the window flush.
  struct InFlightBatch {
    uint64_t seq = 0;
    ReadBatch* read = nullptr;    // exactly one of read/write is set
    WriteBatch* write = nullptr;
  };
  // Registers a prepared batch (or an immediate prepare-time outcome) and
  // flushes the window when it reaches the configured in-flight limit.
  PendingBatch PrepareBatch(ReadBatch* read, WriteBatch* write);
  hops::Status WaitBatch(uint64_t seq);
  bool BatchDone(uint64_t seq) const { return batch_results_.count(seq) > 0; }
  // Routing (partition + encoded key per op) and lock-plan construction.
  hops::Status RouteReadBatch(ReadBatch& batch, std::vector<LockRequest>& plan);
  hops::Status RouteWriteBatch(WriteBatch& batch, std::vector<LockRequest>& plan);
  // Data work for an already-routed, already-locked batch. Appends the
  // batch's accesses (all with round_trips = 0; the flush assigns the
  // carrying trip) and bumps the per-batch cluster counters.
  hops::Status RunReadBatchData(ReadBatch& batch, std::vector<Access>& accesses);
  hops::Status RunWriteBatchData(WriteBatch& batch, std::vector<Access>& accesses);
  // True when the current window may flush through the shared completion
  // mux: no staged-order member (external lock order must not mix with the
  // mux's global-order pass) and no locking scan (whose row set -- and so
  // its lock waits -- only appears during execution, which would block the
  // shared loop).
  bool WindowMuxEligible() const;
  // Non-blocking row-lock acquisition for the mux's combined lock pass.
  // Returns false (without waiting) when the lock is contended; on success
  // `fresh` reports whether the transaction held nothing on that row before
  // and `upgraded` that a held shared lock was stepped up to exclusive --
  // so a deferring mux round knows exactly which locks to hand back or
  // step back down.
  bool TryAcquireRowLock(TableId table, uint32_t partition, const std::string& ekey,
                         LockMode mode, bool* fresh, bool* upgraded);
  // Releases one row lock (deferred-window rollback; no staged-write check).
  void DropRowLock(TableId table, uint32_t partition, const std::string& ekey);
  // Steps an exclusive lock back down to the shared mode held before an
  // upgrade (deferred-window rollback; atomic, no steal window).
  void DowngradeRowLock(TableId table, uint32_t partition, const std::string& ekey);
  // Phase-3 data work for a whole routed + locked window, shared by the
  // local flush and the mux: runs each member in preparation order, stores
  // outcomes in batch_results_, poisons pipeline_error_ on the first
  // failure (members behind it report kTxAborted), counts the
  // sync-equivalent trips of the members that ran, and appends the window's
  // accesses. Returns the first member failure, if any.
  hops::Status RunWindowData(std::vector<InFlightBatch>& flight, const std::vector<bool>& pays,
                             std::vector<Access>& accesses, size_t* sync_equiv,
                             size_t* read_members);
  // Which members would have paid their own round trip on the synchronous
  // path? Read batches always do; a write batch only if some lock in its
  // plan is not already exclusive-held -- by the transaction, or by an
  // earlier member of the same window.
  std::vector<bool> ComputeWindowPays(const std::vector<InFlightBatch>& flight,
                                      const std::vector<std::vector<LockRequest>>& plans) const;

  struct StagedWrite {
    bool is_delete = false;
    Row row;              // empty for deletes
    uint32_t partition = 0;
  };

  Cluster* cluster_;
  const TxId id_;
  const uint32_t coordinator_;
  // Shared completion loop this transaction's windows flush through
  // (attached at Begin when the cluster runs one; null = per-transaction
  // flushing).
  CompletionMux* mux_ = nullptr;
  State state_ = State::kActive;
  // (table, partition, encoded key) -> strongest mode held. The map form
  // dedupes repeated acquisitions and tracks shared->exclusive upgrades.
  std::map<std::tuple<TableId, uint32_t, std::string>, LockMode> held_locks_;
  // (table, encoded key) -> staged write; ordered map keeps commit
  // application deterministic.
  std::map<std::pair<TableId, std::string>, StagedWrite> write_set_;
  // Prepared batches awaiting the window flush, in preparation order.
  std::vector<InFlightBatch> in_flight_;
  // Outcomes of flushed (or rejected-at-prepare) batches, by sequence.
  std::map<uint64_t, hops::Status> batch_results_;
  // First batch failure of any flush window. A failed batch leaves its
  // writes partially staged, so Commit() refuses the transaction even when
  // the failure happened in an auto-flushed window the caller never
  // Waited on.
  hops::Status pipeline_error_;
  uint64_t next_batch_seq_ = 1;
  bool trace_enabled_ = false;
  bool background_ = false;
  bool latency_sensitive_ = false;  // flush solo, never through the mux
  CostTrace trace_;
};

class Cluster {
 public:
  explicit Cluster(ClusterConfig config);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  // The shared cross-transaction completion loop; null when the cluster was
  // configured with use_completion_mux = false (per-transaction flushing).
  CompletionMux* mux() const { return mux_.get(); }

  hops::Result<TableId> CreateTable(Schema schema);
  const Schema& schema(TableId table) const;
  std::optional<TableId> FindTable(std::string_view name) const;

  // Starts a transaction; with a hint the coordinator is the primary node of
  // the hinted partition (distribution-aware transaction), otherwise an
  // alive node is picked round-robin.
  std::unique_ptr<Transaction> Begin(std::optional<TxHint> hint = std::nullopt);

  // --- Failure injection -----------------------------------------------------
  // Seeded per-table transient errors and latency spikes (chaos harness);
  // disarmed by default, costing one relaxed load per access.
  FaultInjector& fault_injector() { return fault_injector_; }
  void KillDatanode(uint32_t node);
  void RestartDatanode(uint32_t node);
  bool IsAlive(uint32_t node) const;
  uint32_t NumAliveNodes() const;
  // True while every node group has at least one alive member.
  bool Available() const;

  // --- Topology ---------------------------------------------------------------
  const ClusterConfig& config() const { return config_; }
  uint32_t num_datanodes() const { return config_.num_datanodes; }
  uint32_t num_partitions() const { return num_partitions_; }
  uint32_t num_node_groups() const { return num_groups_; }
  uint32_t PartitionForValue(uint64_t partition_value) const;
  // Primary (first alive) node of the partition's group; nullopt if the
  // whole group is dead.
  std::optional<uint32_t> PrimaryNode(uint32_t partition) const;

  // --- Introspection ----------------------------------------------------------
  ClusterStats StatsSnapshot() const;
  void ResetStats();
  size_t TableRowCount(TableId table) const;
  // Replicated bytes: (payload + per-row overhead) * replication degree.
  size_t TotalMemoryBytes() const;
  size_t TableMemoryBytes(TableId table) const;
  // Monotonic epoch, bumped every kGlobalCheckpointCommits commits --
  // the global-checkpoint analogue used by recovery-oriented tests.
  uint64_t GlobalCheckpointEpoch() const { return gcp_epoch_.load(std::memory_order_relaxed); }

  // Per-row overhead modelling NDB page/index/transaction bookkeeping
  // (tuple header + hash-index entry + page amortization). With this value
  // a paper-example file (inode + 2 blocks + 6 replicas + 2 lookups,
  // metadata replicated twice) costs ~1.5KB, matching §7.3's 1552 bytes.
  static constexpr size_t kPerRowOverheadBytes = 28;

 private:
  friend class Transaction;
  friend class CompletionMux;
  static constexpr uint64_t kGlobalCheckpointCommits = 256;

  struct Table {
    Schema schema;
    std::vector<std::unique_ptr<Partition>> partitions;
    // For each partition-key column: its position within the PK tuple.
    std::vector<size_t> part_pos_in_pk;
  };

  const Table& table(TableId id) const;
  Table& table(TableId id);
  // Routes an access: explicit pv wins; otherwise derives the partition from
  // the partition-key columns present in `pk_values` (a full key or prefix).
  hops::Result<uint32_t> Route(const Table& t, const Key& pk_values,
                               std::optional<uint64_t> pv) const;
  uint32_t GroupOf(uint32_t partition) const { return partition % num_groups_; }
  bool PartitionAvailable(uint32_t partition) const;

  ClusterConfig config_;
  FaultInjector fault_injector_;
  std::unique_ptr<CompletionMux> mux_;
  uint32_t num_partitions_;
  uint32_t num_groups_;
  std::vector<std::unique_ptr<Table>> tables_;
  mutable std::mutex tables_mu_;  // guards the tables_ vector (not contents)
  std::vector<std::atomic<bool>> node_alive_;
  std::atomic<TxId> next_tx_id_{1};
  std::atomic<uint32_t> rr_coordinator_{0};
  std::atomic<uint64_t> gcp_epoch_{1};

  // Stats counters (relaxed; read via StatsSnapshot).
  struct AtomicStats {
    std::atomic<uint64_t> pk_reads{0}, batch_reads{0}, batch_writes{0}, ppis_scans{0},
        index_scans{0}, full_table_scans{0}, commits{0}, aborts{0}, rows_read{0},
        rows_written{0}, lock_timeouts{0}, lock_waits{0}, round_trips{0},
        overlapped_round_trips{0}, cross_tx_overlapped_round_trips{0}, mux_rounds{0},
        mux_windows{0}, mux_gather_waits{0}, mux_gathered_windows{0};
  };
  mutable AtomicStats stats_;
};

}  // namespace hops::ndb
