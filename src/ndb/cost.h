// Cost accounting for database accesses.
//
// The engine performs no artificial sleeps; instead every transaction can
// record a trace of its database accesses (kind, partitions and datanodes
// touched, rows moved, round trips, locality). Benchmarks convert traces to
// virtual time, and the discrete-event simulator (src/sim) replays them with
// queueing to reproduce the paper's cluster-scale results. The cost ordering
// of Figure 2 -- PK < batched PK < PPIS < IS < FTS -- emerges from the
// round-trip and fan-out accounting here.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hops::ndb {

enum class AccessKind : uint8_t {
  kPkRead,         // single-row primary key read
  kPkWrite,        // eager lock acquisition for a staged write
  kBatchRead,      // batched primary key reads (one round trip)
  kPpis,           // partition-pruned index scan (single partition)
  kIndexScan,      // ordered index scan over all partitions
  kFullTableScan,  // unindexed scan over all partitions
  kCommit,         // 2PC flush of the write set
};

std::string_view AccessKindName(AccessKind kind);

// One partition's share of a logical database access.
struct PartTouch {
  uint32_t partition = 0;
  uint32_t node = 0;      // primary NDB datanode serving the partition
  uint32_t rows = 0;      // rows examined/written on this partition
  bool local = false;     // true if `node` is the transaction coordinator
};

// One logical database access (one client->TC round trip; the TC fans out to
// the touched partitions in parallel).
struct Access {
  AccessKind kind{};
  uint32_t table = 0;
  uint32_t round_trips = 1;
  // True when this access opens a flush window that rode a round trip paid
  // by ANOTHER transaction's window in the same completion-mux round: the
  // trip is shared, so round_trips stays 0, but the access still starts its
  // own scatter wave. The DES model costs such co-scheduled windows as max,
  // not sum, of the merged trips.
  bool co_scheduled = false;
  // True when this access ran on the asynchronous intent-apply stage rather
  // than on the acknowledged client path: the op was already acknowledged at
  // intent durability, so the DES model records the op's latency at the
  // first background access and lets the remaining accesses drain without
  // extending the acknowledged latency (they still occupy database stations).
  bool background = false;
  std::vector<PartTouch> parts;

  uint32_t TotalRows() const {
    uint32_t n = 0;
    for (const auto& p : parts) n += p.rows;
    return n;
  }
};

struct CostTrace {
  std::vector<Access> accesses;
  uint32_t coordinator_node = 0;

  void Clear() { accesses.clear(); }

  uint32_t TotalRoundTrips() const {
    uint32_t n = 0;
    for (const auto& a : accesses) n += a.round_trips;
    return n;
  }
  uint32_t TotalRows() const {
    uint32_t n = 0;
    for (const auto& a : accesses) n += a.TotalRows();
    return n;
  }
};

// Running totals kept by the cluster (always on; lock-free counters).
struct ClusterStats {
  uint64_t pk_reads = 0;
  uint64_t batch_reads = 0;   // ReadBatch / BatchRead executions (one each)
  uint64_t batch_writes = 0;  // WriteBatch executions (one each)
  uint64_t ppis_scans = 0;
  uint64_t index_scans = 0;
  uint64_t full_table_scans = 0;
  uint64_t commits = 0;
  uint64_t aborts = 0;
  uint64_t rows_read = 0;
  uint64_t rows_written = 0;
  uint64_t lock_timeouts = 0;
  // Row-lock acquisitions that found the row contended and had to block
  // (whether eventually granted or timed out). A workload whose writers
  // share no rows keeps this at 0; a global serialization point -- e.g. a
  // counter row every transaction X-locks to commit -- shows up here first,
  // long before lock_timeouts. The hint-log sharding win shows up here.
  uint64_t lock_waits = 0;
  // Simulated namenode<->database round trips across all accesses (batched
  // operations count once however many rows/partitions they touch; commits
  // count their 2PC trips). The batching win shows up here.
  uint64_t round_trips = 0;
  // Round trips *saved* by the async pipelined engine: every flush of N > 1
  // in-flight batches costs one overlapped round-trip window where the
  // synchronous path would have paid N sequential trips, so this counter
  // accumulates N - 1 per flush. `round_trips + overlapped_round_trips` is
  // the sync-equivalent trip count -- an invariant that holds whether a
  // window flushed alone or merged with other transactions' windows in a
  // completion-mux round (a merged round adds its whole saving here exactly
  // once, never per member). The pipelining win shows up here.
  uint64_t overlapped_round_trips = 0;
  // The cross-transaction share of the saving: trips that windows from
  // DIFFERENT transactions would each have paid flushing alone but that one
  // completion-mux round carried as a single shared trip. Always <=
  // overlapped_round_trips (which also contains the within-transaction
  // window overlap).
  uint64_t cross_tx_overlapped_round_trips = 0;
  // Completion-mux activity: rounds that completed at least one window, and
  // windows flushed through the mux. windows > rounds means windows from
  // concurrent transactions actually merged -- windows / rounds is the
  // merge rate the adaptive gather delay exists to raise.
  uint64_t mux_rounds = 0;
  uint64_t mux_windows = 0;
  // Adaptive gather (ClusterConfig::mux_adaptive_gather): rounds where the
  // loop briefly held the door open for more windows because recent rounds
  // merged, and the extra windows that actually arrived during those waits
  // (each one is a round trip merged away that an eager flush would have
  // paid).
  uint64_t mux_gather_waits = 0;
  uint64_t mux_gathered_windows = 0;
  // Optimistic-concurrency engine (kv::OccEngine) only; always 0 under the
  // pessimistic 2PL engine. A conflict is one commit whose validation failed
  // (the transaction surfaces kConflict and the namenode retries with a
  // capped backoff), split by what invalidated it: a point read whose row
  // version changed (occ_key_conflicts) or a recorded scan range into which
  // a newer version landed -- the phantom case (occ_range_conflicts). The
  // 2PL-vs-OCC ablation reads these next to lock_waits/lock_timeouts.
  uint64_t occ_conflicts = 0;
  uint64_t occ_key_conflicts = 0;
  uint64_t occ_range_conflicts = 0;
};

}  // namespace hops::ndb
