#include "ndb/partition.h"

#include <algorithm>
#include <cassert>

namespace hops::ndb {

namespace {
size_t RowBytes(const std::string& ekey, const Row& row) {
  size_t n = ekey.size();
  for (const auto& v : row) n += v.FootprintBytes();
  return n;
}
}  // namespace

bool Partition::Grantable(const LockState& ls, TxId tx, LockMode mode) const {
  if (ls.exclusive == tx) return true;  // already hold X: any request is fine
  if (mode == LockMode::kShared) {
    return ls.exclusive == 0;
  }
  // Exclusive: no other exclusive holder and no other shared holders.
  if (ls.exclusive != 0) return false;
  for (TxId holder : ls.shared) {
    if (holder != tx) return false;
  }
  return true;
}

hops::Status Partition::AcquireLock(TxId tx, const std::string& ekey, LockMode mode,
                                    std::chrono::steady_clock::time_point deadline,
                                    bool* waited) {
  if (mode == LockMode::kReadCommitted) return hops::Status::Ok();
  std::unique_lock<std::mutex> lock(mu_);
  // References into unordered_map stay valid across inserts; ReleaseLock
  // never erases an entry while waiters > 0.
  LockState& ls = locks_[ekey];
  while (!Grantable(ls, tx, mode)) {
    if (waited != nullptr) *waited = true;
    ls.waiters++;
    auto wait_result = lock_released_.wait_until(lock, deadline);
    ls.waiters--;
    if (wait_result == std::cv_status::timeout && !Grantable(ls, tx, mode)) {
      if (ls.exclusive == 0 && ls.shared.empty() && ls.waiters == 0) {
        locks_.erase(ekey);
      }
      return hops::Status::LockTimeout("row lock wait timed out");
    }
  }
  if (mode == LockMode::kExclusive) {
    // Drop any shared entry we held (sole-holder upgrade) and take ownership.
    ls.shared.erase(std::remove(ls.shared.begin(), ls.shared.end(), tx), ls.shared.end());
    ls.exclusive = tx;
  } else {
    if (ls.exclusive != tx &&
        std::find(ls.shared.begin(), ls.shared.end(), tx) == ls.shared.end()) {
      ls.shared.push_back(tx);
    }
  }
  return hops::Status::Ok();
}

bool Partition::TryAcquireLock(TxId tx, const std::string& ekey, LockMode mode) {
  if (mode == LockMode::kReadCommitted) return true;
  std::lock_guard<std::mutex> lock(mu_);
  LockState& ls = locks_[ekey];
  if (!Grantable(ls, tx, mode)) {
    if (ls.exclusive == 0 && ls.shared.empty() && ls.waiters == 0) locks_.erase(ekey);
    return false;
  }
  if (mode == LockMode::kExclusive) {
    ls.shared.erase(std::remove(ls.shared.begin(), ls.shared.end(), tx), ls.shared.end());
    ls.exclusive = tx;
  } else if (ls.exclusive != tx &&
             std::find(ls.shared.begin(), ls.shared.end(), tx) == ls.shared.end()) {
    ls.shared.push_back(tx);
  }
  return true;
}

void Partition::DowngradeLock(TxId tx, const std::string& ekey) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = locks_.find(ekey);
  if (it == locks_.end() || it->second.exclusive != tx) return;
  LockState& ls = it->second;
  ls.exclusive = 0;
  if (std::find(ls.shared.begin(), ls.shared.end(), tx) == ls.shared.end()) {
    ls.shared.push_back(tx);
  }
  lock_released_.notify_all();  // other shared requests are grantable now
}

void Partition::ReleaseLock(TxId tx, const std::string& ekey) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = locks_.find(ekey);
  if (it == locks_.end()) return;
  LockState& ls = it->second;
  if (ls.exclusive == tx) ls.exclusive = 0;
  ls.shared.erase(std::remove(ls.shared.begin(), ls.shared.end(), tx), ls.shared.end());
  if (ls.exclusive == 0 && ls.shared.empty() && ls.waiters == 0) {
    locks_.erase(it);
  }
  lock_released_.notify_all();
}

bool Partition::Holds(TxId tx, const std::string& ekey, LockMode mode) const {
  if (mode == LockMode::kReadCommitted) return true;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = locks_.find(ekey);
  if (it == locks_.end()) return false;
  const LockState& ls = it->second;
  if (ls.exclusive == tx) return true;
  if (mode == LockMode::kShared) {
    return std::find(ls.shared.begin(), ls.shared.end(), tx) != ls.shared.end();
  }
  return false;
}

std::optional<Row> Partition::Get(const std::string& ekey) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = rows_.find(ekey);
  if (it == rows_.end()) return std::nullopt;
  return it->second;
}

bool Partition::Contains(const std::string& ekey) const {
  std::lock_guard<std::mutex> lock(mu_);
  return rows_.count(ekey) > 0;
}

void Partition::ApplyPut(const std::string& ekey, Row row) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = rows_.find(ekey);
  if (it != rows_.end()) {
    data_bytes_ -= RowBytes(ekey, it->second);
    it->second = std::move(row);
    data_bytes_ += RowBytes(ekey, it->second);
  } else {
    data_bytes_ += RowBytes(ekey, row);
    rows_.emplace(ekey, std::move(row));
  }
}

void Partition::ApplyDelete(const std::string& ekey) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = rows_.find(ekey);
  if (it == rows_.end()) return;
  data_bytes_ -= RowBytes(ekey, it->second);
  rows_.erase(it);
}

std::vector<std::pair<std::string, Row>> Partition::SnapshotPrefix(
    const std::string& prefix) const {
  std::vector<std::pair<std::string, Row>> out;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = prefix.empty() ? rows_.begin() : rows_.lower_bound(prefix);
  for (; it != rows_.end(); ++it) {
    if (!prefix.empty() && it->first.compare(0, prefix.size(), prefix) != 0) break;
    out.emplace_back(it->first, it->second);
  }
  return out;
}

size_t Partition::row_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rows_.size();
}

size_t Partition::data_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return data_bytes_;
}

}  // namespace hops::ndb
