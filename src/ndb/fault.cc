#include "ndb/fault.h"

#include <thread>

namespace hops::ndb {

void FaultInjector::Seed(uint64_t seed) {
  std::lock_guard<std::mutex> lock(mu_);
  rng_ = Rng(seed);
}

void FaultInjector::Arm(TableId table, Spec spec) {
  std::lock_guard<std::mutex> lock(mu_);
  specs_[table] = spec;
  armed_.store(true, std::memory_order_release);
}

void FaultInjector::Disarm(TableId table) {
  std::lock_guard<std::mutex> lock(mu_);
  specs_.erase(table);
  armed_.store(!specs_.empty(), std::memory_order_release);
}

void FaultInjector::DisarmAll() {
  std::lock_guard<std::mutex> lock(mu_);
  specs_.clear();
  armed_.store(false, std::memory_order_release);
}

hops::Status FaultInjector::OnAccess(TableId table) {
  if (!armed_.load(std::memory_order_acquire)) return hops::Status::Ok();
  bool error = false;
  std::chrono::microseconds delay{0};
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = specs_.find(table);
    if (it == specs_.end()) it = specs_.find(kAllTables);
    if (it == specs_.end()) return hops::Status::Ok();
    const Spec& spec = it->second;
    // Draw the delay die first so the per-access dice consumption is fixed
    // regardless of outcomes (seeded runs stay aligned).
    if (spec.delay_probability > 0 && rng_.Chance(spec.delay_probability)) {
      delay = spec.delay;
    }
    if (spec.error_probability > 0 && rng_.Chance(spec.error_probability)) {
      error = true;
    }
  }
  // Sleep outside the lock: a latency spike must slow this access, not
  // serialize every other table's dice rolls behind it.
  if (delay.count() > 0) {
    delays_.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(delay);
  }
  if (error) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    return hops::Status::TxAborted("injected transient fault");
  }
  return hops::Status::Ok();
}

}  // namespace hops::ndb
