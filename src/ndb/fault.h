// NDB-level fault injection for the chaos harness: seeded, per-table
// transient errors and latency spikes, delivered through a hook in the
// transaction path (per-row ops, batch routing, scans, commit).
//
// An injected error surfaces as kTxAborted -- the same retryable status a
// real coordinator failure produces -- so everything above the transaction
// layer exercises its production retry machinery, not a special test path.
// A latency spike simply sleeps the accessing thread, modelling a slow disk
// or a GC pause on the data node serving the table's partitions.
//
// The injector is owned by the Cluster and always present; the `armed_`
// atomic keeps the disarmed fast path to a single relaxed load so regular
// runs pay nothing.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>

#include "ndb/schema.h"
#include "util/rng.h"
#include "util/status.h"

namespace hops::ndb {

class FaultInjector {
 public:
  // Matches every table not covered by a table-specific spec.
  static constexpr TableId kAllTables = static_cast<TableId>(-1);

  struct Spec {
    double error_probability = 0.0;  // P(access returns kTxAborted)
    double delay_probability = 0.0;  // P(access sleeps for `delay`)
    std::chrono::microseconds delay{0};
  };

  // Reseeds the fault dice. Call before arming so a run's injected fault
  // sequence is a pure function of (seed, access sequence).
  void Seed(uint64_t seed);
  void Arm(TableId table, Spec spec);
  void Disarm(TableId table);
  void DisarmAll();
  bool armed() const { return armed_.load(std::memory_order_acquire); }

  // The transaction-path hook: may sleep (latency spike), may return a
  // retryable kTxAborted (transient error). kOk otherwise. Thread-safe.
  hops::Status OnAccess(TableId table);

  uint64_t injected_errors() const {
    return errors_.load(std::memory_order_relaxed);
  }
  uint64_t injected_delays() const {
    return delays_.load(std::memory_order_relaxed);
  }

 private:
  mutable std::mutex mu_;
  Rng rng_{0x5eedfa17};
  std::map<TableId, Spec> specs_;
  std::atomic<bool> armed_{false};
  std::atomic<uint64_t> errors_{0};
  std::atomic<uint64_t> delays_{0};
};

}  // namespace hops::ndb
