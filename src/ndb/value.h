// Typed values, rows and order-preserving key encoding for the NDB engine.
//
// Keys are tuples of column values encoded into byte strings whose
// lexicographic order equals the tuple order, and where the encoding of a
// tuple prefix is a byte-prefix of the full tuple's encoding. This gives the
// per-partition ordered primary index "prefix scan" capability that HopsFS
// partition-pruned index scans rely on (e.g. all children of a directory
// share the (parent_id) key prefix).
#pragma once

#include <cassert>
#include <cstdint>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace hops::ndb {

enum class ColumnType { kInt64, kString };

class Value {
 public:
  Value() : v_(int64_t{0}) {}
  Value(int64_t x) : v_(x) {}                    // NOLINT: implicit by design
  Value(std::string s) : v_(std::move(s)) {}     // NOLINT: implicit by design
  Value(const char* s) : v_(std::string(s)) {}   // NOLINT: implicit by design

  bool is_int() const { return std::holds_alternative<int64_t>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }

  int64_t i64() const {
    assert(is_int());
    return std::get<int64_t>(v_);
  }
  const std::string& str() const {
    assert(is_string());
    return std::get<std::string>(v_);
  }

  ColumnType type() const { return is_int() ? ColumnType::kInt64 : ColumnType::kString; }

  // Approximate in-memory footprint of this value inside a stored row,
  // modelling NDB's layout (fixed 8-byte ints, varchars stored inline with
  // a length prefix) rather than this process's std::string containers.
  size_t FootprintBytes() const { return is_int() ? 8 : str().size() + 2; }

  friend bool operator==(const Value& a, const Value& b) { return a.v_ == b.v_; }

 private:
  std::variant<int64_t, std::string> v_;
};

using Row = std::vector<Value>;
using Key = std::vector<Value>;  // values of the PK columns, in PK order

// Appends the order-preserving encoding of `v` to `out`.
void EncodeValue(const Value& v, std::string& out);

// Encodes a full key or a key prefix.
std::string EncodeKey(const Key& key);

// Human-readable rendering for diagnostics.
std::string ToDebugString(const Row& row);

}  // namespace hops::ndb
