// A table partition: committed rows in an ordered primary index, plus a
// row-level lock table.
//
// Lock semantics mirror NDB (paper §2.2.2): shared and exclusive row locks,
// plus read-committed reads that never block -- they return the last
// committed version even while another transaction holds an exclusive lock
// (staged writes live in the transaction until commit, so the committed
// version is always the one stored here). Deadlocks are resolved by lock-wait
// timeout, as NDB does.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "ndb/value.h"
#include "util/status.h"

namespace hops::ndb {

using TxId = uint64_t;

enum class LockMode : uint8_t { kReadCommitted, kShared, kExclusive };

class Partition {
 public:
  explicit Partition(uint32_t id) : id_(id) {}

  Partition(const Partition&) = delete;
  Partition& operator=(const Partition&) = delete;

  uint32_t id() const { return id_; }

  // --- Locking -------------------------------------------------------------
  // Blocks until granted or until `deadline`; kReadCommitted is a no-op.
  // A holder of an exclusive lock is granted any further request on the same
  // row; upgrading shared->exclusive succeeds only for a sole holder.
  // `waited`, when non-null, reports whether the request found the row
  // contended and blocked at least once (lock-contention accounting).
  hops::Status AcquireLock(TxId tx, const std::string& ekey, LockMode mode,
                           std::chrono::steady_clock::time_point deadline,
                           bool* waited = nullptr);
  // Grants the lock only if that is possible without waiting; returns false
  // (leaving the lock table untouched) otherwise. The completion mux uses
  // this so its shared loop never blocks on a row lock: a window that cannot
  // lock immediately is deferred and retried instead.
  bool TryAcquireLock(TxId tx, const std::string& ekey, LockMode mode);
  // Atomically steps an exclusive lock held by `tx` back down to shared
  // (deferring mux windows roll back shared->exclusive upgrades this way --
  // no release/re-acquire gap another transaction could steal the row in).
  void DowngradeLock(TxId tx, const std::string& ekey);
  void ReleaseLock(TxId tx, const std::string& ekey);
  // True if `tx` already holds a lock at least as strong as `mode`.
  bool Holds(TxId tx, const std::string& ekey, LockMode mode) const;

  // --- Committed data (callers must hold the row lock for locked reads; the
  // partition mutex is taken internally for map consistency) ---------------
  std::optional<Row> Get(const std::string& ekey) const;
  bool Contains(const std::string& ekey) const;
  // Applies a committed write (commit path only).
  void ApplyPut(const std::string& ekey, Row row);
  void ApplyDelete(const std::string& ekey);

  // Copies all committed rows whose encoded key starts with `prefix`
  // ("" = whole partition). Returns pairs of (encoded key, row).
  std::vector<std::pair<std::string, Row>> SnapshotPrefix(const std::string& prefix) const;

  size_t row_count() const;
  size_t data_bytes() const;  // committed payload + key bytes

 private:
  struct LockState {
    TxId exclusive = 0;             // 0 = none
    std::vector<TxId> shared;       // holders
    uint32_t waiters = 0;
  };

  bool Grantable(const LockState& ls, TxId tx, LockMode mode) const;

  const uint32_t id_;
  mutable std::mutex mu_;
  std::condition_variable lock_released_;
  std::map<std::string, Row> rows_;                    // primary ordered index
  std::unordered_map<std::string, LockState> locks_;
  size_t data_bytes_ = 0;
};

}  // namespace hops::ndb
