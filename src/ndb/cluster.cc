#include "ndb/cluster.h"

#include <cassert>

#include "ndb/mux.h"
#include "util/hash.h"

namespace hops::ndb {

Cluster::Cluster(ClusterConfig config) : config_(config) {
  assert(config_.num_datanodes > 0);
  assert(config_.replication > 0);
  assert(config_.num_datanodes % config_.replication == 0 &&
         "datanode count must be a multiple of the replication degree");
  num_partitions_ = config_.partitions_per_table != 0 ? config_.partitions_per_table
                                                      : 2 * config_.num_datanodes;
  num_groups_ = config_.num_datanodes / config_.replication;
  node_alive_ = std::vector<std::atomic<bool>>(config_.num_datanodes);
  for (auto& a : node_alive_) a.store(true, std::memory_order_relaxed);
  if (config_.use_completion_mux) mux_ = std::make_unique<CompletionMux>(this);
}

// Stops the completion loop before the tables it flushes against go away.
Cluster::~Cluster() { mux_.reset(); }

hops::Result<TableId> Cluster::CreateTable(Schema schema) {
  std::string error;
  if (!schema.Validate(&error)) return hops::Status::InvalidArgument(error);
  auto t = std::make_unique<Table>();
  for (size_t part_col : schema.partition_key) {
    size_t pos = 0;
    for (; pos < schema.primary_key.size(); ++pos) {
      if (schema.primary_key[pos] == part_col) break;
    }
    t->part_pos_in_pk.push_back(pos);
  }
  t->schema = std::move(schema);
  t->partitions.reserve(num_partitions_);
  for (uint32_t p = 0; p < num_partitions_; ++p) {
    t->partitions.push_back(std::make_unique<Partition>(p));
  }
  std::lock_guard<std::mutex> lock(tables_mu_);
  tables_.push_back(std::move(t));
  return static_cast<TableId>(tables_.size() - 1);
}

const Schema& Cluster::schema(TableId id) const { return table(id).schema; }

std::optional<TableId> Cluster::FindTable(std::string_view name) const {
  std::lock_guard<std::mutex> lock(tables_mu_);
  for (size_t i = 0; i < tables_.size(); ++i) {
    if (tables_[i]->schema.table_name == name) return static_cast<TableId>(i);
  }
  return std::nullopt;
}

const Cluster::Table& Cluster::table(TableId id) const {
  std::lock_guard<std::mutex> lock(tables_mu_);
  assert(id < tables_.size());
  return *tables_[id];
}

Cluster::Table& Cluster::table(TableId id) {
  std::lock_guard<std::mutex> lock(tables_mu_);
  assert(id < tables_.size());
  return *tables_[id];
}

std::unique_ptr<Transaction> Cluster::Begin(std::optional<TxHint> hint) {
  uint32_t coordinator = 0;
  bool placed = false;
  if (hint) {
    uint32_t partition = PartitionForValue(hint->partition_value);
    if (auto primary = PrimaryNode(partition)) {
      coordinator = *primary;
      placed = true;
    }
    // An incorrect or unroutable hint costs extra traffic but is otherwise
    // harmless (paper §2.2); fall through to round-robin placement.
  }
  if (!placed) {
    for (uint32_t i = 0; i < config_.num_datanodes; ++i) {
      uint32_t candidate =
          rr_coordinator_.fetch_add(1, std::memory_order_relaxed) % config_.num_datanodes;
      if (IsAlive(candidate)) {
        coordinator = candidate;
        placed = true;
        break;
      }
    }
  }
  TxId id = next_tx_id_.fetch_add(1, std::memory_order_relaxed);
  auto tx = std::unique_ptr<Transaction>(new Transaction(this, id, coordinator));
  tx->mux_ = mux_.get();  // null when per-transaction flushing is configured
  return tx;
}

void Cluster::KillDatanode(uint32_t node) {
  assert(node < config_.num_datanodes);
  node_alive_[node].store(false, std::memory_order_release);
}

void Cluster::RestartDatanode(uint32_t node) {
  assert(node < config_.num_datanodes);
  // Node recovery copies partition state back from its group peers (NDB
  // node-level recovery); data here is shared per group so nothing to do.
  node_alive_[node].store(true, std::memory_order_release);
}

bool Cluster::IsAlive(uint32_t node) const {
  return node_alive_[node].load(std::memory_order_acquire);
}

uint32_t Cluster::NumAliveNodes() const {
  uint32_t n = 0;
  for (const auto& a : node_alive_) n += a.load(std::memory_order_acquire) ? 1 : 0;
  return n;
}

bool Cluster::Available() const {
  for (uint32_t g = 0; g < num_groups_; ++g) {
    bool any = false;
    for (uint32_t r = 0; r < config_.replication; ++r) {
      if (IsAlive(g * config_.replication + r)) {
        any = true;
        break;
      }
    }
    if (!any) return false;
  }
  return true;
}

uint32_t Cluster::PartitionForValue(uint64_t partition_value) const {
  return static_cast<uint32_t>(HashU64(partition_value) % num_partitions_);
}

std::optional<uint32_t> Cluster::PrimaryNode(uint32_t partition) const {
  uint32_t group = GroupOf(partition);
  for (uint32_t r = 0; r < config_.replication; ++r) {
    uint32_t node = group * config_.replication + r;
    if (IsAlive(node)) return node;
  }
  return std::nullopt;
}

bool Cluster::PartitionAvailable(uint32_t partition) const {
  return PrimaryNode(partition).has_value();
}

hops::Result<uint32_t> Cluster::Route(const Table& t, const Key& pk_values,
                                      std::optional<uint64_t> pv) const {
  if (pv) return PartitionForValue(*pv);
  if (t.schema.requires_explicit_partition) {
    return hops::Status::InvalidArgument(t.schema.table_name +
                                         " requires an explicit partition value");
  }
  // Hash the encoded partition-key column values, which must all be present
  // in the supplied key/prefix.
  std::string encoded;
  for (size_t pos : t.part_pos_in_pk) {
    if (pos >= pk_values.size()) {
      return hops::Status::InvalidArgument("key prefix does not cover the partition key of " +
                                           t.schema.table_name);
    }
    EncodeValue(pk_values[pos], encoded);
  }
  return PartitionForValue(HashBytes(encoded));
}

ClusterStats Cluster::StatsSnapshot() const {
  ClusterStats s;
  s.pk_reads = stats_.pk_reads.load(std::memory_order_relaxed);
  s.batch_reads = stats_.batch_reads.load(std::memory_order_relaxed);
  s.batch_writes = stats_.batch_writes.load(std::memory_order_relaxed);
  s.ppis_scans = stats_.ppis_scans.load(std::memory_order_relaxed);
  s.index_scans = stats_.index_scans.load(std::memory_order_relaxed);
  s.full_table_scans = stats_.full_table_scans.load(std::memory_order_relaxed);
  s.commits = stats_.commits.load(std::memory_order_relaxed);
  s.aborts = stats_.aborts.load(std::memory_order_relaxed);
  s.rows_read = stats_.rows_read.load(std::memory_order_relaxed);
  s.rows_written = stats_.rows_written.load(std::memory_order_relaxed);
  s.lock_timeouts = stats_.lock_timeouts.load(std::memory_order_relaxed);
  s.lock_waits = stats_.lock_waits.load(std::memory_order_relaxed);
  s.round_trips = stats_.round_trips.load(std::memory_order_relaxed);
  s.overlapped_round_trips = stats_.overlapped_round_trips.load(std::memory_order_relaxed);
  s.cross_tx_overlapped_round_trips =
      stats_.cross_tx_overlapped_round_trips.load(std::memory_order_relaxed);
  s.mux_rounds = stats_.mux_rounds.load(std::memory_order_relaxed);
  s.mux_windows = stats_.mux_windows.load(std::memory_order_relaxed);
  s.mux_gather_waits = stats_.mux_gather_waits.load(std::memory_order_relaxed);
  s.mux_gathered_windows = stats_.mux_gathered_windows.load(std::memory_order_relaxed);
  return s;
}

void Cluster::ResetStats() {
  stats_.pk_reads = 0;
  stats_.batch_reads = 0;
  stats_.batch_writes = 0;
  stats_.ppis_scans = 0;
  stats_.index_scans = 0;
  stats_.full_table_scans = 0;
  stats_.commits = 0;
  stats_.aborts = 0;
  stats_.rows_read = 0;
  stats_.rows_written = 0;
  stats_.lock_timeouts = 0;
  stats_.lock_waits = 0;
  stats_.round_trips = 0;
  stats_.overlapped_round_trips = 0;
  stats_.cross_tx_overlapped_round_trips = 0;
  stats_.mux_rounds = 0;
  stats_.mux_windows = 0;
  stats_.mux_gather_waits = 0;
  stats_.mux_gathered_windows = 0;
}

size_t Cluster::TableRowCount(TableId id) const {
  const Table& t = table(id);
  size_t n = 0;
  for (const auto& p : t.partitions) n += p->row_count();
  return n;
}

size_t Cluster::TableMemoryBytes(TableId id) const {
  const Table& t = table(id);
  size_t bytes = 0;
  for (const auto& p : t.partitions) {
    bytes += p->data_bytes() + p->row_count() * kPerRowOverheadBytes;
  }
  return bytes * config_.replication;
}

size_t Cluster::TotalMemoryBytes() const {
  size_t total = 0;
  size_t n;
  {
    std::lock_guard<std::mutex> lock(tables_mu_);
    n = tables_.size();
  }
  for (size_t i = 0; i < n; ++i) total += TableMemoryBytes(static_cast<TableId>(i));
  return total;
}

std::string_view AccessKindName(AccessKind kind) {
  switch (kind) {
    case AccessKind::kPkRead: return "PK";
    case AccessKind::kPkWrite: return "PKW";
    case AccessKind::kBatchRead: return "B";
    case AccessKind::kPpis: return "PPIS";
    case AccessKind::kIndexScan: return "IS";
    case AccessKind::kFullTableScan: return "FTS";
    case AccessKind::kCommit: return "COMMIT";
  }
  return "?";
}

}  // namespace hops::ndb
