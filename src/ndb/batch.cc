// ReadBatch / WriteBatch staging. Execution lives in transaction.cc
// (Transaction::Execute), which owns routing, lock ordering and cost
// accounting.
#include "ndb/batch.h"

namespace hops::ndb {

size_t ReadBatch::Get(TableId table, Key key, LockMode mode, std::optional<uint64_t> pv) {
  assert(!executed_ && "cannot stage into an executed batch");
  Op op;
  op.kind = Op::Kind::kGet;
  op.table = table;
  op.key = std::move(key);
  op.mode = mode;
  op.pv = pv;
  ops_.push_back(std::move(op));
  return ops_.size() - 1;
}

size_t ReadBatch::Scan(TableId table, Key prefix, ScanOptions opts,
                       std::optional<uint64_t> pv) {
  assert(!executed_ && "cannot stage into an executed batch");
  Op op;
  op.kind = Op::Kind::kScan;
  op.table = table;
  op.key = std::move(prefix);
  op.opts = std::move(opts);
  op.pv = pv;
  ops_.push_back(std::move(op));
  return ops_.size() - 1;
}

const std::optional<Row>& ReadBatch::row(size_t slot) const {
  assert(executed_ && "results are valid only after Execute");
  assert(slot < ops_.size() && ops_[slot].kind == Op::Kind::kGet);
  return ops_[slot].row;
}

const std::vector<Row>& ReadBatch::rows(size_t slot) const {
  assert(executed_ && "results are valid only after Execute");
  assert(slot < ops_.size() && ops_[slot].kind == Op::Kind::kScan);
  return ops_[slot].rows;
}

void WriteBatch::Insert(TableId table, Row row, std::optional<uint64_t> pv) {
  assert(!executed_ && "cannot stage into an executed batch");
  Op op;
  op.kind = Op::Kind::kInsert;
  op.table = table;
  op.row = std::move(row);
  op.pv = pv;
  ops_.push_back(std::move(op));
}

void WriteBatch::Update(TableId table, Row row, std::optional<uint64_t> pv) {
  assert(!executed_ && "cannot stage into an executed batch");
  Op op;
  op.kind = Op::Kind::kUpdate;
  op.table = table;
  op.row = std::move(row);
  op.pv = pv;
  ops_.push_back(std::move(op));
}

void WriteBatch::Write(TableId table, Row row, std::optional<uint64_t> pv) {
  assert(!executed_ && "cannot stage into an executed batch");
  Op op;
  op.kind = Op::Kind::kWrite;
  op.table = table;
  op.row = std::move(row);
  op.pv = pv;
  ops_.push_back(std::move(op));
}

void WriteBatch::Delete(TableId table, Key key, std::optional<uint64_t> pv) {
  assert(!executed_ && "cannot stage into an executed batch");
  Op op;
  op.kind = Op::Kind::kDelete;
  op.table = table;
  op.key = std::move(key);
  op.pv = pv;
  ops_.push_back(std::move(op));
}

void WriteBatch::DeleteIfExists(TableId table, Key key, std::optional<uint64_t> pv) {
  Delete(table, std::move(key), pv);
  ops_.back().ignore_missing = true;
}

}  // namespace hops::ndb
