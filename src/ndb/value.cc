#include "ndb/value.h"

namespace hops::ndb {

void EncodeValue(const Value& v, std::string& out) {
  if (v.is_int()) {
    // Flip the sign bit and store big-endian so byte order == numeric order.
    uint64_t u = static_cast<uint64_t>(v.i64()) ^ 0x8000000000000000ULL;
    for (int shift = 56; shift >= 0; shift -= 8) {
      out.push_back(static_cast<char>((u >> shift) & 0xff));
    }
  } else {
    // Escape embedded NUL (0x00 -> 0x00 0xff) and terminate with 0x00 0x00,
    // which sorts before any continuation byte, preserving prefix order.
    for (char c : v.str()) {
      out.push_back(c);
      if (c == '\0') out.push_back(static_cast<char>(0xff));
    }
    out.push_back('\0');
    out.push_back('\0');
  }
}

std::string EncodeKey(const Key& key) {
  std::string out;
  out.reserve(key.size() * 12);
  for (const auto& v : key) EncodeValue(v, out);
  return out;
}

std::string ToDebugString(const Row& row) {
  std::string out = "(";
  for (size_t i = 0; i < row.size(); ++i) {
    if (i) out += ", ";
    if (row[i].is_int()) {
      out += std::to_string(row[i].i64());
    } else {
      out += '"';
      out += row[i].str();
      out += '"';
    }
  }
  out += ")";
  return out;
}

}  // namespace hops::ndb
