// Transaction execution: row locks acquired eagerly, writes staged in the
// transaction and applied atomically per partition at commit (2PC), scans
// that merge the transaction's own staged writes (read-your-writes), and
// take-and-release lock scans used by the subtree quiesce protocol.
#include <algorithm>
#include <cassert>
#include <set>
#include <tuple>

#include "ndb/cluster.h"
#include "ndb/mux.h"

namespace hops::ndb {

namespace {

Key ExtractPk(const Schema& schema, const Row& row) {
  Key key;
  key.reserve(schema.primary_key.size());
  for (size_t idx : schema.primary_key) {
    assert(idx < row.size());
    key.push_back(row[idx]);
  }
  return key;
}

// Accumulates one partition's share of a logical access: merge into an
// existing PartTouch or append a new one.
void MergeTouch(std::vector<PartTouch>& parts, uint32_t partition, uint32_t rows,
                uint32_t node, bool local) {
  for (auto& pt : parts) {
    if (pt.partition == partition) {
      pt.rows += rows;
      return;
    }
  }
  parts.push_back(PartTouch{partition, node, rows, local});
}

bool RowMatches(const Row& row, const Transaction::ScanOptions& opts) {
  if (opts.eq_filter) {
    const auto& [col, value] = *opts.eq_filter;
    if (col >= row.size() || !(row[col] == value)) return false;
  }
  if (opts.predicate && !opts.predicate(row)) return false;
  return true;
}

}  // namespace

Transaction::Transaction(Cluster* cluster, TxId id, uint32_t coordinator)
    : cluster_(cluster), id_(id), coordinator_(coordinator) {
  trace_.coordinator_node = coordinator;
}

Transaction::~Transaction() {
  if (state_ == State::kActive) Abort();
}

hops::Status Transaction::CheckUsable(uint32_t partition) {
  if (state_ != State::kActive) {
    return hops::Status::TxAborted("transaction is not active");
  }
  if (!cluster_->IsAlive(coordinator_)) {
    // Coordinator failover: NDB hands transactions of a failed TC to another
    // coordinator by aborting them; the namenode retries (paper §7.6.2).
    Abort();
    return hops::Status::TxAborted("transaction coordinator failed");
  }
  if (!cluster_->PartitionAvailable(partition)) {
    Abort();
    return hops::Status::Unavailable("entire node group for partition is down");
  }
  return hops::Status::Ok();
}

hops::Status Transaction::InjectFault(TableId table, bool abort_tx) {
  FaultInjector& injector = cluster_->fault_injector_;
  if (!injector.armed()) return hops::Status::Ok();
  hops::Status st = injector.OnAccess(table);
  if (!st.ok() && abort_tx && state_ == State::kActive) Abort();
  return st;
}

hops::Status Transaction::AcquireRowLock(TableId table, uint32_t partition,
                                         const std::string& ekey, LockMode mode) {
  if (mode == LockMode::kReadCommitted) return hops::Status::Ok();
  auto key = std::make_tuple(table, partition, ekey);
  auto it = held_locks_.find(key);
  if (it != held_locks_.end() &&
      (it->second == LockMode::kExclusive || it->second == mode)) {
    return hops::Status::Ok();  // already hold a lock at least this strong
  }
  auto deadline = std::chrono::steady_clock::now() + cluster_->config().lock_wait_timeout;
  Partition& p = *cluster_->table(table).partitions[partition];
  bool waited = false;
  hops::Status st = p.AcquireLock(id_, ekey, mode, deadline, &waited);
  if (waited) cluster_->stats_.lock_waits.fetch_add(1, std::memory_order_relaxed);
  if (!st.ok()) {
    cluster_->stats_.lock_timeouts.fetch_add(1, std::memory_order_relaxed);
    Abort();  // NDB aborts the transaction whose lock wait times out
    return st;
  }
  held_locks_[key] = mode;
  return hops::Status::Ok();
}

void Transaction::RecordAccess(AccessKind kind, TableId table,
                               std::initializer_list<PartTouch> parts, uint32_t round_trips) {
  RecordAccess(kind, table, std::vector<PartTouch>(parts), round_trips);
}

void Transaction::RecordAccess(AccessKind kind, TableId table, std::vector<PartTouch> parts,
                               uint32_t round_trips) {
  uint64_t rows = 0;
  for (const auto& p : parts) rows += p.rows;
  auto& s = cluster_->stats_;
  s.round_trips.fetch_add(round_trips, std::memory_order_relaxed);
  switch (kind) {
    case AccessKind::kPkRead:
      s.pk_reads.fetch_add(1, std::memory_order_relaxed);
      s.rows_read.fetch_add(rows, std::memory_order_relaxed);
      break;
    case AccessKind::kPkWrite:
      break;  // rows counted at commit
    case AccessKind::kBatchRead:
      s.batch_reads.fetch_add(1, std::memory_order_relaxed);
      s.rows_read.fetch_add(rows, std::memory_order_relaxed);
      break;
    case AccessKind::kPpis:
      s.ppis_scans.fetch_add(1, std::memory_order_relaxed);
      s.rows_read.fetch_add(rows, std::memory_order_relaxed);
      break;
    case AccessKind::kIndexScan:
      s.index_scans.fetch_add(1, std::memory_order_relaxed);
      s.rows_read.fetch_add(rows, std::memory_order_relaxed);
      break;
    case AccessKind::kFullTableScan:
      s.full_table_scans.fetch_add(1, std::memory_order_relaxed);
      s.rows_read.fetch_add(rows, std::memory_order_relaxed);
      break;
    case AccessKind::kCommit:
      s.rows_written.fetch_add(rows, std::memory_order_relaxed);
      break;
  }
  if (!trace_enabled_) return;
  Access a;
  a.kind = kind;
  a.table = table;
  a.round_trips = round_trips;
  a.background = background_;
  a.parts = std::move(parts);
  trace_.accesses.push_back(std::move(a));
}

hops::Result<Row> Transaction::Read(TableId table, const Key& key, LockMode mode,
                                    std::optional<uint64_t> pv) {
  HOPS_RETURN_IF_ERROR(FlushPending());  // per-row ops order after the pipeline
  const Cluster::Table& t = cluster_->table(table);
  HOPS_ASSIGN_OR_RETURN(partition, cluster_->Route(t, key, pv));
  HOPS_RETURN_IF_ERROR(CheckUsable(partition));
  HOPS_RETURN_IF_ERROR(InjectFault(table, /*abort_tx=*/true));
  std::string ekey = EncodeKey(key);
  HOPS_RETURN_IF_ERROR(AcquireRowLock(table, partition, ekey, mode));

  uint32_t node = cluster_->PrimaryNode(partition).value_or(coordinator_);
  RecordAccess(AccessKind::kPkRead, table,
               {PartTouch{partition, node, 1, node == coordinator_}});

  auto staged = write_set_.find({table, ekey});
  if (staged != write_set_.end()) {
    if (staged->second.is_delete) return hops::Status::NotFound();
    return staged->second.row;
  }
  auto committed = t.partitions[partition]->Get(ekey);
  if (!committed) return hops::Status::NotFound();
  return *std::move(committed);
}

hops::Result<std::vector<std::optional<Row>>> Transaction::BatchRead(
    TableId table, const std::vector<Key>& keys, LockMode mode,
    const std::vector<uint64_t>* pvs) {
  assert(pvs == nullptr || pvs->size() == keys.size());
  ReadBatch batch;
  for (size_t i = 0; i < keys.size(); ++i) {
    batch.Get(table, keys[i], mode,
              pvs ? std::optional<uint64_t>((*pvs)[i]) : std::nullopt);
  }
  HOPS_RETURN_IF_ERROR(Execute(batch));
  std::vector<std::optional<Row>> results(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) results[i] = std::move(batch.ops_[i].row);
  return results;
}

void Transaction::UnlockRow(TableId table, const Key& key, std::optional<uint64_t> pv) {
  (void)FlushPending();  // the lock to drop may still be in the pipeline
  if (state_ != State::kActive) return;
  const Cluster::Table& t = cluster_->table(table);
  auto routed = cluster_->Route(t, key, pv);
  if (!routed.ok()) return;
  const uint32_t partition = *routed;
  std::string ekey = EncodeKey(key);
  if (write_set_.count({table, ekey})) return;  // the lock guards a staged write
  auto it = held_locks_.find(std::make_tuple(table, partition, ekey));
  if (it == held_locks_.end()) return;
  t.partitions[partition]->ReleaseLock(id_, ekey);
  held_locks_.erase(it);
}

hops::Status Transaction::AcquireLockSet(std::vector<LockRequest> requests,
                                         uint32_t* fresh_locks) {
  // Global deadlock-free order: (table, partition, encoded key). Every batch
  // walks its lock set in this order, so for any two batches the rows they
  // both want are requested in the same sequence and one simply waits for
  // the other -- no cycle, no reliance on the lock-wait timeout.
  std::sort(requests.begin(), requests.end(), [](const LockRequest& a, const LockRequest& b) {
    return std::tie(a.table, a.partition, a.ekey) < std::tie(b.table, b.partition, b.ekey);
  });
  uint32_t fresh = 0;
  for (size_t i = 0; i < requests.size(); ++i) {
    LockRequest& req = requests[i];
    // Collapse duplicate rows to the strongest requested mode.
    while (i + 1 < requests.size() && requests[i + 1].table == req.table &&
           requests[i + 1].partition == req.partition && requests[i + 1].ekey == req.ekey) {
      if (requests[i + 1].mode == LockMode::kExclusive) req.mode = LockMode::kExclusive;
      else if (req.mode == LockMode::kReadCommitted) req.mode = requests[i + 1].mode;
      ++i;
    }
    if (req.mode == LockMode::kReadCommitted) continue;
    auto held = held_locks_.find(std::make_tuple(req.table, req.partition, req.ekey));
    bool covered = held != held_locks_.end() &&
                   (held->second == LockMode::kExclusive || held->second == req.mode);
    if (!covered) fresh++;
    HOPS_RETURN_IF_ERROR(AcquireRowLock(req.table, req.partition, req.ekey, req.mode));
  }
  if (fresh_locks != nullptr) *fresh_locks = fresh;
  return hops::Status::Ok();
}

// --- Pipelined batch engine --------------------------------------------------
//
// ExecuteAsync only *prepares* a batch (NDB's executeAsynchPrepare); the
// in-flight window executes as one overlapped round trip at the next flush
// point (sendPollNdb): a Wait(), a synchronous operation, Commit(), or the
// window filling up. The flush routes every op of every member batch, takes
// the combined lock set in the global order (deadlock freedom across
// in-flight batches), then runs each batch's data work in preparation order
// (read-your-writes across the pipeline).

bool PendingBatch::done() const { return tx_ != nullptr && tx_->BatchDone(seq_); }

hops::Status PendingBatch::Wait() {
  if (tx_ == nullptr) return hops::Status::InvalidArgument("empty batch handle");
  return tx_->WaitBatch(seq_);
}

PendingBatch Transaction::PrepareBatch(ReadBatch* read, WriteBatch* write) {
  const uint64_t seq = next_batch_seq_++;
  bool& executed = read != nullptr ? read->executed_ : write->executed_;
  if (executed) {
    batch_results_[seq] = hops::Status::InvalidArgument("batch already executed");
    return PendingBatch(this, seq);
  }
  executed = true;
  if (state_ != State::kActive) {
    batch_results_[seq] = hops::Status::TxAborted("transaction is not active");
    return PendingBatch(this, seq);
  }
  if (read != nullptr ? read->ops_.empty() : write->ops_.empty()) {
    batch_results_[seq] = hops::Status::Ok();
    return PendingBatch(this, seq);
  }
  // A kStagedOrder batch flushes as its OWN window: its externally-ordered
  // lock waits must not interleave with other members' (which would void
  // both its order guarantee and the window's global-order guarantee).
  const bool staged_order =
      read != nullptr && read->lock_order() == BatchLockOrder::kStagedOrder;
  if (staged_order) (void)FlushPending();
  in_flight_.push_back(InFlightBatch{seq, read, write});
  if (staged_order || in_flight_.size() >= cluster_->config().max_in_flight_batches) {
    (void)FlushPending();  // outcomes wait in batch_results_
  }
  return PendingBatch(this, seq);
}

PendingBatch Transaction::ExecuteAsync(ReadBatch& batch) { return PrepareBatch(&batch, nullptr); }

PendingBatch Transaction::ExecuteAsync(WriteBatch& batch) { return PrepareBatch(nullptr, &batch); }

hops::Status Transaction::Execute(ReadBatch& batch) { return ExecuteAsync(batch).Wait(); }

hops::Status Transaction::Execute(WriteBatch& batch) { return ExecuteAsync(batch).Wait(); }

hops::Status Transaction::WaitBatch(uint64_t seq) {
  auto it = batch_results_.find(seq);
  if (it != batch_results_.end()) return it->second;
  for (const auto& f : in_flight_) {
    if (f.seq != seq) continue;
    (void)FlushPending();
    auto flushed = batch_results_.find(seq);
    assert(flushed != batch_results_.end() && "flush must deliver every in-flight outcome");
    return flushed->second;
  }
  return hops::Status::InvalidArgument("unknown batch handle");
}

hops::Status Transaction::RouteReadBatch(ReadBatch& batch, std::vector<LockRequest>& plan) {
  for (auto& op : batch.ops_) {
    const Cluster::Table& t = cluster_->table(op.table);
    HOPS_ASSIGN_OR_RETURN(partition, cluster_->Route(t, op.key, op.pv));
    op.partition = partition;
    HOPS_RETURN_IF_ERROR(CheckUsable(partition));
    // A routing-stage fault fails the whole flush window through the
    // existing pipeline error path (no abort here; the window owns cleanup).
    HOPS_RETURN_IF_ERROR(InjectFault(op.table, /*abort_tx=*/false));
    op.ekey = EncodeKey(op.key);
    if (op.kind == ReadBatch::Op::Kind::kGet && op.mode != LockMode::kReadCommitted) {
      plan.push_back(LockRequest{op.table, partition, op.ekey, op.mode});
    }
  }
  return hops::Status::Ok();
}

hops::Status Transaction::RouteWriteBatch(WriteBatch& batch, std::vector<LockRequest>& plan) {
  plan.reserve(plan.size() + batch.ops_.size());
  for (auto& op : batch.ops_) {
    const Cluster::Table& t = cluster_->table(op.table);
    if (op.kind != WriteBatch::Op::Kind::kDelete) {
      assert(op.row.size() == t.schema.columns.size());
      op.key = ExtractPk(t.schema, op.row);
    }
    HOPS_ASSIGN_OR_RETURN(partition, cluster_->Route(t, op.key, op.pv));
    op.partition = partition;
    HOPS_RETURN_IF_ERROR(CheckUsable(partition));
    HOPS_RETURN_IF_ERROR(InjectFault(op.table, /*abort_tx=*/false));
    op.ekey = EncodeKey(op.key);
    plan.push_back(LockRequest{op.table, partition, op.ekey, LockMode::kExclusive});
  }
  return hops::Status::Ok();
}

hops::Status Transaction::RunReadBatchData(ReadBatch& batch, std::vector<Access>& accesses) {
  // Execute in staging order. Gets of the same table aggregate into one
  // logical access; each pruned scan is its own access. Accesses are
  // appended with round_trips = 0; the flush assigns the carrying trip to
  // the window's first access. Aggregation never crosses batch boundaries,
  // so a trace still shows the pipeline's structure.
  const size_t first = accesses.size();
  auto get_access_for = [&](TableId table) -> Access& {
    for (size_t i = first; i < accesses.size(); ++i) {
      if (accesses[i].kind == AccessKind::kBatchRead && accesses[i].table == table) {
        return accesses[i];
      }
    }
    Access a;
    a.kind = AccessKind::kBatchRead;
    a.table = table;
    a.round_trips = 0;
    accesses.push_back(std::move(a));
    return accesses.back();
  };
  auto touch = [&](Access& a, uint32_t partition, uint32_t rows) {
    uint32_t node = cluster_->PrimaryNode(partition).value_or(coordinator_);
    MergeTouch(a.parts, partition, rows, node, node == coordinator_);
  };

  uint64_t scans = 0;
  for (auto& op : batch.ops_) {
    if (op.kind == ReadBatch::Op::Kind::kGet) {
      auto staged = write_set_.find({op.table, op.ekey});
      if (staged != write_set_.end()) {
        if (!staged->second.is_delete) op.row = staged->second.row;
      } else if (auto committed =
                     cluster_->table(op.table).partitions[op.partition]->Get(op.ekey)) {
        op.row = *std::move(committed);
      }
      touch(get_access_for(op.table), op.partition, 1);
    } else {
      uint32_t examined = 0;
      HOPS_ASSIGN_OR_RETURN(
          rows, ScanOnePartition(op.table, op.partition, op.ekey, op.opts, &examined));
      op.rows = std::move(rows);
      scans++;
      Access a;
      a.kind = AccessKind::kPpis;
      a.table = op.table;
      a.round_trips = 0;
      accesses.push_back(std::move(a));
      touch(accesses.back(), op.partition, examined);
    }
  }

  uint64_t rows_read = 0;
  for (size_t i = first; i < accesses.size(); ++i) rows_read += accesses[i].TotalRows();
  auto& s = cluster_->stats_;
  s.batch_reads.fetch_add(1, std::memory_order_relaxed);
  // Pruned scans riding in a batch still count as pruned scans, so per-op
  // and batched code paths stay comparable in the cluster counters.
  s.ppis_scans.fetch_add(scans, std::memory_order_relaxed);
  s.rows_read.fetch_add(rows_read, std::memory_order_relaxed);
  return hops::Status::Ok();
}

hops::Status Transaction::RunWriteBatchData(WriteBatch& batch, std::vector<Access>& accesses) {
  // Validate and stage in staging order (the later op wins on duplicate
  // keys, matching a sequence of individual calls).
  const size_t first = accesses.size();
  auto access_for = [&](TableId table) -> Access& {
    for (size_t i = first; i < accesses.size(); ++i) {
      if (accesses[i].kind == AccessKind::kPkWrite && accesses[i].table == table) {
        return accesses[i];
      }
    }
    Access a;
    a.kind = AccessKind::kPkWrite;
    a.table = table;
    a.round_trips = 0;
    accesses.push_back(std::move(a));
    return accesses.back();
  };
  for (auto& op : batch.ops_) {
    const Cluster::Table& t = cluster_->table(op.table);
    auto staged = write_set_.find({op.table, op.ekey});
    bool exists = staged != write_set_.end() ? !staged->second.is_delete
                                             : t.partitions[op.partition]->Contains(op.ekey);
    // Tolerated deletes of absent rows stage nothing but still probed (and
    // locked) their partition, so they appear in the access with 0 rows --
    // keeping the trace consistent with the round trip the flush charges.
    uint32_t staged_rows = 1;
    switch (op.kind) {
      case WriteBatch::Op::Kind::kInsert:
        if (exists) return hops::Status::AlreadyExists(t.schema.table_name);
        write_set_[{op.table, op.ekey}] = StagedWrite{false, op.row, op.partition};
        break;
      case WriteBatch::Op::Kind::kUpdate:
        if (!exists) return hops::Status::NotFound(t.schema.table_name);
        write_set_[{op.table, op.ekey}] = StagedWrite{false, op.row, op.partition};
        break;
      case WriteBatch::Op::Kind::kWrite:
        write_set_[{op.table, op.ekey}] = StagedWrite{false, op.row, op.partition};
        break;
      case WriteBatch::Op::Kind::kDelete:
        if (!exists) {
          if (!op.ignore_missing) return hops::Status::NotFound(t.schema.table_name);
          staged_rows = 0;
        } else {
          write_set_[{op.table, op.ekey}] = StagedWrite{true, {}, op.partition};
        }
        break;
    }
    Access& a = access_for(op.table);
    uint32_t node = cluster_->PrimaryNode(op.partition).value_or(coordinator_);
    MergeTouch(a.parts, op.partition, staged_rows, node, node == coordinator_);
  }
  cluster_->stats_.batch_writes.fetch_add(1, std::memory_order_relaxed);
  return hops::Status::Ok();
}

std::vector<bool> Transaction::ComputeWindowPays(
    const std::vector<InFlightBatch>& flight,
    const std::vector<std::vector<LockRequest>>& plans) const {
  // Which members would have paid their own round trip on the synchronous
  // path? Read batches always do; a write batch only if some lock in its
  // plan is not already exclusive-held -- by the transaction, or by an
  // earlier member of this window, exactly as sequential execution would
  // have found it. Keeps cost.h's invariant that round_trips +
  // overlapped_round_trips is the sync-equivalent trip count.
  std::vector<bool> pays(flight.size(), false);
  std::set<std::tuple<TableId, uint32_t, std::string>> covered;
  for (size_t i = 0; i < flight.size(); ++i) {
    if (flight[i].read != nullptr) {
      pays[i] = true;
    } else {
      for (const LockRequest& req : plans[i]) {
        auto key = std::make_tuple(req.table, req.partition, req.ekey);
        auto held = held_locks_.find(key);
        if ((held == held_locks_.end() || held->second != LockMode::kExclusive) &&
            covered.count(key) == 0) {
          pays[i] = true;
          break;
        }
      }
    }
    for (const LockRequest& req : plans[i]) {
      if (req.mode == LockMode::kExclusive) {
        covered.insert(std::make_tuple(req.table, req.partition, req.ekey));
      }
    }
  }
  return pays;
}

hops::Status Transaction::RunWindowData(std::vector<InFlightBatch>& flight,
                                        const std::vector<bool>& pays,
                                        std::vector<Access>& accesses, size_t* sync_equiv,
                                        size_t* read_members) {
  // Each member's data work, in preparation order -- later batches observe
  // earlier members' staged writes (read-your-writes across the pipeline).
  // The first failure stops the window; members behind it report kTxAborted
  // (their work never ran).
  *sync_equiv = 0;
  *read_members = 0;
  hops::Status first_error;
  for (size_t i = 0; i < flight.size(); ++i) {
    hops::Status st;
    if (flight[i].read != nullptr) {
      (*read_members)++;
      st = RunReadBatchData(*flight[i].read, accesses);
    } else {
      st = RunWriteBatchData(*flight[i].write, accesses);
    }
    batch_results_[flight[i].seq] = st;
    if (pays[i]) (*sync_equiv)++;
    if (!st.ok()) {
      first_error = st;
      if (pipeline_error_.ok()) pipeline_error_ = st;
      for (size_t j = i + 1; j < flight.size(); ++j) {
        batch_results_[flight[j].seq] =
            hops::Status::TxAborted("a preceding batch in the flush window failed");
      }
      break;
    }
  }
  return first_error;
}

bool Transaction::WindowMuxEligible() const {
  for (const auto& f : in_flight_) {
    if (f.read != nullptr && (f.read->lock_order() == BatchLockOrder::kStagedOrder ||
                              f.read->has_locking_scan())) {
      return false;
    }
  }
  return true;
}

bool Transaction::TryAcquireRowLock(TableId table, uint32_t partition, const std::string& ekey,
                                    LockMode mode, bool* fresh, bool* upgraded) {
  *fresh = false;
  *upgraded = false;
  if (mode == LockMode::kReadCommitted) return true;
  auto key = std::make_tuple(table, partition, ekey);
  auto it = held_locks_.find(key);
  if (it != held_locks_.end() &&
      (it->second == LockMode::kExclusive || it->second == mode)) {
    return true;  // already hold a lock at least this strong
  }
  Partition& p = *cluster_->table(table).partitions[partition];
  if (!p.TryAcquireLock(id_, ekey, mode)) return false;
  *fresh = it == held_locks_.end();
  // Not fresh and not covered: a held shared lock was stepped up to
  // exclusive.
  *upgraded = !*fresh;
  held_locks_[key] = mode;
  return true;
}

void Transaction::DropRowLock(TableId table, uint32_t partition, const std::string& ekey) {
  auto it = held_locks_.find(std::make_tuple(table, partition, ekey));
  if (it == held_locks_.end()) return;
  cluster_->table(table).partitions[partition]->ReleaseLock(id_, ekey);
  held_locks_.erase(it);
}

void Transaction::DowngradeRowLock(TableId table, uint32_t partition, const std::string& ekey) {
  auto it = held_locks_.find(std::make_tuple(table, partition, ekey));
  if (it == held_locks_.end()) return;
  cluster_->table(table).partitions[partition]->DowngradeLock(id_, ekey);
  it->second = LockMode::kShared;
}

hops::Status Transaction::FlushPending() {
  if (in_flight_.empty()) return hops::Status::Ok();
  // A mux-eligible window registers with the cluster's shared completion
  // loop, where it may merge with other transactions' windows into one
  // overlapped round trip. Staged-order and locking-scan windows keep the
  // per-transaction path (their lock waits must happen on this thread), as
  // do latency-sensitive transactions (their wait in the mux line would
  // dwarf their own work).
  if (mux_ != nullptr && !latency_sensitive_ && WindowMuxEligible()) {
    return mux_->SubmitAndWait(this);
  }
  std::vector<InFlightBatch> flight = std::move(in_flight_);
  in_flight_.clear();

  auto fail_window = [&](const hops::Status& st) {
    for (const auto& f : flight) batch_results_[f.seq] = st;
  };

  // Phase 1: route every op of every member batch; no data is touched yet.
  // A routing failure (bad key, unavailable node group) aborts the window
  // before any lock is taken, so every member reports the same cause.
  std::vector<std::vector<LockRequest>> plans(flight.size());
  for (size_t i = 0; i < flight.size(); ++i) {
    hops::Status st = flight[i].read != nullptr ? RouteReadBatch(*flight[i].read, plans[i])
                                                : RouteWriteBatch(*flight[i].write, plans[i]);
    if (!st.ok()) {
      fail_window(st);
      return st;
    }
  }

  std::vector<bool> pays = ComputeWindowPays(flight, plans);

  // Phase 2: acquire the whole window's lock set. The default merges every
  // member's requests into ONE sorted pass -- the global (table, partition,
  // encoded key) order holds across in-flight batches, so two transactions
  // each pipelining several batches still cannot deadlock. A kStagedOrder
  // member (rename lock phases, whose total order is the *path* order
  // shared with per-row lockers) instead acquires exactly as staged;
  // PrepareBatch isolates such a batch in its own window, so the two
  // ordering disciplines never mix within one flush.
  uint32_t fresh_locks = 0;
  hops::Status lock_st;
  const bool staged_order = flight.size() == 1 && flight[0].read != nullptr &&
                            flight[0].read->lock_order() == BatchLockOrder::kStagedOrder;
  if (!staged_order) {
    std::vector<LockRequest> combined;
    for (auto& plan : plans) {
      std::move(plan.begin(), plan.end(), std::back_inserter(combined));
    }
    lock_st = AcquireLockSet(std::move(combined), &fresh_locks);
  } else {
    for (const LockRequest& req : plans[0]) {
      if (req.mode == LockMode::kReadCommitted) continue;
      auto held = held_locks_.find(std::make_tuple(req.table, req.partition, req.ekey));
      if (held == held_locks_.end() ||
          (held->second != LockMode::kExclusive && held->second != req.mode)) {
        fresh_locks++;
      }
      lock_st = AcquireRowLock(req.table, req.partition, req.ekey, req.mode);
      if (!lock_st.ok()) break;
    }
  }
  if (!lock_st.ok()) {
    fail_window(lock_st);
    return lock_st;
  }

  // Phase 3: the window's data work.
  std::vector<Access> accesses;
  size_t sync_equiv = 0, read_members = 0;
  hops::Status first_error = RunWindowData(flight, pays, accesses, &sync_equiv, &read_members);

  // Accounting: the whole window is ONE overlapped round trip (cost max,
  // not sum, of the member trips). A pure-write window whose locks were all
  // already held piggybacks for free, as a lone WriteBatch does; the trips
  // the synchronous path would have paid beyond that one are recorded in
  // overlapped_round_trips.
  const uint32_t rt = read_members > 0 || fresh_locks > 0 ? 1 : 0;
  if (!accesses.empty()) accesses.front().round_trips = rt;
  auto& s = cluster_->stats_;
  s.round_trips.fetch_add(rt, std::memory_order_relaxed);
  if (rt > 0 && sync_equiv > rt) {
    s.overlapped_round_trips.fetch_add(sync_equiv - rt, std::memory_order_relaxed);
  }
  if (trace_enabled_) {
    for (auto& a : accesses) trace_.accesses.push_back(std::move(a));
  }
  return first_error;
}

hops::Status Transaction::Insert(TableId table, Row row, std::optional<uint64_t> pv) {
  HOPS_RETURN_IF_ERROR(FlushPending());

  const Cluster::Table& t = cluster_->table(table);
  assert(row.size() == t.schema.columns.size());
  Key key = ExtractPk(t.schema, row);
  HOPS_ASSIGN_OR_RETURN(partition, cluster_->Route(t, key, pv));
  HOPS_RETURN_IF_ERROR(CheckUsable(partition));
  HOPS_RETURN_IF_ERROR(InjectFault(table, /*abort_tx=*/true));
  std::string ekey = EncodeKey(key);
  bool fresh_lock = !held_locks_.count({table, partition, ekey});
  HOPS_RETURN_IF_ERROR(AcquireRowLock(table, partition, ekey, LockMode::kExclusive));

  auto staged = write_set_.find({table, ekey});
  bool exists = staged != write_set_.end() ? !staged->second.is_delete
                                           : t.partitions[partition]->Contains(ekey);
  if (exists) return hops::Status::AlreadyExists(t.schema.table_name);
  write_set_[{table, ekey}] = StagedWrite{false, std::move(row), partition};
  uint32_t node = cluster_->PrimaryNode(partition).value_or(coordinator_);
  RecordAccess(AccessKind::kPkWrite, table,
               {PartTouch{partition, node, 1, node == coordinator_}}, fresh_lock ? 1 : 0);
  return hops::Status::Ok();
}

hops::Status Transaction::Update(TableId table, Row row, std::optional<uint64_t> pv) {
  HOPS_RETURN_IF_ERROR(FlushPending());

  const Cluster::Table& t = cluster_->table(table);
  assert(row.size() == t.schema.columns.size());
  Key key = ExtractPk(t.schema, row);
  HOPS_ASSIGN_OR_RETURN(partition, cluster_->Route(t, key, pv));
  HOPS_RETURN_IF_ERROR(CheckUsable(partition));
  HOPS_RETURN_IF_ERROR(InjectFault(table, /*abort_tx=*/true));
  std::string ekey = EncodeKey(key);
  bool fresh_lock = !held_locks_.count({table, partition, ekey});
  HOPS_RETURN_IF_ERROR(AcquireRowLock(table, partition, ekey, LockMode::kExclusive));

  auto staged = write_set_.find({table, ekey});
  bool exists = staged != write_set_.end() ? !staged->second.is_delete
                                           : t.partitions[partition]->Contains(ekey);
  if (!exists) return hops::Status::NotFound(t.schema.table_name);
  write_set_[{table, ekey}] = StagedWrite{false, std::move(row), partition};
  uint32_t node = cluster_->PrimaryNode(partition).value_or(coordinator_);
  RecordAccess(AccessKind::kPkWrite, table,
               {PartTouch{partition, node, 1, node == coordinator_}}, fresh_lock ? 1 : 0);
  return hops::Status::Ok();
}

hops::Status Transaction::Write(TableId table, Row row, std::optional<uint64_t> pv) {
  HOPS_RETURN_IF_ERROR(FlushPending());

  const Cluster::Table& t = cluster_->table(table);
  assert(row.size() == t.schema.columns.size());
  Key key = ExtractPk(t.schema, row);
  HOPS_ASSIGN_OR_RETURN(partition, cluster_->Route(t, key, pv));
  HOPS_RETURN_IF_ERROR(CheckUsable(partition));
  HOPS_RETURN_IF_ERROR(InjectFault(table, /*abort_tx=*/true));
  std::string ekey = EncodeKey(key);
  bool fresh_lock = !held_locks_.count({table, partition, ekey});
  HOPS_RETURN_IF_ERROR(AcquireRowLock(table, partition, ekey, LockMode::kExclusive));
  write_set_[{table, ekey}] = StagedWrite{false, std::move(row), partition};
  uint32_t node = cluster_->PrimaryNode(partition).value_or(coordinator_);
  RecordAccess(AccessKind::kPkWrite, table,
               {PartTouch{partition, node, 1, node == coordinator_}}, fresh_lock ? 1 : 0);
  return hops::Status::Ok();
}

hops::Status Transaction::Delete(TableId table, const Key& key, std::optional<uint64_t> pv) {
  HOPS_RETURN_IF_ERROR(FlushPending());

  const Cluster::Table& t = cluster_->table(table);
  HOPS_ASSIGN_OR_RETURN(partition, cluster_->Route(t, key, pv));
  HOPS_RETURN_IF_ERROR(CheckUsable(partition));
  HOPS_RETURN_IF_ERROR(InjectFault(table, /*abort_tx=*/true));
  std::string ekey = EncodeKey(key);
  bool fresh_lock = !held_locks_.count({table, partition, ekey});
  HOPS_RETURN_IF_ERROR(AcquireRowLock(table, partition, ekey, LockMode::kExclusive));

  auto staged = write_set_.find({table, ekey});
  bool exists = staged != write_set_.end() ? !staged->second.is_delete
                                           : t.partitions[partition]->Contains(ekey);
  if (!exists) return hops::Status::NotFound(t.schema.table_name);
  write_set_[{table, ekey}] = StagedWrite{true, {}, partition};
  uint32_t node = cluster_->PrimaryNode(partition).value_or(coordinator_);
  RecordAccess(AccessKind::kPkWrite, table,
               {PartTouch{partition, node, 1, node == coordinator_}}, fresh_lock ? 1 : 0);
  return hops::Status::Ok();
}

hops::Result<std::vector<Row>> Transaction::ScanOnePartition(TableId table, uint32_t partition,
                                                             const std::string& eprefix,
                                                             const ScanOptions& opts,
                                                             uint32_t* examined) {
  const Cluster::Table& t = cluster_->table(table);
  Partition& p = *t.partitions[partition];

  // Snapshot the committed candidates, then overlay this transaction's
  // staged writes so the scan observes read-your-writes semantics.
  auto snapshot = p.SnapshotPrefix(eprefix);
  std::map<std::string, Row> merged;
  for (auto& [ekey, row] : snapshot) merged.emplace(std::move(ekey), std::move(row));
  for (const auto& [tk, staged] : write_set_) {
    const auto& [wt, wekey] = tk;
    if (wt != table || staged.partition != partition) continue;
    if (!eprefix.empty() && wekey.compare(0, eprefix.size(), eprefix) != 0) continue;
    if (staged.is_delete) {
      merged.erase(wekey);
    } else {
      merged[wekey] = staged.row;
    }
  }

  std::vector<Row> results;
  for (auto& [ekey, row] : merged) {
    (*examined)++;
    if (!RowMatches(row, opts)) continue;
    if (opts.lock != LockMode::kReadCommitted) {
      if (opts.take_and_release) {
        // Quiesce primitive: wait for any in-flight writer, then let go.
        auto deadline =
            std::chrono::steady_clock::now() + cluster_->config().lock_wait_timeout;
        bool already_held = held_locks_.count({table, partition, ekey}) > 0;
        hops::Status st = p.AcquireLock(id_, ekey, opts.lock, deadline);
        if (!st.ok()) {
          cluster_->stats_.lock_timeouts.fetch_add(1, std::memory_order_relaxed);
          Abort();
          return st;
        }
        if (!already_held) p.ReleaseLock(id_, ekey);
      } else {
        HOPS_RETURN_IF_ERROR(AcquireRowLock(table, partition, ekey, opts.lock));
      }
      // The row may have changed while we waited for the lock; re-read the
      // committed value (our own staged writes cannot have changed).
      if (!write_set_.count({table, ekey})) {
        auto fresh = p.Get(ekey);
        if (!fresh) continue;  // deleted while waiting
        row = *std::move(fresh);
        if (!RowMatches(row, opts)) continue;
      }
    }
    results.push_back(std::move(row));
  }
  return results;
}

hops::Result<std::vector<Row>> Transaction::ScanPartitions(
    TableId table, const std::vector<uint32_t>& partitions, const Key& prefix,
    const ScanOptions& opts, AccessKind kind, bool full_scan) {
  const std::string eprefix = full_scan ? std::string() : EncodeKey(prefix);
  HOPS_RETURN_IF_ERROR(InjectFault(table, /*abort_tx=*/false));

  std::vector<Row> results;
  std::vector<PartTouch> touches;
  touches.reserve(partitions.size());

  for (uint32_t partition : partitions) {
    HOPS_RETURN_IF_ERROR(CheckUsable(partition));
    uint32_t examined = 0;
    HOPS_ASSIGN_OR_RETURN(part_rows,
                          ScanOnePartition(table, partition, eprefix, opts, &examined));
    for (auto& row : part_rows) results.push_back(std::move(row));
    uint32_t node = cluster_->PrimaryNode(partition).value_or(coordinator_);
    touches.push_back(PartTouch{partition, node, examined, node == coordinator_});
  }
  RecordAccess(kind, table, std::move(touches), /*round_trips=*/1);
  return results;
}

hops::Result<std::vector<Row>> Transaction::Ppis(TableId table, const Key& prefix,
                                                 const ScanOptions& opts,
                                                 std::optional<uint64_t> pv) {
  HOPS_RETURN_IF_ERROR(FlushPending());
  const Cluster::Table& t = cluster_->table(table);
  HOPS_ASSIGN_OR_RETURN(partition, cluster_->Route(t, prefix, pv));
  return ScanPartitions(table, {partition}, prefix, opts, AccessKind::kPpis,
                        /*full_scan=*/false);
}

hops::Result<std::vector<Row>> Transaction::IndexScan(TableId table, const Key& prefix,
                                                      const ScanOptions& opts) {
  HOPS_RETURN_IF_ERROR(FlushPending());
  std::vector<uint32_t> all(cluster_->num_partitions());
  for (uint32_t p = 0; p < all.size(); ++p) all[p] = p;
  return ScanPartitions(table, all, prefix, opts, AccessKind::kIndexScan,
                        /*full_scan=*/prefix.empty());
}

hops::Result<std::vector<Row>> Transaction::FullTableScan(TableId table,
                                                          const ScanOptions& opts) {
  HOPS_RETURN_IF_ERROR(FlushPending());
  std::vector<uint32_t> all(cluster_->num_partitions());
  for (uint32_t p = 0; p < all.size(); ++p) all[p] = p;
  return ScanPartitions(table, all, {}, opts, AccessKind::kFullTableScan,
                        /*full_scan=*/true);
}

hops::Status Transaction::Commit() {
  // Commit is a flush point: a failed batch -- in flight, or already
  // auto-flushed in a window the caller never Waited on -- fails the commit
  // with its own cause, since its writes are partially staged.
  hops::Status flush = FlushPending();
  if (flush.ok()) flush = pipeline_error_;
  if (!flush.ok()) {
    if (state_ == State::kActive) Abort();
    return flush;
  }
  if (state_ != State::kActive) return hops::Status::TxAborted("transaction is not active");
  if (!cluster_->IsAlive(coordinator_)) {
    Abort();
    return hops::Status::TxAborted("transaction coordinator failed");
  }
  // A commit-time fault aborts before any staged write applies -- the clean
  // pre-prepare abort window a real TC failure would hit.
  if (!write_set_.empty()) {
    HOPS_RETURN_IF_ERROR(InjectFault(FaultInjector::kAllTables, /*abort_tx=*/true));
  }

  // Prepare: every participating partition must be available.
  for (const auto& [tk, staged] : write_set_) {
    if (!cluster_->PartitionAvailable(staged.partition)) {
      Abort();
      return hops::Status::Unavailable("participant node group is down");
    }
  }

  // Commit: apply staged writes partition-atomically, in deterministic key
  // order. Cross-partition visibility during application is permitted by
  // read-committed isolation; locked readers still wait for our row locks.
  // A read-only transaction has nothing to prepare: its commit ack
  // piggybacks on the last read and costs no extra round trips.
  const uint32_t commit_round_trips = write_set_.empty() ? 0 : 2;
  std::vector<PartTouch> touches;
  for (const auto& [tk, staged] : write_set_) {
    const auto& [table_id, ekey] = tk;
    Partition& p = *cluster_->table(table_id).partitions[staged.partition];
    if (staged.is_delete) {
      p.ApplyDelete(ekey);
    } else {
      p.ApplyPut(ekey, staged.row);
    }
    uint32_t node = cluster_->PrimaryNode(staged.partition).value_or(coordinator_);
    MergeTouch(touches, staged.partition, 1, node, node == coordinator_);
  }
  RecordAccess(AccessKind::kCommit, 0, std::move(touches), commit_round_trips);

  // Release all row locks; deferred mux windows waiting on any of them can
  // retry immediately.
  const bool released_locks = !held_locks_.empty();
  for (const auto& [lk, mode] : held_locks_) {
    const auto& [table_id, partition, ekey] = lk;
    cluster_->table(table_id).partitions[partition]->ReleaseLock(id_, ekey);
  }
  held_locks_.clear();
  write_set_.clear();
  state_ = State::kCommitted;
  if (released_locks && mux_ != nullptr) mux_->NotifyLocksReleased();

  uint64_t commits = cluster_->stats_.commits.fetch_add(1, std::memory_order_relaxed) + 1;
  if (commits % Cluster::kGlobalCheckpointCommits == 0) {
    cluster_->gcp_epoch_.fetch_add(1, std::memory_order_relaxed);
  }
  return hops::Status::Ok();
}

void Transaction::Abort() {
  if (state_ != State::kActive) return;
  // Batches still in flight never execute; their handles report the abort.
  for (const auto& f : in_flight_) {
    batch_results_.emplace(f.seq,
                           hops::Status::TxAborted("transaction aborted before the batch flushed"));
  }
  in_flight_.clear();
  const bool released_locks = !held_locks_.empty();
  for (const auto& [lk, mode] : held_locks_) {
    const auto& [table_id, partition, ekey] = lk;
    cluster_->table(table_id).partitions[partition]->ReleaseLock(id_, ekey);
  }
  held_locks_.clear();
  write_set_.clear();
  state_ = State::kAborted;
  cluster_->stats_.aborts.fetch_add(1, std::memory_order_relaxed);
  if (released_locks && mux_ != nullptr) mux_->NotifyLocksReleased();
}

}  // namespace hops::ndb
