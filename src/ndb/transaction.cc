// Transaction execution: row locks acquired eagerly, writes staged in the
// transaction and applied atomically per partition at commit (2PC), scans
// that merge the transaction's own staged writes (read-your-writes), and
// take-and-release lock scans used by the subtree quiesce protocol.
#include <algorithm>
#include <cassert>

#include "ndb/cluster.h"

namespace hops::ndb {

namespace {

Key ExtractPk(const Schema& schema, const Row& row) {
  Key key;
  key.reserve(schema.primary_key.size());
  for (size_t idx : schema.primary_key) {
    assert(idx < row.size());
    key.push_back(row[idx]);
  }
  return key;
}

bool RowMatches(const Row& row, const Transaction::ScanOptions& opts) {
  if (opts.eq_filter) {
    const auto& [col, value] = *opts.eq_filter;
    if (col >= row.size() || !(row[col] == value)) return false;
  }
  if (opts.predicate && !opts.predicate(row)) return false;
  return true;
}

}  // namespace

Transaction::Transaction(Cluster* cluster, TxId id, uint32_t coordinator)
    : cluster_(cluster), id_(id), coordinator_(coordinator) {
  trace_.coordinator_node = coordinator;
}

Transaction::~Transaction() {
  if (state_ == State::kActive) Abort();
}

hops::Status Transaction::CheckUsable(uint32_t partition) {
  if (state_ != State::kActive) {
    return hops::Status::TxAborted("transaction is not active");
  }
  if (!cluster_->IsAlive(coordinator_)) {
    // Coordinator failover: NDB hands transactions of a failed TC to another
    // coordinator by aborting them; the namenode retries (paper §7.6.2).
    Abort();
    return hops::Status::TxAborted("transaction coordinator failed");
  }
  if (!cluster_->PartitionAvailable(partition)) {
    Abort();
    return hops::Status::Unavailable("entire node group for partition is down");
  }
  return hops::Status::Ok();
}

hops::Status Transaction::AcquireRowLock(TableId table, uint32_t partition,
                                         const std::string& ekey, LockMode mode) {
  if (mode == LockMode::kReadCommitted) return hops::Status::Ok();
  auto key = std::make_tuple(table, partition, ekey);
  auto it = held_locks_.find(key);
  if (it != held_locks_.end() &&
      (it->second == LockMode::kExclusive || it->second == mode)) {
    return hops::Status::Ok();  // already hold a lock at least this strong
  }
  auto deadline = std::chrono::steady_clock::now() + cluster_->config().lock_wait_timeout;
  Partition& p = *cluster_->table(table).partitions[partition];
  hops::Status st = p.AcquireLock(id_, ekey, mode, deadline);
  if (!st.ok()) {
    cluster_->stats_.lock_timeouts.fetch_add(1, std::memory_order_relaxed);
    Abort();  // NDB aborts the transaction whose lock wait times out
    return st;
  }
  held_locks_[key] = mode;
  return hops::Status::Ok();
}

void Transaction::RecordAccess(AccessKind kind, TableId table,
                               std::initializer_list<PartTouch> parts, uint32_t round_trips) {
  RecordAccess(kind, table, std::vector<PartTouch>(parts), round_trips);
}

void Transaction::RecordAccess(AccessKind kind, TableId table, std::vector<PartTouch> parts,
                               uint32_t round_trips) {
  uint64_t rows = 0;
  for (const auto& p : parts) rows += p.rows;
  auto& s = cluster_->stats_;
  switch (kind) {
    case AccessKind::kPkRead:
      s.pk_reads.fetch_add(1, std::memory_order_relaxed);
      s.rows_read.fetch_add(rows, std::memory_order_relaxed);
      break;
    case AccessKind::kPkWrite:
      break;  // rows counted at commit
    case AccessKind::kBatchRead:
      s.batch_reads.fetch_add(1, std::memory_order_relaxed);
      s.rows_read.fetch_add(rows, std::memory_order_relaxed);
      break;
    case AccessKind::kPpis:
      s.ppis_scans.fetch_add(1, std::memory_order_relaxed);
      s.rows_read.fetch_add(rows, std::memory_order_relaxed);
      break;
    case AccessKind::kIndexScan:
      s.index_scans.fetch_add(1, std::memory_order_relaxed);
      s.rows_read.fetch_add(rows, std::memory_order_relaxed);
      break;
    case AccessKind::kFullTableScan:
      s.full_table_scans.fetch_add(1, std::memory_order_relaxed);
      s.rows_read.fetch_add(rows, std::memory_order_relaxed);
      break;
    case AccessKind::kCommit:
      s.rows_written.fetch_add(rows, std::memory_order_relaxed);
      break;
  }
  if (!trace_enabled_) return;
  Access a;
  a.kind = kind;
  a.table = table;
  a.round_trips = round_trips;
  a.parts = std::move(parts);
  trace_.accesses.push_back(std::move(a));
}

hops::Result<Row> Transaction::Read(TableId table, const Key& key, LockMode mode,
                                    std::optional<uint64_t> pv) {
  const Cluster::Table& t = cluster_->table(table);
  HOPS_ASSIGN_OR_RETURN(partition, cluster_->Route(t, key, pv));
  HOPS_RETURN_IF_ERROR(CheckUsable(partition));
  std::string ekey = EncodeKey(key);
  HOPS_RETURN_IF_ERROR(AcquireRowLock(table, partition, ekey, mode));

  uint32_t node = cluster_->PrimaryNode(partition).value_or(coordinator_);
  RecordAccess(AccessKind::kPkRead, table,
               {PartTouch{partition, node, 1, node == coordinator_}});

  auto staged = write_set_.find({table, ekey});
  if (staged != write_set_.end()) {
    if (staged->second.is_delete) return hops::Status::NotFound();
    return staged->second.row;
  }
  auto committed = t.partitions[partition]->Get(ekey);
  if (!committed) return hops::Status::NotFound();
  return *std::move(committed);
}

hops::Result<std::vector<std::optional<Row>>> Transaction::BatchRead(
    TableId table, const std::vector<Key>& keys, LockMode mode,
    const std::vector<uint64_t>* pvs) {
  assert(pvs == nullptr || pvs->size() == keys.size());
  const Cluster::Table& t = cluster_->table(table);
  std::vector<std::optional<Row>> results(keys.size());
  std::vector<PartTouch> touches;
  for (size_t i = 0; i < keys.size(); ++i) {
    std::optional<uint64_t> pv = pvs ? std::optional<uint64_t>((*pvs)[i]) : std::nullopt;
    HOPS_ASSIGN_OR_RETURN(partition, cluster_->Route(t, keys[i], pv));
    HOPS_RETURN_IF_ERROR(CheckUsable(partition));
    std::string ekey = EncodeKey(keys[i]);
    HOPS_RETURN_IF_ERROR(AcquireRowLock(table, partition, ekey, mode));
    auto staged = write_set_.find({table, ekey});
    if (staged != write_set_.end()) {
      if (!staged->second.is_delete) results[i] = staged->second.row;
    } else if (auto committed = t.partitions[partition]->Get(ekey)) {
      results[i] = *std::move(committed);
    }
    uint32_t node = cluster_->PrimaryNode(partition).value_or(coordinator_);
    bool merged = false;
    for (auto& pt : touches) {
      if (pt.partition == partition) {
        pt.rows++;
        merged = true;
        break;
      }
    }
    if (!merged) touches.push_back(PartTouch{partition, node, 1, node == coordinator_});
  }
  RecordAccess(AccessKind::kBatchRead, table, std::move(touches), /*round_trips=*/1);
  return results;
}

hops::Status Transaction::Insert(TableId table, Row row, std::optional<uint64_t> pv) {
  const Cluster::Table& t = cluster_->table(table);
  assert(row.size() == t.schema.columns.size());
  Key key = ExtractPk(t.schema, row);
  HOPS_ASSIGN_OR_RETURN(partition, cluster_->Route(t, key, pv));
  HOPS_RETURN_IF_ERROR(CheckUsable(partition));
  std::string ekey = EncodeKey(key);
  bool fresh_lock = !held_locks_.count({table, partition, ekey});
  HOPS_RETURN_IF_ERROR(AcquireRowLock(table, partition, ekey, LockMode::kExclusive));

  auto staged = write_set_.find({table, ekey});
  bool exists = staged != write_set_.end() ? !staged->second.is_delete
                                           : t.partitions[partition]->Contains(ekey);
  if (exists) return hops::Status::AlreadyExists(t.schema.table_name);
  write_set_[{table, ekey}] = StagedWrite{false, std::move(row), partition};
  uint32_t node = cluster_->PrimaryNode(partition).value_or(coordinator_);
  RecordAccess(AccessKind::kPkWrite, table,
               {PartTouch{partition, node, 1, node == coordinator_}}, fresh_lock ? 1 : 0);
  return hops::Status::Ok();
}

hops::Status Transaction::Update(TableId table, Row row, std::optional<uint64_t> pv) {
  const Cluster::Table& t = cluster_->table(table);
  assert(row.size() == t.schema.columns.size());
  Key key = ExtractPk(t.schema, row);
  HOPS_ASSIGN_OR_RETURN(partition, cluster_->Route(t, key, pv));
  HOPS_RETURN_IF_ERROR(CheckUsable(partition));
  std::string ekey = EncodeKey(key);
  bool fresh_lock = !held_locks_.count({table, partition, ekey});
  HOPS_RETURN_IF_ERROR(AcquireRowLock(table, partition, ekey, LockMode::kExclusive));

  auto staged = write_set_.find({table, ekey});
  bool exists = staged != write_set_.end() ? !staged->second.is_delete
                                           : t.partitions[partition]->Contains(ekey);
  if (!exists) return hops::Status::NotFound(t.schema.table_name);
  write_set_[{table, ekey}] = StagedWrite{false, std::move(row), partition};
  uint32_t node = cluster_->PrimaryNode(partition).value_or(coordinator_);
  RecordAccess(AccessKind::kPkWrite, table,
               {PartTouch{partition, node, 1, node == coordinator_}}, fresh_lock ? 1 : 0);
  return hops::Status::Ok();
}

hops::Status Transaction::Write(TableId table, Row row, std::optional<uint64_t> pv) {
  const Cluster::Table& t = cluster_->table(table);
  assert(row.size() == t.schema.columns.size());
  Key key = ExtractPk(t.schema, row);
  HOPS_ASSIGN_OR_RETURN(partition, cluster_->Route(t, key, pv));
  HOPS_RETURN_IF_ERROR(CheckUsable(partition));
  std::string ekey = EncodeKey(key);
  bool fresh_lock = !held_locks_.count({table, partition, ekey});
  HOPS_RETURN_IF_ERROR(AcquireRowLock(table, partition, ekey, LockMode::kExclusive));
  write_set_[{table, ekey}] = StagedWrite{false, std::move(row), partition};
  uint32_t node = cluster_->PrimaryNode(partition).value_or(coordinator_);
  RecordAccess(AccessKind::kPkWrite, table,
               {PartTouch{partition, node, 1, node == coordinator_}}, fresh_lock ? 1 : 0);
  return hops::Status::Ok();
}

hops::Status Transaction::Delete(TableId table, const Key& key, std::optional<uint64_t> pv) {
  const Cluster::Table& t = cluster_->table(table);
  HOPS_ASSIGN_OR_RETURN(partition, cluster_->Route(t, key, pv));
  HOPS_RETURN_IF_ERROR(CheckUsable(partition));
  std::string ekey = EncodeKey(key);
  bool fresh_lock = !held_locks_.count({table, partition, ekey});
  HOPS_RETURN_IF_ERROR(AcquireRowLock(table, partition, ekey, LockMode::kExclusive));

  auto staged = write_set_.find({table, ekey});
  bool exists = staged != write_set_.end() ? !staged->second.is_delete
                                           : t.partitions[partition]->Contains(ekey);
  if (!exists) return hops::Status::NotFound(t.schema.table_name);
  write_set_[{table, ekey}] = StagedWrite{true, {}, partition};
  uint32_t node = cluster_->PrimaryNode(partition).value_or(coordinator_);
  RecordAccess(AccessKind::kPkWrite, table,
               {PartTouch{partition, node, 1, node == coordinator_}}, fresh_lock ? 1 : 0);
  return hops::Status::Ok();
}

hops::Result<std::vector<Row>> Transaction::ScanPartitions(
    TableId table, const std::vector<uint32_t>& partitions, const Key& prefix,
    const ScanOptions& opts, AccessKind kind, bool full_scan) {
  const Cluster::Table& t = cluster_->table(table);
  const std::string eprefix = full_scan ? std::string() : EncodeKey(prefix);

  std::vector<Row> results;
  std::vector<PartTouch> touches;
  touches.reserve(partitions.size());

  for (uint32_t partition : partitions) {
    HOPS_RETURN_IF_ERROR(CheckUsable(partition));
    Partition& p = *t.partitions[partition];

    // Snapshot the committed candidates, then overlay this transaction's
    // staged writes so the scan observes read-your-writes semantics.
    auto snapshot = p.SnapshotPrefix(eprefix);
    std::map<std::string, Row> merged;
    for (auto& [ekey, row] : snapshot) merged.emplace(std::move(ekey), std::move(row));
    for (const auto& [tk, staged] : write_set_) {
      const auto& [wt, wekey] = tk;
      if (wt != table || staged.partition != partition) continue;
      if (!eprefix.empty() && wekey.compare(0, eprefix.size(), eprefix) != 0) continue;
      if (staged.is_delete) {
        merged.erase(wekey);
      } else {
        merged[wekey] = staged.row;
      }
    }

    uint32_t examined = 0;
    for (auto& [ekey, row] : merged) {
      examined++;
      if (!RowMatches(row, opts)) continue;
      if (opts.lock != LockMode::kReadCommitted) {
        if (opts.take_and_release) {
          // Quiesce primitive: wait for any in-flight writer, then let go.
          auto deadline =
              std::chrono::steady_clock::now() + cluster_->config().lock_wait_timeout;
          bool already_held = held_locks_.count({table, partition, ekey}) > 0;
          hops::Status st = p.AcquireLock(id_, ekey, opts.lock, deadline);
          if (!st.ok()) {
            cluster_->stats_.lock_timeouts.fetch_add(1, std::memory_order_relaxed);
            Abort();
            return st;
          }
          if (!already_held) p.ReleaseLock(id_, ekey);
        } else {
          HOPS_RETURN_IF_ERROR(AcquireRowLock(table, partition, ekey, opts.lock));
        }
        // The row may have changed while we waited for the lock; re-read the
        // committed value (our own staged writes cannot have changed).
        if (!write_set_.count({table, ekey})) {
          auto fresh = p.Get(ekey);
          if (!fresh) continue;  // deleted while waiting
          row = *std::move(fresh);
          if (!RowMatches(row, opts)) continue;
        }
      }
      results.push_back(std::move(row));
    }
    uint32_t node = cluster_->PrimaryNode(partition).value_or(coordinator_);
    touches.push_back(PartTouch{partition, node, examined, node == coordinator_});
  }
  RecordAccess(kind, table, std::move(touches), /*round_trips=*/1);
  return results;
}

hops::Result<std::vector<Row>> Transaction::Ppis(TableId table, const Key& prefix,
                                                 const ScanOptions& opts,
                                                 std::optional<uint64_t> pv) {
  const Cluster::Table& t = cluster_->table(table);
  HOPS_ASSIGN_OR_RETURN(partition, cluster_->Route(t, prefix, pv));
  return ScanPartitions(table, {partition}, prefix, opts, AccessKind::kPpis,
                        /*full_scan=*/false);
}

hops::Result<std::vector<Row>> Transaction::IndexScan(TableId table, const Key& prefix,
                                                      const ScanOptions& opts) {
  std::vector<uint32_t> all(cluster_->num_partitions());
  for (uint32_t p = 0; p < all.size(); ++p) all[p] = p;
  return ScanPartitions(table, all, prefix, opts, AccessKind::kIndexScan,
                        /*full_scan=*/prefix.empty());
}

hops::Result<std::vector<Row>> Transaction::FullTableScan(TableId table,
                                                          const ScanOptions& opts) {
  std::vector<uint32_t> all(cluster_->num_partitions());
  for (uint32_t p = 0; p < all.size(); ++p) all[p] = p;
  return ScanPartitions(table, all, {}, opts, AccessKind::kFullTableScan,
                        /*full_scan=*/true);
}

hops::Status Transaction::Commit() {
  if (state_ != State::kActive) return hops::Status::TxAborted("transaction is not active");
  if (!cluster_->IsAlive(coordinator_)) {
    Abort();
    return hops::Status::TxAborted("transaction coordinator failed");
  }

  // Prepare: every participating partition must be available.
  for (const auto& [tk, staged] : write_set_) {
    if (!cluster_->PartitionAvailable(staged.partition)) {
      Abort();
      return hops::Status::Unavailable("participant node group is down");
    }
  }

  // Commit: apply staged writes partition-atomically, in deterministic key
  // order. Cross-partition visibility during application is permitted by
  // read-committed isolation; locked readers still wait for our row locks.
  std::vector<PartTouch> touches;
  for (const auto& [tk, staged] : write_set_) {
    const auto& [table_id, ekey] = tk;
    Partition& p = *cluster_->table(table_id).partitions[staged.partition];
    if (staged.is_delete) {
      p.ApplyDelete(ekey);
    } else {
      p.ApplyPut(ekey, staged.row);
    }
    bool merged = false;
    for (auto& pt : touches) {
      if (pt.partition == staged.partition) {
        pt.rows++;
        merged = true;
        break;
      }
    }
    if (!merged) {
      uint32_t node = cluster_->PrimaryNode(staged.partition).value_or(coordinator_);
      touches.push_back(PartTouch{staged.partition, node, 1, node == coordinator_});
    }
  }
  RecordAccess(AccessKind::kCommit, 0, std::move(touches), /*round_trips=*/2);

  // Release all row locks.
  for (const auto& [lk, mode] : held_locks_) {
    const auto& [table_id, partition, ekey] = lk;
    cluster_->table(table_id).partitions[partition]->ReleaseLock(id_, ekey);
  }
  held_locks_.clear();
  write_set_.clear();
  state_ = State::kCommitted;

  uint64_t commits = cluster_->stats_.commits.fetch_add(1, std::memory_order_relaxed) + 1;
  if (commits % Cluster::kGlobalCheckpointCommits == 0) {
    cluster_->gcp_epoch_.fetch_add(1, std::memory_order_relaxed);
  }
  return hops::Status::Ok();
}

void Transaction::Abort() {
  if (state_ != State::kActive) return;
  for (const auto& [lk, mode] : held_locks_) {
    const auto& [table_id, partition, ekey] = lk;
    cluster_->table(table_id).partitions[partition]->ReleaseLock(id_, ekey);
  }
  held_locks_.clear();
  write_set_.clear();
  state_ = State::kAborted;
  cluster_->stats_.aborts.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace hops::ndb
