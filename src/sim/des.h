// A small discrete-event simulation core (virtual time in microseconds).
//
// Why it exists: the paper's evaluation runs 60 namenodes, 12 NDB nodes and
// thousands of clients on a 72-machine testbed. This repository reproduces
// those cluster-scale results deterministically by replaying *measured*
// database-access traces (workload/trace.h) through a queueing model built
// from these primitives: multi-server FCFS stations (namenode handler pools,
// NDB datanode thread pools, journal nodes) and a virtual-time
// readers-writer lock (the HDFS global namesystem lock).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <queue>
#include <string>
#include <vector>

namespace hops::sim {

using VirtualTime = double;  // microseconds since simulation start

class Simulator {
 public:
  using Task = std::function<void()>;

  VirtualTime now() const { return now_; }

  void At(VirtualTime t, Task task);
  void After(double delay_us, Task task) { At(now_ + delay_us, std::move(task)); }

  // Runs events until the queue empties or virtual time passes `until`.
  void Run(VirtualTime until);
  bool empty() const { return queue_.empty(); }

 private:
  struct Event {
    VirtualTime t;
    uint64_t seq;
    Task task;
    bool operator>(const Event& other) const {
      return t != other.t ? t > other.t : seq > other.seq;
    }
  };
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  VirtualTime now_ = 0;
  uint64_t next_seq_ = 0;
};

// `servers` identical servers with one FCFS queue (an M/G/c-style station).
class Station {
 public:
  Station(Simulator* sim, int servers, std::string name);

  // Runs `service_us` of work when a server frees up, then calls `done`.
  void Submit(double service_us, Simulator::Task done);

  uint64_t completed() const { return completed_; }
  double busy_us() const { return busy_us_; }
  // Mean utilization over [0, now].
  double Utilization() const;
  size_t queue_length() const { return queue_.size(); }
  const std::string& name() const { return name_; }

 private:
  void StartService(double service_us, Simulator::Task done);

  Simulator* const sim_;
  const int servers_;
  const std::string name_;
  int busy_servers_ = 0;
  std::deque<std::pair<double, Simulator::Task>> queue_;
  uint64_t completed_ = 0;
  double busy_us_ = 0;
};

// FIFO readers-writer lock in virtual time: compatible readers are granted
// together; a queued writer blocks later readers (no starvation).
class RwLockRes {
 public:
  void AcquireShared(Simulator::Task granted);
  void AcquireExclusive(Simulator::Task granted);
  void ReleaseShared();
  void ReleaseExclusive();

  int active_readers() const { return active_readers_; }
  bool writer_active() const { return writer_active_; }

 private:
  void GrantWaiters();

  int active_readers_ = 0;
  bool writer_active_ = false;
  std::deque<std::pair<bool /*exclusive*/, Simulator::Task>> waiters_;
};

}  // namespace hops::sim
