// Calibration constants for the cluster models.
//
// Sources and derivations (see also EXPERIMENTS.md):
//  * Topology mirrors §7.1: NDB datanodes run 22 threads each; namenode
//    hosts are dual E5-2620v3 (24 hardware threads).
//  * hdfs_write_lock_hold_us: the active namenode's exclusive section per
//    mutation (namespace update + edit buffering). 200us reproduces the
//    paper's write-scaling: at 20% file writes HDFS serializes ~45us of
//    exclusive work per op => ~20K ops/s (Table 2 row 4 reports 19.9K).
//  * hdfs_dispatch_us: serial RPC dispatch/queueing; 8.5us caps the
//    read-mostly workload near 80K ops/s (§7.2 reports 78.9K).
//  * nn_cpu_per_op_us: HopsFS namenode-side cost per operation (RPC,
//    transaction template, entity (de)serialization). 24 threads / 900us
//    = ~27K ops/s per namenode, anchoring the equivalent-hardware point
//    (3 namenodes + 2 NDB nodes ~ HDFS's 5-server throughput, §7.2) while
//    the 60-namenode x 12-NDB point lands near 1M ops/s (paper: 1.25M),
//    bounded by measured partition skew in the database tier.
//  * db_row_cpu_us / db_access_base_us: NDB datanode CPU per row touched /
//    per partition share of an access. With the Spotify mix's measured
//    access/row counts this yields ~120-140us of DB CPU per operation,
//    which caps a 2-node NDB cluster (44 threads) near 330-370K ops/s --
//    the plateau of Figure 6's 2-node curve -- while 12 nodes (264
//    threads) stay unsaturated at 60 namenodes, also as in Figure 6.
//  * Network RTTs: 10 GbE + kernel stack, ~120-150us per request round
//    trip at the paper's load levels.
//  * hdfs_failover_s: §7.6.1 measures 8-10s of downtime in the benchmark
//    setting (minimal metadata); 9s splits the difference.
#pragma once

namespace hops::sim {

struct Calibration {
  // --- shared network -------------------------------------------------------
  double client_nn_rtt_us = 150;
  double nn_db_rtt_us = 120;

  // --- HopsFS ---------------------------------------------------------------
  int nn_servers = 24;             // handler threads per namenode host
  int db_servers_per_node = 22;    // NDB threads per datanode (§7.1)
  double nn_cpu_per_op_us = 900;   // namenode CPU per operation
  double db_access_base_us = 10;   // per partition share of an access
  double db_row_cpu_us = 14;       // per row examined/written
  double client_failover_penalty_us = 3000;  // detect dead NN + reconnect

  // --- HDFS -----------------------------------------------------------------
  double hdfs_dispatch_us = 8.5;        // serial RPC dispatch (c = 1)
  double hdfs_read_lock_hold_us = 10;   // shared-lock section per read
  double hdfs_write_lock_hold_us = 200; // exclusive section per mutation
  double hdfs_journal_delay_us = 350;   // quorum sync latency
  double hdfs_journal_service_us = 20;  // journal serialization (c = 1)
  double hdfs_failover_s = 9.0;         // §7.6.1: 8-10s observed
};

}  // namespace hops::sim
