#include "sim/model.h"

#include <cassert>

#include "util/rng.h"

namespace hops::sim {

namespace {

bool IsMutation(wl::OpType op) {
  switch (op) {
    case wl::OpType::kRead:
    case wl::OpType::kStat:
    case wl::OpType::kList:
    case wl::OpType::kContentSummary:
      return false;
    default:
      return true;
  }
}

class TimelineRecorder {
 public:
  TimelineRecorder(double bucket_s, SimResult* result) : bucket_s_(bucket_s), result_(result) {}

  void Record(VirtualTime now_us) {
    if (bucket_s_ <= 0) return;
    size_t bucket = static_cast<size_t>(now_us / (bucket_s_ * 1e6));
    if (buckets_.size() <= bucket) buckets_.resize(bucket + 1, 0);
    buckets_[bucket]++;
  }

  void Finish() {
    if (bucket_s_ <= 0) return;
    result_->timeline_bucket_s = bucket_s_;
    for (uint64_t n : buckets_) {
      result_->timeline_ops_per_sec.push_back(static_cast<double>(n) / bucket_s_);
    }
  }

 private:
  double bucket_s_;
  SimResult* result_;
  std::vector<uint64_t> buckets_;
};

// ---------------------------------------------------------------------------
// HopsFS model
// ---------------------------------------------------------------------------

class HopsFsSimulation {
 public:
  HopsFsSimulation(const HopsTopology& topology, const WorkloadSpec& workload,
                   const Calibration& cal, const std::vector<FailureEvent>& failures,
                   double timeline_bucket_s)
      : topology_(topology),
        workload_(workload),
        cal_(cal),
        sampler_(*workload.mix),
        rng_(workload.seed),
        timeline_(timeline_bucket_s, &result_) {
    assert(workload_.traces != nullptr);
    for (int i = 0; i < topology_.num_namenodes; ++i) {
      nns_.push_back(std::make_unique<Station>(&sim_, cal_.nn_servers,
                                               "nn" + std::to_string(i)));
      nn_alive_.push_back(true);
    }
    for (int i = 0; i < topology_.num_db_nodes; ++i) {
      dbs_.push_back(std::make_unique<Station>(&sim_, cal_.db_servers_per_node,
                                               "ndb" + std::to_string(i)));
    }
    for (const auto& f : failures) {
      sim_.At(f.at_s * 1e6, [this, f] {
        if (f.kill_namenode >= 0) nn_alive_[static_cast<size_t>(f.kill_namenode)] = false;
        if (f.revive_namenode >= 0) nn_alive_[static_cast<size_t>(f.revive_namenode)] = true;
      });
    }
  }

  SimResult Run() {
    clients_.resize(static_cast<size_t>(workload_.num_clients));
    for (size_t c = 0; c < clients_.size(); ++c) {
      clients_[c].id = c;
      clients_[c].nn = static_cast<int>(c) % topology_.num_namenodes;
      // Stagger arrivals over one RTT to avoid a thundering-herd artifact.
      double jitter = static_cast<double>(c % 97) * cal_.client_nn_rtt_us / 97.0;
      sim_.At(jitter, [this, c] { StartOp(clients_[c]); });
    }
    double horizon_us = workload_.duration_s * 1e6;
    sim_.Run(horizon_us);
    double measured_s = workload_.duration_s - workload_.warmup_s;
    result_.ops_per_sec = measured_s > 0 ? static_cast<double>(result_.ops) / measured_s : 0;
    double nn_busy = 0, db_busy = 0;
    for (const auto& nn : nns_) nn_busy += nn->Utilization();
    for (const auto& db : dbs_) db_busy += db->Utilization();
    result_.nn_utilization = nn_busy / static_cast<double>(nns_.size());
    result_.db_utilization = db_busy / static_cast<double>(dbs_.size());
    timeline_.Finish();
    return std::move(result_);
  }

 private:
  struct Client {
    size_t id = 0;
    int nn = 0;
    VirtualTime op_start = 0;
    wl::OpType op{};
    const wl::OpTrace* trace = nullptr;
    size_t access_idx = 0;
    size_t parts_pending = 0;
    // Set once the op's latency was recorded -- at the first background
    // access for asynchronously committed ops, at FinishOp otherwise.
    bool latency_recorded = false;
  };

  Station& DbFor(uint32_t partition) {
    return *dbs_[partition % dbs_.size()];
  }

  void StartOp(Client& c) {
    c.op_start = sim_.now();
    c.latency_recorded = false;
    auto [op, on_dir] = sampler_.Sample(rng_);
    (void)on_dir;  // dir targeting is baked into the captured traces
    c.op = op;
    const auto& pool = workload_.traces->PoolFor(op);
    if (pool.empty()) {  // nothing to replay; skip this op type
      sim_.After(cal_.client_nn_rtt_us, [this, &c] { StartOp(c); });
      return;
    }
    c.trace = &pool[rng_.Below(pool.size())];
    c.access_idx = 0;

    double extra = 0;
    if (!nn_alive_[static_cast<size_t>(c.nn)]) {
      // Transparent client failover (§7.6.1): detect, pick a survivor,
      // stay sticky on it.
      extra = cal_.client_failover_penalty_us;
      std::vector<int> alive;
      for (size_t i = 0; i < nn_alive_.size(); ++i) {
        if (nn_alive_[i]) alive.push_back(static_cast<int>(i));
      }
      if (alive.empty()) {
        sim_.After(10000, [this, &c] { StartOp(c); });  // probe again later
        return;
      }
      c.nn = alive[rng_.Below(alive.size())];
    }
    // Request RTT to the namenode, then namenode CPU, then the database
    // access sequence recorded in the trace.
    sim_.After(cal_.client_nn_rtt_us + extra, [this, &c] {
      nns_[static_cast<size_t>(c.nn)]->Submit(cal_.nn_cpu_per_op_us,
                                              [this, &c] { NextAccess(c); });
    });
  }

  void NextAccess(Client& c) {
    // Piggybacked lock acquisitions (writes whose row lock was already
    // covered by a batch or an earlier access) cost no round trip and their
    // rows are serviced at commit.
    while (c.access_idx < c.trace->accesses.size() &&
           c.trace->accesses[c.access_idx].round_trips == 0 &&
           c.trace->accesses[c.access_idx].kind == kv::AccessKind::kPkWrite) {
      c.access_idx++;
    }
    if (c.access_idx >= c.trace->accesses.size()) {
      FinishOp(c);
      return;
    }
    // An overlapped round-trip window: the carrying access plus every
    // immediately following rider (round_trips == 0). A rider shares the
    // carrier's network trip AND its completion wave -- all touched
    // partitions scatter together and the window completes when the slowest
    // one answers, so k overlapped trips cost max, not sum, of their
    // latencies (the async pipelined engine's wall-clock win). An access
    // marked co_scheduled opens a NEW window whose trip another
    // transaction's window already paid in the same completion-mux round:
    // it scatters like any carrier but charges no network trip of its own,
    // so windows merged across transactions also cost max, not sum.
    const kv::Access& carrier = c.trace->accesses[c.access_idx++];
    // Asynchronous metadata commits: accesses marked background are the
    // applier's drain, captured past the acknowledgment point. The client
    // was answered when the foreground sequence (validation + intent
    // append) completed, so the op's latency is recorded here; the
    // background accesses still occupy the database stations and delay op
    // completion, so throughput stays the applied rate.
    if (carrier.background) RecordOpMetrics(c);
    std::vector<const kv::Access*> window{&carrier};
    while (c.access_idx < c.trace->accesses.size() &&
           c.trace->accesses[c.access_idx].round_trips == 0 &&
           !c.trace->accesses[c.access_idx].co_scheduled) {
      const kv::Access& rider = c.trace->accesses[c.access_idx++];
      if (rider.kind == kv::AccessKind::kPkWrite) continue;  // piggybacked lock
      window.push_back(&rider);
    }
    double rtt = carrier.co_scheduled ? 0 : cal_.nn_db_rtt_us * carrier.round_trips;
    sim_.After(rtt, [this, &c, window = std::move(window)] {
      // Scatter: every partition touched anywhere in the window serves its
      // share in parallel.
      c.parts_pending = 0;
      for (const kv::Access* access : window) c.parts_pending += access->parts.size();
      if (c.parts_pending == 0) {
        NextAccess(c);
        return;
      }
      for (const kv::Access* access : window) {
        for (const auto& part : access->parts) {
          double service = cal_.db_access_base_us + part.rows * cal_.db_row_cpu_us;
          DbFor(part.partition).Submit(service, [this, &c] {
            if (--c.parts_pending == 0) NextAccess(c);
          });
        }
      }
    });
  }

  void RecordOpMetrics(Client& c) {
    if (c.latency_recorded) return;
    c.latency_recorded = true;
    double latency = sim_.now() - c.op_start + cal_.client_nn_rtt_us;
    if (sim_.now() >= workload_.warmup_s * 1e6) {
      result_.ops++;
      result_.latency_us.Record(latency);
      result_.per_op_latency_us[c.op].Record(latency);
    }
  }

  void FinishOp(Client& c) {
    RecordOpMetrics(c);
    timeline_.Record(sim_.now());
    StartOp(c);
  }

  const HopsTopology topology_;
  const WorkloadSpec workload_;
  const Calibration cal_;
  Simulator sim_;
  std::vector<std::unique_ptr<Station>> nns_;
  std::vector<std::unique_ptr<Station>> dbs_;
  std::vector<bool> nn_alive_;
  std::vector<Client> clients_;
  wl::OpSampler sampler_;
  hops::Rng rng_;
  SimResult result_;
  TimelineRecorder timeline_;
};

// ---------------------------------------------------------------------------
// HDFS model
// ---------------------------------------------------------------------------

class HdfsSimulation {
 public:
  HdfsSimulation(const WorkloadSpec& workload, const Calibration& cal,
                 double kill_active_at_s, double timeline_bucket_s)
      : workload_(workload),
        cal_(cal),
        sampler_(*workload.mix),
        rng_(workload.seed),
        dispatch_(&sim_, 1, "dispatch"),
        journal_(&sim_, 1, "journal"),
        timeline_(timeline_bucket_s, &result_) {
    if (kill_active_at_s >= 0) {
      sim_.At(kill_active_at_s * 1e6, [this] { halted_ = true; });
      // The ZooKeeper-coordinated failover promotes the standby after the
      // measured 8-10s window (§7.6.1); service resumes.
      sim_.At((kill_active_at_s + cal_.hdfs_failover_s) * 1e6, [this] {
        halted_ = false;
        auto parked = std::move(parked_);
        parked_.clear();
        for (auto& task : parked) task();
      });
    }
  }

  SimResult Run() {
    clients_.resize(static_cast<size_t>(workload_.num_clients));
    for (size_t c = 0; c < clients_.size(); ++c) {
      clients_[c].id = c;
      double jitter = static_cast<double>(c % 97) * cal_.client_nn_rtt_us / 97.0;
      sim_.At(jitter, [this, c] { StartOp(clients_[c]); });
    }
    sim_.Run(workload_.duration_s * 1e6);
    double measured_s = workload_.duration_s - workload_.warmup_s;
    result_.ops_per_sec = measured_s > 0 ? static_cast<double>(result_.ops) / measured_s : 0;
    timeline_.Finish();
    return std::move(result_);
  }

 private:
  struct Client {
    size_t id = 0;
    VirtualTime op_start = 0;
    wl::OpType op{};
  };

  void StartOp(Client& c) {
    c.op_start = sim_.now();
    c.op = sampler_.Sample(rng_).first;
    sim_.After(cal_.client_nn_rtt_us, [this, &c] { Dispatch(c); });
  }

  void Dispatch(Client& c) {
    if (halted_) {
      // Active namenode dead, standby not yet promoted: the request waits.
      parked_.push_back([this, &c] { Dispatch(c); });
      return;
    }
    dispatch_.Submit(cal_.hdfs_dispatch_us, [this, &c] {
      if (IsMutation(c.op)) {
        lock_.AcquireExclusive([this, &c] {
          sim_.After(cal_.hdfs_write_lock_hold_us, [this, &c] {
            lock_.ReleaseExclusive();
            // The edit syncs to the journal quorum after the lock drops.
            sim_.After(cal_.hdfs_journal_delay_us, [this, &c] {
              journal_.Submit(cal_.hdfs_journal_service_us, [this, &c] { FinishOp(c); });
            });
          });
        });
      } else {
        lock_.AcquireShared([this, &c] {
          sim_.After(cal_.hdfs_read_lock_hold_us, [this, &c] {
            lock_.ReleaseShared();
            FinishOp(c);
          });
        });
      }
    });
  }

  void FinishOp(Client& c) {
    double latency = sim_.now() - c.op_start + cal_.client_nn_rtt_us;
    if (sim_.now() >= workload_.warmup_s * 1e6) {
      result_.ops++;
      result_.latency_us.Record(latency);
      result_.per_op_latency_us[c.op].Record(latency);
    }
    timeline_.Record(sim_.now());
    StartOp(c);
  }

  const WorkloadSpec workload_;
  const Calibration cal_;
  Simulator sim_;
  wl::OpSampler sampler_;
  hops::Rng rng_;
  Station dispatch_;
  Station journal_;
  RwLockRes lock_;
  bool halted_ = false;
  std::vector<Simulator::Task> parked_;
  std::vector<Client> clients_;
  SimResult result_;
  TimelineRecorder timeline_;
};

}  // namespace

SimResult SimulateHopsFs(const HopsTopology& topology, const WorkloadSpec& workload,
                         const Calibration& cal, const std::vector<FailureEvent>& failures,
                         double timeline_bucket_s) {
  HopsFsSimulation sim(topology, workload, cal, failures, timeline_bucket_s);
  return sim.Run();
}

SimResult SimulateHdfs(const WorkloadSpec& workload, const Calibration& cal,
                       double kill_active_at_s, double timeline_bucket_s) {
  HdfsSimulation sim(workload, cal, kill_active_at_s, timeline_bucket_s);
  return sim.Run();
}

}  // namespace hops::sim
