#include "sim/des.h"

#include <cassert>

namespace hops::sim {

void Simulator::At(VirtualTime t, Task task) {
  assert(t >= now_ && "cannot schedule into the past");
  queue_.push(Event{t, next_seq_++, std::move(task)});
}

void Simulator::Run(VirtualTime until) {
  while (!queue_.empty()) {
    const Event& top = queue_.top();
    if (top.t > until) break;
    // Move out before popping; the task may schedule new events.
    Task task = std::move(const_cast<Event&>(top).task);
    now_ = top.t;
    queue_.pop();
    task();
  }
  if (now_ < until) now_ = until;
}

Station::Station(Simulator* sim, int servers, std::string name)
    : sim_(sim), servers_(servers), name_(std::move(name)) {
  assert(servers_ > 0);
}

void Station::Submit(double service_us, Simulator::Task done) {
  if (busy_servers_ < servers_) {
    StartService(service_us, std::move(done));
  } else {
    queue_.emplace_back(service_us, std::move(done));
  }
}

void Station::StartService(double service_us, Simulator::Task done) {
  busy_servers_++;
  busy_us_ += service_us;
  sim_->After(service_us, [this, done = std::move(done)] {
    busy_servers_--;
    completed_++;
    if (!queue_.empty()) {
      auto [svc, next] = std::move(queue_.front());
      queue_.pop_front();
      StartService(svc, std::move(next));
    }
    done();
  });
}

double Station::Utilization() const {
  double elapsed = sim_->now();
  if (elapsed <= 0) return 0;
  return busy_us_ / (elapsed * servers_);
}

void RwLockRes::AcquireShared(Simulator::Task granted) {
  if (!writer_active_ && waiters_.empty()) {
    active_readers_++;
    granted();
    return;
  }
  waiters_.emplace_back(false, std::move(granted));
}

void RwLockRes::AcquireExclusive(Simulator::Task granted) {
  if (!writer_active_ && active_readers_ == 0 && waiters_.empty()) {
    writer_active_ = true;
    granted();
    return;
  }
  waiters_.emplace_back(true, std::move(granted));
}

void RwLockRes::ReleaseShared() {
  assert(active_readers_ > 0);
  active_readers_--;
  GrantWaiters();
}

void RwLockRes::ReleaseExclusive() {
  assert(writer_active_);
  writer_active_ = false;
  GrantWaiters();
}

void RwLockRes::GrantWaiters() {
  while (!waiters_.empty()) {
    auto& [exclusive, task] = waiters_.front();
    if (exclusive) {
      if (writer_active_ || active_readers_ > 0) break;
      writer_active_ = true;
      Simulator::Task granted = std::move(task);
      waiters_.pop_front();
      granted();
      break;
    }
    if (writer_active_) break;
    active_readers_++;
    Simulator::Task granted = std::move(task);
    waiters_.pop_front();
    granted();
  }
}

}  // namespace hops::sim
