// Cluster models: HopsFS (stateless namenodes + NDB node stations, driven by
// measured database-access traces) and HDFS (global readers-writer lock +
// serial dispatch + quorum journal). Used by every throughput/latency
// figure benchmark; see DESIGN.md §2 for why simulation substitutes for the
// paper's 72-machine testbed and calibration.h for the constants.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "sim/calibration.h"
#include "sim/des.h"
#include "util/histogram.h"
#include "workload/spec.h"
#include "workload/trace.h"

namespace hops::sim {

struct WorkloadSpec {
  const wl::OpMix* mix = nullptr;
  const wl::TracePools* traces = nullptr;  // required for the HopsFS model
  int num_clients = 256;
  double duration_s = 0.25;  // measured window (virtual time)
  double warmup_s = 0.05;
  uint64_t seed = 1;
};

struct HopsTopology {
  int num_namenodes = 2;
  int num_db_nodes = 4;
};

// Kill (and optionally revive) namenodes at virtual times, for Figure 10.
struct FailureEvent {
  double at_s = 0;
  int kill_namenode = -1;    // index, -1 = none
  int revive_namenode = -1;  // index, -1 = none
};

struct SimResult {
  uint64_t ops = 0;
  double ops_per_sec = 0;
  hops::Histogram latency_us;
  std::map<wl::OpType, hops::Histogram> per_op_latency_us;
  double nn_utilization = 0;   // HopsFS namenode stations
  double db_utilization = 0;   // NDB datanode stations
  // Completed operations per timeline bucket (including warmup), when
  // timeline_bucket_s > 0.
  std::vector<double> timeline_ops_per_sec;
  double timeline_bucket_s = 0;
};

SimResult SimulateHopsFs(const HopsTopology& topology, const WorkloadSpec& workload,
                         const Calibration& cal = {},
                         const std::vector<FailureEvent>& failures = {},
                         double timeline_bucket_s = 0);

// `kill_active_at_s` < 0 disables the failover experiment.
SimResult SimulateHdfs(const WorkloadSpec& workload, const Calibration& cal = {},
                       double kill_active_at_s = -1, double timeline_bucket_s = 0);

}  // namespace hops::sim
