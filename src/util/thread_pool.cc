#include "util/thread_pool.h"

#include <cassert>

namespace hops {

ThreadPool::ThreadPool(size_t num_threads) {
  assert(num_threads > 0);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  task_ready_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    assert(!stop_);
    queue_.push_back(std::move(task));
  }
  task_ready_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_ready_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace hops
