// Log-bucketed latency histogram (HDR-style), thread-compatible via external
// locking or per-thread instances + Merge(). Values are in microseconds.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hops {

class Histogram {
 public:
  Histogram();

  void Record(double value_us);
  void Merge(const Histogram& other);
  void Reset();

  uint64_t count() const { return count_; }
  double min() const;
  double max() const { return max_; }
  double Mean() const;
  // q in [0, 1]; returns an interpolated bucket value.
  double Percentile(double q) const;

  std::string Summary() const;  // "n=... mean=... p50=... p99=... max=..."

 private:
  static constexpr int kBucketsPerDecade = 32;
  static constexpr int kDecades = 10;  // 1us .. ~10^10 us (hours)
  static constexpr int kNumBuckets = kBucketsPerDecade * kDecades + 2;

  static int BucketFor(double value_us);
  static double BucketMid(int bucket);

  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

}  // namespace hops
