#include "util/status.h"

namespace hops {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kAlreadyExists: return "ALREADY_EXISTS";
    case StatusCode::kLockTimeout: return "LOCK_TIMEOUT";
    case StatusCode::kTxAborted: return "TX_ABORTED";
    case StatusCode::kConflict: return "CONFLICT";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kPermissionDenied: return "PERMISSION_DENIED";
    case StatusCode::kQuotaExceeded: return "QUOTA_EXCEEDED";
    case StatusCode::kSubtreeLocked: return "SUBTREE_LOCKED";
    case StatusCode::kLeaseConflict: return "LEASE_CONFLICT";
    case StatusCode::kNotEmpty: return "NOT_EMPTY";
    case StatusCode::kNotDirectory: return "NOT_DIRECTORY";
    case StatusCode::kIsDirectory: return "IS_DIRECTORY";
    case StatusCode::kFailover: return "FAILOVER";
    case StatusCode::kInternal: return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  std::string out(StatusCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace hops
