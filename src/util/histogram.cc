#include "util/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

namespace hops {

Histogram::Histogram() : buckets_(kNumBuckets, 0) {
  min_ = std::numeric_limits<double>::infinity();
}

int Histogram::BucketFor(double value_us) {
  if (value_us < 1.0) return 0;
  double logv = std::log10(value_us);
  int b = 1 + static_cast<int>(logv * kBucketsPerDecade);
  return std::min(b, kNumBuckets - 1);
}

double Histogram::BucketMid(int bucket) {
  if (bucket <= 0) return 0.5;
  double lo = std::pow(10.0, static_cast<double>(bucket - 1) / kBucketsPerDecade);
  double hi = std::pow(10.0, static_cast<double>(bucket) / kBucketsPerDecade);
  return (lo + hi) / 2;
}

void Histogram::Record(double value_us) {
  buckets_[BucketFor(value_us)]++;
  count_++;
  sum_ += value_us;
  min_ = std::min(min_, value_us);
  max_ = std::max(max_, value_us);
}

void Histogram::Merge(const Histogram& other) {
  for (int i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0;
  min_ = std::numeric_limits<double>::infinity();
  max_ = 0;
}

double Histogram::min() const { return count_ == 0 ? 0 : min_; }

double Histogram::Mean() const { return count_ == 0 ? 0 : sum_ / static_cast<double>(count_); }

double Histogram::Percentile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  uint64_t target = static_cast<uint64_t>(q * static_cast<double>(count_ - 1)) + 1;
  uint64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= target) {
      // Clamp the interpolated mid to the observed extremes for stability.
      return std::clamp(BucketMid(i), min(), max_);
    }
  }
  return max_;
}

std::string Histogram::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%llu mean=%.1fus p50=%.1fus p99=%.1fus max=%.1fus",
                static_cast<unsigned long long>(count_), Mean(), Percentile(0.50),
                Percentile(0.99), max_);
  return buf;
}

}  // namespace hops
