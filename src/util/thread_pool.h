// Fixed-size worker pool. The HopsFS subtree-operation protocol uses a pool
// to run partition-pruned quiesce scans in parallel (paper §6.1 phase 2);
// tests use it to generate concurrent conflicting operations.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hops {

class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void Submit(std::function<void()> task);
  // Blocks until every submitted task has finished executing.
  void Wait();

  size_t size() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  size_t in_flight_ = 0;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace hops
