// Stable 64-bit hashing. Partition routing must be identical across
// namenodes and across process restarts, so we never use std::hash here.
#pragma once

#include <cstdint>
#include <string_view>

namespace hops {

inline uint64_t HashU64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

// FNV-1a, then finalized with the 64-bit mixer above.
inline uint64_t HashBytes(std::string_view bytes) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return HashU64(h);
}

inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return HashU64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

}  // namespace hops
