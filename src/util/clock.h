// Wall-clock helpers (timestamps stored in metadata rows).
#pragma once

#include <chrono>
#include <cstdint>

namespace hops {

inline int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

inline int64_t MonotonicMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace hops
