// Deterministic random number generation for workloads and tests.
//
// Every experiment seeds its own Rng so runs are reproducible; nothing in the
// repo consumes global random state.
#pragma once

#include <cassert>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

namespace hops {

// splitmix64: tiny, high-quality 64-bit mixer. Used both as the core PRNG
// step and as the stable hash for partition routing (see hash.h).
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eed5eed5eedULL) : state_(seed) {}

  uint64_t Next() { return SplitMix64(state_); }

  // Uniform in [0, n).
  uint64_t Below(uint64_t n) {
    assert(n > 0);
    return Next() % n;
  }

  // Uniform in [lo, hi] inclusive.
  int64_t Range(int64_t lo, int64_t hi) {
    assert(lo <= hi);
    return lo + static_cast<int64_t>(Below(static_cast<uint64_t>(hi - lo + 1)));
  }

  double NextDouble() {  // [0, 1)
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  bool Chance(double p) { return NextDouble() < p; }

  // Exponential with the given mean (used for think times / service noise).
  double Exponential(double mean) {
    double u = NextDouble();
    if (u >= 1.0) u = 0.9999999999;
    return -mean * std::log1p(-u);
  }

  std::string RandomName(size_t length) {
    static constexpr char kAlphabet[] = "abcdefghijklmnopqrstuvwxyz0123456789";
    std::string s(length, 'a');
    for (auto& c : s) c = kAlphabet[Below(sizeof(kAlphabet) - 1)];
    return s;
  }

 private:
  uint64_t state_;
};

// Zipf(s) sampler over ranks [0, n). File access popularity is heavy-tailed
// (the paper cites Yahoo: 3% of files get 80% of accesses); the workload
// generator uses this to pick operation targets.
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double exponent) : cdf_(n) {
    assert(n > 0);
    double sum = 0;
    for (size_t i = 0; i < n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i + 1), exponent);
      cdf_[i] = sum;
    }
    for (auto& v : cdf_) v /= sum;
  }

  size_t Sample(Rng& rng) const {
    double u = rng.NextDouble();
    // Binary search the CDF.
    size_t lo = 0, hi = cdf_.size() - 1;
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      if (cdf_[mid] < u) lo = mid + 1; else hi = mid;
    }
    return lo;
  }

  size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

// Sample an index from a discrete distribution given by non-negative weights.
class DiscreteSampler {
 public:
  explicit DiscreteSampler(std::vector<double> weights) : cdf_(std::move(weights)) {
    double sum = 0;
    for (auto& w : cdf_) { assert(w >= 0); sum += w; w = sum; }
    assert(sum > 0);
    for (auto& w : cdf_) w /= sum;
  }

  size_t Sample(Rng& rng) const {
    double u = rng.NextDouble();
    size_t lo = 0, hi = cdf_.size() - 1;
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      if (cdf_[mid] < u) lo = mid + 1; else hi = mid;
    }
    return lo;
  }

 private:
  std::vector<double> cdf_;
};

}  // namespace hops
