// Status / Result error-handling primitives used across the code base.
//
// The storage layers report recoverable conditions (lock timeouts, aborted
// transactions, missing rows, unavailable partitions) through Status values
// rather than exceptions, so callers are forced to consider retry logic at
// every call site -- the paper's namenodes retry aborted transactions and
// clients retry failed namenodes.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace hops {

enum class StatusCode {
  kOk = 0,
  kNotFound,          // row / path component does not exist
  kAlreadyExists,     // insert over an existing primary key / path
  kLockTimeout,       // row-lock wait exceeded the configured timeout
  kTxAborted,         // transaction aborted (conflict, coordinator failure)
  kConflict,          // optimistic-concurrency validation failed at commit
  kUnavailable,       // partition / node group / cluster not available
  kInvalidArgument,
  kPermissionDenied,
  kQuotaExceeded,
  kSubtreeLocked,     // an inode op encountered an active subtree lock
  kLeaseConflict,     // file already under construction by another client
  kNotEmpty,          // non-recursive delete of a non-empty directory
  kNotDirectory,
  kIsDirectory,
  kFailover,          // namenode failed; client should retry elsewhere
  kInternal,
};

std::string_view StatusCodeName(StatusCode code);

// Value-semantic error descriptor. Successful Status is cheap (no allocation).
class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status NotFound(std::string m = {}) { return {StatusCode::kNotFound, std::move(m)}; }
  static Status AlreadyExists(std::string m = {}) { return {StatusCode::kAlreadyExists, std::move(m)}; }
  static Status LockTimeout(std::string m = {}) { return {StatusCode::kLockTimeout, std::move(m)}; }
  static Status TxAborted(std::string m = {}) { return {StatusCode::kTxAborted, std::move(m)}; }
  static Status Conflict(std::string m = {}) { return {StatusCode::kConflict, std::move(m)}; }
  static Status Unavailable(std::string m = {}) { return {StatusCode::kUnavailable, std::move(m)}; }
  static Status InvalidArgument(std::string m = {}) { return {StatusCode::kInvalidArgument, std::move(m)}; }
  static Status PermissionDenied(std::string m = {}) { return {StatusCode::kPermissionDenied, std::move(m)}; }
  static Status QuotaExceeded(std::string m = {}) { return {StatusCode::kQuotaExceeded, std::move(m)}; }
  static Status SubtreeLocked(std::string m = {}) { return {StatusCode::kSubtreeLocked, std::move(m)}; }
  static Status LeaseConflict(std::string m = {}) { return {StatusCode::kLeaseConflict, std::move(m)}; }
  static Status NotEmpty(std::string m = {}) { return {StatusCode::kNotEmpty, std::move(m)}; }
  static Status NotDirectory(std::string m = {}) { return {StatusCode::kNotDirectory, std::move(m)}; }
  static Status IsDirectory(std::string m = {}) { return {StatusCode::kIsDirectory, std::move(m)}; }
  static Status Failover(std::string m = {}) { return {StatusCode::kFailover, std::move(m)}; }
  static Status Internal(std::string m = {}) { return {StatusCode::kInternal, std::move(m)}; }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // True for conditions a namenode resolves by re-running the transaction:
  // 2PL lock-wait timeouts and coordinator aborts, plus OCC commit-time
  // validation conflicts (which retry with a capped backoff, see
  // Namenode::RunTx).
  bool IsRetryableTx() const {
    return code_ == StatusCode::kLockTimeout || code_ == StatusCode::kTxAborted ||
           code_ == StatusCode::kConflict;
  }

  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

// Minimal expected<T, Status>; gcc 12 predates std::expected.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}                 // NOLINT: implicit by design
  Result(Status status) : status_(std::move(status)) {          // NOLINT: implicit by design
    assert(!status_.ok() && "Result from OK status carries no value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() & { assert(ok()); return *value_; }
  const T& value() const& { assert(ok()); return *value_; }
  T&& value() && { assert(ok()); return *std::move(value_); }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T&& operator*() && { return std::move(value()); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  std::optional<T> value_;
  Status status_;
};

#define HOPS_RETURN_IF_ERROR(expr)            \
  do {                                        \
    ::hops::Status _st = (expr);              \
    if (!_st.ok()) return _st;                \
  } while (0)

#define HOPS_ASSIGN_OR_RETURN(lhs, expr)      \
  auto lhs##_result = (expr);                 \
  if (!lhs##_result.ok()) return lhs##_result.status(); \
  auto lhs = std::move(lhs##_result).value()

}  // namespace hops
