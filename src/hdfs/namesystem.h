// The HDFS baseline namesystem (paper §2.1): the entire namespace lives in
// one process's memory behind a single global readers-writer lock
// (single-writer / multiple-readers). Mutations additionally write the
// quorum edit log -- after releasing the global lock, exactly as HDFS does
// to avoid starving other clients (at the price of potentially losing
// acknowledged-but-unlogged operations on failover, which the paper calls
// out). Very large deletes are batched, releasing the lock between batches.
#pragma once

#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "hdfs/edit_log.h"
#include "hopsfs/types.h"
#include "util/status.h"

namespace hops::hdfs {

using hops::fs::ContentSummary;
using hops::fs::FileStatus;
using hops::fs::LocatedBlock;

struct HdfsConfig {
  int64_t default_replication = 3;
  // Inodes removed per lock acquisition during big deletes (§2.1).
  int delete_batch = 1024;
};

class Namesystem {
 public:
  // `journal` may be null for a standby instance (replay only, no logging).
  Namesystem(HdfsConfig config, EditLog* journal);
  ~Namesystem();

  // Promotion: attach the journal when a standby becomes active.
  void AttachJournal(EditLog* journal) { journal_ = journal; }

  // --- Client API (mirrors hops::fs::Namenode) ------------------------------
  hops::Status Mkdirs(const std::string& path);
  hops::Status Create(const std::string& path, const std::string& holder);
  hops::Result<LocatedBlock> AddBlock(const std::string& path, const std::string& holder,
                                      int64_t num_bytes);
  hops::Status CompleteFile(const std::string& path, const std::string& holder);
  // Reopens a completed file for appending (takes the lease).
  hops::Status Append(const std::string& path, const std::string& holder);
  hops::Result<std::vector<LocatedBlock>> GetBlockLocations(const std::string& path);
  hops::Result<FileStatus> GetFileInfo(const std::string& path);
  hops::Result<std::vector<FileStatus>> ListStatus(const std::string& path);
  hops::Status SetPermission(const std::string& path, int64_t perm);
  hops::Status SetOwner(const std::string& path, const std::string& owner,
                        const std::string& group);
  hops::Status SetReplication(const std::string& path, int64_t replication);
  hops::Result<ContentSummary> GetContentSummary(const std::string& path);
  hops::Status Rename(const std::string& src, const std::string& dst);
  hops::Status Delete(const std::string& path, bool recursive);
  hops::Status SetQuota(const std::string& path, int64_t ns_quota, int64_t ss_quota);

  // Replays one edit (standby catch-up path); takes the write lock.
  void ApplyEdit(const EditEntry& entry);

  size_t NumInodes() const;
  // HDFS-style metadata memory estimate: ~448 bytes for a 2-block file
  // plus the file name (paper §7.3, HDFS v2.0.4 model).
  size_t EstimatedMemoryBytes() const;

 private:
  struct HBlock {
    hops::fs::BlockId id;
    int64_t bytes;
    std::vector<hops::fs::DatanodeId> locations;
    bool complete = false;
  };
  struct Node {
    std::string name;
    bool is_dir = false;
    int64_t perm = 0755;
    std::string owner = "hdfs";
    std::string group = "hdfs";
    int64_t mtime = 0;
    int64_t replication = 3;
    bool under_construction = false;
    std::string lease_holder;
    std::vector<HBlock> blocks;
    Node* parent = nullptr;
    std::map<std::string, std::unique_ptr<Node>> children;
    // Quota (directories; -1 = unlimited).
    int64_t ns_quota = -1, ss_quota = -1, ns_used = 1, ss_used = 0;
    bool has_quota = false;

    int64_t FileBytes() const {
      int64_t n = 0;
      for (const auto& b : blocks) n += b.bytes;
      return n;
    }
  };

  // All Locate/mutate helpers require the caller to hold lock_.
  Node* Find(const std::string& path) const;
  std::pair<Node*, std::string> LocateParent(const std::string& path) const;
  static FileStatus StatusFor(const Node* node, std::string path);
  hops::Status CheckQuota(Node* parent, int64_t ns_delta, int64_t ss_delta) const;
  void ChargeQuota(Node* node, int64_t ns_delta, int64_t ss_delta);
  static void SubtreeTotals(const Node* node, int64_t* inodes, int64_t* bytes);
  hops::Status LogEdit(EditEntry entry);

  const HdfsConfig config_;
  EditLog* journal_;
  mutable std::shared_mutex lock_;  // THE global namesystem lock
  std::unique_ptr<Node> root_;
  hops::fs::BlockId next_block_id_ = 1;
  size_t num_inodes_ = 1;
};

}  // namespace hops::hdfs
