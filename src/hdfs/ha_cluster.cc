#include "hdfs/ha_cluster.h"

namespace hops::hdfs {

HaCluster::HaCluster(Options options)
    : options_(options), journal_(options.journal_nodes) {
  active_ = std::make_unique<Namesystem>(options_.fs, &journal_);
  standby_ = std::make_unique<Namesystem>(options_.fs, nullptr);
}

Namesystem* HaCluster::active() {
  if (active_dead_ && !promoted_) return nullptr;
  return active_.get();
}

void HaCluster::KillActive() {
  active_dead_ = true;
  promoted_ = false;
}

size_t HaCluster::TailJournal() {
  if (standby_ == nullptr) return 0;
  auto edits = journal_.ReadSince(standby_applied_txid_);
  for (const auto& e : edits) {
    standby_->ApplyEdit(e);
    standby_applied_txid_ = e.txid;
  }
  return edits.size();
}

size_t HaCluster::FailoverToStandby() {
  if (!active_dead_ || standby_ == nullptr) return 0;
  // Catch up on everything the dead active managed to log. Anything it
  // acknowledged but did not log is lost -- HDFS' documented failover
  // weakness (§2.1).
  size_t replayed = TailJournal();
  standby_->AttachJournal(&journal_);
  active_ = std::move(standby_);
  standby_ = nullptr;
  active_dead_ = false;
  promoted_ = true;
  return replayed;
}

void HaCluster::StartNewStandby() {
  standby_ = std::make_unique<Namesystem>(options_.fs, nullptr);
  standby_applied_txid_ = 0;
}

}  // namespace hops::hdfs
