#include "hdfs/namesystem.h"

#include <algorithm>

#include "hopsfs/path.h"
#include "util/clock.h"

namespace hops::hdfs {

using hops::fs::IsPrefixPath;
using hops::fs::SplitPath;

Namesystem::Namesystem(HdfsConfig config, EditLog* journal)
    : config_(config), journal_(journal) {
  root_ = std::make_unique<Node>();
  root_->is_dir = true;
  root_->name = "";
}

Namesystem::~Namesystem() = default;

Namesystem::Node* Namesystem::Find(const std::string& path) const {
  auto parts = SplitPath(path);
  if (!parts.ok()) return nullptr;
  Node* cur = root_.get();
  for (const auto& part : *parts) {
    if (!cur->is_dir) return nullptr;
    auto it = cur->children.find(part);
    if (it == cur->children.end()) return nullptr;
    cur = it->second.get();
  }
  return cur;
}

std::pair<Namesystem::Node*, std::string> Namesystem::LocateParent(
    const std::string& path) const {
  auto parts = SplitPath(path);
  if (!parts.ok() || parts->empty()) return {nullptr, ""};
  Node* cur = root_.get();
  for (size_t i = 0; i + 1 < parts->size(); ++i) {
    if (!cur->is_dir) return {nullptr, ""};
    auto it = cur->children.find((*parts)[i]);
    if (it == cur->children.end()) return {nullptr, ""};
    cur = it->second.get();
  }
  return {cur, parts->back()};
}

FileStatus Namesystem::StatusFor(const Node* node, std::string path) {
  FileStatus st;
  st.path = std::move(path);
  st.name = node->name;
  st.is_dir = node->is_dir;
  st.perm = node->perm;
  st.owner = node->owner;
  st.group = node->group;
  st.mtime = node->mtime;
  st.size = node->FileBytes();
  st.replication = node->replication;
  st.num_blocks = static_cast<int64_t>(node->blocks.size());
  return st;
}

hops::Status Namesystem::CheckQuota(Node* parent, int64_t ns_delta,
                                    int64_t ss_delta) const {
  for (Node* cur = parent; cur != nullptr; cur = cur->parent) {
    if (!cur->has_quota) continue;
    if (cur->ns_quota >= 0 && cur->ns_used + ns_delta > cur->ns_quota) {
      return hops::Status::QuotaExceeded("namespace quota of " + cur->name);
    }
    if (cur->ss_quota >= 0 && cur->ss_used + ss_delta > cur->ss_quota) {
      return hops::Status::QuotaExceeded("storage quota of " + cur->name);
    }
  }
  return hops::Status::Ok();
}

void Namesystem::ChargeQuota(Node* node, int64_t ns_delta, int64_t ss_delta) {
  for (Node* cur = node; cur != nullptr; cur = cur->parent) {
    if (!cur->has_quota) continue;
    cur->ns_used += ns_delta;
    cur->ss_used += ss_delta;
  }
}

void Namesystem::SubtreeTotals(const Node* node, int64_t* inodes, int64_t* bytes) {
  *inodes += 1;
  if (!node->is_dir) {
    *bytes += node->FileBytes() * node->replication;
    return;
  }
  for (const auto& [name, child] : node->children) {
    SubtreeTotals(child.get(), inodes, bytes);
  }
}

hops::Status Namesystem::LogEdit(EditEntry entry) {
  // HDFS releases the namesystem lock before syncing the edit to the quorum
  // (§2.1); callers invoke this after unlocking. A standby namesystem has no
  // journal attached and never logs (it only replays).
  if (journal_ == nullptr) return hops::Status::Ok();
  return journal_->Append(std::move(entry));
}

hops::Status Namesystem::Mkdirs(const std::string& path) {
  HOPS_ASSIGN_OR_RETURN(parts, SplitPath(path));
  {
    std::unique_lock<std::shared_mutex> lock(lock_);
    Node* cur = root_.get();
    for (const auto& part : parts) {
      if (!cur->is_dir) return hops::Status::NotDirectory(cur->name);
      auto it = cur->children.find(part);
      if (it != cur->children.end()) {
        cur = it->second.get();
        continue;
      }
      HOPS_RETURN_IF_ERROR(CheckQuota(cur, +1, 0));
      auto node = std::make_unique<Node>();
      node->is_dir = true;
      node->name = part;
      node->mtime = hops::NowMicros();
      node->parent = cur;
      Node* raw = node.get();
      cur->children[part] = std::move(node);
      cur->mtime = hops::NowMicros();
      ChargeQuota(cur, +1, 0);
      num_inodes_++;
      cur = raw;
    }
    if (!cur->is_dir) return hops::Status::NotDirectory(parts.back());
  }
  return LogEdit({EditEntry::Kind::kMkdir, path, "", 0, 0, 0});
}

hops::Status Namesystem::Create(const std::string& path, const std::string& holder) {
  HOPS_ASSIGN_OR_RETURN(parts, SplitPath(path));
  if (parts.empty()) return hops::Status::IsDirectory("/");
  {
    std::unique_lock<std::shared_mutex> lock(lock_);
    auto [parent, name] = LocateParent(path);
    if (parent == nullptr || !parent->is_dir) return hops::Status::NotFound(path);
    auto it = parent->children.find(name);
    if (it != parent->children.end()) {
      if (it->second->is_dir) return hops::Status::IsDirectory(path);
      return hops::Status::AlreadyExists(path);
    }
    HOPS_RETURN_IF_ERROR(CheckQuota(parent, +1, 0));
    auto node = std::make_unique<Node>();
    node->is_dir = false;
    node->name = name;
    node->mtime = hops::NowMicros();
    node->replication = config_.default_replication;
    node->under_construction = true;
    node->lease_holder = holder;
    node->parent = parent;
    parent->children[name] = std::move(node);
    parent->mtime = hops::NowMicros();
    ChargeQuota(parent, +1, 0);
    num_inodes_++;
  }
  return LogEdit({EditEntry::Kind::kCreate, path, holder, 0, 0, 0});
}

hops::Result<LocatedBlock> Namesystem::AddBlock(const std::string& path,
                                                const std::string& holder,
                                                int64_t num_bytes) {
  LocatedBlock result;
  {
    std::unique_lock<std::shared_mutex> lock(lock_);
    Node* node = Find(path);
    if (node == nullptr) return hops::Status::NotFound(path);
    if (node->is_dir) return hops::Status::IsDirectory(path);
    if (!node->under_construction || node->lease_holder != holder) {
      return hops::Status::LeaseConflict(path);
    }
    HOPS_RETURN_IF_ERROR(CheckQuota(node->parent, 0, num_bytes * node->replication));
    if (!node->blocks.empty()) node->blocks.back().complete = true;
    HBlock blk{next_block_id_++, num_bytes, {}, false};
    result = LocatedBlock{blk.id, static_cast<int64_t>(node->blocks.size()), num_bytes, {}};
    node->blocks.push_back(std::move(blk));
    ChargeQuota(node->parent, 0, num_bytes * node->replication);
  }
  HOPS_RETURN_IF_ERROR(LogEdit({EditEntry::Kind::kAddBlock, path, holder, num_bytes, 0, 0}));
  return result;
}

hops::Status Namesystem::CompleteFile(const std::string& path, const std::string& holder) {
  {
    std::unique_lock<std::shared_mutex> lock(lock_);
    Node* node = Find(path);
    if (node == nullptr) return hops::Status::NotFound(path);
    if (node->is_dir) return hops::Status::IsDirectory(path);
    if (!node->under_construction) return hops::Status::Ok();
    if (node->lease_holder != holder) return hops::Status::LeaseConflict(path);
    for (auto& b : node->blocks) b.complete = true;
    node->under_construction = false;
    node->lease_holder.clear();
  }
  return LogEdit({EditEntry::Kind::kComplete, path, holder, 0, 0, 0});
}

hops::Status Namesystem::Append(const std::string& path, const std::string& holder) {
  {
    std::unique_lock<std::shared_mutex> lock(lock_);
    Node* node = Find(path);
    if (node == nullptr) return hops::Status::NotFound(path);
    if (node->is_dir) return hops::Status::IsDirectory(path);
    if (node->under_construction) return hops::Status::LeaseConflict(path);
    node->under_construction = true;
    node->lease_holder = holder;
  }
  return LogEdit({EditEntry::Kind::kCreate, path, holder, 1 /*append marker*/, 0, 0});
}

hops::Result<std::vector<LocatedBlock>> Namesystem::GetBlockLocations(
    const std::string& path) {
  std::shared_lock<std::shared_mutex> lock(lock_);
  Node* node = Find(path);
  if (node == nullptr) return hops::Status::NotFound(path);
  if (node->is_dir) return hops::Status::IsDirectory(path);
  std::vector<LocatedBlock> out;
  int64_t index = 0;
  for (const auto& b : node->blocks) {
    out.push_back(LocatedBlock{b.id, index++, b.bytes, b.locations});
  }
  return out;
}

hops::Result<FileStatus> Namesystem::GetFileInfo(const std::string& path) {
  std::shared_lock<std::shared_mutex> lock(lock_);
  Node* node = Find(path);
  if (node == nullptr) return hops::Status::NotFound(path);
  return StatusFor(node, path);
}

hops::Result<std::vector<FileStatus>> Namesystem::ListStatus(const std::string& path) {
  std::shared_lock<std::shared_mutex> lock(lock_);
  Node* node = Find(path);
  if (node == nullptr) return hops::Status::NotFound(path);
  std::vector<FileStatus> out;
  if (!node->is_dir) {
    out.push_back(StatusFor(node, path));
    return out;
  }
  std::string base = path == "/" ? "" : path;
  for (const auto& [name, child] : node->children) {
    out.push_back(StatusFor(child.get(), base + "/" + name));
  }
  return out;
}

hops::Status Namesystem::SetPermission(const std::string& path, int64_t perm) {
  {
    std::unique_lock<std::shared_mutex> lock(lock_);
    Node* node = Find(path);
    if (node == nullptr) return hops::Status::NotFound(path);
    if (node == root_.get()) return hops::Status::PermissionDenied("/");
    node->perm = perm;
    node->mtime = hops::NowMicros();
  }
  return LogEdit({EditEntry::Kind::kSetPerm, path, "", perm, 0, 0});
}

hops::Status Namesystem::SetOwner(const std::string& path, const std::string& owner,
                                  const std::string& group) {
  {
    std::unique_lock<std::shared_mutex> lock(lock_);
    Node* node = Find(path);
    if (node == nullptr) return hops::Status::NotFound(path);
    if (node == root_.get()) return hops::Status::PermissionDenied("/");
    node->owner = owner;
    node->group = group;
  }
  return LogEdit({EditEntry::Kind::kSetOwner, path, owner + ":" + group, 0, 0, 0});
}

hops::Status Namesystem::SetReplication(const std::string& path, int64_t replication) {
  if (replication < 1) return hops::Status::InvalidArgument("replication >= 1");
  {
    std::unique_lock<std::shared_mutex> lock(lock_);
    Node* node = Find(path);
    if (node == nullptr) return hops::Status::NotFound(path);
    if (node->is_dir) return hops::Status::IsDirectory(path);
    int64_t delta = (replication - node->replication) * node->FileBytes();
    if (delta > 0) HOPS_RETURN_IF_ERROR(CheckQuota(node->parent, 0, delta));
    ChargeQuota(node->parent, 0, delta);
    node->replication = replication;
  }
  return LogEdit({EditEntry::Kind::kSetReplication, path, "", replication, 0, 0});
}

hops::Result<ContentSummary> Namesystem::GetContentSummary(const std::string& path) {
  std::shared_lock<std::shared_mutex> lock(lock_);
  Node* node = Find(path);
  if (node == nullptr) return hops::Status::NotFound(path);
  ContentSummary cs;
  struct Frame {
    const Node* node;
  };
  std::vector<Frame> stack{{node}};
  while (!stack.empty()) {
    const Node* cur = stack.back().node;
    stack.pop_back();
    if (cur->is_dir) {
      cs.dir_count++;
      for (const auto& [name, child] : cur->children) stack.push_back({child.get()});
    } else {
      cs.file_count++;
      cs.total_bytes += cur->FileBytes() * cur->replication;
    }
  }
  return cs;
}

hops::Status Namesystem::Rename(const std::string& src, const std::string& dst) {
  {
    std::unique_lock<std::shared_mutex> lock(lock_);
    if (IsPrefixPath(src, dst)) {
      return hops::Status::InvalidArgument("cannot move into own subtree");
    }
    auto [sp, sname] = LocateParent(src);
    if (sp == nullptr) return hops::Status::NotFound(src);
    auto sit = sp->children.find(sname);
    if (sit == sp->children.end()) return hops::Status::NotFound(src);
    auto [dp, dname] = LocateParent(dst);
    if (dp == nullptr || !dp->is_dir) return hops::Status::NotFound(dst);
    if (dp->children.count(dname)) return hops::Status::AlreadyExists(dst);
    int64_t inodes = 0, bytes = 0;
    SubtreeTotals(sit->second.get(), &inodes, &bytes);
    HOPS_RETURN_IF_ERROR(CheckQuota(dp, inodes, bytes));
    std::unique_ptr<Node> moving = std::move(sit->second);
    sp->children.erase(sit);
    ChargeQuota(sp, -inodes, -bytes);
    moving->name = dname;
    moving->parent = dp;
    moving->mtime = hops::NowMicros();
    dp->children[dname] = std::move(moving);
    ChargeQuota(dp, +inodes, +bytes);
    sp->mtime = dp->mtime = hops::NowMicros();
  }
  return LogEdit({EditEntry::Kind::kRename, src, dst, 0, 0, 0});
}

hops::Status Namesystem::Delete(const std::string& path, bool recursive) {
  // Large directory deletes are batched: inodes are collected and removed in
  // chunks, releasing the global lock between chunks so other clients are
  // not starved (§2.1). A crash mid-way can leave a partial delete -- the
  // weaker semantics the paper contrasts HopsFS against.
  bool more = true;
  bool logged_any = false;
  while (more) {
    more = false;
    {
      std::unique_lock<std::shared_mutex> lock(lock_);
      auto [parent, name] = LocateParent(path);
      if (parent == nullptr) return hops::Status::NotFound(path);
      auto it = parent->children.find(name);
      if (it == parent->children.end()) {
        if (logged_any) break;  // a previous batch removed it all
        return hops::Status::NotFound(path);
      }
      Node* node = it->second.get();
      if (node->is_dir && !node->children.empty() && !recursive) {
        return hops::Status::NotEmpty(path);
      }
      // Delete up to delete_batch leaf-most inodes this round.
      int budget = config_.delete_batch;
      std::vector<Node*> stack{node};
      std::vector<Node*> postorder;
      while (!stack.empty() && static_cast<int>(postorder.size()) < budget * 2) {
        Node* cur = stack.back();
        stack.pop_back();
        postorder.push_back(cur);
        for (auto& [cn, child] : cur->children) stack.push_back(child.get());
      }
      // Remove leaves until the budget is exhausted.
      int removed = 0;
      for (auto rit = postorder.rbegin(); rit != postorder.rend() && removed < budget;
           ++rit) {
        Node* victim = *rit;
        if (victim->is_dir && !victim->children.empty()) continue;
        int64_t bytes = victim->is_dir ? 0 : victim->FileBytes() * victim->replication;
        Node* vp = victim->parent;
        ChargeQuota(vp, -1, -bytes);
        vp->children.erase(victim->name);
        num_inodes_--;
        removed++;
      }
      // More to do if the target still exists.
      more = parent->children.count(name) > 0;
      if (more && parent->children[name]->is_dir &&
          parent->children[name]->children.empty()) {
        // Next round removes the now-empty root.
      }
      parent->mtime = hops::NowMicros();
    }
    logged_any = true;
  }
  return LogEdit({EditEntry::Kind::kDelete, path, "", recursive ? 1 : 0, 0, 0});
}

hops::Status Namesystem::SetQuota(const std::string& path, int64_t ns_quota,
                                  int64_t ss_quota) {
  {
    std::unique_lock<std::shared_mutex> lock(lock_);
    Node* node = Find(path);
    if (node == nullptr) return hops::Status::NotFound(path);
    if (!node->is_dir) return hops::Status::NotDirectory(path);
    if (ns_quota < 0 && ss_quota < 0) {
      node->has_quota = false;
      node->ns_quota = node->ss_quota = -1;
    } else {
      int64_t inodes = 0, bytes = 0;
      SubtreeTotals(node, &inodes, &bytes);
      node->has_quota = true;
      node->ns_quota = ns_quota;
      node->ss_quota = ss_quota;
      node->ns_used = inodes;
      node->ss_used = bytes;
    }
  }
  return LogEdit({EditEntry::Kind::kSetQuota, path, "", ns_quota, ss_quota, 0});
}

void Namesystem::ApplyEdit(const EditEntry& entry) {
  switch (entry.kind) {
    case EditEntry::Kind::kMkdir:
      (void)Mkdirs(entry.path);
      break;
    case EditEntry::Kind::kCreate:
      (void)Create(entry.path, entry.extra);
      break;
    case EditEntry::Kind::kAddBlock:
      (void)AddBlock(entry.path, entry.extra, entry.arg1);
      break;
    case EditEntry::Kind::kComplete:
      (void)CompleteFile(entry.path, entry.extra);
      break;
    case EditEntry::Kind::kRename:
      (void)Rename(entry.path, entry.extra);
      break;
    case EditEntry::Kind::kDelete:
      (void)Delete(entry.path, entry.arg1 != 0);
      break;
    case EditEntry::Kind::kSetPerm:
      (void)SetPermission(entry.path, entry.arg1);
      break;
    case EditEntry::Kind::kSetOwner: {
      auto sep = entry.extra.find(':');
      (void)SetOwner(entry.path, entry.extra.substr(0, sep), entry.extra.substr(sep + 1));
      break;
    }
    case EditEntry::Kind::kSetReplication:
      (void)SetReplication(entry.path, entry.arg1);
      break;
    case EditEntry::Kind::kSetQuota:
      (void)SetQuota(entry.path, entry.arg1, entry.arg2);
      break;
  }
}

size_t Namesystem::NumInodes() const {
  std::shared_lock<std::shared_mutex> lock(lock_);
  return num_inodes_;
}

size_t Namesystem::EstimatedMemoryBytes() const {
  std::shared_lock<std::shared_mutex> lock(lock_);
  // Paper §7.3: a file with two blocks, triple replicated, costs 448 + L
  // bytes on the JVM heap. We charge every inode the HDFS per-object costs:
  // directory ~152 + L, file ~168 + L + 112/block (waiting-room estimates
  // from HADOOP-1687 scaled to the paper's 448 + L for 2 blocks).
  size_t total = 0;
  std::vector<const Node*> stack{root_.get()};
  while (!stack.empty()) {
    const Node* cur = stack.back();
    stack.pop_back();
    if (cur->is_dir) {
      total += 152 + cur->name.size();
      for (const auto& [name, child] : cur->children) stack.push_back(child.get());
    } else {
      total += 168 + cur->name.size() + 140 * cur->blocks.size();
    }
  }
  return total;
}

}  // namespace hops::hdfs
