// HDFS quorum journal (paper §2.1, Figure 1): the active namenode logs every
// namespace change to 2f+1 journal nodes and needs a majority ack. Losing
// the quorum shuts the namenode down. The standby tails this log.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "util/status.h"

namespace hops::hdfs {

struct EditEntry {
  enum class Kind : uint8_t {
    kMkdir,
    kCreate,
    kAddBlock,
    kComplete,
    kRename,
    kDelete,
    kSetPerm,
    kSetOwner,
    kSetReplication,
    kSetQuota,
  };
  Kind kind{};
  std::string path;
  std::string extra;   // rename destination / owner / holder
  int64_t arg1 = 0;    // perm / replication / bytes / ns quota
  int64_t arg2 = 0;    // ss quota
  uint64_t txid = 0;
};

class EditLog {
 public:
  explicit EditLog(int num_journal_nodes);

  // Appends an entry; requires a journal quorum. Assigns the txid.
  hops::Status Append(EditEntry entry);

  void KillJournal(int i);
  void RestartJournal(int i);
  bool QuorumAlive() const;
  int num_journal_nodes() const { return static_cast<int>(journal_alive_.size()); }
  int num_alive_journals() const;

  uint64_t last_txid() const;
  // Entries with txid in (after_txid, last]; the standby's tailing read.
  std::vector<EditEntry> ReadSince(uint64_t after_txid) const;
  size_t size() const;

 private:
  mutable std::mutex mu_;
  std::vector<bool> journal_alive_;
  std::vector<EditEntry> entries_;
  uint64_t next_txid_ = 1;
};

}  // namespace hops::hdfs
