#include "hdfs/edit_log.h"

namespace hops::hdfs {

EditLog::EditLog(int num_journal_nodes)
    : journal_alive_(static_cast<size_t>(num_journal_nodes), true) {}

hops::Status EditLog::Append(EditEntry entry) {
  std::lock_guard<std::mutex> lock(mu_);
  int alive = 0;
  for (bool a : journal_alive_) alive += a ? 1 : 0;
  if (alive * 2 <= static_cast<int>(journal_alive_.size())) {
    return hops::Status::Unavailable("journal quorum lost");
  }
  entry.txid = next_txid_++;
  entries_.push_back(std::move(entry));
  return hops::Status::Ok();
}

void EditLog::KillJournal(int i) {
  std::lock_guard<std::mutex> lock(mu_);
  journal_alive_[static_cast<size_t>(i)] = false;
}

void EditLog::RestartJournal(int i) {
  std::lock_guard<std::mutex> lock(mu_);
  journal_alive_[static_cast<size_t>(i)] = true;
}

bool EditLog::QuorumAlive() const {
  std::lock_guard<std::mutex> lock(mu_);
  int alive = 0;
  for (bool a : journal_alive_) alive += a ? 1 : 0;
  return alive * 2 > static_cast<int>(journal_alive_.size());
}

int EditLog::num_alive_journals() const {
  std::lock_guard<std::mutex> lock(mu_);
  int alive = 0;
  for (bool a : journal_alive_) alive += a ? 1 : 0;
  return alive;
}

uint64_t EditLog::last_txid() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_txid_ - 1;
}

std::vector<EditEntry> EditLog::ReadSince(uint64_t after_txid) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<EditEntry> out;
  for (const auto& e : entries_) {
    if (e.txid > after_txid) out.push_back(e);
  }
  return out;
}

size_t EditLog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace hops::hdfs
