// HDFS high-availability pair (paper §2.1, Figure 1): an active namenode, a
// standby tailing the quorum journal, journal nodes, and a ZooKeeper-style
// failover coordinator that detects active death and promotes the standby
// after a failover delay. During failover no metadata operation can be
// served -- the downtime HopsFS eliminates (§7.6.1).
#pragma once

#include <memory>

#include "hdfs/namesystem.h"

namespace hops::hdfs {

class HaCluster {
 public:
  struct Options {
    HdfsConfig fs;
    int journal_nodes = 3;
  };

  explicit HaCluster(Options options);

  // The namesystem currently serving requests; nullptr during failover
  // (active dead, standby not yet promoted).
  Namesystem* active();
  EditLog& journal() { return journal_; }

  bool InFailover() const { return active_dead_ && !promoted_; }

  // Kills the active namenode process.
  void KillActive();
  // The coordinator detected the death: the standby replays any outstanding
  // journal entries and takes over. Returns the number of replayed edits.
  size_t FailoverToStandby();
  // The standby periodically tails the journal in the background; one tick.
  size_t TailJournal();
  // Boots a fresh standby (after a failover consumed the previous one).
  void StartNewStandby();

 private:
  Options options_;
  EditLog journal_;
  std::unique_ptr<Namesystem> active_;
  std::unique_ptr<Namesystem> standby_;
  uint64_t standby_applied_txid_ = 0;
  bool active_dead_ = false;
  bool promoted_ = false;
};

}  // namespace hops::hdfs
