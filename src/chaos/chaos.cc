#include "chaos/chaos.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <functional>
#include <set>
#include <thread>

#include "util/rng.h"

namespace hops::chaos {
namespace {

using Clock = std::chrono::steady_clock;

// Availability-failure codes for oracle 3: what a client sees when the
// cluster (not its own request) is at fault. NotFound is deliberately
// absent -- an acked-but-unapplied path read through another namenode is
// async-commit visibility lag, not unavailability, and the workload retries
// it without recording a failure. kTxAborted / kLockTimeout are also absent:
// transaction backpressure (a stat S-lock waiting out the mux deadline
// behind an in-flight apply's X-lock, injected transient aborts) happens
// under plain contention with no fault applied, so counting it would make
// oracle 3 flake on a loaded machine; real clients retry those codes.
// Unavailability here means nobody could serve the request at all.
bool IsAvailabilityCode(hops::StatusCode c) {
  return c == hops::StatusCode::kFailover || c == hops::StatusCode::kUnavailable ||
         c == hops::StatusCode::kInternal;
}

// Recursive namespace walk under `root`: one sorted line per inode, the
// convergence fingerprint's preimage. Reads go through the namenode's
// ordinary transactions, so the walk sees exactly the committed metadata.
std::vector<std::string> FingerprintLines(fs::Namenode& nn, const std::string& root) {
  std::vector<std::string> out;
  auto line = [](const std::string& path, bool is_dir, int64_t perm,
                 const std::string& owner, const std::string& group) {
    return path + "|" + (is_dir ? "d" : "f") + "|" + std::to_string(perm) + "|" + owner +
           "|" + group;
  };
  auto self = nn.GetFileInfo(root);
  if (!self.ok()) return out;  // nothing under the chaos namespace
  out.push_back(line(root, self->is_dir, self->perm, self->owner, self->group));
  std::vector<std::string> stack{root};
  while (!stack.empty()) {
    std::string dir = stack.back();
    stack.pop_back();
    auto children = nn.ListStatus(dir);
    if (!children.ok()) {
      out.push_back("LIST-ERROR " + dir + ": " + children.status().ToString());
      continue;
    }
    for (const fs::FileStatus& c : *children) {
      std::string path = dir + "/" + c.name;
      out.push_back(line(path, c.is_dir, c.perm, c.owner, c.group));
      if (c.is_dir) stack.push_back(path);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

std::string_view FaultClassName(FaultClass c) {
  switch (c) {
    case FaultClass::kNamenodeCrash: return "namenode-crash";
    case FaultClass::kNamenodeCrashSameId: return "namenode-crash-same-id";
    case FaultClass::kHeartbeatStall: return "heartbeat-stall";
    case FaultClass::kDatanodeFlap: return "datanode-flap";
    case FaultClass::kNdbNodeFlap: return "ndb-node-flap";
    case FaultClass::kPausedApplier: return "paused-applier";
    case FaultClass::kPausedPublisher: return "paused-publisher";
    case FaultClass::kPausedCleaner: return "paused-cleaner";
    case FaultClass::kNdbTableFaults: return "ndb-table-faults";
    case FaultClass::kNdbLatency: return "ndb-latency";
  }
  return "unknown";
}

uint64_t FaultPlan::Fingerprint() const {
  uint64_t h = 1469598103934665603ULL;  // FNV-1a offset basis
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  mix(seed);
  for (const FaultEvent& e : events) {
    mix(static_cast<uint64_t>(e.fault));
    mix(static_cast<uint64_t>(e.at_ms));
    mix(static_cast<uint64_t>(e.dwell_ms));
    mix(static_cast<uint64_t>(e.target));
    mix(static_cast<uint64_t>(e.probability * 1e6));
    mix(static_cast<uint64_t>(e.delay_us));
  }
  return h;
}

FaultPlan GeneratePlan(const ChaosOptions& options) {
  // Pure function of the options: no clock, no global state. The schedule
  // Rng is decoupled from the workload Rngs (seed * 1000003 + thread) by an
  // arbitrary odd multiplier.
  Rng rng(options.seed * 0x9e3779b97f4a7c15ULL + 0xc4a05);
  FaultPlan plan;
  plan.seed = options.seed;
  const int64_t dur = options.duration.count();
  for (int i = 0; i < options.num_faults; ++i) {
    FaultEvent ev;
    // Draw every field regardless of class so the stream stays aligned
    // across only_class filters of the same seed.
    auto cls = static_cast<FaultClass>(rng.Below(kNumFaultClasses));
    int64_t at = rng.Range(dur / 10, dur * 7 / 10);
    int64_t dwell = rng.Range(150, 450);
    ev.fault = options.only_class.value_or(cls);
    ev.at_ms = options.pin_at_ms.value_or(at);
    ev.dwell_ms = options.pin_dwell_ms.value_or(dwell);
    ev.target = static_cast<int>(rng.Below(1u << 16));
    ev.probability = 0.05 + 0.20 * rng.NextDouble();
    ev.delay_us = rng.Range(200, 1500);
    plan.events.push_back(ev);
  }
  std::stable_sort(plan.events.begin(), plan.events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) { return a.at_ms < b.at_ms; });
  return plan;
}

ChaosReport RunChaos(const ChaosOptions& options) {
  ChaosReport report;
  report.plan = GeneratePlan(options);
  const std::string seed_tag = "seed " + std::to_string(options.seed) + ": ";

  fs::MiniClusterOptions mc;
  mc.num_namenodes = options.num_namenodes;
  mc.num_datanodes = options.num_datanodes;
  mc.fs.kv_engine = options.engine;
  mc.fs.num_handlers = options.num_handlers;
  mc.fs.async_metadata_commit = true;
  auto cluster_or = fs::MiniCluster::Start(mc);
  if (!cluster_or.ok()) {
    report.violations.push_back(seed_tag + "cluster start failed: " +
                                cluster_or.status().ToString());
    return report;
  }
  std::unique_ptr<fs::MiniCluster> cluster = std::move(*cluster_or);
  kv::FaultInjector& injector = cluster->db().fault_injector();
  injector.Seed(options.seed ^ 0xfa5e1ed5ULL);
  const uint64_t errors0 = injector.injected_errors();
  const uint64_t delays0 = injector.injected_delays();

  const Clock::time_point t0 = Clock::now();
  auto now_us = [&t0]() {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - t0).count();
  };
  const int64_t deadline_us = options.duration.count() * 1000;

  // --- Heartbeat ticker -----------------------------------------------------
  // Drives failure detection, hint drains and intent adoption throughout the
  // run AND the heal phase; the stall set implements kHeartbeatStall.
  std::vector<std::atomic<bool>> stalled(static_cast<size_t>(options.num_namenodes));
  std::atomic<bool> tick_stop{false};
  std::thread ticker([&] {
    while (!tick_stop.load(std::memory_order_relaxed)) {
      for (int i = 0; i < options.num_namenodes; ++i) {
        if (stalled[static_cast<size_t>(i)].load(std::memory_order_relaxed)) continue;
        fs::Namenode& nn = cluster->namenode(i);
        if (nn.alive()) (void)nn.Heartbeat();
      }
      std::this_thread::sleep_for(options.tick);
    }
  });

  // --- Workload threads -----------------------------------------------------
  struct ThreadLog {
    std::vector<AckedOp> acked;
    std::vector<ChaosReport::Sample> samples;
    uint64_t attempted = 0;
    std::vector<std::string> violations;
  };
  std::vector<ThreadLog> logs(static_cast<size_t>(options.num_threads));
  std::atomic<bool> hard_stop{false};

  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(options.num_threads));
  for (int t = 0; t < options.num_threads; ++t) {
    workers.emplace_back([&, t] {
      ThreadLog& log = logs[static_cast<size_t>(t)];
      Rng rng(options.seed * 1000003ULL + static_cast<uint64_t>(t) + 1);
      const std::string cname = "chaos-t" + std::to_string(t);
      fs::Client client = cluster->NewClient(fs::NamenodePolicy::kSticky, cname,
                                             options.seed + static_cast<uint64_t>(t));
      const std::string root = "/chaos/t" + std::to_string(t);

      // Retries an idempotent mutation until acknowledged. Mutations are
      // retried on EVERY failure -- NotFound included (async-commit
      // visibility lag through another namenode) -- because the oracles
      // need each attempted mutation to end acknowledged: an op abandoned
      // un-acked but secretly applied would fail the convergence oracle.
      auto retry_until_acked = [&](const std::function<hops::Status()>& op,
                                   bool exists_is_ack, bool record) -> bool {
        const int64_t give_up = now_us() + 60'000'000;  // healed cluster acks fast
        for (;;) {
          hops::Status st = op();
          int64_t at = now_us();
          if (st.ok() ||
              (exists_is_ack && st.code() == hops::StatusCode::kAlreadyExists)) {
            if (record) log.samples.push_back({at, true});
            return true;
          }
          if (record && IsAvailabilityCode(st.code())) log.samples.push_back({at, false});
          if (at > give_up || hard_stop.load(std::memory_order_relaxed)) {
            log.violations.push_back(seed_tag + "mutation never acknowledged: " +
                                     st.ToString());
            return false;
          }
          std::this_thread::sleep_for(std::chrono::milliseconds(1 + rng.Below(4)));
        }
      };

      // Setup (before any fault fires): the thread's private subtree root.
      // Unsampled: the only cross-thread contention of the run (the shared
      // /chaos parent) lives here, and oracle 3 must not see its lock noise.
      if (!retry_until_acked([&] { return client.Mkdirs(root); },
                             /*exists_is_ack=*/true, /*record=*/false)) {
        return;
      }
      log.acked.push_back({AckedOp::Kind::kMkdirs, root, 0, "", "", cname, now_us()});

      std::vector<std::string> dirs{root};
      std::vector<std::string> all_paths{root};
      std::set<std::string> perm_done, owner_done;
      uint64_t counter = 0;

      while (now_us() < deadline_us && !hard_stop.load(std::memory_order_relaxed)) {
        uint64_t die = rng.Below(100);
        ++log.attempted;
        if (die < 30) {  // mkdirs
          std::string path =
              dirs[rng.Below(dirs.size())] + "/d" + std::to_string(counter++);
          if (retry_until_acked([&] { return client.Mkdirs(path); }, true, true)) {
            log.acked.push_back({AckedOp::Kind::kMkdirs, path, 0, "", "", cname, now_us()});
            dirs.push_back(path);
            all_paths.push_back(path);
          }
        } else if (die < 55) {  // create
          std::string path =
              dirs[rng.Below(dirs.size())] + "/f" + std::to_string(counter++);
          if (retry_until_acked([&] { return client.CreateFile(path); }, true, true)) {
            log.acked.push_back({AckedOp::Kind::kCreate, path, 0, "", "", cname, now_us()});
            all_paths.push_back(path);
          }
        } else if (die < 70 && perm_done.size() < all_paths.size()) {
          // setperm: at most ONE per path. A second value racing the first
          // through different namenodes' appliers could settle in either
          // order; one value per path keeps replay order-independent.
          std::string path = all_paths[rng.Below(all_paths.size())];
          auto perm = static_cast<int64_t>(rng.Below(512));
          if (perm_done.count(path) != 0) continue;
          if (retry_until_acked([&] { return client.SetPermission(path, perm); }, false,
                                true)) {
            perm_done.insert(path);
            log.acked.push_back({AckedOp::Kind::kSetPerm, path, perm, "", "", cname,
                                 now_us()});
          }
        } else if (die < 80 && owner_done.size() < all_paths.size()) {
          std::string path = all_paths[rng.Below(all_paths.size())];
          std::string owner = "u" + std::to_string(rng.Below(10));
          std::string group = "g" + std::to_string(rng.Below(10));
          if (owner_done.count(path) != 0) continue;
          if (retry_until_acked([&] { return client.SetOwner(path, owner, group); },
                                false, true)) {
            owner_done.insert(path);
            log.acked.push_back({AckedOp::Kind::kSetOwner, path, 0, owner, group, cname,
                                 now_us()});
          }
        } else if (die < 92) {  // stat (single attempt; failures feed oracle 3)
          std::string path = all_paths[rng.Below(all_paths.size())];
          hops::Status st = client.Stat(path).status();
          log.samples.push_back({now_us(), !IsAvailabilityCode(st.code())});
        } else {  // list
          std::string dir = dirs[rng.Below(dirs.size())];
          hops::Status st = client.List(dir).status();
          log.samples.push_back({now_us(), !IsAvailabilityCode(st.code())});
        }
      }
    });
  }

  // --- Conductor (this thread): apply / dwell / heal ------------------------
  struct ActiveFault {
    FaultEvent* ev;
    int64_t heal_at_ms;
    int slot = -1;            // namenode slot (crash / stall / pause classes)
    fs::Namenode* nn = nullptr;  // pause target (survives a slot swap)
    int dn = -1;              // fs datanode index
    uint32_t node = 0;        // NDB data node
    kv::TableId table{};     // armed injector key
  };
  std::vector<ActiveFault> active;

  auto apply_fault = [&](FaultEvent& ev) {
    ActiveFault a{&ev, ev.at_ms + ev.dwell_ms};
    switch (ev.fault) {
      case FaultClass::kNamenodeCrash:
      case FaultClass::kNamenodeCrashSameId:
        a.slot = ev.target % options.num_namenodes;
        cluster->KillNamenode(a.slot);
        break;
      case FaultClass::kHeartbeatStall:
        a.slot = ev.target % options.num_namenodes;
        stalled[static_cast<size_t>(a.slot)].store(true, std::memory_order_relaxed);
        break;
      case FaultClass::kDatanodeFlap:
        a.dn = ev.target % options.num_datanodes;
        cluster->datanode(a.dn).Kill();
        break;
      case FaultClass::kNdbNodeFlap:
        a.node = static_cast<uint32_t>(ev.target) % cluster->db().num_datanodes();
        cluster->db().KillDatanode(a.node);
        break;
      case FaultClass::kPausedApplier:
        a.slot = ev.target % options.num_namenodes;
        a.nn = &cluster->namenode(a.slot);
        a.nn->SetIntentApplierPausedForTesting(true);
        break;
      case FaultClass::kPausedPublisher:
        a.slot = ev.target % options.num_namenodes;
        a.nn = &cluster->namenode(a.slot);
        a.nn->SetHintPublisherPausedForTesting(true);
        break;
      case FaultClass::kPausedCleaner:
        a.slot = ev.target % options.num_namenodes;
        a.nn = &cluster->namenode(a.slot);
        a.nn->SetIntentCleanerPausedForTesting(true);
        break;
      case FaultClass::kNdbTableFaults: {
        const fs::MetadataSchema& s = cluster->schema();
        kv::TableId choices[3] = {s.inodes, s.op_intents, kv::FaultInjector::kAllTables};
        a.table = choices[ev.target % 3];
        injector.Arm(a.table, {ev.probability, 0.0, std::chrono::microseconds{0}});
        break;
      }
      case FaultClass::kNdbLatency:
        a.table = kv::FaultInjector::kAllTables;
        injector.Arm(a.table,
                     {0.0, 0.5, std::chrono::microseconds{ev.delay_us}});
        break;
    }
    if (options.verbose) {
      std::fprintf(stderr, "[chaos] t=%lldms apply %s target=%d\n",
                   static_cast<long long>(ev.at_ms),
                   std::string(FaultClassName(ev.fault)).c_str(), ev.target);
    }
    active.push_back(a);
  };

  auto heal_fault = [&](ActiveFault& a) {
    switch (a.ev->fault) {
      case FaultClass::kNamenodeCrash:
        // May fail while another fault holds the database down; the global
        // heal's restart net below retries dead slots.
        (void)cluster->RestartNamenode(a.slot);
        break;
      case FaultClass::kNamenodeCrashSameId:
        (void)cluster->RestartNamenodeSameId(a.slot);
        break;
      case FaultClass::kHeartbeatStall:
        stalled[static_cast<size_t>(a.slot)].store(false, std::memory_order_relaxed);
        break;
      case FaultClass::kDatanodeFlap:
        cluster->datanode(a.dn).Restart();
        break;
      case FaultClass::kNdbNodeFlap:
        cluster->db().RestartDatanode(a.node);
        break;
      case FaultClass::kPausedApplier:
        a.nn->SetIntentApplierPausedForTesting(false);
        break;
      case FaultClass::kPausedPublisher:
        a.nn->SetHintPublisherPausedForTesting(false);
        break;
      case FaultClass::kPausedCleaner:
        a.nn->SetIntentCleanerPausedForTesting(false);
        break;
      case FaultClass::kNdbTableFaults:
      case FaultClass::kNdbLatency:
        injector.Disarm(a.table);
        break;
    }
    a.ev->healed_us = now_us();
    if (options.verbose) {
      std::fprintf(stderr, "[chaos] t=%lldms heal %s\n",
                   static_cast<long long>(a.ev->healed_us / 1000),
                   std::string(FaultClassName(a.ev->fault)).c_str());
    }
  };

  size_t next_ev = 0;
  std::vector<FaultEvent>& events = report.plan.events;
  while (now_us() < deadline_us) {
    int64_t now_ms = now_us() / 1000;
    for (size_t i = 0; i < active.size();) {
      if (active[i].heal_at_ms <= now_ms) {
        heal_fault(active[i]);
        active.erase(active.begin() + static_cast<long>(i));
      } else {
        ++i;
      }
    }
    while (next_ev < events.size() && events[next_ev].at_ms <= now_ms) {
      events[next_ev].applied_us = now_us();
      apply_fault(events[next_ev]);
      ++next_ev;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  // --- Global heal -----------------------------------------------------------
  report.heal_start_us = now_us();
  injector.DisarmAll();
  for (ActiveFault& a : active) heal_fault(a);
  active.clear();
  // Events the conductor never reached (a laggy run): count them as applied
  // and healed instantly so the oracle windows stay well-defined.
  for (; next_ev < events.size(); ++next_ev) {
    events[next_ev].applied_us = now_us();
    events[next_ev].healed_us = now_us();
  }
  for (int i = 0; i < options.num_namenodes; ++i) {
    stalled[static_cast<size_t>(i)].store(false, std::memory_order_relaxed);
  }
  for (int i = 0; i < options.num_datanodes; ++i) cluster->datanode(i).Restart();
  for (uint32_t n = 0; n < cluster->db().num_datanodes(); ++n) {
    if (!cluster->db().IsAlive(n)) cluster->db().RestartDatanode(n);
  }
  // Restart net: every dead slot gets a fresh namenode (retrying -- an
  // in-run heal may have failed while the database was down).
  {
    int64_t net_deadline = now_us() + 10'000'000;
    for (int i = 0; i < options.num_namenodes; ++i) {
      while (!cluster->namenode(i).alive() && now_us() < net_deadline) {
        if (cluster->RestartNamenode(i).ok()) break;
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
      if (!cluster->namenode(i).alive()) {
        report.violations.push_back(seed_tag + "slot " + std::to_string(i) +
                                    " never restarted during heal");
      }
    }
  }

  for (std::thread& w : workers) w.join();

  // Drain: every surviving intent row must apply (owners' appliers for live
  // partitions, the leader's heartbeat adoption for dead ones) and the
  // cleaners must delete the applied rows. Oracle 2's first half.
  {
    int64_t drain_deadline = now_us() + 20'000'000;
    for (;;) {
      cluster->DrainIntents();
      size_t rows = cluster->db().TableRowCount(cluster->schema().op_intents);
      if (rows == 0) break;
      if (now_us() > drain_deadline) {
        report.violations.push_back(seed_tag + "op_intents never drained: " +
                                    std::to_string(rows) + " rows stranded");
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
  report.heal_end_us = now_us();
  tick_stop.store(true);
  ticker.join();

  // --- Collect ---------------------------------------------------------------
  for (ThreadLog& log : logs) {
    report.ops_acked += log.acked.size();
    report.ops_attempted += log.attempted;
    for (const auto& s : log.samples) {
      if (!s.ok) ++report.availability_failures;
    }
    report.samples.insert(report.samples.end(), log.samples.begin(), log.samples.end());
    for (std::string& v : log.violations) report.violations.push_back(std::move(v));
  }
  std::sort(report.samples.begin(), report.samples.end(),
            [](const ChaosReport::Sample& a, const ChaosReport::Sample& b) {
              return a.at_us < b.at_us;
            });
  report.injected_errors = injector.injected_errors() - errors0;
  report.injected_delays = injector.injected_delays() - delays0;

  // --- Oracle 2: no acknowledged op lost -------------------------------------
  fs::Namenode* reader = cluster->leader();
  if (reader == nullptr) {
    auto alive = cluster->AliveNamenodes();
    reader = alive.empty() ? nullptr : alive.front();
  }
  if (reader == nullptr) {
    report.violations.push_back(seed_tag + "no alive namenode after heal");
  } else {
    for (const ThreadLog& log : logs) {
      for (const AckedOp& op : log.acked) {
        auto info = reader->GetFileInfo(op.path);
        if (!info.ok()) {
          report.violations.push_back(seed_tag + "acked op lost: " + op.path + " (" +
                                      info.status().ToString() + ")");
          continue;
        }
        if (op.kind == AckedOp::Kind::kSetPerm && info->perm != op.perm) {
          report.violations.push_back(seed_tag + "acked setperm lost on " + op.path);
        }
        if (op.kind == AckedOp::Kind::kSetOwner &&
            (info->owner != op.owner || info->group != op.group)) {
          report.violations.push_back(seed_tag + "acked setowner lost on " + op.path);
        }
        if (op.kind == AckedOp::Kind::kMkdirs && !info->is_dir) {
          report.violations.push_back(seed_tag + "acked mkdirs became a file: " + op.path);
        }
      }
    }
  }

  // --- Oracle 1: convergence against a crash-free replay ---------------------
  if (reader != nullptr) {
    fs::MiniClusterOptions oo;
    oo.num_namenodes = 1;
    oo.num_datanodes = 1;
    oo.fs.kv_engine = options.engine;
    oo.fs.num_handlers = 0;
    oo.fs.async_metadata_commit = false;
    auto oracle_or = fs::MiniCluster::Start(oo);
    if (!oracle_or.ok()) {
      report.violations.push_back(seed_tag + "oracle cluster start failed: " +
                                  oracle_or.status().ToString());
    } else {
      fs::Namenode& onn = (*oracle_or)->namenode(0);
      for (const ThreadLog& log : logs) {
        for (const AckedOp& op : log.acked) {
          hops::Status st = hops::Status::Ok();
          switch (op.kind) {
            case AckedOp::Kind::kMkdirs: st = onn.Mkdirs(op.path); break;
            case AckedOp::Kind::kCreate: st = onn.Create(op.path, op.client); break;
            case AckedOp::Kind::kSetPerm: st = onn.SetPermission(op.path, op.perm); break;
            case AckedOp::Kind::kSetOwner:
              st = onn.SetOwner(op.path, op.owner, op.group);
              break;
          }
          if (!st.ok() && st.code() != hops::StatusCode::kAlreadyExists) {
            report.violations.push_back(seed_tag + "oracle replay failed on " + op.path +
                                        ": " + st.ToString());
          }
        }
      }
      report.fingerprint = FingerprintLines(*reader, "/chaos");
      std::vector<std::string> expect = FingerprintLines(onn, "/chaos");
      if (report.fingerprint != expect) {
        size_t n = std::max(report.fingerprint.size(), expect.size());
        for (size_t i = 0; i < n; ++i) {
          const std::string* got =
              i < report.fingerprint.size() ? &report.fingerprint[i] : nullptr;
          const std::string* want = i < expect.size() ? &expect[i] : nullptr;
          if (got != nullptr && want != nullptr && *got == *want) continue;
          report.violations.push_back(
              seed_tag + "fingerprint diverged: cluster=" + (got ? *got : "<missing>") +
              " oracle=" + (want ? *want : "<missing>"));
          break;
        }
      }
    }
  }

  // --- Oracle 3: bounded unavailability --------------------------------------
  const int64_t horizon_us = options.recovery_horizon.count() * 1000;
  for (const ChaosReport::Sample& s : report.samples) {
    if (s.ok) continue;
    bool covered = s.at_us >= report.heal_start_us &&
                   s.at_us <= report.heal_end_us + horizon_us;
    for (const FaultEvent& e : events) {
      if (covered) break;
      if (e.applied_us < 0) continue;
      int64_t close = e.healed_us < 0 ? report.heal_end_us : e.healed_us;
      covered = s.at_us >= e.applied_us && s.at_us <= close + horizon_us;
    }
    if (!covered) {
      report.violations.push_back(
          seed_tag + "availability failure at " + std::to_string(s.at_us) +
          "us outside every fault's recovery window");
    }
  }

  return report;
}

}  // namespace hops::chaos
