// Chaos harness: seeded fault injection under mixed load (the testing half
// of the paper's operational story -- §3 failover, §5 async commits, §6
// subtree recovery all claim crash safety; this subsystem checks it).
//
// A run builds a MiniCluster, drives a mixed metadata workload through the
// handler pool from several client threads, and executes a fault PLAN -- a
// pure function of the seed -- against it: namenode crashes (new id and
// resumed id), stalled heartbeats, datanode flaps, NDB data-node flaps,
// paused intent applier/cleaner and hint publisher threads, and NDB-level
// injected faults (per-table transient errors and latency spikes through
// kv::FaultInjector). After a global heal the run is checked against three
// oracles:
//
//   1. Convergence: the namespace fingerprint equals a crash-free oracle
//      cluster's replay of the acknowledged op streams.
//   2. No lost ack: every acknowledged mutation is visible and the intent
//      log drained to zero rows.
//   3. Bounded unavailability: every client-visible availability failure
//      falls inside a fault's [applied, healed + horizon] window.
//
// Violation messages embed the seed so a failing schedule replays exactly.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "hopsfs/mini_cluster.h"

namespace hops::chaos {

enum class FaultClass {
  kNamenodeCrash,        // Kill + restart under a NEW namenode id
  kNamenodeCrashSameId,  // Kill + restart RESUMING the old id (process restart)
  kHeartbeatStall,       // namenode keeps serving but stops heartbeating
  kDatanodeFlap,         // fs datanode failure + rejoin
  kNdbNodeFlap,          // NDB data node failure + recovery
  kPausedApplier,        // intent applier stalls (acked-unapplied backlog)
  kPausedPublisher,      // hint publisher stalls (stale peer caches)
  kPausedCleaner,        // intent cleaner stalls (applied rows accumulate)
  kNdbTableFaults,       // seeded transient errors on metadata tables
  kNdbLatency,           // seeded latency spikes on every table
};
inline constexpr int kNumFaultClasses = 10;

std::string_view FaultClassName(FaultClass c);

struct FaultEvent {
  FaultClass fault = FaultClass::kNamenodeCrash;
  int64_t at_ms = 0;     // offset into the run when the fault applies
  int64_t dwell_ms = 0;  // how long it stays applied before healing
  int target = 0;        // slot / node index; meaning depends on the class
  double probability = 0.0;  // error probability (kNdbTableFaults)
  int64_t delay_us = 0;      // injected latency (kNdbLatency)
  // Filled in by the run (consumed by the unavailability oracle and the
  // recovery-time bench): microseconds since run start.
  int64_t applied_us = -1;
  int64_t healed_us = -1;
};

struct FaultPlan {
  uint64_t seed = 0;
  std::vector<FaultEvent> events;
  // Stable digest of the schedule (seed, classes, times, targets). Two
  // processes given the same options must print the same fingerprint.
  uint64_t Fingerprint() const;
};

struct ChaosOptions {
  uint64_t seed = 1;
  // KV backend both the chaos cluster AND the crash-free oracle replay
  // cluster run on (the convergence oracle only means something when both
  // sides use the same engine). HOPS_KV_ENGINE still wins inside
  // MiniCluster::Start, so an env-pinned CI leg overrides this field.
  kv::EngineKind engine = kv::EngineKind::kNdb;
  int num_namenodes = 3;
  int num_datanodes = 3;
  int num_handlers = 4;
  int num_threads = 4;
  std::chrono::milliseconds duration{4000};
  std::chrono::milliseconds tick{20};  // heartbeat cadence
  // Oracle 3: a failure is tolerated until this long after its fault healed.
  std::chrono::milliseconds recovery_horizon{4000};
  int num_faults = 6;
  // Restrict the plan to one class (the per-class recovery bench).
  std::optional<FaultClass> only_class;
  // Pin the single-event schedule (per-class bench wants a fixed dip site).
  std::optional<int64_t> pin_at_ms;
  std::optional<int64_t> pin_dwell_ms;
  bool verbose = false;
};

// Generates the fault schedule for `options`: a pure function of the options
// (no clock, no global state), so a seed names one schedule forever.
FaultPlan GeneratePlan(const ChaosOptions& options);

// One acknowledged mutation, as recorded by the workload threads; the
// convergence oracle replays these per-thread streams on a crash-free
// cluster. Threads own disjoint subtrees, so cross-thread order is free.
struct AckedOp {
  enum class Kind { kMkdirs, kCreate, kSetPerm, kSetOwner };
  Kind kind = Kind::kMkdirs;
  std::string path;
  int64_t perm = 0;
  std::string owner, group;
  std::string client;   // create's lease holder
  int64_t acked_us = 0; // since run start
};

struct ChaosReport {
  FaultPlan plan;  // events carry their applied/healed timestamps
  uint64_t ops_acked = 0;
  uint64_t ops_attempted = 0;
  uint64_t availability_failures = 0;
  uint64_t injected_errors = 0;
  uint64_t injected_delays = 0;
  int64_t heal_start_us = 0;
  int64_t heal_end_us = 0;
  // Per-operation completion record (timestamp since run start); ok=false
  // entries are the availability failures oracle 3 judges. The recovery
  // bench bins the ok=true entries into a throughput timeline.
  struct Sample {
    int64_t at_us = 0;
    bool ok = true;
  };
  std::vector<Sample> samples;
  // Sorted "path|kind|perm|owner|group" lines of the final namespace (the
  // convergence fingerprint's preimage; kept for diffing on violation).
  std::vector<std::string> fingerprint;
  std::vector<std::string> violations;  // empty = every oracle passed

  bool ok() const { return violations.empty(); }
};

// Runs the full chaos experiment: cluster up, workload + conductor, global
// heal, oracles. Deterministic in its SCHEDULE and WORKLOAD streams (thread
// interleavings still vary; the oracles hold for every interleaving).
ChaosReport RunChaos(const ChaosOptions& options);

}  // namespace hops::chaos
