#include "workload/spec.h"

#include <cassert>

namespace hops::wl {

std::string_view OpTypeName(OpType op) {
  switch (op) {
    case OpType::kAppendFile: return "append file";
    case OpType::kMkdirs: return "mkdirs";
    case OpType::kSetPermission: return "set permissions";
    case OpType::kSetReplication: return "set replication";
    case OpType::kSetOwner: return "set owner";
    case OpType::kDelete: return "delete";
    case OpType::kCreateFile: return "create file";
    case OpType::kMove: return "move";
    case OpType::kAddBlock: return "add blocks";
    case OpType::kList: return "list";
    case OpType::kStat: return "stat";
    case OpType::kRead: return "read";
    case OpType::kContentSummary: return "content summary";
  }
  return "?";
}

OpMix OpMix::Spotify() {
  // Table 1 verbatim. Bracketed dir-fractions where the paper reports them.
  OpMix mix;
  mix.name = "spotify";
  mix.entries = {
      {OpType::kAppendFile, 0.0, 0.0},
      {OpType::kContentSummary, 0.01, 1.0},
      {OpType::kMkdirs, 0.02, 1.0},
      {OpType::kSetPermission, 0.03, 0.263},
      {OpType::kSetReplication, 0.14, 0.0},
      {OpType::kSetOwner, 0.32, 1.0},
      {OpType::kDelete, 0.75, 0.035},
      {OpType::kCreateFile, 1.2, 0.0},
      {OpType::kMove, 1.3, 0.0003},
      {OpType::kAddBlock, 1.5, 0.0},
      {OpType::kList, 9.0, 0.945},
      {OpType::kStat, 17.0, 0.233},
      {OpType::kRead, 68.73, 0.0},
  };
  return mix;
}

OpMix OpMix::WriteIntensive(double file_write_pct) {
  // Table 2 (§7.2): "derived from the previously described workload, but
  // here we increase the relative percentage of file create operations and
  // reduce the percentage of file read operations". The paper's "file
  // writes" percentage counts create + append + add-block operations
  // (Spotify: 1.2 + 0.0 + 1.5 = 2.7%).
  OpMix mix = Spotify();
  mix.name = "write-" + std::to_string(file_write_pct);
  double other_writes = 0.0;
  for (const auto& e : mix.entries) {
    if (e.op == OpType::kAppendFile || e.op == OpType::kAddBlock) other_writes += e.pct;
  }
  double target_create = file_write_pct - other_writes;
  assert(target_create > 0);
  for (auto& e : mix.entries) {
    if (e.op == OpType::kCreateFile) {
      double delta = target_create - e.pct;
      e.pct = target_create;
      for (auto& r : mix.entries) {
        if (r.op == OpType::kRead) r.pct -= delta;
      }
      break;
    }
  }
  return mix;
}

OpMix OpMix::Single(OpType op, double dir_fraction) {
  OpMix mix;
  mix.name = std::string(OpTypeName(op));
  mix.entries = {{op, 100.0, dir_fraction}};
  return mix;
}

double OpMix::TotalPct() const {
  double total = 0;
  for (const auto& e : entries) total += e.pct;
  return total;
}

double OpMix::WritePct() const {
  double writes = 0;
  for (const auto& e : entries) {
    switch (e.op) {
      case OpType::kAppendFile:
      case OpType::kMkdirs:
      case OpType::kSetPermission:
      case OpType::kSetReplication:
      case OpType::kSetOwner:
      case OpType::kDelete:
      case OpType::kCreateFile:
      case OpType::kMove:
      case OpType::kAddBlock:
        writes += e.pct;
        break;
      default:
        break;
    }
  }
  return writes * 100.0 / TotalPct();
}

OpSampler::OpSampler(const OpMix& mix)
    : entries_(mix.entries), sampler_([&] {
        std::vector<double> weights;
        weights.reserve(mix.entries.size());
        for (const auto& e : mix.entries) weights.push_back(e.pct);
        return weights;
      }()) {}

std::pair<OpType, bool> OpSampler::Sample(hops::Rng& rng) const {
  const MixEntry& e = entries_[sampler_.Sample(rng)];
  return {e.op, rng.Chance(e.dir_fraction)};
}

}  // namespace hops::wl
