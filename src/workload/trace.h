// Trace capture: runs each operation type of a mix against a real HopsFS
// namenode with database-access tracing enabled and pools the per-operation
// traces. The discrete-event simulator (src/sim) replays these pools, so its
// service demands -- round trips, rows touched, partition skew, cache hit
// rates -- are measured rather than assumed.
#pragma once

#include <map>
#include <vector>

#include "hopsfs/mini_cluster.h"
#include "kv/kv.h"
#include "workload/namespace_gen.h"
#include "workload/spec.h"

namespace hops::wl {

// All database accesses of one client-visible file system operation
// (possibly several transactions, e.g. a multi-level mkdirs).
struct OpTrace {
  std::vector<kv::Access> accesses;
  uint32_t RoundTrips() const {
    uint32_t n = 0;
    for (const auto& a : accesses) n += a.round_trips;
    return n;
  }
  uint32_t Rows() const {
    uint32_t n = 0;
    for (const auto& a : accesses) n += a.TotalRows();
    return n;
  }
};

struct TracePools {
  std::map<OpType, std::vector<OpTrace>> pools;
  // Partition count of the capture cluster (the simulator remaps partitions
  // onto its own topology).
  uint32_t num_partitions = 0;

  const std::vector<OpTrace>& PoolFor(OpType op) const;
};

// Runs `samples_per_op` operations of every op type in `mix` (weight > 0)
// through namenode 0 of `cluster` over namespace `ns`, collecting traces.
TracePools CollectTraces(hops::fs::MiniCluster& cluster, const GeneratedNamespace& ns,
                         const OpMix& mix, int samples_per_op, uint64_t seed);

}  // namespace hops::wl
