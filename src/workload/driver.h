// Closed-loop workload driver: N client threads sample operations from an
// OpMix and execute them against a file system (HopsFS or the HDFS
// baseline) over a pre-generated namespace, recording per-operation latency
// histograms and aggregate throughput. Target popularity is Zipf-distributed
// (heavy-tailed access, §5.1.1).
#pragma once

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <optional>

#include "hdfs/namesystem.h"
#include "hopsfs/mini_cluster.h"
#include "util/histogram.h"
#include "workload/namespace_gen.h"
#include "workload/spec.h"

namespace hops::wl {

// Minimal uniform facade over the two systems under test.
class FsApi {
 public:
  virtual ~FsApi() = default;
  virtual hops::Status Mkdirs(const std::string& path) = 0;
  virtual hops::Status CreateFile(const std::string& path, int64_t bytes) = 0;
  virtual hops::Status AppendBlock(const std::string& path, int64_t bytes) = 0;
  virtual hops::Status Read(const std::string& path) = 0;
  virtual hops::Status Stat(const std::string& path) = 0;
  virtual hops::Status List(const std::string& path) = 0;
  virtual hops::Status SetPermission(const std::string& path, int64_t perm) = 0;
  virtual hops::Status SetOwner(const std::string& path, const std::string& owner) = 0;
  virtual hops::Status SetReplication(const std::string& path, int64_t repl) = 0;
  virtual hops::Status Rename(const std::string& src, const std::string& dst) = 0;
  virtual hops::Status Delete(const std::string& path) = 0;
  virtual hops::Status ContentSummary(const std::string& path) = 0;
};

std::unique_ptr<FsApi> MakeHopsAdapter(hops::fs::Client client);
std::unique_ptr<FsApi> MakeHdfsAdapter(hops::hdfs::Namesystem* fs, std::string holder);

struct DriverOptions {
  int num_threads = 2;
  int64_t ops_per_thread = 500;  // ignored when duration > 0
  std::chrono::milliseconds duration{0};
  uint64_t seed = 1;
  double zipf_exponent = 1.05;
};

struct DriverReport {
  uint64_t ops = 0;
  uint64_t failures = 0;
  double wall_seconds = 0;
  double ops_per_second = 0;
  std::map<OpType, hops::Histogram> latency;
  std::map<OpType, uint64_t> counts;
  // Hint-cache counters of the HopsFS cluster under test (absent for the
  // HDFS baseline); filled by FillHintStats after the run.
  std::optional<hops::fs::ClusterHintStats> hint_stats;

  const hops::Histogram* LatencyOf(OpType op) const {
    auto it = latency.find(op);
    return it == latency.end() ? nullptr : &it->second;
  }
};

// Runs the closed loop. `make_api` is called once per thread.
DriverReport RunDriver(const std::function<std::unique_ptr<FsApi>(int thread)>& make_api,
                       const GeneratedNamespace& ns, const OpMix& mix,
                       const DriverOptions& options);

// Attaches the cluster's aggregate hint-cache counters to a finished report
// (the driver itself is system-agnostic, so the caller names the cluster).
inline void FillHintStats(hops::fs::MiniCluster& cluster, DriverReport& report) {
  report.hint_stats = cluster.AggregateHintStats();
}

}  // namespace hops::wl
