// Workload specifications (paper Table 1 + §7.2).
//
// The Spotify mix gives each metadata operation's relative frequency and,
// where the paper reports it, the fraction of targets that are directories
// (the bracketed percentages of Table 1). The write-intensive variants of
// Table 2 raise the file-create share while shrinking reads.
#pragma once

#include <string>
#include <vector>

#include "util/rng.h"

namespace hops::wl {

enum class OpType {
  kAppendFile,
  kMkdirs,
  kSetPermission,
  kSetReplication,
  kSetOwner,
  kDelete,
  kCreateFile,
  kMove,
  kAddBlock,
  kList,
  kStat,
  kRead,
  kContentSummary,
};

std::string_view OpTypeName(OpType op);

struct MixEntry {
  OpType op;
  double pct;           // relative frequency, percent
  double dir_fraction;  // fraction of targets that are directories
};

struct OpMix {
  std::string name;
  std::vector<MixEntry> entries;

  // Table 1: Spotify's production trace (94.74% reads, 2.7% file writes
  // counting create+append+addBlock-ish mutations).
  static OpMix Spotify();
  // Table 2: the Spotify mix with the create-file share raised to
  // `create_pct` percent, reads scaled down to make room.
  static OpMix WriteIntensive(double create_pct);
  // A flood of one operation (Figure 7).
  static OpMix Single(OpType op, double dir_fraction = 0.0);

  double TotalPct() const;
  // Percentage of operations that mutate the namespace.
  double WritePct() const;
};

// Samples operations from a mix.
class OpSampler {
 public:
  explicit OpSampler(const OpMix& mix);
  // Returns the op plus whether the target should be a directory.
  std::pair<OpType, bool> Sample(hops::Rng& rng) const;

 private:
  std::vector<MixEntry> entries_;
  hops::DiscreteSampler sampler_;
};

// Namespace shape statistics from §7.2: "the average file path depth is 7
// and average inode name length is 34 characters. On average each directory
// contains 16 files and 2 sub-directories", 1.3 blocks per file.
struct NamespaceShape {
  int files_per_dir = 16;
  int subdirs_per_dir = 2;
  int dir_depth = 5;          // depth of the directory tree below the top level
  int top_level_dirs = 4;     // direct children of the root
  size_t name_length = 34;
  double blocks_per_file = 1.3;
  int64_t bytes_per_block = 1024;  // metadata-only: sizes are bookkeeping
};

}  // namespace hops::wl
