// Synthetic namespace generation matching the paper's shape statistics
// (§7.2), plus a direct-to-database bulk loader for experiments that need
// millions of inodes (Table 4).
#pragma once

#include <string>
#include <vector>

#include "hopsfs/client.h"
#include "hopsfs/mini_cluster.h"
#include "workload/spec.h"

namespace hops::wl {

struct GeneratedNamespace {
  // Directories in creation order (parents before children); files last.
  std::vector<std::string> dirs;
  std::vector<std::string> files;
};

// Plans a deterministic directory tree: `top_level_dirs` children of the
// root, each expanding breadth-first with `subdirs_per_dir` subdirectories
// until enough directories exist to hold `target_files` at
// `files_per_dir` files each. Names are `name_length` random characters.
GeneratedNamespace PlanNamespace(const NamespaceShape& shape, int64_t target_files,
                                 uint64_t seed);

// Variant rooted under a common ancestor (the §7.2.1 hotspot experiment:
// "/shared-dir/...").
GeneratedNamespace PlanNamespaceUnder(const std::string& base, const NamespaceShape& shape,
                                      int64_t target_files, uint64_t seed);

// Builds the namespace through the public client API (files get 1-2 blocks
// matching blocks_per_file on average).
hops::Status Materialize(hops::fs::Client& client, const GeneratedNamespace& ns,
                         const NamespaceShape& shape, uint64_t seed);

// Fast path for very large namespaces: writes inode/block/lookup rows
// directly into the database in batched transactions, reserving id ranges
// from the variables table. Equivalent to Materialize for metadata layout;
// skips the per-operation transaction machinery.
class BulkLoader {
 public:
  BulkLoader(kv::Engine* db, const hops::fs::MetadataSchema* schema,
             const hops::fs::FsConfig* config);

  // Loads the namespace; files get `blocks_per_file` blocks (rounded
  // per-file to average out) and `replicas_per_block` replica rows.
  hops::Result<int64_t> Load(const GeneratedNamespace& ns, double blocks_per_file,
                             int replicas_per_block, uint64_t seed);

 private:
  kv::Engine* const db_;
  const hops::fs::MetadataSchema* const schema_;
  const hops::fs::FsConfig* const config_;
};

}  // namespace hops::wl
