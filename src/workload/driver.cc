#include "workload/driver.h"

#include <thread>

#include "util/clock.h"

namespace hops::wl {

namespace {

class HopsAdapter : public FsApi {
 public:
  explicit HopsAdapter(hops::fs::Client client) : client_(std::move(client)) {}

  hops::Status Mkdirs(const std::string& path) override { return client_.Mkdirs(path); }
  hops::Status CreateFile(const std::string& path, int64_t bytes) override {
    HOPS_RETURN_IF_ERROR(client_.CreateFile(path));
    if (bytes > 0) {
      auto blk = client_.AddBlock(path, bytes);
      if (!blk.ok()) return blk.status();
    }
    return client_.CompleteFile(path);
  }
  hops::Status AppendBlock(const std::string& path, int64_t bytes) override {
    HOPS_RETURN_IF_ERROR(client_.Append(path));
    auto blk = client_.AddBlock(path, bytes);
    if (!blk.ok()) return blk.status();
    return client_.CompleteFile(path);
  }
  hops::Status Read(const std::string& path) override { return client_.Read(path).status(); }
  hops::Status Stat(const std::string& path) override { return client_.Stat(path).status(); }
  hops::Status List(const std::string& path) override { return client_.List(path).status(); }
  hops::Status SetPermission(const std::string& path, int64_t perm) override {
    return client_.SetPermission(path, perm);
  }
  hops::Status SetOwner(const std::string& path, const std::string& owner) override {
    return client_.SetOwner(path, owner, "users");
  }
  hops::Status SetReplication(const std::string& path, int64_t repl) override {
    return client_.SetReplication(path, repl);
  }
  hops::Status Rename(const std::string& src, const std::string& dst) override {
    return client_.Rename(src, dst);
  }
  hops::Status Delete(const std::string& path) override { return client_.Delete(path, true); }
  hops::Status ContentSummary(const std::string& path) override {
    return client_.ContentSummaryOf(path).status();
  }

 private:
  hops::fs::Client client_;
};

class HdfsAdapter : public FsApi {
 public:
  HdfsAdapter(hops::hdfs::Namesystem* fs, std::string holder)
      : fs_(fs), holder_(std::move(holder)) {}

  hops::Status Mkdirs(const std::string& path) override { return fs_->Mkdirs(path); }
  hops::Status CreateFile(const std::string& path, int64_t bytes) override {
    HOPS_RETURN_IF_ERROR(fs_->Create(path, holder_));
    if (bytes > 0) {
      auto blk = fs_->AddBlock(path, holder_, bytes);
      if (!blk.ok()) return blk.status();
    }
    return fs_->CompleteFile(path, holder_);
  }
  hops::Status AppendBlock(const std::string& path, int64_t bytes) override {
    HOPS_RETURN_IF_ERROR(fs_->Append(path, holder_));
    auto blk = fs_->AddBlock(path, holder_, bytes);
    if (!blk.ok()) return blk.status();
    return fs_->CompleteFile(path, holder_);
  }
  hops::Status Read(const std::string& path) override {
    return fs_->GetBlockLocations(path).status();
  }
  hops::Status Stat(const std::string& path) override {
    return fs_->GetFileInfo(path).status();
  }
  hops::Status List(const std::string& path) override {
    return fs_->ListStatus(path).status();
  }
  hops::Status SetPermission(const std::string& path, int64_t perm) override {
    return fs_->SetPermission(path, perm);
  }
  hops::Status SetOwner(const std::string& path, const std::string& owner) override {
    return fs_->SetOwner(path, owner, "users");
  }
  hops::Status SetReplication(const std::string& path, int64_t repl) override {
    return fs_->SetReplication(path, repl);
  }
  hops::Status Rename(const std::string& src, const std::string& dst) override {
    return fs_->Rename(src, dst);
  }
  hops::Status Delete(const std::string& path) override { return fs_->Delete(path, true); }
  hops::Status ContentSummary(const std::string& path) override {
    return fs_->GetContentSummary(path).status();
  }

 private:
  hops::hdfs::Namesystem* const fs_;
  const std::string holder_;
};

// Per-thread closed-loop worker.
class Worker {
 public:
  Worker(int id, FsApi* fs, const GeneratedNamespace& ns, const OpMix& mix,
         const DriverOptions& options)
      : id_(id),
        fs_(fs),
        ns_(ns),
        sampler_(mix),
        rng_(options.seed * 1000003 + static_cast<uint64_t>(id)),
        file_zipf_(std::max<size_t>(ns.files.size(), 1), options.zipf_exponent),
        dir_zipf_(std::max<size_t>(ns.dirs.size(), 1), options.zipf_exponent) {}

  void RunOps(int64_t count, std::atomic<bool>* stop) {
    for (int64_t i = 0; (count < 0 || i < count); ++i) {
      if (stop != nullptr && stop->load(std::memory_order_relaxed)) break;
      Step();
    }
  }

  uint64_t ops() const { return ops_; }
  uint64_t failures() const { return failures_; }
  const std::map<OpType, hops::Histogram>& latency() const { return latency_; }
  const std::map<OpType, uint64_t>& counts() const { return counts_; }

 private:
  const std::string& GlobalFile() { return ns_.files[file_zipf_.Sample(rng_)]; }
  const std::string& GlobalDir() { return ns_.dirs[dir_zipf_.Sample(rng_)]; }
  // Leaf-heavy directory choice for content summary (keeps subtrees small).
  const std::string& LeafDir() {
    size_t half = ns_.dirs.size() / 2;
    return ns_.dirs[half + rng_.Below(ns_.dirs.size() - half)];
  }
  std::string FreshName() {
    return "w" + std::to_string(id_) + "_" + std::to_string(counter_++);
  }

  void Step() {
    auto [op, on_dir] = sampler_.Sample(rng_);
    int64_t t0 = hops::MonotonicMicros();
    hops::Status st = Execute(op, on_dir);
    int64_t dt = hops::MonotonicMicros() - t0;
    ops_++;
    counts_[op]++;
    latency_[op].Record(static_cast<double>(dt));
    if (!st.ok()) failures_++;
  }

  hops::Status Execute(OpType op, bool on_dir) {
    switch (op) {
      case OpType::kRead:
        return fs_->Read(GlobalFile());
      case OpType::kStat:
        return fs_->Stat(on_dir ? GlobalDir() : GlobalFile());
      case OpType::kList:
        return fs_->List(on_dir ? GlobalDir() : GlobalFile());
      case OpType::kCreateFile: {
        std::string path = GlobalDir() + "/" + FreshName();
        hops::Status st = fs_->CreateFile(path, 1024);
        if (st.ok() && own_files_.size() < 4096) own_files_.push_back(path);
        return st;
      }
      case OpType::kAddBlock:
      case OpType::kAppendFile: {
        if (own_files_.empty()) return fs_->Stat(GlobalFile());
        return fs_->AppendBlock(own_files_[rng_.Below(own_files_.size())], 1024);
      }
      case OpType::kDelete: {
        if (own_files_.empty()) return fs_->Stat(GlobalFile());
        size_t idx = rng_.Below(own_files_.size());
        std::string path = own_files_[idx];
        own_files_.erase(own_files_.begin() + static_cast<long>(idx));
        return fs_->Delete(path);
      }
      case OpType::kMove: {
        if (own_files_.empty()) return fs_->Stat(GlobalFile());
        size_t idx = rng_.Below(own_files_.size());
        std::string src = own_files_[idx];
        std::string dst = src.substr(0, src.rfind('/') + 1) + FreshName();
        hops::Status st = fs_->Rename(src, dst);
        if (st.ok()) own_files_[idx] = dst;
        return st;
      }
      case OpType::kMkdirs:
        return fs_->Mkdirs(GlobalDir() + "/" + FreshName());
      case OpType::kSetPermission:
        return fs_->SetPermission(on_dir ? LeafDir() : GlobalFile(), 0750);
      case OpType::kSetOwner:
        return fs_->SetOwner(on_dir ? LeafDir() : GlobalFile(), "owner" + std::to_string(id_));
      case OpType::kSetReplication:
        return fs_->SetReplication(GlobalFile(), static_cast<int64_t>(2 + rng_.Below(3)));
      case OpType::kContentSummary:
        return fs_->ContentSummary(LeafDir());
    }
    return hops::Status::InvalidArgument("unknown op");
  }

  const int id_;
  FsApi* const fs_;
  const GeneratedNamespace& ns_;
  OpSampler sampler_;
  hops::Rng rng_;
  hops::ZipfSampler file_zipf_;
  hops::ZipfSampler dir_zipf_;
  std::vector<std::string> own_files_;
  uint64_t counter_ = 0;
  uint64_t ops_ = 0;
  uint64_t failures_ = 0;
  std::map<OpType, hops::Histogram> latency_;
  std::map<OpType, uint64_t> counts_;
};

}  // namespace

std::unique_ptr<FsApi> MakeHopsAdapter(hops::fs::Client client) {
  return std::make_unique<HopsAdapter>(std::move(client));
}

std::unique_ptr<FsApi> MakeHdfsAdapter(hops::hdfs::Namesystem* fs, std::string holder) {
  return std::make_unique<HdfsAdapter>(fs, std::move(holder));
}

DriverReport RunDriver(const std::function<std::unique_ptr<FsApi>(int thread)>& make_api,
                       const GeneratedNamespace& ns, const OpMix& mix,
                       const DriverOptions& options) {
  std::vector<std::unique_ptr<FsApi>> apis;
  std::vector<std::unique_ptr<Worker>> workers;
  for (int t = 0; t < options.num_threads; ++t) {
    apis.push_back(make_api(t));
    workers.push_back(std::make_unique<Worker>(t, apis.back().get(), ns, mix, options));
  }

  std::atomic<bool> stop{false};
  int64_t start = hops::MonotonicMicros();
  std::vector<std::thread> threads;
  bool timed = options.duration.count() > 0;
  for (int t = 0; t < options.num_threads; ++t) {
    Worker* w = workers[static_cast<size_t>(t)].get();
    threads.emplace_back(
        [&, w] { w->RunOps(timed ? -1 : options.ops_per_thread, &stop); });
  }
  if (timed) {
    std::this_thread::sleep_for(options.duration);
    stop.store(true);
  }
  for (auto& t : threads) t.join();
  int64_t elapsed = hops::MonotonicMicros() - start;

  DriverReport report;
  report.wall_seconds = static_cast<double>(elapsed) / 1e6;
  for (const auto& w : workers) {
    report.ops += w->ops();
    report.failures += w->failures();
    for (const auto& [op, hist] : w->latency()) report.latency[op].Merge(hist);
    for (const auto& [op, n] : w->counts()) report.counts[op] += n;
  }
  report.ops_per_second =
      report.wall_seconds > 0 ? static_cast<double>(report.ops) / report.wall_seconds : 0;
  return report;
}

}  // namespace hops::wl
