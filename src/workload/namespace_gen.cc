#include "workload/namespace_gen.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <memory>
#include <unordered_map>

#include "hopsfs/partition.h"
#include "hopsfs/path.h"
#include "hopsfs/schema.h"
#include "util/clock.h"

namespace hops::wl {

namespace {

GeneratedNamespace PlanImpl(const std::string& base, const NamespaceShape& shape,
                            int64_t target_files, uint64_t seed) {
  GeneratedNamespace ns;
  hops::Rng rng(seed);
  int64_t dirs_needed =
      std::max<int64_t>(1, (target_files + shape.files_per_dir - 1) / shape.files_per_dir);

  std::deque<std::string> frontier;
  for (int i = 0; i < shape.top_level_dirs && static_cast<int64_t>(ns.dirs.size()) < dirs_needed;
       ++i) {
    std::string dir = base + "/" + rng.RandomName(shape.name_length);
    ns.dirs.push_back(dir);
    frontier.push_back(dir);
  }
  // Breadth-first expansion keeps the tree balanced, approximating the
  // paper's average path depth.
  while (static_cast<int64_t>(ns.dirs.size()) < dirs_needed && !frontier.empty()) {
    std::string parent = frontier.front();
    frontier.pop_front();
    for (int i = 0;
         i < shape.subdirs_per_dir && static_cast<int64_t>(ns.dirs.size()) < dirs_needed;
         ++i) {
      std::string dir = parent + "/" + rng.RandomName(shape.name_length);
      ns.dirs.push_back(dir);
      frontier.push_back(dir);
    }
  }
  int64_t remaining = target_files;
  for (const std::string& dir : ns.dirs) {
    for (int i = 0; i < shape.files_per_dir && remaining > 0; ++i, --remaining) {
      ns.files.push_back(dir + "/" + rng.RandomName(shape.name_length));
    }
  }
  return ns;
}

}  // namespace

GeneratedNamespace PlanNamespace(const NamespaceShape& shape, int64_t target_files,
                                 uint64_t seed) {
  return PlanImpl("", shape, target_files, seed);
}

GeneratedNamespace PlanNamespaceUnder(const std::string& base, const NamespaceShape& shape,
                                      int64_t target_files, uint64_t seed) {
  return PlanImpl(base, shape, target_files, seed);
}

hops::Status Materialize(hops::fs::Client& client, const GeneratedNamespace& ns,
                         const NamespaceShape& shape, uint64_t seed) {
  hops::Rng rng(seed);
  for (const auto& dir : ns.dirs) {
    HOPS_RETURN_IF_ERROR(client.Mkdirs(dir));
  }
  double extra = shape.blocks_per_file - 1.0;
  for (const auto& file : ns.files) {
    int blocks = 1 + (rng.Chance(extra) ? 1 : 0);
    HOPS_RETURN_IF_ERROR(client.WriteFile(file, blocks, shape.bytes_per_block));
  }
  return hops::Status::Ok();
}

BulkLoader::BulkLoader(kv::Engine* db, const hops::fs::MetadataSchema* schema,
                       const hops::fs::FsConfig* config)
    : db_(db), schema_(schema), config_(config) {}

hops::Result<int64_t> BulkLoader::Load(const GeneratedNamespace& ns, double blocks_per_file,
                                       int replicas_per_block, uint64_t seed) {
  namespace fs = hops::fs;
  hops::Rng rng(seed);

  // Reserve id ranges up front (one transaction on the variables rows).
  int64_t inode_count = static_cast<int64_t>(ns.dirs.size() + ns.files.size());
  int64_t max_blocks =
      static_cast<int64_t>(static_cast<double>(ns.files.size()) * (blocks_per_file + 1)) + 16;
  int64_t first_inode = 0, first_block = 0;
  {
    auto tx = db_->Begin(kv::TxHint{schema_->variables, 0});
    auto inode_row =
        tx->Read(schema_->variables, {fs::kVarNextInodeId}, kv::LockMode::kExclusive);
    if (!inode_row.ok()) return inode_row.status();
    first_inode = (*inode_row)[fs::col::kVarValue].i64();
    auto block_row =
        tx->Read(schema_->variables, {fs::kVarNextBlockId}, kv::LockMode::kExclusive);
    if (!block_row.ok()) return block_row.status();
    first_block = (*block_row)[fs::col::kVarValue].i64();
    HOPS_RETURN_IF_ERROR(tx->Update(
        schema_->variables, kv::Row{fs::kVarNextInodeId, first_inode + inode_count}));
    HOPS_RETURN_IF_ERROR(tx->Update(
        schema_->variables, kv::Row{fs::kVarNextBlockId, first_block + max_blocks}));
    HOPS_RETURN_IF_ERROR(tx->Commit());
  }

  // path -> (inode id, depth); the root is known.
  std::unordered_map<std::string, std::pair<fs::InodeId, int>> ids;
  int64_t next_inode = first_inode;
  int64_t next_block = first_block;
  int rdepth = config_->random_partition_depth;

  constexpr size_t kBatch = 256;
  std::unique_ptr<kv::Txn> tx = db_->Begin();
  size_t in_batch = 0;
  auto flush = [&]() -> hops::Status {
    HOPS_RETURN_IF_ERROR(tx->Commit());
    tx = db_->Begin();
    in_batch = 0;
    return hops::Status::Ok();
  };
  auto maybe_flush = [&]() -> hops::Status {
    return ++in_batch >= kBatch ? flush() : hops::Status::Ok();
  };

  // Resolves a directory that exists in the database but was not created by
  // this loader (e.g. a pre-made "/shared-dir" base), caching the result.
  auto resolve_from_db = [&](const std::string& path)
      -> hops::Result<std::pair<fs::InodeId, int>> {  // (inode id, depth)
    auto parts = fs::SplitPath(path);
    if (!parts.ok()) return parts.status();
    fs::InodeId cur = fs::kRootInode;
    int depth = 0;
    auto rtx = db_->Begin();
    for (const auto& name : *parts) {
      depth++;
      uint64_t pv = fs::InodePartitionValue(depth, cur, name, rdepth);
      auto row = rtx->Read(schema_->inodes, kv::Key{cur, name},
                           kv::LockMode::kReadCommitted, pv);
      if (!row.ok()) {
        uint64_t alt = depth <= rdepth ? static_cast<uint64_t>(cur) : HashBytes(name);
        row = rtx->Read(schema_->inodes, kv::Key{cur, name},
                        kv::LockMode::kReadCommitted, alt);
        if (!row.ok()) {
          return hops::Status::NotFound("bulk load base " + path + " is missing " + name);
        }
      }
      cur = (*row)[fs::col::kInodeId].i64();
    }
    ids[path] = {cur, depth};
    return std::make_pair(cur, depth);
  };

  auto lookup_parent = [&](const std::string& path)
      -> hops::Result<std::pair<fs::InodeId, int>> {  // (parent id, own depth)
    auto slash = path.rfind('/');
    std::string parent = path.substr(0, slash);
    if (parent.empty()) return std::make_pair(fs::kRootInode, 1);
    auto it = ids.find(parent);
    if (it == ids.end()) {
      HOPS_ASSIGN_OR_RETURN(resolved, resolve_from_db(parent));
      return std::make_pair(resolved.first, resolved.second + 1);
    }
    return std::make_pair(it->second.first, it->second.second + 1);
  };

  for (const auto& dir : ns.dirs) {
    HOPS_ASSIGN_OR_RETURN(parent_info, lookup_parent(dir));
    auto [parent_id, depth] = parent_info;
    fs::Inode inode;
    inode.parent_id = parent_id;
    inode.name = dir.substr(dir.rfind('/') + 1);
    inode.id = next_inode++;
    inode.is_dir = true;
    inode.owner = "hdfs";
    inode.group = "hdfs";
    inode.mtime = hops::NowMicros();
    HOPS_RETURN_IF_ERROR(
        tx->Insert(schema_->inodes, fs::ToRow(inode),
                   fs::InodePartitionValue(depth, parent_id, inode.name, rdepth)));
    ids[dir] = {inode.id, depth};
    HOPS_RETURN_IF_ERROR(maybe_flush());
  }

  double extra = blocks_per_file - 1.0;
  for (const auto& file : ns.files) {
    HOPS_ASSIGN_OR_RETURN(file_parent_info, lookup_parent(file));
    auto [parent_id, depth] = file_parent_info;
    fs::Inode inode;
    inode.parent_id = parent_id;
    inode.name = file.substr(file.rfind('/') + 1);
    inode.id = next_inode++;
    inode.is_dir = false;
    inode.owner = "hdfs";
    inode.group = "hdfs";
    inode.mtime = hops::NowMicros();
    inode.replication = 3;
    int blocks = 1 + (rng.Chance(extra) ? 1 : 0);
    inode.size = blocks * 1024;
    HOPS_RETURN_IF_ERROR(
        tx->Insert(schema_->inodes, fs::ToRow(inode),
                   fs::InodePartitionValue(depth, parent_id, inode.name, rdepth)));
    for (int b = 0; b < blocks; ++b) {
      fs::Block blk;
      blk.inode_id = inode.id;
      blk.block_id = next_block++;
      blk.block_index = b;
      blk.state = fs::BlockState::kComplete;
      blk.num_bytes = 1024;
      blk.replication = 3;
      HOPS_RETURN_IF_ERROR(tx->Insert(schema_->blocks, fs::ToRow(blk)));
      HOPS_RETURN_IF_ERROR(
          tx->Insert(schema_->block_lookup, kv::Row{blk.block_id, inode.id}));
      for (int r = 0; r < replicas_per_block; ++r) {
        fs::Replica rep{inode.id, blk.block_id, r + 1, fs::ReplicaState::kFinalized};
        HOPS_RETURN_IF_ERROR(tx->Insert(schema_->replicas, fs::ToRow(rep)));
      }
    }
    HOPS_RETURN_IF_ERROR(maybe_flush());
  }
  HOPS_RETURN_IF_ERROR(tx->Commit());
  return inode_count;
}

}  // namespace hops::wl
