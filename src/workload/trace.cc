#include "workload/trace.h"

#include <cassert>
#include <mutex>

namespace hops::wl {

const std::vector<OpTrace>& TracePools::PoolFor(OpType op) const {
  auto it = pools.find(op);
  if (it != pools.end() && !it->second.empty()) return it->second;
  // Fall back to stat (the cheapest read) for ops without samples.
  static const std::vector<OpTrace> kEmpty;
  auto stat = pools.find(OpType::kStat);
  return stat != pools.end() ? stat->second : kEmpty;
}

TracePools CollectTraces(hops::fs::MiniCluster& cluster, const GeneratedNamespace& ns,
                         const OpMix& mix, int samples_per_op, uint64_t seed) {
  namespace fs = hops::fs;
  TracePools pools;
  pools.num_partitions = cluster.db().num_partitions();
  assert(!ns.files.empty() && !ns.dirs.empty());

  fs::Namenode& nn = cluster.namenode(0);
  hops::Rng rng(seed);
  hops::ZipfSampler file_zipf(ns.files.size(), 1.05);
  hops::ZipfSampler dir_zipf(ns.dirs.size(), 1.05);
  uint64_t counter = 0;

  OpTrace current;
  bool tracing = false;
  // The intent-log applier delivers its traces from its own thread, so the
  // sink must be synchronized with the capture loop's.
  std::mutex trace_mu;
  nn.SetTraceSink([&](const kv::CostTrace& trace) {
    std::lock_guard<std::mutex> lock(trace_mu);
    if (!tracing) return;
    current.accesses.insert(current.accesses.end(), trace.accesses.begin(),
                            trace.accesses.end());
  });
  auto traced = [&](const std::function<void()>& op) {
    // Async metadata commits: drain any intents a setup op acknowledged so
    // their applies do not bleed into this op's trace ...
    nn.FlushIntents();
    {
      std::lock_guard<std::mutex> lock(trace_mu);
      current.accesses.clear();
      tracing = true;
    }
    op();
    // ... and drain this op's own intents INSIDE the traced window, so the
    // captured trace carries the acknowledged foreground trips first and
    // the background-marked apply accesses after them (the simulator
    // records the op's latency at the first background access).
    nn.FlushIntents();
    std::lock_guard<std::mutex> lock(trace_mu);
    tracing = false;
  };

  auto global_file = [&]() -> const std::string& { return ns.files[file_zipf.Sample(rng)]; };
  auto global_dir = [&]() -> const std::string& { return ns.dirs[dir_zipf.Sample(rng)]; };
  auto leaf_dir = [&]() -> const std::string& {
    size_t half = ns.dirs.size() / 2;
    return ns.dirs[half + rng.Below(ns.dirs.size() - half)];
  };
  auto fresh = [&] { return "trace_" + std::to_string(counter++); };

  for (const auto& entry : mix.entries) {
    if (entry.pct <= 0) continue;
    std::vector<OpTrace>& pool = pools.pools[entry.op];
    for (int i = 0; i < samples_per_op; ++i) {
      bool on_dir = rng.Chance(entry.dir_fraction);
      switch (entry.op) {
        case OpType::kRead:
          traced([&] { (void)nn.GetBlockLocations(global_file()); });
          break;
        case OpType::kStat:
          traced([&] { (void)nn.GetFileInfo(on_dir ? global_dir() : global_file()); });
          break;
        case OpType::kList:
          traced([&] { (void)nn.ListStatus(on_dir ? global_dir() : global_file()); });
          break;
        case OpType::kCreateFile: {
          std::string path = global_dir() + "/" + fresh();
          traced([&] {
            (void)nn.Create(path, "trace");
            (void)nn.AddBlock(path, "trace", 1024);
            (void)nn.CompleteFile(path, "trace");
          });
          break;
        }
        case OpType::kAppendFile:
        case OpType::kAddBlock: {
          std::string path = global_dir() + "/" + fresh();
          (void)nn.Create(path, "trace");
          (void)nn.CompleteFile(path, "trace");
          traced([&] {
            (void)nn.Append(path, "trace");
            (void)nn.AddBlock(path, "trace", 1024);
            (void)nn.CompleteFile(path, "trace");
          });
          break;
        }
        case OpType::kDelete: {
          std::string path = global_dir() + "/" + fresh();
          (void)nn.Create(path, "trace");
          (void)nn.CompleteFile(path, "trace");
          traced([&] { (void)nn.Delete(path, false); });
          break;
        }
        case OpType::kMove: {
          std::string path = global_dir() + "/" + fresh();
          (void)nn.Create(path, "trace");
          (void)nn.CompleteFile(path, "trace");
          traced([&] { (void)nn.Rename(path, path + "_mv"); });
          break;
        }
        case OpType::kMkdirs: {
          std::string path = global_dir() + "/" + fresh();
          traced([&] { (void)nn.Mkdirs(path); });
          break;
        }
        case OpType::kSetPermission:
          traced([&] { (void)nn.SetPermission(on_dir ? leaf_dir() : global_file(), 0750); });
          break;
        case OpType::kSetOwner:
          traced([&] { (void)nn.SetOwner(leaf_dir(), "owner", "users"); });
          break;
        case OpType::kSetReplication:
          traced([&] {
            (void)nn.SetReplication(global_file(), static_cast<int64_t>(2 + rng.Below(3)));
          });
          break;
        case OpType::kContentSummary:
          traced([&] { (void)nn.GetContentSummary(leaf_dir()); });
          break;
      }
      if (!current.accesses.empty()) pool.push_back(current);
    }
  }
  nn.SetTraceSink(nullptr);
  return pools;
}

}  // namespace hops::wl
