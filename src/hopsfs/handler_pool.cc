#include "hopsfs/handler_pool.h"

namespace hops::fs {

namespace {
thread_local bool t_on_handler = false;
}  // namespace

HandlerPool::HandlerPool(int num_handlers) {
  handlers_.reserve(static_cast<size_t>(num_handlers));
  for (int i = 0; i < num_handlers; ++i) {
    handlers_.emplace_back([this] { HandlerLoop(); });
  }
}

HandlerPool::~HandlerPool() {
  // Teardown contract: the namenode (and so its pool) must outlive every
  // client call -- no thread may still be blocked in Run() here, since it
  // would be left touching the pool's members as they are destroyed. The
  // drain below is defensive only: it fails stragglers cleanly instead of
  // parking them forever, which makes a contract violation loud rather
  // than silent.
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  work_.notify_all();
  for (auto& h : handlers_) h.join();
  std::lock_guard<std::mutex> lk(mu_);
  for (Request* r : queue_) {
    r->result = hops::Status::Failover("handler pool stopped");
    r->done = true;
  }
  queue_.clear();
  done_.notify_all();
}

bool HandlerPool::OnHandlerThread() { return t_on_handler; }

size_t HandlerPool::queue_depth() const {
  std::lock_guard<std::mutex> lk(mu_);
  return queue_.size();
}

hops::Status HandlerPool::Run(const std::function<hops::Status()>& op) {
  Request req;
  req.op = &op;
  std::unique_lock<std::mutex> lk(mu_);
  if (stop_) return hops::Status::Failover("handler pool stopped");
  queue_.push_back(&req);
  work_.notify_one();
  done_.wait(lk, [&] { return req.done; });
  return req.result;
}

void HandlerPool::HandlerLoop() {
  t_on_handler = true;
  for (;;) {
    Request* req;
    {
      std::unique_lock<std::mutex> lk(mu_);
      work_.wait(lk, [&] { return stop_ || !queue_.empty(); });
      if (stop_) return;
      req = queue_.front();
      queue_.pop_front();
    }
    hops::Status result = (*req->op)();
    served_.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lk(mu_);
      req->result = std::move(result);
      req->done = true;
    }
    done_.notify_all();
  }
}

}  // namespace hops::fs
