// A stateless HopsFS namenode (paper §3, §5, §6).
//
// Namenodes keep no authoritative state: every file system operation is a
// distributed transaction against the NDB-stored metadata, built from the
// three-phase template of Figure 4 (lock / execute / update). Per-namenode
// soft state is limited to the inode hint cache, chunked id allocators, and
// the leader-election membership view. Any number of Namenode instances can
// serve the same metadata concurrently; clients spread operations across
// them and retry on failure.
#pragma once

#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "hopsfs/config.h"
#include "hopsfs/handler_pool.h"
#include "hopsfs/inode_cache.h"
#include "hopsfs/intent_log.h"
#include "hopsfs/leader.h"
#include "hopsfs/path.h"
#include "hopsfs/schema.h"
#include "hopsfs/types.h"
#include "kv/kv.h"

namespace hops::fs {

// Chunked allocator over a variables-table counter; namenodes grab id ranges
// in bulk so the counter row never becomes a write hotspot.
class IdAllocator {
 public:
  IdAllocator(kv::Engine* db, const MetadataSchema* schema, int64_t var_id,
              int64_t chunk_size)
      : db_(db), schema_(schema), var_id_(var_id), chunk_(chunk_size) {}

  hops::Result<int64_t> Next();

 private:
  kv::Engine* const db_;
  const MetadataSchema* const schema_;
  const int64_t var_id_;
  const int64_t chunk_;
  std::mutex mu_;
  int64_t next_ = 0;
  int64_t limit_ = 0;
};

// Caller identity for permission enforcement.
struct UserContext {
  std::string user = "hdfs";
  bool superuser = true;
};

// Result of processing one datanode block report (§7.7).
struct BlockReportResult {
  int64_t blocks_matched = 0;
  int64_t replicas_added = 0;    // on-datanode blocks missing from metadata
  int64_t orphans_invalidated = 0;  // blocks unknown to the namespace
  int64_t replicas_removed = 0;  // metadata said present, report disagreed
};

class Namenode {
 public:
  // Fault-injection hook: invoked at named protocol points; returning true
  // simulates the namenode process dying at that point (the operation stops
  // without any cleanup, exactly like a crash).
  using DieAt = std::function<bool(std::string_view point)>;

  Namenode(kv::Engine* db, const MetadataSchema* schema, const FsConfig* config,
           std::string location = "nn");
  ~Namenode();

  // Joins the cluster: allocates the namenode id via leader election. With
  // `resume_id`, rejoins under that existing identity instead (a process
  // restart that kept its nn_id): the election counter continues from the
  // old row, and the start-up sweep replays this namenode's OWN surviving
  // intent partition -- its previous incarnation's acknowledged-but-
  // unapplied ops -- before serving.
  hops::Status Start(std::optional<NamenodeId> resume_id = std::nullopt);
  // One leader-election round; drives failure detection and (when proactive
  // hint invalidation is on) drains the hint-invalidation log, applying
  // other namenodes' prefix invalidations to the local hint cache.
  hops::Status Heartbeat();

  NamenodeId id() const { return election_.id(); }
  bool alive() const { return alive_; }
  bool IsLeader() const { return election_.IsLeader(); }
  // Simulates a crash: subsequent calls fail with kFailover, heartbeats stop,
  // and any subtree locks this namenode held are left behind for lazy
  // cleanup by the surviving namenodes. Acknowledged-but-unapplied intents
  // stay durable in op_intents for adoption by the surviving namenodes.
  void Kill() {
    alive_ = false;
    if (intents_) intents_->Abandon();
  }

  LeaderElection& election() { return election_; }
  InodeHintCache& hint_cache() { return hint_cache_; }
  // Prefixes from OTHER namenodes' hint-invalidation log records applied
  // locally by the heartbeat drain.
  uint64_t proactive_invalidations_applied() const {
    return proactive_applied_.load(std::memory_order_relaxed);
  }
  // Publish-side counters of the sharded invalidation log: records this
  // namenode appended, and ops whose prefixes rode an append together with
  // another op's (each such op is a log round trip the coalescing publisher
  // saved).
  uint64_t hint_publish_events() const {
    return hint_publish_events_.load(std::memory_order_relaxed);
  }
  uint64_t hint_publish_ops_coalesced() const {
    return hint_publish_ops_coalesced_.load(std::memory_order_relaxed);
  }
  // Blocks until every queued hint-invalidation publish has been appended
  // to the log (no-op for the synchronous publish path). Tests and benches
  // call this before inspecting the log or handing control to drainers.
  void FlushHintInvalidations();
  // Test hook: pausing keeps queued publish events from being appended so a
  // test can deterministically force several ops to coalesce into one
  // record; resume with false, then FlushHintInvalidations().
  void SetHintPublisherPausedForTesting(bool paused);

  // --- Asynchronous metadata commits (FsConfig::async_metadata_commit) ------
  // Blocks until every acknowledged intent of this namenode has been applied
  // (no-op when async commits are off or after Kill).
  void FlushIntents();
  // Test hook: a paused applier lets acknowledged-but-unapplied intents
  // accumulate durably in the log (the crash-replay tests' setup).
  void SetIntentApplierPausedForTesting(bool paused);
  // Test hook: parks submissions in the append queue so releasing the hold
  // coalesces them deterministically into one group-commit transaction.
  void SetIntentAppendHoldForTesting(bool hold);
  // Submissions currently parked in the append queue (0 when async is off).
  size_t IntentQueuedAppendsForTesting() const;
  // Test hook: simulated process death at a named intent-log boundary (see
  // IntentLog::SetCrashHookForTesting for the point names). The hook usually
  // pairs with Kill() inside the callback so the whole namenode dies there.
  void SetIntentCrashHookForTesting(IntentLog::CrashHook hook);
  // Test hook: a paused cleaner leaves applied intents' rows in op_intents
  // (the paused-cleaner fault class).
  void SetIntentCleanerPausedForTesting(bool paused);
  // Exposes the adoption sweep so tests can race two would-be leaders over a
  // dead namenode's partition (production calls it from Start/Heartbeat).
  void AdoptOrphanedIntentsForTesting() { AdoptOrphanedIntents(); }
  // Counters of the intent log's two stages (zeros when async is off).
  IntentLogStats intent_stats() const;
  // Intents this namenode replayed from dead namenodes' log partitions.
  uint64_t intents_adopted() const {
    return intents_adopted_.load(std::memory_order_relaxed);
  }
  const FsConfig& config() const { return *config_; }
  // The request handler pool (null when FsConfig::num_handlers == 0 and
  // operations run inline on the calling thread).
  HandlerPool* handler_pool() { return handlers_.get(); }

  // Datanode pool used to place new block replicas.
  void SetDatanodePicker(std::function<std::vector<DatanodeId>(int)> picker);
  void set_die_at(DieAt hook) { die_at_ = std::move(hook); }

  // When set, every committed transaction's database-access trace is
  // delivered to the sink (used by the benchmark calibration pipeline).
  // Forwarded to the intent log so an async op's traces cover both the
  // acknowledged append trip and the background apply drain.
  using TraceSink = std::function<void(const kv::CostTrace&)>;
  void SetTraceSink(TraceSink sink);

  // --- Client API (HDFS-compatible set; Table 1's operations) --------------
  hops::Status Mkdirs(const std::string& path, const UserContext& user = {});
  hops::Status Create(const std::string& path, const std::string& client_name,
                      const UserContext& user = {});
  hops::Result<LocatedBlock> AddBlock(const std::string& path,
                                      const std::string& client_name, int64_t num_bytes,
                                      const UserContext& user = {});
  hops::Status CompleteFile(const std::string& path, const std::string& client_name,
                            const UserContext& user = {});
  hops::Status Append(const std::string& path, const std::string& client_name,
                      const UserContext& user = {});
  hops::Result<std::vector<LocatedBlock>> GetBlockLocations(const std::string& path,
                                                            const UserContext& user = {});
  hops::Result<FileStatus> GetFileInfo(const std::string& path,
                                       const UserContext& user = {});
  hops::Result<std::vector<FileStatus>> ListStatus(const std::string& path,
                                                   const UserContext& user = {});
  hops::Status SetPermission(const std::string& path, int64_t perm,
                             const UserContext& user = {});
  hops::Status SetOwner(const std::string& path, const std::string& owner,
                        const std::string& group, const UserContext& user = {});
  hops::Status SetReplication(const std::string& path, int64_t replication,
                              const UserContext& user = {});
  hops::Result<ContentSummary> GetContentSummary(const std::string& path,
                                                 const UserContext& user = {});
  hops::Status Rename(const std::string& src, const std::string& dst,
                      const UserContext& user = {});
  hops::Status Delete(const std::string& path, bool recursive,
                      const UserContext& user = {});
  // ns_quota / ss_quota of -1 = unlimited; both -1 clears the quota.
  hops::Status SetQuota(const std::string& path, int64_t ns_quota, int64_t ss_quota,
                        const UserContext& user = {});

  // --- Datanode protocol -----------------------------------------------------
  // A datanode finished writing a replica of `block_id`.
  hops::Status BlockReceived(DatanodeId dn, BlockId block_id);
  hops::Result<BlockReportResult> ProcessBlockReport(DatanodeId dn,
                                                     const std::vector<BlockId>& report);
  // Leader housekeeping: drop the failed datanode's replicas, queueing
  // under-replicated blocks.
  hops::Result<int64_t> HandleDatanodeFailure(DatanodeId dn);
  // Leader housekeeping: schedule re-replication for under-replicated blocks
  // (URB -> PRB + RUC on a fresh datanode). Returns blocks scheduled.
  hops::Result<int64_t> RunReplicationMonitor();
  // Drains the invalidation queue for a datanode (blocks it must delete).
  hops::Result<std::vector<BlockId>> FetchInvalidations(DatanodeId dn);

 private:
  friend class SubtreeOperation;

  // One resolved + locked path, the output of the Figure-4 lock phase.
  struct Resolved {
    std::vector<std::string> components;
    // chain[0] is the root inode; chain[i] is components[i-1]'s inode.
    // Contains entries only for components that exist.
    std::vector<Inode> chain;
    // Partition value each chain inode's row was found at (mutations must
    // reuse it).
    std::vector<uint64_t> chain_pvs;
    bool target_exists = false;
    // True when the target was read+locked inside the cached-path batch --
    // i.e. the lock was already held when that flush window's other
    // (pipelined) members ran. Speculative riders are only trustworthy then.
    bool target_locked_in_batch = false;
    // Hint-cache epoch snapshotted before the resolution's first database
    // read; callers must pass it to any hint Put derived from this
    // resolution (a newer invalidation barrier then rejects the put).
    uint64_t hint_epoch = 0;
    Inode& target() { return chain.back(); }
    uint64_t target_pv() const { return chain_pvs.back(); }
    Inode& parent_of_target() { return chain[chain.size() - (target_exists ? 2 : 1)]; }
    uint64_t parent_pv() const { return chain_pvs[chain_pvs.size() - (target_exists ? 2 : 1)]; }
    int target_depth() const { return static_cast<int>(components.size()); }
  };

  struct LockSpec {
    kv::LockMode target_mode = kv::LockMode::kShared;
    bool lock_parent = false;               // X-lock the parent (mutations)
    bool target_must_exist = true;
  };

  // Runs `body` inside a transaction with retries for lock timeouts, aborted
  // transactions and subtree-lock waits (exponential backoff). With a
  // handler pool configured, each attempt is enqueued and runs on a handler
  // thread -- the handler owns that transaction, and the caller blocks for
  // the result like an RPC client would while backoff sleeps stay on the
  // caller's thread (a sleeping waiter must not occupy a handler slot);
  // nested calls already on a handler run inline.
  // `inline_read` keeps the transaction on the calling thread even when a
  // handler pool exists: right for lock-free read-committed validation
  // transactions, whose cross-thread dispatch would cost more wall time
  // than their reads (they gain nothing from the completion mux).
  hops::Status RunTx(std::optional<kv::TxHint> hint,
                     const std::function<hops::Status(kv::Txn&)>& body,
                     bool inline_read = false);
  // One attempt: begin, body, commit-or-abort; no retry classification.
  // `background` marks the transaction's cost-trace accesses as intent-apply
  // work (captured at RunTx entry, before the attempt hops onto a handler
  // thread where the applier's thread-local marker is invisible).
  // `latency_sensitive` flushes solo instead of through the completion mux
  // (the inline validation reads: queueing behind throughput work would
  // dominate their cost).
  hops::Status RunTxAttempt(std::optional<kv::TxHint> hint,
                            const std::function<hops::Status(kv::Txn&)>& body,
                            bool want_trace, bool background, bool latency_sensitive);

  // Figure 4 lines 1-6: resolve the path (hint cache + batched read, with
  // recursive fallback), then lock the last component(s) in total order.
  hops::Result<Resolved> ResolveAndLock(kv::Txn& tx,
                                        const std::vector<std::string>& components,
                                        const LockSpec& spec);
  // Recursive (uncached) resolution of components [from..to); read-committed.
  // Repairs the hint cache under `hint_epoch` (see Resolved::hint_epoch).
  hops::Status ResolveSuffix(kv::Txn& tx, const std::vector<std::string>& components,
                             size_t from, std::vector<Inode>& chain, uint64_t hint_epoch);
  // Reads one inode by (parent, name) at `depth`, trying the alternate
  // partition rule if the primary one misses (post-move top-level rows).
  struct ReadInodeOut {
    Inode inode;
    uint64_t pv;  // partition value the row was found at
  };
  hops::Result<ReadInodeOut> ReadInode(kv::Txn& tx, InodeId parent,
                                       const std::string& name, int depth,
                                       kv::LockMode mode);
  // Batched rename lock phase (ROADMAP item 3): reads + X-locks every lock
  // item -- probing both partition rules per item -- through ONE
  // staged-order ReadBatch, so the whole phase costs one round trip while
  // the row-lock waits still happen in the caller's left-ordered path total
  // order (the order every per-row locker shares). `items` must already be
  // sorted in that order. Result slot i is nullopt when item i's row does
  // not exist (its key slots stay locked, guarding the insert slot).
  struct LockItem {
    InodeId parent;
    std::string name;
    int depth;
  };
  hops::Result<std::vector<std::optional<ReadInodeOut>>> ReadLockItemsBatched(
      kv::Txn& tx, const std::vector<LockItem>& items);
  // Checks an inode's subtree lock: kSubtreeLocked while an alive namenode
  // owns it; lazily clears locks owned by dead namenodes (§6.2).
  hops::Status CheckSubtreeLock(kv::Txn& tx, Inode& inode, uint64_t pv);

  // Speculative hint-based fan-out (§5.1 hint reuse): when the hint cache
  // already names a path's target inode, read-committed pruned scans of
  // that inode's shard are put in flight BEFORE resolution, so they share
  // one overlapped window with the resolve+lock batch -- a warm operation
  // costs one round-trip window instead of two. A stale hint wastes only
  // the rider: the scans of the wrong shard lock nothing, and the caller
  // re-reads under the confirmed id.
  struct SpeculativeRider {
    // Heap-held: the engine keeps a pointer to the staged batch until its
    // window flushes, so the batch address must survive the rider moving.
    std::unique_ptr<kv::ReadBatch> batch;
    kv::Pending pending;
    InodeId hinted = kInvalidInode;
    bool flushed_early = false;
    // The rider's rows may be served only when resolution confirmed the
    // hinted inode AND took the target's lock inside the cached-path batch,
    // i.e. in the same flush window the scans ran in (locks precede data
    // work in a window). If resolution fell back -- alternate partition
    // rule, stale or evicted hint chain -- the scans ran before the real
    // lock and a concurrent mutation may sit between them; and an engine
    // auto-flush at prepare time (in-flight window of one) also executed
    // before the lock.
    bool Serveable(InodeId resolved_id, bool target_locked_in_batch) const {
      return pending.valid() && !flushed_early && hinted == resolved_id &&
             target_locked_in_batch;
    }
    // Waits out an unserveable rider; if its failure aborted the
    // transaction the caller's own reads report that on their own.
    void Discard() {
      if (pending.valid()) (void)pending.Wait();
    }
  };
  // --- Asynchronous metadata commits ----------------------------------------
  // True when this operation should acknowledge at intent durability: async
  // commits are configured AND the caller is a client, not the intent
  // applier (whose ops must run the real transactions).
  bool UseAsyncCommit() const {
    return intents_ != nullptr && !IntentLog::OnApplierThread();
  }
  // Read-your-writes barrier: blocks while an acknowledged-but-unapplied
  // intent covers `path` (equals it, is an ancestor, or lies below it).
  void WaitForPendingIntents(const std::string& path) const {
    if (intents_) intents_->WaitCovering(path);
  }
  // The synchronous op bodies (the pre-async behavior, and what the applier
  // executes); public wrappers dispatch here when async commits are off.
  hops::Status MkdirsSync(const std::vector<std::string>& components,
                          const UserContext& user);
  hops::Status CreateSync(const std::vector<std::string>& components,
                          const std::string& client_name, const UserContext& user);
  // The single-file setattr transactions (directories go through the
  // subtree protocol and never commit asynchronously).
  hops::Status SetPermissionFileTx(const std::vector<std::string>& components, int64_t perm,
                                   const UserContext& user);
  hops::Status SetOwnerFileTx(const std::vector<std::string>& components,
                              const std::string& owner, const std::string& group,
                              const UserContext& user);
  // Acknowledge-at-intent-durability paths: validate against pending +
  // committed state, reserve the path in the pending index, group-commit
  // the intent, return. The real transaction runs on the applier.
  hops::Status MkdirsAsync(const std::vector<std::string>& components,
                           const UserContext& user);
  hops::Status CreateAsync(const std::vector<std::string>& components,
                           const std::string& client_name, const UserContext& user);
  hops::Status SubmitSetattrIntent(IntentRecord rec, bool is_dir, const std::string& owner,
                                   int64_t start_micros);
  // Applier callback: routes one intent to its synchronous op body under an
  // ApplierScope. At-least-once replay is idempotent (a re-applied create
  // maps AlreadyExists to applied).
  hops::Status ApplyIntent(const IntentRecord& rec);
  // Replays dead namenodes' durable intents in (publisher, seq) order and
  // deletes the consumed rows (head rows are left so a falsely-declared-dead
  // publisher never reuses sequence numbers). Runs at Start (restart
  // recovery) and on the leader's heartbeat (failover adoption).
  // `include_self` replays this namenode's own partition too -- the
  // resumed-identity start path, before any client can reach us.
  void AdoptOrphanedIntents(bool include_self = false);

  // Stages one pruned scan per entry of `tables` (slot i = tables[i]) keyed
  // by the hint-cache candidate for `components` and puts them in flight.
  // Returns an inactive rider (pending invalid) when the path is depth 1
  // (resolved through a per-row read that flushes the window BEFORE the
  // target lock, so the scans would run unlocked), the chain is not fully
  // cached, or the hinted shard's node group is down (a routing failure
  // fails every member of a flush, so it must not ride a shared window).
  SpeculativeRider StageSpeculativeFanout(kv::Txn& tx,
                                          const std::vector<std::string>& components,
                                          std::initializer_list<kv::TableId> tables);
  // AddBlock's pre-resolution rider: the lease X-lock (slot 0, a Get) and
  // the blocks scan (slot 1) ride the resolution window. Unlike the
  // read-only riders this one takes a lock keyed by the hint, so a stale
  // hint's discard must also UnlockRow the hinted lease.
  SpeculativeRider StageAddBlockFanout(kv::Txn& tx,
                                       const std::vector<std::string>& components);

  uint64_t InodePv(int depth, InodeId parent, std::string_view name) const;
  // Both candidate partition rules for an inode row at `depth`: the current
  // rule plus the insert-time alternate (rows that crossed the
  // random-partition boundary in a move keep their old partition). `dual`
  // is false when both rules route to the same partition, so one probe
  // suffices. Every primary/alternate probe derives from here.
  struct InodePvPair {
    uint64_t primary = 0;
    uint64_t alternate = 0;
    bool dual = false;
  };
  InodePvPair InodePvCandidates(int depth, InodeId parent, std::string_view name) const;
  // Children listing that respects the partition scheme: partition-pruned
  // scan below the random-partition depth, index scan at/above it.
  hops::Result<std::vector<kv::Row>> ScanChildren(kv::Txn& tx, const Inode& dir,
                                                   int dir_depth, const kv::ScanOptions& opts);

  hops::Status CheckAccess(const Inode& inode, const UserContext& user, int want) const;
  hops::Status CheckPathTraversal(const Resolved& r, const UserContext& user) const;

  // Quota bookkeeping along the resolved ancestor chain (X-locks quota rows
  // in root->leaf order; call within the operation's transaction).
  hops::Status UpdateQuotaUsage(kv::Txn& tx, const std::vector<Inode>& ancestors,
                                int64_t ns_delta, int64_t ss_delta, bool enforce);

  // Deletes a file inode's satellite rows (blocks, replicas, life-cycle
  // rows, lease, lookup) and stages datanode-side invalidation.
  hops::Status DeleteFileArtifacts(kv::Txn& tx, const Inode& file);
  // The two halves of that fan-out, exposed so DeleteBatchPipelined can put
  // many files' reads in flight together: StageFileArtifactReads stages the
  // satellite scans into `batch`; StageFileArtifactRemovals turns the
  // results into staged deletes + datanode invalidations.
  struct FileArtifactSlots {
    size_t block_slot = 0;
    size_t replica_slot = 0;
    // (life-cycle table, its scan slot): carrying the TableId keeps the
    // read and removal halves in lockstep by construction.
    std::vector<std::pair<kv::TableId, size_t>> lifecycle_slots;
  };
  FileArtifactSlots StageFileArtifactReads(kv::ReadBatch& batch, InodeId file_id);
  void StageFileArtifactRemovals(const kv::ReadBatch& batch, const FileArtifactSlots& slots,
                                 InodeId file_id, kv::WriteBatch& writes);

  // Subtree operations (§6); defined in subtree.cc.
  enum class SubtreeOp : int64_t { kDelete = 1, kMove = 2, kSetAttr = 3, kSetQuota = 4 };
  struct SubtreeNode {
    InodeId id;
    InodeId parent_id;
    std::string name;
    bool is_dir;
    int64_t size;
    int64_t replication;
    bool has_quota;
    int depth;  // absolute path depth
  };
  struct SubtreeSnapshot {
    Inode root;
    std::vector<std::string> root_components;
    std::vector<Inode> ancestors;  // resolved chain above the subtree root
    // Level order: levels[0] = {root}, levels[i+1] = children of levels[i].
    std::vector<std::vector<SubtreeNode>> levels;
    int64_t inode_count = 0;
    int64_t byte_count = 0;  // sum of file size * replication
  };
  hops::Status SubtreeDelete(const std::vector<std::string>& components,
                             const UserContext& user);
  hops::Status SubtreeRename(const std::vector<std::string>& src,
                             const std::vector<std::string>& dst, const UserContext& user);
  hops::Status SubtreeSetAttr(const std::vector<std::string>& components,
                              std::optional<int64_t> perm,
                              std::optional<std::pair<std::string, std::string>> owner,
                              const UserContext& user);
  hops::Status SubtreeSetQuota(const std::vector<std::string>& components, int64_t ns_quota,
                               int64_t ss_quota, const UserContext& user);
  hops::Result<SubtreeSnapshot> SubtreeLockAndQuiesce(
      const std::vector<std::string>& components, SubtreeOp op, const UserContext& user);
  hops::Status SubtreeAbort(const SubtreeSnapshot& snapshot);
  // Phase-2 helper: quiesces one level of directories with one in-flight
  // scan batch per directory (pipelined through the async batch engine) and
  // returns the next level's nodes.
  hops::Result<std::vector<SubtreeNode>> QuiesceLevel(
      const std::vector<const SubtreeNode*>& dirs);
  // Phase-3 helper for delete: removes one batch of inodes in a transaction.
  // Dispatches on FsConfig::subtree_pipelined between the pipelined
  // batch-engine path and the per-row baseline.
  hops::Status DeleteBatch(const std::vector<SubtreeNode>& batch,
                           const std::vector<Inode>& quota_ancestors);
  hops::Status DeleteBatchPipelined(const std::vector<SubtreeNode>& batch,
                                    const std::vector<Inode>& quota_ancestors);
  hops::Status DeleteBatchPerRow(const std::vector<SubtreeNode>& batch,
                                 const std::vector<Inode>& quota_ancestors);

  // Proactive hint invalidation (§5.1 extension), sharded per namenode.
  // PublishHintInvalidation invalidates `prefixes` in the local cache and
  // hands them to the publish stage, which appends ONE record per publish
  // event to this namenode's own log partition -- the record insert and the
  // bump of this namenode's hint_heads row share a transaction whose X lock
  // on that head row makes per-publisher sequence order equal commit order,
  // without any cross-publisher shared row. With hint_publish_async the
  // append runs on the publisher thread and every op that queued while the
  // previous append was in flight coalesces into the next record, so the
  // mutation path never pays the append round trip. Runs AFTER the mutation
  // commits: a crash in between merely downgrades remote namenodes to lazy
  // repair.
  struct HintPublishEvent {
    SubtreeOp op;
    std::vector<std::string> prefixes;
  };
  void PublishHintInvalidation(const std::vector<std::string>& prefixes, SubtreeOp op);
  // Appends one coalesced log record for `events` (retrying transient
  // failures; best effort -- a dropped append downgrades peers to lazy
  // repair). Runs on the publisher thread, or inline when
  // hint_publish_async is off.
  void AppendHintPublishes(std::vector<HintPublishEvent> events);
  void HintPublisherLoop();
  // Reads every alive peer's head in one ReadBatch, fetches the records in
  // [applied+1, head) of each publisher's partition, applies their prefixes
  // to the local hint cache, advances the per-publisher applied vector and
  // writes per-(drainer, publisher) ack rows the leader GCs by. Called from
  // Heartbeat.
  void DrainHintInvalidations();
  // Starts the per-publisher applied vector at the current heads (the cache
  // is empty before Start, so the backlog cannot concern us) and acks those
  // heads so this namenode does not hold back the leader's ack-based GC.
  // On failure the vector stays empty and the first drain replays the
  // retained backlog (over-invalidation, which is always safe).
  void PrimeHintApplied();

  hops::Status CheckAlive() const {
    return alive_ ? hops::Status::Ok() : hops::Status::Failover("namenode is down");
  }
  NamenodeId id_safe() const;
  // Deletes an inode row trying both partition rules (rows that crossed the
  // random-partition boundary in a move keep their insert-time partition).
  hops::Status DeleteInodeRow(kv::Txn& tx, InodeId parent, const std::string& name,
                              int depth, bool* existed);

  // Single-transaction rename used for files and empty directories; directory
  // renames with children go through SubtreeRename.
  hops::Status RenameInTx(const std::vector<std::string>& src,
                          const std::vector<std::string>& dst, const UserContext& user);

  kv::Engine* const db_;
  const MetadataSchema* const schema_;
  const FsConfig* const config_;
  std::unique_ptr<HandlerPool> handlers_;
  // The async-commit intent log (null when async_metadata_commit is off).
  // Declared after handlers_: its applier issues transactions through the
  // handler pool, so it must stop first.
  std::unique_ptr<IntentLog> intents_;
  std::atomic<uint64_t> intents_adopted_{0};
  LeaderElection election_;
  InodeHintCache hint_cache_;
  IdAllocator inode_ids_;
  IdAllocator block_ids_;
  Inode root_;  // immutable, cached at every namenode (§4.2.1)
  // Per-publisher applied high-water marks (largest seq of each publisher's
  // log partition applied or skipped; primed to the heads by Start, before
  // this namenode serves anything). Touched by Start and Heartbeat only.
  std::mutex hint_applied_mu_;
  std::map<NamenodeId, int64_t> hint_applied_;
  std::atomic<uint64_t> proactive_applied_{0};
  std::atomic<uint64_t> hint_publish_events_{0};
  std::atomic<uint64_t> hint_publish_ops_coalesced_{0};
  // The async publish stage: mutating threads enqueue events, the publisher
  // thread appends them (coalesced) to this namenode's log partition.
  std::mutex hint_pub_mu_;
  std::condition_variable hint_pub_cv_;
  std::vector<HintPublishEvent> hint_pub_queue_;
  bool hint_pub_stop_ = false;
  bool hint_pub_paused_ = false;
  bool hint_pub_inflight_ = false;
  std::thread hint_publisher_;
  std::atomic<bool> alive_{true};
  DieAt die_at_;
  std::function<std::vector<DatanodeId>(int)> dn_picker_;
  std::mutex dn_picker_mu_;
  TraceSink trace_sink_;
  std::mutex trace_mu_;

  // Subtree operations currently executing on THIS namenode, keyed by the
  // locked subtree root. A subtree-lock flag carrying our own id exempts the
  // owning operation's transactions, but ordinary inode operations on this
  // same namenode must respect it like everyone else -- this registry tells
  // the two apart (and flags owned by us but absent here are stale residue
  // of a failed cleanup, cleared lazily like dead-owner flags).
  bool IsMySubtreeOpActive(InodeId root) const {
    std::lock_guard<std::mutex> lock(active_subtree_mu_);
    return my_active_subtrees_.count(root) > 0;
  }
  void RegisterMySubtreeOp(InodeId root) {
    std::lock_guard<std::mutex> lock(active_subtree_mu_);
    my_active_subtrees_.insert(root);
  }
  void UnregisterMySubtreeOp(InodeId root) {
    std::lock_guard<std::mutex> lock(active_subtree_mu_);
    my_active_subtrees_.erase(root);
  }
  mutable std::mutex active_subtree_mu_;
  std::set<InodeId> my_active_subtrees_;
};

}  // namespace hops::fs
