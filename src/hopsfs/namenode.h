// A stateless HopsFS namenode (paper §3, §5, §6).
//
// Namenodes keep no authoritative state: every file system operation is a
// distributed transaction against the NDB-stored metadata, built from the
// three-phase template of Figure 4 (lock / execute / update). Per-namenode
// soft state is limited to the inode hint cache, chunked id allocators, and
// the leader-election membership view. Any number of Namenode instances can
// serve the same metadata concurrently; clients spread operations across
// them and retry on failure.
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "hopsfs/config.h"
#include "hopsfs/handler_pool.h"
#include "hopsfs/inode_cache.h"
#include "hopsfs/leader.h"
#include "hopsfs/path.h"
#include "hopsfs/schema.h"
#include "hopsfs/types.h"
#include "ndb/cluster.h"

namespace hops::fs {

// Chunked allocator over a variables-table counter; namenodes grab id ranges
// in bulk so the counter row never becomes a write hotspot.
class IdAllocator {
 public:
  IdAllocator(ndb::Cluster* db, const MetadataSchema* schema, int64_t var_id,
              int64_t chunk_size)
      : db_(db), schema_(schema), var_id_(var_id), chunk_(chunk_size) {}

  hops::Result<int64_t> Next();

 private:
  ndb::Cluster* const db_;
  const MetadataSchema* const schema_;
  const int64_t var_id_;
  const int64_t chunk_;
  std::mutex mu_;
  int64_t next_ = 0;
  int64_t limit_ = 0;
};

// Caller identity for permission enforcement.
struct UserContext {
  std::string user = "hdfs";
  bool superuser = true;
};

// Result of processing one datanode block report (§7.7).
struct BlockReportResult {
  int64_t blocks_matched = 0;
  int64_t replicas_added = 0;    // on-datanode blocks missing from metadata
  int64_t orphans_invalidated = 0;  // blocks unknown to the namespace
  int64_t replicas_removed = 0;  // metadata said present, report disagreed
};

class Namenode {
 public:
  // Fault-injection hook: invoked at named protocol points; returning true
  // simulates the namenode process dying at that point (the operation stops
  // without any cleanup, exactly like a crash).
  using DieAt = std::function<bool(std::string_view point)>;

  Namenode(ndb::Cluster* db, const MetadataSchema* schema, const FsConfig* config,
           std::string location = "nn");
  ~Namenode();

  // Joins the cluster: allocates the namenode id via leader election.
  hops::Status Start();
  // One leader-election round; drives failure detection and (when proactive
  // hint invalidation is on) drains the hint-invalidation log, applying
  // other namenodes' prefix invalidations to the local hint cache.
  hops::Status Heartbeat();

  NamenodeId id() const { return election_.id(); }
  bool alive() const { return alive_; }
  bool IsLeader() const { return election_.IsLeader(); }
  // Simulates a crash: subsequent calls fail with kFailover, heartbeats stop,
  // and any subtree locks this namenode held are left behind for lazy
  // cleanup by the surviving namenodes.
  void Kill() { alive_ = false; }

  LeaderElection& election() { return election_; }
  InodeHintCache& hint_cache() { return hint_cache_; }
  // Hint-invalidation log records from OTHER namenodes applied locally by
  // the heartbeat drain.
  uint64_t proactive_invalidations_applied() const {
    return proactive_applied_.load(std::memory_order_relaxed);
  }
  const FsConfig& config() const { return *config_; }
  // The request handler pool (null when FsConfig::num_handlers == 0 and
  // operations run inline on the calling thread).
  HandlerPool* handler_pool() { return handlers_.get(); }

  // Datanode pool used to place new block replicas.
  void SetDatanodePicker(std::function<std::vector<DatanodeId>(int)> picker);
  void set_die_at(DieAt hook) { die_at_ = std::move(hook); }

  // When set, every committed transaction's database-access trace is
  // delivered to the sink (used by the benchmark calibration pipeline).
  using TraceSink = std::function<void(const ndb::CostTrace&)>;
  void SetTraceSink(TraceSink sink) {
    std::lock_guard<std::mutex> lock(trace_mu_);
    trace_sink_ = std::move(sink);
  }

  // --- Client API (HDFS-compatible set; Table 1's operations) --------------
  hops::Status Mkdirs(const std::string& path, const UserContext& user = {});
  hops::Status Create(const std::string& path, const std::string& client_name,
                      const UserContext& user = {});
  hops::Result<LocatedBlock> AddBlock(const std::string& path,
                                      const std::string& client_name, int64_t num_bytes,
                                      const UserContext& user = {});
  hops::Status CompleteFile(const std::string& path, const std::string& client_name,
                            const UserContext& user = {});
  hops::Status Append(const std::string& path, const std::string& client_name,
                      const UserContext& user = {});
  hops::Result<std::vector<LocatedBlock>> GetBlockLocations(const std::string& path,
                                                            const UserContext& user = {});
  hops::Result<FileStatus> GetFileInfo(const std::string& path,
                                       const UserContext& user = {});
  hops::Result<std::vector<FileStatus>> ListStatus(const std::string& path,
                                                   const UserContext& user = {});
  hops::Status SetPermission(const std::string& path, int64_t perm,
                             const UserContext& user = {});
  hops::Status SetOwner(const std::string& path, const std::string& owner,
                        const std::string& group, const UserContext& user = {});
  hops::Status SetReplication(const std::string& path, int64_t replication,
                              const UserContext& user = {});
  hops::Result<ContentSummary> GetContentSummary(const std::string& path,
                                                 const UserContext& user = {});
  hops::Status Rename(const std::string& src, const std::string& dst,
                      const UserContext& user = {});
  hops::Status Delete(const std::string& path, bool recursive,
                      const UserContext& user = {});
  // ns_quota / ss_quota of -1 = unlimited; both -1 clears the quota.
  hops::Status SetQuota(const std::string& path, int64_t ns_quota, int64_t ss_quota,
                        const UserContext& user = {});

  // --- Datanode protocol -----------------------------------------------------
  // A datanode finished writing a replica of `block_id`.
  hops::Status BlockReceived(DatanodeId dn, BlockId block_id);
  hops::Result<BlockReportResult> ProcessBlockReport(DatanodeId dn,
                                                     const std::vector<BlockId>& report);
  // Leader housekeeping: drop the failed datanode's replicas, queueing
  // under-replicated blocks.
  hops::Result<int64_t> HandleDatanodeFailure(DatanodeId dn);
  // Leader housekeeping: schedule re-replication for under-replicated blocks
  // (URB -> PRB + RUC on a fresh datanode). Returns blocks scheduled.
  hops::Result<int64_t> RunReplicationMonitor();
  // Drains the invalidation queue for a datanode (blocks it must delete).
  hops::Result<std::vector<BlockId>> FetchInvalidations(DatanodeId dn);

 private:
  friend class SubtreeOperation;

  // One resolved + locked path, the output of the Figure-4 lock phase.
  struct Resolved {
    std::vector<std::string> components;
    // chain[0] is the root inode; chain[i] is components[i-1]'s inode.
    // Contains entries only for components that exist.
    std::vector<Inode> chain;
    // Partition value each chain inode's row was found at (mutations must
    // reuse it).
    std::vector<uint64_t> chain_pvs;
    bool target_exists = false;
    // True when the target was read+locked inside the cached-path batch --
    // i.e. the lock was already held when that flush window's other
    // (pipelined) members ran. Speculative riders are only trustworthy then.
    bool target_locked_in_batch = false;
    // Hint-cache epoch snapshotted before the resolution's first database
    // read; callers must pass it to any hint Put derived from this
    // resolution (a newer invalidation barrier then rejects the put).
    uint64_t hint_epoch = 0;
    Inode& target() { return chain.back(); }
    uint64_t target_pv() const { return chain_pvs.back(); }
    Inode& parent_of_target() { return chain[chain.size() - (target_exists ? 2 : 1)]; }
    uint64_t parent_pv() const { return chain_pvs[chain_pvs.size() - (target_exists ? 2 : 1)]; }
    int target_depth() const { return static_cast<int>(components.size()); }
  };

  struct LockSpec {
    ndb::LockMode target_mode = ndb::LockMode::kShared;
    bool lock_parent = false;               // X-lock the parent (mutations)
    bool target_must_exist = true;
  };

  // Runs `body` inside a transaction with retries for lock timeouts, aborted
  // transactions and subtree-lock waits (exponential backoff). With a
  // handler pool configured, each attempt is enqueued and runs on a handler
  // thread -- the handler owns that transaction, and the caller blocks for
  // the result like an RPC client would while backoff sleeps stay on the
  // caller's thread (a sleeping waiter must not occupy a handler slot);
  // nested calls already on a handler run inline.
  hops::Status RunTx(std::optional<ndb::TxHint> hint,
                     const std::function<hops::Status(ndb::Transaction&)>& body);
  // One attempt: begin, body, commit-or-abort; no retry classification.
  hops::Status RunTxAttempt(std::optional<ndb::TxHint> hint,
                            const std::function<hops::Status(ndb::Transaction&)>& body,
                            bool want_trace);

  // Figure 4 lines 1-6: resolve the path (hint cache + batched read, with
  // recursive fallback), then lock the last component(s) in total order.
  hops::Result<Resolved> ResolveAndLock(ndb::Transaction& tx,
                                        const std::vector<std::string>& components,
                                        const LockSpec& spec);
  // Recursive (uncached) resolution of components [from..to); read-committed.
  // Repairs the hint cache under `hint_epoch` (see Resolved::hint_epoch).
  hops::Status ResolveSuffix(ndb::Transaction& tx, const std::vector<std::string>& components,
                             size_t from, std::vector<Inode>& chain, uint64_t hint_epoch);
  // Reads one inode by (parent, name) at `depth`, trying the alternate
  // partition rule if the primary one misses (post-move top-level rows).
  struct ReadInodeOut {
    Inode inode;
    uint64_t pv;  // partition value the row was found at
  };
  hops::Result<ReadInodeOut> ReadInode(ndb::Transaction& tx, InodeId parent,
                                       const std::string& name, int depth,
                                       ndb::LockMode mode);
  // Batched rename lock phase (ROADMAP item 3): reads + X-locks every lock
  // item -- probing both partition rules per item -- through ONE
  // staged-order ReadBatch, so the whole phase costs one round trip while
  // the row-lock waits still happen in the caller's left-ordered path total
  // order (the order every per-row locker shares). `items` must already be
  // sorted in that order. Result slot i is nullopt when item i's row does
  // not exist (its key slots stay locked, guarding the insert slot).
  struct LockItem {
    InodeId parent;
    std::string name;
    int depth;
  };
  hops::Result<std::vector<std::optional<ReadInodeOut>>> ReadLockItemsBatched(
      ndb::Transaction& tx, const std::vector<LockItem>& items);
  // Checks an inode's subtree lock: kSubtreeLocked while an alive namenode
  // owns it; lazily clears locks owned by dead namenodes (§6.2).
  hops::Status CheckSubtreeLock(ndb::Transaction& tx, Inode& inode, uint64_t pv);

  uint64_t InodePv(int depth, InodeId parent, std::string_view name) const;
  // Both candidate partition rules for an inode row at `depth`: the current
  // rule plus the insert-time alternate (rows that crossed the
  // random-partition boundary in a move keep their old partition). `dual`
  // is false when both rules route to the same partition, so one probe
  // suffices. Every primary/alternate probe derives from here.
  struct InodePvPair {
    uint64_t primary = 0;
    uint64_t alternate = 0;
    bool dual = false;
  };
  InodePvPair InodePvCandidates(int depth, InodeId parent, std::string_view name) const;
  // Children listing that respects the partition scheme: partition-pruned
  // scan below the random-partition depth, index scan at/above it.
  hops::Result<std::vector<ndb::Row>> ScanChildren(ndb::Transaction& tx, const Inode& dir,
                                                   int dir_depth, const ndb::ScanOptions& opts);

  hops::Status CheckAccess(const Inode& inode, const UserContext& user, int want) const;
  hops::Status CheckPathTraversal(const Resolved& r, const UserContext& user) const;

  // Quota bookkeeping along the resolved ancestor chain (X-locks quota rows
  // in root->leaf order; call within the operation's transaction).
  hops::Status UpdateQuotaUsage(ndb::Transaction& tx, const std::vector<Inode>& ancestors,
                                int64_t ns_delta, int64_t ss_delta, bool enforce);

  // Deletes a file inode's satellite rows (blocks, replicas, life-cycle
  // rows, lease, lookup) and stages datanode-side invalidation.
  hops::Status DeleteFileArtifacts(ndb::Transaction& tx, const Inode& file);
  // The two halves of that fan-out, exposed so DeleteBatchPipelined can put
  // many files' reads in flight together: StageFileArtifactReads stages the
  // satellite scans into `batch`; StageFileArtifactRemovals turns the
  // results into staged deletes + datanode invalidations.
  struct FileArtifactSlots {
    size_t block_slot = 0;
    size_t replica_slot = 0;
    // (life-cycle table, its scan slot): carrying the TableId keeps the
    // read and removal halves in lockstep by construction.
    std::vector<std::pair<ndb::TableId, size_t>> lifecycle_slots;
  };
  FileArtifactSlots StageFileArtifactReads(ndb::ReadBatch& batch, InodeId file_id);
  void StageFileArtifactRemovals(const ndb::ReadBatch& batch, const FileArtifactSlots& slots,
                                 InodeId file_id, ndb::WriteBatch& writes);

  // Subtree operations (§6); defined in subtree.cc.
  enum class SubtreeOp : int64_t { kDelete = 1, kMove = 2, kSetAttr = 3, kSetQuota = 4 };
  struct SubtreeNode {
    InodeId id;
    InodeId parent_id;
    std::string name;
    bool is_dir;
    int64_t size;
    int64_t replication;
    bool has_quota;
    int depth;  // absolute path depth
  };
  struct SubtreeSnapshot {
    Inode root;
    std::vector<std::string> root_components;
    std::vector<Inode> ancestors;  // resolved chain above the subtree root
    // Level order: levels[0] = {root}, levels[i+1] = children of levels[i].
    std::vector<std::vector<SubtreeNode>> levels;
    int64_t inode_count = 0;
    int64_t byte_count = 0;  // sum of file size * replication
  };
  hops::Status SubtreeDelete(const std::vector<std::string>& components,
                             const UserContext& user);
  hops::Status SubtreeRename(const std::vector<std::string>& src,
                             const std::vector<std::string>& dst, const UserContext& user);
  hops::Status SubtreeSetAttr(const std::vector<std::string>& components,
                              std::optional<int64_t> perm,
                              std::optional<std::pair<std::string, std::string>> owner,
                              const UserContext& user);
  hops::Status SubtreeSetQuota(const std::vector<std::string>& components, int64_t ns_quota,
                               int64_t ss_quota, const UserContext& user);
  hops::Result<SubtreeSnapshot> SubtreeLockAndQuiesce(
      const std::vector<std::string>& components, SubtreeOp op, const UserContext& user);
  hops::Status SubtreeAbort(const SubtreeSnapshot& snapshot);
  // Phase-2 helper: quiesces one level of directories with one in-flight
  // scan batch per directory (pipelined through the async batch engine) and
  // returns the next level's nodes.
  hops::Result<std::vector<SubtreeNode>> QuiesceLevel(
      const std::vector<const SubtreeNode*>& dirs);
  // Phase-3 helper for delete: removes one batch of inodes in a transaction.
  // Dispatches on FsConfig::subtree_pipelined between the pipelined
  // batch-engine path and the per-row baseline.
  hops::Status DeleteBatch(const std::vector<SubtreeNode>& batch,
                           const std::vector<Inode>& quota_ancestors);
  hops::Status DeleteBatchPipelined(const std::vector<SubtreeNode>& batch,
                                    const std::vector<Inode>& quota_ancestors);
  hops::Status DeleteBatchPerRow(const std::vector<SubtreeNode>& batch,
                                 const std::vector<Inode>& quota_ancestors);

  // Proactive hint invalidation (§5.1 extension). PublishHintInvalidation
  // invalidates `prefixes` in the local cache and appends one log record per
  // prefix -- seq allocation and the inserts share one transaction, so
  // sequence order equals commit order. Runs AFTER the mutation commits: a
  // crash in between merely downgrades remote namenodes to lazy repair.
  void PublishHintInvalidation(const std::vector<std::string>& prefixes, SubtreeOp op);
  // Applies log records this namenode has not seen yet (skipping its own)
  // to the local hint cache; called from Heartbeat.
  void DrainHintInvalidations();
  // Starts the drain's high-water mark at the current counter (the cache
  // is empty before Start, so the backlog cannot concern us); on failure
  // the mark stays 0 and the first drain replays the backlog (safe).
  void PrimeHintInvalidationMark();

  hops::Status CheckAlive() const {
    return alive_ ? hops::Status::Ok() : hops::Status::Failover("namenode is down");
  }
  NamenodeId id_safe() const;
  // Deletes an inode row trying both partition rules (rows that crossed the
  // random-partition boundary in a move keep their insert-time partition).
  hops::Status DeleteInodeRow(ndb::Transaction& tx, InodeId parent, const std::string& name,
                              int depth, bool* existed);

  // Single-transaction rename used for files and empty directories; directory
  // renames with children go through SubtreeRename.
  hops::Status RenameInTx(const std::vector<std::string>& src,
                          const std::vector<std::string>& dst, const UserContext& user);

  ndb::Cluster* const db_;
  const MetadataSchema* const schema_;
  const FsConfig* const config_;
  std::unique_ptr<HandlerPool> handlers_;
  LeaderElection election_;
  InodeHintCache hint_cache_;
  IdAllocator inode_ids_;
  IdAllocator block_ids_;
  Inode root_;  // immutable, cached at every namenode (§4.2.1)
  // Hint-invalidation log high-water mark (largest seq applied or skipped;
  // primed to the counter by Start, before this namenode serves anything)
  // and the count of remote records applied locally.
  std::atomic<int64_t> hint_log_applied_seq_{0};
  std::atomic<uint64_t> proactive_applied_{0};
  std::atomic<bool> alive_{true};
  DieAt die_at_;
  std::function<std::vector<DatanodeId>(int)> dn_picker_;
  std::mutex dn_picker_mu_;
  TraceSink trace_sink_;
  std::mutex trace_mu_;

  // Subtree operations currently executing on THIS namenode, keyed by the
  // locked subtree root. A subtree-lock flag carrying our own id exempts the
  // owning operation's transactions, but ordinary inode operations on this
  // same namenode must respect it like everyone else -- this registry tells
  // the two apart (and flags owned by us but absent here are stale residue
  // of a failed cleanup, cleared lazily like dead-owner flags).
  bool IsMySubtreeOpActive(InodeId root) const {
    std::lock_guard<std::mutex> lock(active_subtree_mu_);
    return my_active_subtrees_.count(root) > 0;
  }
  void RegisterMySubtreeOp(InodeId root) {
    std::lock_guard<std::mutex> lock(active_subtree_mu_);
    my_active_subtrees_.insert(root);
  }
  void UnregisterMySubtreeOp(InodeId root) {
    std::lock_guard<std::mutex> lock(active_subtree_mu_);
    my_active_subtrees_.erase(root);
  }
  mutable std::mutex active_subtree_mu_;
  std::set<InodeId> my_active_subtrees_;
};

}  // namespace hops::fs
