// HopsFS metadata entities (paper §4.1, Figure 3).
//
// Files and directories are rows of the inode table; file inodes own blocks,
// block replicas, and per-life-cycle-state replica rows (URB, PRB, CR, RUC,
// ER, Inv), all partitioned by the file's inode id so file operations touch
// one shard. Inodes themselves are partitioned by parent inode id (with the
// top-of-tree exception handled in partition.h).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hops::fs {

using InodeId = int64_t;
using BlockId = int64_t;
using NamenodeId = int64_t;
using DatanodeId = int64_t;

inline constexpr InodeId kInvalidInode = 0;
inline constexpr InodeId kRootInode = 1;
inline constexpr int64_t kNoSubtreeLock = 0;

struct Inode {
  InodeId parent_id = kInvalidInode;
  std::string name;
  InodeId id = kInvalidInode;
  bool is_dir = false;
  int64_t perm = 0755;
  std::string owner;
  std::string group;
  int64_t mtime = 0;
  int64_t atime = 0;
  int64_t size = 0;           // files: total bytes over all blocks
  int64_t replication = 3;    // files: target replica count
  NamenodeId subtree_lock_owner = kNoSubtreeLock;
  bool under_construction = false;
  bool has_quota = false;     // directories: quota row exists for this inode
};

enum class BlockState : int64_t { kUnderConstruction = 0, kComplete = 1 };

struct Block {
  InodeId inode_id = kInvalidInode;
  BlockId block_id = 0;
  int64_t block_index = 0;
  BlockState state = BlockState::kUnderConstruction;
  int64_t gen_stamp = 0;
  int64_t num_bytes = 0;
  // Target replica count, denormalized from the file inode so block-state
  // operations (which lock the block row, not the inode row) can evaluate
  // under/over-replication locally.
  int64_t replication = 3;
};

enum class ReplicaState : int64_t { kFinalized = 0, kCorrupt = 1 };

struct Replica {
  InodeId inode_id = kInvalidInode;
  BlockId block_id = 0;
  DatanodeId datanode_id = 0;
  ReplicaState state = ReplicaState::kFinalized;
};

struct Lease {
  InodeId inode_id = kInvalidInode;
  std::string holder;
  int64_t last_renewed = 0;
};

struct DirectoryQuota {
  InodeId inode_id = kInvalidInode;
  int64_t ns_quota = -1;   // max namespace items in subtree; -1 = unlimited
  int64_t ss_quota = -1;   // max storage bytes (x replication); -1 = unlimited
  int64_t ns_used = 0;
  int64_t ss_used = 0;
};

// --- Results returned to clients -------------------------------------------

struct FileStatus {
  std::string path;
  std::string name;
  InodeId inode_id = kInvalidInode;
  bool is_dir = false;
  int64_t perm = 0;
  std::string owner;
  std::string group;
  int64_t mtime = 0;
  int64_t size = 0;
  int64_t replication = 0;
  int64_t num_blocks = 0;
};

struct LocatedBlock {
  BlockId block_id = 0;
  int64_t block_index = 0;
  int64_t num_bytes = 0;
  std::vector<DatanodeId> locations;
};

struct ContentSummary {
  int64_t file_count = 0;
  int64_t dir_count = 0;
  int64_t total_bytes = 0;
};

}  // namespace hops::fs
