// HopsFS client (paper §3): picks a namenode per the configured policy
// (random / round-robin / sticky), transparently resubmits operations to
// another namenode when the chosen one has failed, and periodically
// refreshes the namenode list through the provider callback.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "hopsfs/namenode.h"
#include "util/rng.h"

namespace hops::fs {

enum class NamenodePolicy { kRandom, kRoundRobin, kSticky };

class Client {
 public:
  using NamenodeProvider = std::function<std::vector<Namenode*>()>;

  Client(NamenodeProvider provider, NamenodePolicy policy, std::string client_name,
         uint64_t seed = 42)
      : provider_(std::move(provider)),
        policy_(policy),
        client_name_(std::move(client_name)),
        rng_(seed) {}

  const std::string& name() const { return client_name_; }

  // --- File system operations (mirror the namenode API) --------------------
  hops::Status Mkdirs(const std::string& path);
  hops::Status CreateFile(const std::string& path);
  hops::Result<LocatedBlock> AddBlock(const std::string& path, int64_t num_bytes);
  hops::Status CompleteFile(const std::string& path);
  hops::Status Append(const std::string& path);
  hops::Result<std::vector<LocatedBlock>> Read(const std::string& path);
  hops::Result<FileStatus> Stat(const std::string& path);
  hops::Result<std::vector<FileStatus>> List(const std::string& path);
  hops::Status SetPermission(const std::string& path, int64_t perm);
  hops::Status SetOwner(const std::string& path, const std::string& owner,
                        const std::string& group);
  hops::Status SetReplication(const std::string& path, int64_t replication);
  hops::Result<ContentSummary> ContentSummaryOf(const std::string& path);
  hops::Status Rename(const std::string& src, const std::string& dst);
  hops::Status Delete(const std::string& path, bool recursive = false);
  hops::Status SetQuota(const std::string& path, int64_t ns_quota, int64_t ss_quota);

  // Creates a file end-to-end: create + n blocks + complete.
  hops::Status WriteFile(const std::string& path, int num_blocks, int64_t bytes_per_block);

  uint64_t failovers() const { return failovers_; }

 private:
  // Runs `op` against a namenode chosen by the policy; on kFailover (the
  // namenode died) refreshes the list and retries on another one.
  template <typename Fn>
  auto WithNamenode(Fn&& op) -> decltype(op(std::declval<Namenode&>()));

  Namenode* Pick(const std::vector<Namenode*>& nns);

  NamenodeProvider provider_;
  NamenodePolicy policy_;
  std::string client_name_;
  Rng rng_;
  size_t rr_next_ = 0;
  Namenode* sticky_ = nullptr;
  uint64_t failovers_ = 0;
};

}  // namespace hops::fs
