#include "hopsfs/leader.h"

#include "util/clock.h"

namespace hops::fs {

LeaderElection::LeaderElection(ndb::Cluster* db, const MetadataSchema* schema,
                               const FsConfig* config, std::string location)
    : db_(db), schema_(schema), config_(config), location_(std::move(location)) {}

hops::Status LeaderElection::Register() {
  // Allocate a unique id from the variables table; retry on conflicts with
  // other registering namenodes.
  for (int attempt = 0; attempt < 16; ++attempt) {
    auto tx = db_->Begin(ndb::TxHint{schema_->variables, 0});
    auto row = tx->Read(schema_->variables, {kVarNextNamenodeId}, ndb::LockMode::kExclusive);
    if (!row.ok()) {
      if (row.status().IsRetryableTx()) continue;
      return row.status();
    }
    int64_t next = (*row)[col::kVarValue].i64();
    hops::Status st =
        tx->Update(schema_->variables, ndb::Row{kVarNextNamenodeId, next + 1});
    if (!st.ok()) continue;
    st = tx->Insert(schema_->leader, ndb::Row{next, int64_t{0}, location_});
    if (!st.ok()) continue;
    st = tx->Commit();
    if (st.ok()) {
      id_ = next;
      return hops::Status::Ok();
    }
    if (!st.IsRetryableTx()) return st;
  }
  return hops::Status::TxAborted("could not register namenode");
}

hops::Status LeaderElection::Heartbeat() {
  // Bump our counter and snapshot the whole (small) leader table.
  std::vector<ndb::Row> rows;
  for (int attempt = 0; attempt < 8; ++attempt) {
    auto tx = db_->Begin(ndb::TxHint{schema_->leader, static_cast<uint64_t>(id_)});
    auto mine = tx->Read(schema_->leader, {id_}, ndb::LockMode::kExclusive);
    if (!mine.ok()) {
      if (mine.status().IsRetryableTx()) continue;
      return mine.status();
    }
    ndb::Row updated = *mine;
    updated[col::kLeaderCounter] = updated[col::kLeaderCounter].i64() + 1;
    hops::Status st = tx->Update(schema_->leader, std::move(updated));
    if (!st.ok()) continue;
    auto all = tx->FullTableScan(schema_->leader);
    if (!all.ok()) {
      if (all.status().IsRetryableTx()) continue;
      return all.status();
    }
    st = tx->Commit();
    if (st.ok()) {
      rows = *std::move(all);
      break;
    }
    if (!st.IsRetryableTx()) return st;
    if (attempt == 7) return st;
  }

  std::vector<NamenodeId> dead;
  {
    std::lock_guard<std::mutex> lock(mu_);
    round_++;
    for (const auto& row : rows) {
      NamenodeId nn = row[col::kLeaderNn].i64();
      int64_t counter = row[col::kLeaderCounter].i64();
      auto [it, inserted] = peers_.try_emplace(nn);
      if (inserted || counter > it->second.counter) {
        it->second.counter = counter;
        it->second.last_advance_round = round_;
      }
    }
    // Drop local state for rows that no longer exist.
    for (auto it = peers_.begin(); it != peers_.end();) {
      bool present = false;
      for (const auto& row : rows) {
        if (row[col::kLeaderNn].i64() == it->first) {
          present = true;
          break;
        }
      }
      it = present ? std::next(it) : peers_.erase(it);
    }
    for (const auto& [nn, state] : peers_) {
      if (nn != id_ && round_ - state.last_advance_round > 4 * config_->leader_missed_rounds) {
        dead.push_back(nn);
      }
    }
  }

  // The leader lazily evicts rows of long-dead namenodes...
  if (IsLeader()) {
    for (NamenodeId nn : dead) {
      auto tx = db_->Begin(ndb::TxHint{schema_->leader, static_cast<uint64_t>(nn)});
      if (tx->Delete(schema_->leader, {nn}).ok()) {
        (void)tx->Commit();
      }
    }
    // ...and reaps expired hint-invalidation log records. Every namenode has
    // had hint_invalidation_ttl worth of heartbeats to drain them; one that
    // heartbeats slower than that falls back to lazy repair-on-miss, which
    // stays correct (hints are advisory). The seq counter doubles as an
    // emptiness check so an idle cluster pays one PK read, not a scan.
    if (config_->hint_proactive_invalidation) {
      auto tx = db_->Begin(ndb::TxHint{schema_->hint_invalidations, 0});
      auto counter = tx->Read(schema_->variables, {kVarNextHintInvalidationSeq},
                              ndb::LockMode::kReadCommitted);
      const int64_t next = counter.ok() ? (*counter)[col::kVarValue].i64() : -1;
      if (counter.ok() && next == gc_clean_through_) {
        (void)tx->Commit();
      } else {
        auto rows = tx->FullTableScan(schema_->hint_invalidations);
        if (rows.ok()) {
          const int64_t cutoff =
              MonotonicMicros() -
              std::chrono::duration_cast<std::chrono::microseconds>(
                  config_->hint_invalidation_ttl)
                  .count();
          bool residue = false;
          for (const auto& row : *rows) {
            if (row[col::kHintMtime].i64() >= cutoff) {
              residue = true;  // not expired yet; scan again next round
              continue;
            }
            if (!tx->Delete(schema_->hint_invalidations, {row[col::kHintSeq].i64()})
                     .ok()) {
              residue = true;
              break;
            }
          }
          if (tx->Commit().ok() && !residue && counter.ok()) {
            gc_clean_through_ = next;
          }
        }
      }
    }
  }
  return hops::Status::Ok();
}

void LeaderElection::Deregister() {
  auto tx = db_->Begin(ndb::TxHint{schema_->leader, static_cast<uint64_t>(id_)});
  if (tx->Delete(schema_->leader, {id_}).ok()) {
    (void)tx->Commit();
  }
  std::lock_guard<std::mutex> lock(mu_);
  peers_.erase(id_);
}

bool LeaderElection::IsLeader() const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [nn, state] : peers_) {
    if (nn == id_) break;
    if (round_ - state.last_advance_round <= config_->leader_missed_rounds) {
      return false;  // a smaller-id namenode is alive
    }
  }
  return true;
}

std::vector<NamenodeId> LeaderElection::AliveNamenodes() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<NamenodeId> alive;
  for (const auto& [nn, state] : peers_) {
    if (nn == id_ || round_ - state.last_advance_round <= config_->leader_missed_rounds) {
      alive.push_back(nn);
    }
  }
  return alive;
}

bool LeaderElection::IsNamenodeAlive(NamenodeId nn) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = peers_.find(nn);
  if (it == peers_.end()) return false;
  if (nn == id_) return true;
  return round_ - it->second.last_advance_round <= config_->leader_missed_rounds;
}

}  // namespace hops::fs
