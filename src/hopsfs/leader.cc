#include "hopsfs/leader.h"

#include <algorithm>

#include "util/clock.h"

namespace hops::fs {

LeaderElection::LeaderElection(kv::Engine* db, const MetadataSchema* schema,
                               const FsConfig* config, std::string location)
    : db_(db), schema_(schema), config_(config), location_(std::move(location)) {}

hops::Status LeaderElection::Register() {
  // Allocate a unique id from the variables table; retry on conflicts with
  // other registering namenodes.
  for (int attempt = 0; attempt < 16; ++attempt) {
    auto tx = db_->Begin(kv::TxHint{schema_->variables, 0});
    auto row = tx->Read(schema_->variables, {kVarNextNamenodeId}, kv::LockMode::kExclusive);
    if (!row.ok()) {
      if (row.status().IsRetryableTx()) continue;
      return row.status();
    }
    int64_t next = (*row)[col::kVarValue].i64();
    hops::Status st =
        tx->Update(schema_->variables, kv::Row{kVarNextNamenodeId, next + 1});
    if (!st.ok()) continue;
    st = tx->Insert(schema_->leader, kv::Row{next, int64_t{0}, location_});
    if (!st.ok()) continue;
    st = tx->Commit();
    if (st.ok()) {
      id_ = next;
      return hops::Status::Ok();
    }
    if (!st.IsRetryableTx()) return st;
  }
  return hops::Status::TxAborted("could not register namenode");
}

hops::Status LeaderElection::Resume(NamenodeId id) {
  for (int attempt = 0; attempt < 16; ++attempt) {
    auto tx = db_->Begin(kv::TxHint{schema_->leader, static_cast<uint64_t>(id)});
    int64_t counter = 0;
    auto row = tx->Read(schema_->leader, {id}, kv::LockMode::kExclusive);
    if (row.ok()) {
      counter = (*row)[col::kLeaderCounter].i64();
    } else if (row.status().code() != hops::StatusCode::kNotFound) {
      // A long-dead row may have been evicted by the leader; re-create it
      // (counter continuity only matters while the old row survives).
      if (row.status().IsRetryableTx()) continue;
      return row.status();
    }
    hops::Status st = tx->Write(schema_->leader, kv::Row{id, counter + 1, location_});
    if (!st.ok()) continue;
    st = tx->Commit();
    if (st.ok()) {
      id_ = id;
      return hops::Status::Ok();
    }
    if (!st.IsRetryableTx()) return st;
  }
  return hops::Status::TxAborted("could not resume namenode identity");
}

hops::Status LeaderElection::Heartbeat() {
  // Bump our counter and snapshot the whole (small) leader table.
  std::vector<kv::Row> rows;
  for (int attempt = 0; attempt < 8; ++attempt) {
    auto tx = db_->Begin(kv::TxHint{schema_->leader, static_cast<uint64_t>(id_)});
    auto mine = tx->Read(schema_->leader, {id_}, kv::LockMode::kExclusive);
    if (!mine.ok()) {
      if (mine.status().IsRetryableTx()) continue;
      return mine.status();
    }
    kv::Row updated = *mine;
    updated[col::kLeaderCounter] = updated[col::kLeaderCounter].i64() + 1;
    hops::Status st = tx->Update(schema_->leader, std::move(updated));
    if (!st.ok()) continue;
    auto all = tx->FullTableScan(schema_->leader);
    if (!all.ok()) {
      if (all.status().IsRetryableTx()) continue;
      return all.status();
    }
    st = tx->Commit();
    if (st.ok()) {
      rows = *std::move(all);
      break;
    }
    if (!st.IsRetryableTx()) return st;
    if (attempt == 7) return st;
  }

  std::vector<NamenodeId> dead;
  {
    std::lock_guard<std::mutex> lock(mu_);
    round_++;
    for (const auto& row : rows) {
      NamenodeId nn = row[col::kLeaderNn].i64();
      int64_t counter = row[col::kLeaderCounter].i64();
      auto [it, inserted] = peers_.try_emplace(nn);
      if (inserted || counter > it->second.counter) {
        it->second.counter = counter;
        it->second.last_advance_round = round_;
      }
    }
    // Drop local state for rows that no longer exist.
    for (auto it = peers_.begin(); it != peers_.end();) {
      bool present = false;
      for (const auto& row : rows) {
        if (row[col::kLeaderNn].i64() == it->first) {
          present = true;
          break;
        }
      }
      it = present ? std::next(it) : peers_.erase(it);
    }
    for (const auto& [nn, state] : peers_) {
      if (nn != id_ && round_ - state.last_advance_round > 4 * config_->leader_missed_rounds) {
        dead.push_back(nn);
      }
    }
  }

  // The leader lazily evicts rows of long-dead namenodes...
  if (IsLeader()) {
    for (NamenodeId nn : dead) {
      auto tx = db_->Begin(kv::TxHint{schema_->leader, static_cast<uint64_t>(nn)});
      if (tx->Delete(schema_->leader, {nn}).ok()) {
        (void)tx->Commit();
      }
    }
    // ...and GCs the sharded hint-invalidation log.
    if (config_->hint_proactive_invalidation) GcHintLog(dead);
  }
  return hops::Status::Ok();
}

void LeaderElection::GcHintLog(const std::vector<NamenodeId>& long_dead) {
  // Precise reaping: a record may go once every alive namenode other than
  // its publisher acked past its seq (the publisher applied it locally at
  // publish time). The TTL is only the fallback for records no ack will
  // ever cover -- dead or stalled drainers, or drainers that never wrote an
  // ack row.
  auto tx = db_->Begin(kv::TxHint{schema_->hint_heads, 0});
  auto heads = tx->FullTableScan(schema_->hint_heads);
  if (!heads.ok()) {
    if (tx->active()) tx->Abort();
    return;
  }
  // Rows to bury wholesale: the namenodes evicted this round, plus any
  // head-row owner without a leader row that a FAILED earlier cleanup left
  // behind -- re-deriving the list every pass makes the cleanup retryable
  // instead of one-shot. The grace window protects a freshly registered
  // publisher whose leader row this leader simply has not scanned yet.
  std::vector<NamenodeId> cleanup = long_dead;
  int64_t round;
  {
    std::lock_guard<std::mutex> lock(mu_);
    round = round_;
  }
  for (const auto& head_row : *heads) {
    const NamenodeId nn = head_row[col::kHintHeadNn].i64();
    if (std::find(cleanup.begin(), cleanup.end(), nn) != cleanup.end()) continue;
    if (HasPeerRow(nn)) {
      gc_orphan_since_.erase(nn);
      continue;
    }
    auto [it, inserted] = gc_orphan_since_.try_emplace(nn, round);
    if (round - it->second > config_->leader_missed_rounds) cleanup.push_back(nn);
  }
  // Idle short-circuit: with every bookmark clean and nothing to bury, the
  // whole pass costs the one heads scan (N tiny rows) -- in particular the
  // O(N^2)-row acks table is not touched.
  bool work = !cleanup.empty();
  for (const auto& head_row : *heads) {
    auto clean = gc_clean_through_.find(head_row[col::kHintHeadNn].i64());
    if (clean == gc_clean_through_.end() ||
        clean->second != head_row[col::kHintHeadNext].i64()) {
      work = true;
      break;
    }
  }
  if (!work) {
    (void)tx->Commit();
    return;
  }
  auto acks = tx->FullTableScan(schema_->hint_acks);
  if (!acks.ok()) {
    if (tx->active()) tx->Abort();
    return;
  }
  const std::vector<NamenodeId> alive = AliveNamenodes();
  std::map<std::pair<NamenodeId, NamenodeId>, int64_t> acked;  // (drainer, publisher)
  for (const auto& row : *acks) {
    acked[{row[col::kAckDrainer].i64(), row[col::kAckPublisher].i64()}] =
        row[col::kAckSeq].i64();
  }
  const int64_t cutoff = MonotonicMicros() -
                         std::chrono::duration_cast<std::chrono::microseconds>(
                             config_->hint_invalidation_ttl)
                             .count();
  // Bookkeeping is published only after the transaction commits: the staged
  // deletes roll back on abort, and a clean bookmark advanced past them
  // would skip the partition forever (an idle publisher's head never moves).
  std::vector<std::pair<NamenodeId, int64_t>> clean_updates;
  uint64_t acked_reaps = 0, ttl_reaps = 0;
  bool failed = false;
  for (const auto& head_row : *heads) {
    const NamenodeId publisher = head_row[col::kHintHeadNn].i64();
    const int64_t head = head_row[col::kHintHeadNext].i64();
    // Cleanup-listed publishers are wholesale-buried below; reaping (and
    // worse, re-bookmarking) them here would resurrect just-erased
    // bookmarks for head rows that are about to disappear, leaking map
    // entries forever.
    if (std::find(cleanup.begin(), cleanup.end(), publisher) != cleanup.end()) {
      continue;
    }
    auto clean = gc_clean_through_.find(publisher);
    if (clean != gc_clean_through_.end() && clean->second == head) continue;
    int64_t min_acked = head - 1;
    for (NamenodeId drainer : alive) {
      if (drainer == publisher) continue;
      auto it = acked.find({drainer, publisher});
      int64_t a = it == acked.end() ? int64_t{0} : it->second;
      // An ack above head-1 is stale evidence from a prior incarnation of
      // this head row (the publisher's log restarted at 1 after a GC'd
      // stall); it vouches for nothing in the current log.
      if (a > head - 1) a = 0;
      min_acked = std::min(min_acked, a);
    }
    auto rows = tx->Ppis(schema_->hint_invalidations, {publisher});
    if (!rows.ok()) {
      failed = true;
      break;
    }
    bool residue = false;
    for (const auto& row : *rows) {
      const int64_t seq = row[col::kHintSeq].i64();
      const bool acked_by_all = seq <= min_acked;
      const bool expired = row[col::kHintMtime].i64() < cutoff;
      if (!acked_by_all && !expired) {
        residue = true;
        continue;
      }
      if (!tx->Delete(schema_->hint_invalidations, {publisher, seq}).ok()) {
        residue = true;
        failed = true;
        break;
      }
      (acked_by_all ? acked_reaps : ttl_reaps)++;
    }
    if (failed) break;
    if (!residue) clean_updates.emplace_back(publisher, head);
  }
  // Long-dead namenodes leave inert rows behind (ids are never reused):
  // their head row, any unreaped records, and the acks they wrote. Peers
  // have had 4x the liveness window to drain the records; whoever still
  // holds a stale hint past that degrades to lazy repair, like any drainer
  // slower than the TTL always did.
  for (NamenodeId nn : cleanup) {
    if (failed) break;
    auto rows = tx->Ppis(schema_->hint_invalidations, {nn});
    if (rows.ok()) {
      for (const auto& row : *rows) {
        (void)tx->Delete(schema_->hint_invalidations, {nn, row[col::kHintSeq].i64()});
      }
    }
    auto written = tx->Ppis(schema_->hint_acks, {nn});
    if (written.ok()) {
      for (const auto& row : *written) {
        (void)tx->Delete(schema_->hint_acks, {nn, row[col::kAckPublisher].i64()});
      }
    }
    hops::Status st = tx->Delete(schema_->hint_heads, {nn});
    if (!st.ok() && st.code() != hops::StatusCode::kNotFound) failed = true;
    // Erasing the bookmark is safe whatever the tx outcome (it only causes
    // a future rescan), unlike advancing one.
    gc_clean_through_.erase(nn);
    // Acks *for* the dead publisher, written by others, are orphans now.
    for (const auto& [key, seq] : acked) {
      if (key.second == nn) (void)tx->Delete(schema_->hint_acks, {key.first, nn});
    }
  }
  if (failed || !tx->active()) {
    if (tx->active()) tx->Abort();
    return;
  }
  if (!tx->Commit().ok()) return;
  for (const auto& [publisher, head] : clean_updates) gc_clean_through_[publisher] = head;
  for (NamenodeId nn : cleanup) gc_orphan_since_.erase(nn);
  if (acked_reaps > 0) gc_acked_reaps_.fetch_add(acked_reaps, std::memory_order_relaxed);
  if (ttl_reaps > 0) gc_ttl_reaps_.fetch_add(ttl_reaps, std::memory_order_relaxed);
}

void LeaderElection::Deregister() {
  auto tx = db_->Begin(kv::TxHint{schema_->leader, static_cast<uint64_t>(id_)});
  if (tx->Delete(schema_->leader, {id_}).ok()) {
    (void)tx->Commit();
  }
  std::lock_guard<std::mutex> lock(mu_);
  peers_.erase(id_);
}

bool LeaderElection::IsLeader() const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [nn, state] : peers_) {
    if (nn == id_) break;
    if (round_ - state.last_advance_round <= config_->leader_missed_rounds) {
      return false;  // a smaller-id namenode is alive
    }
  }
  return true;
}

std::vector<NamenodeId> LeaderElection::AliveNamenodes() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<NamenodeId> alive;
  for (const auto& [nn, state] : peers_) {
    if (nn == id_ || round_ - state.last_advance_round <= config_->leader_missed_rounds) {
      alive.push_back(nn);
    }
  }
  return alive;
}

bool LeaderElection::HasPeerRow(NamenodeId nn) const {
  std::lock_guard<std::mutex> lock(mu_);
  return peers_.count(nn) > 0;
}

bool LeaderElection::IsNamenodeAlive(NamenodeId nn) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = peers_.find(nn);
  if (it == peers_.end()) return false;
  if (nn == id_) return true;
  return round_ - it->second.last_advance_round <= config_->leader_missed_rounds;
}

}  // namespace hops::fs
