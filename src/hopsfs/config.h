// Tunables for the HopsFS metadata service.
#pragma once

#include <chrono>
#include <cstdint>

#include "kv/kv.h"

namespace hops::fs {

struct FsConfig {
  // Which transactional KV backend the metadata service runs on: the
  // NDB-style pessimistic 2PL engine (the paper's) or the optimistic MVCC
  // engine. MiniCluster::Start resolves the HOPS_KV_ENGINE environment
  // override (which wins over this field) and writes the result back here,
  // so after Start the field names the engine actually constructed.
  kv::EngineKind kv_engine = kv::EngineKind::kNdb;

  // Depth at or below which inodes are pseudo-randomly partitioned by child
  // name instead of by parent inode id (paper §4.2.1). Depth counts edges
  // from the root: root = 0, "/a" = 1, "/a/b" = 2. The default 1 matches the
  // paper's "first two levels ... the root directory and its immediate
  // descendants".
  int random_partition_depth = 1;

  // Retries for transactional inode operations aborted by lock timeouts or
  // coordinator failover.
  int max_tx_retries = 12;
  // Retries (with exponential backoff) when an operation keeps hitting an
  // active subtree lock.
  int max_subtree_wait_retries = 20;
  std::chrono::milliseconds subtree_retry_backoff{2};

  // Inodes ids are allocated in chunks per namenode so the variables table
  // row is not a hotspot.
  int64_t id_chunk_size = 1024;

  // Subtree delete: inodes removed per transaction batch (paper §6.1 ph. 3).
  int subtree_delete_batch = 64;
  // Threads deleting subtree phase-3 batches in parallel.
  int subtree_parallelism = 4;
  // Route subtree phase-3 delete row work through the async pipelined batch
  // engine (in-flight inode probes + per-file fan-outs, one write batch per
  // delete transaction). Off = the per-row phase-3 path, kept for the
  // sync-vs-pipelined benchmark comparison. Phase-2 quiesce scans are
  // always pipelined (there is no per-directory fallback), so an A/B run
  // isolates exactly the phase-3 delta.
  bool subtree_pipelined = true;

  // Handler threads per namenode (paper §7.1's many-handlers model). Client
  // requests are enqueued and each handler runs one operation's transaction
  // at a time; all handlers of all namenodes share the database's
  // cross-transaction completion mux, so their flush windows merge into
  // overlapped round trips. 0 = no pool: operations run inline on the
  // calling thread (the pre-handler-pool behavior).
  int num_handlers = 0;

  // Heartbeats a namenode may miss before peers consider it dead.
  int leader_missed_rounds = 2;

  // Default replication for new files.
  int64_t default_replication = 3;
  int64_t block_size = 128LL * 1024 * 1024;

  // Inode hint cache capacity (entries) per namenode; 0 disables the cache
  // (used by the ablation benchmark).
  size_t hint_cache_capacity = 1 << 20;

  // Proactive cross-namenode hint invalidation (§5.1 extension): mutating
  // namenodes append publish-event records to the DB-backed, per-namenode
  // sharded hint_invalidations log and every namenode drains all alive
  // peers' partitions on its heartbeat tick, invalidating the affected
  // prefixes locally. Off = the paper's lazy repair-on-miss only (kept for
  // the ablation benchmark; correctness never depends on the log, only
  // round trips do).
  bool hint_proactive_invalidation = true;
  // Async publish stage: each namenode appends its invalidation records
  // from a background publisher thread, coalescing every op that queued
  // while the previous append was in flight into ONE log record -- the
  // mutation path pays an in-memory enqueue instead of a database round
  // trip. false = the append runs synchronously on the mutating thread
  // (the pre-sharding behavior, kept for the latency ablation).
  bool hint_publish_async = true;
  // Ablation: X-lock the legacy global kVarNextHintInvalidationSeq
  // variables row in every publish transaction, reproducing the
  // pre-sharding design where all publishers serialized on one row. No
  // live path reads that row; this exists so the contended multi-namenode
  // write bench can quantify what sharding the log removed.
  bool hint_global_seq_lock = false;
  // GC fallback: log records older than this are reaped on the leader's
  // heartbeat even when unacked (a drainer that died or stalls forever
  // must not pin the log). Records acked by every alive namenode are
  // reaped precisely, well before the TTL. Namenodes that miss reaped
  // records simply fall back to lazy repair.
  std::chrono::milliseconds hint_invalidation_ttl{10000};

  // Asynchronous metadata commits (AsyncFS/SwitchFS direction): create,
  // mkdirs and file setattr acknowledge once the op is validated, ordered
  // and DURABLE in the per-namenode op_intents log; the real metadata
  // transaction runs later on the namenode's applier thread through the
  // normal RunTx/mux machinery. Reads and conflicting mutations on a path
  // with unapplied intents block until the covering intent applies
  // (read-your-writes per namenode; clients are sticky). Off = every op
  // commits its full transaction before replying (the paper's behavior and
  // the ablation baseline).
  bool async_metadata_commit = false;
  // Max adjacent intents the applier drains as one concurrent window
  // (intents whose paths are prefix-disjoint apply in parallel and their
  // transactions merge in the completion mux; same-path intents always
  // apply in acknowledgment order).
  int intent_apply_batch = 8;
  // Upper bound a blocked reader waits for a covering intent to apply
  // before proceeding against the committed state (a wedged applier must
  // not hang every read forever; proceeding early is at worst a stale
  // read, never a wrong namespace).
  std::chrono::milliseconds intent_wait_timeout{30000};
};

}  // namespace hops::fs
