#include "hopsfs/mini_cluster.h"

#include <cstdlib>

namespace hops::fs {

namespace {

// Fail-fast validation of the combined engine + filesystem knob set. Every
// rejected combination here either crashed an assert deep in the engine or
// silently misbehaved (a mux gather delay with no mux, a zero-wide pipeline
// window); surfacing them at construction names the knob instead.
hops::Status ValidateOptions(const MiniClusterOptions& o) {
  if (o.db.num_datanodes == 0) {
    return hops::Status::InvalidArgument("db.num_datanodes must be > 0");
  }
  if (o.db.replication == 0) {
    return hops::Status::InvalidArgument("db.replication must be > 0");
  }
  if (o.db.num_datanodes % o.db.replication != 0) {
    return hops::Status::InvalidArgument(
        "db.num_datanodes must be a multiple of db.replication (node groups are "
        "replication-sized)");
  }
  if (o.db.max_in_flight_batches == 0) {
    return hops::Status::InvalidArgument(
        "db.max_in_flight_batches must be > 0 (a zero-wide pipeline window can never flush)");
  }
  if (o.db.mux_adaptive_gather && !o.db.mux_adaptive_gather_auto && !o.db.use_completion_mux) {
    return hops::Status::InvalidArgument(
        "db.mux_adaptive_gather requires db.use_completion_mux (the gather delay is a "
        "completion-mux policy)");
  }
  if (o.num_namenodes <= 0) {
    return hops::Status::InvalidArgument("num_namenodes must be > 0");
  }
  if (o.num_datanodes < 0) {
    return hops::Status::InvalidArgument("num_datanodes must be >= 0");
  }
  if (o.fs.num_handlers < 0) {
    return hops::Status::InvalidArgument("fs.num_handlers must be >= 0 (0 = inline execution)");
  }
  if (o.fs.max_tx_retries < 1) {
    return hops::Status::InvalidArgument(
        "fs.max_tx_retries must be >= 1 (every transactional op needs at least one attempt)");
  }
  if (o.fs.max_subtree_wait_retries < 0) {
    return hops::Status::InvalidArgument("fs.max_subtree_wait_retries must be >= 0");
  }
  if (o.fs.random_partition_depth < 0) {
    return hops::Status::InvalidArgument("fs.random_partition_depth must be >= 0");
  }
  if (o.fs.id_chunk_size < 1) {
    return hops::Status::InvalidArgument("fs.id_chunk_size must be >= 1");
  }
  if (o.fs.subtree_delete_batch < 1) {
    return hops::Status::InvalidArgument("fs.subtree_delete_batch must be >= 1");
  }
  if (o.fs.subtree_parallelism < 1) {
    return hops::Status::InvalidArgument("fs.subtree_parallelism must be >= 1");
  }
  if (o.fs.async_metadata_commit && o.fs.intent_apply_batch < 1) {
    return hops::Status::InvalidArgument(
        "fs.intent_apply_batch must be >= 1 when fs.async_metadata_commit is on");
  }
  return hops::Status::Ok();
}

}  // namespace

MiniCluster::MiniCluster(MiniClusterOptions options, std::unique_ptr<kv::Engine> db,
                         MetadataSchema schema)
    : options_(std::move(options)), db_(std::move(db)), schema_(schema) {}

hops::Result<std::unique_ptr<MiniCluster>> MiniCluster::Start(MiniClusterOptions options) {
  // HOPS_KV_ENGINE wins over the configured backend, so a whole test or
  // bench binary can be re-run against the other engine without a rebuild.
  if (const char* env = std::getenv("HOPS_KV_ENGINE"); env != nullptr && *env != '\0') {
    auto kind = kv::ParseEngineKind(env);
    if (!kind) {
      return hops::Status::InvalidArgument(
          std::string("unrecognized HOPS_KV_ENGINE value: ") + env);
    }
    options.fs.kv_engine = *kind;
  }
  HOPS_RETURN_IF_ERROR(ValidateOptions(options));
  if (options.db.mux_adaptive_gather_auto) {
    // Default-on policy for the mux gather delay: with >= 4 handlers per
    // namenode there is nearly always a trailing window microseconds away
    // worth waiting for; below that the delay buys nothing and costs idle
    // wakeups (bench_fig07's gather sweep is the justification). The OCC
    // engine has no mux, so the policy resolves to off there.
    options.db.mux_adaptive_gather =
        options.fs.kv_engine == kv::EngineKind::kNdb && options.fs.num_handlers >= 4;
  }
  auto db = kv::MakeEngine(options.fs.kv_engine, options.db);
  HOPS_ASSIGN_OR_RETURN(schema, MetadataSchema::Format(*db));
  std::unique_ptr<MiniCluster> cluster(
      new MiniCluster(std::move(options), std::move(db), schema));
  for (int i = 0; i < cluster->options_.num_datanodes; ++i) {
    cluster->datanodes_.push_back(std::make_unique<Datanode>(i + 1));
  }
  for (int i = 0; i < cluster->options_.num_namenodes; ++i) {
    auto nn = std::make_unique<Namenode>(cluster->db_.get(), &cluster->schema_,
                                         &cluster->options_.fs,
                                         "nn-slot-" + std::to_string(i));
    HOPS_RETURN_IF_ERROR(nn->Start());
    cluster->InstallDatanodePicker(*nn);
    cluster->namenodes_.push_back(std::move(nn));
  }
  cluster->num_namenode_slots_ = static_cast<int>(cluster->namenodes_.size());
  cluster->TickHeartbeats();
  return cluster;
}

void MiniCluster::InstallDatanodePicker(Namenode& nn) {
  nn.SetDatanodePicker([this](int count) {
    std::vector<DatanodeId> targets;
    size_t n = datanodes_.size();
    if (n == 0) return targets;
    for (size_t tried = 0; tried < n && targets.size() < static_cast<size_t>(count);
         ++tried) {
      Datanode& dn = *datanodes_[dn_rr_.fetch_add(1, std::memory_order_relaxed) % n];
      if (dn.alive()) targets.push_back(dn.id());
    }
    return targets;
  });
}

Namenode& MiniCluster::namenode(int i) {
  std::lock_guard<std::mutex> lock(nn_mu_);
  return *namenodes_[static_cast<size_t>(i)];
}

std::vector<Namenode*> MiniCluster::AliveNamenodes() {
  std::lock_guard<std::mutex> lock(nn_mu_);
  std::vector<Namenode*> alive;
  for (auto& nn : namenodes_) {
    if (nn && nn->alive()) alive.push_back(nn.get());
  }
  return alive;
}

Namenode* MiniCluster::leader() {
  std::lock_guard<std::mutex> lock(nn_mu_);
  for (auto& nn : namenodes_) {
    if (nn && nn->alive() && nn->IsLeader()) return nn.get();
  }
  return nullptr;
}

Datanode* MiniCluster::FindDatanode(DatanodeId id) {
  for (auto& dn : datanodes_) {
    if (dn->id() == id) return dn.get();
  }
  return nullptr;
}

ClusterHintStats MiniCluster::AggregateHintStats() {
  std::lock_guard<std::mutex> lock(nn_mu_);
  ClusterHintStats out;
  auto add = [&out](Namenode& nn) {
    InodeHintCache::Stats s = nn.hint_cache().stats();
    out.cache.hits += s.hits;
    out.cache.misses += s.misses;
    out.cache.evictions += s.evictions;
    out.cache.invalidations += s.invalidations;
    out.cache.entries_invalidated += s.entries_invalidated;
    out.cache.stale_put_rejections += s.stale_put_rejections;
    out.proactive_applied += nn.proactive_invalidations_applied();
    out.publish_events += nn.hint_publish_events();
    out.publish_ops_coalesced += nn.hint_publish_ops_coalesced();
    out.gc_acked_reaps += nn.election().hint_gc_acked_reaps();
    out.gc_ttl_reaps += nn.election().hint_gc_ttl_reaps();
  };
  for (auto& nn : namenodes_) {
    if (nn) add(*nn);
  }
  for (auto& nn : retired_) {
    if (nn) add(*nn);
  }
  return out;
}

ClusterIntentStats MiniCluster::AggregateIntentStats() {
  std::lock_guard<std::mutex> lock(nn_mu_);
  ClusterIntentStats out;
  auto add = [&out](Namenode& nn) {
    IntentLogStats s = nn.intent_stats();
    out.log.intents_appended += s.intents_appended;
    out.log.intents_applied += s.intents_applied;
    out.log.intents_coalesced += s.intents_coalesced;
    out.log.apply_failures += s.apply_failures;
    out.log.acked_ops += s.acked_ops;
    out.log.ack_latency_us += s.ack_latency_us;
    out.log.apply_latency_us += s.apply_latency_us;
    out.log.covering_waits += s.covering_waits;
    out.intents_adopted += nn.intents_adopted();
  };
  for (auto& nn : namenodes_) {
    if (nn) add(*nn);
  }
  for (auto& nn : retired_) {
    if (nn) add(*nn);
  }
  return out;
}

void MiniCluster::DrainIntents() {
  // Snapshot outside the namenode calls: FlushIntents blocks on the apply
  // pipeline, and holding nn_mu_ there would stall client threads picking
  // namenodes. The pointers stay valid (graveyard) even if a slot restarts
  // mid-drain.
  for (Namenode* nn : AliveNamenodes()) nn->FlushIntents();
}

void MiniCluster::KillNamenode(int i) {
  Namenode* nn;
  {
    std::lock_guard<std::mutex> lock(nn_mu_);
    nn = namenodes_[static_cast<size_t>(i)].get();
  }
  nn->Kill();
}

hops::Status MiniCluster::RestartNamenode(int i) {
  // A restarted namenode gets a new id from the election service (§3).
  auto nn = std::make_unique<Namenode>(db_.get(), &schema_, &options_.fs,
                                       "nn-slot-" + std::to_string(i));
  HOPS_RETURN_IF_ERROR(nn->Start());
  InstallDatanodePicker(*nn);
  std::lock_guard<std::mutex> lock(nn_mu_);
  auto& slot = namenodes_[static_cast<size_t>(i)];
  if (slot) {
    // Retire, don't destroy: clients may hold raw pointers (sticky policy)
    // or be mid-call on the old instance. Kill first so every such call
    // fails over instead of mutating state under a replaced identity.
    slot->Kill();
    retired_.push_back(std::move(slot));
  }
  slot = std::move(nn);
  return hops::Status::Ok();
}

hops::Status MiniCluster::RestartNamenodeSameId(int i) {
  NamenodeId old_id;
  {
    std::lock_guard<std::mutex> lock(nn_mu_);
    auto& slot = namenodes_[static_cast<size_t>(i)];
    old_id = slot->id();
    slot->Kill();
  }
  auto nn = std::make_unique<Namenode>(db_.get(), &schema_, &options_.fs,
                                       "nn-slot-" + std::to_string(i));
  // Resume the old identity: election counter continues (no false-death
  // window) and the start-up sweep replays this id's own surviving intent
  // partition, so ops acked by the previous incarnation are not stranded.
  HOPS_RETURN_IF_ERROR(nn->Start(old_id));
  InstallDatanodePicker(*nn);
  std::lock_guard<std::mutex> lock(nn_mu_);
  auto& slot = namenodes_[static_cast<size_t>(i)];
  if (slot) retired_.push_back(std::move(slot));
  slot = std::move(nn);
  return hops::Status::Ok();
}

void MiniCluster::TickHeartbeats(int rounds) {
  for (int r = 0; r < rounds; ++r) {
    FlushHintPublishes();
    for (Namenode* nn : AliveNamenodes()) (void)nn->Heartbeat();
  }
}

void MiniCluster::FlushHintPublishes() {
  for (Namenode* nn : AliveNamenodes()) nn->FlushHintInvalidations();
}

Client MiniCluster::NewClient(NamenodePolicy policy, const std::string& name,
                              uint64_t seed) {
  return Client([this] { return AliveNamenodes(); }, policy, name, seed);
}

hops::Status MiniCluster::PipelineWrite(const LocatedBlock& block) {
  for (DatanodeId id : block.locations) {
    Datanode* dn = FindDatanode(id);
    if (dn == nullptr || !dn->alive()) continue;
    dn->StoreBlock(block.block_id);
    auto alive = AliveNamenodes();
    if (alive.empty()) return hops::Status::Unavailable("no alive namenode");
    HOPS_RETURN_IF_ERROR(alive.front()->BlockReceived(id, block.block_id));
  }
  return hops::Status::Ok();
}

}  // namespace hops::fs
