#include "hopsfs/mini_cluster.h"

namespace hops::fs {

MiniCluster::MiniCluster(MiniClusterOptions options, std::unique_ptr<ndb::Cluster> db,
                         MetadataSchema schema)
    : options_(std::move(options)), db_(std::move(db)), schema_(schema) {}

hops::Result<std::unique_ptr<MiniCluster>> MiniCluster::Start(MiniClusterOptions options) {
  if (options.db.mux_adaptive_gather_auto) {
    // Default-on policy for the mux gather delay: with >= 4 handlers per
    // namenode there is nearly always a trailing window microseconds away
    // worth waiting for; below that the delay buys nothing and costs idle
    // wakeups (bench_fig07's gather sweep is the justification).
    options.db.mux_adaptive_gather = options.fs.num_handlers >= 4;
  }
  auto db = std::make_unique<ndb::Cluster>(options.db);
  HOPS_ASSIGN_OR_RETURN(schema, MetadataSchema::Format(*db));
  std::unique_ptr<MiniCluster> cluster(
      new MiniCluster(std::move(options), std::move(db), schema));
  for (int i = 0; i < cluster->options_.num_datanodes; ++i) {
    cluster->datanodes_.push_back(std::make_unique<Datanode>(i + 1));
  }
  for (int i = 0; i < cluster->options_.num_namenodes; ++i) {
    auto nn = std::make_unique<Namenode>(cluster->db_.get(), &cluster->schema_,
                                         &cluster->options_.fs,
                                         "nn-slot-" + std::to_string(i));
    HOPS_RETURN_IF_ERROR(nn->Start());
    cluster->InstallDatanodePicker(*nn);
    cluster->namenodes_.push_back(std::move(nn));
  }
  cluster->num_namenode_slots_ = static_cast<int>(cluster->namenodes_.size());
  cluster->TickHeartbeats();
  return cluster;
}

void MiniCluster::InstallDatanodePicker(Namenode& nn) {
  nn.SetDatanodePicker([this](int count) {
    std::vector<DatanodeId> targets;
    size_t n = datanodes_.size();
    if (n == 0) return targets;
    for (size_t tried = 0; tried < n && targets.size() < static_cast<size_t>(count);
         ++tried) {
      Datanode& dn = *datanodes_[dn_rr_.fetch_add(1, std::memory_order_relaxed) % n];
      if (dn.alive()) targets.push_back(dn.id());
    }
    return targets;
  });
}

Namenode& MiniCluster::namenode(int i) {
  std::lock_guard<std::mutex> lock(nn_mu_);
  return *namenodes_[static_cast<size_t>(i)];
}

std::vector<Namenode*> MiniCluster::AliveNamenodes() {
  std::lock_guard<std::mutex> lock(nn_mu_);
  std::vector<Namenode*> alive;
  for (auto& nn : namenodes_) {
    if (nn && nn->alive()) alive.push_back(nn.get());
  }
  return alive;
}

Namenode* MiniCluster::leader() {
  std::lock_guard<std::mutex> lock(nn_mu_);
  for (auto& nn : namenodes_) {
    if (nn && nn->alive() && nn->IsLeader()) return nn.get();
  }
  return nullptr;
}

Datanode* MiniCluster::FindDatanode(DatanodeId id) {
  for (auto& dn : datanodes_) {
    if (dn->id() == id) return dn.get();
  }
  return nullptr;
}

ClusterHintStats MiniCluster::AggregateHintStats() {
  std::lock_guard<std::mutex> lock(nn_mu_);
  ClusterHintStats out;
  auto add = [&out](Namenode& nn) {
    InodeHintCache::Stats s = nn.hint_cache().stats();
    out.cache.hits += s.hits;
    out.cache.misses += s.misses;
    out.cache.evictions += s.evictions;
    out.cache.invalidations += s.invalidations;
    out.cache.entries_invalidated += s.entries_invalidated;
    out.cache.stale_put_rejections += s.stale_put_rejections;
    out.proactive_applied += nn.proactive_invalidations_applied();
    out.publish_events += nn.hint_publish_events();
    out.publish_ops_coalesced += nn.hint_publish_ops_coalesced();
    out.gc_acked_reaps += nn.election().hint_gc_acked_reaps();
    out.gc_ttl_reaps += nn.election().hint_gc_ttl_reaps();
  };
  for (auto& nn : namenodes_) {
    if (nn) add(*nn);
  }
  for (auto& nn : retired_) {
    if (nn) add(*nn);
  }
  return out;
}

ClusterIntentStats MiniCluster::AggregateIntentStats() {
  std::lock_guard<std::mutex> lock(nn_mu_);
  ClusterIntentStats out;
  auto add = [&out](Namenode& nn) {
    IntentLogStats s = nn.intent_stats();
    out.log.intents_appended += s.intents_appended;
    out.log.intents_applied += s.intents_applied;
    out.log.intents_coalesced += s.intents_coalesced;
    out.log.apply_failures += s.apply_failures;
    out.log.acked_ops += s.acked_ops;
    out.log.ack_latency_us += s.ack_latency_us;
    out.log.apply_latency_us += s.apply_latency_us;
    out.log.covering_waits += s.covering_waits;
    out.intents_adopted += nn.intents_adopted();
  };
  for (auto& nn : namenodes_) {
    if (nn) add(*nn);
  }
  for (auto& nn : retired_) {
    if (nn) add(*nn);
  }
  return out;
}

void MiniCluster::DrainIntents() {
  // Snapshot outside the namenode calls: FlushIntents blocks on the apply
  // pipeline, and holding nn_mu_ there would stall client threads picking
  // namenodes. The pointers stay valid (graveyard) even if a slot restarts
  // mid-drain.
  for (Namenode* nn : AliveNamenodes()) nn->FlushIntents();
}

void MiniCluster::KillNamenode(int i) {
  Namenode* nn;
  {
    std::lock_guard<std::mutex> lock(nn_mu_);
    nn = namenodes_[static_cast<size_t>(i)].get();
  }
  nn->Kill();
}

hops::Status MiniCluster::RestartNamenode(int i) {
  // A restarted namenode gets a new id from the election service (§3).
  auto nn = std::make_unique<Namenode>(db_.get(), &schema_, &options_.fs,
                                       "nn-slot-" + std::to_string(i));
  HOPS_RETURN_IF_ERROR(nn->Start());
  InstallDatanodePicker(*nn);
  std::lock_guard<std::mutex> lock(nn_mu_);
  auto& slot = namenodes_[static_cast<size_t>(i)];
  if (slot) {
    // Retire, don't destroy: clients may hold raw pointers (sticky policy)
    // or be mid-call on the old instance. Kill first so every such call
    // fails over instead of mutating state under a replaced identity.
    slot->Kill();
    retired_.push_back(std::move(slot));
  }
  slot = std::move(nn);
  return hops::Status::Ok();
}

hops::Status MiniCluster::RestartNamenodeSameId(int i) {
  NamenodeId old_id;
  {
    std::lock_guard<std::mutex> lock(nn_mu_);
    auto& slot = namenodes_[static_cast<size_t>(i)];
    old_id = slot->id();
    slot->Kill();
  }
  auto nn = std::make_unique<Namenode>(db_.get(), &schema_, &options_.fs,
                                       "nn-slot-" + std::to_string(i));
  // Resume the old identity: election counter continues (no false-death
  // window) and the start-up sweep replays this id's own surviving intent
  // partition, so ops acked by the previous incarnation are not stranded.
  HOPS_RETURN_IF_ERROR(nn->Start(old_id));
  InstallDatanodePicker(*nn);
  std::lock_guard<std::mutex> lock(nn_mu_);
  auto& slot = namenodes_[static_cast<size_t>(i)];
  if (slot) retired_.push_back(std::move(slot));
  slot = std::move(nn);
  return hops::Status::Ok();
}

void MiniCluster::TickHeartbeats(int rounds) {
  for (int r = 0; r < rounds; ++r) {
    FlushHintPublishes();
    for (Namenode* nn : AliveNamenodes()) (void)nn->Heartbeat();
  }
}

void MiniCluster::FlushHintPublishes() {
  for (Namenode* nn : AliveNamenodes()) nn->FlushHintInvalidations();
}

Client MiniCluster::NewClient(NamenodePolicy policy, const std::string& name,
                              uint64_t seed) {
  return Client([this] { return AliveNamenodes(); }, policy, name, seed);
}

hops::Status MiniCluster::PipelineWrite(const LocatedBlock& block) {
  for (DatanodeId id : block.locations) {
    Datanode* dn = FindDatanode(id);
    if (dn == nullptr || !dn->alive()) continue;
    dn->StoreBlock(block.block_id);
    auto alive = AliveNamenodes();
    if (alive.empty()) return hops::Status::Unavailable("no alive namenode");
    HOPS_RETURN_IF_ERROR(alive.front()->BlockReceived(id, block.block_id));
  }
  return hops::Status::Ok();
}

}  // namespace hops::fs
