// The normalized HopsFS metadata schema on NDB (paper §4.1) and the
// row <-> entity codecs.
//
// Tables and their partitioning:
//   inodes             PK (parent_id, name)      explicit partition value
//                      (parent id, or hash(name) near the root -- partition.h)
//   blocks             PK (inode_id, block_id)            partition inode_id
//   replicas           PK (inode_id, block_id, datanode)  partition inode_id
//   urb/prb/cr/ruc/er/inv  block life-cycle tables        partition inode_id
//   leases             PK (inode_id)                      partition inode_id
//   quotas             PK (inode_id)                      partition inode_id
//   block_lookup       PK (block_id)  -> inode_id (block reports)
//   active_subtree_ops PK (inode_id)  (paper §6.1 phase 1)
//   leader             PK (namenode_id) (election & membership, §3)
//   variables          PK (var_id)    (id allocation counters)
//   hint_invalidations PK (nn_id, seq)   partition nn_id
//                      (proactive hint-cache invalidation log, sharded per
//                      publishing namenode: one record per *publish event*
//                      carrying every prefix of the coalesced ops; drained
//                      by every namenode's heartbeat tick)
//   hint_heads         PK (nn_id)        partition nn_id
//                      (a publisher's next log seq; only its owner ever
//                      X-locks it, so concurrent publishers share no rows)
//   hint_acks          PK (drainer, publisher)  partition drainer
//                      (high-water mark a drainer has applied of a
//                      publisher's log; the leader GCs a record once every
//                      alive namenode acked past it)
//   op_intents         PK (nn_id, seq)   partition nn_id
//                      (asynchronous metadata commit intent log, sharded per
//                      acknowledging namenode: one row per acknowledged
//                      mutation, deleted once the apply transaction commits;
//                      rows left by a dead namenode are adopted by the
//                      leader in seq order)
//   intent_heads       PK (nn_id)        partition nn_id
//                      (a namenode's next intent seq; only its owner ever
//                      X-locks it, mirroring hint_heads)
#pragma once

#include "hopsfs/types.h"
#include "kv/kv.h"

namespace hops::fs {

// Column indices, kept adjacent to the schema definitions in schema.cc.
namespace col {
// inodes
inline constexpr size_t kInodeParent = 0, kInodeName = 1, kInodeId = 2, kInodeIsDir = 3,
    kInodePerm = 4, kInodeOwner = 5, kInodeGroup = 6, kInodeMtime = 7, kInodeAtime = 8,
    kInodeSize = 9, kInodeReplication = 10, kInodeSubtreeLock = 11, kInodeUnderCons = 12,
    kInodeHasQuota = 13;
// blocks
inline constexpr size_t kBlockInode = 0, kBlockId = 1, kBlockIndex = 2, kBlockState = 3,
    kBlockGenStamp = 4, kBlockBytes = 5, kBlockRepl = 6;
// replicas and the life-cycle tables share the (inode, block, datanode) shape
inline constexpr size_t kReplicaInode = 0, kReplicaBlock = 1, kReplicaDatanode = 2,
    kReplicaState = 3;
// leases
inline constexpr size_t kLeaseInode = 0, kLeaseHolder = 1, kLeaseRenewed = 2;
// quotas
inline constexpr size_t kQuotaInode = 0, kQuotaNs = 1, kQuotaSs = 2, kQuotaNsUsed = 3,
    kQuotaSsUsed = 4;
// block_lookup
inline constexpr size_t kLookupBlock = 0, kLookupInode = 1;
// active_subtree_ops
inline constexpr size_t kSubtreeInode = 0, kSubtreeNn = 1, kSubtreeOp = 2, kSubtreePath = 3;
// leader
inline constexpr size_t kLeaderNn = 0, kLeaderCounter = 1, kLeaderLocation = 2;
// variables
inline constexpr size_t kVarId = 0, kVarValue = 1;
// hint_invalidations
inline constexpr size_t kHintNn = 0, kHintSeq = 1, kHintOp = 2, kHintPaths = 3,
    kHintMtime = 4;
// hint_heads
inline constexpr size_t kHintHeadNn = 0, kHintHeadNext = 1;
// hint_acks
inline constexpr size_t kAckDrainer = 0, kAckPublisher = 1, kAckSeq = 2, kAckMtime = 3;
// op_intents
inline constexpr size_t kIntentNn = 0, kIntentSeq = 1, kIntentOp = 2, kIntentPath = 3,
    kIntentClient = 4, kIntentUser = 5, kIntentSuper = 6, kIntentPerm = 7, kIntentOwner = 8,
    kIntentGroup = 9, kIntentMtime = 10;
// intent_heads
inline constexpr size_t kIntentHeadNn = 0, kIntentHeadNext = 1;
}  // namespace col

// Well-known rows of the variables table.
inline constexpr int64_t kVarNextInodeId = 0;
inline constexpr int64_t kVarNextBlockId = 1;
inline constexpr int64_t kVarNextNamenodeId = 2;
// LEGACY global hint-invalidation sequence row. The sharded log keys
// records by (publisher, per-publisher seq) and orders each partition with
// the publisher's own hint_heads row, so no live path reads this row any
// more -- it survives only as the contention injector for the
// FsConfig::hint_global_seq_lock ablation, which X-locks it in every
// publish transaction to reproduce the pre-sharding global serialization
// point.
inline constexpr int64_t kVarNextHintInvalidationSeq = 3;

// Creates every table and owns their ids.
struct MetadataSchema {
  kv::TableId inodes{}, blocks{}, replicas{}, urb{}, prb{}, cr{}, ruc{}, er{}, inv{},
      leases{}, quotas{}, block_lookup{}, active_subtree_ops{}, leader{}, variables{},
      hint_invalidations{}, hint_heads{}, hint_acks{}, op_intents{}, intent_heads{};

  // Creates all tables in `cluster` plus the root inode and id counters.
  static hops::Result<MetadataSchema> Format(kv::Engine& cluster);

  // Life-cycle tables in the fixed read order of the lock phase (Figure 4,
  // line 6): URB, PRB, RUC, CR, ER, Inv.
  std::vector<kv::TableId> LifecycleTables() const { return {urb, prb, ruc, cr, er, inv}; }
};

// --- Codecs -----------------------------------------------------------------
// A hint-invalidation record's paths column: every prefix of a coalesced
// publish event in one string, NUL-separated ('\0' can appear in no legal
// path component -- SplitPath splits on '/', and the filesystem never stores
// NUL bytes in names).
std::string EncodeHintPaths(const std::vector<std::string>& prefixes);
std::vector<std::string> DecodeHintPaths(const std::string& encoded);

kv::Row ToRow(const Inode& inode);
Inode InodeFromRow(const kv::Row& row);
kv::Row ToRow(const Block& block);
Block BlockFromRow(const kv::Row& row);
kv::Row ToRow(const Replica& replica);
Replica ReplicaFromRow(const kv::Row& row);
kv::Row ToRow(const Lease& lease);
Lease LeaseFromRow(const kv::Row& row);
kv::Row ToRow(const DirectoryQuota& quota);
DirectoryQuota QuotaFromRow(const kv::Row& row);

}  // namespace hops::fs
