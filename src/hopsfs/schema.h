// The normalized HopsFS metadata schema on NDB (paper §4.1) and the
// row <-> entity codecs.
//
// Tables and their partitioning:
//   inodes             PK (parent_id, name)      explicit partition value
//                      (parent id, or hash(name) near the root -- partition.h)
//   blocks             PK (inode_id, block_id)            partition inode_id
//   replicas           PK (inode_id, block_id, datanode)  partition inode_id
//   urb/prb/cr/ruc/er/inv  block life-cycle tables        partition inode_id
//   leases             PK (inode_id)                      partition inode_id
//   quotas             PK (inode_id)                      partition inode_id
//   block_lookup       PK (block_id)  -> inode_id (block reports)
//   active_subtree_ops PK (inode_id)  (paper §6.1 phase 1)
//   leader             PK (namenode_id) (election & membership, §3)
//   variables          PK (var_id)    (id allocation counters)
//   hint_invalidations PK (seq)       (proactive hint-cache invalidation log:
//                      a mutating namenode appends (seq, nn, op, prefix) and
//                      every namenode drains the log on its heartbeat tick)
#pragma once

#include "hopsfs/types.h"
#include "ndb/cluster.h"

namespace hops::fs {

// Column indices, kept adjacent to the schema definitions in schema.cc.
namespace col {
// inodes
inline constexpr size_t kInodeParent = 0, kInodeName = 1, kInodeId = 2, kInodeIsDir = 3,
    kInodePerm = 4, kInodeOwner = 5, kInodeGroup = 6, kInodeMtime = 7, kInodeAtime = 8,
    kInodeSize = 9, kInodeReplication = 10, kInodeSubtreeLock = 11, kInodeUnderCons = 12,
    kInodeHasQuota = 13;
// blocks
inline constexpr size_t kBlockInode = 0, kBlockId = 1, kBlockIndex = 2, kBlockState = 3,
    kBlockGenStamp = 4, kBlockBytes = 5, kBlockRepl = 6;
// replicas and the life-cycle tables share the (inode, block, datanode) shape
inline constexpr size_t kReplicaInode = 0, kReplicaBlock = 1, kReplicaDatanode = 2,
    kReplicaState = 3;
// leases
inline constexpr size_t kLeaseInode = 0, kLeaseHolder = 1, kLeaseRenewed = 2;
// quotas
inline constexpr size_t kQuotaInode = 0, kQuotaNs = 1, kQuotaSs = 2, kQuotaNsUsed = 3,
    kQuotaSsUsed = 4;
// block_lookup
inline constexpr size_t kLookupBlock = 0, kLookupInode = 1;
// active_subtree_ops
inline constexpr size_t kSubtreeInode = 0, kSubtreeNn = 1, kSubtreeOp = 2, kSubtreePath = 3;
// leader
inline constexpr size_t kLeaderNn = 0, kLeaderCounter = 1, kLeaderLocation = 2;
// variables
inline constexpr size_t kVarId = 0, kVarValue = 1;
// hint_invalidations
inline constexpr size_t kHintSeq = 0, kHintNn = 1, kHintOp = 2, kHintPath = 3,
    kHintMtime = 4;
}  // namespace col

// Well-known rows of the variables table.
inline constexpr int64_t kVarNextInodeId = 0;
inline constexpr int64_t kVarNextBlockId = 1;
inline constexpr int64_t kVarNextNamenodeId = 2;
// Next hint-invalidation log sequence number. Allocated and consumed inside
// the same transaction as the log-row insert, so the X lock on this row makes
// sequence order equal commit order (a drainer that saw seq k has seen every
// record below k).
inline constexpr int64_t kVarNextHintInvalidationSeq = 3;

// Creates every table and owns their ids.
struct MetadataSchema {
  ndb::TableId inodes{}, blocks{}, replicas{}, urb{}, prb{}, cr{}, ruc{}, er{}, inv{},
      leases{}, quotas{}, block_lookup{}, active_subtree_ops{}, leader{}, variables{},
      hint_invalidations{};

  // Creates all tables in `cluster` plus the root inode and id counters.
  static hops::Result<MetadataSchema> Format(ndb::Cluster& cluster);

  // Life-cycle tables in the fixed read order of the lock phase (Figure 4,
  // line 6): URB, PRB, RUC, CR, ER, Inv.
  std::vector<ndb::TableId> LifecycleTables() const { return {urb, prb, ruc, cr, er, inv}; }
};

// --- Codecs -----------------------------------------------------------------
ndb::Row ToRow(const Inode& inode);
Inode InodeFromRow(const ndb::Row& row);
ndb::Row ToRow(const Block& block);
Block BlockFromRow(const ndb::Row& row);
ndb::Row ToRow(const Replica& replica);
Replica ReplicaFromRow(const ndb::Row& row);
ndb::Row ToRow(const Lease& lease);
Lease LeaseFromRow(const ndb::Row& row);
ndb::Row ToRow(const DirectoryQuota& quota);
DirectoryQuota QuotaFromRow(const ndb::Row& row);

}  // namespace hops::fs
