// Namenode core: the transactional inode-operation template of Figure 4
// (partition hints, batched path resolution via the inode hint cache with
// recursive fallback, total-order locking of the last path components,
// execute phase against decoded entities, batched update phase), plus the
// single-transaction file system operations.
#include "hopsfs/namenode.h"

#include <algorithm>
#include <cassert>
#include <thread>

#include "hopsfs/partition.h"
#include "util/clock.h"

namespace hops::fs {

namespace {

// Permission bits wanted by CheckAccess.
constexpr int kRead = 4, kWrite = 2, kExec = 1;

kv::Key InodeKey(InodeId parent, const std::string& name) {
  return kv::Key{parent, name};
}

FileStatus StatusFromInode(const Inode& n, std::string path) {
  FileStatus st;
  st.path = std::move(path);
  st.name = n.name;
  st.inode_id = n.id;
  st.is_dir = n.is_dir;
  st.perm = n.perm;
  st.owner = n.owner;
  st.group = n.group;
  st.mtime = n.mtime;
  st.size = n.size;
  st.replication = n.replication;
  return st;
}

}  // namespace

// --- IdAllocator -------------------------------------------------------------

hops::Result<int64_t> IdAllocator::Next() {
  std::lock_guard<std::mutex> lock(mu_);
  if (next_ >= limit_) {
    for (int attempt = 0; attempt < 16; ++attempt) {
      auto tx = db_->Begin(kv::TxHint{schema_->variables, static_cast<uint64_t>(var_id_)});
      auto row = tx->Read(schema_->variables, {var_id_}, kv::LockMode::kExclusive);
      if (!row.ok()) {
        if (row.status().IsRetryableTx()) continue;
        return row.status();
      }
      int64_t base = (*row)[col::kVarValue].i64();
      hops::Status st = tx->Update(schema_->variables, kv::Row{var_id_, base + chunk_});
      if (!st.ok()) continue;
      st = tx->Commit();
      if (st.ok()) {
        next_ = base;
        limit_ = base + chunk_;
        break;
      }
      if (!st.IsRetryableTx()) return st;
    }
    if (next_ >= limit_) return hops::Status::TxAborted("id allocation failed");
  }
  return next_++;
}

// --- Construction ------------------------------------------------------------

Namenode::Namenode(kv::Engine* db, const MetadataSchema* schema, const FsConfig* config,
                   std::string location)
    : db_(db),
      schema_(schema),
      config_(config),
      handlers_(config->num_handlers > 0 ? std::make_unique<HandlerPool>(config->num_handlers)
                                         : nullptr),
      intents_(config->async_metadata_commit
                   ? std::make_unique<IntentLog>(db, schema, config)
                   : nullptr),
      election_(db, schema, config, std::move(location)),
      hint_cache_(config->hint_cache_capacity),
      inode_ids_(db, schema, kVarNextInodeId, config->id_chunk_size),
      block_ids_(db, schema, kVarNextBlockId, config->id_chunk_size) {
  root_.parent_id = kInvalidInode;
  root_.name = "";
  root_.id = kRootInode;
  root_.is_dir = true;
  root_.owner = "hdfs";
  root_.group = "hdfs";
  if (config->hint_proactive_invalidation && config->hint_publish_async) {
    hint_publisher_ = std::thread([this] { HintPublisherLoop(); });
  }
}

Namenode::~Namenode() {
  // The applier issues transactions through the handler pool and may publish
  // acknowledgments to waiting clients: stop it before anything else.
  if (intents_) intents_->Stop();
  {
    std::lock_guard<std::mutex> lock(hint_pub_mu_);
    hint_pub_stop_ = true;
  }
  hint_pub_cv_.notify_all();
  if (hint_publisher_.joinable()) hint_publisher_.join();
}

hops::Status Namenode::Start(std::optional<NamenodeId> resume_id) {
  if (resume_id) {
    HOPS_RETURN_IF_ERROR(election_.Resume(*resume_id));
  } else {
    HOPS_RETURN_IF_ERROR(election_.Register());
  }
  PrimeHintApplied();
  if (intents_) {
    intents_->Start(id_safe(),
                    [this](const IntentRecord& rec) { return ApplyIntent(rec); });
    // Restart recovery: durable intents left by namenodes now dead are
    // replayed before serving. A resumed identity replays its OWN partition
    // too -- the previous incarnation's acknowledged-but-unapplied ops would
    // otherwise be stranded, because the ordinary sweep (correctly) skips
    // the live self partition and no leader will ever see this id as dead.
    AdoptOrphanedIntents(/*include_self=*/resume_id.has_value());
  }
  return Heartbeat();
}

void Namenode::FlushIntents() {
  if (intents_) intents_->Flush();
}

void Namenode::SetIntentApplierPausedForTesting(bool paused) {
  if (intents_) intents_->SetApplierPausedForTesting(paused);
}

void Namenode::SetIntentAppendHoldForTesting(bool hold) {
  if (intents_) intents_->SetAppendHoldForTesting(hold);
}

size_t Namenode::IntentQueuedAppendsForTesting() const {
  return intents_ ? intents_->QueuedAppendsForTesting() : 0;
}

void Namenode::SetIntentCrashHookForTesting(IntentLog::CrashHook hook) {
  if (intents_) intents_->SetCrashHookForTesting(std::move(hook));
}

void Namenode::SetIntentCleanerPausedForTesting(bool paused) {
  if (intents_) intents_->SetCleanerPausedForTesting(paused);
}

IntentLogStats Namenode::intent_stats() const {
  return intents_ ? intents_->stats() : IntentLogStats{};
}

void Namenode::SetTraceSink(TraceSink sink) {
  if (intents_) intents_->SetTraceSink(sink);
  std::lock_guard<std::mutex> lock(trace_mu_);
  trace_sink_ = std::move(sink);
}

void Namenode::PrimeHintApplied() {
  // Runs before this namenode serves anything: the hint cache is empty, so
  // no record published so far can name a stale hint here -- start every
  // publisher's applied mark at its current head instead of replaying the
  // retained backlog, and ack those heads so this namenode's arrival does
  // not hold back the leader's ack-based GC.
  if (!config_->hint_proactive_invalidation) return;
  auto tx = db_->Begin(kv::TxHint{schema_->hint_heads, 0});
  auto heads = tx->FullTableScan(schema_->hint_heads);
  if (!heads.ok()) {
    if (tx->active()) tx->Abort();
    return;  // first drain replays the backlog: over-invalidation, safe
  }
  const int64_t now = MonotonicMicros();
  kv::WriteBatch acks;
  {
    std::lock_guard<std::mutex> lock(hint_applied_mu_);
    for (const auto& row : *heads) {
      const NamenodeId publisher = row[col::kHintHeadNn].i64();
      const int64_t head = row[col::kHintHeadNext].i64();
      hint_applied_[publisher] = head - 1;
      if (publisher != id_safe()) {
        acks.Write(schema_->hint_acks, kv::Row{id_safe(), publisher, head - 1, now});
      }
    }
  }
  if (acks.size() > 0 && !tx->Execute(acks).ok()) {
    if (tx->active()) tx->Abort();
    return;  // acks are an optimization; TTL GC covers their absence
  }
  (void)tx->Commit();
}

hops::Status Namenode::Heartbeat() {
  // A dead namenode must not advance its election counter: peers would read
  // the advance as liveness and defer adoption of its orphaned intents.
  HOPS_RETURN_IF_ERROR(CheckAlive());
  hops::Status st = election_.Heartbeat();  // leader side also GCs the hint log
  if (alive_ && config_->hint_proactive_invalidation) DrainHintInvalidations();
  // Failover adoption: once the membership view ages a dead namenode out,
  // the leader replays its acknowledged-but-unapplied intents.
  if (alive_ && intents_ && election_.IsLeader()) AdoptOrphanedIntents();
  return st;
}

void Namenode::PublishHintInvalidation(const std::vector<std::string>& prefixes,
                                       SubtreeOp op) {
  for (const std::string& prefix : prefixes) hint_cache_.InvalidatePrefix(prefix);
  if (!config_->hint_proactive_invalidation || prefixes.empty()) return;
  // No alive peers: nothing to invalidate remotely, so skip the log append
  // entirely (a peer joining inside the membership-staleness window simply
  // lazy-repairs, which is always safe).
  if (election_.AliveNamenodes().size() <= 1) return;
  HintPublishEvent event{op, prefixes};
  if (!config_->hint_publish_async) {
    // Synchronous ablation path: the mutating thread pays the append.
    std::vector<HintPublishEvent> events;
    events.push_back(std::move(event));
    AppendHintPublishes(std::move(events));
    return;
  }
  // Async publish stage: enqueue and return -- the mutation path is done.
  // Every event queued while the publisher thread's current append is in
  // flight coalesces into its next log record.
  {
    std::lock_guard<std::mutex> lock(hint_pub_mu_);
    if (!hint_pub_stop_) hint_pub_queue_.push_back(std::move(event));
  }
  hint_pub_cv_.notify_all();
}

void Namenode::HintPublisherLoop() {
  std::unique_lock<std::mutex> lock(hint_pub_mu_);
  for (;;) {
    hint_pub_cv_.wait(lock, [&] {
      return hint_pub_stop_ || (!hint_pub_queue_.empty() && !hint_pub_paused_);
    });
    if (hint_pub_stop_) return;
    std::vector<HintPublishEvent> events = std::move(hint_pub_queue_);
    hint_pub_queue_.clear();
    hint_pub_inflight_ = true;
    lock.unlock();
    AppendHintPublishes(std::move(events));
    lock.lock();
    hint_pub_inflight_ = false;
    hint_pub_cv_.notify_all();
  }
}

void Namenode::FlushHintInvalidations() {
  std::unique_lock<std::mutex> lock(hint_pub_mu_);
  // A paused publisher (test hook) cannot drain its queue, so don't wait on
  // that -- but an append already in flight completes on its own and MUST
  // be waited out even when paused, or "paused means nothing reaches the
  // log" would race with the straggler landing after this returns.
  hint_pub_cv_.wait(lock, [&] {
    return hint_pub_stop_ ||
           ((hint_pub_queue_.empty() || hint_pub_paused_) && !hint_pub_inflight_);
  });
}

void Namenode::SetHintPublisherPausedForTesting(bool paused) {
  {
    std::lock_guard<std::mutex> lock(hint_pub_mu_);
    hint_pub_paused_ = paused;
  }
  hint_pub_cv_.notify_all();
}

void Namenode::AppendHintPublishes(std::vector<HintPublishEvent> events) {
  if (events.empty() || !alive_) return;
  // One record per publish event: all the coalesced ops' prefixes ride in a
  // single row of THIS namenode's log partition. The op column keeps its
  // meaning for a single-op event; a mixed coalesced event records 0.
  std::vector<std::string> prefixes;
  for (auto& e : events) {
    for (auto& p : e.prefixes) prefixes.push_back(std::move(p));
  }
  const int64_t op =
      events.size() == 1 ? static_cast<int64_t>(events[0].op) : int64_t{0};
  const NamenodeId self = id_safe();
  const std::string paths = EncodeHintPaths(prefixes);
  for (int attempt = 0; attempt < 8; ++attempt) {
    auto tx = db_->Begin(kv::TxHint{schema_->hint_heads, static_cast<uint64_t>(self)});
    hops::Status st;
    if (config_->hint_global_seq_lock) {
      // Ablation: reproduce the pre-sharding global serialization point --
      // every publisher X-locks this one variables row until commit.
      auto legacy = tx->Read(schema_->variables, {kVarNextHintInvalidationSeq},
                             kv::LockMode::kExclusive);
      if (!legacy.ok()) {
        if (tx->active()) tx->Abort();
        if (legacy.status().IsRetryableTx()) continue;
        return;  // best effort: remote namenodes fall back to lazy repair
      }
      st = tx->Update(schema_->variables,
                      kv::Row{kVarNextHintInvalidationSeq,
                               (*legacy)[col::kVarValue].i64() + 1});
      if (!st.ok()) {
        if (tx->active()) tx->Abort();
        if (st.IsRetryableTx()) continue;
        return;
      }
    }
    // Allocate the seq under the X lock on OUR OWN head row (a failed
    // locked read still locks the key slot, guarding the first insert), so
    // per-publisher sequence order equals commit order by construction: a
    // drainer that read head h under a shared lock has every record below h
    // committed. No other namenode ever X-locks this row.
    int64_t seq = 1;
    auto head = tx->Read(schema_->hint_heads, {self}, kv::LockMode::kExclusive);
    if (head.ok()) {
      seq = (*head)[col::kHintHeadNext].i64();
    } else if (head.status().code() != hops::StatusCode::kNotFound) {
      if (tx->active()) tx->Abort();
      if (head.status().IsRetryableTx()) continue;
      return;
    }
    // Monotonic stamp: the GC cutoff must never move backwards under an
    // NTP step (namenodes share a process in this reproduction).
    st = tx->Insert(schema_->hint_invalidations,
                    kv::Row{self, seq, op, paths, MonotonicMicros()});
    if (st.ok()) st = tx->Write(schema_->hint_heads, kv::Row{self, seq + 1});
    if (st.ok()) st = tx->Commit();
    if (st.ok()) {
      hint_publish_events_.fetch_add(1, std::memory_order_relaxed);
      if (events.size() > 1) {
        hint_publish_ops_coalesced_.fetch_add(events.size() - 1,
                                              std::memory_order_relaxed);
      }
      return;
    }
    if (tx->active()) tx->Abort();
    if (!st.IsRetryableTx()) return;  // best effort either way
  }
}

void Namenode::DrainHintInvalidations() {
  // Which publishers do we care about? Every alive peer (our own records
  // were applied locally at publish time; long-dead publishers' residue is
  // the leader GC's business).
  std::vector<NamenodeId> peers;
  for (NamenodeId nn : election_.AliveNamenodes()) {
    if (nn != id_safe()) peers.push_back(nn);
  }
  if (peers.empty()) return;
  std::lock_guard<std::mutex> applied_lock(hint_applied_mu_);
  // Prune applied marks for publishers no longer alive in our view: ids are
  // never reused, so entries for dead namenodes are pure leak under restart
  // churn -- and if the peer was merely stalled and returns, restarting its
  // mark at 0 just replays its partition (over-invalidation, always safe).
  for (auto it = hint_applied_.begin(); it != hint_applied_.end();) {
    const bool keep = it->first == id_safe() ||
                      std::find(peers.begin(), peers.end(), it->first) != peers.end();
    it = keep ? std::next(it) : hint_applied_.erase(it);
  }
  // Read every peer's head in ONE ReadBatch. The shared lock on a head row
  // serializes against that publisher's in-flight append (which X-locks it
  // to commit), so once this batch returns, every record below the head is
  // committed and the per-key fetch below cannot race past a gap. The
  // locks are dropped at commit right away -- before the record fetch --
  // so publishers wait at most one batched read, not a whole drain.
  struct PeerRange {
    NamenodeId nn = 0;
    int64_t from = 0;  // first seq to fetch
    int64_t to = 0;    // head: one past the last committed seq
  };
  std::vector<PeerRange> ranges;
  {
    auto tx = db_->Begin(kv::TxHint{schema_->hint_heads,
                                     static_cast<uint64_t>(peers.front())});
    kv::ReadBatch heads;
    for (NamenodeId nn : peers) {
      heads.Get(schema_->hint_heads, {nn}, kv::LockMode::kShared);
    }
    if (!tx->Execute(heads).ok()) {
      if (tx->active()) tx->Abort();
      return;  // next tick retries
    }
    (void)tx->Commit();
    for (size_t i = 0; i < peers.size(); ++i) {
      if (!heads.row(i).has_value()) continue;  // peer never published
      const int64_t head = (*heads.row(i))[col::kHintHeadNext].i64();
      auto it = hint_applied_.find(peers[i]);
      int64_t applied = it == hint_applied_.end() ? 0 : it->second;
      if (applied > head - 1) {
        // Head regression: the leader buried this publisher's head row
        // while it stalled and it has since restarted its log at seq 1.
        // Everything it publishes would sit below our stale mark and be
        // skipped forever -- reset and replay (over-invalidation is safe).
        applied = 0;
        hint_applied_[peers[i]] = 0;
      }
      if (head - 1 > applied) ranges.push_back({peers[i], applied + 1, head});
    }
  }
  if (ranges.empty()) return;
  // Fetch all publishers' new records in one batched primary-key read --
  // records the leader already reaped come back as empty slots. A namenode
  // that missed enough ticks to face an implausibly wide range falls back
  // to one pruned scan per oversized publisher partition.
  auto tx = db_->Begin(kv::TxHint{schema_->hint_invalidations,
                                   static_cast<uint64_t>(ranges.front().nn)});
  std::vector<kv::Row> records;
  std::vector<kv::Key> keys;
  for (const PeerRange& r : ranges) {
    if (r.to - r.from > 4096) {
      auto rows = tx->Ppis(schema_->hint_invalidations, {r.nn});
      if (!rows.ok()) {
        if (tx->active()) tx->Abort();
        return;
      }
      for (auto& row : *rows) {
        // Both bounds matter: records below `from` were applied already, and
        // a record the publisher appended after our heads read (seq >= to)
        // must wait for the next drain or it would be applied twice --
        // hint_applied_ only advances to to-1.
        const int64_t seq = row[col::kHintSeq].i64();
        if (seq >= r.from && seq < r.to) records.push_back(std::move(row));
      }
      continue;
    }
    for (int64_t s = r.from; s < r.to; ++s) keys.push_back({r.nn, s});
  }
  if (!keys.empty()) {
    auto got = tx->BatchRead(schema_->hint_invalidations, keys,
                             kv::LockMode::kReadCommitted);
    if (!got.ok()) {
      if (tx->active()) tx->Abort();
      return;
    }
    for (auto& slot : *got) {
      if (slot.has_value()) records.push_back(*std::move(slot));
    }
  }
  for (const auto& row : records) {
    for (const std::string& prefix : DecodeHintPaths(row[col::kHintPaths].str())) {
      hint_cache_.InvalidatePrefix(prefix);
      proactive_applied_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  // Advance the applied vector and ack what we consumed -- the leader reaps
  // a record once every alive namenode acked past it. The local advance
  // must not depend on the ack commit (acks only gate GC; re-applying is
  // idempotent, skipping is not).
  const int64_t now = MonotonicMicros();
  kv::WriteBatch acks;
  for (const PeerRange& r : ranges) {
    hint_applied_[r.nn] = r.to - 1;
    acks.Write(schema_->hint_acks, kv::Row{id_safe(), r.nn, r.to - 1, now});
  }
  if (!tx->Execute(acks).ok()) {
    if (tx->active()) tx->Abort();
    return;
  }
  (void)tx->Commit();
}

void Namenode::SetDatanodePicker(std::function<std::vector<DatanodeId>(int)> picker) {
  std::lock_guard<std::mutex> lock(dn_picker_mu_);
  dn_picker_ = std::move(picker);
}

// --- Transaction runner ------------------------------------------------------

hops::Status Namenode::RunTx(std::optional<kv::TxHint> hint,
                             const std::function<hops::Status(kv::Txn&)>& body,
                             bool inline_read) {
  int subtree_waits = 0;
  bool want_trace;
  {
    std::lock_guard<std::mutex> lock(trace_mu_);
    want_trace = trace_sink_ != nullptr;
  }
  // Captured here, NOT in the attempt: a handler-pool dispatch moves the
  // attempt onto a thread where the applier's thread-local marker is unset.
  const bool background = IntentLog::OnApplierThread();
  // With a handler pool, each ATTEMPT is enqueued and a handler thread owns
  // that transaction end to end, while the retry loop -- and in particular
  // its subtree-wait backoff sleeps -- stays on the caller's thread. A
  // waiter must not hold a handler slot while it sleeps: the subtree
  // operation it is waiting out enqueues its own phase transactions behind
  // the pool, and sleeping waiters would starve it (priority inversion).
  // Work already running on a handler (an operation issuing several
  // transactions) stays on its handler. Applier-issued work stays on its
  // claimer thread: the apply pool already bounds its own concurrency, and
  // funneling it through the handler pool would both cap the drain at
  // num_handlers and let background applies crowd client ops out of the
  // pool.
  const bool dispatch =
      !inline_read && !background && handlers_ != nullptr && !HandlerPool::OnHandlerThread();
  for (int attempt = 0; attempt < config_->max_tx_retries;) {
    hops::Status st =
        dispatch
            ? handlers_->Run([&] { return RunTxAttempt(hint, body, want_trace, background,
                                                       /*latency_sensitive=*/false); })
            : RunTxAttempt(hint, body, want_trace, background,
                           /*latency_sensitive=*/inline_read);
    if (st.ok()) return st;
    if (st.code() == hops::StatusCode::kSubtreeLocked) {
      // An active subtree operation owns part of the path: voluntarily back
      // off and retry once the lock clears (§6.3).
      if (++subtree_waits > config_->max_subtree_wait_retries) return st;
      auto backoff = config_->subtree_retry_backoff * std::min(subtree_waits, 8);
      std::this_thread::sleep_for(backoff);
      continue;
    }
    if (st.IsRetryableTx()) {
      if (st.code() == hops::StatusCode::kConflict) {
        // OCC commit-time validation lost the race. Unlike a lock timeout
        // (where the 2PL engine already made us wait our turn), an optimistic
        // conflict returns instantly, so immediate retries of hot-key
        // contenders livelock each other. Back off with a capped exponential
        // delay before re-running the whole optimistic attempt.
        auto backoff = std::chrono::microseconds(50) * (1 << std::min(attempt, 6));
        std::this_thread::sleep_for(backoff);
      }
      ++attempt;
      continue;
    }
    return st;
  }
  return hops::Status::TxAborted("operation exhausted its transaction retries");
}

hops::Status Namenode::RunTxAttempt(
    std::optional<kv::TxHint> hint,
    const std::function<hops::Status(kv::Txn&)>& body, bool want_trace,
    bool background, bool latency_sensitive) {
  HOPS_RETURN_IF_ERROR(CheckAlive());
  auto tx = db_->Begin(hint);
  if (want_trace) tx->EnableTrace();
  if (background) tx->SetBackground(true);
  if (latency_sensitive) tx->SetLatencySensitive(true);
  hops::Status st = body(*tx);
  if (st.ok()) {
    st = tx->Commit();
    if (st.ok() && want_trace) {
      std::lock_guard<std::mutex> lock(trace_mu_);
      if (trace_sink_) trace_sink_(tx->trace());
    }
    return st;
  }
  if (tx->active()) tx->Abort();
  return st;
}

// --- Path resolution & locking (Figure 4, lines 1-6) -------------------------

Namenode::SpeculativeRider Namenode::StageSpeculativeFanout(
    kv::Txn& tx, const std::vector<std::string>& components,
    std::initializer_list<kv::TableId> tables) {
  SpeculativeRider rider;
  if (components.size() < 2) return rider;
  // Non-counting probe: ResolveAndLock performs the counted lookup for the
  // operation right after; a counting probe here would double-book every
  // hit/miss and skew the reported hit rate.
  auto hints = hint_cache_.PeekChain(components).hints;
  if (hints.size() < components.size()) return rider;
  const InodeHintCache::Hint& target_hint = hints[components.size() - 1];
  // Every rider table is a file satellite (blocks, replicas, leases): when
  // the hint knows the target is a directory, the scans would come back
  // empty and be discarded -- skip staging them at all, so a warm directory
  // stat pays no wasted fan-out.
  if (target_hint.is_dir_known && target_hint.is_dir) return rider;
  const InodeId candidate = target_hint.inode_id;
  const uint32_t part = db_->PartitionForValue(static_cast<uint64_t>(candidate));
  if (!db_->PrimaryNode(part).has_value()) return rider;
  rider.hinted = candidate;
  rider.batch = std::make_unique<kv::ReadBatch>();
  for (kv::TableId table : tables) rider.batch->Scan(table, {candidate});
  rider.pending = tx.ExecuteAsync(*rider.batch);
  rider.flushed_early = rider.pending.done();
  return rider;
}

Namenode::SpeculativeRider Namenode::StageAddBlockFanout(
    kv::Txn& tx, const std::vector<std::string>& components) {
  SpeculativeRider rider;
  if (components.size() < 2) return rider;
  auto hints = hint_cache_.PeekChain(components).hints;
  if (hints.size() < components.size()) return rider;
  const InodeHintCache::Hint& target_hint = hints[components.size() - 1];
  if (target_hint.is_dir_known && target_hint.is_dir) return rider;
  const InodeId candidate = target_hint.inode_id;
  const uint32_t part = db_->PartitionForValue(static_cast<uint64_t>(candidate));
  if (!db_->PrimaryNode(part).has_value()) return rider;
  rider.hinted = candidate;
  rider.batch = std::make_unique<kv::ReadBatch>();
  // The lease X-lock rides ahead of the inode lock. The lease protocol
  // admits one writer per file, so no two writers race this file's lease
  // row, and a reader never locks it -- the inverted lock order cannot
  // produce a deadlock that a lock timeout + retry does not already cover.
  // A stale hint's discard must UnlockRow the hinted lease (the caller's
  // job) because, unlike the read-only riders, this one locks what it read.
  rider.batch->Get(schema_->leases, {candidate}, kv::LockMode::kExclusive);
  rider.batch->Scan(schema_->blocks, {candidate});
  rider.pending = tx.ExecuteAsync(*rider.batch);
  rider.flushed_early = rider.pending.done();
  return rider;
}

uint64_t Namenode::InodePv(int depth, InodeId parent, std::string_view name) const {
  return InodePartitionValue(depth, parent, name, config_->random_partition_depth);
}

Namenode::InodePvPair Namenode::InodePvCandidates(int depth, InodeId parent,
                                                  std::string_view name) const {
  InodePvPair p;
  p.primary = InodePv(depth, parent, name);
  p.alternate = depth <= config_->random_partition_depth ? static_cast<uint64_t>(parent)
                                                         : HashBytes(name);
  p.dual = db_->PartitionForValue(p.alternate) != db_->PartitionForValue(p.primary);
  return p;
}

hops::Result<Namenode::ReadInodeOut> Namenode::ReadInode(kv::Txn& tx, InodeId parent,
                                                         const std::string& name, int depth,
                                                         kv::LockMode mode) {
  // Rows that crossed the random-partition depth boundary in a move keep
  // their insert-time partition, so the row may live under either rule. Both
  // probes go out in one batched read instead of primary-then-alternate.
  const InodePvPair pv = InodePvCandidates(depth, parent, name);
  if (!pv.dual) {
    auto row = tx.Read(schema_->inodes, InodeKey(parent, name), mode, pv.primary);
    if (row.ok()) return ReadInodeOut{InodeFromRow(*row), pv.primary};
    if (row.status().code() != hops::StatusCode::kNotFound) return row.status();
    return hops::Status::NotFound("no inode " + name);
  }
  kv::ReadBatch batch;
  size_t primary_slot = batch.Get(schema_->inodes, InodeKey(parent, name), mode, pv.primary);
  size_t alternate_slot =
      batch.Get(schema_->inodes, InodeKey(parent, name), mode, pv.alternate);
  HOPS_RETURN_IF_ERROR(tx.Execute(batch));
  if (batch.row(primary_slot).has_value()) {
    return ReadInodeOut{InodeFromRow(*batch.row(primary_slot)), pv.primary};
  }
  if (batch.row(alternate_slot).has_value()) {
    return ReadInodeOut{InodeFromRow(*batch.row(alternate_slot)), pv.alternate};
  }
  return hops::Status::NotFound("no inode " + name);
}

hops::Result<std::vector<std::optional<Namenode::ReadInodeOut>>> Namenode::ReadLockItemsBatched(
    kv::Txn& tx, const std::vector<LockItem>& items) {
  // kStagedOrder: the batch must not re-sort the lock waits into the global
  // (table, partition, key) order, because the rename deadlock-freedom
  // argument is the *path* total order -- the one mkdir/create/delete follow
  // when they lock parent before target one row at a time. Two crossing
  // renames therefore queue on their first common item instead of cycling.
  kv::ReadBatch batch(kv::BatchLockOrder::kStagedOrder);
  struct Slots {
    size_t primary = 0;
    size_t alternate = SIZE_MAX;
    uint64_t primary_pv = 0;
    uint64_t alternate_pv = 0;
  };
  std::vector<Slots> slots;
  slots.reserve(items.size());
  for (const LockItem& item : items) {
    Slots s;
    const InodePvPair pv = InodePvCandidates(item.depth, item.parent, item.name);
    s.primary_pv = pv.primary;
    // Within one item the two per-partition key slots stage in the global
    // (partition, key) sub-order -- the order ReadInode's two-probe batch
    // acquires them in -- so the item-internal waits cannot cross with a
    // concurrent per-row ReadInode of the same key.
    const bool alternate_first =
        pv.dual && db_->PartitionForValue(pv.alternate) < db_->PartitionForValue(pv.primary);
    if (alternate_first) {
      s.alternate_pv = pv.alternate;
      s.alternate = batch.Get(schema_->inodes, InodeKey(item.parent, item.name),
                              kv::LockMode::kExclusive, pv.alternate);
    }
    s.primary = batch.Get(schema_->inodes, InodeKey(item.parent, item.name),
                          kv::LockMode::kExclusive, pv.primary);
    if (pv.dual && !alternate_first) {
      s.alternate_pv = pv.alternate;
      s.alternate = batch.Get(schema_->inodes, InodeKey(item.parent, item.name),
                              kv::LockMode::kExclusive, pv.alternate);
    }
    slots.push_back(s);
  }
  HOPS_RETURN_IF_ERROR(tx.Execute(batch));
  std::vector<std::optional<ReadInodeOut>> out(items.size());
  for (size_t i = 0; i < items.size(); ++i) {
    const Slots& s = slots[i];
    if (batch.row(s.primary).has_value()) {
      out[i] = ReadInodeOut{InodeFromRow(*batch.row(s.primary)), s.primary_pv};
    } else if (s.alternate != SIZE_MAX && batch.row(s.alternate).has_value()) {
      out[i] = ReadInodeOut{InodeFromRow(*batch.row(s.alternate)), s.alternate_pv};
    }
  }
  return out;
}

hops::Status Namenode::CheckSubtreeLock(kv::Txn& tx, Inode& inode, uint64_t pv) {
  if (inode.subtree_lock_owner == kNoSubtreeLock) return hops::Status::Ok();
  if (inode.subtree_lock_owner == id_safe()) {
    // Our own flag. If the owning subtree operation is still in flight on
    // this namenode, ordinary inode operations must back off exactly as on
    // any other namenode; otherwise it is residue of a failed cleanup.
    if (IsMySubtreeOpActive(inode.id)) {
      return hops::Status::SubtreeLocked("subtree op in progress on this namenode");
    }
  } else if (election_.IsNamenodeAlive(inode.subtree_lock_owner)) {
    return hops::Status::SubtreeLocked("subtree locked by namenode " +
                                       std::to_string(inode.subtree_lock_owner));
  }
  // Lazy cleanup (§6.2): the owner died (or the stale flag is our own);
  // clear the flag and carry on.
  inode.subtree_lock_owner = kNoSubtreeLock;
  return tx.Update(schema_->inodes, ToRow(inode), pv);
}

hops::Status Namenode::ResolveSuffix(kv::Txn& tx,
                                     const std::vector<std::string>& components, size_t from,
                                     std::vector<Inode>& chain, uint64_t hint_epoch) {
  // chain holds [root, inode(components[0]) .. inode(components[from-1])];
  // resolves interior components only (the target is read in the lock phase).
  for (size_t i = from; i + 1 < components.size(); ++i) {
    InodeId parent = chain.back().id;
    auto out = ReadInode(tx, parent, components[i], static_cast<int>(i) + 1,
                         kv::LockMode::kReadCommitted);
    if (!out.ok()) return out.status();
    hint_cache_.Put(components, i, parent, out->inode.id, hint_epoch, out->inode.is_dir);
    chain.push_back(std::move(out->inode));
  }
  return hops::Status::Ok();
}

hops::Result<Namenode::Resolved> Namenode::ResolveAndLock(
    kv::Txn& tx, const std::vector<std::string>& components, const LockSpec& spec) {
  Resolved r;
  r.components = components;
  r.chain.push_back(root_);
  r.chain_pvs.push_back(RootPartitionValue());
  // Epoch snapshot BEFORE the first database read: any invalidation that
  // lands after this point plants a barrier newer than the snapshot, so the
  // hints this resolution later Puts cannot resurrect invalidated state.
  r.hint_epoch = hint_cache_.epoch();
  const size_t n = components.size();
  if (n == 0) {
    r.target_exists = true;  // the root itself; immutable and never locked
    return r;
  }

  // --- Interior components [0 .. n-2], read-committed -----------------------
  // On a full hint-cache hit the target rides in the same batch with the
  // lock phase's mode, so a cached path resolves *and locks* in a single
  // round trip (paper §5.1/§6.3). Parent-locking mutations keep the
  // separate two-step lock phase (parent before target, in path order).
  bool interiors_ok = n == 1;
  Inode batched_target;
  uint64_t batched_target_pv = 0;
  bool target_from_batch = false;
  bool had_target_hint = false;
  if (!interiors_ok) {
    auto hints = hint_cache_.LookupChain(components).hints;
    had_target_hint = hints.size() >= n;
    bool try_target = had_target_hint && !spec.lock_parent;
    if (hints.size() >= n - 1) {
      // Single batched primary-key read for the whole interior (1 round trip
      // instead of N-1), plus the target when its hint is cached too.
      kv::ReadBatch batch;
      std::vector<uint64_t> pvs;
      const size_t batched = try_target ? n : n - 1;
      pvs.reserve(batched);
      for (size_t i = 0; i < batched; ++i) {
        InodeId parent = i == 0 ? kRootInode : hints[i - 1].inode_id;
        uint64_t pv = InodePv(static_cast<int>(i) + 1, parent, components[i]);
        kv::LockMode mode =
            i + 1 == n ? spec.target_mode : kv::LockMode::kReadCommitted;
        batch.Get(schema_->inodes, InodeKey(parent, components[i]), mode, pv);
        pvs.push_back(pv);
      }
      HOPS_RETURN_IF_ERROR(tx.Execute(batch));
      interiors_ok = true;
      InodeId expect_parent = kRootInode;
      for (size_t i = 0; i + 1 < n; ++i) {
        const auto& slot = batch.row(i);
        if (!slot.has_value()) {
          interiors_ok = false;  // stale hint
          break;
        }
        Inode inode = InodeFromRow(*slot);
        if (inode.parent_id != expect_parent) {
          interiors_ok = false;  // hint chain broken by a concurrent move
          break;
        }
        expect_parent = inode.id;
        r.chain.push_back(std::move(inode));
        r.chain_pvs.push_back(pvs[i]);
      }
      if (interiors_ok && try_target && batch.row(n - 1).has_value()) {
        Inode inode = InodeFromRow(*batch.row(n - 1));
        if (inode.parent_id == expect_parent) {
          batched_target = std::move(inode);
          batched_target_pv = pvs[n - 1];
          target_from_batch = true;
        }
        // A mismatched parent means the hint was stale; the ordinary target
        // read below retries both partition rules.
      }
      if (try_target && !target_from_batch &&
          spec.target_mode != kv::LockMode::kReadCommitted) {
        // The batch locked the target key derived from an (evidently stale)
        // hint; drop that lock before falling back so an unrelated live row
        // is not pinned for the rest of the transaction.
        tx.UnlockRow(schema_->inodes,
                     InodeKey(hints[n - 2].inode_id, components[n - 1]), pvs[n - 1]);
      }
      if (!interiors_ok) {
        r.chain.resize(1);
        r.chain_pvs.resize(1);
      }
    }
    if (!interiors_ok) {
      // Fall back to recursive resolution, repairing the cache (§5.1.1).
      hops::Status st = ResolveSuffix(tx, components, 0, r.chain, r.hint_epoch);
      if (!st.ok()) return st;
      r.chain_pvs.resize(1);
      for (size_t i = 0; i + 1 < n; ++i) {
        r.chain_pvs.push_back(
            InodePv(static_cast<int>(i) + 1, r.chain[i].id, components[i]));
      }
      interiors_ok = true;
    }
    // Interior sanity + subtree-lock checks.
    for (size_t i = 1; i < r.chain.size(); ++i) {
      if (!r.chain[i].is_dir) return hops::Status::NotDirectory(components[i - 1]);
      HOPS_RETURN_IF_ERROR(CheckSubtreeLock(tx, r.chain[i], r.chain_pvs[i]));
    }
  }

  // --- Lock phase: parent, then target, in path (total) order ---------------
  if (spec.lock_parent && n >= 2) {
    // Re-read the parent with an exclusive lock; the RC copy may be stale.
    Inode& rc_parent = r.chain[n - 1];
    auto locked = ReadInode(tx, rc_parent.parent_id, rc_parent.name,
                            static_cast<int>(n) - 1, kv::LockMode::kExclusive);
    if (!locked.ok()) {
      if (locked.status().code() == hops::StatusCode::kNotFound) {
        return hops::Status::TxAborted("parent vanished during resolution");
      }
      return locked.status();
    }
    if (locked->inode.id != rc_parent.id) {
      return hops::Status::TxAborted("parent replaced during resolution");
    }
    HOPS_RETURN_IF_ERROR(CheckSubtreeLock(tx, locked->inode, locked->pv));
    r.chain[n - 1] = std::move(locked->inode);
    r.chain_pvs[n - 1] = locked->pv;
  }

  Inode& parent = r.chain[n - 1];
  if (!parent.is_dir) return hops::Status::NotDirectory(parent.name);
  hops::Result<ReadInodeOut> target =
      target_from_batch
          ? hops::Result<ReadInodeOut>(
                ReadInodeOut{std::move(batched_target), batched_target_pv})
          : ReadInode(tx, parent.id, components[n - 1], static_cast<int>(n),
                      spec.target_mode);
  if (target.ok()) {
    HOPS_RETURN_IF_ERROR(CheckSubtreeLock(tx, target->inode, target->pv));
    hint_cache_.Put(components, n - 1, parent.id, target->inode.id, r.hint_epoch,
                    target->inode.is_dir);
    r.chain.push_back(std::move(target->inode));
    r.chain_pvs.push_back(target->pv);
    r.target_exists = true;
    r.target_locked_in_batch = target_from_batch;
  } else if (target.status().code() != hops::StatusCode::kNotFound) {
    return target.status();
  } else {
    // Depth-1 paths skip the hint lookup above entirely; probe so their
    // dead hints are evicted too (they would otherwise keep feeding the
    // speculative getBlockLocations rider a dead key).
    bool stale_target_hint = had_target_hint;
    if (!stale_target_hint && n == 1) {
      stale_target_hint = !hint_cache_.PeekChain(components).hints.empty();
    }
    if (stale_target_hint) {
      // A target hint existed but the path turned out NotFound: the hint
      // points at a dead key. Evict it (and any descendants hanging off the
      // dead inode) so the next resolution doesn't re-lock the same dead
      // slot and fall back all over again. Adopting the planted barrier's
      // epoch keeps THIS operation's later puts admissible (it proved the
      // prefix dead under the slot lock; e.g. Create caches the inode it
      // inserts) while still rejecting anything older or concurrent.
      r.hint_epoch = hint_cache_.InvalidatePrefix(JoinPath(components));
    }
    if (spec.target_must_exist) {
      return hops::Status::NotFound(JoinPath(components) + " does not exist");
    }
    // The key lock taken by the failed locked read guards the insert slot.
    r.target_exists = false;
  }

  // For mutations, re-validate the ancestor chain *after* the locks are
  // held: the earlier read-committed copies may predate a subtree
  // operation's phase-1 flag. Combined with the quiesce scan's
  // take-and-release locks this closes the window where a mutation could
  // slip under an in-flight subtree operation unnoticed.
  if (spec.target_mode == kv::LockMode::kExclusive && n >= 2) {
    std::vector<kv::Key> keys;
    std::vector<uint64_t> pvs;
    for (size_t i = 0; i + 1 < n; ++i) {
      keys.push_back(InodeKey(r.chain[i].id, components[i]));
      pvs.push_back(r.chain_pvs[i + 1]);
    }
    auto fresh = tx.BatchRead(schema_->inodes, keys, kv::LockMode::kReadCommitted, &pvs);
    if (!fresh.ok()) return fresh.status();
    for (size_t i = 0; i + 1 < n; ++i) {
      const auto& slot = (*fresh)[i];
      if (!slot.has_value()) {
        return hops::Status::TxAborted("ancestor vanished during the lock phase");
      }
      Inode current = InodeFromRow(*slot);
      if (current.id != r.chain[i + 1].id) {
        return hops::Status::TxAborted("ancestor replaced during the lock phase");
      }
      HOPS_RETURN_IF_ERROR(CheckSubtreeLock(tx, current, r.chain_pvs[i + 1]));
    }
  }
  return r;
}

// --- Permissions ---------------------------------------------------------------

hops::Status Namenode::CheckAccess(const Inode& inode, const UserContext& user,
                                   int want) const {
  if (user.superuser) return hops::Status::Ok();
  int bits = user.user == inode.owner ? (inode.perm >> 6) & 7 : inode.perm & 7;
  if ((bits & want) != want) {
    return hops::Status::PermissionDenied("user=" + user.user + " inode=" + inode.name);
  }
  return hops::Status::Ok();
}

hops::Status Namenode::CheckPathTraversal(const Resolved& r, const UserContext& user) const {
  if (user.superuser) return hops::Status::Ok();
  // Every ancestor directory needs the execute bit.
  size_t ancestors = r.chain.size() - (r.target_exists ? 1 : 0);
  for (size_t i = 0; i < ancestors; ++i) {
    HOPS_RETURN_IF_ERROR(CheckAccess(r.chain[i], user, kExec));
  }
  return hops::Status::Ok();
}

// --- Quota bookkeeping -----------------------------------------------------------

hops::Status Namenode::UpdateQuotaUsage(kv::Txn& tx,
                                        const std::vector<Inode>& ancestors,
                                        int64_t ns_delta, int64_t ss_delta, bool enforce) {
  if (ns_delta == 0 && ss_delta == 0) return hops::Status::Ok();
  // Lock and read every quota row along the chain in one batched round trip
  // (the batch's global lock order keeps concurrent quota updaters
  // deadlock-free), then stage the adjustments in one write batch.
  kv::ReadBatch reads;
  std::vector<const Inode*> quota_dirs;
  for (const Inode& dir : ancestors) {
    if (!dir.has_quota) continue;
    reads.Get(schema_->quotas, {dir.id}, kv::LockMode::kExclusive);
    quota_dirs.push_back(&dir);
  }
  if (quota_dirs.empty()) return hops::Status::Ok();
  HOPS_RETURN_IF_ERROR(tx.Execute(reads));
  kv::WriteBatch writes;
  for (size_t i = 0; i < quota_dirs.size(); ++i) {
    if (!reads.row(i).has_value()) continue;  // racing clear
    DirectoryQuota q = QuotaFromRow(*reads.row(i));
    q.ns_used += ns_delta;
    q.ss_used += ss_delta;
    if (enforce) {
      if (q.ns_quota >= 0 && q.ns_used > q.ns_quota) {
        return hops::Status::QuotaExceeded("namespace quota of " + quota_dirs[i]->name);
      }
      if (q.ss_quota >= 0 && q.ss_used > q.ss_quota) {
        return hops::Status::QuotaExceeded("storage quota of " + quota_dirs[i]->name);
      }
    }
    writes.Update(schema_->quotas, ToRow(q));
  }
  return tx.Execute(writes);
}

// --- Children listing --------------------------------------------------------

hops::Result<std::vector<kv::Row>> Namenode::ScanChildren(kv::Txn& tx,
                                                           const Inode& dir, int dir_depth,
                                                           const kv::ScanOptions& opts) {
  if (ChildrenArePruned(dir_depth, config_->random_partition_depth)) {
    // All children share the parent's shard: one partition-pruned scan.
    return tx.Ppis(schema_->inodes, {dir.id}, opts, ChildrenPartitionValue(dir.id));
  }
  // Top of the tree: children are spread pseudo-randomly; pay an index scan
  // over all shards (§4.2.1's trade-off).
  return tx.IndexScan(schema_->inodes, {dir.id}, opts);
}

// --- Operations ---------------------------------------------------------------

hops::Status Namenode::Mkdirs(const std::string& path, const UserContext& user) {
  HOPS_RETURN_IF_ERROR(CheckAlive());
  HOPS_ASSIGN_OR_RETURN(components, SplitPath(path));
  if (UseAsyncCommit()) return MkdirsAsync(components, user);
  return MkdirsSync(components, user);
}

hops::Status Namenode::MkdirsSync(const std::vector<std::string>& components,
                                  const UserContext& user) {
  // Create missing directories top-down, one transaction per level (each
  // level is an ordinary "mkdir" inode operation).
  for (size_t depth = 1; depth <= components.size(); ++depth) {
    std::vector<std::string> prefix(components.begin(), components.begin() + depth);
    uint64_t hint_pv = InodePv(static_cast<int>(depth), 0, prefix.back());
    hops::Status st = RunTx(
        kv::TxHint{schema_->inodes, hint_pv}, [&](kv::Txn& tx) -> hops::Status {
          LockSpec spec;
          spec.target_mode = kv::LockMode::kExclusive;
          spec.lock_parent = true;
          spec.target_must_exist = false;
          HOPS_ASSIGN_OR_RETURN(r, ResolveAndLock(tx, prefix, spec));
          HOPS_RETURN_IF_ERROR(CheckPathTraversal(r, user));
          if (r.target_exists) {
            return r.target().is_dir ? hops::Status::Ok()
                                     : hops::Status::NotDirectory(r.target().name);
          }
          Inode& parent = r.parent_of_target();
          HOPS_RETURN_IF_ERROR(CheckAccess(parent, user, kWrite));
          HOPS_ASSIGN_OR_RETURN(id, inode_ids_.Next());
          Inode dir;
          dir.parent_id = parent.id;
          dir.name = prefix.back();
          dir.id = id;
          dir.is_dir = true;
          dir.owner = user.user;
          dir.group = "hdfs";
          dir.mtime = NowMicros();
          std::vector<Inode> ancestors(r.chain.begin(), r.chain.end());
          HOPS_RETURN_IF_ERROR(UpdateQuotaUsage(tx, ancestors, +1, 0, /*enforce=*/true));
          HOPS_RETURN_IF_ERROR(tx.Insert(schema_->inodes, ToRow(dir),
                                         InodePv(static_cast<int>(depth), parent.id,
                                                 dir.name)));
          if (parent.id != kRootInode) {
            parent.mtime = NowMicros();
            HOPS_RETURN_IF_ERROR(
                tx.Update(schema_->inodes, ToRow(parent), r.parent_pv()));
          }
          hint_cache_.Put(prefix, depth - 1, parent.id, id, r.hint_epoch, true);
          return hops::Status::Ok();
        });
    if (!st.ok()) return st;
  }
  return hops::Status::Ok();
}

hops::Status Namenode::Create(const std::string& path, const std::string& client_name,
                              const UserContext& user) {
  HOPS_RETURN_IF_ERROR(CheckAlive());
  HOPS_ASSIGN_OR_RETURN(components, SplitPath(path));
  if (components.empty()) return hops::Status::IsDirectory("/");
  if (UseAsyncCommit()) return CreateAsync(components, client_name, user);
  return CreateSync(components, client_name, user);
}

hops::Status Namenode::CreateSync(const std::vector<std::string>& components,
                                  const std::string& client_name, const UserContext& user) {
  const std::string path = JoinPath(components);
  uint64_t hint_pv = InodePv(static_cast<int>(components.size()), 0, components.back());
  return RunTx(kv::TxHint{schema_->inodes, hint_pv},
               [&](kv::Txn& tx) -> hops::Status {
                 LockSpec spec;
                 spec.target_mode = kv::LockMode::kExclusive;
                 spec.lock_parent = true;
                 spec.target_must_exist = false;
                 HOPS_ASSIGN_OR_RETURN(r, ResolveAndLock(tx, components, spec));
                 HOPS_RETURN_IF_ERROR(CheckPathTraversal(r, user));
                 if (r.target_exists) {
                   if (r.target().is_dir) return hops::Status::IsDirectory(path);
                   return hops::Status::AlreadyExists(path);
                 }
                 Inode& parent = r.parent_of_target();
                 HOPS_RETURN_IF_ERROR(CheckAccess(parent, user, kWrite));
                 HOPS_ASSIGN_OR_RETURN(id, inode_ids_.Next());
                 Inode file;
                 file.parent_id = parent.id;
                 file.name = components.back();
                 file.id = id;
                 file.is_dir = false;
                 file.owner = user.user;
                 file.group = "hdfs";
                 file.mtime = NowMicros();
                 file.replication = config_->default_replication;
                 file.under_construction = true;
                 std::vector<Inode> ancestors(r.chain.begin(), r.chain.end());
                 HOPS_RETURN_IF_ERROR(
                     UpdateQuotaUsage(tx, ancestors, +1, 0, /*enforce=*/true));
                 HOPS_RETURN_IF_ERROR(
                     tx.Insert(schema_->inodes, ToRow(file),
                               InodePv(r.target_depth(), parent.id, file.name)));
                 Lease lease{id, client_name, NowMicros()};
                 HOPS_RETURN_IF_ERROR(tx.Insert(schema_->leases, ToRow(lease)));
                 if (parent.id != kRootInode) {
                   parent.mtime = NowMicros();
                   HOPS_RETURN_IF_ERROR(
                       tx.Update(schema_->inodes, ToRow(parent), r.parent_pv()));
                 }
                 hint_cache_.Put(components, components.size() - 1, parent.id, id,
                                 r.hint_epoch, false);
                 return hops::Status::Ok();
               });
}

// --- Asynchronous metadata commits (ordered intent log + apply stage) --------

hops::Status Namenode::MkdirsAsync(const std::vector<std::string>& components,
                                   const UserContext& user) {
  if (components.empty()) return hops::Status::Ok();
  const int64_t start = MonotonicMicros();
  const size_t n = components.size();
  // Phase 1 -- walk the path against acknowledged state: a pending entry
  // decides a level without touching the database (everything below an
  // unapplied directory cannot exist committed), the committed walk covers
  // the rest with read-committed probes. `known` = leading levels that
  // exist, acknowledged or committed.
  size_t known = 0;
  bool pending_mode = false;
  bool resolved_fast = false;
  // Fast path -- nothing pending on the path: one hint-batched resolution
  // settles the whole walk when at most the leaf is missing (the common
  // mkdirs). A deeper missing interior falls back to the per-level walk,
  // which is the only way to learn how much of the chain exists.
  if (!intents_->HasPendingPrefix(JoinPath(components))) {
    hops::Status fast = RunTx(
        std::nullopt,
        [&](kv::Txn& tx) -> hops::Status {
          LockSpec spec;
          spec.target_mode = kv::LockMode::kReadCommitted;
          spec.lock_parent = false;
          spec.target_must_exist = false;
          HOPS_ASSIGN_OR_RETURN(r, ResolveAndLock(tx, components, spec));
          HOPS_RETURN_IF_ERROR(CheckPathTraversal(r, user));
          if (r.target_exists) {
            if (!r.target().is_dir) return hops::Status::NotDirectory(components.back());
            known = n;
            return hops::Status::Ok();
          }
          known = n - 1;
          return CheckAccess(r.parent_of_target(), user, kWrite);
        },
        /*inline_read=*/true);
    if (fast.ok()) {
      resolved_fast = true;
    } else if (fast.code() != hops::StatusCode::kNotFound) {
      return fast;
    }
  }
  if (!resolved_fast) {
    // Committed state first at every level: a pending mkdirs entry may be
    // an idempotent duplicate of an already-committed directory, so only a
    // pending dir with NO committed row stops the walk in pending mode
    // (see the same reasoning in CreateAsync's slow path).
    std::vector<Inode> chain;
    hops::Status st = RunTx(
        std::nullopt,
        [&](kv::Txn& tx) -> hops::Status {
          known = 0;
          pending_mode = false;
          chain.clear();
          chain.push_back(root_);
          std::string prefix;
          for (size_t i = 0; i < n; ++i) {
            prefix += "/" + components[i];
            auto p = intents_->LookupPending(prefix);
            if (p && !p->is_dir) return hops::Status::NotDirectory(prefix);
            auto out = ReadInode(tx, chain.back().id, components[i], static_cast<int>(i) + 1,
                                 kv::LockMode::kReadCommitted);
            if (out.ok()) {
              if (!out->inode.is_dir) return hops::Status::NotDirectory(prefix);
              HOPS_RETURN_IF_ERROR(CheckAccess(chain.back(), user, kExec));
              chain.push_back(std::move(out->inode));
              known = i + 1;
              continue;
            }
            if (out.status().code() != hops::StatusCode::kNotFound) return out.status();
            if (p) {
              known = i + 1;
              pending_mode = true;
            }
            return hops::Status::Ok();
          }
          return hops::Status::Ok();
        },
        /*inline_read=*/true);
    if (!st.ok()) return st;
    if (known < n && !pending_mode) {
      // Creating under a committed parent: the write check runs here, on the
      // acknowledged path (the apply re-checks under locks either way).
      HOPS_RETURN_IF_ERROR(CheckAccess(chain.back(), user, kWrite));
    }
  }
  // Phase 2 -- reserve + append one intent per missing level, top-down, so
  // the applier (FIFO, ancestor-related intents never batched together)
  // materializes parents before children.
  bool submitted = false;
  std::string prefix;
  for (size_t i = 0; i < n; ++i) {
    prefix += "/" + components[i];
    if (i < known) continue;
    if (auto p = intents_->LookupPending(prefix)) {
      // Acknowledged by a concurrent mkdirs since the walk; idempotent.
      if (!p->is_dir) return hops::Status::NotDirectory(prefix);
      continue;
    }
    HOPS_RETURN_IF_ERROR(intents_->ReserveDir(prefix, user.user));
    IntentRecord rec;
    rec.op = IntentOp::kMkdirs;
    rec.path = prefix;
    rec.user = user.user;
    rec.superuser = user.superuser;
    HOPS_RETURN_IF_ERROR(intents_->Submit(std::move(rec)));  // releases on failure
    submitted = true;
  }
  if (submitted) {
    intents_->RecordAck(static_cast<uint64_t>(MonotonicMicros() - start));
  }
  return hops::Status::Ok();
}

hops::Status Namenode::CreateAsync(const std::vector<std::string>& components,
                                   const std::string& client_name, const UserContext& user) {
  const int64_t start = MonotonicMicros();
  const size_t n = components.size();
  const std::string target = JoinPath(components);
  // Validation FIRST, reservation second: reserving up front would make a
  // racing second create fail with AlreadyExists even when this one is
  // about to fail validation.
  if (auto p = intents_->LookupPending(target)) {
    return p->is_dir ? hops::Status::IsDirectory(target)
                     : hops::Status::AlreadyExists(target);
  }
  // Fast path -- nothing pending anywhere on the path, so committed state is
  // the whole truth: validate with the same hint-batched resolution the
  // sync path uses (one round trip on a warm cache, and the Puts it makes
  // pre-warm the applier's own resolution).
  bool validated = false;
  if (!intents_->HasPendingPrefix(target)) {
    uint64_t hint_pv = InodePv(static_cast<int>(n), 0, components.back());
    hops::Status st = RunTx(
        kv::TxHint{schema_->inodes, hint_pv},
        [&](kv::Txn& tx) -> hops::Status {
          LockSpec spec;
          spec.target_mode = kv::LockMode::kReadCommitted;
          spec.lock_parent = false;
          spec.target_must_exist = false;
          HOPS_ASSIGN_OR_RETURN(r, ResolveAndLock(tx, components, spec));
          HOPS_RETURN_IF_ERROR(CheckPathTraversal(r, user));
          if (r.target_exists) {
            return r.target().is_dir ? hops::Status::IsDirectory(target)
                                     : hops::Status::AlreadyExists(target);
          }
          return CheckAccess(r.parent_of_target(), user, kWrite);
        },
        /*inline_read=*/true);
    if (st.ok()) {
      validated = true;
    } else if (st.code() != hops::StatusCode::kNotFound ||
               !intents_->HasPendingPrefix(target)) {
      return st;
    }
    // else: an intent was acknowledged on this path during the resolution,
    // so the committed view is incomplete -- re-validate on the slow path.
  }
  if (!validated) {
    // Slow path -- something is pending on the path. Committed state is
    // probed FIRST at every level: a pending mkdirs entry may be an
    // idempotent duplicate of a directory that is already committed (via
    // another namenode or an earlier op), so "pending" alone must never
    // shortcut the walk. Only a pending dir with NO committed row governs
    // the chain below it (an uncommitted parent cannot have committed
    // children). If that chain applies mid-walk the pending index goes
    // silent while our transaction already read the older state; that shows
    // up as a miss below an uncommitted dir, and the walk restarts against
    // the now-committed rows.
    hops::Status st;
    for (int restart = 0;; ++restart) {
      if (restart == 64) return hops::Status::TxAborted("create validation kept racing applies");
      bool applied_mid_walk = false;
      st = RunTx(std::nullopt, [&](kv::Txn& tx) -> hops::Status {
        applied_mid_walk = false;
        std::vector<Inode> chain;
        chain.push_back(root_);
        std::string prefix;
        bool below_uncommitted = false;
        for (size_t i = 0; i + 1 < n; ++i) {
          std::string parent_prefix = prefix;
          prefix += "/" + components[i];
          auto p = intents_->LookupPending(prefix);
          if (p && !p->is_dir) return hops::Status::NotDirectory(prefix);
          if (below_uncommitted) {
            if (p) continue;  // pending dir, still governed by the index
            if (intents_->LookupPending(parent_prefix)) {
              // Parent is still pending-and-uncommitted, so this level can
              // be neither committed nor (as just checked) pending.
              return hops::Status::NotFound(prefix + " does not exist");
            }
            applied_mid_walk = true;
            return hops::Status::Ok();
          }
          auto out = ReadInode(tx, chain.back().id, components[i], static_cast<int>(i) + 1,
                               kv::LockMode::kReadCommitted);
          if (out.ok()) {
            if (!out->inode.is_dir) return hops::Status::NotDirectory(prefix);
            HOPS_RETURN_IF_ERROR(CheckAccess(chain.back(), user, kExec));
            chain.push_back(std::move(out->inode));
            continue;
          }
          if (out.status().code() != hops::StatusCode::kNotFound) return out.status();
          if (p) {
            below_uncommitted = true;
            continue;
          }
          return hops::Status::NotFound(prefix + " does not exist");
        }
        if (below_uncommitted) return hops::Status::Ok();
        // Full committed parent chain: probe the target's committed row too.
        HOPS_RETURN_IF_ERROR(CheckAccess(chain.back(), user, kWrite));
        auto out = ReadInode(tx, chain.back().id, components[n - 1], static_cast<int>(n),
                             kv::LockMode::kReadCommitted);
        if (out.ok()) {
          return out->inode.is_dir ? hops::Status::IsDirectory(target)
                                   : hops::Status::AlreadyExists(target);
        }
        if (out.status().code() != hops::StatusCode::kNotFound) return out.status();
        return hops::Status::Ok();
      }, /*inline_read=*/true);
      if (!applied_mid_walk) break;
    }
    if (!st.ok()) return st;
  }
  // Reservation is the atomic conflict gate: two racing validated creates
  // of one path serialize here, the loser gets AlreadyExists.
  HOPS_RETURN_IF_ERROR(intents_->ReserveCreate(target, user.user));
  IntentRecord rec;
  rec.op = IntentOp::kCreate;
  rec.path = target;
  rec.client = client_name;
  rec.user = user.user;
  rec.superuser = user.superuser;
  HOPS_RETURN_IF_ERROR(intents_->Submit(std::move(rec)));
  intents_->RecordAck(static_cast<uint64_t>(MonotonicMicros() - start));
  return hops::Status::Ok();
}

hops::Status Namenode::SubmitSetattrIntent(IntentRecord rec, bool is_dir,
                                           const std::string& owner, int64_t start_micros) {
  intents_->ReserveTouch(rec.path, is_dir, owner);
  hops::Status st = intents_->Submit(std::move(rec));
  if (!st.ok()) return st;
  intents_->RecordAck(static_cast<uint64_t>(MonotonicMicros() - start_micros));
  return hops::Status::Ok();
}

hops::Status Namenode::ApplyIntent(const IntentRecord& rec) {
  IntentLog::ApplierScope scope;
  UserContext user{rec.user, rec.superuser};
  HOPS_ASSIGN_OR_RETURN(components, SplitPath(rec.path));
  switch (rec.op) {
    case IntentOp::kMkdirs:
      return MkdirsSync(components, user);
    case IntentOp::kCreate: {
      hops::Status st = CreateSync(components, rec.client, user);
      // At-least-once replay: a re-applied create finds the inode it made.
      if (st.code() == hops::StatusCode::kAlreadyExists) return hops::Status::Ok();
      return st;
    }
    case IntentOp::kSetPermission:
      return SetPermissionFileTx(components, rec.perm, user);
    case IntentOp::kSetOwner:
      return SetOwnerFileTx(components, rec.owner, rec.group, user);
  }
  return hops::Status::InvalidArgument("unknown intent op");
}

void Namenode::AdoptOrphanedIntents(bool include_self) {
  if (intents_ == nullptr || !alive_) return;
  std::vector<kv::Row> rows;
  {
    auto tx = db_->Begin(kv::TxHint{schema_->op_intents, static_cast<uint64_t>(id_safe())});
    auto scan = tx->FullTableScan(schema_->op_intents);
    if (!scan.ok()) {
      if (tx->active()) tx->Abort();
      return;  // next heartbeat retries
    }
    (void)tx->Commit();
    rows = std::move(*scan);
  }
  std::map<NamenodeId, std::vector<IntentRecord>> orphans;
  for (const auto& row : rows) {
    IntentRecord rec = IntentFromRow(row);
    // Skip our own partition (our applier owns it) and alive publishers
    // (their appliers are draining; the membership view must age a dead one
    // out before its log is adopted -- the same rule subtree-lock cleanup
    // follows). The resumed-identity start path passes include_self: the
    // previous incarnation's rows ARE ours to replay, and no client can
    // reach us yet so the applier owns nothing.
    if (rec.nn == id_safe()) {
      if (!include_self) continue;
    } else if (election_.IsNamenodeAlive(rec.nn)) {
      continue;
    }
    orphans[rec.nn].push_back(std::move(rec));
  }
  for (auto& [publisher, recs] : orphans) {
    // Per-publisher seq order is acknowledgment order; replay preserves it.
    std::sort(recs.begin(), recs.end(),
              [](const IntentRecord& a, const IntentRecord& b) { return a.seq < b.seq; });
    for (const IntentRecord& rec : recs) {
      hops::Status st;
      for (int attempt = 0; attempt < 8; ++attempt) {
        st = ApplyIntent(rec);
        if (!st.IsRetryableTx()) break;
      }
      if (st.code() == hops::StatusCode::kFailover) return;  // we died mid-sweep
      // A terminal failure still consumes the record: replaying it forever
      // would wedge the partition behind one poisoned intent.
      intents_adopted_.fetch_add(1, std::memory_order_relaxed);
    }
    // Consume the partition: delete the replayed rows, tolerating rows a
    // racing adopter already took. The publisher's intent_heads row is
    // deliberately LEFT BEHIND: deleting it would restart that id's seq at 1
    // if the "dead" namenode was merely stalled (or restarts under its old
    // id), and a reused seq can collide with the old incarnation's cleaner
    // deleting freshly acknowledged rows -- a lost ack. One inert two-column
    // row per retired id is the price of monotonic sequences.
    for (int attempt = 0; attempt < 8; ++attempt) {
      auto tx =
          db_->Begin(kv::TxHint{schema_->op_intents, static_cast<uint64_t>(publisher)});
      hops::Status st = hops::Status::Ok();
      for (const IntentRecord& rec : recs) {
        st = tx->Delete(schema_->op_intents, {rec.nn, rec.seq});
        if (st.code() == hops::StatusCode::kNotFound) st = hops::Status::Ok();
        if (!st.ok()) break;
      }
      if (st.ok()) st = tx->Commit();
      if (st.ok()) break;
      if (tx->active()) tx->Abort();
      if (!st.IsRetryableTx()) break;  // leaked rows re-adopt idempotently
    }
  }
}

hops::Result<LocatedBlock> Namenode::AddBlock(const std::string& path,
                                              const std::string& client_name,
                                              int64_t num_bytes, const UserContext& user) {
  HOPS_RETURN_IF_ERROR(CheckAlive());
  HOPS_ASSIGN_OR_RETURN(components, SplitPath(path));
  if (components.empty()) return hops::Status::IsDirectory("/");
  // The file may exist only as an acknowledged intent; block until it is
  // applied (read-your-writes for a create-then-write client).
  WaitForPendingIntents(JoinPath(components));
  LocatedBlock result;
  uint64_t hint_pv = InodePv(static_cast<int>(components.size()), 0, components.back());
  hops::Status st = RunTx(
      kv::TxHint{schema_->inodes, hint_pv}, [&](kv::Txn& tx) -> hops::Status {
        // Speculative fan-out (§5.1 hint reuse): the lease X-lock (slot 0)
        // and the blocks scan (slot 1) ride the resolution window, so a warm
        // addBlock costs one round-trip window before its write batch.
        SpeculativeRider rider = StageAddBlockFanout(tx, components);
        LockSpec spec;
        spec.target_mode = kv::LockMode::kExclusive;
        HOPS_ASSIGN_OR_RETURN(r, ResolveAndLock(tx, components, spec));
        HOPS_RETURN_IF_ERROR(CheckPathTraversal(r, user));
        Inode& file = r.target();
        if (file.is_dir) return hops::Status::IsDirectory(path);
        if (!file.under_construction) {
          return hops::Status::LeaseConflict(path + " is not under construction");
        }
        kv::ReadBatch lease_read;
        kv::ReadBatch block_fan;
        const std::optional<kv::Row>* lease_row = nullptr;
        const std::vector<kv::Row>* block_rows = nullptr;
        if (rider.Serveable(file.id, r.target_locked_in_batch)) {
          HOPS_RETURN_IF_ERROR(rider.pending.Wait());
          lease_row = &rider.batch->row(0);
          block_rows = &rider.batch->rows(1);
        } else {
          if (rider.pending.valid()) {
            const InodeId hinted = rider.hinted;
            rider.Discard();
            // Unlike the read-only riders this one locked what it read: a
            // stale hint leaves an X-lock on the wrong file's lease row.
            tx.UnlockRow(schema_->leases, {hinted});
          }
          // The lease lock and the block fan-out are independent; the two
          // batches pipeline into one overlapped round-trip window instead
          // of chaining two trips.
          size_t lease_slot =
              lease_read.Get(schema_->leases, {file.id}, kv::LockMode::kExclusive);
          auto lease_pending = tx.ExecuteAsync(lease_read);
          // File-inode-related data lives in the file's shard: pruned scan.
          size_t blocks_slot = block_fan.Scan(schema_->blocks, {file.id});
          auto blocks_pending = tx.ExecuteAsync(block_fan);
          HOPS_RETURN_IF_ERROR(lease_pending.Wait());
          HOPS_RETURN_IF_ERROR(blocks_pending.Wait());
          lease_row = &lease_read.row(lease_slot);
          block_rows = &block_fan.rows(blocks_slot);
        }
        if (!lease_row->has_value()) {
          return hops::Status::NotFound("no lease on " + path);
        }
        if (LeaseFromRow(**lease_row).holder != client_name) {
          return hops::Status::LeaseConflict(path + " is held by another client");
        }
        // Commit the previous block (the client finished writing it) and
        // stage the new block + lookup + replica-under-construction rows in
        // one write batch.
        kv::WriteBatch writes;
        int64_t next_index = 0;
        for (const auto& row : *block_rows) {
          Block b = BlockFromRow(row);
          next_index = std::max(next_index, b.block_index + 1);
          if (b.state == BlockState::kUnderConstruction) {
            b.state = BlockState::kComplete;
            writes.Update(schema_->blocks, ToRow(b));
          }
        }
        HOPS_ASSIGN_OR_RETURN(block_id, block_ids_.Next());
        Block b;
        b.inode_id = file.id;
        b.block_id = block_id;
        b.block_index = next_index;
        b.state = BlockState::kUnderConstruction;
        b.num_bytes = num_bytes;
        b.replication = file.replication;
        writes.Insert(schema_->blocks, ToRow(b));
        writes.Insert(schema_->block_lookup, kv::Row{block_id, file.id});
        std::vector<DatanodeId> targets;
        {
          std::lock_guard<std::mutex> lock(dn_picker_mu_);
          if (dn_picker_) targets = dn_picker_(static_cast<int>(file.replication));
        }
        for (DatanodeId dn : targets) {
          Replica ruc{file.id, block_id, dn, ReplicaState::kFinalized};
          writes.Insert(schema_->ruc, ToRow(ruc));
        }
        HOPS_RETURN_IF_ERROR(tx.Execute(writes));
        std::vector<Inode> ancestors(r.chain.begin(), r.chain.end() - 1);
        HOPS_RETURN_IF_ERROR(UpdateQuotaUsage(tx, ancestors, 0,
                                              num_bytes * file.replication,
                                              /*enforce=*/true));
        file.size += num_bytes;
        file.mtime = NowMicros();
        HOPS_RETURN_IF_ERROR(tx.Update(schema_->inodes, ToRow(file), r.target_pv()));
        result = LocatedBlock{block_id, next_index, num_bytes, std::move(targets)};
        return hops::Status::Ok();
      });
  if (!st.ok()) return st;
  return result;
}

hops::Status Namenode::CompleteFile(const std::string& path, const std::string& client_name,
                                    const UserContext& user) {
  HOPS_RETURN_IF_ERROR(CheckAlive());
  HOPS_ASSIGN_OR_RETURN(components, SplitPath(path));
  if (components.empty()) return hops::Status::IsDirectory("/");
  WaitForPendingIntents(JoinPath(components));
  uint64_t hint_pv = InodePv(static_cast<int>(components.size()), 0, components.back());
  return RunTx(
      kv::TxHint{schema_->inodes, hint_pv}, [&](kv::Txn& tx) -> hops::Status {
        LockSpec spec;
        spec.target_mode = kv::LockMode::kExclusive;
        HOPS_ASSIGN_OR_RETURN(r, ResolveAndLock(tx, components, spec));
        HOPS_RETURN_IF_ERROR(CheckPathTraversal(r, user));
        Inode& file = r.target();
        if (file.is_dir) return hops::Status::IsDirectory(path);
        if (!file.under_construction) return hops::Status::Ok();  // idempotent
        // The lease lock and the block + RUC fan-out are independent; both
        // batches pipeline into one overlapped round-trip window.
        kv::ReadBatch lease_read;
        size_t lease_slot =
            lease_read.Get(schema_->leases, {file.id}, kv::LockMode::kExclusive);
        auto lease_pending = tx.ExecuteAsync(lease_read);
        kv::ReadBatch fanout;
        size_t block_slot = fanout.Scan(schema_->blocks, {file.id});
        size_t ruc_slot = fanout.Scan(schema_->ruc, {file.id});
        auto fanout_pending = tx.ExecuteAsync(fanout);
        HOPS_RETURN_IF_ERROR(lease_pending.Wait());
        HOPS_RETURN_IF_ERROR(fanout_pending.Wait());
        const std::optional<kv::Row>& lease_row = lease_read.row(lease_slot);
        if (lease_row.has_value() && LeaseFromRow(*lease_row).holder != client_name) {
          return hops::Status::LeaseConflict(path + " is held by another client");
        }
        // ... and one batch staging every state flip.
        kv::WriteBatch writes;
        for (const auto& row : fanout.rows(block_slot)) {
          Block b = BlockFromRow(row);
          if (b.state == BlockState::kUnderConstruction) {
            b.state = BlockState::kComplete;
            writes.Update(schema_->blocks, ToRow(b));
          }
        }
        // Any replicas still marked under-construction are finalized now
        // (datanodes that already called BlockReceived consumed their RUC
        // rows earlier; the upsert absorbs the duplicate).
        for (const auto& row : fanout.rows(ruc_slot)) {
          Replica rep = ReplicaFromRow(row);
          writes.Delete(schema_->ruc, {rep.inode_id, rep.block_id, rep.datanode_id});
          writes.Write(schema_->replicas, ToRow(rep));
        }
        if (lease_row.has_value()) {
          writes.Delete(schema_->leases, {file.id});
        }
        file.under_construction = false;
        file.mtime = NowMicros();
        writes.Update(schema_->inodes, ToRow(file), r.target_pv());
        return tx.Execute(writes);
      });
}

hops::Status Namenode::Append(const std::string& path, const std::string& client_name,
                              const UserContext& user) {
  HOPS_RETURN_IF_ERROR(CheckAlive());
  HOPS_ASSIGN_OR_RETURN(components, SplitPath(path));
  if (components.empty()) return hops::Status::IsDirectory("/");
  WaitForPendingIntents(JoinPath(components));
  uint64_t hint_pv = InodePv(static_cast<int>(components.size()), 0, components.back());
  return RunTx(kv::TxHint{schema_->inodes, hint_pv},
               [&](kv::Txn& tx) -> hops::Status {
                 LockSpec spec;
                 spec.target_mode = kv::LockMode::kExclusive;
                 HOPS_ASSIGN_OR_RETURN(r, ResolveAndLock(tx, components, spec));
                 HOPS_RETURN_IF_ERROR(CheckPathTraversal(r, user));
                 Inode& file = r.target();
                 if (file.is_dir) return hops::Status::IsDirectory(path);
                 HOPS_RETURN_IF_ERROR(CheckAccess(file, user, kWrite));
                 if (file.under_construction) {
                   return hops::Status::LeaseConflict(path + " is already open");
                 }
                 file.under_construction = true;
                 Lease lease{file.id, client_name, NowMicros()};
                 HOPS_RETURN_IF_ERROR(tx.Insert(schema_->leases, ToRow(lease)));
                 return tx.Update(schema_->inodes, ToRow(file), r.target_pv());
               });
}

hops::Result<std::vector<LocatedBlock>> Namenode::GetBlockLocations(
    const std::string& path, const UserContext& user) {
  HOPS_RETURN_IF_ERROR(CheckAlive());
  HOPS_ASSIGN_OR_RETURN(components, SplitPath(path));
  if (components.empty()) return hops::Status::IsDirectory("/");
  WaitForPendingIntents(JoinPath(components));
  std::vector<LocatedBlock> blocks;
  uint64_t hint_pv = InodePv(static_cast<int>(components.size()), 0, components.back());
  hops::Status st = RunTx(
      kv::TxHint{schema_->inodes, hint_pv}, [&](kv::Txn& tx) -> hops::Status {
        blocks.clear();
        // Speculative fan-out (§5.1 hint reuse): the block + replica scans
        // go in flight before resolution and share its window -- a warm
        // read costs one round-trip window instead of two (slot 0 = blocks,
        // slot 1 = replicas).
        SpeculativeRider rider = StageSpeculativeFanout(
            tx, components, {schema_->blocks, schema_->replicas});
        LockSpec spec;
        spec.target_mode = kv::LockMode::kShared;
        HOPS_ASSIGN_OR_RETURN(r, ResolveAndLock(tx, components, spec));
        HOPS_RETURN_IF_ERROR(CheckPathTraversal(r, user));
        Inode& file = r.target();
        if (file.is_dir) return hops::Status::IsDirectory(path);
        HOPS_RETURN_IF_ERROR(CheckAccess(file, user, kRead));
        // Both scans are pruned to the file's shard (Figure 3) and batched
        // into a single round trip: the block + replica fan-out of a read.
        kv::ReadBatch fanout;
        const std::vector<kv::Row>* block_rows = nullptr;
        const std::vector<kv::Row>* replica_rows = nullptr;
        if (rider.Serveable(file.id, r.target_locked_in_batch)) {
          HOPS_RETURN_IF_ERROR(rider.pending.Wait());
          block_rows = &rider.batch->rows(0);
          replica_rows = &rider.batch->rows(1);
        } else {
          rider.Discard();  // re-read under the confirmed id + lock
          size_t block_slot = fanout.Scan(schema_->blocks, {file.id});
          size_t replica_slot = fanout.Scan(schema_->replicas, {file.id});
          HOPS_RETURN_IF_ERROR(tx.Execute(fanout));
          block_rows = &fanout.rows(block_slot);
          replica_rows = &fanout.rows(replica_slot);
        }
        for (const auto& row : *block_rows) {
          Block b = BlockFromRow(row);
          LocatedBlock lb{b.block_id, b.block_index, b.num_bytes, {}};
          for (const auto& rep_row : *replica_rows) {
            Replica rep = ReplicaFromRow(rep_row);
            if (rep.block_id == b.block_id && rep.state == ReplicaState::kFinalized) {
              lb.locations.push_back(rep.datanode_id);
            }
          }
          blocks.push_back(std::move(lb));
        }
        std::sort(blocks.begin(), blocks.end(),
                  [](const LocatedBlock& a, const LocatedBlock& b) {
                    return a.block_index < b.block_index;
                  });
        return hops::Status::Ok();
      });
  if (!st.ok()) return st;
  return blocks;
}

hops::Result<FileStatus> Namenode::GetFileInfo(const std::string& path,
                                               const UserContext& user) {
  HOPS_RETURN_IF_ERROR(CheckAlive());
  HOPS_ASSIGN_OR_RETURN(components, SplitPath(path));
  if (components.empty()) return StatusFromInode(root_, "/");
  WaitForPendingIntents(JoinPath(components));
  FileStatus status;
  uint64_t hint_pv = InodePv(static_cast<int>(components.size()), 0, components.back());
  hops::Status st =
      RunTx(kv::TxHint{schema_->inodes, hint_pv}, [&](kv::Txn& tx) -> hops::Status {
        // Speculative fan-out (the getBlockLocations pattern): the
        // block-count scan rides the resolution window, so a warm stat of a
        // file costs one overlapped round-trip window instead of two. A
        // directory target simply discards the rider.
        SpeculativeRider rider =
            StageSpeculativeFanout(tx, components, {schema_->blocks});
        LockSpec spec;
        spec.target_mode = kv::LockMode::kShared;
        HOPS_ASSIGN_OR_RETURN(r, ResolveAndLock(tx, components, spec));
        HOPS_RETURN_IF_ERROR(CheckPathTraversal(r, user));
        status = StatusFromInode(r.target(), JoinPath(components));
        if (!r.target().is_dir) {
          if (rider.Serveable(r.target().id, r.target_locked_in_batch)) {
            HOPS_RETURN_IF_ERROR(rider.pending.Wait());
            status.num_blocks = static_cast<int64_t>(rider.batch->rows(0).size());
          } else {
            rider.Discard();
            HOPS_ASSIGN_OR_RETURN(block_rows, tx.Ppis(schema_->blocks, {r.target().id}));
            status.num_blocks = static_cast<int64_t>(block_rows.size());
          }
        } else {
          rider.Discard();
        }
        return hops::Status::Ok();
      });
  if (!st.ok()) return st;
  return status;
}

hops::Result<std::vector<FileStatus>> Namenode::ListStatus(const std::string& path,
                                                           const UserContext& user) {
  HOPS_RETURN_IF_ERROR(CheckAlive());
  HOPS_ASSIGN_OR_RETURN(components, SplitPath(path));
  // A listing must include acknowledged children; "/" is covered by ANY
  // pending intent, so a root listing waits for a full drain.
  WaitForPendingIntents(JoinPath(components));
  std::vector<FileStatus> listing;
  uint64_t hint_pv = components.empty()
                         ? RootPartitionValue()
                         : InodePv(static_cast<int>(components.size()), 0, components.back());
  hops::Status st = RunTx(
      kv::TxHint{schema_->inodes, hint_pv}, [&](kv::Txn& tx) -> hops::Status {
        listing.clear();
        Inode dir = root_;
        int dir_depth = 0;
        if (!components.empty()) {
          // The directory inode is shared-locked so the listing cannot see
          // phantom children (paper §5.2.1).
          LockSpec spec;
          spec.target_mode = kv::LockMode::kShared;
          HOPS_ASSIGN_OR_RETURN(r, ResolveAndLock(tx, components, spec));
          HOPS_RETURN_IF_ERROR(CheckPathTraversal(r, user));
          if (!r.target().is_dir) {
            listing.push_back(StatusFromInode(r.target(), JoinPath(components)));
            return hops::Status::Ok();
          }
          HOPS_RETURN_IF_ERROR(CheckAccess(r.target(), user, kRead));
          dir = r.target();
          dir_depth = r.target_depth();
        }
        HOPS_ASSIGN_OR_RETURN(children, ScanChildren(tx, dir, dir_depth, {}));
        std::string base = JoinPath(components);
        if (base == "/") base.clear();
        for (const auto& row : children) {
          Inode child = InodeFromRow(row);
          listing.push_back(StatusFromInode(child, base + "/" + child.name));
        }
        std::sort(listing.begin(), listing.end(),
                  [](const FileStatus& a, const FileStatus& b) { return a.name < b.name; });
        return hops::Status::Ok();
      });
  if (!st.ok()) return st;
  return listing;
}

hops::Status Namenode::SetPermission(const std::string& path, int64_t perm,
                                     const UserContext& user) {
  HOPS_RETURN_IF_ERROR(CheckAlive());
  HOPS_ASSIGN_OR_RETURN(components, SplitPath(path));
  if (components.empty()) {
    return hops::Status::PermissionDenied("the root inode is immutable");
  }
  if (UseAsyncCommit()) {
    const int64_t start = MonotonicMicros();
    const std::string target = JoinPath(components);
    // A chmod of an acknowledged-but-unapplied file validates against the
    // pending entry and rides the log -- no wait, no database trip.
    if (auto p = intents_->LookupPending(target); p && !p->is_dir) {
      if (!user.superuser && user.user != p->user) {
        return hops::Status::PermissionDenied("only the owner may chmod");
      }
      IntentRecord rec;
      rec.op = IntentOp::kSetPermission;
      rec.path = target;
      rec.user = user.user;
      rec.superuser = user.superuser;
      rec.perm = perm;
      return SubmitSetattrIntent(std::move(rec), /*is_dir=*/false, p->user, start);
    }
    // Committed (or pending-dir) target: GetFileInfo waits out any covering
    // intent, then a directory quiesces synchronously and a file acks at
    // intent durability.
    auto info = GetFileInfo(target, user);
    if (!info.ok()) return info.status();
    if (info->is_dir) return SubtreeSetAttr(components, perm, std::nullopt, user);
    if (!user.superuser && user.user != info->owner) {
      return hops::Status::PermissionDenied("only the owner may chmod");
    }
    IntentRecord rec;
    rec.op = IntentOp::kSetPermission;
    rec.path = target;
    rec.user = user.user;
    rec.superuser = user.superuser;
    rec.perm = perm;
    return SubmitSetattrIntent(std::move(rec), /*is_dir=*/false, info->owner, start);
  }
  // Directories take the subtree path (§5: chmod on non-empty directories may
  // invalidate operations running below; quiesce first).
  auto info = GetFileInfo(path, user);
  if (!info.ok()) return info.status();
  if (info->is_dir) {
    return SubtreeSetAttr(components, perm, std::nullopt, user);
  }
  return SetPermissionFileTx(components, perm, user);
}

hops::Status Namenode::SetPermissionFileTx(const std::vector<std::string>& components,
                                           int64_t perm, const UserContext& user) {
  uint64_t hint_pv = InodePv(static_cast<int>(components.size()), 0, components.back());
  return RunTx(kv::TxHint{schema_->inodes, hint_pv},
               [&](kv::Txn& tx) -> hops::Status {
                 LockSpec spec;
                 spec.target_mode = kv::LockMode::kExclusive;
                 HOPS_ASSIGN_OR_RETURN(r, ResolveAndLock(tx, components, spec));
                 HOPS_RETURN_IF_ERROR(CheckPathTraversal(r, user));
                 Inode& inode = r.target();
                 if (!user.superuser && user.user != inode.owner) {
                   return hops::Status::PermissionDenied("only the owner may chmod");
                 }
                 inode.perm = perm;
                 inode.mtime = NowMicros();
                 return tx.Update(schema_->inodes, ToRow(inode), r.target_pv());
               });
}

hops::Status Namenode::SetOwner(const std::string& path, const std::string& owner,
                                const std::string& group, const UserContext& user) {
  HOPS_RETURN_IF_ERROR(CheckAlive());
  HOPS_ASSIGN_OR_RETURN(components, SplitPath(path));
  if (components.empty()) {
    return hops::Status::PermissionDenied("the root inode is immutable");
  }
  if (!user.superuser) return hops::Status::PermissionDenied("chown requires superuser");
  if (UseAsyncCommit()) {
    const int64_t start = MonotonicMicros();
    const std::string target = JoinPath(components);
    if (auto p = intents_->LookupPending(target); p && !p->is_dir) {
      IntentRecord rec;
      rec.op = IntentOp::kSetOwner;
      rec.path = target;
      rec.user = user.user;
      rec.superuser = user.superuser;
      rec.owner = owner;
      rec.group = group;
      // The pending entry records the owner-to-be so a follow-up chmod by
      // the new owner validates against the acknowledged state.
      return SubmitSetattrIntent(std::move(rec), /*is_dir=*/false, owner, start);
    }
    auto info = GetFileInfo(target, user);
    if (!info.ok()) return info.status();
    if (info->is_dir) {
      return SubtreeSetAttr(components, std::nullopt, std::make_pair(owner, group), user);
    }
    IntentRecord rec;
    rec.op = IntentOp::kSetOwner;
    rec.path = target;
    rec.user = user.user;
    rec.superuser = user.superuser;
    rec.owner = owner;
    rec.group = group;
    return SubmitSetattrIntent(std::move(rec), /*is_dir=*/false, owner, start);
  }
  auto info = GetFileInfo(path, user);
  if (!info.ok()) return info.status();
  if (info->is_dir) {
    return SubtreeSetAttr(components, std::nullopt, std::make_pair(owner, group), user);
  }
  return SetOwnerFileTx(components, owner, group, user);
}

hops::Status Namenode::SetOwnerFileTx(const std::vector<std::string>& components,
                                      const std::string& owner, const std::string& group,
                                      const UserContext& /*user*/) {
  uint64_t hint_pv = InodePv(static_cast<int>(components.size()), 0, components.back());
  return RunTx(kv::TxHint{schema_->inodes, hint_pv},
               [&](kv::Txn& tx) -> hops::Status {
                 LockSpec spec;
                 spec.target_mode = kv::LockMode::kExclusive;
                 HOPS_ASSIGN_OR_RETURN(r, ResolveAndLock(tx, components, spec));
                 Inode& inode = r.target();
                 inode.owner = owner;
                 inode.group = group;
                 inode.mtime = NowMicros();
                 return tx.Update(schema_->inodes, ToRow(inode), r.target_pv());
               });
}

hops::Status Namenode::SetReplication(const std::string& path, int64_t replication,
                                      const UserContext& user) {
  HOPS_RETURN_IF_ERROR(CheckAlive());
  if (replication < 1) return hops::Status::InvalidArgument("replication must be >= 1");
  HOPS_ASSIGN_OR_RETURN(components, SplitPath(path));
  if (components.empty()) return hops::Status::IsDirectory("/");
  WaitForPendingIntents(JoinPath(components));
  uint64_t hint_pv = InodePv(static_cast<int>(components.size()), 0, components.back());
  return RunTx(
      kv::TxHint{schema_->inodes, hint_pv}, [&](kv::Txn& tx) -> hops::Status {
        LockSpec spec;
        spec.target_mode = kv::LockMode::kExclusive;
        HOPS_ASSIGN_OR_RETURN(r, ResolveAndLock(tx, components, spec));
        HOPS_RETURN_IF_ERROR(CheckPathTraversal(r, user));
        Inode& file = r.target();
        if (file.is_dir) return hops::Status::IsDirectory(path);
        HOPS_RETURN_IF_ERROR(CheckAccess(file, user, kWrite));
        int64_t delta = replication - file.replication;
        if (delta == 0) return hops::Status::Ok();
        std::vector<Inode> ancestors(r.chain.begin(), r.chain.end() - 1);
        HOPS_RETURN_IF_ERROR(UpdateQuotaUsage(tx, ancestors, 0, file.size * delta,
                                              /*enforce=*/delta > 0));
        // Block + replica fan-out in one batched round trip, then one write
        // batch staging every per-block adjustment.
        kv::ReadBatch fanout;
        size_t block_slot = fanout.Scan(schema_->blocks, {file.id});
        size_t replica_slot = fanout.Scan(schema_->replicas, {file.id});
        HOPS_RETURN_IF_ERROR(tx.Execute(fanout));
        kv::WriteBatch writes;
        for (const auto& row : fanout.rows(block_slot)) {
          Block b = BlockFromRow(row);
          b.replication = replication;
          writes.Update(schema_->blocks, ToRow(b));
          // Re-evaluate the block's replica population.
          std::vector<Replica> reps;
          for (const auto& rep_row : fanout.rows(replica_slot)) {
            Replica rep = ReplicaFromRow(rep_row);
            if (rep.block_id == b.block_id) reps.push_back(rep);
          }
          int64_t have = static_cast<int64_t>(reps.size());
          if (have < replication) {
            Replica urb{file.id, b.block_id, 0, ReplicaState::kFinalized};
            writes.Write(schema_->urb, ToRow(urb));
          }
          // Excess replicas are *moved* to the ER table and queued for
          // datanode-side invalidation (§4.1).
          for (int64_t i = replication; i < have; ++i) {
            Replica extra = reps[static_cast<size_t>(i)];
            writes.Delete(schema_->replicas,
                          {extra.inode_id, extra.block_id, extra.datanode_id});
            writes.Write(schema_->er, ToRow(extra));
            writes.Write(schema_->inv, ToRow(extra));
          }
        }
        file.replication = replication;
        file.mtime = NowMicros();
        writes.Update(schema_->inodes, ToRow(file), r.target_pv());
        return tx.Execute(writes);
      });
}

hops::Result<ContentSummary> Namenode::GetContentSummary(const std::string& path,
                                                         const UserContext& user) {
  HOPS_RETURN_IF_ERROR(CheckAlive());
  HOPS_ASSIGN_OR_RETURN(components, SplitPath(path));
  ContentSummary summary;
  // Read-only BFS with read-committed scans; like HDFS, the summary is not
  // atomic with respect to concurrent mutations.
  struct DirRef {
    InodeId id;
    int depth;
  };
  std::vector<DirRef> frontier;
  {
    auto info = GetFileInfo(path, user);
    if (!info.ok()) return info.status();
    if (!info->is_dir) {
      return ContentSummary{1, 0, info->size * info->replication};
    }
    summary.dir_count = 1;
    frontier.push_back({info->inode_id, static_cast<int>(components.size())});
  }
  while (!frontier.empty()) {
    std::vector<DirRef> next;
    for (const DirRef& dir : frontier) {
      hops::Status st = RunTx(
          kv::TxHint{schema_->inodes, ChildrenPartitionValue(dir.id)},
          [&](kv::Txn& tx) -> hops::Status {
            Inode fake;
            fake.id = dir.id;
            fake.is_dir = true;
            HOPS_ASSIGN_OR_RETURN(children, ScanChildren(tx, fake, dir.depth, {}));
            for (const auto& row : children) {
              Inode child = InodeFromRow(row);
              if (child.is_dir) {
                summary.dir_count++;
                next.push_back({child.id, dir.depth + 1});
              } else {
                summary.file_count++;
                summary.total_bytes += child.size * child.replication;
              }
            }
            return hops::Status::Ok();
          });
      if (!st.ok()) return st;
    }
    frontier = std::move(next);
  }
  return summary;
}

hops::Status Namenode::Rename(const std::string& src, const std::string& dst,
                              const UserContext& user) {
  HOPS_RETURN_IF_ERROR(CheckAlive());
  HOPS_ASSIGN_OR_RETURN(src_parts, SplitPath(src));
  HOPS_ASSIGN_OR_RETURN(dst_parts, SplitPath(dst));
  if (src_parts.empty()) return hops::Status::PermissionDenied("the root inode is immutable");
  if (dst_parts.empty()) return hops::Status::AlreadyExists("/");
  if (IsPrefixPath(JoinPath(src_parts), JoinPath(dst_parts))) {
    return hops::Status::InvalidArgument("cannot move a directory into its own subtree");
  }
  // Rename stays a synchronous transaction; it must observe every
  // acknowledged op on both endpoints first.
  WaitForPendingIntents(JoinPath(src_parts));
  WaitForPendingIntents(JoinPath(dst_parts));
  hops::Status st = RenameInTx(src_parts, dst_parts, user);
  if (st.code() == hops::StatusCode::kNotEmpty) {
    // Non-empty directory: go through the subtree operations protocol (§6).
    st = SubtreeRename(src_parts, dst_parts, user);
  }
  if (st.ok()) {
    // Both prefixes go: everything under src moved away, and anything cached
    // under dst (hints for a previously replaced/removed occupant, or
    // planted by a resolution racing this rename) now names the wrong
    // inode. Dropping only src used to leave those dst hints poisoning the
    // batched locked reads until a miss repaired them.
    PublishHintInvalidation({JoinPath(src_parts), JoinPath(dst_parts)},
                            SubtreeOp::kMove);
  }
  return st;
}

hops::Status Namenode::RenameInTx(const std::vector<std::string>& src,
                                  const std::vector<std::string>& dst,
                                  const UserContext& user) {
  return RunTx(std::nullopt, [&](kv::Txn& tx) -> hops::Status {
    // Resolve both paths' interiors read-committed (no locks yet).
    LockSpec rc_only;
    rc_only.target_mode = kv::LockMode::kReadCommitted;
    rc_only.target_must_exist = true;
    HOPS_ASSIGN_OR_RETURN(src_r, ResolveAndLock(tx, src, rc_only));
    LockSpec rc_dst;
    rc_dst.target_mode = kv::LockMode::kReadCommitted;
    rc_dst.target_must_exist = false;
    HOPS_ASSIGN_OR_RETURN(dst_r, ResolveAndLock(tx, dst, rc_dst));
    HOPS_RETURN_IF_ERROR(CheckPathTraversal(src_r, user));
    HOPS_RETURN_IF_ERROR(CheckPathTraversal(dst_r, user));
    if (dst_r.target_exists) return hops::Status::AlreadyExists(JoinPath(dst));
    Inode& src_parent_rc = src_r.parent_of_target();
    Inode& dst_parent_rc = dst_r.parent_of_target();
    HOPS_RETURN_IF_ERROR(CheckAccess(src_parent_rc, user, kWrite));
    HOPS_RETURN_IF_ERROR(CheckAccess(dst_parent_rc, user, kWrite));

    // Take exclusive locks in the left-ordered depth-first total order (§5).
    struct LockItem {
      std::vector<std::string> path;
      InodeId parent;
      std::string name;
      int depth;
      bool expect_exists;
      InodeId expect_id;  // 0 = don't care
      Inode out;
      uint64_t out_pv = 0;
      bool found = false;
    };
    std::vector<LockItem> items;
    auto parent_path = [](const std::vector<std::string>& p) {
      return std::vector<std::string>(p.begin(), p.end() - 1);
    };
    if (src.size() >= 2) {
      items.push_back({parent_path(src), src_parent_rc.parent_id, src_parent_rc.name,
                       static_cast<int>(src.size()) - 1, true, src_parent_rc.id, {}, 0,
                       false});
    }
    items.push_back({src, src_parent_rc.id, src.back(), static_cast<int>(src.size()), true,
                     src_r.target().id, {}, 0, false});
    if (dst.size() >= 2 && dst_parent_rc.id != src_parent_rc.id) {
      items.push_back({parent_path(dst), dst_parent_rc.parent_id, dst_parent_rc.name,
                       static_cast<int>(dst.size()) - 1, true, dst_parent_rc.id, {}, 0,
                       false});
    }
    items.push_back(
        {dst, dst_parent_rc.id, dst.back(), static_cast<int>(dst.size()), false, 0, {}, 0,
         false});
    std::sort(items.begin(), items.end(),
              [](const LockItem& a, const LockItem& b) { return LockOrderLess(a.path, b.path); });
    // Batched lock phase: every lock item in one round trip, waits still in
    // the path total order established by the sort above.
    std::vector<Namenode::LockItem> refs;
    refs.reserve(items.size());
    for (const auto& item : items) refs.push_back({item.parent, item.name, item.depth});
    HOPS_ASSIGN_OR_RETURN(lock_reads, ReadLockItemsBatched(tx, refs));
    for (size_t i = 0; i < items.size(); ++i) {
      auto& item = items[i];
      if (lock_reads[i].has_value()) {
        item.found = true;
        item.out = std::move(lock_reads[i]->inode);
        item.out_pv = lock_reads[i]->pv;
        if (item.expect_id != 0 && item.out.id != item.expect_id) {
          return hops::Status::TxAborted("path changed during rename resolution");
        }
        HOPS_RETURN_IF_ERROR(CheckSubtreeLock(tx, item.out, item.out_pv));
      } else if (item.expect_exists) {
        return hops::Status::TxAborted("path changed during rename resolution");
      }
    }
    auto find_item = [&](const std::vector<std::string>& p) -> LockItem* {
      for (auto& item : items) {
        if (item.path == p) return &item;
      }
      return nullptr;
    };
    LockItem* src_item = find_item(src);
    LockItem* dst_item = find_item(dst);
    if (dst_item->found) return hops::Status::AlreadyExists(JoinPath(dst));
    Inode moving = src_item->out;

    // A directory with children cannot move in one transaction; signal the
    // caller to use the subtree protocol.
    if (moving.is_dir) {
      kv::ScanOptions probe;
      HOPS_ASSIGN_OR_RETURN(children,
                            ScanChildren(tx, moving, static_cast<int>(src.size()), probe));
      if (!children.empty()) return hops::Status::NotEmpty(JoinPath(src));
    }

    // Execute: the move rewrites only the moved inode's row (its primary key
    // and partition change); all satellite data keys on the inode id.
    HOPS_RETURN_IF_ERROR(
        tx.Delete(schema_->inodes, InodeKey(moving.parent_id, moving.name), src_item->out_pv));
    Inode moved = moving;
    moved.parent_id = dst_item->parent;
    moved.name = dst.back();
    moved.mtime = NowMicros();
    HOPS_RETURN_IF_ERROR(tx.Insert(schema_->inodes, ToRow(moved),
                                   InodePv(static_cast<int>(dst.size()), dst_item->parent,
                                           moved.name)));

    // Parent mtimes (the immutable root is never rewritten).
    int64_t now = NowMicros();
    LockItem* src_parent_item = src.size() >= 2 ? find_item(parent_path(src)) : nullptr;
    LockItem* dst_parent_item = dst.size() >= 2 ? find_item(parent_path(dst)) : nullptr;
    if (dst_parent_item == nullptr && dst.size() >= 2) {
      dst_parent_item = src_parent_item;  // same parent, deduplicated above
    }
    if (src_parent_item != nullptr) {
      src_parent_item->out.mtime = now;
      HOPS_RETURN_IF_ERROR(tx.Update(schema_->inodes, ToRow(src_parent_item->out),
                                     src_parent_item->out_pv));
    }
    if (dst_parent_item != nullptr && dst_parent_item != src_parent_item) {
      dst_parent_item->out.mtime = now;
      HOPS_RETURN_IF_ERROR(tx.Update(schema_->inodes, ToRow(dst_parent_item->out),
                                     dst_parent_item->out_pv));
    }

    // Quota usage moves from the source chain to the destination chain.
    int64_t ns = 1;
    int64_t ss = moving.is_dir ? 0 : moving.size * moving.replication;
    std::vector<Inode> src_ancestors(src_r.chain.begin(),
                                     src_r.chain.begin() + static_cast<long>(src.size()));
    // dst did not exist, so its chain is exactly [root .. dst parent].
    std::vector<Inode> dst_ancestors(dst_r.chain.begin(), dst_r.chain.end());
    HOPS_RETURN_IF_ERROR(UpdateQuotaUsage(tx, src_ancestors, -ns, -ss, /*enforce=*/false));
    HOPS_RETURN_IF_ERROR(UpdateQuotaUsage(tx, dst_ancestors, +ns, +ss, /*enforce=*/true));
    return hops::Status::Ok();
  });
}

Namenode::FileArtifactSlots Namenode::StageFileArtifactReads(kv::ReadBatch& batch,
                                                             InodeId file_id) {
  // All satellite tables are partitioned by the inode id, so the whole
  // fan-out -- blocks, replicas, and every life-cycle table -- stages as
  // pruned scans of one shard.
  FileArtifactSlots slots;
  slots.block_slot = batch.Scan(schema_->blocks, {file_id});
  slots.replica_slot = batch.Scan(schema_->replicas, {file_id});
  for (kv::TableId t : {schema_->urb, schema_->prb, schema_->ruc, schema_->cr, schema_->er}) {
    slots.lifecycle_slots.emplace_back(t, batch.Scan(t, {file_id}));
  }
  return slots;
}

void Namenode::StageFileArtifactRemovals(const kv::ReadBatch& batch,
                                         const FileArtifactSlots& slots, InodeId file_id,
                                         kv::WriteBatch& writes) {
  for (const auto& row : batch.rows(slots.block_slot)) {
    Block b = BlockFromRow(row);
    writes.Delete(schema_->blocks, {b.inode_id, b.block_id});
    writes.DeleteIfExists(schema_->block_lookup, {b.block_id});
  }
  for (const auto& row : batch.rows(slots.replica_slot)) {
    Replica rep = ReplicaFromRow(row);
    writes.Delete(schema_->replicas, {rep.inode_id, rep.block_id, rep.datanode_id});
    // Invalidation command for the datanode holding the replica (upsert:
    // the command may already be queued).
    writes.Write(schema_->inv, ToRow(rep));
  }
  for (const auto& [table, slot] : slots.lifecycle_slots) {
    for (const auto& row : batch.rows(slot)) {
      writes.Delete(table, {row[col::kReplicaInode].i64(), row[col::kReplicaBlock].i64(),
                            row[col::kReplicaDatanode].i64()});
    }
  }
  writes.DeleteIfExists(schema_->leases, {file_id});
}

hops::Status Namenode::DeleteFileArtifacts(kv::Txn& tx, const Inode& file) {
  // One batched round trip of pruned scans, then one write batch staging
  // every row removal + invalidation.
  kv::ReadBatch fanout;
  FileArtifactSlots slots = StageFileArtifactReads(fanout, file.id);
  HOPS_RETURN_IF_ERROR(tx.Execute(fanout));
  kv::WriteBatch writes;
  StageFileArtifactRemovals(fanout, slots, file.id, writes);
  return tx.Execute(writes);
}

hops::Status Namenode::Delete(const std::string& path, bool recursive,
                              const UserContext& user) {
  HOPS_RETURN_IF_ERROR(CheckAlive());
  HOPS_ASSIGN_OR_RETURN(components, SplitPath(path));
  if (components.empty()) return hops::Status::PermissionDenied("the root inode is immutable");
  // Deletes are synchronous and must not race an unapplied intent on or
  // under this path (deleting a dir whose acknowledged child has not
  // materialized would lose the child).
  WaitForPendingIntents(JoinPath(components));
  uint64_t hint_pv = InodePv(static_cast<int>(components.size()), 0, components.back());
  hops::Status st = RunTx(
      kv::TxHint{schema_->inodes, hint_pv}, [&](kv::Txn& tx) -> hops::Status {
        LockSpec spec;
        spec.target_mode = kv::LockMode::kExclusive;
        spec.lock_parent = true;
        HOPS_ASSIGN_OR_RETURN(r, ResolveAndLock(tx, components, spec));
        HOPS_RETURN_IF_ERROR(CheckPathTraversal(r, user));
        Inode& target = r.target();
        Inode& parent = r.parent_of_target();
        HOPS_RETURN_IF_ERROR(CheckAccess(parent, user, kWrite));
        if (target.is_dir) {
          HOPS_ASSIGN_OR_RETURN(children,
                                ScanChildren(tx, target, r.target_depth(), {}));
          if (!children.empty()) {
            return recursive ? hops::Status::NotEmpty(path)
                             : hops::Status::NotEmpty(path + " is not empty");
          }
          if (target.has_quota) {
            hops::Status qst = tx.Delete(schema_->quotas, {target.id});
            if (!qst.ok() && qst.code() != hops::StatusCode::kNotFound) return qst;
          }
        } else {
          HOPS_RETURN_IF_ERROR(DeleteFileArtifacts(tx, target));
        }
        HOPS_RETURN_IF_ERROR(tx.Delete(schema_->inodes,
                                       InodeKey(target.parent_id, target.name),
                                       r.target_pv()));
        int64_t ss = target.is_dir ? 0 : target.size * target.replication;
        std::vector<Inode> ancestors(r.chain.begin(), r.chain.end() - 1);
        HOPS_RETURN_IF_ERROR(UpdateQuotaUsage(tx, ancestors, -1, -ss, /*enforce=*/false));
        if (parent.id != kRootInode) {
          parent.mtime = NowMicros();
          HOPS_RETURN_IF_ERROR(tx.Update(schema_->inodes, ToRow(parent), r.parent_pv()));
        }
        return hops::Status::Ok();
      });
  if (st.code() == hops::StatusCode::kNotEmpty && recursive) {
    st = SubtreeDelete(components, user);
  }
  if (st.ok()) PublishHintInvalidation({JoinPath(components)}, SubtreeOp::kDelete);
  return st;
}

hops::Status Namenode::SetQuota(const std::string& path, int64_t ns_quota, int64_t ss_quota,
                                const UserContext& user) {
  HOPS_RETURN_IF_ERROR(CheckAlive());
  if (!user.superuser) return hops::Status::PermissionDenied("setQuota requires superuser");
  HOPS_ASSIGN_OR_RETURN(components, SplitPath(path));
  if (components.empty()) {
    return hops::Status::PermissionDenied("quotas on the root are not supported");
  }
  auto info = GetFileInfo(path, user);
  if (!info.ok()) return info.status();
  if (!info->is_dir) return hops::Status::NotDirectory(path);
  return SubtreeSetQuota(components, ns_quota, ss_quota, user);
}

// id_safe(): election id (0 before Start()).
NamenodeId Namenode::id_safe() const { return election_.id(); }

}  // namespace hops::fs
