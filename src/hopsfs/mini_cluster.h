// In-process HopsFS cluster for tests, examples and benchmarks: one NDB
// cluster, N namenodes, M simulated datanodes, and client factories.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "hopsfs/client.h"
#include "hopsfs/datanode.h"
#include "hopsfs/namenode.h"
#include "hopsfs/schema.h"
#include "kv/kv.h"

namespace hops::fs {

struct MiniClusterOptions {
  kv::EngineConfig db;
  FsConfig fs;
  int num_namenodes = 2;
  int num_datanodes = 3;
};

// Aggregate hint-cache counters across a cluster's namenodes, plus the
// sharded invalidation-log activity: prefixes the heartbeat drains applied,
// publish events appended, ops coalesced into a shared append, and the
// leader's acked-vs-TTL GC reaps. Surfaced in the workload driver report
// and the bench_fig06 hint-cache ablation.
struct ClusterHintStats {
  InodeHintCache::Stats cache;
  uint64_t proactive_applied = 0;
  uint64_t publish_events = 0;
  uint64_t publish_ops_coalesced = 0;
  uint64_t gc_acked_reaps = 0;
  uint64_t gc_ttl_reaps = 0;

  double HitRate() const {
    uint64_t lookups = cache.hits + cache.misses;
    return lookups == 0 ? 0.0
                        : static_cast<double>(cache.hits) / static_cast<double>(lookups);
  }
};

// Aggregate intent-log counters across a cluster's namenodes (async
// metadata commits), plus the adoption sweeps that replayed dead
// namenodes' orphaned intents. Surfaced in the workload driver report and
// the bench_table2 async-ack ablation.
struct ClusterIntentStats {
  IntentLogStats log;
  uint64_t intents_adopted = 0;

  double MeanAckLatencyUs() const {
    return log.acked_ops == 0 ? 0.0
                              : static_cast<double>(log.ack_latency_us) /
                                    static_cast<double>(log.acked_ops);
  }
  double MeanApplyLatencyUs() const {
    return log.intents_applied == 0 ? 0.0
                                    : static_cast<double>(log.apply_latency_us) /
                                          static_cast<double>(log.intents_applied);
  }
};

class MiniCluster {
 public:
  // Builds the database, formats the schema, and starts the namenodes.
  // Resolves ClusterConfig::mux_adaptive_gather_auto here: the gather delay
  // goes on once the handler pool is wide enough (>= 4 handlers per
  // namenode) that trailing windows are usually in flight to merge with.
  static hops::Result<std::unique_ptr<MiniCluster>> Start(MiniClusterOptions options);

  kv::Engine& db() { return *db_; }
  const MetadataSchema& schema() const { return schema_; }
  const FsConfig& fs_config() const { return options_.fs; }

  int num_namenodes() const { return num_namenode_slots_; }
  // The slot's current occupant. The returned reference stays valid across a
  // concurrent restart (replaced namenodes retire to a graveyard destroyed
  // at teardown), but names the occupant at call time.
  Namenode& namenode(int i);
  std::vector<Namenode*> AliveNamenodes();
  // The current leader among alive namenodes (by the election's view).
  Namenode* leader();

  int num_datanodes() const { return static_cast<int>(datanodes_.size()); }
  Datanode& datanode(int i) { return *datanodes_[static_cast<size_t>(i)]; }
  Datanode* FindDatanode(DatanodeId id);

  // Sums every namenode's hint-cache counters (dead ones included: their
  // history is part of the run).
  ClusterHintStats AggregateHintStats();
  // Sums every namenode's intent-log counters (async metadata commits).
  ClusterIntentStats AggregateIntentStats();
  // Blocks until every alive namenode's acknowledged intents are applied
  // (async commits only; a no-op cluster-wide when the mode is off).
  void DrainIntents();

  // Kills namenode i (simulated process death; its id is retired).
  void KillNamenode(int i);
  // Replaces slot i with a fresh namenode (new id, empty caches). Safe under
  // concurrent client traffic: the dead instance retires to the graveyard so
  // in-flight calls on it finish with kFailover instead of use-after-free.
  hops::Status RestartNamenode(int i);
  // Replaces slot i with a fresh namenode that RESUMES the old instance's
  // nn_id (a process restart keeping its identity): the election counter
  // continues, and the start-up sweep replays the previous incarnation's
  // surviving intent partition. Kills the old instance first if needed.
  hops::Status RestartNamenodeSameId(int i);
  // One election round on every alive namenode. Each round first flushes
  // every namenode's pending async hint publishes, so "invalidated within
  // one tick" keeps meaning one call here even with the async publish
  // stage.
  void TickHeartbeats(int rounds = 1);
  // Blocks until every alive namenode's queued hint-invalidation publishes
  // are in the log (tests that inspect the log tables directly call this).
  void FlushHintPublishes();

  Client NewClient(NamenodePolicy policy, const std::string& name, uint64_t seed = 42);

  // Simulates the write pipeline for a located block: every target datanode
  // stores the block and acknowledges it to a namenode.
  hops::Status PipelineWrite(const LocatedBlock& block);

 private:
  MiniCluster(MiniClusterOptions options, std::unique_ptr<kv::Engine> db,
              MetadataSchema schema);
  void InstallDatanodePicker(Namenode& nn);

  MiniClusterOptions options_;
  std::unique_ptr<kv::Engine> db_;
  MetadataSchema schema_;
  // Guards namenodes_/retired_ against the chaos conductor restarting slots
  // while client threads pick namenodes. Held only for slot access; the
  // namenode calls themselves run outside it.
  mutable std::mutex nn_mu_;
  std::vector<std::unique_ptr<Namenode>> namenodes_;
  // Dead instances replaced by a restart. Kept until teardown so raw
  // Namenode* held by clients (sticky policies, in-flight calls) stay valid;
  // a retired namenode is Killed, so every call on it fails with kFailover.
  std::vector<std::unique_ptr<Namenode>> retired_;
  int num_namenode_slots_ = 0;
  std::vector<std::unique_ptr<Datanode>> datanodes_;
  std::atomic<uint64_t> dn_rr_{0};
};

}  // namespace hops::fs
