// Leader election and namenode membership using the database as shared
// memory (paper §3, and Niazi et al., "Leader Election using NewSQL
// Systems", DAIS 2015).
//
// Every namenode owns a row of the `leader` table and increments its counter
// on each heartbeat. A peer is alive if its counter advanced within the last
// `leader_missed_rounds` of the local namenode's own heartbeats -- i.e. an
// alive namenode is one that keeps writing to the database in bounded time.
// The leader is the alive namenode with the smallest id; ids are allocated
// from the variables table and change on restart.
#pragma once

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "hopsfs/config.h"
#include "hopsfs/schema.h"
#include "ndb/cluster.h"

namespace hops::fs {

// Read-only view of which namenodes are alive (consumed by the lazy subtree
// lock cleanup, §6.2).
class MembershipView {
 public:
  virtual ~MembershipView() = default;
  virtual bool IsNamenodeAlive(NamenodeId id) const = 0;
};

class LeaderElection : public MembershipView {
 public:
  LeaderElection(ndb::Cluster* db, const MetadataSchema* schema, const FsConfig* config,
                 std::string location);

  // Allocates a fresh namenode id and joins the group. Must be called once.
  hops::Status Register();
  // One election round: bump own counter, refresh the membership view,
  // and (when leader) garbage-collect rows of dead namenodes.
  hops::Status Heartbeat();
  // Graceful departure; removes the row.
  void Deregister();

  NamenodeId id() const { return id_; }
  bool IsLeader() const;
  std::vector<NamenodeId> AliveNamenodes() const;
  bool IsNamenodeAlive(NamenodeId id) const override;

 private:
  struct PeerState {
    int64_t counter = -1;
    int64_t last_advance_round = 0;
  };

  ndb::Cluster* const db_;
  const MetadataSchema* const schema_;
  const FsConfig* const config_;
  const std::string location_;
  NamenodeId id_ = 0;

  mutable std::mutex mu_;
  int64_t round_ = 0;
  std::map<NamenodeId, PeerState> peers_;
  // Hint-invalidation log GC bookmark: the log was observed empty after a
  // reap when the seq counter stood here, so until the counter moves there
  // is nothing to scan. Touched only from Heartbeat.
  int64_t gc_clean_through_ = -1;
};

}  // namespace hops::fs
