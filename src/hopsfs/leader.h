// Leader election and namenode membership using the database as shared
// memory (paper §3, and Niazi et al., "Leader Election using NewSQL
// Systems", DAIS 2015).
//
// Every namenode owns a row of the `leader` table and increments its counter
// on each heartbeat. A peer is alive if its counter advanced within the last
// `leader_missed_rounds` of the local namenode's own heartbeats -- i.e. an
// alive namenode is one that keeps writing to the database in bounded time.
// The leader is the alive namenode with the smallest id; ids are allocated
// from the variables table and change on restart.
#pragma once

#include <atomic>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "hopsfs/config.h"
#include "hopsfs/schema.h"
#include "kv/kv.h"

namespace hops::fs {

// Read-only view of which namenodes are alive (consumed by the lazy subtree
// lock cleanup, §6.2).
class MembershipView {
 public:
  virtual ~MembershipView() = default;
  virtual bool IsNamenodeAlive(NamenodeId id) const = 0;
};

class LeaderElection : public MembershipView {
 public:
  LeaderElection(kv::Engine* db, const MetadataSchema* schema, const FsConfig* config,
                 std::string location);

  // Allocates a fresh namenode id and joins the group. Must be called once.
  hops::Status Register();
  // Rejoins under an existing identity (a restart that kept its nn_id),
  // instead of Register. The counter CONTINUES from the old row: peers
  // detect liveness by counter advancement, so a counter restarting at zero
  // would read as missed heartbeats until it caught up past the previous
  // incarnation's value -- a false-death window inviting wrongful adoption
  // and GC of the resumed namenode's log partitions.
  hops::Status Resume(NamenodeId id);
  // One election round: bump own counter, refresh the membership view,
  // and (when leader) garbage-collect rows of dead namenodes.
  hops::Status Heartbeat();
  // Graceful departure; removes the row.
  void Deregister();

  NamenodeId id() const { return id_; }
  bool IsLeader() const;
  std::vector<NamenodeId> AliveNamenodes() const;
  bool IsNamenodeAlive(NamenodeId id) const override;

  // Leader-side hint-log GC counters: records reaped because every alive
  // namenode acked past them, and records reaped by the TTL fallback
  // (dead or stalled drainers that will never ack).
  uint64_t hint_gc_acked_reaps() const {
    return gc_acked_reaps_.load(std::memory_order_relaxed);
  }
  uint64_t hint_gc_ttl_reaps() const {
    return gc_ttl_reaps_.load(std::memory_order_relaxed);
  }

 private:
  struct PeerState {
    int64_t counter = -1;
    int64_t last_advance_round = 0;
  };

  // One leader GC pass over the sharded hint-invalidation log: per
  // publisher, reap records acked by every alive namenode (min over the
  // hint_acks rows of alive drainers) plus the TTL fallback; clean up the
  // head, record and ack rows of long-dead namenodes. `long_dead` seeds the
  // cleanup with the rows evicted this round, but the list is re-derived
  // every pass from "head row whose namenode has no leader row" (with a
  // grace window against racing a just-registered publisher), so a failed
  // cleanup transaction is retried instead of leaking the rows forever.
  void GcHintLog(const std::vector<NamenodeId>& long_dead);
  // Does the namenode still own a leader-table row, by the last scan?
  bool HasPeerRow(NamenodeId nn) const;

  kv::Engine* const db_;
  const MetadataSchema* const schema_;
  const FsConfig* const config_;
  const std::string location_;
  NamenodeId id_ = 0;

  mutable std::mutex mu_;
  int64_t round_ = 0;
  std::map<NamenodeId, PeerState> peers_;
  // Per-publisher hint-log GC bookmark: that publisher's partition was
  // observed empty after a reap when its head stood here, so until the head
  // moves there is nothing to scan. Touched only from Heartbeat.
  std::map<NamenodeId, int64_t> gc_clean_through_;
  // Head-row owners with no leader row, by the round first noticed; cleaned
  // up once they stay orphaned past the liveness window (a just-registered
  // publisher whose leader row this leader has not scanned yet must not
  // have its fresh log partition reaped under it). Touched only from
  // Heartbeat.
  std::map<NamenodeId, int64_t> gc_orphan_since_;
  std::atomic<uint64_t> gc_acked_reaps_{0};
  std::atomic<uint64_t> gc_ttl_reaps_{0};
};

}  // namespace hops::fs
