// The subtree operations protocol (paper §6): operations on directories of
// unknown (possibly huge) size that cannot fit in one database transaction.
//
// Phase 1  sets a persistent subtree-lock flag (owner = this namenode) on the
//          subtree root and registers the operation in active_subtree_ops,
//          after verifying no overlapping subtree operation is in flight.
// Phase 2  quiesces the subtree: level by level, one take-and-release
//          exclusive-lock scan batch per directory is put in flight through
//          the async pipelined batch engine, so a whole level's
//          partition-pruned scans overlap in a handful of round-trip
//          windows while building an in-memory tree of the subtree.
// Phase 3  executes: deletes run bottom-up (post-order) in parallel batched
//          transactions -- each transaction pipelines its inode probes and
//          per-file artifact fan-outs in one overlapped window and stages
//          every removal in one write batch -- so a namenode crash can never
//          orphan an inode; move, chmod/chown and setQuota update only the
//          subtree root in a single transaction.
// Failure handling (§6.2) is lazy: flags owned by dead namenodes are cleared
// by whoever trips over them (see Namenode::CheckSubtreeLock).
#include <algorithm>
#include <atomic>
#include <deque>
#include <thread>

#include "hopsfs/namenode.h"
#include "hopsfs/partition.h"
#include "util/clock.h"
#include "util/thread_pool.h"

namespace hops::fs {

hops::Status Namenode::DeleteInodeRow(kv::Txn& tx, InodeId parent,
                                      const std::string& name, int depth, bool* existed) {
  *existed = false;
  const InodePvPair pv = InodePvCandidates(depth, parent, name);
  hops::Status st = tx.Delete(schema_->inodes, kv::Key{parent, name}, pv.primary);
  if (st.ok()) {
    *existed = true;
    return st;
  }
  if (st.code() != hops::StatusCode::kNotFound) return st;
  if (pv.dual) {
    st = tx.Delete(schema_->inodes, kv::Key{parent, name}, pv.alternate);
    if (st.ok()) {
      *existed = true;
      return st;
    }
    if (st.code() != hops::StatusCode::kNotFound) return st;
  }
  return hops::Status::Ok();  // already gone (crashed predecessor's progress)
}

hops::Result<Namenode::SubtreeSnapshot> Namenode::SubtreeLockAndQuiesce(
    const std::vector<std::string>& components, SubtreeOp op, const UserContext& user) {
  SubtreeSnapshot snap;
  snap.root_components = components;
  const std::string my_path = JoinPath(components);

  // --- Phase 1: set the subtree flag --------------------------------------
  // The local registration must be visible BEFORE the flag commits:
  // otherwise an inode operation on this same namenode could read the fresh
  // flag, find no registered op, misjudge it as stale residue and clear it.
  InodeId registered_root = kInvalidInode;
  uint64_t hint_pv = InodePv(static_cast<int>(components.size()), 0, components.back());
  hops::Status st = RunTx(
      kv::TxHint{schema_->inodes, hint_pv}, [&](kv::Txn& tx) -> hops::Status {
        if (registered_root != kInvalidInode) {
          UnregisterMySubtreeOp(registered_root);  // previous attempt aborted
          registered_root = kInvalidInode;
        }
        LockSpec spec;
        spec.target_mode = kv::LockMode::kExclusive;
        HOPS_ASSIGN_OR_RETURN(r, ResolveAndLock(tx, components, spec));
        HOPS_RETURN_IF_ERROR(CheckPathTraversal(r, user));
        if (!r.target().is_dir) return hops::Status::NotDirectory(my_path);
        // No overlapping subtree operation may be active anywhere above or
        // below us (§6.1 phase 1); rows of dead namenodes (and stale rows of
        // our own failed cleanups) are reaped here.
        HOPS_ASSIGN_OR_RETURN(active, tx.FullTableScan(schema_->active_subtree_ops));
        for (const auto& row : active) {
          NamenodeId owner = row[col::kSubtreeNn].i64();
          const std::string& other = row[col::kSubtreePath].str();
          if (!IsPrefixPath(other, my_path) && !IsPrefixPath(my_path, other)) continue;
          bool genuinely_active =
              owner == id_safe()
                  ? IsMySubtreeOpActive(row[col::kSubtreeInode].i64())
                  : election_.IsNamenodeAlive(owner);
          if (genuinely_active) {
            return hops::Status::SubtreeLocked("subtree op active on " + other);
          }
          HOPS_RETURN_IF_ERROR(
              tx.Delete(schema_->active_subtree_ops, {row[col::kSubtreeInode].i64()}));
        }
        Inode target = r.target();
        target.subtree_lock_owner = id_safe();
        RegisterMySubtreeOp(target.id);
        registered_root = target.id;
        HOPS_RETURN_IF_ERROR(tx.Update(schema_->inodes, ToRow(target), r.target_pv()));
        HOPS_RETURN_IF_ERROR(tx.Write(
            schema_->active_subtree_ops,
            kv::Row{target.id, id_safe(), static_cast<int64_t>(op), my_path}));
        snap.root = target;
        snap.ancestors.assign(r.chain.begin(), r.chain.end() - 1);
        return hops::Status::Ok();
      });
  if (!st.ok()) {
    if (registered_root != kInvalidInode) UnregisterMySubtreeOp(registered_root);
    return st;
  }

  if (die_at_ && die_at_("subtree:flagged")) {
    Kill();
    return hops::Status::Failover("namenode crashed after setting the subtree lock");
  }

  // --- Phase 2: quiesce + build the in-memory tree ------------------------
  const int root_depth = static_cast<int>(components.size());
  snap.levels.push_back({SubtreeNode{snap.root.id, snap.root.parent_id, snap.root.name,
                                     true, 0, 0, snap.root.has_quota, root_depth}});
  snap.inode_count = 1;

  while (true) {
    const auto& level = snap.levels.back();
    std::vector<const SubtreeNode*> dirs;
    for (const auto& node : level) {
      if (node.is_dir) dirs.push_back(&node);
    }
    if (dirs.empty()) break;

    auto next = QuiesceLevel(dirs);
    if (!next.ok()) {
      (void)SubtreeAbort(snap);
      return next.status();
    }
    std::vector<SubtreeNode> next_level = *std::move(next);
    if (next_level.empty()) break;
    snap.inode_count += static_cast<int64_t>(next_level.size());
    for (const auto& node : next_level) {
      if (!node.is_dir) snap.byte_count += node.size * node.replication;
    }
    snap.levels.push_back(std::move(next_level));
  }
  return snap;
}

hops::Result<std::vector<Namenode::SubtreeNode>> Namenode::QuiesceLevel(
    const std::vector<const SubtreeNode*>& dirs) {
  // Take-and-release exclusive locks wait out every in-flight inode
  // operation below us; new operations see the subtree flag and back off
  // voluntarily (§6.3). One scan batch per directory is put in flight
  // through the pipelined engine, so the level's independent per-partition
  // round trips overlap instead of costing one trip each. The level is
  // chunked into transactions so a retryable failure (any lock timeout
  // aborts its whole transaction) re-scans one chunk, not the whole level.
  kv::ScanOptions opts;
  opts.lock = kv::LockMode::kExclusive;
  opts.take_and_release = true;

  constexpr size_t kDirsPerTx = 64;
  std::vector<SubtreeNode> next_level;
  for (size_t base = 0; base < dirs.size(); base += kDirsPerTx) {
    const size_t end = std::min(dirs.size(), base + kDirsPerTx);
    hops::Status st;
    for (int attempt = 0; attempt < config_->max_tx_retries; ++attempt) {
      st = hops::Status::Ok();
      const size_t undo_mark = next_level.size();  // discard partial output on retry
      auto tx =
          db_->Begin(kv::TxHint{schema_->inodes, ChildrenPartitionValue(dirs[base]->id)});
      // deque: ExecuteAsync keeps a pointer to each staged batch until flush.
      std::deque<kv::ReadBatch> batches;
      std::vector<std::pair<const SubtreeNode*, kv::Pending>> pending;
      auto absorb = [&](const SubtreeNode* dir,
                        const std::vector<kv::Row>& rows) -> hops::Status {
        for (const auto& row : rows) {
          Inode child = InodeFromRow(row);
          if (child.subtree_lock_owner != kNoSubtreeLock &&
              child.subtree_lock_owner != id_safe() &&
              election_.IsNamenodeAlive(child.subtree_lock_owner)) {
            return hops::Status::SubtreeLocked("inner subtree locked by namenode " +
                                              std::to_string(child.subtree_lock_owner));
          }
          next_level.push_back(SubtreeNode{child.id, child.parent_id, child.name,
                                           child.is_dir, child.size, child.replication,
                                           child.has_quota, dir->depth + 1});
        }
        return hops::Status::Ok();
      };
      for (size_t d = base; d < end && st.ok(); ++d) {
        const SubtreeNode* dir = dirs[d];
        if (ChildrenArePruned(dir->depth, config_->random_partition_depth)) {
          batches.emplace_back();
          batches.back().Scan(schema_->inodes, kv::Key{dir->id}, opts,
                              ChildrenPartitionValue(dir->id));
          pending.emplace_back(dir, tx->ExecuteAsync(batches.back()));
        } else {
          // Top of the tree: children are scattered pseudo-randomly; pay an
          // index scan (§4.2.1). Rare -- only above random_partition_depth.
          auto rows = tx->IndexScan(schema_->inodes, kv::Key{dir->id}, opts);
          st = rows.ok() ? absorb(dir, *rows) : rows.status();
        }
      }
      for (size_t i = 0; i < pending.size() && st.ok(); ++i) {
        st = pending[i].second.Wait();
        if (st.ok()) st = absorb(pending[i].first, batches[i].rows(0));
      }
      if (st.ok()) {
        (void)tx->Commit();  // read-only: releases nothing but the tx slot
        break;
      }
      next_level.resize(undo_mark);
      if (!st.IsRetryableTx()) return st;
    }
    if (!st.ok()) return st;  // chunk exhausted its retries
  }
  return next_level;
}

hops::Status Namenode::SubtreeAbort(const SubtreeSnapshot& snap) {
  UnregisterMySubtreeOp(snap.root.id);
  return RunTx(std::nullopt, [&](kv::Txn& tx) -> hops::Status {
    auto out = ReadInode(tx, snap.root.parent_id, snap.root.name,
                         static_cast<int>(snap.root_components.size()),
                         kv::LockMode::kExclusive);
    if (out.ok() && out->inode.id == snap.root.id &&
        out->inode.subtree_lock_owner == id_safe()) {
      Inode cleared = out->inode;
      cleared.subtree_lock_owner = kNoSubtreeLock;
      HOPS_RETURN_IF_ERROR(tx.Update(schema_->inodes, ToRow(cleared), out->pv));
    } else if (!out.ok() && out.status().code() != hops::StatusCode::kNotFound) {
      return out.status();
    }
    hops::Status st = tx.Delete(schema_->active_subtree_ops, {snap.root.id});
    if (!st.ok() && st.code() != hops::StatusCode::kNotFound) return st;
    return hops::Status::Ok();
  });
}

hops::Status Namenode::DeleteBatch(const std::vector<SubtreeNode>& batch,
                                   const std::vector<Inode>& quota_ancestors) {
  return config_->subtree_pipelined ? DeleteBatchPipelined(batch, quota_ancestors)
                                    : DeleteBatchPerRow(batch, quota_ancestors);
}

// The pre-pipelining baseline: one eager-locking round trip per inode row
// (two when the primary partition rule misses) plus a fan-out read and a
// write batch per file. Kept selectable so bench_table4_subtree_ops can
// measure the pipelined path's round-trip reduction against it.
hops::Status Namenode::DeleteBatchPerRow(const std::vector<SubtreeNode>& batch,
                                         const std::vector<Inode>& quota_ancestors) {
  return RunTx(std::nullopt, [&](kv::Txn& tx) -> hops::Status {
    int64_t ns_removed = 0;
    int64_t ss_removed = 0;
    for (const SubtreeNode& node : batch) {
      if (!node.is_dir) {
        Inode as_file;
        as_file.id = node.id;
        HOPS_RETURN_IF_ERROR(DeleteFileArtifacts(tx, as_file));
      }
      if (node.has_quota) {
        hops::Status st = tx.Delete(schema_->quotas, {node.id});
        if (!st.ok() && st.code() != hops::StatusCode::kNotFound) return st;
      }
      bool existed = false;
      HOPS_RETURN_IF_ERROR(DeleteInodeRow(tx, node.parent_id, node.name, node.depth, &existed));
      if (existed) {
        ns_removed++;
        if (!node.is_dir) ss_removed += node.size * node.replication;
      }
    }
    return UpdateQuotaUsage(tx, quota_ancestors, -ns_removed, -ss_removed,
                            /*enforce=*/false);
  });
}

hops::Status Namenode::DeleteBatchPipelined(const std::vector<SubtreeNode>& batch,
                                            const std::vector<Inode>& quota_ancestors) {
  return RunTx(std::nullopt, [&](kv::Txn& tx) -> hops::Status {
    // Stage 1: reads, all in flight together -- one X-locking existence
    // probe batch covering every inode row at both candidate partition
    // rules (rows that crossed the random-partition boundary in a move keep
    // their insert-time partition), plus one batch carrying every file's
    // artifact fan-out. Both flush as ONE overlapped window where the
    // per-row path paid a trip per inode and two per file.
    struct InodeProbe {
      size_t primary_slot = 0;
      size_t alternate_slot = SIZE_MAX;
      uint64_t primary_pv = 0;
      uint64_t alternate_pv = 0;
    };
    kv::ReadBatch probes;
    std::vector<InodeProbe> probe_slots;
    probe_slots.reserve(batch.size());
    for (const SubtreeNode& node : batch) {
      InodeProbe p;
      const InodePvPair pv = InodePvCandidates(node.depth, node.parent_id, node.name);
      p.primary_pv = pv.primary;
      p.primary_slot = probes.Get(schema_->inodes, kv::Key{node.parent_id, node.name},
                                  kv::LockMode::kExclusive, pv.primary);
      if (pv.dual) {
        p.alternate_pv = pv.alternate;
        p.alternate_slot = probes.Get(schema_->inodes, kv::Key{node.parent_id, node.name},
                                      kv::LockMode::kExclusive, pv.alternate);
      }
      probe_slots.push_back(p);
    }
    auto probe_pending = tx.ExecuteAsync(probes);

    // One batch carries every file's artifact fan-out; it pipelines with
    // the probe batch, so the whole read stage is ONE overlapped window.
    struct FileFanout {
      const SubtreeNode* node = nullptr;
      FileArtifactSlots slots;
    };
    kv::ReadBatch fanout;
    std::vector<FileFanout> fanouts;
    for (const SubtreeNode& node : batch) {
      if (node.is_dir) continue;
      fanouts.push_back(FileFanout{&node, StageFileArtifactReads(fanout, node.id)});
    }
    kv::Pending fanout_pending;
    if (!fanout.empty()) fanout_pending = tx.ExecuteAsync(fanout);
    HOPS_RETURN_IF_ERROR(probe_pending.Wait());
    if (fanout_pending.valid()) HOPS_RETURN_IF_ERROR(fanout_pending.Wait());

    // Stage 2: one write batch stages every row removal + invalidation; the
    // probes' X locks pin the inode rows, so the staged deletes cannot race
    // a concurrent re-create.
    kv::WriteBatch writes;
    int64_t ns_removed = 0;
    int64_t ss_removed = 0;
    for (size_t i = 0; i < batch.size(); ++i) {
      const SubtreeNode& node = batch[i];
      const InodeProbe& p = probe_slots[i];
      bool at_primary = probes.row(p.primary_slot).has_value();
      bool at_alternate = !at_primary && p.alternate_slot != SIZE_MAX &&
                          probes.row(p.alternate_slot).has_value();
      if (at_primary || at_alternate) {
        writes.Delete(schema_->inodes, kv::Key{node.parent_id, node.name},
                      at_primary ? p.primary_pv : p.alternate_pv);
        ns_removed++;
        if (!node.is_dir) ss_removed += node.size * node.replication;
      }  // else: already gone (a crashed predecessor's progress)
      if (node.has_quota) writes.DeleteIfExists(schema_->quotas, {node.id});
    }
    for (const FileFanout& f : fanouts) {
      StageFileArtifactRemovals(fanout, f.slots, f.node->id, writes);
    }
    HOPS_RETURN_IF_ERROR(tx.Execute(writes));
    return UpdateQuotaUsage(tx, quota_ancestors, -ns_removed, -ss_removed,
                            /*enforce=*/false);
  });
}

hops::Status Namenode::SubtreeDelete(const std::vector<std::string>& components,
                                     const UserContext& user) {
  auto snap_or = SubtreeLockAndQuiesce(components, SubtreeOp::kDelete, user);
  if (!snap_or.ok()) return snap_or.status();
  SubtreeSnapshot& snap = *snap_or;

  if (die_at_ && die_at_("subtree:quiesced")) {
    Kill();
    return hops::Status::Failover("namenode crashed after quiescing the subtree");
  }

  // Phase 3: bottom-up (post-order) parallel batched deletes. Children are
  // always removed before their parents, so a crash leaves a connected,
  // consistent namespace -- the client just re-runs the delete (§6.2).
  ThreadPool pool(static_cast<size_t>(std::max(1, config_->subtree_parallelism)));
  const int batch_size = std::max(1, config_->subtree_delete_batch);
  for (size_t li = snap.levels.size(); li-- > 0;) {
    const auto& level = snap.levels[li];
    std::mutex err_mu;
    hops::Status first_error;
    std::atomic<bool> failed{false};
    for (size_t base = 0; base < level.size(); base += static_cast<size_t>(batch_size)) {
      if (die_at_ && die_at_("subtree:batch")) {
        Kill();
        pool.Wait();
        return hops::Status::Failover("namenode crashed mid-delete");
      }
      size_t end = std::min(level.size(), base + static_cast<size_t>(batch_size));
      std::vector<SubtreeNode> batch(level.begin() + static_cast<long>(base),
                                     level.begin() + static_cast<long>(end));
      pool.Submit([&, batch = std::move(batch)] {
        if (failed.load(std::memory_order_relaxed)) return;
        hops::Status st = DeleteBatch(batch, snap.ancestors);
        if (!st.ok()) {
          std::lock_guard<std::mutex> lock(err_mu);
          if (!failed.exchange(true)) first_error = st;
        }
      });
    }
    pool.Wait();
    if (failed.load()) {
      (void)SubtreeAbort(snap);
      // Some batches already committed their deletes: hints below the root
      // are part-dead. Over-invalidate the whole prefix (locally and in the
      // log) rather than leave them poisoning batched reads everywhere.
      PublishHintInvalidation({JoinPath(components)}, SubtreeOp::kDelete);
      return first_error;
    }
  }

  // The root row is gone (its flag with it); drop the op registration and
  // touch the parent directory.
  UnregisterMySubtreeOp(snap.root.id);
  return RunTx(std::nullopt, [&](kv::Txn& tx) -> hops::Status {
    hops::Status st = tx.Delete(schema_->active_subtree_ops, {snap.root.id});
    if (!st.ok() && st.code() != hops::StatusCode::kNotFound) return st;
    if (snap.root.parent_id != kRootInode && !snap.ancestors.empty()) {
      const Inode& rc_parent = snap.ancestors.back();
      auto out = ReadInode(tx, rc_parent.parent_id, rc_parent.name,
                           static_cast<int>(components.size()) - 1,
                           kv::LockMode::kExclusive);
      if (out.ok() && out->inode.id == snap.root.parent_id) {
        Inode parent = out->inode;
        parent.mtime = NowMicros();
        HOPS_RETURN_IF_ERROR(tx.Update(schema_->inodes, ToRow(parent), out->pv));
      }
    }
    return hops::Status::Ok();
  });
}

hops::Status Namenode::SubtreeRename(const std::vector<std::string>& src,
                                     const std::vector<std::string>& dst,
                                     const UserContext& user) {
  auto snap_or = SubtreeLockAndQuiesce(src, SubtreeOp::kMove, user);
  if (!snap_or.ok()) return snap_or.status();
  SubtreeSnapshot& snap = *snap_or;

  if (die_at_ && die_at_("subtree:quiesced")) {
    Kill();
    return hops::Status::Failover("namenode crashed after quiescing the subtree");
  }

  // Phase 3: a single transaction rewrites only the subtree root's row; the
  // inner inodes reference their parents by id and are untouched.
  hops::Status st = RunTx(std::nullopt, [&](kv::Txn& tx) -> hops::Status {
    LockSpec rc_dst;
    rc_dst.target_mode = kv::LockMode::kReadCommitted;
    rc_dst.target_must_exist = false;
    HOPS_ASSIGN_OR_RETURN(dst_r, ResolveAndLock(tx, dst, rc_dst));
    HOPS_RETURN_IF_ERROR(CheckPathTraversal(dst_r, user));
    if (dst_r.target_exists) return hops::Status::AlreadyExists(JoinPath(dst));
    Inode& dst_parent_rc = dst_r.parent_of_target();
    HOPS_RETURN_IF_ERROR(CheckAccess(dst_parent_rc, user, 2));

    // Lock in left-ordered DFS total order: src parent, src root, dst
    // parent, dst slot (deduplicated, sorted).
    struct Item {
      std::vector<std::string> path;
      InodeId parent;
      std::string name;
      int depth;
      bool must_exist;
      Inode out;
      uint64_t out_pv = 0;
      bool found = false;
    };
    auto parent_path = [](const std::vector<std::string>& p) {
      return std::vector<std::string>(p.begin(), p.end() - 1);
    };
    std::vector<Item> items;
    if (src.size() >= 2) {
      const Inode& sp = snap.ancestors.back();
      items.push_back({parent_path(src), sp.parent_id, sp.name,
                       static_cast<int>(src.size()) - 1, true, {}, 0, false});
    }
    items.push_back({src, snap.root.parent_id, snap.root.name,
                     static_cast<int>(src.size()), true, {}, 0, false});
    if (dst.size() >= 2 && parent_path(dst) != parent_path(src)) {
      items.push_back({parent_path(dst), dst_parent_rc.parent_id, dst_parent_rc.name,
                       static_cast<int>(dst.size()) - 1, true, {}, 0, false});
    }
    items.push_back({dst, dst_parent_rc.id, dst.back(), static_cast<int>(dst.size()),
                     false, {}, 0, false});
    std::sort(items.begin(), items.end(),
              [](const Item& a, const Item& b) { return LockOrderLess(a.path, b.path); });
    // Batched lock phase: one round trip for every lock item, waits in the
    // path total order (see ReadLockItemsBatched).
    std::vector<LockItem> refs;
    refs.reserve(items.size());
    for (const auto& item : items) refs.push_back({item.parent, item.name, item.depth});
    HOPS_ASSIGN_OR_RETURN(lock_reads, ReadLockItemsBatched(tx, refs));
    for (size_t i = 0; i < items.size(); ++i) {
      auto& item = items[i];
      if (lock_reads[i].has_value()) {
        item.found = true;
        item.out = std::move(lock_reads[i]->inode);
        item.out_pv = lock_reads[i]->pv;
      } else if (item.must_exist) {
        return hops::Status::TxAborted("path changed during subtree rename");
      }
    }
    auto find_item = [&](const std::vector<std::string>& p) -> Item* {
      for (auto& item : items) {
        if (item.path == p) return &item;
      }
      return nullptr;
    };
    Item* src_item = find_item(src);
    Item* dst_item = find_item(dst);
    if (dst_item->found) return hops::Status::AlreadyExists(JoinPath(dst));
    if (src_item->out.id != snap.root.id ||
        src_item->out.subtree_lock_owner != id_safe()) {
      return hops::Status::TxAborted("subtree root changed under the lock");
    }

    HOPS_RETURN_IF_ERROR(tx.Delete(
        schema_->inodes, kv::Key{src_item->out.parent_id, src_item->out.name},
        src_item->out_pv));
    Inode moved = src_item->out;
    moved.parent_id = dst_item->parent;
    moved.name = dst.back();
    moved.mtime = NowMicros();
    moved.subtree_lock_owner = kNoSubtreeLock;  // released by the same commit
    HOPS_RETURN_IF_ERROR(
        tx.Insert(schema_->inodes, ToRow(moved),
                  InodePv(static_cast<int>(dst.size()), moved.parent_id, moved.name)));

    int64_t now = NowMicros();
    Item* src_parent_item = src.size() >= 2 ? find_item(parent_path(src)) : nullptr;
    Item* dst_parent_item = dst.size() >= 2 ? find_item(parent_path(dst)) : nullptr;
    if (src_parent_item != nullptr && src_parent_item->found) {
      src_parent_item->out.mtime = now;
      HOPS_RETURN_IF_ERROR(
          tx.Update(schema_->inodes, ToRow(src_parent_item->out), src_parent_item->out_pv));
    }
    if (dst_parent_item != nullptr && dst_parent_item != src_parent_item &&
        dst_parent_item->found) {
      dst_parent_item->out.mtime = now;
      HOPS_RETURN_IF_ERROR(
          tx.Update(schema_->inodes, ToRow(dst_parent_item->out), dst_parent_item->out_pv));
    }

    // The whole subtree's usage migrates between the two ancestor chains.
    std::vector<Inode> dst_ancestors(dst_r.chain.begin(), dst_r.chain.end());
    HOPS_RETURN_IF_ERROR(UpdateQuotaUsage(tx, snap.ancestors, -snap.inode_count,
                                          -snap.byte_count, /*enforce=*/false));
    HOPS_RETURN_IF_ERROR(UpdateQuotaUsage(tx, dst_ancestors, +snap.inode_count,
                                          +snap.byte_count, /*enforce=*/true));
    hops::Status del = tx.Delete(schema_->active_subtree_ops, {snap.root.id});
    if (!del.ok() && del.code() != hops::StatusCode::kNotFound) return del;
    return hops::Status::Ok();
  });
  if (st.ok()) {
    UnregisterMySubtreeOp(snap.root.id);
  } else if (st.code() != hops::StatusCode::kFailover) {
    (void)SubtreeAbort(snap);
  }
  return st;
}

hops::Status Namenode::SubtreeSetAttr(
    const std::vector<std::string>& components, std::optional<int64_t> perm,
    std::optional<std::pair<std::string, std::string>> owner, const UserContext& user) {
  auto snap_or = SubtreeLockAndQuiesce(components, SubtreeOp::kSetAttr, user);
  if (!snap_or.ok()) return snap_or.status();
  SubtreeSnapshot& snap = *snap_or;
  hops::Status st = RunTx(std::nullopt, [&](kv::Txn& tx) -> hops::Status {
    auto out = ReadInode(tx, snap.root.parent_id, snap.root.name,
                         static_cast<int>(components.size()), kv::LockMode::kExclusive);
    if (!out.ok()) return out.status();
    Inode inode = out->inode;
    if (inode.id != snap.root.id || inode.subtree_lock_owner != id_safe()) {
      return hops::Status::TxAborted("subtree root changed under the lock");
    }
    if (perm) {
      if (!user.superuser && user.user != inode.owner) {
        return hops::Status::PermissionDenied("only the owner may chmod");
      }
      inode.perm = *perm;
    }
    if (owner) {
      inode.owner = owner->first;
      inode.group = owner->second;
    }
    inode.mtime = NowMicros();
    inode.subtree_lock_owner = kNoSubtreeLock;
    HOPS_RETURN_IF_ERROR(tx.Update(schema_->inodes, ToRow(inode), out->pv));
    hops::Status del = tx.Delete(schema_->active_subtree_ops, {snap.root.id});
    if (!del.ok() && del.code() != hops::StatusCode::kNotFound) return del;
    return hops::Status::Ok();
  });
  if (st.ok()) {
    UnregisterMySubtreeOp(snap.root.id);
  } else if (st.code() != hops::StatusCode::kFailover) {
    (void)SubtreeAbort(snap);
  }
  return st;
}

hops::Status Namenode::SubtreeSetQuota(const std::vector<std::string>& components,
                                       int64_t ns_quota, int64_t ss_quota,
                                       const UserContext& user) {
  auto snap_or = SubtreeLockAndQuiesce(components, SubtreeOp::kSetQuota, user);
  if (!snap_or.ok()) return snap_or.status();
  SubtreeSnapshot& snap = *snap_or;
  hops::Status st = RunTx(std::nullopt, [&](kv::Txn& tx) -> hops::Status {
    auto out = ReadInode(tx, snap.root.parent_id, snap.root.name,
                         static_cast<int>(components.size()), kv::LockMode::kExclusive);
    if (!out.ok()) return out.status();
    Inode inode = out->inode;
    if (inode.id != snap.root.id || inode.subtree_lock_owner != id_safe()) {
      return hops::Status::TxAborted("subtree root changed under the lock");
    }
    bool clearing = ns_quota < 0 && ss_quota < 0;
    if (clearing) {
      hops::Status del = tx.Delete(schema_->quotas, {inode.id});
      if (!del.ok() && del.code() != hops::StatusCode::kNotFound) return del;
      inode.has_quota = false;
    } else {
      // Usage counters initialize from the quiesced snapshot (the directory
      // counts itself in its namespace usage, as in HDFS).
      DirectoryQuota q{inode.id, ns_quota, ss_quota, snap.inode_count, snap.byte_count};
      HOPS_RETURN_IF_ERROR(tx.Write(schema_->quotas, ToRow(q)));
      inode.has_quota = true;
    }
    inode.subtree_lock_owner = kNoSubtreeLock;
    HOPS_RETURN_IF_ERROR(tx.Update(schema_->inodes, ToRow(inode), out->pv));
    hops::Status del = tx.Delete(schema_->active_subtree_ops, {inode.id});
    if (!del.ok() && del.code() != hops::StatusCode::kNotFound) return del;
    return hops::Status::Ok();
  });
  if (st.ok()) {
    UnregisterMySubtreeOp(snap.root.id);
  } else if (st.code() != hops::StatusCode::kFailover) {
    (void)SubtreeAbort(snap);
  }
  return st;
}

}  // namespace hops::fs
