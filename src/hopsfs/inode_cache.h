// The inode hint cache (paper §5.1), trie-backed.
//
// Each namenode caches the primary keys of path components:
// path prefix -> (parent inode id, inode id). Given a full hit, a path of
// depth N resolves with a single batched primary-key read instead of N
// round trips. Entries go stale on moves (< 2% of a typical workload); a
// stale hint makes the batched read miss and the namenode falls back to
// recursive resolution, repairing the cache.
//
// Layout: a path trie (one node per path component) whose hint-bearing
// nodes are threaded onto an intrusive LRU list. `InvalidatePrefix` -- the
// rename/delete path -- detaches ONE subtree edge in O(depth) and parks the
// detached subtree in a graveyard instead of scanning the whole cache under
// the mutex; the subtree's LRU entries are reclaimed lazily (amortized O(1)
// per invalidated entry) by eviction and a threshold-triggered sweep.
//
// Epochs: every invalidation bumps the cache epoch and plants a barrier on
// the (fresh) prefix node. A `Put` must carry the epoch snapshotted when its
// resolution *started*; if any node on the put path carries a newer barrier,
// the put is rejected -- an in-flight resolution that read pre-rename state
// can therefore never re-insert a dead hint after the invalidation ran.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "hopsfs/types.h"

namespace hops::fs {

class InodeHintCache {
 public:
  struct Hint {
    InodeId parent_id = kInvalidInode;
    InodeId inode_id = kInvalidInode;
    // Cached inode kind, when the producing resolution knew it. A known
    // directory lets a warm stat skip staging the file-only fan-out rider
    // it would always discard; `is_dir_known == false` (hints from older
    // producers or probes) keeps the speculative behavior.
    bool is_dir = false;
    bool is_dir_known = false;
  };

  // A chain lookup result: hints for components[0..k) plus the epoch the
  // chain was read at (to be passed back into Put by the resolution that
  // consumed it).
  struct Chain {
    std::vector<Hint> hints;
    uint64_t epoch = 0;
  };

  // Aggregate counters (all monotonic).
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t invalidations = 0;         // InvalidatePrefix calls
    uint64_t entries_invalidated = 0;   // live hints detached by them
    uint64_t stale_put_rejections = 0;  // puts rejected by an epoch barrier
  };

  // capacity 0 disables caching entirely (ablation).
  explicit InodeHintCache(size_t capacity);
  ~InodeHintCache();

  InodeHintCache(const InodeHintCache&) = delete;
  InodeHintCache& operator=(const InodeHintCache&) = delete;

  // Returns hints for components[0..k) for the longest cached chain k,
  // starting at the root, refreshing recency and counting hit/miss stats.
  // hints[i] corresponds to path prefix /components[0]/../components[i].
  Chain LookupChain(const std::vector<std::string>& components) const;

  // Like LookupChain but side-effect free: no recency refresh, no hit/miss
  // accounting. For speculative probes whose resolution performs its own
  // counted lookup (e.g. the getBlockLocations fan-out rider).
  Chain PeekChain(const std::vector<std::string>& components) const;

  // Records that the prefix ending at components[depth_index] resolves to
  // `inode_id` under `parent_id`. `epoch` must be the cache epoch observed
  // when the resolution producing this hint began (LookupChain's epoch, or
  // epoch() for resolutions that skipped the lookup); the put is dropped if
  // the prefix was invalidated since. `is_dir` records the inode kind when
  // the producer knows it (nullopt leaves the kind unknown).
  void Put(const std::vector<std::string>& components, size_t depth_index,
           InodeId parent_id, InodeId inode_id, uint64_t epoch,
           std::optional<bool> is_dir = std::nullopt);

  // Drops every cached entry at/under `path_prefix` (move/delete
  // invalidation): O(depth) subtree detach + barrier, no cache scan.
  // Returns the planted barrier's epoch: a resolution that itself proved
  // the prefix dead (under lock) may continue Putting with that value --
  // its own barrier admits it while any later invalidation still rejects.
  uint64_t InvalidatePrefix(const std::string& path_prefix);

  void Clear();

  // Current epoch; snapshot BEFORE the database reads that will feed a Put.
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  Stats stats() const;
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  size_t size() const;

  // --- Test introspection ----------------------------------------------------
  // Trie nodes touched by the most recent InvalidatePrefix (the O(depth)
  // claim: stays ~path depth even on a full-capacity cache).
  size_t last_invalidate_visited() const;
  // Invalidated entries still awaiting lazy LRU unlink.
  size_t dead_in_lru() const;
  size_t graveyard_size() const;

 private:
  struct Node {
    std::string name;
    Node* parent = nullptr;
    std::unordered_map<std::string, std::unique_ptr<Node>> children;

    Hint hint;
    bool has_hint = false;
    // Live hint entries in this node's subtree, itself included. Maintained
    // on the O(depth) put/evict/invalidate paths so a detach knows the
    // subtree's weight without walking it.
    int64_t subtree_hints = 0;
    // Puts whose epoch snapshot predates this barrier are rejected. The
    // stamp bounds the barrier's lifetime: one far older than any possible
    // in-flight resolution may be reclaimed by the amortized trie prune
    // (an over-aged put landing then is just a stale hint -- lazily
    // repaired, never wrong).
    uint64_t barrier_epoch = 0;
    int64_t barrier_stamp = 0;

    // Intrusive LRU linkage; linked iff has_hint, or dead pending reclaim.
    Node* lru_prev = nullptr;
    Node* lru_next = nullptr;
    bool in_lru = false;

    // Graveyard bookkeeping, used only on detached subtree roots.
    bool detached = false;
    int64_t dead_pending = 0;  // LRU-linked nodes awaiting lazy unlink
    size_t graveyard_index = 0;
  };

  // All helpers below require mu_ held.
  void LruLinkFront(Node* n) const;
  void LruUnlink(Node* n) const;
  void LruMoveFront(Node* n) const;
  static bool IsDead(const Node* n);
  void UnlinkDead(Node* n);
  void ReleaseGraveyard(Node* dead_root);
  void EvictIfNeeded();
  void SweepDeadIfNeeded();
  void PruneTrieIfNeeded();
  bool PruneNode(Node* n, int64_t barrier_cutoff);
  const Node* WalkPrefix(const std::vector<std::string>& components,
                         std::vector<Hint>* hints) const;

  const size_t capacity_;
  mutable std::mutex mu_;
  mutable Node root_;  // the "/" node; never carries a hint
  // LRU: most recently used at the head. Recency updates are logically
  // const, so lookups may splice.
  mutable Node* lru_head_ = nullptr;
  mutable Node* lru_tail_ = nullptr;
  size_t size_ = 0;          // live hint entries
  size_t dead_in_lru_ = 0;   // detached entries awaiting lazy unlink
  std::vector<std::unique_ptr<Node>> graveyard_;
  size_t last_invalidate_visited_ = 0;
  // Barrier plants since the last trie prune; the trigger that keeps
  // barrier + skeleton nodes (which are outside the size_/capacity_
  // accounting) from accumulating without bound.
  size_t barriers_planted_ = 0;
  std::atomic<uint64_t> epoch_{1};
  mutable std::atomic<uint64_t> hits_{0};
  mutable std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> invalidations_{0};
  std::atomic<uint64_t> entries_invalidated_{0};
  std::atomic<uint64_t> stale_put_rejections_{0};
};

}  // namespace hops::fs
