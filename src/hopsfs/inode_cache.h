// The inode hint cache (paper §5.1).
//
// Each namenode caches the primary keys of path components:
// path prefix -> (parent inode id, inode id). Given a full hit, a path of
// depth N resolves with a single batched primary-key read instead of N
// round trips. Entries go stale on moves (< 2% of a typical workload); a
// stale hint makes the batched read miss and the namenode falls back to
// recursive resolution, repairing the cache.
#pragma once

#include <atomic>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "hopsfs/types.h"

namespace hops::fs {

class InodeHintCache {
 public:
  struct Hint {
    InodeId parent_id = kInvalidInode;
    InodeId inode_id = kInvalidInode;
  };

  // capacity 0 disables caching entirely (ablation).
  explicit InodeHintCache(size_t capacity) : capacity_(capacity) {}

  // Returns hints for components[0..k) for the longest cached chain k,
  // starting at the root. hints[i] corresponds to path prefix
  // /components[0]/../components[i].
  std::vector<Hint> LookupChain(const std::vector<std::string>& components) const;

  // Records that the prefix ending at components[depth_index] resolves to
  // `inode_id` under `parent_id`.
  void Put(const std::vector<std::string>& components, size_t depth_index,
           InodeId parent_id, InodeId inode_id);

  // Drops every cached entry under `path_prefix` (move/delete invalidation).
  void InvalidatePrefix(const std::string& path_prefix);

  void Clear();

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  size_t size() const;

 private:
  static std::string PrefixKey(const std::vector<std::string>& components, size_t end);
  void EvictIfNeeded();  // caller holds mu_

  const size_t capacity_;
  mutable std::mutex mu_;
  // LRU: most recently used at the front (recency updates are logically
  // const, so lookups may splice).
  mutable std::list<std::string> lru_;
  struct Entry {
    Hint hint;
    std::list<std::string>::iterator lru_it;
  };
  std::unordered_map<std::string, Entry> map_;
  mutable std::atomic<uint64_t> hits_{0};
  mutable std::atomic<uint64_t> misses_{0};
};

}  // namespace hops::fs
