// Path parsing and the global lock-ordering comparator.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace hops::fs {

// Splits "/a/b/c" into {"a","b","c"}; "/" yields {}. Rejects empty paths,
// relative paths, empty components, and "." / "..".
hops::Result<std::vector<std::string>> SplitPath(std::string_view path);

std::string JoinPath(const std::vector<std::string>& components);

// True if `ancestor` is a path prefix of `descendant` on component
// boundaries ("/a/b" covers "/a/b/c" but not "/a/bc"). A path covers itself.
bool IsPrefixPath(std::string_view ancestor, std::string_view descendant);

// Left-ordered depth-first total order over paths (paper §5): a directory
// precedes its descendants, and siblings order lexicographically. Locking
// multiple paths in this order prevents cyclic deadlocks.
bool LockOrderLess(const std::vector<std::string>& a, const std::vector<std::string>& b);

}  // namespace hops::fs
