// Block life-cycle management and the datanode protocol: block receipt
// (RUC -> Replica), block reports (§7.7), datanode failure handling
// (Replica -> URB), the replication monitor (URB -> PRB + RUC), and
// invalidation delivery (Inv). Block-state changes lock the *block* row,
// which sits below the inode in the metadata hierarchy (§5.2.1), so they
// serialize against file-level operations without touching the inode row.
#include <algorithm>
#include <map>
#include <unordered_set>

#include "hopsfs/namenode.h"
#include "util/clock.h"

namespace hops::fs {

namespace {

// Stages removal of replicas[base..end) in `tx`: ONE probe batch carries
// every replica's triple (X-locking block get, X-locking replica get --
// pinning the row so a concurrent operation cannot invalidate the staged
// delete -- and a replica-population scan shared by same-block siblings) in
// a single round trip, then one write batch stages the deletes and
// under-replication markers. `removed` is reset per attempt so a retried
// transaction never double counts. Shared by ProcessBlockReport pass 2 and
// HandleDatanodeFailure.
hops::Status RemoveReplicaChunk(const MetadataSchema* schema, kv::Txn& tx,
                                const std::vector<Replica>& replicas, size_t base, size_t end,
                                int64_t* removed) {
  *removed = 0;
  struct ProbeSlots {
    size_t block_slot = 0;
    size_t replica_slot = 0;
    size_t reps_slot = 0;
  };
  kv::ReadBatch probes;
  std::vector<ProbeSlots> slots;
  slots.reserve(end - base);
  std::map<std::pair<InodeId, BlockId>, size_t> scan_slots;
  for (size_t i = base; i < end; ++i) {
    const Replica& rep = replicas[i];
    ProbeSlots p;
    p.block_slot =
        probes.Get(schema->blocks, {rep.inode_id, rep.block_id}, kv::LockMode::kExclusive);
    p.replica_slot = probes.Get(schema->replicas, {rep.inode_id, rep.block_id, rep.datanode_id},
                                kv::LockMode::kExclusive);
    auto [it, fresh] = scan_slots.try_emplace(std::make_pair(rep.inode_id, rep.block_id), 0);
    if (fresh) it->second = probes.Scan(schema->replicas, {rep.inode_id, rep.block_id});
    p.reps_slot = it->second;
    slots.push_back(p);
  }
  HOPS_RETURN_IF_ERROR(tx.Execute(probes));
  kv::WriteBatch writes;
  // Several removed replicas of the SAME block can sit in one chunk; the
  // under-replication check must see the siblings' staged deletes, not just
  // the shared pre-delete snapshot.
  std::map<std::pair<InodeId, BlockId>, int64_t> staged_deletes;
  for (size_t i = base; i < end; ++i) {
    const ProbeSlots& p = slots[i - base];
    const Replica& rep = replicas[i];
    if (!probes.row(p.replica_slot).has_value()) {
      continue;  // consumed by a concurrent operation before our lock
    }
    writes.Delete(schema->replicas, {rep.inode_id, rep.block_id, rep.datanode_id});
    (*removed)++;
    int64_t staged = ++staged_deletes[{rep.inode_id, rep.block_id}];
    if (probes.row(p.block_slot).has_value()) {
      Block b = BlockFromRow(*probes.row(p.block_slot));
      int64_t population = static_cast<int64_t>(probes.rows(p.reps_slot).size());
      if (population - staged < b.replication) {
        Replica urb{rep.inode_id, rep.block_id, 0, ReplicaState::kFinalized};
        writes.Write(schema->urb, ToRow(urb));
      }
    }
  }
  return tx.Execute(writes);
}

}  // namespace

hops::Status Namenode::BlockReceived(DatanodeId dn, BlockId block_id) {
  HOPS_RETURN_IF_ERROR(CheckAlive());
  return RunTx(
      kv::TxHint{schema_->block_lookup, static_cast<uint64_t>(block_id)},
      [&](kv::Txn& tx) -> hops::Status {
        auto lookup = tx.Read(schema_->block_lookup, {block_id}, kv::LockMode::kReadCommitted);
        if (!lookup.ok()) {
          // The file was deleted while the datanode wrote: stale receipt.
          return lookup.status().code() == hops::StatusCode::kNotFound ? hops::Status::Ok()
                                                                       : lookup.status();
        }
        InodeId inode = (*lookup)[col::kLookupInode].i64();
        auto block_row = tx.Read(schema_->blocks, {inode, block_id}, kv::LockMode::kExclusive);
        if (!block_row.ok()) {
          return block_row.status().code() == hops::StatusCode::kNotFound
                     ? hops::Status::Ok()
                     : block_row.status();
        }
        Block b = BlockFromRow(*block_row);
        // The life-cycle flips (RUC consumed, replica finalized, pending
        // re-replication satisfied) stage in one batched round trip.
        kv::WriteBatch writes;
        writes.DeleteIfExists(schema_->ruc, {inode, block_id, dn});
        Replica rep{inode, block_id, dn, ReplicaState::kFinalized};
        writes.Write(schema_->replicas, ToRow(rep));
        writes.DeleteIfExists(schema_->prb, {inode, block_id, dn});
        HOPS_RETURN_IF_ERROR(tx.Execute(writes));
        // Fully replicated again? Clear the under-replication marker.
        HOPS_ASSIGN_OR_RETURN(reps, tx.Ppis(schema_->replicas, {inode, block_id}));
        if (static_cast<int64_t>(reps.size()) >= b.replication) {
          hops::Status st = tx.Delete(schema_->urb, {inode, block_id, int64_t{0}});
          if (!st.ok() && st.code() != hops::StatusCode::kNotFound) return st;
        }
        return hops::Status::Ok();
      });
}

hops::Result<BlockReportResult> Namenode::ProcessBlockReport(
    DatanodeId dn, const std::vector<BlockId>& report) {
  HOPS_RETURN_IF_ERROR(CheckAlive());
  BlockReportResult result;
  constexpr size_t kChunk = 512;

  // Pass 1: every reported block is validated against the namespace with a
  // batched primary-key lookup; replicas the metadata is missing are added,
  // blocks unknown to the namespace are queued for invalidation. Each chunk
  // costs three batched round trips (lookup fan-out, replica match, staged
  // repairs) however many blocks it covers.
  for (size_t base = 0; base < report.size(); base += kChunk) {
    size_t end = std::min(report.size(), base + kChunk);
    // Tallied per attempt and folded into `result` only after the
    // transaction commits, so a retried chunk is not counted twice.
    BlockReportResult chunk;
    hops::Status st = RunTx(std::nullopt, [&](kv::Txn& tx) -> hops::Status {
      chunk = BlockReportResult{};
      std::vector<kv::Key> keys;
      keys.reserve(end - base);
      for (size_t i = base; i < end; ++i) keys.push_back({report[i]});
      HOPS_ASSIGN_OR_RETURN(lookups, tx.BatchRead(schema_->block_lookup, keys,
                                                  kv::LockMode::kReadCommitted));
      kv::WriteBatch repairs;
      std::vector<kv::Key> replica_keys;
      for (size_t i = 0; i < lookups.size(); ++i) {
        if (!lookups[i].has_value()) {
          // Orphaned block on the datanode (e.g. re-created namespace).
          Replica orphan{kInvalidInode, report[base + i], dn, ReplicaState::kFinalized};
          repairs.Write(schema_->inv, ToRow(orphan));
          chunk.orphans_invalidated++;
          continue;
        }
        InodeId inode = (*lookups[i])[col::kLookupInode].i64();
        replica_keys.push_back({inode, report[base + i], static_cast<int64_t>(dn)});
      }
      HOPS_ASSIGN_OR_RETURN(replica_rows, tx.BatchRead(schema_->replicas, replica_keys,
                                                       kv::LockMode::kReadCommitted));
      for (size_t j = 0; j < replica_rows.size(); ++j) {
        if (replica_rows[j].has_value()) {
          chunk.blocks_matched++;
        } else {
          InodeId inode = replica_keys[j][0].i64();
          BlockId blk = replica_keys[j][1].i64();
          Replica rep{inode, blk, dn, ReplicaState::kFinalized};
          repairs.Write(schema_->replicas, ToRow(rep));
          repairs.DeleteIfExists(schema_->ruc, {inode, blk, static_cast<int64_t>(dn)});
          chunk.replicas_added++;
        }
      }
      return tx.Execute(repairs);
    });
    if (!st.ok()) return st;
    result.blocks_matched += chunk.blocks_matched;
    result.replicas_added += chunk.replicas_added;
    result.orphans_invalidated += chunk.orphans_invalidated;
  }

  // Pass 2: replicas the metadata attributes to this datanode that the
  // report does not confirm are removed (and re-replication queued). This is
  // the expensive half: an index scan over the replica table, then -- per
  // chunk of stale replicas -- one transaction batching every per-replica
  // probe (an X-locking block read + a replica-population scan each) into a
  // single round trip, with one write batch staging the removals. The
  // per-row path paid a whole transaction (3-4 trips) per stale replica.
  std::unordered_set<BlockId> reported(report.begin(), report.end());
  std::vector<Replica> stale;
  {
    auto tx = db_->Begin();
    kv::ScanOptions opts;
    opts.eq_filter = {{col::kReplicaDatanode, kv::Value(static_cast<int64_t>(dn))}};
    auto rows = tx->IndexScan(schema_->replicas, {}, opts);
    if (!rows.ok()) return rows.status();
    for (const auto& row : *rows) {
      Replica rep = ReplicaFromRow(row);
      if (!reported.count(rep.block_id)) stale.push_back(rep);
    }
  }
  constexpr size_t kStaleChunk = 128;
  for (size_t base = 0; base < stale.size(); base += kStaleChunk) {
    const size_t end = std::min(stale.size(), base + kStaleChunk);
    int64_t removed = 0;
    hops::Status st = RunTx(std::nullopt, [&](kv::Txn& tx) -> hops::Status {
      return RemoveReplicaChunk(schema_, tx, stale, base, end, &removed);
    });
    if (!st.ok()) return st;
    result.replicas_removed += removed;
  }
  return result;
}

hops::Result<int64_t> Namenode::HandleDatanodeFailure(DatanodeId dn) {
  HOPS_RETURN_IF_ERROR(CheckAlive());
  // Collect the failed datanode's replicas and in-flight writes. The replica
  // table is partitioned by inode id, so a per-datanode sweep is a full
  // index scan -- acceptable for rare housekeeping (leader-only).
  std::vector<Replica> lost;
  std::vector<Replica> lost_ruc;
  {
    auto tx = db_->Begin();
    kv::ScanOptions opts;
    opts.eq_filter = {{col::kReplicaDatanode, kv::Value(static_cast<int64_t>(dn))}};
    auto rows = tx->IndexScan(schema_->replicas, {}, opts);
    if (!rows.ok()) return rows.status();
    for (const auto& row : *rows) lost.push_back(ReplicaFromRow(row));
    auto ruc_rows = tx->IndexScan(schema_->ruc, {}, opts);
    if (!ruc_rows.ok()) return ruc_rows.status();
    for (const auto& row : *ruc_rows) lost_ruc.push_back(ReplicaFromRow(row));
  }
  // The per-row path paid a whole transaction (3-4 round trips) per lost
  // replica. Each chunk now runs ONE transaction through the same
  // RemoveReplicaChunk pipeline ProcessBlockReport pass 2 uses: one probe
  // batch round trip, one write batch of removals + under-replication
  // markers.
  int64_t affected = 0;
  constexpr size_t kChunk = 128;
  for (size_t base = 0; base < lost.size(); base += kChunk) {
    const size_t end = std::min(lost.size(), base + kChunk);
    int64_t removed = 0;
    hops::Status st = RunTx(std::nullopt, [&](kv::Txn& tx) -> hops::Status {
      return RemoveReplicaChunk(schema_, tx, lost, base, end, &removed);
    });
    if (!st.ok()) return st;
    affected += removed;
  }
  // In-flight writes the datanode will never finish: drop the whole chunk's
  // RUC rows in one write batch per transaction.
  constexpr size_t kRucChunk = 256;
  for (size_t base = 0; base < lost_ruc.size(); base += kRucChunk) {
    const size_t end = std::min(lost_ruc.size(), base + kRucChunk);
    hops::Status st = RunTx(std::nullopt, [&](kv::Txn& tx) -> hops::Status {
      kv::WriteBatch writes;
      for (size_t i = base; i < end; ++i) {
        const Replica& rep = lost_ruc[i];
        writes.DeleteIfExists(schema_->ruc, {rep.inode_id, rep.block_id, rep.datanode_id});
      }
      return tx.Execute(writes);
    });
    if (!st.ok()) return st;
  }
  return affected;
}

hops::Result<int64_t> Namenode::RunReplicationMonitor() {
  HOPS_RETURN_IF_ERROR(CheckAlive());
  // URB is small in steady state; the replication manager (leader) sweeps it.
  std::vector<std::pair<InodeId, BlockId>> queue;
  {
    auto tx = db_->Begin();
    auto rows = tx->FullTableScan(schema_->urb);
    if (!rows.ok()) return rows.status();
    for (const auto& row : *rows) {
      queue.emplace_back(row[col::kReplicaInode].i64(), row[col::kReplicaBlock].i64());
    }
  }
  int64_t scheduled = 0;
  for (const auto& [inode, blk] : queue) {
    hops::Status st = RunTx(
        kv::TxHint{schema_->blocks, static_cast<uint64_t>(inode)},
        [&](kv::Txn& tx) -> hops::Status {
          auto block_row = tx.Read(schema_->blocks, {inode, blk}, kv::LockMode::kExclusive);
          if (!block_row.ok()) {
            if (block_row.status().code() == hops::StatusCode::kNotFound) {
              hops::Status del = tx.Delete(schema_->urb, {inode, blk, int64_t{0}});
              if (!del.ok() && del.code() != hops::StatusCode::kNotFound) return del;
              return hops::Status::Ok();
            }
            return block_row.status();
          }
          Block b = BlockFromRow(*block_row);
          HOPS_ASSIGN_OR_RETURN(reps, tx.Ppis(schema_->replicas, {inode, blk}));
          if (static_cast<int64_t>(reps.size()) >= b.replication) {
            hops::Status del = tx.Delete(schema_->urb, {inode, blk, int64_t{0}});
            if (!del.ok() && del.code() != hops::StatusCode::kNotFound) return del;
            return hops::Status::Ok();
          }
          // Pick a datanode that does not already hold a replica.
          std::unordered_set<DatanodeId> holders;
          for (const auto& row : reps) {
            holders.insert(row[col::kReplicaDatanode].i64());
          }
          std::vector<DatanodeId> candidates;
          {
            std::lock_guard<std::mutex> lock(dn_picker_mu_);
            if (dn_picker_) {
              candidates = dn_picker_(static_cast<int>(b.replication + holders.size()));
            }
          }
          for (DatanodeId dn : candidates) {
            if (holders.count(dn)) continue;
            Replica target{inode, blk, dn, ReplicaState::kFinalized};
            HOPS_RETURN_IF_ERROR(tx.Write(schema_->ruc, ToRow(target)));
            HOPS_RETURN_IF_ERROR(tx.Write(schema_->prb, ToRow(target)));
            scheduled++;
            return hops::Status::Ok();
          }
          return hops::Status::Ok();  // no eligible datanode right now
        });
    if (!st.ok()) return st;
  }
  return scheduled;
}

hops::Result<std::vector<BlockId>> Namenode::FetchInvalidations(DatanodeId dn) {
  HOPS_RETURN_IF_ERROR(CheckAlive());
  // Scan and consume the queue in ONE transaction: the batched delete rides
  // right behind the scan instead of starting a second transaction (which
  // cost a separate lock round trip and 2PC, and could lose commands queued
  // between the two). A datanode re-fetches on failure, so all-or-nothing
  // delivery is fine.
  std::vector<BlockId> blocks;
  hops::Status st = RunTx(std::nullopt, [&](kv::Txn& tx) -> hops::Status {
    blocks.clear();
    kv::ScanOptions opts;
    opts.eq_filter = {{col::kReplicaDatanode, kv::Value(static_cast<int64_t>(dn))}};
    HOPS_ASSIGN_OR_RETURN(rows, tx.IndexScan(schema_->inv, {}, opts));
    if (rows.empty()) return hops::Status::Ok();
    kv::WriteBatch writes;
    blocks.reserve(rows.size());
    for (const auto& row : rows) {
      Replica rep = ReplicaFromRow(row);
      writes.DeleteIfExists(schema_->inv, {rep.inode_id, rep.block_id, rep.datanode_id});
      blocks.push_back(rep.block_id);
    }
    return tx.Execute(writes);
  });
  if (!st.ok()) return st;
  return blocks;
}

}  // namespace hops::fs
