// Simulated datanode: stores block ids (the paper benchmarks with zero-length
// files -- only metadata is under test), generates block reports, and drives
// the write pipeline by acknowledging received blocks to a namenode.
#pragma once

#include <algorithm>
#include <mutex>
#include <set>
#include <vector>

#include "hopsfs/types.h"

namespace hops::fs {

class Datanode {
 public:
  explicit Datanode(DatanodeId id) : id_(id) {}

  DatanodeId id() const { return id_; }
  bool alive() const { return alive_; }
  void Kill() { alive_ = false; }
  void Restart() { alive_ = true; }

  void StoreBlock(BlockId block) {
    std::lock_guard<std::mutex> lock(mu_);
    blocks_.insert(block);
  }

  void DropBlock(BlockId block) {
    std::lock_guard<std::mutex> lock(mu_);
    blocks_.erase(block);
  }

  bool HasBlock(BlockId block) const {
    std::lock_guard<std::mutex> lock(mu_);
    return blocks_.count(block) > 0;
  }

  size_t NumBlocks() const {
    std::lock_guard<std::mutex> lock(mu_);
    return blocks_.size();
  }

  // Full block report (§7.7): ids of every stored block.
  std::vector<BlockId> GenerateBlockReport() const {
    std::lock_guard<std::mutex> lock(mu_);
    return std::vector<BlockId>(blocks_.begin(), blocks_.end());
  }

 private:
  const DatanodeId id_;
  std::atomic<bool> alive_{true};
  mutable std::mutex mu_;
  std::set<BlockId> blocks_;
};

}  // namespace hops::fs
