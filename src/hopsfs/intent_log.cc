#include "hopsfs/intent_log.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdio>

#include "util/clock.h"

namespace hops::fs {

namespace {

thread_local bool t_on_applier = false;

// True when one path covers the other: equal, or one is a path-component
// prefix of the other ("/a/b" relates to "/a/b/c" but not to "/a/bc").
bool PrefixRelated(const std::string& a, const std::string& b) {
  if (a == b) return true;
  const std::string& s = a.size() < b.size() ? a : b;
  const std::string& l = a.size() < b.size() ? b : a;
  if (s == "/") return true;
  return l.size() > s.size() && l.compare(0, s.size(), s) == 0 && l[s.size()] == '/';
}

// "/a/b/c" -> "/a/b". Mutations X-lock the parent inode, so two in-flight
// applies under one parent would only defer-and-retry each other in the
// mux's lock pass -- pure overhead on the shared completion thread.
std::string_view ParentOf(const std::string& path) {
  const size_t pos = path.rfind('/');
  if (pos == std::string::npos || pos == 0) return std::string_view("/");
  return std::string_view(path.data(), pos);
}

}  // namespace

kv::Row ToRow(const IntentRecord& rec) {
  return kv::Row{rec.nn,
                  rec.seq,
                  static_cast<int64_t>(rec.op),
                  rec.path,
                  rec.client,
                  rec.user,
                  int64_t{rec.superuser ? 1 : 0},
                  rec.perm,
                  rec.owner,
                  rec.group,
                  rec.mtime};
}

IntentRecord IntentFromRow(const kv::Row& r) {
  IntentRecord rec;
  rec.nn = r[col::kIntentNn].i64();
  rec.seq = r[col::kIntentSeq].i64();
  rec.op = static_cast<IntentOp>(r[col::kIntentOp].i64());
  rec.path = r[col::kIntentPath].str();
  rec.client = r[col::kIntentClient].str();
  rec.user = r[col::kIntentUser].str();
  rec.superuser = r[col::kIntentSuper].i64() != 0;
  rec.perm = r[col::kIntentPerm].i64();
  rec.owner = r[col::kIntentOwner].str();
  rec.group = r[col::kIntentGroup].str();
  rec.mtime = r[col::kIntentMtime].i64();
  return rec;
}

bool IntentLog::OnApplierThread() { return t_on_applier; }

IntentLog::ApplierScope::ApplierScope() : prev_(t_on_applier) { t_on_applier = true; }
IntentLog::ApplierScope::~ApplierScope() { t_on_applier = prev_; }

IntentLog::IntentLog(kv::Engine* db, const MetadataSchema* schema, const FsConfig* config)
    : db_(db), schema_(schema), config_(config) {}

IntentLog::~IntentLog() { Stop(); }

void IntentLog::Start(NamenodeId self, ApplyFn apply) {
  if (applier_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    self_ = self;
    apply_ = std::move(apply);
    stop_ = false;
    abandoned_ = false;
  }
  applier_ = std::thread([this] { ApplierLoop(); });
  cleaner_ = std::thread([this] { CleanerLoop(); });
  // The extra claimers: together with applier_ they form the barrier-free
  // apply pool, each pulling eligible intents straight off the queue.
  const int workers = std::max(0, config_->intent_apply_batch - 1);
  apply_workers_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    apply_workers_.emplace_back([this] { ApplyClaimLoop(); });
  }
}

void IntentLog::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (applier_.joinable()) applier_.join();
  if (cleaner_.joinable()) cleaner_.join();
  for (auto& w : apply_workers_) w.join();
  apply_workers_.clear();
}

void IntentLog::Abandon() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    abandoned_ = true;
  }
  cv_.notify_all();
}

void IntentLog::SetTraceSink(std::function<void(const kv::CostTrace&)> sink) {
  std::lock_guard<std::mutex> lock(trace_mu_);
  trace_fn_ = std::move(sink);
}

// --- Pending index -----------------------------------------------------------

std::optional<IntentLog::PendingInfo> IntentLog::LookupPending(const std::string& path) const {
  if (pending_count_.load(std::memory_order_acquire) == 0) return std::nullopt;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = pending_.find(path);
  if (it == pending_.end()) return std::nullopt;
  return PendingInfo{it->second.is_dir, it->second.user};
}

bool IntentLog::HasPendingPrefix(const std::string& path) const {
  if (pending_count_.load(std::memory_order_acquire) == 0) return false;
  std::lock_guard<std::mutex> lock(mu_);
  if (pending_.count(path) > 0) return true;
  for (size_t pos = path.find('/', 1); pos != std::string::npos;
       pos = path.find('/', pos + 1)) {
    if (pending_.count(path.substr(0, pos)) > 0) return true;
  }
  return false;
}

hops::Status IntentLog::ReserveCreate(const std::string& path, const std::string& user) {
  std::lock_guard<std::mutex> lock(mu_);
  if (stop_ || abandoned_) return hops::Status::Unavailable("intent log stopped");
  auto it = pending_.find(path);
  if (it != pending_.end()) return hops::Status::AlreadyExists(path);
  pending_.emplace(path, Pending{false, user, 1});
  pending_count_.fetch_add(1, std::memory_order_release);
  return hops::Status::Ok();
}

hops::Status IntentLog::ReserveDir(const std::string& path, const std::string& user) {
  std::lock_guard<std::mutex> lock(mu_);
  if (stop_ || abandoned_) return hops::Status::Unavailable("intent log stopped");
  auto it = pending_.find(path);
  if (it != pending_.end()) {
    if (!it->second.is_dir) return hops::Status::NotDirectory(path);
    it->second.ops++;
    return hops::Status::Ok();
  }
  pending_.emplace(path, Pending{true, user, 1});
  pending_count_.fetch_add(1, std::memory_order_release);
  return hops::Status::Ok();
}

void IntentLog::ReserveTouch(const std::string& path, bool is_dir, const std::string& user) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = pending_.find(path);
  if (it != pending_.end()) {
    it->second.ops++;
    return;
  }
  pending_.emplace(path, Pending{is_dir, user, 1});
  pending_count_.fetch_add(1, std::memory_order_release);
}

void IntentLog::AbortReservation(const std::string& path) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ReleaseOneLocked(path);
  }
  cv_.notify_all();
}

void IntentLog::ReleaseOneLocked(const std::string& path) {
  auto it = pending_.find(path);
  if (it == pending_.end()) return;
  if (--it->second.ops <= 0) {
    pending_.erase(it);
    pending_count_.fetch_sub(1, std::memory_order_release);
  }
}

bool IntentLog::CoveredLocked(const std::string& path) const {
  if (pending_.empty()) return false;
  if (path == "/") return true;
  // Exact entry or a pending strict ancestor.
  if (pending_.count(path) > 0) return true;
  for (size_t pos = path.find('/', 1); pos != std::string::npos;
       pos = path.find('/', pos + 1)) {
    if (pending_.count(path.substr(0, pos)) > 0) return true;
  }
  // A pending path strictly below `path` (listing / subtree dependence).
  const std::string below = path + "/";
  auto it = pending_.lower_bound(below);
  return it != pending_.end() && it->first.compare(0, below.size(), below) == 0;
}

void IntentLog::WaitCovering(const std::string& path) const {
  if (t_on_applier) return;
  if (pending_count_.load(std::memory_order_acquire) == 0) return;
  std::unique_lock<std::mutex> lock(mu_);
  if (stop_ || abandoned_ || !CoveredLocked(path)) return;
  covering_waits_.fetch_add(1, std::memory_order_relaxed);
  cv_.wait_for(lock, config_->intent_wait_timeout,
               [&] { return stop_ || abandoned_ || !CoveredLocked(path); });
}

void IntentLog::Flush() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] {
    return stop_ || abandoned_ ||
           (append_queue_.empty() && !appending_ && apply_queue_.empty() &&
            applying_ == 0 && pending_.empty() && cleanup_queue_.empty() && !cleaning_);
  });
}

void IntentLog::SetApplierPausedForTesting(bool paused) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    applier_paused_ = paused;
  }
  cv_.notify_all();
}

void IntentLog::SetAppendHoldForTesting(bool hold) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    append_hold_ = hold;
  }
  cv_.notify_all();
}

size_t IntentLog::QueuedAppendsForTesting() const {
  std::lock_guard<std::mutex> lock(mu_);
  return append_queue_.size();
}

void IntentLog::SetCrashHookForTesting(CrashHook hook) {
  std::lock_guard<std::mutex> lock(hook_mu_);
  crash_hook_ = std::move(hook);
}

void IntentLog::SetCleanerPausedForTesting(bool paused) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    cleaner_paused_ = paused;
  }
  cv_.notify_all();
}

bool IntentLog::CrashAt(std::string_view point) {
  CrashHook hook;
  {
    std::lock_guard<std::mutex> lock(hook_mu_);
    hook = crash_hook_;
  }
  if (!hook || !hook(point)) return false;
  // A crash here is process death: park every stage without cleanup, exactly
  // like Kill(). Durable rows stay for replay/adoption.
  Abandon();
  return true;
}

// --- Append stage ------------------------------------------------------------

hops::Status IntentLog::Submit(IntentRecord rec) {
  auto w = std::make_shared<AppendWaiter>();
  rec.submit_micros = MonotonicMicros();
  rec.mtime = NowMicros();
  w->rec = std::move(rec);
  std::unique_lock<std::mutex> lock(mu_);
  if (stop_ || abandoned_) {
    ReleaseOneLocked(w->rec.path);
    return hops::Status::Unavailable("intent log stopped");
  }
  append_queue_.push_back(w);
  // Group-commit leadership rides the submitting threads themselves: the
  // first waiter to observe no append in flight drains the WHOLE queue
  // (everything queued while the previous append was in flight) in one
  // transaction under a single head X-lock; the others block until their
  // leader marks them done. No dedicated appender thread means the ack path
  // pays no cross-thread handoff -- the leader's latency is its own
  // transaction, a follower's is the tail of the in-flight one.
  for (;;) {
    if (w->done) return w->result;
    if (stop_ || abandoned_) {
      auto it = std::find(append_queue_.begin(), append_queue_.end(), w);
      if (it != append_queue_.end()) {
        append_queue_.erase(it);
        ReleaseOneLocked(w->rec.path);
        return hops::Status::Unavailable("intent log stopped");
      }
      // Already claimed by an in-flight leader; its outcome decides.
      cv_.wait(lock, [&] { return w->done; });
      return w->result;
    }
    if (!appending_ && !append_hold_ && !append_queue_.empty()) {
      std::vector<std::shared_ptr<AppendWaiter>> batch(append_queue_.begin(),
                                                       append_queue_.end());
      append_queue_.clear();
      appending_ = true;
      lock.unlock();
      hops::Status st = AppendBatchTx(batch);
      lock.lock();
      appending_ = false;
      for (size_t i = 0; i < batch.size(); ++i) {
        auto& b = batch[i];
        if (st.ok()) {
          appended_.fetch_add(1, std::memory_order_relaxed);
          if (i > 0) coalesced_.fetch_add(1, std::memory_order_relaxed);
          apply_queue_.push_back(b->rec);
        } else {
          ReleaseOneLocked(b->rec.path);
        }
        b->result = st;
        b->done = true;
      }
      cv_.notify_all();
      continue;  // our own waiter was in the drained queue, so done is set
    }
    cv_.wait(lock);
  }
}

hops::Status IntentLog::AppendBatchTx(std::vector<std::shared_ptr<AppendWaiter>>& batch) {
  std::function<void(const kv::CostTrace&)> sink;
  {
    std::lock_guard<std::mutex> lock(trace_mu_);
    sink = trace_fn_;
  }
  hops::Status st;
  for (int attempt = 0; attempt < 8; ++attempt) {
    auto tx = db_->Begin(kv::TxHint{schema_->intent_heads, static_cast<uint64_t>(self_)});
    if (sink) tx->EnableTrace();
    // The append IS the acknowledgment: flush solo rather than queue in the
    // completion mux behind apply/handler throughput work. Its only lock is
    // our own head row, which nothing outside this (appending_-serialized)
    // path X-locks while the namenode is alive.
    tx->SetLatencySensitive(true);
    // Allocate the seq range under the X lock on OUR OWN head row (a failed
    // locked read still locks the key slot, guarding the first insert):
    // per-namenode sequence order equals commit order by construction, and
    // no other namenode ever X-locks this row.
    int64_t seq = 1;
    auto head = tx->Read(schema_->intent_heads, {self_}, kv::LockMode::kExclusive);
    if (head.ok()) {
      seq = (*head)[col::kIntentHeadNext].i64();
    } else if (head.status().code() != hops::StatusCode::kNotFound) {
      if (tx->active()) tx->Abort();
      st = head.status();
      if (st.IsRetryableTx()) continue;
      return st;
    }
    st = hops::Status::Ok();
    for (auto& w : batch) {
      w->rec.nn = self_;
      w->rec.seq = seq++;
      st = tx->Insert(schema_->op_intents, ToRow(w->rec));
      if (!st.ok()) break;
    }
    if (st.ok()) st = tx->Write(schema_->intent_heads, kv::Row{self_, seq});
    if (st.ok() && CrashAt("append:pre-commit")) {
      // Nothing durable yet: the waiters fail un-acked and nothing replays.
      if (tx->active()) tx->Abort();
      return hops::Status::Failover("crash injected before intent append commit");
    }
    if (st.ok()) st = tx->Commit();
    if (st.ok() && CrashAt("append:post-commit")) {
      // Durable but never acknowledged: replay applies the rows idempotently
      // even though the submitters saw a failure.
      return hops::Status::Failover("crash injected after intent append commit");
    }
    if (st.ok()) {
      if (sink) sink(tx->trace());
      return st;
    }
    if (tx->active()) tx->Abort();
    if (!st.IsRetryableTx()) return st;
  }
  return st.ok() ? hops::Status::TxAborted("intent append retries exhausted") : st;
}

// --- Apply stage -------------------------------------------------------------

void IntentLog::ApplierLoop() {
  // The applier "thread" is just the first of intent_apply_batch identical
  // claimers; all policy lives in ApplyClaimLoop.
  ApplyClaimLoop();
}

// mu_ held. Index of the first intent in apply_queue_ that may apply NOW:
// prefix-related neither to any in-flight path nor to any EARLIER queued
// intent -- the second check is what keeps per-path apply order equal to
// acknowledgment order (a later op on a path never overtakes an earlier
// one). The scan is budgeted so a deep queue of mutually related intents
// does not turn every claim into a quadratic walk; blocked claimers are
// re-woken as applies finish. Returns npos when nothing in budget is
// eligible.
size_t IntentLog::EligibleIndexLocked() const {
  const size_t budget =
      std::min(apply_queue_.size(),
               static_cast<size_t>(8 * std::max(1, config_->intent_apply_batch)));
  for (size_t i = 0; i < budget; ++i) {
    const std::string& path = apply_queue_[i].path;
    // Same-parent siblings commute semantically but contend on the parent's
    // X-lock, so an in-flight sibling blocks too (an earlier QUEUED sibling
    // does not: reordering around it is safe and finds work elsewhere).
    bool blocked = std::any_of(in_flight_.begin(), in_flight_.end(), [&](const std::string& p) {
      return PrefixRelated(p, path) || ParentOf(p) == ParentOf(path);
    });
    for (size_t j = 0; !blocked && j < i; ++j) {
      blocked = PrefixRelated(apply_queue_[j].path, path);
    }
    if (!blocked) return i;
  }
  return static_cast<size_t>(-1);
}

void IntentLog::ApplyClaimLoop() {
  ApplierScope scope;
  constexpr size_t kNone = static_cast<size_t>(-1);
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    size_t idx = kNone;
    cv_.wait(lock, [&] {
      if (stop_ || abandoned_) return true;
      if (applier_paused_ || apply_queue_.empty()) return false;
      idx = EligibleIndexLocked();
      return idx != kNone;
    });
    if (stop_ || abandoned_) return;
    IntentRecord rec = std::move(apply_queue_[idx]);
    apply_queue_.erase(apply_queue_.begin() + static_cast<ptrdiff_t>(idx));
    in_flight_.push_back(rec.path);
    ++applying_;
    lock.unlock();

    hops::Status result = ApplyOneWithRetry(rec);
    if (result.ok() && CrashAt("apply:applied")) {
      // Applied but the row survives (no cleanup ran): the replay after
      // restart must map the already-applied mutation to success.
      result = hops::Status::Failover("crash injected after intent apply");
    }
    const int64_t now = MonotonicMicros();

    lock.lock();
    auto fit = std::find(in_flight_.begin(), in_flight_.end(), rec.path);
    if (fit != in_flight_.end()) in_flight_.erase(fit);
    --applying_;
    if (result.code() == hops::StatusCode::kFailover) {
      // The namenode died under us: leave the rows (and pending entries)
      // for the leader's adoption and park every stage.
      abandoned_ = true;
      cv_.notify_all();
      return;
    }
    // Exactly-once modulo idempotent replay: the row is deleted only after
    // the apply committed, so an acknowledged op can never be lost. The
    // delete itself runs on the cleaner thread -- off the drain path --
    // which merges applied intents into chunked transactions; a crash in
    // the window re-applies idempotently.
    cleanup_queue_.push_back(rec);
    applied_.fetch_add(1, std::memory_order_relaxed);
    if (!result.ok()) {
      // Terminal failure of an acknowledged op -- by design only reachable
      // through acknowledged-state validation races; loud because every
      // occurrence deserves a look.
      std::fprintf(stderr, "intent apply failed (nn=%lld seq=%lld path=%s): %s\n",
                   static_cast<long long>(rec.nn), static_cast<long long>(rec.seq),
                   rec.path.c_str(), result.ToString().c_str());
      apply_failures_.fetch_add(1, std::memory_order_relaxed);
    }
    if (rec.submit_micros > 0) {
      apply_latency_us_.fetch_add(static_cast<uint64_t>(now - rec.submit_micros),
                                  std::memory_order_relaxed);
    }
    ReleaseOneLocked(rec.path);
    // Finishing this path may unblock queued intents for other claimers,
    // and Flush/WaitCovering waiters watch the same condition.
    cv_.notify_all();
  }
}

hops::Status IntentLog::ApplyOneWithRetry(const IntentRecord& rec) {
  hops::Status st;
  // A retryable conflict must never consume the intent -- the op was
  // acknowledged, so contention retries are unbounded (capped backoff).
  // Only terminal statuses fall through; if the log is shutting down
  // mid-retry, park via the failover path so the rows survive for
  // replay/adoption.
  if (CrashAt("apply:claimed")) {
    return hops::Status::Failover("crash injected before intent apply");
  }
  for (int attempt = 0;; ++attempt) {
    st = apply_(rec);
    if (!st.IsRetryableTx()) break;
    {
      std::lock_guard<std::mutex> check(mu_);
      if (stop_ || abandoned_) {
        return hops::Status::Failover("intent log stopping mid-apply");
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(std::min(attempt + 1, 10)));
  }
  return st;
}

void IntentLog::CleanerLoop() {
  ApplierScope scope;  // cleanup trips are background work in cost traces
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_.wait(lock, [&] {
      return stop_ || abandoned_ || (!cleanup_queue_.empty() && !cleaner_paused_);
    });
    if (stop_ || abandoned_) return;  // leftover rows replay idempotently
    // Merge everything applied since the last pass -- dozens of intents
    // under load -- into chunked delete transactions.
    std::vector<IntentRecord> recs(cleanup_queue_.begin(), cleanup_queue_.end());
    cleanup_queue_.clear();
    cleaning_ = true;
    lock.unlock();
    if (CrashAt("cleanup:pre")) return;  // every applied row survives
    constexpr size_t kChunk = 64;
    for (size_t off = 0; off < recs.size(); off += kChunk) {
      std::vector<IntentRecord> chunk(
          recs.begin() + static_cast<ptrdiff_t>(off),
          recs.begin() + static_cast<ptrdiff_t>(std::min(off + kChunk, recs.size())));
      DeleteIntentRows(chunk);
      // Mid-pass crash: some chunks deleted, the rest replay idempotently.
      if (off + kChunk < recs.size() && CrashAt("cleanup:mid")) return;
    }
    if (CrashAt("cleanup:post")) return;  // all rows gone; nothing replays
    lock.lock();
    cleaning_ = false;
    cv_.notify_all();  // Flush waiters
  }
}

void IntentLog::DeleteIntentRows(const std::vector<IntentRecord>& recs) {
  if (recs.empty()) return;
  std::function<void(const kv::CostTrace&)> sink;
  {
    std::lock_guard<std::mutex> lock(trace_mu_);
    sink = trace_fn_;
  }
  for (int attempt = 0; attempt < 8; ++attempt) {
    auto tx =
        db_->Begin(kv::TxHint{schema_->op_intents, static_cast<uint64_t>(recs.front().nn)});
    if (sink) {
      tx->EnableTrace();
      tx->SetBackground(true);
    }
    // Applied rows are touched by nobody but us (an adopter only sweeps dead
    // namenodes), so run the delete solo on this thread rather than taxing
    // the shared completion loop with it -- the mux's cycles belong to the
    // apply transactions racing the drain.
    tx->SetLatencySensitive(true);
    hops::Status st;
    for (const auto& rec : recs) {
      st = tx->Delete(schema_->op_intents, {rec.nn, rec.seq});
      if (st.code() == hops::StatusCode::kNotFound) st = hops::Status::Ok();
      if (!st.ok()) break;
    }
    if (st.ok()) st = tx->Commit();
    if (st.ok()) {
      if (sink) sink(tx->trace());
      return;
    }
    if (tx->active()) tx->Abort();
    // At-least-once replay tolerates a leaked row: the next adoption sweep
    // re-applies it idempotently and deletes it.
    if (!st.IsRetryableTx()) return;
  }
}

IntentLogStats IntentLog::stats() const {
  IntentLogStats s;
  s.intents_appended = appended_.load(std::memory_order_relaxed);
  s.intents_applied = applied_.load(std::memory_order_relaxed);
  s.intents_coalesced = coalesced_.load(std::memory_order_relaxed);
  s.apply_failures = apply_failures_.load(std::memory_order_relaxed);
  s.acked_ops = acked_ops_.load(std::memory_order_relaxed);
  s.ack_latency_us = ack_latency_us_.load(std::memory_order_relaxed);
  s.apply_latency_us = apply_latency_us_.load(std::memory_order_relaxed);
  s.covering_waits = covering_waits_.load(std::memory_order_relaxed);
  return s;
}

void IntentLog::RecordAck(uint64_t latency_us) {
  acked_ops_.fetch_add(1, std::memory_order_relaxed);
  ack_latency_us_.fetch_add(latency_us, std::memory_order_relaxed);
}

}  // namespace hops::fs
