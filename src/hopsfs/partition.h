// Inode partition placement (paper §4.2, §4.2.1).
//
// Inodes are partitioned by their parent inode id so a directory's children
// share a shard (efficient `ls` via a partition-pruned index scan). Near the
// root that rule creates hotspots -- every path resolution touches the root's
// shard -- so inodes at depth <= random_partition_depth are instead spread
// pseudo-randomly by hashing their own name. Listing such a directory
// degrades to an index scan across all shards, the trade-off §4.2.1 accepts.
#pragma once

#include <cstdint>
#include <string_view>

#include "hopsfs/types.h"
#include "util/hash.h"

namespace hops::fs {

// Partition value for an inode located at `depth` (root = 0) with the given
// parent and name.
inline uint64_t InodePartitionValue(int depth, InodeId parent_id, std::string_view name,
                                    int random_partition_depth) {
  if (depth <= random_partition_depth) return HashBytes(name);
  return static_cast<uint64_t>(parent_id);
}

inline uint64_t RootPartitionValue() { return HashBytes(""); }

// Partition value for listing the children of directory `dir` at `dir_depth`.
// Children live at dir_depth + 1; returns false when the children are
// pseudo-randomly scattered (the caller must fall back to an index scan).
inline bool ChildrenArePruned(int dir_depth, int random_partition_depth) {
  return dir_depth + 1 > random_partition_depth;
}

inline uint64_t ChildrenPartitionValue(InodeId dir_id) {
  return static_cast<uint64_t>(dir_id);
}

}  // namespace hops::fs
