// Namenode handler pool (paper §7.1): a fixed set of handler threads
// fronting the namenode's transactional operations. Client calls enqueue a
// request and block until a handler has executed it; each handler owns the
// transaction(s) of the request it is running, so with N handlers a
// namenode drives up to N concurrent transactions -- whose flush windows
// the NDB layer's completion mux merges into shared overlapped round trips.
// The pool bounds namenode-side concurrency the way HDFS/HopsFS handler
// counts do, while any number of client threads may be enqueued behind it.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/status.h"

namespace hops::fs {

class HandlerPool {
 public:
  explicit HandlerPool(int num_handlers);
  ~HandlerPool();

  HandlerPool(const HandlerPool&) = delete;
  HandlerPool& operator=(const HandlerPool&) = delete;

  // Enqueues `op` and blocks until a handler ran it; returns its status.
  // Must not be called from a handler thread (callers dispatch through
  // OnHandlerThread() to run nested work inline instead).
  hops::Status Run(const std::function<hops::Status()>& op);

  // True when the calling thread is a pool handler (of any pool); nested
  // dispatches execute inline to keep a request from deadlocking behind
  // itself.
  static bool OnHandlerThread();

  int num_handlers() const { return static_cast<int>(handlers_.size()); }
  uint64_t requests_served() const { return served_.load(std::memory_order_relaxed); }
  size_t queue_depth() const;

 private:
  struct Request {
    const std::function<hops::Status()>* op = nullptr;
    hops::Status result;
    bool done = false;
  };

  void HandlerLoop();

  mutable std::mutex mu_;
  std::condition_variable work_;   // handler wake-ups
  std::condition_variable done_;   // caller wake-ups
  std::deque<Request*> queue_;
  bool stop_ = false;
  std::atomic<uint64_t> served_{0};
  std::vector<std::thread> handlers_;
};

}  // namespace hops::fs
