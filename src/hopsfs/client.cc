#include "hopsfs/client.h"

namespace hops::fs {

Namenode* Client::Pick(const std::vector<Namenode*>& nns) {
  std::vector<Namenode*> alive;
  alive.reserve(nns.size());
  for (Namenode* nn : nns) {
    if (nn != nullptr && nn->alive()) alive.push_back(nn);
  }
  if (alive.empty()) return nullptr;
  switch (policy_) {
    case NamenodePolicy::kRandom:
      return alive[rng_.Below(alive.size())];
    case NamenodePolicy::kRoundRobin:
      return alive[rr_next_++ % alive.size()];
    case NamenodePolicy::kSticky: {
      if (sticky_ != nullptr && sticky_->alive()) {
        for (Namenode* nn : alive) {
          if (nn == sticky_) return sticky_;
        }
      }
      if (sticky_ != nullptr) failovers_++;  // our namenode died; switch
      sticky_ = alive[rng_.Below(alive.size())];
      return sticky_;
    }
  }
  return nullptr;
}

template <typename Fn>
auto Client::WithNamenode(Fn&& op) -> decltype(op(std::declval<Namenode&>())) {
  // "HopsFS clients transparently re-execute failed file system operations
  // on one of the remaining namenodes" (§7.6.1).
  for (int attempt = 0; attempt < 8; ++attempt) {
    Namenode* nn = Pick(provider_());
    if (nn == nullptr) {
      return hops::Status::Unavailable("no alive namenode");
    }
    auto result = op(*nn);
    bool failover = [&] {
      if constexpr (std::is_same_v<decltype(result), hops::Status>) {
        return result.code() == hops::StatusCode::kFailover;
      } else {
        return result.status().code() == hops::StatusCode::kFailover;
      }
    }();
    if (!failover) return result;
    failovers_++;
    sticky_ = nullptr;
  }
  return hops::Status::Unavailable("all namenode attempts failed over");
}

hops::Status Client::Mkdirs(const std::string& path) {
  return WithNamenode([&](Namenode& nn) { return nn.Mkdirs(path); });
}

hops::Status Client::CreateFile(const std::string& path) {
  return WithNamenode([&](Namenode& nn) { return nn.Create(path, client_name_); });
}

hops::Result<LocatedBlock> Client::AddBlock(const std::string& path, int64_t num_bytes) {
  return WithNamenode(
      [&](Namenode& nn) { return nn.AddBlock(path, client_name_, num_bytes); });
}

hops::Status Client::CompleteFile(const std::string& path) {
  return WithNamenode([&](Namenode& nn) { return nn.CompleteFile(path, client_name_); });
}

hops::Status Client::Append(const std::string& path) {
  return WithNamenode([&](Namenode& nn) { return nn.Append(path, client_name_); });
}

hops::Result<std::vector<LocatedBlock>> Client::Read(const std::string& path) {
  return WithNamenode([&](Namenode& nn) { return nn.GetBlockLocations(path); });
}

hops::Result<FileStatus> Client::Stat(const std::string& path) {
  return WithNamenode([&](Namenode& nn) { return nn.GetFileInfo(path); });
}

hops::Result<std::vector<FileStatus>> Client::List(const std::string& path) {
  return WithNamenode([&](Namenode& nn) { return nn.ListStatus(path); });
}

hops::Status Client::SetPermission(const std::string& path, int64_t perm) {
  return WithNamenode([&](Namenode& nn) { return nn.SetPermission(path, perm); });
}

hops::Status Client::SetOwner(const std::string& path, const std::string& owner,
                              const std::string& group) {
  return WithNamenode([&](Namenode& nn) { return nn.SetOwner(path, owner, group); });
}

hops::Status Client::SetReplication(const std::string& path, int64_t replication) {
  return WithNamenode([&](Namenode& nn) { return nn.SetReplication(path, replication); });
}

hops::Result<ContentSummary> Client::ContentSummaryOf(const std::string& path) {
  return WithNamenode([&](Namenode& nn) { return nn.GetContentSummary(path); });
}

hops::Status Client::Rename(const std::string& src, const std::string& dst) {
  return WithNamenode([&](Namenode& nn) { return nn.Rename(src, dst); });
}

hops::Status Client::Delete(const std::string& path, bool recursive) {
  return WithNamenode([&](Namenode& nn) { return nn.Delete(path, recursive); });
}

hops::Status Client::SetQuota(const std::string& path, int64_t ns_quota, int64_t ss_quota) {
  return WithNamenode([&](Namenode& nn) { return nn.SetQuota(path, ns_quota, ss_quota); });
}

hops::Status Client::WriteFile(const std::string& path, int num_blocks,
                               int64_t bytes_per_block) {
  HOPS_RETURN_IF_ERROR(CreateFile(path));
  for (int i = 0; i < num_blocks; ++i) {
    auto blk = AddBlock(path, bytes_per_block);
    if (!blk.ok()) return blk.status();
  }
  return CompleteFile(path);
}

}  // namespace hops::fs
