#include "hopsfs/schema.h"

#include "hopsfs/partition.h"

namespace hops::fs {

namespace {

using kv::ColumnType;
using kv::Schema;

Schema InodeSchema() {
  Schema s;
  s.table_name = "inodes";
  s.columns = {{"parent_id", ColumnType::kInt64}, {"name", ColumnType::kString},
               {"id", ColumnType::kInt64},        {"is_dir", ColumnType::kInt64},
               {"perm", ColumnType::kInt64},      {"owner", ColumnType::kString},
               {"grp", ColumnType::kString},      {"mtime", ColumnType::kInt64},
               {"atime", ColumnType::kInt64},     {"size", ColumnType::kInt64},
               {"replication", ColumnType::kInt64}, {"subtree_lock", ColumnType::kInt64},
               {"under_cons", ColumnType::kInt64},  {"has_quota", ColumnType::kInt64}};
  s.primary_key = {col::kInodeParent, col::kInodeName};
  // Partition values are computed by the namenodes (parent id, or hash(name)
  // for the top of the tree) -- see partition.h.
  s.requires_explicit_partition = true;
  return s;
}

Schema BlockSchema() {
  Schema s;
  s.table_name = "blocks";
  s.columns = {{"inode_id", ColumnType::kInt64}, {"block_id", ColumnType::kInt64},
               {"block_index", ColumnType::kInt64}, {"state", ColumnType::kInt64},
               {"gen_stamp", ColumnType::kInt64},   {"num_bytes", ColumnType::kInt64},
               {"replication", ColumnType::kInt64}};
  s.primary_key = {0, 1};
  s.partition_key = {0};
  return s;
}

Schema ReplicaShapedSchema(std::string name) {
  Schema s;
  s.table_name = std::move(name);
  s.columns = {{"inode_id", ColumnType::kInt64},
               {"block_id", ColumnType::kInt64},
               {"datanode_id", ColumnType::kInt64},
               {"state", ColumnType::kInt64}};
  s.primary_key = {0, 1, 2};
  s.partition_key = {0};
  return s;
}

Schema LeaseSchema() {
  Schema s;
  s.table_name = "leases";
  s.columns = {{"inode_id", ColumnType::kInt64},
               {"holder", ColumnType::kString},
               {"last_renewed", ColumnType::kInt64}};
  s.primary_key = {0};
  s.partition_key = {0};
  return s;
}

Schema QuotaSchema() {
  Schema s;
  s.table_name = "quotas";
  s.columns = {{"inode_id", ColumnType::kInt64}, {"ns_quota", ColumnType::kInt64},
               {"ss_quota", ColumnType::kInt64}, {"ns_used", ColumnType::kInt64},
               {"ss_used", ColumnType::kInt64}};
  s.primary_key = {0};
  s.partition_key = {0};
  return s;
}

Schema BlockLookupSchema() {
  Schema s;
  s.table_name = "block_lookup";
  s.columns = {{"block_id", ColumnType::kInt64}, {"inode_id", ColumnType::kInt64}};
  s.primary_key = {0};
  s.partition_key = {0};
  return s;
}

Schema SubtreeOpsSchema() {
  Schema s;
  s.table_name = "active_subtree_ops";
  s.columns = {{"inode_id", ColumnType::kInt64},
               {"nn_id", ColumnType::kInt64},
               {"op", ColumnType::kInt64},
               {"path", ColumnType::kString}};
  s.primary_key = {0};
  s.partition_key = {0};
  return s;
}

Schema LeaderSchema() {
  Schema s;
  s.table_name = "leader";
  s.columns = {{"nn_id", ColumnType::kInt64},
               {"counter", ColumnType::kInt64},
               {"location", ColumnType::kString}};
  s.primary_key = {0};
  s.partition_key = {0};
  return s;
}

Schema VariablesSchema() {
  Schema s;
  s.table_name = "variables";
  s.columns = {{"var_id", ColumnType::kInt64}, {"value", ColumnType::kInt64}};
  s.primary_key = {0};
  s.partition_key = {0};
  return s;
}

Schema HintInvalidationSchema() {
  // Sharded per publishing namenode: PK (nn_id, seq) partitioned by nn_id,
  // so publishers append to disjoint partitions and never contend. One row
  // per publish event; `paths` carries every coalesced prefix (see
  // EncodeHintPaths).
  Schema s;
  s.table_name = "hint_invalidations";
  s.columns = {{"nn_id", ColumnType::kInt64},
               {"seq", ColumnType::kInt64},
               {"op", ColumnType::kInt64},
               {"paths", ColumnType::kString},
               {"mtime", ColumnType::kInt64}};
  s.primary_key = {0, 1};
  s.partition_key = {0};
  return s;
}

Schema HintHeadSchema() {
  // A publisher's next log sequence number. Only the owning namenode ever
  // X-locks its row (held to commit alongside the record insert, so a
  // drainer that read head h has every record below h committed); drainers
  // take brief S locks.
  Schema s;
  s.table_name = "hint_heads";
  s.columns = {{"nn_id", ColumnType::kInt64}, {"next_seq", ColumnType::kInt64}};
  s.primary_key = {0};
  s.partition_key = {0};
  return s;
}

Schema HintAckSchema() {
  // (drainer, publisher) -> highest seq of the publisher's log the drainer
  // has applied. The leader reaps a record once every alive namenode other
  // than the publisher acked past it; TTL stays as the fallback for rows no
  // ack will ever cover.
  Schema s;
  s.table_name = "hint_acks";
  s.columns = {{"drainer", ColumnType::kInt64},
               {"publisher", ColumnType::kInt64},
               {"acked_seq", ColumnType::kInt64},
               {"mtime", ColumnType::kInt64}};
  s.primary_key = {0, 1};
  s.partition_key = {0};
  return s;
}

Schema OpIntentSchema() {
  // Asynchronous metadata commit intent log (one row per acknowledged
  // mutation), sharded per acknowledging namenode like hint_invalidations:
  // PK (nn_id, seq) partitioned by nn_id, seq allocated under the owner's
  // intent_heads row so per-namenode seq order == acknowledgment order. A
  // row is deleted once its apply transaction commits; replay is therefore
  // at-least-once and every intent op is idempotent (a re-applied create
  // maps AlreadyExists to applied).
  Schema s;
  s.table_name = "op_intents";
  s.columns = {{"nn_id", ColumnType::kInt64}, {"seq", ColumnType::kInt64},
               {"op", ColumnType::kInt64},    {"path", ColumnType::kString},
               {"client", ColumnType::kString}, {"user", ColumnType::kString},
               {"superuser", ColumnType::kInt64}, {"perm", ColumnType::kInt64},
               {"owner", ColumnType::kString},  {"grp", ColumnType::kString},
               {"mtime", ColumnType::kInt64}};
  s.primary_key = {0, 1};
  s.partition_key = {0};
  return s;
}

Schema IntentHeadSchema() {
  // A namenode's next intent sequence number; only the owner X-locks it
  // (held to commit alongside the intent inserts), mirroring hint_heads.
  Schema s;
  s.table_name = "intent_heads";
  s.columns = {{"nn_id", ColumnType::kInt64}, {"next_seq", ColumnType::kInt64}};
  s.primary_key = {0};
  s.partition_key = {0};
  return s;
}

}  // namespace

hops::Result<MetadataSchema> MetadataSchema::Format(kv::Engine& cluster) {
  MetadataSchema m;
  HOPS_ASSIGN_OR_RETURN(inodes, cluster.CreateTable(InodeSchema()));
  m.inodes = inodes;
  HOPS_ASSIGN_OR_RETURN(blocks, cluster.CreateTable(BlockSchema()));
  m.blocks = blocks;
  HOPS_ASSIGN_OR_RETURN(replicas, cluster.CreateTable(ReplicaShapedSchema("replicas")));
  m.replicas = replicas;
  HOPS_ASSIGN_OR_RETURN(urb, cluster.CreateTable(ReplicaShapedSchema("under_replicated")));
  m.urb = urb;
  HOPS_ASSIGN_OR_RETURN(prb, cluster.CreateTable(ReplicaShapedSchema("pending_replication")));
  m.prb = prb;
  HOPS_ASSIGN_OR_RETURN(cr, cluster.CreateTable(ReplicaShapedSchema("corrupt_replicas")));
  m.cr = cr;
  HOPS_ASSIGN_OR_RETURN(ruc, cluster.CreateTable(ReplicaShapedSchema("replica_under_cons")));
  m.ruc = ruc;
  HOPS_ASSIGN_OR_RETURN(er, cluster.CreateTable(ReplicaShapedSchema("excess_replicas")));
  m.er = er;
  HOPS_ASSIGN_OR_RETURN(inv, cluster.CreateTable(ReplicaShapedSchema("invalidated")));
  m.inv = inv;
  HOPS_ASSIGN_OR_RETURN(leases, cluster.CreateTable(LeaseSchema()));
  m.leases = leases;
  HOPS_ASSIGN_OR_RETURN(quotas, cluster.CreateTable(QuotaSchema()));
  m.quotas = quotas;
  HOPS_ASSIGN_OR_RETURN(block_lookup, cluster.CreateTable(BlockLookupSchema()));
  m.block_lookup = block_lookup;
  HOPS_ASSIGN_OR_RETURN(subtree_ops, cluster.CreateTable(SubtreeOpsSchema()));
  m.active_subtree_ops = subtree_ops;
  HOPS_ASSIGN_OR_RETURN(leader, cluster.CreateTable(LeaderSchema()));
  m.leader = leader;
  HOPS_ASSIGN_OR_RETURN(variables, cluster.CreateTable(VariablesSchema()));
  m.variables = variables;
  HOPS_ASSIGN_OR_RETURN(hint_inv, cluster.CreateTable(HintInvalidationSchema()));
  m.hint_invalidations = hint_inv;
  HOPS_ASSIGN_OR_RETURN(hint_heads, cluster.CreateTable(HintHeadSchema()));
  m.hint_heads = hint_heads;
  HOPS_ASSIGN_OR_RETURN(hint_acks, cluster.CreateTable(HintAckSchema()));
  m.hint_acks = hint_acks;
  HOPS_ASSIGN_OR_RETURN(op_intents, cluster.CreateTable(OpIntentSchema()));
  m.op_intents = op_intents;
  HOPS_ASSIGN_OR_RETURN(intent_heads, cluster.CreateTable(IntentHeadSchema()));
  m.intent_heads = intent_heads;

  // Root inode (immutable, id 1) and id counters.
  auto tx = cluster.Begin();
  Inode root;
  root.parent_id = kInvalidInode;
  root.name = "";
  root.id = kRootInode;
  root.is_dir = true;
  root.owner = "hdfs";
  root.group = "hdfs";
  HOPS_RETURN_IF_ERROR(tx->Insert(m.inodes, ToRow(root), RootPartitionValue()));
  HOPS_RETURN_IF_ERROR(
      tx->Insert(m.variables, kv::Row{kVarNextInodeId, kRootInode + 1}));
  HOPS_RETURN_IF_ERROR(tx->Insert(m.variables, kv::Row{kVarNextBlockId, int64_t{1}}));
  HOPS_RETURN_IF_ERROR(tx->Insert(m.variables, kv::Row{kVarNextNamenodeId, int64_t{1}}));
  HOPS_RETURN_IF_ERROR(
      tx->Insert(m.variables, kv::Row{kVarNextHintInvalidationSeq, int64_t{1}}));
  HOPS_RETURN_IF_ERROR(tx->Commit());
  return m;
}

std::string EncodeHintPaths(const std::vector<std::string>& prefixes) {
  std::string out;
  for (size_t i = 0; i < prefixes.size(); ++i) {
    if (i > 0) out += '\0';
    out += prefixes[i];
  }
  return out;
}

std::vector<std::string> DecodeHintPaths(const std::string& encoded) {
  std::vector<std::string> out;
  if (encoded.empty()) return out;
  size_t i = 0;
  for (;;) {
    size_t j = encoded.find('\0', i);
    if (j == std::string::npos) {
      out.push_back(encoded.substr(i));
      break;
    }
    out.push_back(encoded.substr(i, j - i));
    i = j + 1;
  }
  return out;
}

kv::Row ToRow(const Inode& n) {
  return kv::Row{n.parent_id,    n.name,   n.id,    int64_t{n.is_dir ? 1 : 0},
                  n.perm,         n.owner,  n.group, n.mtime,
                  n.atime,        n.size,   n.replication,
                  n.subtree_lock_owner, int64_t{n.under_construction ? 1 : 0},
                  int64_t{n.has_quota ? 1 : 0}};
}

Inode InodeFromRow(const kv::Row& r) {
  Inode n;
  n.parent_id = r[col::kInodeParent].i64();
  n.name = r[col::kInodeName].str();
  n.id = r[col::kInodeId].i64();
  n.is_dir = r[col::kInodeIsDir].i64() != 0;
  n.perm = r[col::kInodePerm].i64();
  n.owner = r[col::kInodeOwner].str();
  n.group = r[col::kInodeGroup].str();
  n.mtime = r[col::kInodeMtime].i64();
  n.atime = r[col::kInodeAtime].i64();
  n.size = r[col::kInodeSize].i64();
  n.replication = r[col::kInodeReplication].i64();
  n.subtree_lock_owner = r[col::kInodeSubtreeLock].i64();
  n.under_construction = r[col::kInodeUnderCons].i64() != 0;
  n.has_quota = r[col::kInodeHasQuota].i64() != 0;
  return n;
}

kv::Row ToRow(const Block& b) {
  return kv::Row{b.inode_id, b.block_id,  b.block_index,
                  static_cast<int64_t>(b.state), b.gen_stamp, b.num_bytes, b.replication};
}

Block BlockFromRow(const kv::Row& r) {
  Block b;
  b.inode_id = r[col::kBlockInode].i64();
  b.block_id = r[col::kBlockId].i64();
  b.block_index = r[col::kBlockIndex].i64();
  b.state = static_cast<BlockState>(r[col::kBlockState].i64());
  b.gen_stamp = r[col::kBlockGenStamp].i64();
  b.num_bytes = r[col::kBlockBytes].i64();
  b.replication = r[col::kBlockRepl].i64();
  return b;
}

kv::Row ToRow(const Replica& rep) {
  return kv::Row{rep.inode_id, rep.block_id, rep.datanode_id,
                  static_cast<int64_t>(rep.state)};
}

Replica ReplicaFromRow(const kv::Row& r) {
  Replica rep;
  rep.inode_id = r[col::kReplicaInode].i64();
  rep.block_id = r[col::kReplicaBlock].i64();
  rep.datanode_id = r[col::kReplicaDatanode].i64();
  rep.state = static_cast<ReplicaState>(r[col::kReplicaState].i64());
  return rep;
}

kv::Row ToRow(const Lease& l) { return kv::Row{l.inode_id, l.holder, l.last_renewed}; }

Lease LeaseFromRow(const kv::Row& r) {
  Lease l;
  l.inode_id = r[col::kLeaseInode].i64();
  l.holder = r[col::kLeaseHolder].str();
  l.last_renewed = r[col::kLeaseRenewed].i64();
  return l;
}

kv::Row ToRow(const DirectoryQuota& q) {
  return kv::Row{q.inode_id, q.ns_quota, q.ss_quota, q.ns_used, q.ss_used};
}

DirectoryQuota QuotaFromRow(const kv::Row& r) {
  DirectoryQuota q;
  q.inode_id = r[col::kQuotaInode].i64();
  q.ns_quota = r[col::kQuotaNs].i64();
  q.ss_quota = r[col::kQuotaSs].i64();
  q.ns_used = r[col::kQuotaNsUsed].i64();
  q.ss_used = r[col::kQuotaSsUsed].i64();
  return q;
}

}  // namespace hops::fs
