#include "hopsfs/path.h"

namespace hops::fs {

hops::Result<std::vector<std::string>> SplitPath(std::string_view path) {
  if (path.empty() || path[0] != '/') {
    return hops::Status::InvalidArgument("path must be absolute");
  }
  std::vector<std::string> components;
  size_t i = 1;
  while (i < path.size()) {
    size_t j = path.find('/', i);
    if (j == std::string_view::npos) j = path.size();
    std::string_view part = path.substr(i, j - i);
    if (part.empty()) {
      // Tolerate a single trailing slash; reject interior empty components.
      if (j == path.size()) break;
      return hops::Status::InvalidArgument("empty path component");
    }
    if (part == "." || part == "..") {
      return hops::Status::InvalidArgument("'.' and '..' are not supported");
    }
    components.emplace_back(part);
    i = j + 1;
  }
  return components;
}

std::string JoinPath(const std::vector<std::string>& components) {
  if (components.empty()) return "/";
  std::string out;
  for (const auto& c : components) {
    out += '/';
    out += c;
  }
  return out;
}

bool IsPrefixPath(std::string_view ancestor, std::string_view descendant) {
  if (ancestor == "/") return !descendant.empty() && descendant[0] == '/';
  if (descendant.substr(0, ancestor.size()) != ancestor) return false;
  return descendant.size() == ancestor.size() || descendant[ancestor.size()] == '/';
}

bool LockOrderLess(const std::vector<std::string>& a, const std::vector<std::string>& b) {
  size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    if (a[i] != b[i]) return a[i] < b[i];
  }
  return a.size() < b.size();  // the ancestor (shorter path) locks first
}

}  // namespace hops::fs
