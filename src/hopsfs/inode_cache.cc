#include "hopsfs/inode_cache.h"

#include <algorithm>

#include "hopsfs/path.h"
#include "util/clock.h"

namespace hops::fs {

namespace {
// A barrier only needs to outlive in-flight resolutions (one transaction,
// retries included -- milliseconds to at most a second or two). Far beyond
// that it may be reclaimed; see Node::barrier_epoch.
constexpr int64_t kBarrierTtlMicros = 30LL * 1000 * 1000;
}  // namespace

InodeHintCache::InodeHintCache(size_t capacity) : capacity_(capacity) {}

InodeHintCache::~InodeHintCache() = default;

// --- LRU primitives ----------------------------------------------------------

void InodeHintCache::LruLinkFront(Node* n) const {
  n->lru_prev = nullptr;
  n->lru_next = lru_head_;
  if (lru_head_ != nullptr) lru_head_->lru_prev = n;
  lru_head_ = n;
  if (lru_tail_ == nullptr) lru_tail_ = n;
  n->in_lru = true;
}

void InodeHintCache::LruUnlink(Node* n) const {
  if (n->lru_prev != nullptr) n->lru_prev->lru_next = n->lru_next;
  if (n->lru_next != nullptr) n->lru_next->lru_prev = n->lru_prev;
  if (lru_head_ == n) lru_head_ = n->lru_next;
  if (lru_tail_ == n) lru_tail_ = n->lru_prev;
  n->lru_prev = n->lru_next = nullptr;
  n->in_lru = false;
}

void InodeHintCache::LruMoveFront(Node* n) const {
  if (lru_head_ == n) return;
  LruUnlink(n);
  LruLinkFront(n);
}

// A node is dead iff it hangs off a detached subtree root. Detached roots
// have their parent pointer cut, so the walk terminates at either the trie
// root (live) or a detached root (dead) in O(depth).
bool InodeHintCache::IsDead(const Node* n) {
  for (; n != nullptr; n = n->parent) {
    if (n->detached) return true;
  }
  return false;
}

void InodeHintCache::UnlinkDead(Node* n) {
  Node* dead_root = n;
  while (!dead_root->detached) dead_root = dead_root->parent;
  LruUnlink(n);
  dead_in_lru_--;
  if (--dead_root->dead_pending == 0) ReleaseGraveyard(dead_root);
}

void InodeHintCache::ReleaseGraveyard(Node* dead_root) {
  size_t i = dead_root->graveyard_index;
  if (i + 1 != graveyard_.size()) {
    std::swap(graveyard_[i], graveyard_.back());
    graveyard_[i]->graveyard_index = i;
  }
  graveyard_.pop_back();  // destroys the subtree; no LRU links remain in it
}

// --- Lookup ------------------------------------------------------------------

const InodeHintCache::Node* InodeHintCache::WalkPrefix(
    const std::vector<std::string>& components, std::vector<Hint>* hints) const {
  const Node* n = &root_;
  for (const std::string& comp : components) {
    auto it = n->children.find(comp);
    if (it == n->children.end() || !it->second->has_hint) break;
    n = it->second.get();
    hints->push_back(n->hint);
  }
  return n;
}

InodeHintCache::Chain InodeHintCache::LookupChain(
    const std::vector<std::string>& components) const {
  Chain out;
  out.epoch = epoch();
  if (capacity_ == 0) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return out;
  }
  std::lock_guard<std::mutex> lock(mu_);
  out.epoch = epoch_.load(std::memory_order_acquire);
  Node* n = &root_;
  for (const std::string& comp : components) {
    auto it = n->children.find(comp);
    if (it == n->children.end() || !it->second->has_hint) break;
    n = it->second.get();
    LruMoveFront(n);
    out.hints.push_back(n->hint);
  }
  if (out.hints.size() == components.size() && !components.empty()) {
    hits_.fetch_add(1, std::memory_order_relaxed);
  } else {
    misses_.fetch_add(1, std::memory_order_relaxed);
  }
  return out;
}

InodeHintCache::Chain InodeHintCache::PeekChain(
    const std::vector<std::string>& components) const {
  Chain out;
  out.epoch = epoch();
  if (capacity_ == 0) return out;
  std::lock_guard<std::mutex> lock(mu_);
  out.epoch = epoch_.load(std::memory_order_acquire);
  WalkPrefix(components, &out.hints);
  return out;
}

// --- Put ---------------------------------------------------------------------

void InodeHintCache::Put(const std::vector<std::string>& components, size_t depth_index,
                         InodeId parent_id, InodeId inode_id, uint64_t epoch,
                         std::optional<bool> is_dir) {
  if (capacity_ == 0 || components.empty()) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (root_.barrier_epoch > epoch) {
    stale_put_rejections_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Node* n = &root_;
  for (size_t i = 0; i <= depth_index && i < components.size(); ++i) {
    std::unique_ptr<Node>& slot = n->children[components[i]];
    if (slot == nullptr) {
      slot = std::make_unique<Node>();
      slot->name = components[i];
      slot->parent = n;
    }
    n = slot.get();
    // A barrier anywhere on the path covers the whole subtree below it: the
    // resolution that produced this hint may have read pre-invalidation
    // state for any component at or above the barrier.
    if (n->barrier_epoch > epoch) {
      stale_put_rejections_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
  if (n == &root_) return;
  Hint fresh{parent_id, inode_id, is_dir.value_or(false), is_dir.has_value()};
  if (n->has_hint) {
    // A refresh that does not know the kind keeps a previously known one
    // (the ids must still match for the kind to be about the same inode).
    if (!fresh.is_dir_known && n->hint.is_dir_known && n->hint.inode_id == inode_id) {
      fresh.is_dir = n->hint.is_dir;
      fresh.is_dir_known = true;
    }
    n->hint = fresh;
    LruMoveFront(n);
    return;
  }
  n->hint = fresh;
  n->has_hint = true;
  LruLinkFront(n);
  for (Node* a = n; a != nullptr; a = a->parent) a->subtree_hints++;
  size_++;
  EvictIfNeeded();
  SweepDeadIfNeeded();
}

// --- Invalidation ------------------------------------------------------------

uint64_t InodeHintCache::InvalidatePrefix(const std::string& path_prefix) {
  if (capacity_ == 0) return epoch();
  auto split = SplitPath(path_prefix);
  if (!split.ok()) {
    // Malformed prefix: over-invalidate rather than risk a stale hint.
    Clear();
    return epoch();
  }
  const std::vector<std::string>& components = *split;
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t barrier = epoch_.fetch_add(1, std::memory_order_acq_rel) + 1;
  invalidations_.fetch_add(1, std::memory_order_relaxed);
  size_t visited = 1;

  if (components.empty()) {  // "/": everything goes
    int64_t live = root_.subtree_hints;
    if (live > 0) {
      entries_invalidated_.fetch_add(static_cast<uint64_t>(live),
                                     std::memory_order_relaxed);
    }
    for (auto& [name, child] : root_.children) {
      if (child->subtree_hints == 0) continue;  // skeleton only, free eagerly
      child->detached = true;
      child->parent = nullptr;
      child->dead_pending = child->subtree_hints;
      child->graveyard_index = graveyard_.size();
      graveyard_.push_back(std::move(child));
    }
    root_.children.clear();
    root_.subtree_hints = 0;
    size_ = 0;
    dead_in_lru_ += static_cast<size_t>(live);
    root_.barrier_epoch = barrier;
    root_.barrier_stamp = NowMicros();
    last_invalidate_visited_ = visited;
    SweepDeadIfNeeded();
    return barrier;
  }

  // Walk (creating skeleton where absent -- the barrier must exist even for
  // prefixes with nothing cached, or an in-flight resolution could plant a
  // dead hint right after us) to the prefix node's parent.
  Node* parent = &root_;
  for (size_t i = 0; i + 1 < components.size(); ++i) {
    std::unique_ptr<Node>& slot = parent->children[components[i]];
    if (slot == nullptr) {
      slot = std::make_unique<Node>();
      slot->name = components[i];
      slot->parent = parent;
    }
    parent = slot.get();
    visited++;
  }

  // Detach the prefix subtree (one edge) and plant a fresh barrier node in
  // its place. The detached entries stay on the LRU list until eviction or
  // the sweep unlinks them; size_ drops now so capacity sees only live data.
  auto fresh = std::make_unique<Node>();
  fresh->name = components.back();
  fresh->parent = parent;
  fresh->barrier_epoch = barrier;
  fresh->barrier_stamp = NowMicros();
  barriers_planted_++;
  auto it = parent->children.find(components.back());
  visited++;
  if (it != parent->children.end()) {
    Node* old = it->second.get();
    const int64_t live = old->subtree_hints;
    if (live > 0) {
      size_ -= static_cast<size_t>(live);
      dead_in_lru_ += static_cast<size_t>(live);
      entries_invalidated_.fetch_add(static_cast<uint64_t>(live),
                                     std::memory_order_relaxed);
      for (Node* a = parent; a != nullptr; a = a->parent) a->subtree_hints -= live;
    }
    std::unique_ptr<Node> detached = std::move(it->second);
    it->second = std::move(fresh);
    if (live > 0) {
      detached->detached = true;
      detached->parent = nullptr;
      detached->dead_pending = live;
      detached->graveyard_index = graveyard_.size();
      graveyard_.push_back(std::move(detached));
    }
    // live == 0: skeleton-only subtree, no LRU links inside; freed here.
  } else {
    parent->children.emplace(components.back(), std::move(fresh));
  }
  last_invalidate_visited_ = visited;
  SweepDeadIfNeeded();
  PruneTrieIfNeeded();
  return barrier;
}

void InodeHintCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t barrier = epoch_.fetch_add(1, std::memory_order_acq_rel) + 1;
  root_.children.clear();
  root_.subtree_hints = 0;
  root_.barrier_epoch = barrier;
  root_.barrier_stamp = NowMicros();
  graveyard_.clear();
  lru_head_ = lru_tail_ = nullptr;
  size_ = 0;
  dead_in_lru_ = 0;
  barriers_planted_ = 0;
}

// --- Capacity & lazy reclaim -------------------------------------------------

void InodeHintCache::EvictIfNeeded() {
  while (size_ > capacity_ && lru_tail_ != nullptr) {
    Node* victim = lru_tail_;
    if (IsDead(victim)) {
      UnlinkDead(victim);
      continue;
    }
    LruUnlink(victim);
    victim->has_hint = false;
    for (Node* a = victim; a != nullptr; a = a->parent) a->subtree_hints--;
    size_--;
    evictions_.fetch_add(1, std::memory_order_relaxed);
    // Prune the now-empty skeleton chain upward (barrier nodes stay: they
    // still guard in-flight puts).
    Node* n = victim;
    while (n != &root_ && !n->has_hint && n->children.empty() &&
           n->barrier_epoch == 0) {
      Node* parent = n->parent;
      parent->children.erase(n->name);
      n = parent;
    }
  }
}

void InodeHintCache::SweepDeadIfNeeded() {
  // Amortized O(1) per invalidated entry: a sweep costs O(live + dead) and
  // only triggers once dead outweighs live, so each dead entry pays O(1).
  if (dead_in_lru_ <= std::max<size_t>(64, size_)) return;
  Node* n = lru_head_;
  while (n != nullptr) {
    Node* next = n->lru_next;
    if (IsDead(n)) UnlinkDead(n);
    n = next;
  }
}

void InodeHintCache::PruneTrieIfNeeded() {
  // Barrier and skeleton nodes live outside the size_/capacity_ accounting,
  // so this amortized prune (one trie walk per ~threshold barrier plants)
  // is what bounds them: expired barriers are cleared and hintless,
  // childless chains freed. Clearing a 30s-old barrier is safe in the only
  // way that matters -- a put that stale would plant a hint the next miss
  // repairs, exactly like any other lazily-healed staleness.
  if (barriers_planted_ <= std::max<size_t>(1024, capacity_ / 16)) return;
  barriers_planted_ = 0;
  PruneNode(&root_, NowMicros() - kBarrierTtlMicros);
}

bool InodeHintCache::PruneNode(Node* n, int64_t barrier_cutoff) {
  for (auto it = n->children.begin(); it != n->children.end();) {
    it = PruneNode(it->second.get(), barrier_cutoff) ? n->children.erase(it)
                                                     : std::next(it);
  }
  if (n->barrier_epoch != 0 && n->barrier_stamp < barrier_cutoff) {
    n->barrier_epoch = 0;
  }
  return n != &root_ && !n->in_lru && !n->has_hint && n->children.empty() &&
         n->barrier_epoch == 0;
}

// --- Introspection -----------------------------------------------------------

InodeHintCache::Stats InodeHintCache::stats() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.invalidations = invalidations_.load(std::memory_order_relaxed);
  s.entries_invalidated = entries_invalidated_.load(std::memory_order_relaxed);
  s.stale_put_rejections = stale_put_rejections_.load(std::memory_order_relaxed);
  return s;
}

size_t InodeHintCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return size_;
}

size_t InodeHintCache::last_invalidate_visited() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_invalidate_visited_;
}

size_t InodeHintCache::dead_in_lru() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dead_in_lru_;
}

size_t InodeHintCache::graveyard_size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return graveyard_.size();
}

}  // namespace hops::fs
