#include "hopsfs/inode_cache.h"

namespace hops::fs {

std::string InodeHintCache::PrefixKey(const std::vector<std::string>& components,
                                      size_t end) {
  std::string key;
  for (size_t i = 0; i <= end && i < components.size(); ++i) {
    key += '/';
    key += components[i];
  }
  return key;
}

std::vector<InodeHintCache::Hint> InodeHintCache::LookupChain(
    const std::vector<std::string>& components) const {
  std::vector<Hint> chain;
  if (capacity_ == 0) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return chain;
  }
  std::lock_guard<std::mutex> lock(mu_);
  std::string key;
  for (size_t i = 0; i < components.size(); ++i) {
    key += '/';
    key += components[i];
    auto it = map_.find(key);
    if (it == map_.end()) break;
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);  // refresh recency
    chain.push_back(it->second.hint);
  }
  if (chain.size() == components.size() && !components.empty()) {
    hits_.fetch_add(1, std::memory_order_relaxed);
  } else {
    misses_.fetch_add(1, std::memory_order_relaxed);
  }
  return chain;
}

void InodeHintCache::Put(const std::vector<std::string>& components, size_t depth_index,
                         InodeId parent_id, InodeId inode_id) {
  if (capacity_ == 0) return;
  std::string key = PrefixKey(components, depth_index);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  if (it != map_.end()) {
    it->second.hint = Hint{parent_id, inode_id};
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return;
  }
  lru_.push_front(key);
  map_[key] = Entry{Hint{parent_id, inode_id}, lru_.begin()};
  EvictIfNeeded();
}

void InodeHintCache::InvalidatePrefix(const std::string& path_prefix) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = map_.begin(); it != map_.end();) {
    const std::string& key = it->first;
    bool covered = key.size() >= path_prefix.size() &&
                   key.compare(0, path_prefix.size(), path_prefix) == 0 &&
                   (key.size() == path_prefix.size() || key[path_prefix.size()] == '/');
    if (covered) {
      lru_.erase(it->second.lru_it);
      it = map_.erase(it);
    } else {
      ++it;
    }
  }
}

void InodeHintCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  map_.clear();
  lru_.clear();
}

size_t InodeHintCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

void InodeHintCache::EvictIfNeeded() {
  while (map_.size() > capacity_) {
    map_.erase(lru_.back());
    lru_.pop_back();
  }
}

}  // namespace hops::fs
