// Asynchronous metadata commits (AsyncFS/SwitchFS direction): the ordered
// per-namenode intent log and its apply stage.
//
// With FsConfig::async_metadata_commit on, the write-heavy ops (create,
// mkdirs, file setattr) acknowledge at *intent durability*: after a
// read-only validation the op is appended to the op_intents table -- PK
// (nn_id, seq), partitioned by the acknowledging namenode, seq allocated
// under the owner's intent_heads row exactly like the sharded hint log, so
// per-namenode seq order == acknowledgment order with zero cross-namenode
// contention -- and the client returns. A pool of
// FsConfig::intent_apply_batch claimer threads drains the intents and
// executes the real metadata transactions through the namenode's normal
// RunTx machinery. The drain is barrier-free: each claimer pulls the first
// queued intent prefix-related neither to an in-flight path nor to an
// earlier queued intent, so prefix-disjoint applies overlap freely while
// per-path apply order still equals acknowledgment order.
//
// Read-your-writes: every acknowledged-but-unapplied intent is tracked in
// an in-memory pending index keyed by path. Reads and conflicting
// mutations on a covered path block until the covering intent applies
// (WaitCovering); the ack-path validation itself consults the index so a
// create under a pending mkdir validates against the acknowledged state.
//
// Crash semantics: an intent row is deleted only after its apply
// transaction commits, so an acknowledged op survives namenode death in
// the log. Replay is at-least-once -- every intent op is idempotent
// (mkdirs/setattr re-apply cleanly; a re-applied create maps AlreadyExists
// to applied) -- and dead namenodes' rows are adopted in seq order by the
// leader's heartbeat (plus every namenode's own start-up sweep).
//
// Appends group-commit on the submitting threads themselves (no dedicated
// appender thread, so the ack path pays no cross-thread handoff): the first
// submitter to find no append in flight leads, draining everything queued
// while the previous append transaction was running into ONE transaction
// under a single head X-lock (intents_coalesced counts the sharing).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "hopsfs/config.h"
#include "hopsfs/schema.h"
#include "hopsfs/types.h"
#include "kv/kv.h"
#include "util/status.h"

namespace hops::fs {

enum class IntentOp : int64_t {
  kCreate = 1,
  kMkdirs = 2,
  kSetPermission = 3,
  kSetOwner = 4,
};

// One acknowledged-but-not-yet-applied mutation, as stored in op_intents.
struct IntentRecord {
  NamenodeId nn = 0;
  int64_t seq = 0;
  IntentOp op = IntentOp::kCreate;
  std::string path;
  std::string client;  // kCreate: the lease holder
  std::string user;    // issuing user (apply re-runs under this identity)
  bool superuser = true;
  int64_t perm = 0;           // kSetPermission
  std::string owner, group;   // kSetOwner
  int64_t mtime = 0;          // wall-clock acknowledgment stamp

  // Monotonic submit stamp for latency accounting; not persisted (0 for
  // records adopted from the log).
  int64_t submit_micros = 0;
};

kv::Row ToRow(const IntentRecord& rec);
IntentRecord IntentFromRow(const kv::Row& row);

struct IntentLogStats {
  uint64_t intents_appended = 0;
  uint64_t intents_applied = 0;
  // Intents that shared their append transaction with an earlier queued one
  // (the group-commit win: N queued intents cost one head lock + commit).
  uint64_t intents_coalesced = 0;
  uint64_t apply_failures = 0;  // terminal (non-retryable) apply outcomes
  uint64_t acked_ops = 0;
  uint64_t ack_latency_us = 0;    // submit -> durable in the log, summed
  uint64_t apply_latency_us = 0;  // submit -> apply commit, summed
  uint64_t covering_waits = 0;    // WaitCovering calls that actually blocked
};

class IntentLog {
 public:
  // Applies one intent (the namenode routes it to the synchronous op body).
  // Runs on the applier thread or one of its batch workers; must be
  // thread-safe. kFailover means the namenode died: the applier parks and
  // leaves the remaining intents in the log for adoption.
  using ApplyFn = std::function<hops::Status(const IntentRecord&)>;

  IntentLog(kv::Engine* db, const MetadataSchema* schema, const FsConfig* config);
  ~IntentLog();

  IntentLog(const IntentLog&) = delete;
  IntentLog& operator=(const IntentLog&) = delete;

  // Spawns the applier thread (idempotent).
  void Start(NamenodeId self, ApplyFn apply);
  // Joins the applier. Queued-but-unappended submissions fail with
  // kUnavailable; appended-but-unapplied intents stay in the log.
  void Stop();
  // Simulated process death: releases every waiter and parks both stages
  // without draining (the log rows survive for adoption).
  void Abandon();

  // True on the applier thread or one of its apply-batch workers. The
  // namenode uses this to route applier-issued ops to the synchronous
  // bodies, skip the pending-intent wait, and mark their database accesses
  // as background work in cost traces.
  static bool OnApplierThread();
  // RAII applier marker for code that applies intents from another thread
  // (the leader's adoption sweep).
  class ApplierScope {
   public:
    ApplierScope();
    ~ApplierScope();

   private:
    bool prev_;
  };

  struct PendingInfo {
    bool is_dir = false;
    std::string user;  // owner-to-be (the reserving op's effective user)
  };
  // Exact-path lookup in the pending index.
  std::optional<PendingInfo> LookupPending(const std::string& path) const;
  // True when some pending path equals `path` or is a strict prefix of it
  // (i.e. the path's existence/attributes depend on an unapplied intent).
  bool HasPendingPrefix(const std::string& path) const;

  // Reservations register `path` as pending before its intent is appended,
  // so racing submissions and readers observe it. Conflicts with an
  // existing entry surface the same statuses the committed namespace would.
  // Each reservation is balanced by Submit (released on failure) or
  // AbortReservation, and consumed when the intent applies.
  //
  // A file create: kAlreadyExists over a pending file or dir.
  hops::Status ReserveCreate(const std::string& path, const std::string& user);
  // One mkdir level: kNotDirectory over a pending file; a pending dir
  // re-reserves compatibly (mkdirs is idempotent).
  hops::Status ReserveDir(const std::string& path, const std::string& user);
  // Unconditional rider for a setattr on a path that exists (committed or
  // pending): increments the pending entry, creating one if needed.
  void ReserveTouch(const std::string& path, bool is_dir, const std::string& user);
  void AbortReservation(const std::string& path);

  // When set, the appender/cleanup transactions deliver their cost traces
  // here (the namenode forwards its own sink so async ops' traces include
  // the acknowledged append trip and the background apply drain).
  void SetTraceSink(std::function<void(const kv::CostTrace&)> sink);

  // Blocks until the record is durable in op_intents (group-committed with
  // everything queued meanwhile; the calling thread may lead the group's
  // append transaction) and queued for apply. The path must have been
  // Reserved; on failure the reservation is released.
  hops::Status Submit(IntentRecord rec);

  // Blocks (bounded by FsConfig::intent_wait_timeout) while any pending
  // path covers `path`: equals it, is a prefix of it, or has it as a
  // prefix. No-op on the applier thread and after Abandon/Stop.
  void WaitCovering(const std::string& path) const;

  // Blocks until the log is drained: nothing reserved, queued or applying.
  // Returns immediately after Abandon/Stop.
  void Flush();

  // Pauses/resumes the applier (appends continue, so durable-but-unapplied
  // intents accumulate -- the crash-replay tests' setup).
  void SetApplierPausedForTesting(bool paused);
  // While held, no submitter takes group-commit leadership: submissions park
  // in the append queue, and releasing the hold lets one leader drain them
  // all in a single transaction (deterministic coalescing for tests).
  void SetAppendHoldForTesting(bool hold);
  // Crash-point hook for the chaos sweep: invoked at the named append/apply/
  // cleanup boundaries ("append:pre-commit", "append:post-commit",
  // "apply:claimed", "apply:applied", "cleanup:pre", "cleanup:mid",
  // "cleanup:post") on whatever thread runs the stage. Returning true
  // simulates the namenode process dying right there: the log abandons
  // exactly as Kill() would and the stage stops without cleanup, so durable
  // rows survive for replay/adoption.
  using CrashHook = std::function<bool(std::string_view point)>;
  void SetCrashHookForTesting(CrashHook hook);
  // Pauses/resumes the cleaner: applied intents' rows linger in op_intents
  // (the paused-cleaner fault class; adoption must tolerate the residue).
  void SetCleanerPausedForTesting(bool paused);
  // Submissions currently parked in the append queue.
  size_t QueuedAppendsForTesting() const;

  bool HasPending() const { return pending_count_.load(std::memory_order_acquire) > 0; }
  IntentLogStats stats() const;
  // The acknowledged-path latency is measured by the namenode around the
  // whole validate+append sequence and recorded here.
  void RecordAck(uint64_t latency_us);

 private:
  struct Pending {
    bool is_dir = false;
    std::string user;
    int ops = 0;  // reserved/queued intents on this exact path
  };
  struct AppendWaiter {
    IntentRecord rec;
    hops::Status result;
    bool done = false;
  };

  void ApplierLoop();
  // The continuous, barrier-free apply stage: every claimer thread (the
  // applier plus intent_apply_batch - 1 workers) runs this loop, pulling the
  // first eligible intent straight off apply_queue_ -- no batch boundary, so
  // no straggler ever idles the other claimers.
  void ApplyClaimLoop();
  // mu_ held. Index of the first queued intent prefix-related neither to an
  // in-flight path nor to an earlier queued intent (preserving per-path
  // acknowledgment order); npos when nothing in the scan budget is eligible.
  size_t EligibleIndexLocked() const;
  // Deletes applied intents' rows off the drain path, merging everything
  // applied since its last pass into chunked transactions. Flush() waits for
  // it; a crash in the applied-but-undeleted window re-applies idempotently.
  void CleanerLoop();
  // Applies `rec`, retrying retryable conflicts forever (capped backoff);
  // kFailover when the log is stopping/abandoned mid-retry.
  hops::Status ApplyOneWithRetry(const IntentRecord& rec);
  // One group-commit append transaction for `batch` (seq allocation under
  // the owner's intent_heads X-lock, one insert per record, head bump).
  hops::Status AppendBatchTx(std::vector<std::shared_ptr<AppendWaiter>>& batch);
  // Deletes the applied intents' rows (tolerating rows already deleted by a
  // racing adopter), best-effort.
  void DeleteIntentRows(const std::vector<IntentRecord>& recs);
  // mu_ held. True when some pending path covers `path` (see WaitCovering).
  bool CoveredLocked(const std::string& path) const;
  // mu_ held. Drops one reserved op from `path`'s entry.
  void ReleaseOneLocked(const std::string& path);
  // True -- after abandoning the log -- when the test hook elects to crash
  // at `point`. Must be called without mu_ held.
  bool CrashAt(std::string_view point);

  kv::Engine* db_;
  const MetadataSchema* schema_;
  const FsConfig* config_;
  NamenodeId self_ = 0;
  ApplyFn apply_;
  mutable std::mutex trace_mu_;
  std::function<void(const kv::CostTrace&)> trace_fn_;
  mutable std::mutex hook_mu_;
  CrashHook crash_hook_;

  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  std::map<std::string, Pending> pending_;  // joined path -> entry
  std::deque<std::shared_ptr<AppendWaiter>> append_queue_;
  std::deque<IntentRecord> apply_queue_;
  bool appending_ = false;
  bool append_hold_ = false;  // test hook: park submissions in the queue
  int applying_ = 0;  // intents currently being applied
  bool applier_paused_ = false;
  bool cleaner_paused_ = false;
  bool stop_ = false;
  bool abandoned_ = false;
  std::atomic<int64_t> pending_count_{0};
  std::thread applier_;
  std::thread cleaner_;
  std::deque<IntentRecord> cleanup_queue_;  // applied, rows not yet deleted
  bool cleaning_ = false;                   // cleaner mid-pass (Flush waits)

  // The extra claimer threads (intent_apply_batch - 1) that run
  // ApplyClaimLoop alongside applier_.
  std::vector<std::thread> apply_workers_;
  // Paths whose apply transaction is in flight right now; eligibility checks
  // scan it (it is at most intent_apply_batch entries long).
  std::vector<std::string> in_flight_;

  std::atomic<uint64_t> appended_{0}, applied_{0}, coalesced_{0},
      apply_failures_{0}, acked_ops_{0}, ack_latency_us_{0}, apply_latency_us_{0};
  // Bumped from const WaitCovering.
  mutable std::atomic<uint64_t> covering_waits_{0};
};

}  // namespace hops::fs
