// kv::Engine backend #1: the NDB-style pessimistic 2PL cluster (src/ndb),
// wrapped behind the engine boundary. Thin forwarding shims -- every
// semantic (eager row locks, lock-wait-timeout deadlock resolution,
// completion-mux window merging, cost accounting) lives in ndb::Cluster /
// ndb::Transaction; this layer only adapts the async-batch handle plumbing.
#pragma once

#include <map>

#include "kv/kv.h"

namespace hops::kv {

class NdbEngine;

class NdbTxn final : public Txn {
 public:
  explicit NdbTxn(std::unique_ptr<ndb::Transaction> tx) : tx_(std::move(tx)) {}

  TxId id() const override { return tx_->id(); }
  uint32_t coordinator() const override { return tx_->coordinator(); }

  hops::Result<Row> Read(TableId table, const Key& key, LockMode mode,
                         std::optional<uint64_t> pv) override {
    return tx_->Read(table, key, mode, pv);
  }
  hops::Result<std::vector<std::optional<Row>>> BatchRead(
      TableId table, const std::vector<Key>& keys, LockMode mode,
      const std::vector<uint64_t>* pvs) override {
    return tx_->BatchRead(table, keys, mode, pvs);
  }
  hops::Status Insert(TableId table, Row row, std::optional<uint64_t> pv) override {
    return tx_->Insert(table, std::move(row), pv);
  }
  hops::Status Update(TableId table, Row row, std::optional<uint64_t> pv) override {
    return tx_->Update(table, std::move(row), pv);
  }
  hops::Status Write(TableId table, Row row, std::optional<uint64_t> pv) override {
    return tx_->Write(table, std::move(row), pv);
  }
  hops::Status Delete(TableId table, const Key& key, std::optional<uint64_t> pv) override {
    return tx_->Delete(table, key, pv);
  }

  size_t InFlightBatches() const override { return tx_->InFlightBatches(); }
  hops::Status FlushPending() override { return tx_->FlushPending(); }
  void UnlockRow(TableId table, const Key& key, std::optional<uint64_t> pv) override {
    tx_->UnlockRow(table, key, pv);
  }

  hops::Result<std::vector<Row>> Ppis(TableId table, const Key& prefix, const ScanOptions& opts,
                                      std::optional<uint64_t> pv) override {
    return tx_->Ppis(table, prefix, opts, pv);
  }
  hops::Result<std::vector<Row>> IndexScan(TableId table, const Key& prefix,
                                           const ScanOptions& opts) override {
    return tx_->IndexScan(table, prefix, opts);
  }
  hops::Result<std::vector<Row>> FullTableScan(TableId table, const ScanOptions& opts) override {
    return tx_->FullTableScan(table, opts);
  }

  hops::Status Commit() override { return tx_->Commit(); }
  void Abort() override { tx_->Abort(); }
  bool active() const override { return tx_->active(); }

  void EnableTrace() override { tx_->EnableTrace(); }
  const CostTrace& trace() const override { return tx_->trace(); }
  void SetBackground(bool background) override { tx_->SetBackground(background); }
  void SetLatencySensitive(bool v) override { tx_->SetLatencySensitive(v); }

 private:
  uint64_t PrepareAsync(ReadBatch* read, WriteBatch* write) override {
    ndb::PendingBatch pending =
        read != nullptr ? tx_->ExecuteAsync(*read) : tx_->ExecuteAsync(*write);
    const uint64_t seq = next_seq_++;
    pending_.emplace(seq, pending);
    return seq;
  }
  hops::Status WaitBatch(uint64_t seq) override {
    auto it = pending_.find(seq);
    if (it == pending_.end()) return hops::Status::InvalidArgument("unknown batch handle");
    return it->second.Wait();
  }
  bool BatchDone(uint64_t seq) const override {
    auto it = pending_.find(seq);
    return it != pending_.end() && it->second.done();
  }

  std::unique_ptr<ndb::Transaction> tx_;
  std::map<uint64_t, ndb::PendingBatch> pending_;
  uint64_t next_seq_ = 1;
};

class NdbEngine final : public Engine {
 public:
  explicit NdbEngine(EngineConfig config) : cluster_(config) {}

  EngineKind kind() const override { return EngineKind::kNdb; }
  // The wrapped cluster, for ndb-specific tests (completion-mux internals).
  ndb::Cluster& cluster() { return cluster_; }

  hops::Result<TableId> CreateTable(Schema schema) override {
    return cluster_.CreateTable(std::move(schema));
  }
  const Schema& schema(TableId table) const override { return cluster_.schema(table); }
  std::optional<TableId> FindTable(std::string_view name) const override {
    return cluster_.FindTable(name);
  }

  std::unique_ptr<Txn> Begin(std::optional<TxHint> hint) override {
    return std::make_unique<NdbTxn>(cluster_.Begin(hint));
  }

  FaultInjector& fault_injector() override { return cluster_.fault_injector(); }
  void KillDatanode(uint32_t node) override { cluster_.KillDatanode(node); }
  void RestartDatanode(uint32_t node) override { cluster_.RestartDatanode(node); }
  bool IsAlive(uint32_t node) const override { return cluster_.IsAlive(node); }
  uint32_t NumAliveNodes() const override { return cluster_.NumAliveNodes(); }
  bool Available() const override { return cluster_.Available(); }

  const EngineConfig& config() const override { return cluster_.config(); }
  uint32_t num_datanodes() const override { return cluster_.num_datanodes(); }
  uint32_t num_partitions() const override { return cluster_.num_partitions(); }
  uint32_t num_node_groups() const override { return cluster_.num_node_groups(); }
  uint32_t PartitionForValue(uint64_t partition_value) const override {
    return cluster_.PartitionForValue(partition_value);
  }
  std::optional<uint32_t> PrimaryNode(uint32_t partition) const override {
    return cluster_.PrimaryNode(partition);
  }

  ClusterStats StatsSnapshot() const override { return cluster_.StatsSnapshot(); }
  void ResetStats() override { cluster_.ResetStats(); }
  size_t TableRowCount(TableId table) const override { return cluster_.TableRowCount(table); }
  size_t TotalMemoryBytes() const override { return cluster_.TotalMemoryBytes(); }
  size_t TableMemoryBytes(TableId table) const override {
    return cluster_.TableMemoryBytes(table);
  }
  uint64_t GlobalCheckpointEpoch() const override { return cluster_.GlobalCheckpointEpoch(); }

 private:
  ndb::Cluster cluster_;
};

}  // namespace hops::kv
