// Backend selection: name parsing, the HOPS_KV_ENGINE environment override,
// and the factory both MiniCluster and the benches construct engines through.
#include <cctype>
#include <cstdlib>

#include "kv/ndb_engine.h"
#include "kv/occ_engine.h"

namespace hops::kv {

std::string_view EngineKindName(EngineKind kind) {
  switch (kind) {
    case EngineKind::kNdb: return "ndb";
    case EngineKind::kOcc: return "occ";
  }
  return "?";
}

std::optional<EngineKind> ParseEngineKind(std::string_view name) {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name) lower.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  if (lower == "ndb" || lower == "2pl") return EngineKind::kNdb;
  if (lower == "occ" || lower == "mvcc") return EngineKind::kOcc;
  return std::nullopt;
}

std::optional<EngineKind> EngineKindFromEnv() {
  const char* env = std::getenv("HOPS_KV_ENGINE");
  if (env == nullptr || *env == '\0') return std::nullopt;
  return ParseEngineKind(env);
}

std::unique_ptr<Engine> MakeEngine(EngineKind kind, EngineConfig config) {
  switch (kind) {
    case EngineKind::kNdb: return std::make_unique<NdbEngine>(config);
    case EngineKind::kOcc: return std::make_unique<OccEngine>(config);
  }
  return nullptr;
}

}  // namespace hops::kv
