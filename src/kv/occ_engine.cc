// OCC transaction execution: lock-free validated reads, client-side staged
// writes, and serialized commit-time validation + install. The control flow
// deliberately mirrors ndb::Transaction step for step (route -> usability ->
// fault injection -> access accounting -> data work) so the two backends
// differ only in their concurrency mechanism, not in cost bookkeeping or
// failure surfaces.
#include "kv/occ_engine.h"

#include <algorithm>
#include <cassert>

#include "util/hash.h"

namespace hops::kv {

namespace {

Key ExtractPk(const Schema& schema, const Row& row) {
  Key key;
  key.reserve(schema.primary_key.size());
  for (size_t idx : schema.primary_key) {
    assert(idx < row.size());
    key.push_back(row[idx]);
  }
  return key;
}

void MergeTouch(std::vector<PartTouch>& parts, uint32_t partition, uint32_t rows,
                uint32_t node, bool local) {
  for (auto& pt : parts) {
    if (pt.partition == partition) {
      pt.rows += rows;
      return;
    }
  }
  parts.push_back(PartTouch{partition, node, rows, local});
}

bool RowMatches(const Row& row, const ScanOptions& opts) {
  if (opts.eq_filter) {
    const auto& [col, value] = *opts.eq_filter;
    if (col >= row.size() || !(row[col] == value)) return false;
  }
  if (opts.predicate && !opts.predicate(row)) return false;
  return true;
}

size_t RowBytes(const std::string& ekey, const Row& row) {
  size_t n = ekey.size();
  for (const auto& v : row) n += v.FootprintBytes();
  return n;
}

}  // namespace

// --- OccTxn ------------------------------------------------------------------

OccTxn::OccTxn(OccEngine* engine, TxId id, uint32_t coordinator)
    : engine_(engine), id_(id), coordinator_(coordinator) {
  trace_.coordinator_node = coordinator;
}

OccTxn::~OccTxn() {
  if (state_ == State::kActive) Abort();
}

hops::Status OccTxn::CheckUsable(uint32_t partition) {
  if (state_ != State::kActive) {
    return hops::Status::TxAborted("transaction is not active");
  }
  if (!engine_->IsAlive(coordinator_)) {
    Abort();
    return hops::Status::TxAborted("transaction coordinator failed");
  }
  if (!engine_->PartitionAvailable(partition)) {
    Abort();
    return hops::Status::Unavailable("entire node group for partition is down");
  }
  return hops::Status::Ok();
}

hops::Status OccTxn::InjectFault(TableId table, bool abort_tx) {
  FaultInjector& injector = engine_->fault_injector_;
  if (!injector.armed()) return hops::Status::Ok();
  hops::Status st = injector.OnAccess(table);
  if (!st.ok() && abort_tx && state_ == State::kActive) Abort();
  return st;
}

void OccTxn::RecordAccess(AccessKind kind, TableId table, std::vector<PartTouch> parts,
                          uint32_t round_trips) {
  uint64_t rows = 0;
  for (const auto& p : parts) rows += p.rows;
  auto& s = engine_->stats_;
  s.round_trips.fetch_add(round_trips, std::memory_order_relaxed);
  switch (kind) {
    case AccessKind::kPkRead:
      s.pk_reads.fetch_add(1, std::memory_order_relaxed);
      s.rows_read.fetch_add(rows, std::memory_order_relaxed);
      break;
    case AccessKind::kPkWrite:
      break;  // rows counted at commit
    case AccessKind::kBatchRead:
      s.batch_reads.fetch_add(1, std::memory_order_relaxed);
      s.rows_read.fetch_add(rows, std::memory_order_relaxed);
      break;
    case AccessKind::kPpis:
      s.ppis_scans.fetch_add(1, std::memory_order_relaxed);
      s.rows_read.fetch_add(rows, std::memory_order_relaxed);
      break;
    case AccessKind::kIndexScan:
      s.index_scans.fetch_add(1, std::memory_order_relaxed);
      s.rows_read.fetch_add(rows, std::memory_order_relaxed);
      break;
    case AccessKind::kFullTableScan:
      s.full_table_scans.fetch_add(1, std::memory_order_relaxed);
      s.rows_read.fetch_add(rows, std::memory_order_relaxed);
      break;
    case AccessKind::kCommit:
      s.rows_written.fetch_add(rows, std::memory_order_relaxed);
      break;
  }
  if (!trace_enabled_) return;
  Access a;
  a.kind = kind;
  a.table = table;
  a.round_trips = round_trips;
  a.background = background_;
  a.parts = std::move(parts);
  trace_.accesses.push_back(std::move(a));
}

PartTouch OccTxn::Touch(uint32_t partition, uint32_t rows) const {
  uint32_t node = engine_->PrimaryNode(partition).value_or(coordinator_);
  return PartTouch{partition, node, rows, node == coordinator_};
}

uint64_t OccTxn::CommittedVersion(TableId table, uint32_t partition, const std::string& ekey,
                                  std::optional<Row>* live_row) const {
  const OccEngine::Table& t = engine_->table(table);
  OccEngine::OccPartition& p = *t.partitions[partition];
  std::lock_guard<std::mutex> lock(p.mu);
  auto it = p.rows.find(ekey);
  if (it == p.rows.end()) return 0;
  if (live_row != nullptr && !it->second.tombstone) *live_row = it->second.row;
  return it->second.version;
}

void OccTxn::Observe(TableId table, uint32_t partition, const std::string& ekey,
                     uint64_t version) {
  // First observation wins: if the key changes between two reads inside the
  // same transaction, validating against the first version surfaces it.
  read_set_.emplace(std::make_pair(table, ekey), ReadObs{partition, version});
}

bool OccTxn::KeyKnown(TableId table, const std::string& ekey) const {
  return read_set_.count({table, ekey}) > 0 || write_set_.count({table, ekey}) > 0;
}

bool OccTxn::RowExists(TableId table, uint32_t partition, const std::string& ekey) {
  auto staged = write_set_.find({table, ekey});
  if (staged != write_set_.end()) return !staged->second.is_delete;
  std::optional<Row> live;
  uint64_t version = CommittedVersion(table, partition, ekey, &live);
  Observe(table, partition, ekey, version);  // the existence check is validated
  return live.has_value();
}

hops::Result<Row> OccTxn::Read(TableId table, const Key& key, LockMode mode,
                               std::optional<uint64_t> pv) {
  HOPS_RETURN_IF_ERROR(FlushPending());  // per-row ops order after the pipeline
  const OccEngine::Table& t = engine_->table(table);
  HOPS_ASSIGN_OR_RETURN(partition, engine_->Route(t, key, pv));
  HOPS_RETURN_IF_ERROR(CheckUsable(partition));
  HOPS_RETURN_IF_ERROR(InjectFault(table, /*abort_tx=*/true));
  std::string ekey = EncodeKey(key);

  RecordAccess(AccessKind::kPkRead, table, {Touch(partition, 1)});

  auto staged = write_set_.find({table, ekey});
  if (staged != write_set_.end()) {
    if (staged->second.is_delete) return hops::Status::NotFound();
    return staged->second.row;
  }
  std::optional<Row> live;
  uint64_t version = CommittedVersion(table, partition, ekey, &live);
  if (mode != LockMode::kReadCommitted) Observe(table, partition, ekey, version);
  if (!live) return hops::Status::NotFound();
  return *std::move(live);
}

hops::Result<std::vector<std::optional<Row>>> OccTxn::BatchRead(
    TableId table, const std::vector<Key>& keys, LockMode mode,
    const std::vector<uint64_t>* pvs) {
  assert(pvs == nullptr || pvs->size() == keys.size());
  ReadBatch batch;
  for (size_t i = 0; i < keys.size(); ++i) {
    batch.Get(table, keys[i], mode, pvs ? std::optional<uint64_t>((*pvs)[i]) : std::nullopt);
  }
  HOPS_RETURN_IF_ERROR(Execute(batch));
  std::vector<std::optional<Row>> results(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) results[i] = std::move(batch.ops_[i].row);
  return results;
}

hops::Status OccTxn::Insert(TableId table, Row row, std::optional<uint64_t> pv) {
  HOPS_RETURN_IF_ERROR(FlushPending());
  const OccEngine::Table& t = engine_->table(table);
  assert(row.size() == t.schema.columns.size());
  Key key = ExtractPk(t.schema, row);
  HOPS_ASSIGN_OR_RETURN(partition, engine_->Route(t, key, pv));
  HOPS_RETURN_IF_ERROR(CheckUsable(partition));
  HOPS_RETURN_IF_ERROR(InjectFault(table, /*abort_tx=*/true));
  std::string ekey = EncodeKey(key);
  const bool fresh = !KeyKnown(table, ekey);

  if (RowExists(table, partition, ekey)) return hops::Status::AlreadyExists(t.schema.table_name);
  write_set_[{table, ekey}] = StagedWrite{false, std::move(row), partition};
  RecordAccess(AccessKind::kPkWrite, table, {Touch(partition, 1)}, fresh ? 1 : 0);
  return hops::Status::Ok();
}

hops::Status OccTxn::Update(TableId table, Row row, std::optional<uint64_t> pv) {
  HOPS_RETURN_IF_ERROR(FlushPending());
  const OccEngine::Table& t = engine_->table(table);
  assert(row.size() == t.schema.columns.size());
  Key key = ExtractPk(t.schema, row);
  HOPS_ASSIGN_OR_RETURN(partition, engine_->Route(t, key, pv));
  HOPS_RETURN_IF_ERROR(CheckUsable(partition));
  HOPS_RETURN_IF_ERROR(InjectFault(table, /*abort_tx=*/true));
  std::string ekey = EncodeKey(key);
  const bool fresh = !KeyKnown(table, ekey);

  if (!RowExists(table, partition, ekey)) return hops::Status::NotFound(t.schema.table_name);
  write_set_[{table, ekey}] = StagedWrite{false, std::move(row), partition};
  RecordAccess(AccessKind::kPkWrite, table, {Touch(partition, 1)}, fresh ? 1 : 0);
  return hops::Status::Ok();
}

hops::Status OccTxn::Write(TableId table, Row row, std::optional<uint64_t> pv) {
  HOPS_RETURN_IF_ERROR(FlushPending());
  const OccEngine::Table& t = engine_->table(table);
  assert(row.size() == t.schema.columns.size());
  Key key = ExtractPk(t.schema, row);
  HOPS_ASSIGN_OR_RETURN(partition, engine_->Route(t, key, pv));
  HOPS_RETURN_IF_ERROR(CheckUsable(partition));
  HOPS_RETURN_IF_ERROR(InjectFault(table, /*abort_tx=*/true));
  std::string ekey = EncodeKey(key);

  // Blind upsert: staged client-side, validated against nothing, applied at
  // commit. Costs no round trip until then.
  write_set_[{table, ekey}] = StagedWrite{false, std::move(row), partition};
  RecordAccess(AccessKind::kPkWrite, table, {Touch(partition, 1)}, /*round_trips=*/0);
  return hops::Status::Ok();
}

hops::Status OccTxn::Delete(TableId table, const Key& key, std::optional<uint64_t> pv) {
  HOPS_RETURN_IF_ERROR(FlushPending());
  const OccEngine::Table& t = engine_->table(table);
  HOPS_ASSIGN_OR_RETURN(partition, engine_->Route(t, key, pv));
  HOPS_RETURN_IF_ERROR(CheckUsable(partition));
  HOPS_RETURN_IF_ERROR(InjectFault(table, /*abort_tx=*/true));
  std::string ekey = EncodeKey(key);
  const bool fresh = !KeyKnown(table, ekey);

  if (!RowExists(table, partition, ekey)) return hops::Status::NotFound(t.schema.table_name);
  write_set_[{table, ekey}] = StagedWrite{true, {}, partition};
  RecordAccess(AccessKind::kPkWrite, table, {Touch(partition, 1)}, fresh ? 1 : 0);
  return hops::Status::Ok();
}

void OccTxn::UnlockRow(TableId table, const Key& key, std::optional<uint64_t> pv) {
  (void)pv;
  (void)FlushPending();  // the observation to drop may still be in the pipeline
  if (state_ != State::kActive) return;
  std::string ekey = EncodeKey(key);
  if (write_set_.count({table, ekey})) return;  // the observation guards a staged write
  // "Releasing the lock" under OCC = withdrawing the commit-time guarantee:
  // the caller is done with the value and no longer needs it stable.
  read_set_.erase({table, ekey});
}

// --- Pipelined batch engine --------------------------------------------------
//
// OCC windows have no lock phase: a flush routes every member, then runs the
// data work in preparation order (read-your-writes across the pipeline). The
// window is still ONE overlapped round trip; a pure-write window whose keys
// are all already known client-side piggybacks for free, mirroring the
// 2PL engine's already-exclusively-locked case.

uint64_t OccTxn::PrepareAsync(ReadBatch* read, WriteBatch* write) {
  const uint64_t seq = next_batch_seq_++;
  bool& executed = read != nullptr ? read->executed_ : write->executed_;
  if (executed) {
    batch_results_[seq] = hops::Status::InvalidArgument("batch already executed");
    return seq;
  }
  executed = true;
  if (state_ != State::kActive) {
    batch_results_[seq] = hops::Status::TxAborted("transaction is not active");
    return seq;
  }
  if (read != nullptr ? read->ops_.empty() : write->ops_.empty()) {
    batch_results_[seq] = hops::Status::Ok();
    return seq;
  }
  // kStagedOrder batches still flush as their own window. OCC takes no locks,
  // so the ordering guarantee is moot -- but keeping the flush boundaries
  // identical keeps the two engines' round-trip accounting comparable.
  const bool staged_order =
      read != nullptr && read->lock_order() == BatchLockOrder::kStagedOrder;
  if (staged_order) (void)FlushPending();
  in_flight_.push_back(InFlightBatch{seq, read, write});
  if (staged_order || in_flight_.size() >= engine_->config().max_in_flight_batches) {
    (void)FlushPending();  // outcomes wait in batch_results_
  }
  return seq;
}

hops::Status OccTxn::WaitBatch(uint64_t seq) {
  auto it = batch_results_.find(seq);
  if (it != batch_results_.end()) return it->second;
  for (const auto& f : in_flight_) {
    if (f.seq != seq) continue;
    (void)FlushPending();
    auto flushed = batch_results_.find(seq);
    assert(flushed != batch_results_.end() && "flush must deliver every in-flight outcome");
    return flushed->second;
  }
  return hops::Status::InvalidArgument("unknown batch handle");
}

hops::Status OccTxn::RunReadBatchData(ReadBatch& batch, std::vector<Access>& accesses) {
  // Gets of the same table aggregate into one logical access; each pruned
  // scan is its own access. Accesses carry round_trips = 0; the flush assigns
  // the window's one trip to its first access.
  const size_t first = accesses.size();
  auto get_access_for = [&](TableId table) -> Access& {
    for (size_t i = first; i < accesses.size(); ++i) {
      if (accesses[i].kind == AccessKind::kBatchRead && accesses[i].table == table) {
        return accesses[i];
      }
    }
    Access a;
    a.kind = AccessKind::kBatchRead;
    a.table = table;
    a.round_trips = 0;
    accesses.push_back(std::move(a));
    return accesses.back();
  };
  auto touch = [&](Access& a, uint32_t partition, uint32_t rows) {
    uint32_t node = engine_->PrimaryNode(partition).value_or(coordinator_);
    MergeTouch(a.parts, partition, rows, node, node == coordinator_);
  };

  uint64_t scans = 0;
  for (auto& op : batch.ops_) {
    if (op.kind == ReadBatch::Op::Kind::kGet) {
      auto staged = write_set_.find({op.table, op.ekey});
      if (staged != write_set_.end()) {
        if (!staged->second.is_delete) op.row = staged->second.row;
      } else {
        std::optional<Row> live;
        uint64_t version = CommittedVersion(op.table, op.partition, op.ekey, &live);
        if (op.mode != LockMode::kReadCommitted) {
          Observe(op.table, op.partition, op.ekey, version);
        }
        if (live) op.row = *std::move(live);
      }
      touch(get_access_for(op.table), op.partition, 1);
    } else {
      const bool validated =
          op.opts.lock != LockMode::kReadCommitted && !op.opts.take_and_release;
      const uint64_t seen =
          validated ? engine_->commit_version_.load(std::memory_order_acquire) : 0;
      uint32_t examined = 0;
      HOPS_ASSIGN_OR_RETURN(
          rows, ScanOnePartition(op.table, op.partition, op.ekey, op.opts, &examined));
      op.rows = std::move(rows);
      if (validated) range_set_.push_back(RangeObs{op.table, {op.partition}, op.ekey, seen});
      scans++;
      Access a;
      a.kind = AccessKind::kPpis;
      a.table = op.table;
      a.round_trips = 0;
      accesses.push_back(std::move(a));
      touch(accesses.back(), op.partition, examined);
    }
  }

  uint64_t rows_read = 0;
  for (size_t i = first; i < accesses.size(); ++i) rows_read += accesses[i].TotalRows();
  auto& s = engine_->stats_;
  s.batch_reads.fetch_add(1, std::memory_order_relaxed);
  s.ppis_scans.fetch_add(scans, std::memory_order_relaxed);
  s.rows_read.fetch_add(rows_read, std::memory_order_relaxed);
  return hops::Status::Ok();
}

hops::Status OccTxn::RunWriteBatchData(WriteBatch& batch, std::vector<Access>& accesses,
                                       bool* fresh_keys) {
  const size_t first = accesses.size();
  auto access_for = [&](TableId table) -> Access& {
    for (size_t i = first; i < accesses.size(); ++i) {
      if (accesses[i].kind == AccessKind::kPkWrite && accesses[i].table == table) {
        return accesses[i];
      }
    }
    Access a;
    a.kind = AccessKind::kPkWrite;
    a.table = table;
    a.round_trips = 0;
    accesses.push_back(std::move(a));
    return accesses.back();
  };
  for (auto& op : batch.ops_) {
    const OccEngine::Table& t = engine_->table(op.table);
    // Freshness is judged at the op's own turn, as sequential execution
    // would: keys staged by earlier ops (or members) are already known.
    if (op.kind != WriteBatch::Op::Kind::kWrite && !KeyKnown(op.table, op.ekey)) {
      *fresh_keys = true;
    }
    uint32_t staged_rows = 1;
    switch (op.kind) {
      case WriteBatch::Op::Kind::kInsert:
        if (RowExists(op.table, op.partition, op.ekey)) {
          return hops::Status::AlreadyExists(t.schema.table_name);
        }
        write_set_[{op.table, op.ekey}] = StagedWrite{false, op.row, op.partition};
        break;
      case WriteBatch::Op::Kind::kUpdate:
        if (!RowExists(op.table, op.partition, op.ekey)) {
          return hops::Status::NotFound(t.schema.table_name);
        }
        write_set_[{op.table, op.ekey}] = StagedWrite{false, op.row, op.partition};
        break;
      case WriteBatch::Op::Kind::kWrite:
        write_set_[{op.table, op.ekey}] = StagedWrite{false, op.row, op.partition};
        break;
      case WriteBatch::Op::Kind::kDelete:
        if (!RowExists(op.table, op.partition, op.ekey)) {
          if (!op.ignore_missing) return hops::Status::NotFound(t.schema.table_name);
          staged_rows = 0;
        } else {
          write_set_[{op.table, op.ekey}] = StagedWrite{true, {}, op.partition};
        }
        break;
    }
    Access& a = access_for(op.table);
    uint32_t node = engine_->PrimaryNode(op.partition).value_or(coordinator_);
    MergeTouch(a.parts, op.partition, staged_rows, node, node == coordinator_);
  }
  engine_->stats_.batch_writes.fetch_add(1, std::memory_order_relaxed);
  return hops::Status::Ok();
}

hops::Status OccTxn::FlushPending() {
  if (in_flight_.empty()) return hops::Status::Ok();
  std::vector<InFlightBatch> flight = std::move(in_flight_);
  in_flight_.clear();

  auto fail_window = [&](const hops::Status& st) {
    for (const auto& f : flight) batch_results_[f.seq] = st;
  };

  // Phase 1: route every op of every member batch; no data is touched yet.
  for (const auto& f : flight) {
    hops::Status st;
    if (f.read != nullptr) {
      for (auto& op : f.read->ops_) {
        const OccEngine::Table& t = engine_->table(op.table);
        auto routed = engine_->Route(t, op.key, op.pv);
        if (!routed.ok()) { st = routed.status(); break; }
        op.partition = *routed;
        st = CheckUsable(op.partition);
        if (!st.ok()) break;
        st = InjectFault(op.table, /*abort_tx=*/false);
        if (!st.ok()) break;
        op.ekey = EncodeKey(op.key);
      }
    } else {
      for (auto& op : f.write->ops_) {
        const OccEngine::Table& t = engine_->table(op.table);
        if (op.kind != WriteBatch::Op::Kind::kDelete) {
          assert(op.row.size() == t.schema.columns.size());
          op.key = ExtractPk(t.schema, op.row);
        }
        auto routed = engine_->Route(t, op.key, op.pv);
        if (!routed.ok()) { st = routed.status(); break; }
        op.partition = *routed;
        st = CheckUsable(op.partition);
        if (!st.ok()) break;
        st = InjectFault(op.table, /*abort_tx=*/false);
        if (!st.ok()) break;
        op.ekey = EncodeKey(op.key);
      }
    }
    if (!st.ok()) {
      fail_window(st);
      return st;
    }
  }

  // Phase 2: the window's data work, in preparation order. The first failure
  // stops the window; members behind it report kTxAborted.
  std::vector<Access> accesses;
  size_t sync_equiv = 0, read_members = 0;
  bool fresh_writes = false;
  hops::Status first_error;
  for (size_t i = 0; i < flight.size(); ++i) {
    hops::Status st;
    bool pays = false;
    if (flight[i].read != nullptr) {
      read_members++;
      pays = true;
      st = RunReadBatchData(*flight[i].read, accesses);
    } else {
      bool fresh = false;
      st = RunWriteBatchData(*flight[i].write, accesses, &fresh);
      fresh_writes |= fresh;
      pays = fresh;
    }
    batch_results_[flight[i].seq] = st;
    if (pays) sync_equiv++;
    if (!st.ok()) {
      first_error = st;
      if (pipeline_error_.ok()) pipeline_error_ = st;
      for (size_t j = i + 1; j < flight.size(); ++j) {
        batch_results_[flight[j].seq] =
            hops::Status::TxAborted("a preceding batch in the flush window failed");
      }
      break;
    }
  }

  const uint32_t rt = read_members > 0 || fresh_writes ? 1 : 0;
  if (!accesses.empty()) accesses.front().round_trips = rt;
  auto& s = engine_->stats_;
  s.round_trips.fetch_add(rt, std::memory_order_relaxed);
  if (rt > 0 && sync_equiv > rt) {
    s.overlapped_round_trips.fetch_add(sync_equiv - rt, std::memory_order_relaxed);
  }
  if (trace_enabled_) {
    for (auto& a : accesses) trace_.accesses.push_back(std::move(a));
  }
  return first_error;
}

// --- Scans -------------------------------------------------------------------

hops::Result<std::vector<Row>> OccTxn::ScanOnePartition(TableId table, uint32_t partition,
                                                        const std::string& eprefix,
                                                        const ScanOptions& opts,
                                                        uint32_t* examined) {
  const OccEngine::Table& t = engine_->table(table);
  OccEngine::OccPartition& p = *t.partitions[partition];

  // Snapshot the committed live candidates, then overlay this transaction's
  // staged writes (read-your-writes). Lock modes cost nothing here; a
  // validated scan's stability comes from the range check at commit.
  std::map<std::string, Row> merged;
  {
    std::lock_guard<std::mutex> lock(p.mu);
    for (auto it = p.rows.lower_bound(eprefix); it != p.rows.end(); ++it) {
      if (!eprefix.empty() && it->first.compare(0, eprefix.size(), eprefix) != 0) break;
      if (!it->second.tombstone) merged.emplace(it->first, it->second.row);
    }
  }
  for (const auto& [tk, staged] : write_set_) {
    const auto& [wt, wekey] = tk;
    if (wt != table || staged.partition != partition) continue;
    if (!eprefix.empty() && wekey.compare(0, eprefix.size(), eprefix) != 0) continue;
    if (staged.is_delete) {
      merged.erase(wekey);
    } else {
      merged[wekey] = staged.row;
    }
  }

  std::vector<Row> results;
  for (auto& [ekey, row] : merged) {
    (*examined)++;
    if (!RowMatches(row, opts)) continue;
    results.push_back(std::move(row));
  }
  return results;
}

hops::Result<std::vector<Row>> OccTxn::ScanPartitions(TableId table,
                                                      const std::vector<uint32_t>& partitions,
                                                      const Key& prefix, const ScanOptions& opts,
                                                      AccessKind kind, bool full_scan) {
  const std::string eprefix = full_scan ? std::string() : EncodeKey(prefix);
  HOPS_RETURN_IF_ERROR(InjectFault(table, /*abort_tx=*/false));

  // A locking scan's stability guarantee becomes a validated range: loading
  // the published version BEFORE scanning means any commit that lands in the
  // range afterwards carries a newer version and fails the commit-time walk.
  // A take-and-release scan releases its locks immediately under 2PL -- no
  // post-scan stability -- so it records nothing here either.
  const bool validated = opts.lock != LockMode::kReadCommitted && !opts.take_and_release;
  const uint64_t seen =
      validated ? engine_->commit_version_.load(std::memory_order_acquire) : 0;

  std::vector<Row> results;
  std::vector<PartTouch> touches;
  touches.reserve(partitions.size());

  for (uint32_t partition : partitions) {
    HOPS_RETURN_IF_ERROR(CheckUsable(partition));
    uint32_t examined = 0;
    HOPS_ASSIGN_OR_RETURN(part_rows, ScanOnePartition(table, partition, eprefix, opts, &examined));
    for (auto& row : part_rows) results.push_back(std::move(row));
    touches.push_back(Touch(partition, examined));
  }
  if (validated) range_set_.push_back(RangeObs{table, partitions, eprefix, seen});
  RecordAccess(kind, table, std::move(touches), /*round_trips=*/1);
  return results;
}

hops::Result<std::vector<Row>> OccTxn::Ppis(TableId table, const Key& prefix,
                                            const ScanOptions& opts,
                                            std::optional<uint64_t> pv) {
  HOPS_RETURN_IF_ERROR(FlushPending());
  const OccEngine::Table& t = engine_->table(table);
  HOPS_ASSIGN_OR_RETURN(partition, engine_->Route(t, prefix, pv));
  return ScanPartitions(table, {partition}, prefix, opts, AccessKind::kPpis,
                        /*full_scan=*/false);
}

hops::Result<std::vector<Row>> OccTxn::IndexScan(TableId table, const Key& prefix,
                                                 const ScanOptions& opts) {
  HOPS_RETURN_IF_ERROR(FlushPending());
  std::vector<uint32_t> all(engine_->num_partitions());
  for (uint32_t p = 0; p < all.size(); ++p) all[p] = p;
  return ScanPartitions(table, all, prefix, opts, AccessKind::kIndexScan,
                        /*full_scan=*/prefix.empty());
}

hops::Result<std::vector<Row>> OccTxn::FullTableScan(TableId table, const ScanOptions& opts) {
  HOPS_RETURN_IF_ERROR(FlushPending());
  std::vector<uint32_t> all(engine_->num_partitions());
  for (uint32_t p = 0; p < all.size(); ++p) all[p] = p;
  return ScanPartitions(table, all, {}, opts, AccessKind::kFullTableScan,
                        /*full_scan=*/true);
}

// --- Outcome -----------------------------------------------------------------

hops::Status OccTxn::Commit() {
  hops::Status flush = FlushPending();
  if (flush.ok()) flush = pipeline_error_;
  if (!flush.ok()) {
    if (state_ == State::kActive) Abort();
    return flush;
  }
  if (state_ != State::kActive) return hops::Status::TxAborted("transaction is not active");
  if (!engine_->IsAlive(coordinator_)) {
    Abort();
    return hops::Status::TxAborted("transaction coordinator failed");
  }
  if (!write_set_.empty()) {
    HOPS_RETURN_IF_ERROR(InjectFault(FaultInjector::kAllTables, /*abort_tx=*/true));
  }

  // Prepare: every participating partition must be available.
  for (const auto& [tk, staged] : write_set_) {
    if (!engine_->PartitionAvailable(staged.partition)) {
      Abort();
      return hops::Status::Unavailable("participant node group is down");
    }
  }

  // Read-only fast path: nothing to validate or install; the commit ack
  // piggybacks on the last read.
  const uint32_t commit_round_trips = write_set_.empty() ? 0 : 2;
  std::vector<PartTouch> touches;
  if (!write_set_.empty()) {
    std::lock_guard<std::mutex> commit_lock(engine_->commit_mu_);

    // Validate: every point observation must still name the current
    // committed version, and no key may have landed in a validated range
    // since it was scanned.
    auto& s = engine_->stats_;
    for (const auto& [tk, obs] : read_set_) {
      const auto& [table_id, ekey] = tk;
      uint64_t current = CommittedVersion(table_id, obs.partition, ekey, nullptr);
      if (current != obs.version) {
        s.occ_conflicts.fetch_add(1, std::memory_order_relaxed);
        s.occ_key_conflicts.fetch_add(1, std::memory_order_relaxed);
        Abort();
        return hops::Status::Conflict("validated read of " +
                                      engine_->schema(table_id).table_name +
                                      " changed before commit");
      }
    }
    for (const RangeObs& range : range_set_) {
      for (uint32_t partition : range.partitions) {
        const OccEngine::Table& t = engine_->table(range.table);
        OccEngine::OccPartition& p = *t.partitions[partition];
        std::lock_guard<std::mutex> lock(p.mu);
        for (auto it = p.rows.lower_bound(range.eprefix); it != p.rows.end(); ++it) {
          if (!range.eprefix.empty() &&
              it->first.compare(0, range.eprefix.size(), range.eprefix) != 0) {
            break;
          }
          if (it->second.version > range.seen_version) {
            s.occ_conflicts.fetch_add(1, std::memory_order_relaxed);
            s.occ_range_conflicts.fetch_add(1, std::memory_order_relaxed);
            Abort();
            return hops::Status::Conflict("validated scan of " + t.schema.table_name +
                                          " grew a newer row before commit");
          }
        }
      }
    }

    // Install the write set at one new version, then publish it. Publishing
    // only after the full install keeps the invariant the range check rests
    // on: every commit <= the published counter is completely visible.
    const uint64_t version = engine_->commit_version_.load(std::memory_order_relaxed) + 1;
    for (const auto& [tk, staged] : write_set_) {
      const auto& [table_id, ekey] = tk;
      const OccEngine::Table& t = engine_->table(table_id);
      OccEngine::OccPartition& p = *t.partitions[staged.partition];
      std::lock_guard<std::mutex> lock(p.mu);
      auto it = p.rows.find(ekey);
      const bool was_live = it != p.rows.end() && !it->second.tombstone;
      if (was_live) {
        p.data_bytes -= RowBytes(ekey, it->second.row);
        p.live_rows--;
      }
      if (staged.is_delete) {
        p.rows[ekey] = OccEngine::VersionedRow{version, true, {}};
      } else {
        p.data_bytes += RowBytes(ekey, staged.row);
        p.live_rows++;
        p.rows[ekey] = OccEngine::VersionedRow{version, false, staged.row};
      }
      MergeTouch(touches, staged.partition,
                 1, engine_->PrimaryNode(staged.partition).value_or(coordinator_),
                 engine_->PrimaryNode(staged.partition).value_or(coordinator_) == coordinator_);
    }
    engine_->commit_version_.store(version, std::memory_order_release);
  }
  RecordAccess(AccessKind::kCommit, 0, std::move(touches), commit_round_trips);

  read_set_.clear();
  range_set_.clear();
  write_set_.clear();
  state_ = State::kCommitted;

  uint64_t commits = engine_->stats_.commits.fetch_add(1, std::memory_order_relaxed) + 1;
  if (commits % OccEngine::kGlobalCheckpointCommits == 0) {
    engine_->gcp_epoch_.fetch_add(1, std::memory_order_relaxed);
  }
  return hops::Status::Ok();
}

void OccTxn::Abort() {
  if (state_ != State::kActive) return;
  for (const auto& f : in_flight_) {
    batch_results_.emplace(f.seq,
                           hops::Status::TxAborted("transaction aborted before the batch flushed"));
  }
  in_flight_.clear();
  read_set_.clear();
  range_set_.clear();
  write_set_.clear();
  state_ = State::kAborted;
  engine_->stats_.aborts.fetch_add(1, std::memory_order_relaxed);
}

// --- OccEngine ---------------------------------------------------------------

OccEngine::OccEngine(EngineConfig config) : config_(config) {
  assert(config_.num_datanodes > 0);
  assert(config_.replication > 0);
  assert(config_.num_datanodes % config_.replication == 0 &&
         "datanode count must be a multiple of the replication degree");
  num_partitions_ = config_.partitions_per_table != 0 ? config_.partitions_per_table
                                                      : 2 * config_.num_datanodes;
  num_groups_ = config_.num_datanodes / config_.replication;
  node_alive_ = std::vector<std::atomic<bool>>(config_.num_datanodes);
  for (auto& a : node_alive_) a.store(true, std::memory_order_relaxed);
}

hops::Result<TableId> OccEngine::CreateTable(Schema schema) {
  std::string error;
  if (!schema.Validate(&error)) return hops::Status::InvalidArgument(error);
  auto t = std::make_unique<Table>();
  for (size_t part_col : schema.partition_key) {
    size_t pos = 0;
    for (; pos < schema.primary_key.size(); ++pos) {
      if (schema.primary_key[pos] == part_col) break;
    }
    t->part_pos_in_pk.push_back(pos);
  }
  t->schema = std::move(schema);
  t->partitions.reserve(num_partitions_);
  for (uint32_t p = 0; p < num_partitions_; ++p) {
    t->partitions.push_back(std::make_unique<OccPartition>());
  }
  std::lock_guard<std::mutex> lock(tables_mu_);
  tables_.push_back(std::move(t));
  return static_cast<TableId>(tables_.size() - 1);
}

const Schema& OccEngine::schema(TableId id) const { return table(id).schema; }

std::optional<TableId> OccEngine::FindTable(std::string_view name) const {
  std::lock_guard<std::mutex> lock(tables_mu_);
  for (size_t i = 0; i < tables_.size(); ++i) {
    if (tables_[i]->schema.table_name == name) return static_cast<TableId>(i);
  }
  return std::nullopt;
}

const OccEngine::Table& OccEngine::table(TableId id) const {
  std::lock_guard<std::mutex> lock(tables_mu_);
  assert(id < tables_.size());
  return *tables_[id];
}

std::unique_ptr<Txn> OccEngine::Begin(std::optional<TxHint> hint) {
  uint32_t coordinator = 0;
  bool placed = false;
  if (hint) {
    uint32_t partition = PartitionForValue(hint->partition_value);
    if (auto primary = PrimaryNode(partition)) {
      coordinator = *primary;
      placed = true;
    }
  }
  if (!placed) {
    for (uint32_t i = 0; i < config_.num_datanodes; ++i) {
      uint32_t candidate =
          rr_coordinator_.fetch_add(1, std::memory_order_relaxed) % config_.num_datanodes;
      if (IsAlive(candidate)) {
        coordinator = candidate;
        placed = true;
        break;
      }
    }
  }
  TxId id = next_tx_id_.fetch_add(1, std::memory_order_relaxed);
  return std::unique_ptr<Txn>(new OccTxn(this, id, coordinator));
}

void OccEngine::KillDatanode(uint32_t node) {
  assert(node < config_.num_datanodes);
  node_alive_[node].store(false, std::memory_order_release);
}

void OccEngine::RestartDatanode(uint32_t node) {
  assert(node < config_.num_datanodes);
  node_alive_[node].store(true, std::memory_order_release);
}

bool OccEngine::IsAlive(uint32_t node) const {
  return node_alive_[node].load(std::memory_order_acquire);
}

uint32_t OccEngine::NumAliveNodes() const {
  uint32_t n = 0;
  for (const auto& a : node_alive_) n += a.load(std::memory_order_acquire) ? 1 : 0;
  return n;
}

bool OccEngine::Available() const {
  for (uint32_t g = 0; g < num_groups_; ++g) {
    bool any = false;
    for (uint32_t r = 0; r < config_.replication; ++r) {
      if (IsAlive(g * config_.replication + r)) {
        any = true;
        break;
      }
    }
    if (!any) return false;
  }
  return true;
}

uint32_t OccEngine::PartitionForValue(uint64_t partition_value) const {
  return static_cast<uint32_t>(HashU64(partition_value) % num_partitions_);
}

std::optional<uint32_t> OccEngine::PrimaryNode(uint32_t partition) const {
  uint32_t group = GroupOf(partition);
  for (uint32_t r = 0; r < config_.replication; ++r) {
    uint32_t node = group * config_.replication + r;
    if (IsAlive(node)) return node;
  }
  return std::nullopt;
}

bool OccEngine::PartitionAvailable(uint32_t partition) const {
  return PrimaryNode(partition).has_value();
}

hops::Result<uint32_t> OccEngine::Route(const Table& t, const Key& pk_values,
                                        std::optional<uint64_t> pv) const {
  if (pv) return PartitionForValue(*pv);
  if (t.schema.requires_explicit_partition) {
    return hops::Status::InvalidArgument(t.schema.table_name +
                                         " requires an explicit partition value");
  }
  std::string encoded;
  for (size_t pos : t.part_pos_in_pk) {
    if (pos >= pk_values.size()) {
      return hops::Status::InvalidArgument("key prefix does not cover the partition key of " +
                                           t.schema.table_name);
    }
    EncodeValue(pk_values[pos], encoded);
  }
  return PartitionForValue(HashBytes(encoded));
}

ClusterStats OccEngine::StatsSnapshot() const {
  ClusterStats s;
  s.pk_reads = stats_.pk_reads.load(std::memory_order_relaxed);
  s.batch_reads = stats_.batch_reads.load(std::memory_order_relaxed);
  s.batch_writes = stats_.batch_writes.load(std::memory_order_relaxed);
  s.ppis_scans = stats_.ppis_scans.load(std::memory_order_relaxed);
  s.index_scans = stats_.index_scans.load(std::memory_order_relaxed);
  s.full_table_scans = stats_.full_table_scans.load(std::memory_order_relaxed);
  s.commits = stats_.commits.load(std::memory_order_relaxed);
  s.aborts = stats_.aborts.load(std::memory_order_relaxed);
  s.rows_read = stats_.rows_read.load(std::memory_order_relaxed);
  s.rows_written = stats_.rows_written.load(std::memory_order_relaxed);
  s.round_trips = stats_.round_trips.load(std::memory_order_relaxed);
  s.overlapped_round_trips = stats_.overlapped_round_trips.load(std::memory_order_relaxed);
  s.occ_conflicts = stats_.occ_conflicts.load(std::memory_order_relaxed);
  s.occ_key_conflicts = stats_.occ_key_conflicts.load(std::memory_order_relaxed);
  s.occ_range_conflicts = stats_.occ_range_conflicts.load(std::memory_order_relaxed);
  // No locks, no mux: lock_timeouts/lock_waits and the mux_* counters stay 0.
  return s;
}

void OccEngine::ResetStats() {
  stats_.pk_reads = 0;
  stats_.batch_reads = 0;
  stats_.batch_writes = 0;
  stats_.ppis_scans = 0;
  stats_.index_scans = 0;
  stats_.full_table_scans = 0;
  stats_.commits = 0;
  stats_.aborts = 0;
  stats_.rows_read = 0;
  stats_.rows_written = 0;
  stats_.round_trips = 0;
  stats_.overlapped_round_trips = 0;
  stats_.occ_conflicts = 0;
  stats_.occ_key_conflicts = 0;
  stats_.occ_range_conflicts = 0;
}

size_t OccEngine::TableRowCount(TableId id) const {
  const Table& t = table(id);
  size_t n = 0;
  for (const auto& p : t.partitions) {
    std::lock_guard<std::mutex> lock(p->mu);
    n += p->live_rows;
  }
  return n;
}

size_t OccEngine::TableMemoryBytes(TableId id) const {
  const Table& t = table(id);
  size_t bytes = 0;
  for (const auto& p : t.partitions) {
    std::lock_guard<std::mutex> lock(p->mu);
    bytes += p->data_bytes + p->live_rows * kPerRowOverheadBytes;
  }
  return bytes * config_.replication;
}

size_t OccEngine::TotalMemoryBytes() const {
  size_t total = 0;
  size_t n;
  {
    std::lock_guard<std::mutex> lock(tables_mu_);
    n = tables_.size();
  }
  for (size_t i = 0; i < n; ++i) total += TableMemoryBytes(static_cast<TableId>(i));
  return total;
}

}  // namespace hops::kv
