// kv::Engine backend #2: an optimistic-concurrency MVCC engine
// (FoundationDB-style, per the 3FS integration notes).
//
// Concurrency model (backward-oriented OCC, first-committer-wins):
//  * Every committed row carries the commit version that installed it;
//    deletes install tombstones (version + no payload), so "the row changed"
//    and "the row vanished" validate identically.
//  * Reads never block and take no locks. kReadCommitted reads return the
//    latest committed version and are not validated -- exactly the stability
//    the 2PL engine's unlocked reads give. kShared/kExclusive reads are
//    recorded in the transaction's READ SET with the version they observed
//    (0 = key absent: the insert-guard observation).
//  * Locking scans are recorded in the RANGE SET as (table, partitions,
//    encoded prefix, version-at-scan); validation re-walks the range and
//    fails if any key under the prefix -- including tombstones -- carries a
//    newer version. This is the phantom check a 2PL locking scan gets from
//    holding its row locks.
//  * Writes (insert/update/upsert/delete) stage client-side in the write
//    set; existence-checking writes record a read-set observation so a
//    racing writer is caught. Blind upserts (Write) stage without
//    observation -- last-writer-wins, the same outcome 2PL serializes to.
//  * Commit validates the read and range sets and installs the write set
//    under one global commit mutex, at a single new commit version. The
//    published version counter is bumped only AFTER the install completes,
//    so a concurrent reader that loads version v is guaranteed every commit
//    <= v is fully visible -- the ordering the range check's correctness
//    rests on. A failed validation aborts with hops::StatusCode::kConflict
//    (retryable; Namenode::RunTx retries with a capped exponential backoff)
//    and bumps ClusterStats::occ_conflicts / occ_key_conflicts /
//    occ_range_conflicts.
//  * Read-only transactions skip validation: their results were already
//    returned under read-committed semantics and nothing observable depends
//    on commit-time stability (the classic OCC read-only fast path).
//
// Cost model, kept deliberately comparable to the 2PL engine: a read costs
// one round trip; an existence-checking write costs one unless the key's
// state is already known client-side (read or written earlier in the
// transaction -- the analogue of "lock already held"); a blind upsert is a
// pure client-side buffer append (0 trips until commit); commit with writes
// costs 2 trips (validate = prepare, install = commit); pipelined windows
// flush as one overlapped trip with the same overlapped_round_trips
// accounting. Tombstones are never garbage-collected -- deleted keys leave a
// version marker whose memory is excluded from the table-size accounting.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>
#include <vector>

#include "kv/kv.h"

namespace hops::kv {

class OccEngine;

class OccTxn final : public Txn {
 public:
  ~OccTxn() override;

  TxId id() const override { return id_; }
  uint32_t coordinator() const override { return coordinator_; }

  hops::Result<Row> Read(TableId table, const Key& key, LockMode mode,
                         std::optional<uint64_t> pv) override;
  hops::Result<std::vector<std::optional<Row>>> BatchRead(
      TableId table, const std::vector<Key>& keys, LockMode mode,
      const std::vector<uint64_t>* pvs) override;
  hops::Status Insert(TableId table, Row row, std::optional<uint64_t> pv) override;
  hops::Status Update(TableId table, Row row, std::optional<uint64_t> pv) override;
  hops::Status Write(TableId table, Row row, std::optional<uint64_t> pv) override;
  hops::Status Delete(TableId table, const Key& key, std::optional<uint64_t> pv) override;

  size_t InFlightBatches() const override { return in_flight_.size(); }
  hops::Status FlushPending() override;
  void UnlockRow(TableId table, const Key& key, std::optional<uint64_t> pv) override;

  hops::Result<std::vector<Row>> Ppis(TableId table, const Key& prefix, const ScanOptions& opts,
                                      std::optional<uint64_t> pv) override;
  hops::Result<std::vector<Row>> IndexScan(TableId table, const Key& prefix,
                                           const ScanOptions& opts) override;
  hops::Result<std::vector<Row>> FullTableScan(TableId table, const ScanOptions& opts) override;

  hops::Status Commit() override;
  void Abort() override;
  bool active() const override { return state_ == State::kActive; }

  void EnableTrace() override { trace_enabled_ = true; }
  const CostTrace& trace() const override { return trace_; }
  void SetBackground(bool background) override { background_ = background; }
  void SetLatencySensitive(bool v) override { latency_sensitive_ = v; }

 private:
  friend class OccEngine;
  enum class State { kActive, kCommitted, kAborted };

  struct StagedWrite {
    bool is_delete = false;
    Row row;
    uint32_t partition = 0;
  };
  // One validated point observation: the version the transaction saw for a
  // key (0 = absent). Exact-match validated at commit.
  struct ReadObs {
    uint32_t partition = 0;
    uint64_t version = 0;
  };
  // One validated scan: no key under eprefix in these partitions may carry a
  // version newer than seen_version at commit.
  struct RangeObs {
    TableId table = 0;
    std::vector<uint32_t> partitions;
    std::string eprefix;
    uint64_t seen_version = 0;
  };
  struct InFlightBatch {
    uint64_t seq = 0;
    ReadBatch* read = nullptr;
    WriteBatch* write = nullptr;
  };

  OccTxn(OccEngine* engine, TxId id, uint32_t coordinator);

  hops::Status CheckUsable(uint32_t partition);
  hops::Status InjectFault(TableId table, bool abort_tx);
  void RecordAccess(AccessKind kind, TableId table, std::vector<PartTouch> parts,
                    uint32_t round_trips = 1);
  PartTouch Touch(uint32_t partition, uint32_t rows) const;
  // Latest committed version of (table, partition, ekey); 0 = never existed.
  // `live_row`, when non-null, receives the row if it is live (non-tombstone).
  uint64_t CommittedVersion(TableId table, uint32_t partition, const std::string& ekey,
                            std::optional<Row>* live_row) const;
  void Observe(TableId table, uint32_t partition, const std::string& ekey, uint64_t version);
  // True when the transaction already knows this key's state client-side
  // (observed it or staged a write) -- the OCC analogue of "lock already
  // held" used by the round-trip accounting.
  bool KeyKnown(TableId table, const std::string& ekey) const;
  // Existence-checking write preamble shared by Insert/Update/Delete and the
  // batched write path: staged-write overlay first, committed state second
  // (recording the observation).
  bool RowExists(TableId table, uint32_t partition, const std::string& ekey);

  hops::Result<std::vector<Row>> ScanOnePartition(TableId table, uint32_t partition,
                                                  const std::string& eprefix,
                                                  const ScanOptions& opts, uint32_t* examined);
  hops::Result<std::vector<Row>> ScanPartitions(TableId table,
                                                const std::vector<uint32_t>& partitions,
                                                const Key& prefix, const ScanOptions& opts,
                                                AccessKind kind, bool full_scan);

  uint64_t PrepareAsync(ReadBatch* read, WriteBatch* write) override;
  hops::Status WaitBatch(uint64_t seq) override;
  bool BatchDone(uint64_t seq) const override { return batch_results_.count(seq) > 0; }
  hops::Status RunReadBatchData(ReadBatch& batch, std::vector<Access>& accesses);
  hops::Status RunWriteBatchData(WriteBatch& batch, std::vector<Access>& accesses,
                                 bool* fresh_keys);

  OccEngine* const engine_;
  const TxId id_;
  const uint32_t coordinator_;
  State state_ = State::kActive;

  std::map<std::pair<TableId, std::string>, ReadObs> read_set_;
  std::vector<RangeObs> range_set_;
  std::map<std::pair<TableId, std::string>, StagedWrite> write_set_;

  std::vector<InFlightBatch> in_flight_;
  std::map<uint64_t, hops::Status> batch_results_;
  hops::Status pipeline_error_;
  uint64_t next_batch_seq_ = 1;

  bool trace_enabled_ = false;
  bool background_ = false;
  bool latency_sensitive_ = false;
  CostTrace trace_;
};

class OccEngine final : public Engine {
 public:
  explicit OccEngine(EngineConfig config);

  EngineKind kind() const override { return EngineKind::kOcc; }

  hops::Result<TableId> CreateTable(Schema schema) override;
  const Schema& schema(TableId table) const override;
  std::optional<TableId> FindTable(std::string_view name) const override;

  std::unique_ptr<Txn> Begin(std::optional<TxHint> hint) override;

  FaultInjector& fault_injector() override { return fault_injector_; }
  void KillDatanode(uint32_t node) override;
  void RestartDatanode(uint32_t node) override;
  bool IsAlive(uint32_t node) const override;
  uint32_t NumAliveNodes() const override;
  bool Available() const override;

  const EngineConfig& config() const override { return config_; }
  uint32_t num_datanodes() const override { return config_.num_datanodes; }
  uint32_t num_partitions() const override { return num_partitions_; }
  uint32_t num_node_groups() const override { return num_groups_; }
  uint32_t PartitionForValue(uint64_t partition_value) const override;
  std::optional<uint32_t> PrimaryNode(uint32_t partition) const override;

  ClusterStats StatsSnapshot() const override;
  void ResetStats() override;
  size_t TableRowCount(TableId table) const override;
  size_t TotalMemoryBytes() const override;
  size_t TableMemoryBytes(TableId table) const override;
  uint64_t GlobalCheckpointEpoch() const override {
    return gcp_epoch_.load(std::memory_order_relaxed);
  }

 private:
  friend class OccTxn;
  static constexpr uint64_t kGlobalCheckpointCommits = 256;

  struct VersionedRow {
    uint64_t version = 0;
    bool tombstone = false;
    Row row;
  };
  struct OccPartition {
    mutable std::mutex mu;
    std::map<std::string, VersionedRow> rows;  // ordered: prefix scans + range checks
    size_t live_rows = 0;
    size_t data_bytes = 0;  // live payload + key bytes (tombstones excluded)
  };
  struct Table {
    Schema schema;
    std::vector<size_t> part_pos_in_pk;
    std::vector<std::unique_ptr<OccPartition>> partitions;
  };

  const Table& table(TableId id) const;
  hops::Result<uint32_t> Route(const Table& t, const Key& pk_values,
                               std::optional<uint64_t> pv) const;
  uint32_t GroupOf(uint32_t partition) const { return partition % num_groups_; }
  bool PartitionAvailable(uint32_t partition) const;

  EngineConfig config_;
  FaultInjector fault_injector_;
  uint32_t num_partitions_;
  uint32_t num_groups_;
  std::vector<std::unique_ptr<Table>> tables_;
  mutable std::mutex tables_mu_;
  std::vector<std::atomic<bool>> node_alive_;
  std::atomic<TxId> next_tx_id_{1};
  std::atomic<uint32_t> rr_coordinator_{0};
  std::atomic<uint64_t> gcp_epoch_{1};

  // Commits serialize here: validate, install at published+1, then publish.
  std::mutex commit_mu_;
  std::atomic<uint64_t> commit_version_{0};

  struct AtomicStats {
    std::atomic<uint64_t> pk_reads{0}, batch_reads{0}, batch_writes{0}, ppis_scans{0},
        index_scans{0}, full_table_scans{0}, commits{0}, aborts{0}, rows_read{0},
        rows_written{0}, round_trips{0}, overlapped_round_trips{0}, occ_conflicts{0},
        occ_key_conflicts{0}, occ_range_conflicts{0};
  };
  mutable AtomicStats stats_;
};

}  // namespace hops::kv
