// The pluggable transactional-KV engine boundary (3FS CustomKvEngine idiom).
//
// HopsFS's bet (paper §2) is that hierarchical metadata can ride ANY NewSQL
// store that offers transactions, row locks or their moral equivalent, and
// partition-aware routing. This header is that contract, distilled from what
// the namenode layer actually needs: kv::Engine owns tables, topology and
// stats; kv::Txn is one transaction with point ops, batch execute, pipelined
// in-flight windows, scans, and explicit lock modes. Two backends implement
// it:
//
//  * kv::NdbEngine (ndb_engine.h) -- the NDB-style pessimistic engine:
//    read-committed isolation plus eagerly acquired shared/exclusive row
//    locks, deadlock resolution by lock-wait timeout, cross-transaction
//    completion mux. LockMode is enforced at access time.
//  * kv::OccEngine (occ_engine.h) -- an optimistic MVCC engine
//    (FoundationDB-style): lock modes never block; kShared/kExclusive reads
//    are recorded in a read set and validated at commit, locking scans are
//    recorded as ranges (phantom protection), and a failed validation
//    surfaces hops::StatusCode::kConflict -- retryable, so the namenode's
//    RunTx loop becomes a real OCC retry loop.
//
// Lock-mode semantics every backend must honor (the contract call sites are
// written against):
//  * kReadCommitted: sees the latest committed version, never blocks, and
//    carries NO stability guarantee past the read itself.
//  * kShared: the value read is guaranteed unchanged at commit -- by holding
//    the lock (2PL) or by failing validation (OCC). A read of a MISSING row
//    guards its key slot the same way (insert-guard semantics).
//  * kExclusive: kShared's guarantee plus the intent to write; concurrent
//    kShared/kExclusive claims on the row serialize (2PL blocks, OCC aborts
//    one claimant at commit).
//
// The data plane (rows, keys, schemas, batches, cost traces, stats, fault
// injection) is shared with src/ndb via aliases: both backends speak the
// same rows and emit the same counters, so benches and the DES simulator
// compare engines without translation.
#pragma once

#include <memory>
#include <optional>
#include <string_view>

#include "ndb/cluster.h"

namespace hops::kv {

// --- Shared data plane -------------------------------------------------------
using Value = ndb::Value;
using Row = ndb::Row;
using Key = ndb::Key;
using ColumnType = ndb::ColumnType;
using Column = ndb::Column;
using Schema = ndb::Schema;
using TableId = ndb::TableId;
using TxId = ndb::TxId;
using LockMode = ndb::LockMode;
using ScanOptions = ndb::ScanOptions;
using BatchLockOrder = ndb::BatchLockOrder;
using ReadBatch = ndb::ReadBatch;
using WriteBatch = ndb::WriteBatch;
using AccessKind = ndb::AccessKind;
using PartTouch = ndb::PartTouch;
using Access = ndb::Access;
using CostTrace = ndb::CostTrace;
using ClusterStats = ndb::ClusterStats;
using FaultInjector = ndb::FaultInjector;
using TxHint = ndb::TxHint;
// Both backends consume the same knob set; OCC ignores the lock-wait and
// completion-mux fields (it has neither lock waits nor a mux).
using EngineConfig = ndb::ClusterConfig;

// --- Backend selection -------------------------------------------------------
enum class EngineKind : uint8_t {
  kNdb,  // pessimistic 2PL (NDB-style), the paper's engine
  kOcc,  // optimistic MVCC with commit-time validation
};

std::string_view EngineKindName(EngineKind kind);
// "ndb" / "occ" (case-insensitive); nullopt for anything else.
std::optional<EngineKind> ParseEngineKind(std::string_view name);
// The HOPS_KV_ENGINE environment override consumed by MiniCluster::Start and
// the benches; nullopt when unset or unparseable.
std::optional<EngineKind> EngineKindFromEnv();

class Txn;

// Future-like handle to a batch submitted through Txn::ExecuteAsync. Mirrors
// ndb::PendingBatch: cheap to copy, names the batch within its transaction,
// and requires the staged ReadBatch/WriteBatch to stay alive until Wait().
class Pending {
 public:
  Pending() = default;

  bool valid() const { return tx_ != nullptr; }
  bool done() const;
  hops::Status Wait();

 private:
  friend class Txn;
  Pending(Txn* tx, uint64_t seq) : tx_(tx), seq_(seq) {}
  Txn* tx_ = nullptr;
  uint64_t seq_ = 0;
};

// One transaction against a kv::Engine. The surface mirrors
// ndb::Transaction's public API one-for-one so the namenode call sites are
// backend-agnostic; see that header for per-method semantics.
class Txn {
 public:
  virtual ~Txn() = default;
  Txn(const Txn&) = delete;
  Txn& operator=(const Txn&) = delete;

  virtual TxId id() const = 0;
  virtual uint32_t coordinator() const = 0;

  // --- Primary-key operations ---
  virtual hops::Result<Row> Read(TableId table, const Key& key, LockMode mode,
                                 std::optional<uint64_t> pv = std::nullopt) = 0;
  virtual hops::Result<std::vector<std::optional<Row>>> BatchRead(
      TableId table, const std::vector<Key>& keys, LockMode mode,
      const std::vector<uint64_t>* pvs = nullptr) = 0;
  virtual hops::Status Insert(TableId table, Row row,
                              std::optional<uint64_t> pv = std::nullopt) = 0;
  virtual hops::Status Update(TableId table, Row row,
                              std::optional<uint64_t> pv = std::nullopt) = 0;
  virtual hops::Status Write(TableId table, Row row,
                             std::optional<uint64_t> pv = std::nullopt) = 0;
  virtual hops::Status Delete(TableId table, const Key& key,
                              std::optional<uint64_t> pv = std::nullopt) = 0;

  // --- Batched execution (sync = async + immediate Wait) ---
  hops::Status Execute(ReadBatch& batch) { return ExecuteAsync(batch).Wait(); }
  hops::Status Execute(WriteBatch& batch) { return ExecuteAsync(batch).Wait(); }
  Pending ExecuteAsync(ReadBatch& batch) { return Pending(this, PrepareAsync(&batch, nullptr)); }
  Pending ExecuteAsync(WriteBatch& batch) { return Pending(this, PrepareAsync(nullptr, &batch)); }
  virtual size_t InFlightBatches() const = 0;
  virtual hops::Status FlushPending() = 0;
  virtual void UnlockRow(TableId table, const Key& key,
                         std::optional<uint64_t> pv = std::nullopt) = 0;

  // --- Scans ---
  virtual hops::Result<std::vector<Row>> Ppis(TableId table, const Key& prefix,
                                              const ScanOptions& opts = {},
                                              std::optional<uint64_t> pv = std::nullopt) = 0;
  virtual hops::Result<std::vector<Row>> IndexScan(TableId table, const Key& prefix,
                                                   const ScanOptions& opts = {}) = 0;
  virtual hops::Result<std::vector<Row>> FullTableScan(TableId table,
                                                       const ScanOptions& opts = {}) = 0;

  // --- Outcome ---
  virtual hops::Status Commit() = 0;
  virtual void Abort() = 0;
  virtual bool active() const = 0;

  // --- Cost trace ---
  virtual void EnableTrace() = 0;
  virtual const CostTrace& trace() const = 0;
  virtual void SetBackground(bool background) = 0;
  virtual void SetLatencySensitive(bool v) = 0;

 protected:
  Txn() = default;

 private:
  friend class Pending;
  // Registers a batch (exactly one of read/write set) and returns the handle
  // sequence Pending resolves through WaitBatch/BatchDone.
  virtual uint64_t PrepareAsync(ReadBatch* read, WriteBatch* write) = 0;
  virtual hops::Status WaitBatch(uint64_t seq) = 0;
  virtual bool BatchDone(uint64_t seq) const = 0;
};

inline bool Pending::done() const { return tx_ != nullptr && tx_->BatchDone(seq_); }

inline hops::Status Pending::Wait() {
  if (tx_ == nullptr) return hops::Status::InvalidArgument("empty batch handle");
  return tx_->WaitBatch(seq_);
}

// One storage backend: tables, transactions, topology, failure injection and
// stats. The surface mirrors ndb::Cluster so MiniCluster and the tests/
// benches interrogate either backend identically.
class Engine {
 public:
  virtual ~Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  virtual EngineKind kind() const = 0;
  std::string_view name() const { return EngineKindName(kind()); }

  virtual hops::Result<TableId> CreateTable(Schema schema) = 0;
  virtual const Schema& schema(TableId table) const = 0;
  virtual std::optional<TableId> FindTable(std::string_view name) const = 0;

  virtual std::unique_ptr<Txn> Begin(std::optional<TxHint> hint = std::nullopt) = 0;

  // --- Failure injection (the chaos harness drives either backend) ---
  virtual FaultInjector& fault_injector() = 0;
  virtual void KillDatanode(uint32_t node) = 0;
  virtual void RestartDatanode(uint32_t node) = 0;
  virtual bool IsAlive(uint32_t node) const = 0;
  virtual uint32_t NumAliveNodes() const = 0;
  virtual bool Available() const = 0;

  // --- Topology ---
  virtual const EngineConfig& config() const = 0;
  virtual uint32_t num_datanodes() const = 0;
  virtual uint32_t num_partitions() const = 0;
  virtual uint32_t num_node_groups() const = 0;
  virtual uint32_t PartitionForValue(uint64_t partition_value) const = 0;
  virtual std::optional<uint32_t> PrimaryNode(uint32_t partition) const = 0;

  // --- Introspection ---
  virtual ClusterStats StatsSnapshot() const = 0;
  virtual void ResetStats() = 0;
  virtual size_t TableRowCount(TableId table) const = 0;
  virtual size_t TotalMemoryBytes() const = 0;
  virtual size_t TableMemoryBytes(TableId table) const = 0;
  virtual uint64_t GlobalCheckpointEpoch() const = 0;

  static constexpr size_t kPerRowOverheadBytes = ndb::Cluster::kPerRowOverheadBytes;

 protected:
  Engine() = default;
};

std::unique_ptr<Engine> MakeEngine(EngineKind kind, EngineConfig config);

}  // namespace hops::kv
