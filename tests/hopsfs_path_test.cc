// Path parsing, lock-order comparator, partition placement rules, and the
// inode hint cache.
#include <gtest/gtest.h>

#include "hopsfs/inode_cache.h"
#include "hopsfs/partition.h"
#include "hopsfs/path.h"

namespace hops::fs {
namespace {

TEST(PathTest, SplitBasics) {
  auto r = SplitPath("/a/b/c");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(SplitPath("/")->empty());
  auto trailing = SplitPath("/a/b/");
  ASSERT_TRUE(trailing.ok());
  EXPECT_EQ(trailing->size(), 2u);
}

TEST(PathTest, RejectsBadPaths) {
  EXPECT_FALSE(SplitPath("").ok());
  EXPECT_FALSE(SplitPath("a/b").ok());
  EXPECT_FALSE(SplitPath("/a//b").ok());
  EXPECT_FALSE(SplitPath("/a/./b").ok());
  EXPECT_FALSE(SplitPath("/a/../b").ok());
}

TEST(PathTest, JoinRoundTrips) {
  EXPECT_EQ(JoinPath({}), "/");
  EXPECT_EQ(JoinPath({"a"}), "/a");
  EXPECT_EQ(JoinPath({"a", "b"}), "/a/b");
}

TEST(PathTest, PrefixOnComponentBoundaries) {
  EXPECT_TRUE(IsPrefixPath("/a/b", "/a/b/c"));
  EXPECT_TRUE(IsPrefixPath("/a/b", "/a/b"));
  EXPECT_FALSE(IsPrefixPath("/a/b", "/a/bc"));
  EXPECT_TRUE(IsPrefixPath("/", "/anything"));
  EXPECT_FALSE(IsPrefixPath("/a/b/c", "/a/b"));
}

TEST(PathTest, LockOrderIsLeftOrderedDfs) {
  std::vector<std::string> a{"a"};
  std::vector<std::string> ab{"a", "b"};
  std::vector<std::string> ac{"a", "c"};
  std::vector<std::string> b{"b"};
  EXPECT_TRUE(LockOrderLess(a, ab)) << "ancestor before descendant";
  EXPECT_TRUE(LockOrderLess(ab, ac)) << "left sibling first";
  EXPECT_TRUE(LockOrderLess(ac, b)) << "whole left subtree before right sibling";
  EXPECT_FALSE(LockOrderLess(ab, a));
  EXPECT_FALSE(LockOrderLess(a, a));
}

TEST(PartitionTest, DeepInodesPartitionByParent) {
  // depth > random_partition_depth: pv = parent id (co-locates siblings).
  uint64_t pv1 = InodePartitionValue(3, 42, "x", 1);
  uint64_t pv2 = InodePartitionValue(3, 42, "y", 1);
  EXPECT_EQ(pv1, pv2);
  EXPECT_EQ(pv1, 42u);
}

TEST(PartitionTest, TopLevelsPartitionByName) {
  // depth <= random_partition_depth: pv = hash(name) (spreads the hotspot).
  uint64_t pv1 = InodePartitionValue(1, kRootInode, "home", 1);
  uint64_t pv2 = InodePartitionValue(1, kRootInode, "tmp", 1);
  EXPECT_NE(pv1, pv2) << "siblings of the root must scatter";
  EXPECT_EQ(pv1, HashBytes("home"));
}

TEST(PartitionTest, DepthKnobExtendsHashing) {
  EXPECT_EQ(InodePartitionValue(2, 9, "x", 1), 9u);
  EXPECT_EQ(InodePartitionValue(2, 9, "x", 2), HashBytes("x"));
}

TEST(PartitionTest, ChildrenPruning) {
  // random depth 1: children of depth>=1 dirs are pruned, root's are not.
  EXPECT_FALSE(ChildrenArePruned(0, 1));
  EXPECT_TRUE(ChildrenArePruned(1, 1));
  EXPECT_TRUE(ChildrenArePruned(5, 1));
  // random depth 0 disables scattering entirely (ablation).
  EXPECT_TRUE(ChildrenArePruned(0, 0));
}

TEST(InodeCacheTest, ChainLookupStopsAtGap) {
  InodeHintCache cache(128);
  std::vector<std::string> path{"a", "b", "c"};
  cache.Put(path, 0, kRootInode, 10);
  cache.Put(path, 1, 10, 20);
  auto chain = cache.LookupChain(path);
  ASSERT_EQ(chain.size(), 2u);
  EXPECT_EQ(chain[0].inode_id, 10);
  EXPECT_EQ(chain[1].inode_id, 20);
  EXPECT_EQ(chain[1].parent_id, 10);
}

TEST(InodeCacheTest, FullChainCountsAsHit) {
  InodeHintCache cache(128);
  std::vector<std::string> path{"a", "b"};
  cache.Put(path, 0, kRootInode, 10);
  cache.Put(path, 1, 10, 20);
  ASSERT_EQ(cache.LookupChain(path).size(), 2u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 0u);
  std::vector<std::string> other{"a", "z"};
  EXPECT_EQ(cache.LookupChain(other).size(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(InodeCacheTest, PrefixInvalidation) {
  InodeHintCache cache(128);
  std::vector<std::string> p1{"a", "b", "c"};
  std::vector<std::string> p2{"a", "bx"};
  cache.Put(p1, 0, 1, 10);
  cache.Put(p1, 1, 10, 20);
  cache.Put(p1, 2, 20, 30);
  cache.Put(p2, 1, 10, 40);
  cache.InvalidatePrefix("/a/b");
  auto chain = cache.LookupChain(p1);
  EXPECT_EQ(chain.size(), 1u) << "/a survives, /a/b and /a/b/c are gone";
  auto chain2 = cache.LookupChain(p2);
  EXPECT_EQ(chain2.size(), 2u) << "/a/bx is not under the /a/b prefix";
}

TEST(InodeCacheTest, LruEviction) {
  InodeHintCache cache(2);
  std::vector<std::string> pa{"a"}, pb{"b"}, pc{"c"};
  cache.Put(pa, 0, 1, 10);
  cache.Put(pb, 0, 1, 11);
  ASSERT_EQ(cache.LookupChain(pa).size(), 1u);  // touch /a
  cache.Put(pc, 0, 1, 12);                      // evicts /b
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.LookupChain(pb).size(), 0u);
  EXPECT_EQ(cache.LookupChain(pa).size(), 1u);
}

TEST(InodeCacheTest, ZeroCapacityDisables) {
  InodeHintCache cache(0);
  std::vector<std::string> pa{"a"};
  cache.Put(pa, 0, 1, 10);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_TRUE(cache.LookupChain(pa).empty());
}

}  // namespace
}  // namespace hops::fs
