// Path parsing, lock-order comparator, and partition placement rules.
#include <gtest/gtest.h>

#include "hopsfs/partition.h"
#include "hopsfs/path.h"

namespace hops::fs {
namespace {

TEST(PathTest, SplitBasics) {
  auto r = SplitPath("/a/b/c");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(SplitPath("/")->empty());
  auto trailing = SplitPath("/a/b/");
  ASSERT_TRUE(trailing.ok());
  EXPECT_EQ(trailing->size(), 2u);
}

TEST(PathTest, RejectsBadPaths) {
  EXPECT_FALSE(SplitPath("").ok());
  EXPECT_FALSE(SplitPath("a/b").ok());
  EXPECT_FALSE(SplitPath("/a//b").ok());
  EXPECT_FALSE(SplitPath("/a/./b").ok());
  EXPECT_FALSE(SplitPath("/a/../b").ok());
}

TEST(PathTest, JoinRoundTrips) {
  EXPECT_EQ(JoinPath({}), "/");
  EXPECT_EQ(JoinPath({"a"}), "/a");
  EXPECT_EQ(JoinPath({"a", "b"}), "/a/b");
}

TEST(PathTest, PrefixOnComponentBoundaries) {
  EXPECT_TRUE(IsPrefixPath("/a/b", "/a/b/c"));
  EXPECT_TRUE(IsPrefixPath("/a/b", "/a/b"));
  EXPECT_FALSE(IsPrefixPath("/a/b", "/a/bc"));
  EXPECT_TRUE(IsPrefixPath("/", "/anything"));
  EXPECT_FALSE(IsPrefixPath("/a/b/c", "/a/b"));
}

TEST(PathTest, LockOrderIsLeftOrderedDfs) {
  std::vector<std::string> a{"a"};
  std::vector<std::string> ab{"a", "b"};
  std::vector<std::string> ac{"a", "c"};
  std::vector<std::string> b{"b"};
  EXPECT_TRUE(LockOrderLess(a, ab)) << "ancestor before descendant";
  EXPECT_TRUE(LockOrderLess(ab, ac)) << "left sibling first";
  EXPECT_TRUE(LockOrderLess(ac, b)) << "whole left subtree before right sibling";
  EXPECT_FALSE(LockOrderLess(ab, a));
  EXPECT_FALSE(LockOrderLess(a, a));
}

TEST(PartitionTest, DeepInodesPartitionByParent) {
  // depth > random_partition_depth: pv = parent id (co-locates siblings).
  uint64_t pv1 = InodePartitionValue(3, 42, "x", 1);
  uint64_t pv2 = InodePartitionValue(3, 42, "y", 1);
  EXPECT_EQ(pv1, pv2);
  EXPECT_EQ(pv1, 42u);
}

TEST(PartitionTest, TopLevelsPartitionByName) {
  // depth <= random_partition_depth: pv = hash(name) (spreads the hotspot).
  uint64_t pv1 = InodePartitionValue(1, kRootInode, "home", 1);
  uint64_t pv2 = InodePartitionValue(1, kRootInode, "tmp", 1);
  EXPECT_NE(pv1, pv2) << "siblings of the root must scatter";
  EXPECT_EQ(pv1, HashBytes("home"));
}

TEST(PartitionTest, DepthKnobExtendsHashing) {
  EXPECT_EQ(InodePartitionValue(2, 9, "x", 1), 9u);
  EXPECT_EQ(InodePartitionValue(2, 9, "x", 2), HashBytes("x"));
}

TEST(PartitionTest, ChildrenPruning) {
  // random depth 1: children of depth>=1 dirs are pruned, root's are not.
  EXPECT_FALSE(ChildrenArePruned(0, 1));
  EXPECT_TRUE(ChildrenArePruned(1, 1));
  EXPECT_TRUE(ChildrenArePruned(5, 1));
  // random depth 0 disables scattering entirely (ablation).
  EXPECT_TRUE(ChildrenArePruned(0, 0));
}

// The inode hint cache's own suite (trie layout, LRU, epochs, invalidation)
// lives in hopsfs_cache_test.cc.

}  // namespace
}  // namespace hops::fs
