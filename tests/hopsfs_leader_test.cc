// Leader election & membership via the database as shared memory (§3).
#include <gtest/gtest.h>

#include "hopsfs/mini_cluster.h"

namespace hops::fs {
namespace {

class LeaderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MiniClusterOptions options;
    options.db.num_datanodes = 2;
    options.db.replication = 2;
    options.num_namenodes = 3;
    options.num_datanodes = 1;
    auto cluster = MiniCluster::Start(options);
    ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
    cluster_ = *std::move(cluster);
  }

  std::unique_ptr<MiniCluster> cluster_;
};

TEST_F(LeaderTest, UniqueMonotonicIds) {
  std::set<NamenodeId> ids;
  for (int i = 0; i < cluster_->num_namenodes(); ++i) {
    ids.insert(cluster_->namenode(i).id());
  }
  EXPECT_EQ(ids.size(), 3u);
  EXPECT_GT(*ids.begin(), 0);
}

TEST_F(LeaderTest, SmallestAliveIdIsLeader) {
  cluster_->TickHeartbeats(2);
  int leaders = 0;
  NamenodeId smallest = INT64_MAX;
  for (int i = 0; i < cluster_->num_namenodes(); ++i) {
    smallest = std::min(smallest, cluster_->namenode(i).id());
  }
  for (int i = 0; i < cluster_->num_namenodes(); ++i) {
    if (cluster_->namenode(i).IsLeader()) {
      leaders++;
      EXPECT_EQ(cluster_->namenode(i).id(), smallest);
    }
  }
  EXPECT_EQ(leaders, 1);
}

TEST_F(LeaderTest, FailoverToNextId) {
  cluster_->TickHeartbeats(2);
  Namenode* old_leader = cluster_->leader();
  ASSERT_NE(old_leader, nullptr);
  int old_slot = -1;
  for (int i = 0; i < cluster_->num_namenodes(); ++i) {
    if (&cluster_->namenode(i) == old_leader) old_slot = i;
  }
  cluster_->KillNamenode(old_slot);
  cluster_->TickHeartbeats(4);  // survivors notice the missed heartbeats
  Namenode* new_leader = cluster_->leader();
  ASSERT_NE(new_leader, nullptr);
  EXPECT_NE(new_leader, old_leader);
  EXPECT_GT(new_leader->id(), old_leader->id());
}

TEST_F(LeaderTest, RestartedNamenodeGetsNewId) {
  NamenodeId before = cluster_->namenode(1).id();
  cluster_->KillNamenode(1);
  ASSERT_TRUE(cluster_->RestartNamenode(1).ok());
  EXPECT_GT(cluster_->namenode(1).id(), before) << "ids change on restart (§3)";
}

TEST_F(LeaderTest, MembershipViewTracksDeath) {
  cluster_->TickHeartbeats(2);
  NamenodeId dead_id = cluster_->namenode(2).id();
  EXPECT_TRUE(cluster_->namenode(0).election().IsNamenodeAlive(dead_id));
  cluster_->KillNamenode(2);
  cluster_->TickHeartbeats(4);
  EXPECT_FALSE(cluster_->namenode(0).election().IsNamenodeAlive(dead_id));
  EXPECT_FALSE(cluster_->namenode(1).election().IsNamenodeAlive(dead_id));
}

TEST_F(LeaderTest, AliveListShrinksAndGrows) {
  cluster_->TickHeartbeats(2);
  EXPECT_EQ(cluster_->namenode(0).election().AliveNamenodes().size(), 3u);
  cluster_->KillNamenode(2);
  cluster_->TickHeartbeats(4);
  EXPECT_EQ(cluster_->namenode(0).election().AliveNamenodes().size(), 2u);
  ASSERT_TRUE(cluster_->RestartNamenode(2).ok());
  cluster_->TickHeartbeats(2);
  EXPECT_EQ(cluster_->namenode(0).election().AliveNamenodes().size(), 3u);
}

TEST_F(LeaderTest, LeaderEvictsLongDeadRows) {
  cluster_->TickHeartbeats(2);
  cluster_->KillNamenode(2);
  // Many rounds: the leader garbage-collects the dead row from the table.
  cluster_->TickHeartbeats(16);
  auto tx = cluster_->db().Begin();
  auto rows = tx->FullTableScan(cluster_->schema().leader);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 2u);
}

TEST_F(LeaderTest, DeregisterLeavesGroup) {
  cluster_->TickHeartbeats(2);
  cluster_->namenode(2).election().Deregister();
  auto tx = cluster_->db().Begin();
  auto rows = tx->FullTableScan(cluster_->schema().leader);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 2u);
}

}  // namespace
}  // namespace hops::fs
