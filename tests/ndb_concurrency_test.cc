// Concurrent locking semantics: shared/exclusive compatibility, blocking,
// lock-wait timeout as deadlock resolution, take-and-release quiesce scans,
// and a multi-threaded increment race that only row locks can make correct.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "ndb/cluster.h"
#include "util/thread_pool.h"

namespace hops::ndb {
namespace {

class NdbConcurrencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cluster_ = std::make_unique<Cluster>(ClusterConfig{
        .num_datanodes = 4,
        .replication = 2,
        .lock_wait_timeout = std::chrono::milliseconds(150),
    });
    Schema s;
    s.table_name = "t";
    s.columns = {{"k", ColumnType::kInt64}, {"v", ColumnType::kInt64}};
    s.primary_key = {0};
    s.partition_key = {0};
    table_ = *cluster_->CreateTable(s);
    auto tx = cluster_->Begin();
    for (int64_t k = 0; k < 8; ++k) ASSERT_TRUE(tx->Insert(table_, Row{k, int64_t{0}}).ok());
    ASSERT_TRUE(tx->Commit().ok());
  }

  std::unique_ptr<Cluster> cluster_;
  TableId table_ = 0;
};

TEST_F(NdbConcurrencyTest, SharedLocksAreCompatible) {
  auto tx1 = cluster_->Begin();
  auto tx2 = cluster_->Begin();
  EXPECT_TRUE(tx1->Read(table_, {int64_t{0}}, LockMode::kShared).ok());
  EXPECT_TRUE(tx2->Read(table_, {int64_t{0}}, LockMode::kShared).ok());
}

TEST_F(NdbConcurrencyTest, ExclusiveBlocksShared) {
  auto tx1 = cluster_->Begin();
  ASSERT_TRUE(tx1->Read(table_, {int64_t{0}}, LockMode::kExclusive).ok());
  auto tx2 = cluster_->Begin();
  auto st = tx2->Read(table_, {int64_t{0}}, LockMode::kShared);
  EXPECT_EQ(st.status().code(), hops::StatusCode::kLockTimeout);
}

TEST_F(NdbConcurrencyTest, SharedBlocksExclusive) {
  auto tx1 = cluster_->Begin();
  ASSERT_TRUE(tx1->Read(table_, {int64_t{0}}, LockMode::kShared).ok());
  auto tx2 = cluster_->Begin();
  auto st = tx2->Read(table_, {int64_t{0}}, LockMode::kExclusive);
  EXPECT_EQ(st.status().code(), hops::StatusCode::kLockTimeout);
}

TEST_F(NdbConcurrencyTest, ExclusiveReleasedOnCommitUnblocksWaiter) {
  auto tx1 = cluster_->Begin();
  ASSERT_TRUE(tx1->Read(table_, {int64_t{0}}, LockMode::kExclusive).ok());
  ASSERT_TRUE(tx1->Update(table_, Row{int64_t{0}, int64_t{42}}).ok());

  std::atomic<bool> got_lock{false};
  std::thread waiter([&] {
    auto tx2 = cluster_->Begin();
    auto row = tx2->Read(table_, {int64_t{0}}, LockMode::kShared);
    if (row.ok() && (*row)[1].i64() == 42) got_lock.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  ASSERT_TRUE(tx1->Commit().ok());
  waiter.join();
  EXPECT_TRUE(got_lock.load()) << "waiter must proceed after commit and see the new value";
}

TEST_F(NdbConcurrencyTest, SoleHolderCanUpgrade) {
  auto tx = cluster_->Begin();
  ASSERT_TRUE(tx->Read(table_, {int64_t{0}}, LockMode::kShared).ok());
  EXPECT_TRUE(tx->Read(table_, {int64_t{0}}, LockMode::kExclusive).ok());
  EXPECT_TRUE(tx->Update(table_, Row{int64_t{0}, int64_t{1}}).ok());
}

TEST_F(NdbConcurrencyTest, ContendedUpgradeTimesOut) {
  // Two shared holders both trying to upgrade is the classic lock-upgrade
  // deadlock the paper re-engineered HDFS operations to avoid (§5); the
  // engine resolves it by timeout.
  auto tx1 = cluster_->Begin();
  auto tx2 = cluster_->Begin();
  ASSERT_TRUE(tx1->Read(table_, {int64_t{0}}, LockMode::kShared).ok());
  ASSERT_TRUE(tx2->Read(table_, {int64_t{0}}, LockMode::kShared).ok());
  auto st = tx1->Read(table_, {int64_t{0}}, LockMode::kExclusive);
  EXPECT_EQ(st.status().code(), hops::StatusCode::kLockTimeout);
  EXPECT_FALSE(tx1->active());
}

TEST_F(NdbConcurrencyTest, CyclicDeadlockResolvedByTimeout) {
  auto tx1 = cluster_->Begin();
  auto tx2 = cluster_->Begin();
  ASSERT_TRUE(tx1->Read(table_, {int64_t{0}}, LockMode::kExclusive).ok());
  ASSERT_TRUE(tx2->Read(table_, {int64_t{1}}, LockMode::kExclusive).ok());

  std::atomic<int> timeouts{0};
  std::thread t1([&] {
    auto st = tx1->Read(table_, {int64_t{1}}, LockMode::kExclusive);
    if (st.status().code() == hops::StatusCode::kLockTimeout) timeouts.fetch_add(1);
  });
  std::thread t2([&] {
    auto st = tx2->Read(table_, {int64_t{0}}, LockMode::kExclusive);
    if (st.status().code() == hops::StatusCode::kLockTimeout) timeouts.fetch_add(1);
  });
  t1.join();
  t2.join();
  EXPECT_GE(timeouts.load(), 1) << "at least one side of the cycle must time out";
  auto stats = cluster_->StatsSnapshot();
  EXPECT_GE(stats.lock_timeouts, 1u);
}

TEST_F(NdbConcurrencyTest, LostUpdatePreventedByExclusiveLocks) {
  // 4 threads x 50 read-modify-write increments on one row. With X locks and
  // retry-on-timeout, all 200 increments must survive.
  constexpr int kThreads = 4;
  constexpr int kIncrements = 50;
  hops::ThreadPool pool(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.Submit([&] {
      for (int i = 0; i < kIncrements; ++i) {
        for (;;) {
          auto tx = cluster_->Begin();
          auto row = tx->Read(table_, {int64_t{5}}, LockMode::kExclusive);
          if (!row.ok()) continue;  // timed out: retry
          Row updated = *row;
          updated[1] = updated[1].i64() + 1;
          if (!tx->Update(table_, std::move(updated)).ok()) continue;
          if (tx->Commit().ok()) break;
        }
      }
    });
  }
  pool.Wait();
  auto tx = cluster_->Begin();
  auto row = tx->Read(table_, {int64_t{5}}, LockMode::kReadCommitted);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ((*row)[1].i64(), kThreads * kIncrements);
}

TEST_F(NdbConcurrencyTest, TakeAndReleaseWaitsOutWriters) {
  // The subtree-quiesce primitive: a take-and-release X scan must block until
  // the in-flight writer commits, and must leave no locks behind.
  auto writer = cluster_->Begin();
  ASSERT_TRUE(writer->Read(table_, {int64_t{2}}, LockMode::kExclusive).ok());
  ASSERT_TRUE(writer->Update(table_, Row{int64_t{2}, int64_t{7}}).ok());

  std::atomic<bool> scan_done{false};
  std::thread scanner([&] {
    auto tx = cluster_->Begin();
    Transaction::ScanOptions opts;
    opts.lock = LockMode::kExclusive;
    opts.take_and_release = true;
    auto rows = tx->FullTableScan(table_, opts);
    if (rows.ok()) scan_done.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(scan_done.load()) << "scan must wait for the writer's X lock";
  ASSERT_TRUE(writer->Commit().ok());
  scanner.join();
  EXPECT_TRUE(scan_done.load());

  // No lock residue: another transaction can take X on everything at once.
  auto tx = cluster_->Begin();
  for (int64_t k = 0; k < 8; ++k) {
    EXPECT_TRUE(tx->Read(table_, {k}, LockMode::kExclusive).ok());
  }
}

TEST_F(NdbConcurrencyTest, LockedScanRereadsRowsChangedWhileWaiting) {
  auto writer = cluster_->Begin();
  ASSERT_TRUE(writer->Read(table_, {int64_t{3}}, LockMode::kExclusive).ok());
  ASSERT_TRUE(writer->Update(table_, Row{int64_t{3}, int64_t{77}}).ok());

  std::atomic<int64_t> seen{-1};
  std::thread scanner([&] {
    auto tx = cluster_->Begin();
    Transaction::ScanOptions opts;
    opts.lock = LockMode::kShared;
    opts.predicate = [](const Row& r) { return r[0].i64() == 3; };
    auto rows = tx->FullTableScan(table_, opts);
    if (rows.ok() && rows->size() == 1) seen.store((*rows)[0][1].i64());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  ASSERT_TRUE(writer->Commit().ok());
  scanner.join();
  EXPECT_EQ(seen.load(), 77) << "locked scan must observe the committed update";
}

TEST_F(NdbConcurrencyTest, ParallelDisjointWritersDontConflict) {
  constexpr int kThreads = 4;
  hops::ThreadPool pool(kThreads);
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    pool.Submit([&, t] {
      for (int i = 0; i < 100; ++i) {
        auto tx = cluster_->Begin();
        int64_t key = 1000 + t * 1000 + i;
        if (!tx->Insert(table_, Row{key, int64_t{t}}).ok() || !tx->Commit().ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  pool.Wait();
  EXPECT_EQ(failures.load(), 0);
  auto tx = cluster_->Begin();
  auto rows = tx->FullTableScan(table_);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 8u + 400u);
}

}  // namespace
}  // namespace hops::ndb
