#include <gtest/gtest.h>

#include <atomic>
#include <cmath>

#include "util/hash.h"
#include "util/histogram.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace hops {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
}

TEST(StatusTest, CarriesCodeAndMessage) {
  Status s = Status::NotFound("no such row");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "no such row");
  EXPECT_EQ(s.ToString(), "NOT_FOUND: no such row");
}

TEST(StatusTest, RetryableClassification) {
  EXPECT_TRUE(Status::LockTimeout().IsRetryableTx());
  EXPECT_TRUE(Status::TxAborted().IsRetryableTx());
  EXPECT_FALSE(Status::NotFound().IsRetryableTx());
  EXPECT_FALSE(Status::Unavailable().IsRetryableTx());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("x"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(HashTest, StableAcrossCalls) {
  EXPECT_EQ(HashU64(12345), HashU64(12345));
  EXPECT_EQ(HashBytes("abc"), HashBytes("abc"));
  EXPECT_NE(HashBytes("abc"), HashBytes("abd"));
}

TEST(HashTest, SpreadsSequentialKeys) {
  // Sequential inode ids must not land in the same bucket mod small P.
  int buckets[8] = {0};
  for (uint64_t i = 0; i < 8000; ++i) buckets[HashU64(i) % 8]++;
  for (int b : buckets) {
    EXPECT_GT(b, 700);
    EXPECT_LT(b, 1300);
  }
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, RangeInclusive) {
  Rng rng(1);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.Range(3, 5);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 5);
    saw_lo |= v == 3;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, RandomNameLengthAndAlphabet) {
  Rng rng(2);
  std::string s = rng.RandomName(34);
  EXPECT_EQ(s.size(), 34u);
  for (char c : s) EXPECT_TRUE(std::isalnum(static_cast<unsigned char>(c)));
}

TEST(ZipfTest, HeadIsHeavy) {
  Rng rng(3);
  ZipfSampler zipf(1000, 1.1);
  int head = 0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    if (zipf.Sample(rng) < 30) head++;  // top 3% of ranks
  }
  // Heavy-tailed: top 3% of files should draw well over a third of accesses.
  EXPECT_GT(head, kSamples / 3);
}

TEST(DiscreteSamplerTest, MatchesWeights) {
  Rng rng(4);
  DiscreteSampler sampler({0.7, 0.2, 0.1});
  int counts[3] = {0};
  constexpr int kSamples = 30000;
  for (int i = 0; i < kSamples; ++i) counts[sampler.Sample(rng)]++;
  EXPECT_NEAR(counts[0] / double(kSamples), 0.7, 0.02);
  EXPECT_NEAR(counts[1] / double(kSamples), 0.2, 0.02);
  EXPECT_NEAR(counts[2] / double(kSamples), 0.1, 0.02);
}

TEST(HistogramTest, BasicStats) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.Record(i);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.Mean(), 50.5);
  EXPECT_EQ(h.min(), 1);
  EXPECT_EQ(h.max(), 100);
  // Log-bucketed: percentiles are approximate, allow bucket-width error.
  EXPECT_NEAR(h.Percentile(0.5), 50, 10);
  EXPECT_NEAR(h.Percentile(0.99), 99, 12);
}

TEST(HistogramTest, MergeAddsCounts) {
  Histogram a, b;
  a.Record(10);
  b.Record(1000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.max(), 1000);
  EXPECT_EQ(a.min(), 10);
}

TEST(HistogramTest, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Percentile(0.99), 0);
  EXPECT_EQ(h.Mean(), 0);
}

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 1000; ++i) {
    pool.Submit([&] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 1000);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  pool.Submit([&] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

}  // namespace
}  // namespace hops
