// The pluggable-KV boundary: backend selection (parsing, factory,
// MiniCluster option validation) and the OCC engine's conflict paths, at two
// levels. Engine-level tests drive kv::Txn directly and pin down exactly
// which interleavings must surface kConflict (validated point reads,
// insert guards, locking-scan phantoms) and which must not (read-committed,
// read-only, blind writes). Namenode-level tests race real metadata
// operations -- create-same-name, rename-vs-create on one parent, intent-log
// append storms -- and check the OCC retry loop absorbs every conflict:
// bounded retries, no kConflict escaping to clients, no lost acks, and a
// namespace fingerprint identical to the 2PL engine's for the same script.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "hopsfs/mini_cluster.h"
#include "kv/kv.h"

namespace hops {
namespace {

using fs::MiniCluster;
using fs::MiniClusterOptions;

// --- Backend selection -------------------------------------------------------

TEST(EngineKindTest, ParseAcceptsAliasesCaseInsensitively) {
  EXPECT_EQ(kv::ParseEngineKind("ndb"), kv::EngineKind::kNdb);
  EXPECT_EQ(kv::ParseEngineKind("NDB"), kv::EngineKind::kNdb);
  EXPECT_EQ(kv::ParseEngineKind("2pl"), kv::EngineKind::kNdb);
  EXPECT_EQ(kv::ParseEngineKind("occ"), kv::EngineKind::kOcc);
  EXPECT_EQ(kv::ParseEngineKind("OCC"), kv::EngineKind::kOcc);
  EXPECT_EQ(kv::ParseEngineKind("mvcc"), kv::EngineKind::kOcc);
  EXPECT_FALSE(kv::ParseEngineKind("").has_value());
  EXPECT_FALSE(kv::ParseEngineKind("innodb").has_value());
}

TEST(EngineKindTest, NamesRoundTripThroughParse) {
  for (kv::EngineKind kind : {kv::EngineKind::kNdb, kv::EngineKind::kOcc}) {
    EXPECT_EQ(kv::ParseEngineKind(kv::EngineKindName(kind)), kind);
  }
}

TEST(EngineKindTest, FactoryBuildsTheRequestedBackend) {
  kv::EngineConfig config{.num_datanodes = 2, .replication = 2};
  auto ndb = kv::MakeEngine(kv::EngineKind::kNdb, config);
  auto occ = kv::MakeEngine(kv::EngineKind::kOcc, config);
  ASSERT_NE(ndb, nullptr);
  ASSERT_NE(occ, nullptr);
  EXPECT_EQ(ndb->kind(), kv::EngineKind::kNdb);
  EXPECT_EQ(occ->kind(), kv::EngineKind::kOcc);
  EXPECT_EQ(ndb->name(), "ndb");
  EXPECT_EQ(occ->name(), "occ");
  // Same knob set feeds both backends; topology derivations must agree.
  EXPECT_EQ(ndb->num_partitions(), occ->num_partitions());
  EXPECT_EQ(ndb->num_node_groups(), occ->num_node_groups());
}

// --- MiniCluster option validation (fail fast, clear message) ----------------

void ExpectStartRejects(MiniClusterOptions options, std::string_view fragment) {
  auto cluster = MiniCluster::Start(std::move(options));
  ASSERT_FALSE(cluster.ok()) << "expected rejection mentioning: " << fragment;
  EXPECT_EQ(cluster.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(cluster.status().message().find(fragment), std::string::npos)
      << "got: " << cluster.status().ToString();
}

TEST(MiniClusterValidationTest, RejectsImpossibleTopology) {
  MiniClusterOptions o;
  o.db.num_datanodes = 0;
  ExpectStartRejects(o, "db.num_datanodes");

  MiniClusterOptions o2;
  o2.db.num_datanodes = 3;
  o2.db.replication = 2;
  ExpectStartRejects(o2, "multiple of db.replication");

  MiniClusterOptions o3;
  o3.num_namenodes = 0;
  ExpectStartRejects(o3, "num_namenodes");
}

TEST(MiniClusterValidationTest, RejectsNonsenseFsKnobs) {
  MiniClusterOptions o;
  o.fs.max_tx_retries = 0;
  ExpectStartRejects(o, "fs.max_tx_retries");

  MiniClusterOptions o2;
  o2.fs.subtree_delete_batch = 0;
  ExpectStartRejects(o2, "fs.subtree_delete_batch");

  MiniClusterOptions o3;
  o3.db.max_in_flight_batches = 0;
  ExpectStartRejects(o3, "db.max_in_flight_batches");

  MiniClusterOptions o4;
  o4.db.use_completion_mux = false;
  o4.db.mux_adaptive_gather = true;
  o4.db.mux_adaptive_gather_auto = false;
  ExpectStartRejects(o4, "mux_adaptive_gather");
}

TEST(MiniClusterValidationTest, DefaultsStartAndRecordTheResolvedEngine) {
  MiniClusterOptions o;
  auto cluster = MiniCluster::Start(o);
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
  // Start writes the engine it actually built back into fs_config().
  EXPECT_EQ((*cluster)->fs_config().kv_engine, (*cluster)->db().kind());
}

// --- OCC conflict paths, engine level ----------------------------------------

class OccConflictTest : public ::testing::Test {
 protected:
  void SetUp() override {
    engine_ = kv::MakeEngine(kv::EngineKind::kOcc,
                             kv::EngineConfig{.num_datanodes = 2, .replication = 2});
    // Two-column PK (dir, name) partitioned by dir: point rows for the key
    // tests, a scannable prefix for the phantom tests.
    kv::Schema s;
    s.table_name = "entries";
    s.columns = {{"dir", kv::ColumnType::kInt64},
                 {"name", kv::ColumnType::kInt64},
                 {"val", kv::ColumnType::kInt64}};
    s.primary_key = {0, 1};
    s.partition_key = {0};
    table_ = *engine_->CreateTable(s);
    auto tx = engine_->Begin();
    ASSERT_TRUE(tx->Insert(table_, kv::Row{int64_t{1}, int64_t{1}, int64_t{10}}).ok());
    ASSERT_TRUE(tx->Insert(table_, kv::Row{int64_t{1}, int64_t{2}, int64_t{20}}).ok());
    ASSERT_TRUE(tx->Commit().ok());
    engine_->ResetStats();
  }

  std::unique_ptr<kv::Engine> engine_;
  kv::TableId table_ = 0;
};

TEST_F(OccConflictTest, ValidatedReadFailsWhenTheRowChangesBeforeCommit) {
  auto t1 = engine_->Begin();
  ASSERT_TRUE(t1->Read(table_, kv::Key{int64_t{1}, int64_t{1}}, kv::LockMode::kShared).ok());

  // A concurrent writer commits a newer version of the row t1 validated.
  auto t2 = engine_->Begin();
  ASSERT_TRUE(t2->Update(table_, kv::Row{int64_t{1}, int64_t{1}, int64_t{11}}).ok());
  ASSERT_TRUE(t2->Commit().ok());

  ASSERT_TRUE(t1->Update(table_, kv::Row{int64_t{1}, int64_t{1}, int64_t{12}}).ok());
  hops::Status st = t1->Commit();
  EXPECT_EQ(st.code(), StatusCode::kConflict) << st.ToString();
  EXPECT_TRUE(st.IsRetryableTx());

  auto stats = engine_->StatsSnapshot();
  EXPECT_EQ(stats.occ_conflicts, 1u);
  EXPECT_EQ(stats.occ_key_conflicts, 1u);
  EXPECT_EQ(stats.occ_range_conflicts, 0u);

  // The canonical OCC loop: a fresh attempt sees the new version and wins.
  auto t3 = engine_->Begin();
  ASSERT_TRUE(t3->Read(table_, kv::Key{int64_t{1}, int64_t{1}}, kv::LockMode::kShared).ok());
  ASSERT_TRUE(t3->Update(table_, kv::Row{int64_t{1}, int64_t{1}, int64_t{12}}).ok());
  EXPECT_TRUE(t3->Commit().ok());
}

TEST_F(OccConflictTest, InsertGuardMakesConcurrentCreateSameKeyLoseCleanly) {
  // Both transactions probe the same ABSENT key (a create's existence check)
  // and then insert it: the absence observation must guard the slot.
  auto t1 = engine_->Begin();
  auto t2 = engine_->Begin();
  EXPECT_FALSE(t1->Read(table_, kv::Key{int64_t{1}, int64_t{7}}, kv::LockMode::kExclusive).ok());
  EXPECT_FALSE(t2->Read(table_, kv::Key{int64_t{1}, int64_t{7}}, kv::LockMode::kExclusive).ok());
  ASSERT_TRUE(t1->Insert(table_, kv::Row{int64_t{1}, int64_t{7}, int64_t{70}}).ok());
  ASSERT_TRUE(t2->Insert(table_, kv::Row{int64_t{1}, int64_t{7}, int64_t{71}}).ok());

  EXPECT_TRUE(t1->Commit().ok());
  hops::Status st = t2->Commit();
  EXPECT_EQ(st.code(), StatusCode::kConflict) << st.ToString();
  EXPECT_GE(engine_->StatsSnapshot().occ_key_conflicts, 1u);

  // First committer's row survived.
  auto check = engine_->Begin();
  auto row = check->Read(table_, kv::Key{int64_t{1}, int64_t{7}}, kv::LockMode::kReadCommitted);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ((*row)[2].i64(), 70);
  check->Abort();
}

TEST_F(OccConflictTest, LockingScanFailsOnPhantomInsert) {
  auto t1 = engine_->Begin();
  kv::ScanOptions locked;
  locked.lock = kv::LockMode::kShared;
  auto rows = t1->Ppis(table_, kv::Key{int64_t{1}}, locked);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 2u);

  // A phantom lands inside the scanned prefix before t1 commits.
  auto t2 = engine_->Begin();
  ASSERT_TRUE(t2->Insert(table_, kv::Row{int64_t{1}, int64_t{3}, int64_t{30}}).ok());
  ASSERT_TRUE(t2->Commit().ok());

  ASSERT_TRUE(t1->Insert(table_, kv::Row{int64_t{2}, int64_t{1}, int64_t{99}}).ok());
  hops::Status st = t1->Commit();
  EXPECT_EQ(st.code(), StatusCode::kConflict) << st.ToString();
  auto stats = engine_->StatsSnapshot();
  EXPECT_EQ(stats.occ_range_conflicts, 1u);
  EXPECT_EQ(stats.occ_conflicts, 1u);
}

TEST_F(OccConflictTest, ReadCommittedScanToleratesConcurrentInsert) {
  auto t1 = engine_->Begin();
  auto rows = t1->Ppis(table_, kv::Key{int64_t{1}});  // default: read-committed
  ASSERT_TRUE(rows.ok());

  auto t2 = engine_->Begin();
  ASSERT_TRUE(t2->Insert(table_, kv::Row{int64_t{1}, int64_t{3}, int64_t{30}}).ok());
  ASSERT_TRUE(t2->Commit().ok());

  ASSERT_TRUE(t1->Insert(table_, kv::Row{int64_t{2}, int64_t{1}, int64_t{99}}).ok());
  EXPECT_TRUE(t1->Commit().ok());
  EXPECT_EQ(engine_->StatsSnapshot().occ_conflicts, 0u);
}

TEST_F(OccConflictTest, ReadOnlyTransactionsSkipValidation) {
  auto t1 = engine_->Begin();
  ASSERT_TRUE(t1->Read(table_, kv::Key{int64_t{1}, int64_t{1}}, kv::LockMode::kShared).ok());

  auto t2 = engine_->Begin();
  ASSERT_TRUE(t2->Update(table_, kv::Row{int64_t{1}, int64_t{1}, int64_t{11}}).ok());
  ASSERT_TRUE(t2->Commit().ok());

  // Stale validated read, but t1 writes nothing: commit is a no-op success.
  EXPECT_TRUE(t1->Commit().ok());
  EXPECT_EQ(engine_->StatsSnapshot().occ_conflicts, 0u);
}

TEST_F(OccConflictTest, BlindWritesAreLastWriterWins) {
  auto t1 = engine_->Begin();
  auto t2 = engine_->Begin();
  ASSERT_TRUE(t1->Write(table_, kv::Row{int64_t{1}, int64_t{1}, int64_t{100}}).ok());
  ASSERT_TRUE(t2->Write(table_, kv::Row{int64_t{1}, int64_t{1}, int64_t{200}}).ok());
  EXPECT_TRUE(t1->Commit().ok());
  EXPECT_TRUE(t2->Commit().ok());  // no read set, nothing to validate
  EXPECT_EQ(engine_->StatsSnapshot().occ_conflicts, 0u);

  auto check = engine_->Begin();
  auto row = check->Read(table_, kv::Key{int64_t{1}, int64_t{1}}, kv::LockMode::kReadCommitted);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ((*row)[2].i64(), 200);
  check->Abort();
}

// --- OCC conflict paths, namenode level --------------------------------------

std::unique_ptr<MiniCluster> StartOccCluster(int num_handlers, bool async_commit) {
  MiniClusterOptions o;
  o.fs.kv_engine = kv::EngineKind::kOcc;
  o.fs.num_handlers = num_handlers;
  o.fs.async_metadata_commit = async_commit;
  auto cluster = MiniCluster::Start(std::move(o));
  EXPECT_TRUE(cluster.ok()) << cluster.status().ToString();
  return cluster.ok() ? std::move(*cluster) : nullptr;
}

TEST(OccNamenodeTest, ConcurrentCreateSameNameHasExactlyOneWinner) {
  auto cluster = StartOccCluster(/*num_handlers=*/4, /*async_commit=*/false);
  ASSERT_NE(cluster, nullptr);
  auto setup = cluster->NewClient(fs::NamenodePolicy::kRoundRobin, "setup");
  ASSERT_TRUE(setup.Mkdirs("/race").ok());

  constexpr int kRounds = 16;
  constexpr int kThreads = 4;
  for (int round = 0; round < kRounds; ++round) {
    const std::string path = "/race/f" + std::to_string(round);
    std::atomic<int> winners{0};
    std::atomic<int> bad{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        auto client = cluster->NewClient(fs::NamenodePolicy::kRoundRobin,
                                         "c" + std::to_string(t), uint64_t(round * 31 + t));
        hops::Status st = client.CreateFile(path);
        if (st.ok()) {
          ++winners;
        } else if (st.code() != StatusCode::kAlreadyExists &&
                   st.code() != StatusCode::kLeaseConflict) {
          // In particular kConflict must NEVER escape RunTx's retry loop.
          ++bad;
          ADD_FAILURE() << path << ": " << st.ToString();
        }
      });
    }
    for (auto& th : threads) th.join();
    EXPECT_EQ(winners.load(), 1) << path;
    EXPECT_EQ(bad.load(), 0);
    EXPECT_TRUE(setup.Stat(path).ok());
  }
}

TEST(OccNamenodeTest, RenameRacingCreateOnOneParentStaysConsistent) {
  auto cluster = StartOccCluster(/*num_handlers=*/4, /*async_commit=*/false);
  ASSERT_NE(cluster, nullptr);
  auto setup = cluster->NewClient(fs::NamenodePolicy::kRoundRobin, "setup");
  ASSERT_TRUE(setup.Mkdirs("/p").ok());
  constexpr int kOps = 24;
  for (int i = 0; i < kOps; ++i) {
    ASSERT_TRUE(setup.CreateFile("/p/src" + std::to_string(i)).ok());
  }

  // Both threads mutate the SAME parent directory row (mtime/children), so
  // under OCC every pair of overlapping transactions is a conflict candidate.
  std::atomic<int> bad{0};
  std::thread renamer([&] {
    auto client = cluster->NewClient(fs::NamenodePolicy::kRoundRobin, "renamer", 7);
    for (int i = 0; i < kOps; ++i) {
      hops::Status st =
          client.Rename("/p/src" + std::to_string(i), "/p/dst" + std::to_string(i));
      if (!st.ok()) {
        ++bad;
        ADD_FAILURE() << "rename " << i << ": " << st.ToString();
      }
    }
  });
  std::thread creator([&] {
    auto client = cluster->NewClient(fs::NamenodePolicy::kRoundRobin, "creator", 8);
    for (int i = 0; i < kOps; ++i) {
      hops::Status st = client.CreateFile("/p/new" + std::to_string(i));
      if (!st.ok()) {
        ++bad;
        ADD_FAILURE() << "create " << i << ": " << st.ToString();
      }
    }
  });
  renamer.join();
  creator.join();
  ASSERT_EQ(bad.load(), 0);

  // Every acked mutation is visible: renames moved, creates landed.
  for (int i = 0; i < kOps; ++i) {
    EXPECT_FALSE(setup.Stat("/p/src" + std::to_string(i)).ok());
    EXPECT_TRUE(setup.Stat("/p/dst" + std::to_string(i)).ok());
    EXPECT_TRUE(setup.Stat("/p/new" + std::to_string(i)).ok());
  }
  auto listing = setup.List("/p");
  ASSERT_TRUE(listing.ok());
  EXPECT_EQ(listing->size(), size_t(2 * kOps));
}

TEST(OccNamenodeTest, IntentLogAppendRacesLoseNoAcks) {
  // Async metadata commits: every ack is an intent-log append racing the
  // applier's reads and the cleaner's deletes on the same partition.
  auto cluster = StartOccCluster(/*num_handlers=*/4, /*async_commit=*/true);
  ASSERT_NE(cluster, nullptr);
  auto setup = cluster->NewClient(fs::NamenodePolicy::kRoundRobin, "setup");
  ASSERT_TRUE(setup.Mkdirs("/async").ok());

  constexpr int kThreads = 4;
  constexpr int kPerThread = 20;
  std::vector<std::thread> threads;
  std::atomic<int> bad{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Sticky clients: read-your-writes holds per namenode.
      auto client = cluster->NewClient(fs::NamenodePolicy::kSticky,
                                       "w" + std::to_string(t), uint64_t(t + 1));
      for (int i = 0; i < kPerThread; ++i) {
        const std::string path =
            "/async/t" + std::to_string(t) + "_f" + std::to_string(i);
        hops::Status st = client.CreateFile(path);
        if (!st.ok()) {
          ++bad;
          ADD_FAILURE() << path << ": " << st.ToString();
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  ASSERT_EQ(bad.load(), 0);

  cluster->DrainIntents();
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) {
      const std::string path = "/async/t" + std::to_string(t) + "_f" + std::to_string(i);
      EXPECT_TRUE(setup.Stat(path).ok()) << path;
    }
  }
  fs::ClusterIntentStats intents = cluster->AggregateIntentStats();
  EXPECT_GE(intents.log.acked_ops, uint64_t(kThreads * kPerThread));
}

// --- Cross-engine equivalence ------------------------------------------------

// Sorted one-line-per-inode dump of the namespace under `root` (the chaos
// harness's convergence preimage, rebuilt here for a two-cluster diff).
std::vector<std::string> NamespaceLines(MiniCluster& cluster, const std::string& root) {
  auto client = cluster.NewClient(fs::NamenodePolicy::kRoundRobin, "walker");
  std::vector<std::string> out;
  std::vector<std::string> stack{root};
  while (!stack.empty()) {
    std::string dir = stack.back();
    stack.pop_back();
    auto children = client.List(dir);
    if (!children.ok()) continue;
    for (const fs::FileStatus& c : *children) {
      std::string path = dir + "/" + c.name;
      out.push_back(path + "|" + (c.is_dir ? "d" : "f") + "|" + std::to_string(c.perm) +
                    "|" + c.owner + "|" + c.group);
      if (c.is_dir) stack.push_back(path);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

// One deterministic metadata script, both backends, identical namespaces.
// (When HOPS_KV_ENGINE is set both clusters resolve to the pinned engine and
// the comparison degenerates to a self-check; the unpinned tier-1 run is the
// leg that actually crosses engines.)
TEST(EngineEquivalenceTest, ScriptedNamespaceFingerprintsMatchAcrossEngines) {
  auto run = [](kv::EngineKind engine) {
    MiniClusterOptions o;
    o.fs.kv_engine = engine;
    auto cluster = MiniCluster::Start(std::move(o));
    EXPECT_TRUE(cluster.ok()) << cluster.status().ToString();
    auto client = (*cluster)->NewClient(fs::NamenodePolicy::kRoundRobin, "script");
    EXPECT_TRUE(client.Mkdirs("/eq/a/b").ok());
    EXPECT_TRUE(client.Mkdirs("/eq/c").ok());
    for (int i = 0; i < 8; ++i) {
      EXPECT_TRUE(client.CreateFile("/eq/a/b/f" + std::to_string(i)).ok());
    }
    EXPECT_TRUE(client.SetPermission("/eq/a/b/f0", 0600).ok());
    EXPECT_TRUE(client.SetOwner("/eq/a/b/f1", "alice", "eng").ok());
    EXPECT_TRUE(client.Rename("/eq/a/b/f2", "/eq/c/moved").ok());
    EXPECT_TRUE(client.Delete("/eq/a/b/f3").ok());
    EXPECT_TRUE(client.Rename("/eq/a", "/eq/a2").ok());
    return NamespaceLines(**cluster, "/eq");
  };
  std::vector<std::string> pessimistic = run(kv::EngineKind::kNdb);
  std::vector<std::string> optimistic = run(kv::EngineKind::kOcc);
  ASSERT_FALSE(pessimistic.empty());
  EXPECT_EQ(pessimistic, optimistic);
}

}  // namespace
}  // namespace hops
