// Multi-threaded, multi-namenode behaviour: parallel non-conflicting ops,
// serialization of conflicting ops, client failover with zero downtime, and
// database-node failure handling (§7.6).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "hopsfs/mini_cluster.h"
#include "util/thread_pool.h"

namespace hops::fs {
namespace {

class ConcurrencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MiniClusterOptions options;
    options.db.num_datanodes = 4;
    options.db.replication = 2;
    options.db.lock_wait_timeout = std::chrono::milliseconds(250);
    options.num_namenodes = 3;
    options.num_datanodes = 3;
    auto cluster = MiniCluster::Start(options);
    ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
    cluster_ = *std::move(cluster);
  }

  std::unique_ptr<MiniCluster> cluster_;
};

TEST_F(ConcurrencyTest, ParallelCreatesInDistinctDirs) {
  constexpr int kThreads = 4;
  constexpr int kFilesEach = 25;
  {
    Client setup = cluster_->NewClient(NamenodePolicy::kRoundRobin, "setup");
    for (int t = 0; t < kThreads; ++t) {
      ASSERT_TRUE(setup.Mkdirs("/w" + std::to_string(t)).ok());
    }
  }
  hops::ThreadPool pool(kThreads);
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    pool.Submit([&, t] {
      Client c = cluster_->NewClient(NamenodePolicy::kRoundRobin,
                                     "c" + std::to_string(t), 100 + t);
      for (int i = 0; i < kFilesEach; ++i) {
        std::string path = "/w" + std::to_string(t) + "/f" + std::to_string(i);
        if (!c.WriteFile(path, 1, 10).ok()) failures.fetch_add(1);
      }
    });
  }
  pool.Wait();
  EXPECT_EQ(failures.load(), 0);
  Client check = cluster_->NewClient(NamenodePolicy::kRandom, "check");
  for (int t = 0; t < kThreads; ++t) {
    auto listing = check.List("/w" + std::to_string(t));
    ASSERT_TRUE(listing.ok());
    EXPECT_EQ(listing->size(), static_cast<size_t>(kFilesEach));
  }
}

TEST_F(ConcurrencyTest, ConflictingCreatesExactlyOneWins) {
  Client setup = cluster_->NewClient(NamenodePolicy::kRoundRobin, "setup");
  ASSERT_TRUE(setup.Mkdirs("/race").ok());
  constexpr int kThreads = 4;
  hops::ThreadPool pool(kThreads);
  std::atomic<int> wins{0};
  std::atomic<int> already{0};
  for (int t = 0; t < kThreads; ++t) {
    pool.Submit([&, t] {
      // Each contender uses a different namenode when possible.
      Namenode& nn = cluster_->namenode(t % cluster_->num_namenodes());
      auto st = nn.Create("/race/same", "client" + std::to_string(t));
      if (st.ok()) {
        wins.fetch_add(1);
      } else if (st.code() == hops::StatusCode::kAlreadyExists ||
                 st.code() == hops::StatusCode::kLeaseConflict) {
        already.fetch_add(1);
      }
    });
  }
  pool.Wait();
  EXPECT_EQ(wins.load(), 1);
  EXPECT_EQ(already.load(), kThreads - 1);
}

TEST_F(ConcurrencyTest, ConcurrentRenamesOfSameSourceOneWins) {
  Client setup = cluster_->NewClient(NamenodePolicy::kRoundRobin, "setup");
  ASSERT_TRUE(setup.Mkdirs("/mv").ok());
  ASSERT_TRUE(setup.WriteFile("/mv/f", 1, 1).ok());
  std::atomic<int> wins{0};
  std::thread t1([&] {
    if (cluster_->namenode(0).Rename("/mv/f", "/mv/a").ok()) wins.fetch_add(1);
  });
  std::thread t2([&] {
    if (cluster_->namenode(1).Rename("/mv/f", "/mv/b").ok()) wins.fetch_add(1);
  });
  t1.join();
  t2.join();
  EXPECT_EQ(wins.load(), 1);
  int present = 0;
  present += setup.Stat("/mv/a").ok() ? 1 : 0;
  present += setup.Stat("/mv/b").ok() ? 1 : 0;
  EXPECT_EQ(present, 1);
  EXPECT_FALSE(setup.Stat("/mv/f").ok());
}

TEST_F(ConcurrencyTest, CrossingRenamesSerializeWithoutDeadlock) {
  // Two renames whose lock sets cross: /x/a -> /y/pa while /y/b -> /x/pb.
  // Each transaction's batched lock phase must wait in the left-ordered
  // path total order (kStagedOrder), so the two lock sets conflict in the
  // same sequence and queue instead of deadlocking into lock timeouts.
  Client setup = cluster_->NewClient(NamenodePolicy::kRoundRobin, "setup");
  ASSERT_TRUE(setup.Mkdirs("/x").ok());
  ASSERT_TRUE(setup.Mkdirs("/y").ok());
  constexpr int kIters = 20;
  std::atomic<int> failures{0};
  auto flip = [&](Namenode& nn, const std::string& from_dir, const std::string& to_dir,
                  const std::string& name) {
    for (int i = 0; i < kIters; ++i) {
      std::string src = from_dir + "/" + name + std::to_string(i);
      std::string dst = to_dir + "/" + name + std::to_string(i);
      if (!nn.Create(src, "c").ok() || !nn.CompleteFile(src, "c").ok() ||
          !nn.Rename(src, dst).ok()) {
        failures.fetch_add(1);
        return;
      }
    }
  };
  std::thread t1([&] { flip(cluster_->namenode(0), "/x", "/y", "pa"); });
  std::thread t2([&] { flip(cluster_->namenode(1), "/y", "/x", "pb"); });
  t1.join();
  t2.join();
  EXPECT_EQ(failures.load(), 0);
  // The renames retried past any transient conflict without a single lock
  // timeout: the crossing lock phases queued, they never cycled.
  EXPECT_EQ(cluster_->db().StatsSnapshot().lock_timeouts, 0u);
  auto in_x = setup.List("/x");
  auto in_y = setup.List("/y");
  ASSERT_TRUE(in_x.ok());
  ASSERT_TRUE(in_y.ok());
  EXPECT_EQ(in_x->size(), static_cast<size_t>(kIters));  // pb files landed in /x
  EXPECT_EQ(in_y->size(), static_cast<size_t>(kIters));  // pa files landed in /y
}

TEST_F(ConcurrencyTest, MixedReadWriteLoadKeepsNamespaceConsistent) {
  Client setup = cluster_->NewClient(NamenodePolicy::kRoundRobin, "setup");
  ASSERT_TRUE(setup.Mkdirs("/mix/a").ok());
  ASSERT_TRUE(setup.Mkdirs("/mix/b").ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(setup.WriteFile("/mix/a/f" + std::to_string(i), 1, 10).ok());
  }
  hops::ThreadPool pool(4);
  std::atomic<bool> stop{false};
  std::atomic<int> hard_failures{0};
  // Two readers...
  for (int t = 0; t < 2; ++t) {
    pool.Submit([&, t] {
      Client c = cluster_->NewClient(NamenodePolicy::kSticky, "r" + std::to_string(t),
                                     200 + t);
      while (!stop.load()) {
        (void)c.List("/mix/a");
        (void)c.Stat("/mix/a/f3");
        (void)c.Read("/mix/a/f3");
      }
    });
  }
  // ...against a renamer and a create/delete churner.
  pool.Submit([&] {
    Client c = cluster_->NewClient(NamenodePolicy::kSticky, "mv", 300);
    for (int i = 0; i < 30; ++i) {
      if (!c.Rename("/mix/a/f0", "/mix/b/f0").ok()) hard_failures.fetch_add(1);
      if (!c.Rename("/mix/b/f0", "/mix/a/f0").ok()) hard_failures.fetch_add(1);
    }
    stop.store(true);
  });
  pool.Submit([&] {
    Client c = cluster_->NewClient(NamenodePolicy::kSticky, "churn", 400);
    int i = 0;
    while (!stop.load()) {
      std::string path = "/mix/b/tmp" + std::to_string(i++);
      if (c.WriteFile(path, 1, 5).ok()) {
        if (!c.Delete(path, false).ok()) hard_failures.fetch_add(1);
      }
    }
  });
  pool.Wait();
  EXPECT_EQ(hard_failures.load(), 0);
  EXPECT_TRUE(setup.Stat("/mix/a/f0").ok());
  auto listing = setup.List("/mix/a");
  ASSERT_TRUE(listing.ok());
  EXPECT_EQ(listing->size(), 10u);
}

TEST_F(ConcurrencyTest, ClientFailsOverWhenNamenodeDies) {
  Client c = cluster_->NewClient(NamenodePolicy::kSticky, "c1");
  ASSERT_TRUE(c.Mkdirs("/ha").ok());
  ASSERT_TRUE(c.WriteFile("/ha/f", 1, 10).ok());
  // Kill namenodes one at a time; the sticky client keeps working with no
  // downtime as long as one namenode survives (§7.6.1).
  for (int killed = 0; killed + 1 < cluster_->num_namenodes(); ++killed) {
    cluster_->KillNamenode(killed);
    auto st = c.Stat("/ha/f");
    EXPECT_TRUE(st.ok()) << "after killing nn" << killed << ": "
                         << st.status().ToString();
    EXPECT_TRUE(c.WriteFile("/ha/g" + std::to_string(killed), 1, 5).ok());
  }
  EXPECT_GT(c.failovers(), 0u);
  // All namenodes dead: unavailable.
  cluster_->KillNamenode(cluster_->num_namenodes() - 1);
  EXPECT_EQ(c.Stat("/ha/f").status().code(), hops::StatusCode::kUnavailable);
  // A restarted namenode restores service.
  ASSERT_TRUE(cluster_->RestartNamenode(0).ok());
  EXPECT_TRUE(c.Stat("/ha/f").ok());
}

TEST_F(ConcurrencyTest, OperationsSurviveNdbDatanodeFailure) {
  Client c = cluster_->NewClient(NamenodePolicy::kRoundRobin, "c1");
  ASSERT_TRUE(c.Mkdirs("/ndb").ok());
  ASSERT_TRUE(c.WriteFile("/ndb/f", 1, 10).ok());
  // Kill one NDB datanode per node group: every partition still has a
  // replica, so the file system keeps working (§7.6.2).
  cluster_->db().KillDatanode(0);
  cluster_->db().KillDatanode(2);
  EXPECT_TRUE(cluster_->db().Available());
  EXPECT_TRUE(c.Stat("/ndb/f").ok());
  EXPECT_TRUE(c.WriteFile("/ndb/g", 1, 10).ok());
  // Kill the second member of group 0: the cluster is down.
  cluster_->db().KillDatanode(1);
  EXPECT_FALSE(cluster_->db().Available());
  bool saw_unavailable = false;
  for (int i = 0; i < 20 && !saw_unavailable; ++i) {
    auto st = c.Stat("/ndb/probe" + std::to_string(i));
    if (st.status().code() == hops::StatusCode::kUnavailable) saw_unavailable = true;
  }
  EXPECT_TRUE(saw_unavailable);
  // Recovery: restart the NDB node; the namespace is intact.
  cluster_->db().RestartDatanode(1);
  EXPECT_TRUE(c.Stat("/ndb/f").ok());
}

TEST_F(ConcurrencyTest, HotspotDirectoryStillCorrectUnderContention) {
  // All operations hammer one directory (§7.2.1): throughput is bounded by
  // one shard but correctness must hold.
  Client setup = cluster_->NewClient(NamenodePolicy::kRoundRobin, "setup");
  ASSERT_TRUE(setup.Mkdirs("/shared-dir").ok());
  hops::ThreadPool pool(4);
  std::atomic<int> created{0};
  for (int t = 0; t < 4; ++t) {
    pool.Submit([&, t] {
      Client c = cluster_->NewClient(NamenodePolicy::kRoundRobin,
                                     "hot" + std::to_string(t), 500 + t);
      for (int i = 0; i < 20; ++i) {
        std::string path = "/shared-dir/t" + std::to_string(t) + "_" + std::to_string(i);
        if (c.WriteFile(path, 1, 1).ok()) created.fetch_add(1);
      }
    });
  }
  pool.Wait();
  EXPECT_EQ(created.load(), 80);
  auto listing = setup.List("/shared-dir");
  ASSERT_TRUE(listing.ok());
  EXPECT_EQ(listing->size(), 80u);
}

}  // namespace
}  // namespace hops::fs
