// Multi-threaded, multi-namenode behaviour: parallel non-conflicting ops,
// serialization of conflicting ops, client failover with zero downtime,
// database-node failure handling (§7.6), and the handler-pool stress
// offensive: many concurrent clients funneled through a bounded pool of
// handler threads sharing the database's completion mux, verified against a
// single-threaded oracle replay of the same deterministic op scripts.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>

#include "hopsfs/mini_cluster.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace hops::fs {
namespace {

class ConcurrencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MiniClusterOptions options;
    options.db.num_datanodes = 4;
    options.db.replication = 2;
    options.db.lock_wait_timeout = std::chrono::milliseconds(250);
    options.num_namenodes = 3;
    options.num_datanodes = 3;
    auto cluster = MiniCluster::Start(options);
    ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
    cluster_ = *std::move(cluster);
  }

  std::unique_ptr<MiniCluster> cluster_;
};

TEST_F(ConcurrencyTest, ParallelCreatesInDistinctDirs) {
  constexpr int kThreads = 4;
  constexpr int kFilesEach = 25;
  {
    Client setup = cluster_->NewClient(NamenodePolicy::kRoundRobin, "setup");
    for (int t = 0; t < kThreads; ++t) {
      ASSERT_TRUE(setup.Mkdirs("/w" + std::to_string(t)).ok());
    }
  }
  hops::ThreadPool pool(kThreads);
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    pool.Submit([&, t] {
      Client c = cluster_->NewClient(NamenodePolicy::kRoundRobin,
                                     "c" + std::to_string(t), 100 + t);
      for (int i = 0; i < kFilesEach; ++i) {
        std::string path = "/w" + std::to_string(t) + "/f" + std::to_string(i);
        if (!c.WriteFile(path, 1, 10).ok()) failures.fetch_add(1);
      }
    });
  }
  pool.Wait();
  EXPECT_EQ(failures.load(), 0);
  Client check = cluster_->NewClient(NamenodePolicy::kRandom, "check");
  for (int t = 0; t < kThreads; ++t) {
    auto listing = check.List("/w" + std::to_string(t));
    ASSERT_TRUE(listing.ok());
    EXPECT_EQ(listing->size(), static_cast<size_t>(kFilesEach));
  }
}

TEST_F(ConcurrencyTest, ConflictingCreatesExactlyOneWins) {
  Client setup = cluster_->NewClient(NamenodePolicy::kRoundRobin, "setup");
  ASSERT_TRUE(setup.Mkdirs("/race").ok());
  constexpr int kThreads = 4;
  hops::ThreadPool pool(kThreads);
  std::atomic<int> wins{0};
  std::atomic<int> already{0};
  for (int t = 0; t < kThreads; ++t) {
    pool.Submit([&, t] {
      // Each contender uses a different namenode when possible.
      Namenode& nn = cluster_->namenode(t % cluster_->num_namenodes());
      auto st = nn.Create("/race/same", "client" + std::to_string(t));
      if (st.ok()) {
        wins.fetch_add(1);
      } else if (st.code() == hops::StatusCode::kAlreadyExists ||
                 st.code() == hops::StatusCode::kLeaseConflict) {
        already.fetch_add(1);
      }
    });
  }
  pool.Wait();
  EXPECT_EQ(wins.load(), 1);
  EXPECT_EQ(already.load(), kThreads - 1);
}

TEST_F(ConcurrencyTest, ConcurrentRenamesOfSameSourceOneWins) {
  Client setup = cluster_->NewClient(NamenodePolicy::kRoundRobin, "setup");
  ASSERT_TRUE(setup.Mkdirs("/mv").ok());
  ASSERT_TRUE(setup.WriteFile("/mv/f", 1, 1).ok());
  std::atomic<int> wins{0};
  std::thread t1([&] {
    if (cluster_->namenode(0).Rename("/mv/f", "/mv/a").ok()) wins.fetch_add(1);
  });
  std::thread t2([&] {
    if (cluster_->namenode(1).Rename("/mv/f", "/mv/b").ok()) wins.fetch_add(1);
  });
  t1.join();
  t2.join();
  EXPECT_EQ(wins.load(), 1);
  int present = 0;
  present += setup.Stat("/mv/a").ok() ? 1 : 0;
  present += setup.Stat("/mv/b").ok() ? 1 : 0;
  EXPECT_EQ(present, 1);
  EXPECT_FALSE(setup.Stat("/mv/f").ok());
}

TEST_F(ConcurrencyTest, CrossingRenamesSerializeWithoutDeadlock) {
  // Two renames whose lock sets cross: /x/a -> /y/pa while /y/b -> /x/pb.
  // Each transaction's batched lock phase must wait in the left-ordered
  // path total order (kStagedOrder), so the two lock sets conflict in the
  // same sequence and queue instead of deadlocking into lock timeouts.
  Client setup = cluster_->NewClient(NamenodePolicy::kRoundRobin, "setup");
  ASSERT_TRUE(setup.Mkdirs("/x").ok());
  ASSERT_TRUE(setup.Mkdirs("/y").ok());
  constexpr int kIters = 20;
  std::atomic<int> failures{0};
  auto flip = [&](Namenode& nn, const std::string& from_dir, const std::string& to_dir,
                  const std::string& name) {
    for (int i = 0; i < kIters; ++i) {
      std::string src = from_dir + "/" + name + std::to_string(i);
      std::string dst = to_dir + "/" + name + std::to_string(i);
      if (!nn.Create(src, "c").ok() || !nn.CompleteFile(src, "c").ok() ||
          !nn.Rename(src, dst).ok()) {
        failures.fetch_add(1);
        return;
      }
    }
  };
  std::thread t1([&] { flip(cluster_->namenode(0), "/x", "/y", "pa"); });
  std::thread t2([&] { flip(cluster_->namenode(1), "/y", "/x", "pb"); });
  t1.join();
  t2.join();
  EXPECT_EQ(failures.load(), 0);
  // The renames retried past any transient conflict without a single lock
  // timeout: the crossing lock phases queued, they never cycled.
  EXPECT_EQ(cluster_->db().StatsSnapshot().lock_timeouts, 0u);
  auto in_x = setup.List("/x");
  auto in_y = setup.List("/y");
  ASSERT_TRUE(in_x.ok());
  ASSERT_TRUE(in_y.ok());
  EXPECT_EQ(in_x->size(), static_cast<size_t>(kIters));  // pb files landed in /x
  EXPECT_EQ(in_y->size(), static_cast<size_t>(kIters));  // pa files landed in /y
}

TEST_F(ConcurrencyTest, MixedReadWriteLoadKeepsNamespaceConsistent) {
  Client setup = cluster_->NewClient(NamenodePolicy::kRoundRobin, "setup");
  ASSERT_TRUE(setup.Mkdirs("/mix/a").ok());
  ASSERT_TRUE(setup.Mkdirs("/mix/b").ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(setup.WriteFile("/mix/a/f" + std::to_string(i), 1, 10).ok());
  }
  hops::ThreadPool pool(4);
  std::atomic<bool> stop{false};
  std::atomic<int> hard_failures{0};
  // Two readers...
  for (int t = 0; t < 2; ++t) {
    pool.Submit([&, t] {
      Client c = cluster_->NewClient(NamenodePolicy::kSticky, "r" + std::to_string(t),
                                     200 + t);
      while (!stop.load()) {
        (void)c.List("/mix/a");
        (void)c.Stat("/mix/a/f3");
        (void)c.Read("/mix/a/f3");
      }
    });
  }
  // ...against a renamer and a create/delete churner.
  pool.Submit([&] {
    Client c = cluster_->NewClient(NamenodePolicy::kSticky, "mv", 300);
    for (int i = 0; i < 30; ++i) {
      if (!c.Rename("/mix/a/f0", "/mix/b/f0").ok()) hard_failures.fetch_add(1);
      if (!c.Rename("/mix/b/f0", "/mix/a/f0").ok()) hard_failures.fetch_add(1);
    }
    stop.store(true);
  });
  pool.Submit([&] {
    Client c = cluster_->NewClient(NamenodePolicy::kSticky, "churn", 400);
    int i = 0;
    while (!stop.load()) {
      std::string path = "/mix/b/tmp" + std::to_string(i++);
      if (c.WriteFile(path, 1, 5).ok()) {
        if (!c.Delete(path, false).ok()) hard_failures.fetch_add(1);
      }
    }
  });
  pool.Wait();
  EXPECT_EQ(hard_failures.load(), 0);
  EXPECT_TRUE(setup.Stat("/mix/a/f0").ok());
  auto listing = setup.List("/mix/a");
  ASSERT_TRUE(listing.ok());
  EXPECT_EQ(listing->size(), 10u);
}

TEST_F(ConcurrencyTest, ClientFailsOverWhenNamenodeDies) {
  Client c = cluster_->NewClient(NamenodePolicy::kSticky, "c1");
  ASSERT_TRUE(c.Mkdirs("/ha").ok());
  ASSERT_TRUE(c.WriteFile("/ha/f", 1, 10).ok());
  // Kill namenodes one at a time; the sticky client keeps working with no
  // downtime as long as one namenode survives (§7.6.1).
  for (int killed = 0; killed + 1 < cluster_->num_namenodes(); ++killed) {
    cluster_->KillNamenode(killed);
    auto st = c.Stat("/ha/f");
    EXPECT_TRUE(st.ok()) << "after killing nn" << killed << ": "
                         << st.status().ToString();
    EXPECT_TRUE(c.WriteFile("/ha/g" + std::to_string(killed), 1, 5).ok());
  }
  EXPECT_GT(c.failovers(), 0u);
  // All namenodes dead: unavailable.
  cluster_->KillNamenode(cluster_->num_namenodes() - 1);
  EXPECT_EQ(c.Stat("/ha/f").status().code(), hops::StatusCode::kUnavailable);
  // A restarted namenode restores service.
  ASSERT_TRUE(cluster_->RestartNamenode(0).ok());
  EXPECT_TRUE(c.Stat("/ha/f").ok());
}

TEST_F(ConcurrencyTest, OperationsSurviveNdbDatanodeFailure) {
  Client c = cluster_->NewClient(NamenodePolicy::kRoundRobin, "c1");
  ASSERT_TRUE(c.Mkdirs("/ndb").ok());
  ASSERT_TRUE(c.WriteFile("/ndb/f", 1, 10).ok());
  // Kill one NDB datanode per node group: every partition still has a
  // replica, so the file system keeps working (§7.6.2).
  cluster_->db().KillDatanode(0);
  cluster_->db().KillDatanode(2);
  EXPECT_TRUE(cluster_->db().Available());
  EXPECT_TRUE(c.Stat("/ndb/f").ok());
  EXPECT_TRUE(c.WriteFile("/ndb/g", 1, 10).ok());
  // Kill the second member of group 0: the cluster is down.
  cluster_->db().KillDatanode(1);
  EXPECT_FALSE(cluster_->db().Available());
  bool saw_unavailable = false;
  for (int i = 0; i < 20 && !saw_unavailable; ++i) {
    auto st = c.Stat("/ndb/probe" + std::to_string(i));
    if (st.status().code() == hops::StatusCode::kUnavailable) saw_unavailable = true;
  }
  EXPECT_TRUE(saw_unavailable);
  // Recovery: restart the NDB node; the namespace is intact.
  cluster_->db().RestartDatanode(1);
  EXPECT_TRUE(c.Stat("/ndb/f").ok());
}

TEST_F(ConcurrencyTest, HotspotDirectoryStillCorrectUnderContention) {
  // All operations hammer one directory (§7.2.1): throughput is bounded by
  // one shard but correctness must hold.
  Client setup = cluster_->NewClient(NamenodePolicy::kRoundRobin, "setup");
  ASSERT_TRUE(setup.Mkdirs("/shared-dir").ok());
  hops::ThreadPool pool(4);
  std::atomic<int> created{0};
  for (int t = 0; t < 4; ++t) {
    pool.Submit([&, t] {
      Client c = cluster_->NewClient(NamenodePolicy::kRoundRobin,
                                     "hot" + std::to_string(t), 500 + t);
      for (int i = 0; i < 20; ++i) {
        std::string path = "/shared-dir/t" + std::to_string(t) + "_" + std::to_string(i);
        if (c.WriteFile(path, 1, 1).ok()) created.fetch_add(1);
      }
    });
  }
  pool.Wait();
  EXPECT_EQ(created.load(), 80);
  auto listing = setup.List("/shared-dir");
  ASSERT_TRUE(listing.ok());
  EXPECT_EQ(listing->size(), 80u);
}

// ---------------------------------------------------------------------------
// Multi-namenode hint staleness: a rename / subtree-rename on NN-A must be
// survivable on NN-B immediately (lazy repair through the stale hint) and
// *invalidated* on NN-B within one heartbeat drain of the invalidation log.
// ---------------------------------------------------------------------------

TEST_F(ConcurrencyTest, CrossNamenodeRenameStalenessRepairsLazilyBeforeTheTick) {
  Namenode& a = cluster_->namenode(0);
  Namenode& b = cluster_->namenode(1);
  ASSERT_TRUE(a.Mkdirs("/stale").ok());
  ASSERT_TRUE(a.Create("/stale/f", "c").ok());
  ASSERT_TRUE(a.CompleteFile("/stale/f", "c").ok());
  // NN-B caches the full chain for /stale/f.
  ASSERT_TRUE(b.GetFileInfo("/stale/f").ok());
  ASSERT_EQ(b.hint_cache().PeekChain({"stale", "f"}).hints.size(), 2u);
  // Rename on NN-A. No heartbeat has run: NN-B still holds the stale hints.
  ASSERT_TRUE(a.Rename("/stale/f", "/stale/g").ok());
  ASSERT_EQ(b.hint_cache().PeekChain({"stale", "f"}).hints.size(), 2u);
  // Lazy repair: NN-B must resolve correctly THROUGH the stale hint.
  EXPECT_EQ(b.GetFileInfo("/stale/f").status().code(), hops::StatusCode::kNotFound);
  EXPECT_TRUE(b.GetFileInfo("/stale/g").ok());
  // Regression (stale-hint fallback): the NotFound resolution must have
  // evicted the dead target hint -- the next resolution is not doomed to
  // re-lock the same dead key.
  EXPECT_LT(b.hint_cache().PeekChain({"stale", "f"}).hints.size(), 2u);
}

TEST_F(ConcurrencyTest, SubtreeRenameInvalidatesPeerHintsWithinOneTick) {
  Namenode& a = cluster_->namenode(0);
  ASSERT_TRUE(a.Mkdirs("/pro/dir").ok());
  ASSERT_TRUE(a.Create("/pro/dir/f", "c").ok());
  ASSERT_TRUE(a.CompleteFile("/pro/dir/f", "c").ok());
  // Every peer namenode caches the 3-deep chain.
  for (int i = 1; i < cluster_->num_namenodes(); ++i) {
    ASSERT_TRUE(cluster_->namenode(i).GetFileInfo("/pro/dir/f").ok());
    ASSERT_EQ(cluster_->namenode(i).hint_cache().PeekChain({"pro", "dir", "f"}).hints.size(),
              3u);
  }
  // /pro/dir has a child, so this goes through the subtree protocol (§6).
  ASSERT_TRUE(a.Rename("/pro/dir", "/pro/dir2").ok());
  // Peers are stale until they drain the invalidation log...
  ASSERT_EQ(cluster_->namenode(1).hint_cache().PeekChain({"pro", "dir", "f"}).hints.size(),
            3u);
  // ...and clean within ONE heartbeat tick.
  cluster_->TickHeartbeats();
  for (int i = 1; i < cluster_->num_namenodes(); ++i) {
    Namenode& peer = cluster_->namenode(i);
    EXPECT_LE(peer.hint_cache().PeekChain({"pro", "dir"}).hints.size(), 1u)
        << "nn" << i << " must have dropped the /pro/dir prefix";
    EXPECT_GT(peer.proactive_invalidations_applied(), 0u);
    EXPECT_TRUE(peer.GetFileInfo("/pro/dir2/f").ok());
    EXPECT_EQ(peer.GetFileInfo("/pro/dir/f").status().code(),
              hops::StatusCode::kNotFound);
  }
  EXPECT_GT(cluster_->AggregateHintStats().proactive_applied, 0u);
}

TEST_F(ConcurrencyTest, DeleteOnOneNamenodeInvalidatesPeersWithinOneTick) {
  Namenode& a = cluster_->namenode(0);
  Namenode& b = cluster_->namenode(1);
  ASSERT_TRUE(a.Mkdirs("/gone/sub").ok());
  ASSERT_TRUE(a.Create("/gone/sub/f", "c").ok());
  ASSERT_TRUE(a.CompleteFile("/gone/sub/f", "c").ok());
  ASSERT_TRUE(b.GetFileInfo("/gone/sub/f").ok());
  ASSERT_TRUE(a.Delete("/gone", true).ok());
  ASSERT_EQ(b.hint_cache().PeekChain({"gone", "sub", "f"}).hints.size(), 3u);
  cluster_->TickHeartbeats();
  EXPECT_TRUE(b.hint_cache().PeekChain({"gone"}).hints.empty());
  EXPECT_EQ(b.GetFileInfo("/gone/sub/f").status().code(), hops::StatusCode::kNotFound);
}

TEST_F(ConcurrencyTest, RenameInvalidatesDestinationPrefixHints) {
  // Regression: Rename used to invalidate only the src prefix, leaving hints
  // under the dst prefix pointing at a previous occupant's inode.
  Namenode& nn = cluster_->namenode(0);
  ASSERT_TRUE(nn.Mkdirs("/c").ok());
  ASSERT_TRUE(nn.Create("/srcfile", "c").ok());
  ASSERT_TRUE(nn.CompleteFile("/srcfile", "c").ok());
  auto c_info = nn.GetFileInfo("/c");
  ASSERT_TRUE(c_info.ok());
  // A hint under the destination prefix, as a since-replaced occupant of
  // /c/d would have left behind.
  nn.hint_cache().Put({"c", "d"}, 1, c_info->inode_id, /*inode_id=*/999999,
                      nn.hint_cache().epoch());
  ASSERT_TRUE(nn.Rename("/srcfile", "/c/d").ok());
  auto hints = nn.hint_cache().PeekChain({"c", "d"}).hints;
  ASSERT_LT(hints.size(), 2u) << "the stale /c/d hint must be gone";
  // And the renamed file is fully usable at its new path.
  auto moved = nn.GetFileInfo("/c/d");
  ASSERT_TRUE(moved.ok());
  EXPECT_NE(moved->inode_id, 999999);
}

TEST_F(ConcurrencyTest, CreateOverStaleHintStillCachesTheNewInode) {
  Namenode& a = cluster_->namenode(0);
  Namenode& b = cluster_->namenode(1);
  ASSERT_TRUE(a.Mkdirs("/adopt").ok());
  ASSERT_TRUE(a.Create("/adopt/f", "c").ok());
  ASSERT_TRUE(a.CompleteFile("/adopt/f", "c").ok());
  ASSERT_TRUE(b.GetFileInfo("/adopt/f").ok());    // B caches the chain
  ASSERT_TRUE(a.Delete("/adopt/f", false).ok());  // delete on A; no tick yet
  ASSERT_EQ(b.hint_cache().PeekChain({"adopt", "f"}).hints.size(), 2u);
  // Create over the stale hint on B: the NotFound fallback evicts the dead
  // hint, and the create must still cache its own fresh inode -- the
  // planted barrier admits the operation that planted it.
  ASSERT_TRUE(b.Create("/adopt/f", "c2").ok());
  auto info = b.GetFileInfo("/adopt/f");
  ASSERT_TRUE(info.ok());
  auto hints = b.hint_cache().PeekChain({"adopt", "f"}).hints;
  ASSERT_EQ(hints.size(), 2u);
  EXPECT_EQ(hints[1].inode_id, info->inode_id);
  EXPECT_EQ(b.hint_cache().stats().stale_put_rejections, 0u);
}

TEST(HintInvalidationLogTest, LeaderReapsExpiredRecords) {
  MiniClusterOptions options;
  options.num_namenodes = 2;
  options.fs.hint_invalidation_ttl = std::chrono::milliseconds(0);
  auto cluster_or = MiniCluster::Start(options);
  ASSERT_TRUE(cluster_or.ok());
  auto& cluster = *cluster_or;
  Namenode& a = cluster->namenode(0);
  ASSERT_TRUE(a.Create("/f", "c").ok());
  ASSERT_TRUE(a.CompleteFile("/f", "c").ok());
  ASSERT_TRUE(a.Rename("/f", "/g").ok());
  cluster->FlushHintPublishes();
  auto scan_rows = [&] {
    auto tx = cluster->db().Begin();
    auto rows = tx->FullTableScan(cluster->schema().hint_invalidations);
    (void)tx->Commit();
    return rows.ok() ? *rows : std::vector<ndb::Row>{};
  };
  auto rows = scan_rows();
  ASSERT_EQ(rows.size(), 1u) << "ONE record per publish event, all prefixes in one row";
  EXPECT_EQ(DecodeHintPaths(rows[0][col::kHintPaths].str()),
            (std::vector<std::string>{"/f", "/g"}))
      << "the rename's src and dst prefixes ride the same record";
  EXPECT_EQ(rows[0][col::kHintNn].i64(), a.id());
  // ttl 0: the leader's next heartbeat reaps everything already drained or
  // not -- staleness on slow peers degrades to lazy repair, never to error.
  cluster->TickHeartbeats();
  EXPECT_TRUE(scan_rows().empty());
}

// ---------------------------------------------------------------------------
// The sharded hint-invalidation log: per-publisher partitions + per-NN head
// rows keep concurrent publishers off any shared row; acks let the leader GC
// precisely; the coalescing publisher folds queued ops into one record.
// ---------------------------------------------------------------------------

class ShardedHintLogTest : public ::testing::Test {
 protected:
  static std::unique_ptr<MiniCluster> MakeCluster(int num_namenodes, bool publish_async,
                                                  bool global_seq_lock,
                                                  std::chrono::milliseconds ttl =
                                                      std::chrono::milliseconds(600000)) {
    MiniClusterOptions options;
    options.db.num_datanodes = 4;
    options.db.replication = 2;
    options.num_namenodes = num_namenodes;
    options.num_datanodes = 3;
    options.fs.hint_publish_async = publish_async;
    options.fs.hint_global_seq_lock = global_seq_lock;
    options.fs.hint_invalidation_ttl = ttl;
    auto cluster = MiniCluster::Start(options);
    EXPECT_TRUE(cluster.ok()) << cluster.status().ToString();
    return *std::move(cluster);
  }

  static size_t CountRows(MiniCluster& cluster, ndb::TableId table) {
    return cluster.db().TableRowCount(table);
  }
};

TEST_F(ShardedHintLogTest, PublishNeverTouchesTheLegacyGlobalSeqRow) {
  // The strongest form of "the global serialization point is gone": a
  // transaction holds the legacy seq row X-locked for the whole test, and a
  // publish still completes without a single lock wait.
  auto cluster = MakeCluster(2, /*publish_async=*/true, /*global_seq_lock=*/false);
  Namenode& a = cluster->namenode(0);
  ASSERT_TRUE(a.Create("/solo", "c").ok());
  ASSERT_TRUE(a.CompleteFile("/solo", "c").ok());
  auto blocker = cluster->db().Begin();
  ASSERT_TRUE(blocker
                  ->Read(cluster->schema().variables, {kVarNextHintInvalidationSeq},
                         ndb::LockMode::kExclusive)
                  .ok());
  cluster->db().ResetStats();
  ASSERT_TRUE(a.Rename("/solo", "/solo2").ok());
  cluster->FlushHintPublishes();
  blocker->Abort();
  EXPECT_EQ(cluster->db().StatsSnapshot().lock_waits, 0u);
  EXPECT_EQ(a.hint_publish_events(), 1u);
}

TEST_F(ShardedHintLogTest, GlobalSeqLockAblationBlocksBehindTheSharedRow) {
  // The baseline the bench compares against: with hint_global_seq_lock the
  // publish transaction must wait out a holder of the one shared row.
  auto cluster = MakeCluster(2, /*publish_async=*/false, /*global_seq_lock=*/true);
  Namenode& a = cluster->namenode(0);
  ASSERT_TRUE(a.Create("/held", "c").ok());
  ASSERT_TRUE(a.CompleteFile("/held", "c").ok());
  auto blocker = cluster->db().Begin();
  ASSERT_TRUE(blocker
                  ->Read(cluster->schema().variables, {kVarNextHintInvalidationSeq},
                         ndb::LockMode::kExclusive)
                  .ok());
  cluster->db().ResetStats();
  std::thread renamer([&] { ASSERT_TRUE(a.Rename("/held", "/held2").ok()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  ASSERT_TRUE(blocker->Commit().ok());
  renamer.join();
  if (cluster->db().kind() == kv::EngineKind::kNdb) {
    // Lock waits are a 2PL phenomenon; under OCC the publish proceeds
    // without blocking and the ablation row costs nothing.
    EXPECT_GE(cluster->db().StatsSnapshot().lock_waits, 1u)
        << "the synchronous global-seq publish must have blocked on the row";
  }
}

TEST_F(ShardedHintLogTest, ConcurrentPublishersShareNoRows) {
  // N namenodes publishing concurrently over disjoint namespaces: the
  // sharded log keeps every publish on its own (head, record) rows, so the
  // whole run completes with ZERO lock waits anywhere in the database.
  constexpr int kNamenodes = 3, kRenames = 12;
  auto cluster = MakeCluster(kNamenodes, /*publish_async=*/false,
                             /*global_seq_lock=*/false);
  for (int t = 0; t < kNamenodes; ++t) {
    Namenode& nn = cluster->namenode(t);
    const std::string base = "/pub" + std::to_string(t);
    ASSERT_TRUE(nn.Mkdirs(base).ok());
    for (int i = 0; i < kRenames; ++i) {
      ASSERT_TRUE(nn.Create(base + "/f" + std::to_string(i), "c").ok());
      ASSERT_TRUE(nn.CompleteFile(base + "/f" + std::to_string(i), "c").ok());
    }
  }
  cluster->db().ResetStats();
  hops::ThreadPool pool(kNamenodes);
  for (int t = 0; t < kNamenodes; ++t) {
    pool.Submit([&, t] {
      Namenode& nn = cluster->namenode(t);
      const std::string base = "/pub" + std::to_string(t);
      for (int i = 0; i < kRenames; ++i) {
        ASSERT_TRUE(nn.Rename(base + "/f" + std::to_string(i),
                              base + "/g" + std::to_string(i))
                        .ok());
      }
    });
  }
  pool.Wait();
  auto stats = cluster->db().StatsSnapshot();
  EXPECT_EQ(stats.lock_waits, 0u) << "no publisher ever waited on another's rows";
  auto hint = cluster->AggregateHintStats();
  EXPECT_EQ(hint.publish_events, static_cast<uint64_t>(kNamenodes * kRenames))
      << "synchronous publishes append one record each";
}

TEST_F(ShardedHintLogTest, LeaderGcReapsByAcksLongBeforeTheTtl) {
  auto cluster = MakeCluster(3, /*publish_async=*/true, /*global_seq_lock=*/false);
  Namenode& a = cluster->namenode(0);
  ASSERT_TRUE(a.Create("/acked", "c").ok());
  ASSERT_TRUE(a.CompleteFile("/acked", "c").ok());
  ASSERT_TRUE(a.Rename("/acked", "/acked2").ok());
  cluster->FlushHintPublishes();
  ASSERT_EQ(CountRows(*cluster, cluster->schema().hint_invalidations), 1u);
  // Tick 1: every peer drains and writes its (drainer, publisher) ack.
  // Tick 2: the leader sees every alive namenode acked past the record and
  // reaps it -- the 10-minute TTL never comes into play.
  cluster->TickHeartbeats(2);
  EXPECT_EQ(CountRows(*cluster, cluster->schema().hint_invalidations), 0u);
  auto hint = cluster->AggregateHintStats();
  EXPECT_GE(hint.gc_acked_reaps, 1u);
  EXPECT_EQ(hint.gc_ttl_reaps, 0u);
  EXPECT_GT(hint.proactive_applied, 0u);
}

TEST_F(ShardedHintLogTest, DeadDrainerStopsPinningTheLogOnceDeclaredDead) {
  auto cluster = MakeCluster(3, /*publish_async=*/true, /*global_seq_lock=*/false);
  Namenode& a = cluster->namenode(0);
  // Kill one drainer BEFORE the publish: it will never ack this record.
  cluster->KillNamenode(2);
  ASSERT_TRUE(a.Create("/lag", "c").ok());
  ASSERT_TRUE(a.CompleteFile("/lag", "c").ok());
  ASSERT_TRUE(a.Rename("/lag", "/lag2").ok());
  cluster->FlushHintPublishes();
  ASSERT_EQ(CountRows(*cluster, cluster->schema().hint_invalidations), 1u);
  // While the dead namenode is still within its liveness window it counts
  // as alive, its missing ack holds the minimum at 0, and the record stays.
  cluster->TickHeartbeats();
  EXPECT_EQ(CountRows(*cluster, cluster->schema().hint_invalidations), 1u);
  // Once the survivors' election view declares it dead, the min runs over
  // the remaining alive namenodes only -- the ack GC proceeds without TTL.
  cluster->TickHeartbeats(4);
  EXPECT_EQ(CountRows(*cluster, cluster->schema().hint_invalidations), 0u);
  auto hint = cluster->AggregateHintStats();
  EXPECT_GE(hint.gc_acked_reaps, 1u);
  EXPECT_EQ(hint.gc_ttl_reaps, 0u);
}

TEST_F(ShardedHintLogTest, DeadPublisherRowsAreDrainedThenFullyCleaned) {
  auto cluster = MakeCluster(3, /*publish_async=*/true, /*global_seq_lock=*/false);
  Namenode& a = cluster->namenode(0);
  Namenode& b = cluster->namenode(1);
  ASSERT_TRUE(a.Mkdirs("/doomed/sub").ok());
  ASSERT_TRUE(a.Create("/doomed/sub/f", "c").ok());
  ASSERT_TRUE(a.CompleteFile("/doomed/sub/f", "c").ok());
  ASSERT_TRUE(b.GetFileInfo("/doomed/sub/f").ok());  // B caches the chain
  ASSERT_TRUE(a.Delete("/doomed", true).ok());
  cluster->FlushHintPublishes();
  cluster->KillNamenode(0);  // the publisher dies right after its append
  // Survivors still drain the dead publisher's record within one tick...
  cluster->TickHeartbeats();
  EXPECT_TRUE(b.hint_cache().PeekChain({"doomed"}).hints.empty());
  EXPECT_GT(b.proactive_invalidations_applied(), 0u);
  // ...and once the publisher ages out entirely (4x the liveness window),
  // the leader clears its head row, records and orphan acks.
  cluster->TickHeartbeats(14);
  EXPECT_EQ(CountRows(*cluster, cluster->schema().hint_invalidations), 0u);
  EXPECT_EQ(CountRows(*cluster, cluster->schema().hint_heads), 0u);
  EXPECT_EQ(CountRows(*cluster, cluster->schema().hint_acks), 0u)
      << "acks naming the dead publisher are orphans and must go too";
}

TEST_F(ShardedHintLogTest, OrphanHeadRowsAreSweptAfterAGraceWindow) {
  // The residue a cleanup transaction that failed mid-eviction would leave
  // behind: a head row (and acks) whose owner has no leader row. The GC
  // re-derives its cleanup list every pass, so the rows are buried once the
  // orphan outlives the grace window -- not leaked forever.
  auto cluster = MakeCluster(2, /*publish_async=*/true, /*global_seq_lock=*/false);
  {
    auto tx = cluster->db().Begin();
    ASSERT_TRUE(
        tx->Insert(cluster->schema().hint_heads, ndb::Row{int64_t{9999}, int64_t{5}})
            .ok());
    ASSERT_TRUE(tx->Insert(cluster->schema().hint_acks,
                           ndb::Row{int64_t{9999}, int64_t{1}, int64_t{4}, int64_t{0}})
                    .ok());
    ASSERT_TRUE(tx->Commit().ok());
  }
  // Within the grace window the rows survive: the owner could be a freshly
  // registered publisher whose leader row the leader has not scanned yet.
  cluster->TickHeartbeats();
  EXPECT_EQ(CountRows(*cluster, cluster->schema().hint_heads), 1u);
  // Past it, the leader buries the head row and the acks the orphan wrote.
  cluster->TickHeartbeats(4);
  EXPECT_EQ(CountRows(*cluster, cluster->schema().hint_heads), 0u);
  EXPECT_EQ(CountRows(*cluster, cluster->schema().hint_acks), 0u);
}

TEST_F(ShardedHintLogTest, PausedPublisherCoalescesQueuedOpsIntoOneRecord) {
  auto cluster = MakeCluster(2, /*publish_async=*/true, /*global_seq_lock=*/false);
  Namenode& a = cluster->namenode(0);
  for (const char* f : {"/co1", "/co2", "/co3"}) {
    ASSERT_TRUE(a.Create(f, "c").ok());
    ASSERT_TRUE(a.CompleteFile(f, "c").ok());
  }
  a.SetHintPublisherPausedForTesting(true);
  ASSERT_TRUE(a.Rename("/co1", "/mv1").ok());  // 2 prefixes
  ASSERT_TRUE(a.Rename("/co2", "/mv2").ok());  // 2 prefixes
  ASSERT_TRUE(a.Delete("/co3", false).ok());   // 1 prefix
  EXPECT_EQ(CountRows(*cluster, cluster->schema().hint_invalidations), 0u)
      << "nothing reaches the log while the publisher is paused";
  a.SetHintPublisherPausedForTesting(false);
  cluster->FlushHintPublishes();
  auto tx = cluster->db().Begin();
  auto rows = tx->FullTableScan(cluster->schema().hint_invalidations);
  (void)tx->Commit();
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u) << "three queued ops coalesce into ONE append";
  EXPECT_EQ(DecodeHintPaths((*rows)[0][col::kHintPaths].str()),
            (std::vector<std::string>{"/co1", "/mv1", "/co2", "/mv2", "/co3"}));
  EXPECT_EQ((*rows)[0][col::kHintOp].i64(), 0) << "mixed coalesced ops record op 0";
  EXPECT_EQ(a.hint_publish_events(), 1u);
  EXPECT_EQ(a.hint_publish_ops_coalesced(), 2u);
  // The coalesced record still invalidates every prefix on the peer.
  Namenode& b = cluster->namenode(1);
  cluster->TickHeartbeats();
  EXPECT_EQ(b.proactive_invalidations_applied(), 5u);
}

TEST_F(ShardedHintLogTest, DrainWalksEveryPublisherPartitionByRange) {
  // Interleaved multi-record ranges from two publishers, drained by a third
  // in one tick: the per-publisher applied vector must advance across the
  // re-keyed (nn, seq) ranges without skipping or re-applying.
  auto cluster = MakeCluster(3, /*publish_async=*/true, /*global_seq_lock=*/false);
  Namenode& a = cluster->namenode(0);
  Namenode& b = cluster->namenode(1);
  Namenode& c = cluster->namenode(2);
  for (const char* f : {"/ra1", "/ra2", "/rb1"}) {
    ASSERT_TRUE(a.Create(f, "c").ok());
    ASSERT_TRUE(a.CompleteFile(f, "c").ok());
  }
  // C caches chains so the drain has real hints to kill.
  for (const char* f : {"/ra1", "/ra2", "/rb1"}) ASSERT_TRUE(c.GetFileInfo(f).ok());
  // Two separate records from A (flush in between), one from B.
  ASSERT_TRUE(a.Rename("/ra1", "/ra1m").ok());
  cluster->FlushHintPublishes();
  ASSERT_TRUE(a.Rename("/ra2", "/ra2m").ok());
  cluster->FlushHintPublishes();
  ASSERT_TRUE(b.Rename("/rb1", "/rb1m").ok());
  cluster->FlushHintPublishes();
  EXPECT_EQ(CountRows(*cluster, cluster->schema().hint_invalidations), 3u);
  const uint64_t before = c.proactive_invalidations_applied();
  ASSERT_TRUE(c.Heartbeat().ok());  // one drain pass over both partitions
  EXPECT_EQ(c.proactive_invalidations_applied() - before, 6u)
      << "2+2 prefixes from A's two records and 2 from B's";
  for (const char* gone : {"/ra1", "/ra2", "/rb1"}) {
    auto split = SplitPath(gone);
    ASSERT_TRUE(split.ok());
    EXPECT_TRUE(c.hint_cache().PeekChain(*split).hints.empty()) << gone;
  }
  // A second drain with nothing new applies nothing (no re-application).
  ASSERT_TRUE(c.Heartbeat().ok());
  EXPECT_EQ(c.proactive_invalidations_applied() - before, 6u);
}

// ---------------------------------------------------------------------------
// Handler-pool stress offensive: concurrent clients through a bounded
// handler pool + completion mux, verified against a single-threaded oracle.
// ---------------------------------------------------------------------------

class HandlerPoolTest : public ::testing::Test {
 protected:
  static std::unique_ptr<MiniCluster> MakeCluster(int num_handlers, bool use_mux,
                                                  int num_namenodes) {
    MiniClusterOptions options;
    options.db.num_datanodes = 4;
    options.db.replication = 2;
    options.db.lock_wait_timeout = std::chrono::milliseconds(500);
    options.db.use_completion_mux = use_mux;
    options.fs.num_handlers = num_handlers;
    options.num_namenodes = num_namenodes;
    options.num_datanodes = 3;
    auto cluster = MiniCluster::Start(options);
    EXPECT_TRUE(cluster.ok()) << cluster.status().ToString();
    return *std::move(cluster);
  }

  // One worker's deterministic op script (mixed mkdir / create / rename /
  // delete / getBlockLocations / stat in its own directory). The sampled
  // stream depends only on (worker, ops) and prior statuses, so replaying
  // it single-threaded on a second cluster must produce the identical
  // status sequence and final namespace.
  static std::vector<hops::StatusCode> RunScript(Client& c, int worker, int ops) {
    std::vector<hops::StatusCode> statuses;
    hops::Rng rng(1000 + static_cast<uint64_t>(worker));
    const std::string base = "/stress/w" + std::to_string(worker);
    statuses.push_back(c.Mkdirs(base).code());
    std::vector<std::string> files;
    int counter = 0;
    auto record = [&](const hops::Status& st) { statuses.push_back(st.code()); };
    for (int i = 0; i < ops; ++i) {
      switch (rng.Below(6)) {
        case 0:
          record(c.Mkdirs(base + "/d" + std::to_string(counter++)));
          break;
        case 1: {
          std::string path = base + "/f" + std::to_string(counter++);
          hops::Status st = c.WriteFile(path, 1, 64);
          record(st);
          if (st.ok()) files.push_back(path);
          break;
        }
        case 2: {
          if (files.empty()) break;
          size_t k = rng.Below(files.size());
          std::string dst = base + "/r" + std::to_string(counter++);
          hops::Status st = c.Rename(files[k], dst);
          record(st);
          if (st.ok()) files[k] = dst;
          break;
        }
        case 3: {
          if (files.empty()) break;
          size_t k = rng.Below(files.size());
          hops::Status st = c.Delete(files[k], false);
          record(st);
          if (st.ok()) files.erase(files.begin() + static_cast<long>(k));
          break;
        }
        case 4:
          if (!files.empty()) record(c.Read(files[rng.Below(files.size())]).status());
          break;
        case 5:
          if (!files.empty()) record(c.Stat(files[rng.Below(files.size())]).status());
          break;
      }
    }
    return statuses;
  }

  // Recursive listing under `path`: sorted (path, is_dir, size) triples --
  // the namespace fingerprint compared between the stressed cluster and the
  // oracle.
  static void ListTree(Client& c, const std::string& path,
                       std::vector<std::tuple<std::string, bool, int64_t>>& out) {
    auto listing = c.List(path);
    ASSERT_TRUE(listing.ok()) << path << ": " << listing.status().ToString();
    for (const auto& st : *listing) {
      std::string child = path + "/" + st.name;
      out.emplace_back(child, st.is_dir, st.is_dir ? 0 : st.size);
      if (st.is_dir) ListTree(c, child, out);
    }
  }

  static std::vector<std::tuple<std::string, bool, int64_t>> Fingerprint(Client& c) {
    std::vector<std::tuple<std::string, bool, int64_t>> out;
    ListTree(c, "/stress", out);
    std::sort(out.begin(), out.end());
    return out;
  }
};

TEST_F(HandlerPoolTest, StressedPoolMatchesSingleThreadedOracleReplay) {
  constexpr int kWorkers = 6;
  constexpr int kOps = 40;

  // Stressed run: 6 concurrent clients behind 3 handlers per namenode, all
  // transactions sharing the completion mux.
  auto stressed = MakeCluster(/*num_handlers=*/3, /*use_mux=*/true, /*num_namenodes=*/2);
  {
    Client setup = stressed->NewClient(NamenodePolicy::kRoundRobin, "setup");
    ASSERT_TRUE(setup.Mkdirs("/stress").ok());
  }
  std::vector<std::vector<hops::StatusCode>> stressed_statuses(kWorkers);
  {
    std::vector<std::thread> threads;
    for (int w = 0; w < kWorkers; ++w) {
      threads.emplace_back([&, w] {
        Client c = stressed->NewClient(NamenodePolicy::kRoundRobin,
                                       "c" + std::to_string(w), 100 + w);
        stressed_statuses[static_cast<size_t>(w)] = RunScript(c, w, kOps);
      });
    }
    for (auto& t : threads) t.join();
  }
  // The pool really served the requests (and merged windows across
  // transactions at least once under 6-way concurrency).
  uint64_t served = 0;
  for (int i = 0; i < stressed->num_namenodes(); ++i) {
    ASSERT_NE(stressed->namenode(i).handler_pool(), nullptr);
    served += stressed->namenode(i).handler_pool()->requests_served();
  }
  EXPECT_GT(served, 0u);
  if (stressed->db().kind() == kv::EngineKind::kNdb) {
    EXPECT_GT(stressed->db().StatsSnapshot().mux_windows, 0u);
  }

  // Oracle: the same scripts replayed one worker at a time on an inline
  // (no pool, no mux) cluster.
  auto oracle = MakeCluster(/*num_handlers=*/0, /*use_mux=*/false, /*num_namenodes=*/1);
  {
    Client setup = oracle->NewClient(NamenodePolicy::kSticky, "setup");
    ASSERT_TRUE(setup.Mkdirs("/stress").ok());
  }
  for (int w = 0; w < kWorkers; ++w) {
    Client c = oracle->NewClient(NamenodePolicy::kSticky, "o" + std::to_string(w), 100 + w);
    auto statuses = RunScript(c, w, kOps);
    EXPECT_EQ(statuses, stressed_statuses[static_cast<size_t>(w)])
        << "worker " << w << ": op outcomes must match the oracle";
  }

  // Final namespaces are identical.
  Client sc = stressed->NewClient(NamenodePolicy::kRoundRobin, "verify-s");
  Client oc = oracle->NewClient(NamenodePolicy::kSticky, "verify-o");
  auto stressed_tree = Fingerprint(sc);
  auto oracle_tree = Fingerprint(oc);
  EXPECT_EQ(stressed_tree, oracle_tree);
  EXPECT_FALSE(stressed_tree.empty());
}

TEST_F(HandlerPoolTest, ManyMoreClientsThanHandlersAllSucceed) {
  auto cluster = MakeCluster(/*num_handlers=*/2, /*use_mux=*/true, /*num_namenodes=*/1);
  {
    Client setup = cluster->NewClient(NamenodePolicy::kSticky, "setup");
    ASSERT_TRUE(setup.Mkdirs("/q").ok());
  }
  constexpr int kClients = 8;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&, t] {
      Client c = cluster->NewClient(NamenodePolicy::kSticky, "q" + std::to_string(t), 40 + t);
      for (int i = 0; i < 10; ++i) {
        std::string path = "/q/t" + std::to_string(t) + "_" + std::to_string(i);
        if (!c.WriteFile(path, 1, 8).ok()) failures.fetch_add(1);
        if (!c.Read(path).ok()) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  Client check = cluster->NewClient(NamenodePolicy::kSticky, "check");
  auto listing = check.List("/q");
  ASSERT_TRUE(listing.ok());
  EXPECT_EQ(listing->size(), static_cast<size_t>(kClients * 10));
  // 8 clients funneled through 2 handlers: the pool stayed the bottleneck,
  // never a correctness hazard.
  EXPECT_GE(cluster->namenode(0).handler_pool()->requests_served(),
            static_cast<uint64_t>(kClients * 10));
}

TEST_F(HandlerPoolTest, SubtreeWaitersDoNotStarveTheSubtreeOperation) {
  // Regression: subtree-lock waiters used to back off while HOLDING their
  // handler slot, so with as many waiters as handlers the subtree
  // operation's own phase transactions starved behind them (priority
  // inversion) and every waiter deterministically exhausted its retries.
  // Backoff sleeps now happen on the caller's thread, so waiters drain from
  // the pool, the subtree delete progresses, and the waiters' retries
  // succeed once the lock clears.
  auto cluster = MakeCluster(/*num_handlers=*/2, /*use_mux=*/true, /*num_namenodes=*/1);
  Client setup = cluster->NewClient(NamenodePolicy::kSticky, "setup");
  ASSERT_TRUE(setup.Mkdirs("/d/sub").ok());
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(setup.WriteFile("/d/sub/f" + std::to_string(i), 1, 8).ok());
  }
  std::atomic<bool> deleting{true};
  std::atomic<int> subtree_locked_failures{0};
  std::vector<std::thread> waiters;
  for (int t = 0; t < 2; ++t) {  // as many waiters as handlers
    waiters.emplace_back([&, t] {
      Client c = cluster->NewClient(NamenodePolicy::kSticky, "w" + std::to_string(t), 60 + t);
      while (deleting.load()) {
        auto st = c.Stat("/d/sub/f0").status();
        if (st.code() == hops::StatusCode::kSubtreeLocked) {
          subtree_locked_failures.fetch_add(1);
        }
      }
    });
  }
  Client deleter = cluster->NewClient(NamenodePolicy::kSticky, "del", 99);
  hops::Status del = deleter.Delete("/d", true);
  deleting.store(false);
  for (auto& t : waiters) t.join();
  EXPECT_TRUE(del.ok()) << del.ToString();
  EXPECT_EQ(subtree_locked_failures.load(), 0)
      << "waiters must outwait the delete, not exhaust their retries";
  EXPECT_FALSE(setup.Stat("/d").ok());
}

TEST_F(HandlerPoolTest, ConflictingClientsThroughThePoolKeepInvariants) {
  // Cross-thread conflicts (same directory, crossing renames) through the
  // pool + mux: outcomes are racy but the namespace invariants are not.
  auto cluster = MakeCluster(/*num_handlers=*/3, /*use_mux=*/true, /*num_namenodes=*/2);
  Client setup = cluster->NewClient(NamenodePolicy::kRoundRobin, "setup");
  ASSERT_TRUE(setup.Mkdirs("/war/a").ok());
  ASSERT_TRUE(setup.Mkdirs("/war/b").ok());
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(setup.WriteFile("/war/a/f" + std::to_string(i), 1, 8).ok());
  }
  std::atomic<int> hard_failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      Client c = cluster->NewClient(NamenodePolicy::kRoundRobin,
                                    "w" + std::to_string(t), 300 + t);
      hops::Rng rng(77 + static_cast<uint64_t>(t));
      for (int i = 0; i < 25; ++i) {
        int f = static_cast<int>(rng.Below(6));
        std::string a = "/war/a/f" + std::to_string(f);
        std::string b = "/war/b/f" + std::to_string(f);
        hops::Status st;
        switch (rng.Below(3)) {
          case 0:
            st = c.Rename(a, b);
            break;
          case 1:
            st = c.Rename(b, a);
            break;
          case 2:
            st = c.Read(rng.Chance(0.5) ? a : b).status();
            break;
        }
        // Losing a race (kNotFound / kAlreadyExists) is expected; timeouts,
        // deadlocks or corruption are not.
        if (st.code() == hops::StatusCode::kLockTimeout ||
            st.code() == hops::StatusCode::kInternal) {
          hard_failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(hard_failures.load(), 0);
  EXPECT_EQ(cluster->db().StatsSnapshot().lock_timeouts, 0u);
  // Every file exists in exactly one of the two directories.
  for (int i = 0; i < 6; ++i) {
    int present = 0;
    present += setup.Stat("/war/a/f" + std::to_string(i)).ok() ? 1 : 0;
    present += setup.Stat("/war/b/f" + std::to_string(i)).ok() ? 1 : 0;
    EXPECT_EQ(present, 1) << "file " << i;
  }
}

// Asynchronous metadata commits under the handler pool: many concurrent
// clients whose ops ack at intent durability, each immediately re-reading
// its own write. Read-your-writes must hold (the stat blocks on the covering
// intent, never reports NotFound), and after a drain the namespace matches
// what a synchronous cluster produces for the same ops.
TEST(AsyncCommitConcurrencyTest, ReadYourWritesUnderAsyncAck) {
  MiniClusterOptions options;
  options.db.num_datanodes = 4;
  options.db.replication = 2;
  options.db.lock_wait_timeout = std::chrono::milliseconds(500);
  options.fs.async_metadata_commit = true;
  options.fs.num_handlers = 3;
  options.num_namenodes = 2;
  auto made = MiniCluster::Start(options);
  ASSERT_TRUE(made.ok()) << made.status().ToString();
  auto cluster = *std::move(made);

  {
    Client setup = cluster->NewClient(NamenodePolicy::kSticky, "setup");
    ASSERT_TRUE(setup.Mkdirs("/ryw").ok());
    cluster->DrainIntents();
  }
  constexpr int kThreads = 6;
  constexpr int kFilesEach = 12;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Sticky clients: read-your-writes is a per-namenode guarantee.
      Client c = cluster->NewClient(NamenodePolicy::kSticky, "c" + std::to_string(t),
                                    200 + static_cast<uint64_t>(t));
      const std::string dir = "/ryw/t" + std::to_string(t);
      if (!c.Mkdirs(dir).ok()) failures.fetch_add(1);
      for (int i = 0; i < kFilesEach; ++i) {
        std::string path = dir + "/f" + std::to_string(i);
        if (!c.CreateFile(path).ok()) {
          failures.fetch_add(1);
          continue;
        }
        // The create may be acknowledged-but-unapplied; its own stat and
        // chmod must still observe it.
        auto st = c.Stat(path);
        if (!st.ok() || st->is_dir) failures.fetch_add(1);
        if (!c.SetPermission(path, 0700).ok()) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  cluster->DrainIntents();

  ClusterIntentStats stats = cluster->AggregateIntentStats();
  EXPECT_EQ(stats.log.intents_applied, stats.log.intents_appended);
  EXPECT_EQ(stats.log.apply_failures, 0u);
  EXPECT_GT(stats.log.acked_ops, 0u);

  // The drained namespace is exactly what the synchronous baseline builds.
  MiniClusterOptions sync_options = options;
  sync_options.fs.async_metadata_commit = false;
  auto oracle_made = MiniCluster::Start(sync_options);
  ASSERT_TRUE(oracle_made.ok());
  auto oracle = *std::move(oracle_made);
  Client oc = oracle->NewClient(NamenodePolicy::kSticky, "oracle");
  ASSERT_TRUE(oc.Mkdirs("/ryw").ok());
  for (int t = 0; t < kThreads; ++t) {
    const std::string dir = "/ryw/t" + std::to_string(t);
    ASSERT_TRUE(oc.Mkdirs(dir).ok());
    for (int i = 0; i < kFilesEach; ++i) {
      std::string path = dir + "/f" + std::to_string(i);
      ASSERT_TRUE(oc.CreateFile(path).ok());
      ASSERT_TRUE(oc.SetPermission(path, 0700).ok());
    }
  }
  Client ac = cluster->NewClient(NamenodePolicy::kSticky, "verify");
  for (int t = 0; t < kThreads; ++t) {
    const std::string dir = "/ryw/t" + std::to_string(t);
    auto async_listing = ac.List(dir);
    auto sync_listing = oc.List(dir);
    ASSERT_TRUE(async_listing.ok());
    ASSERT_TRUE(sync_listing.ok());
    ASSERT_EQ(async_listing->size(), sync_listing->size()) << dir;
    for (size_t i = 0; i < async_listing->size(); ++i) {
      EXPECT_EQ((*async_listing)[i].name, (*sync_listing)[i].name);
      EXPECT_EQ((*async_listing)[i].perm, (*sync_listing)[i].perm);
      EXPECT_EQ((*async_listing)[i].is_dir, (*sync_listing)[i].is_dir);
    }
  }
}

}  // namespace
}  // namespace hops::fs
