// The subtree operations protocol (§6): locking, quiescing, parallel batched
// execution, serialization against inode ops and other subtree ops, and --
// crucially -- consistency under namenode crashes (§6.2).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "hopsfs/mini_cluster.h"
#include "hopsfs/partition.h"

namespace hops::fs {
namespace {

using hops::HashBytes;

class SubtreeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MiniClusterOptions options;
    options.db.num_datanodes = 4;
    options.db.replication = 2;
    options.db.lock_wait_timeout = std::chrono::milliseconds(300);
    options.fs.subtree_delete_batch = 8;
    options.fs.subtree_parallelism = 2;
    options.num_namenodes = 3;
    options.num_datanodes = 3;
    auto cluster = MiniCluster::Start(options);
    ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
    cluster_ = *std::move(cluster);
    client_ = std::make_unique<Client>(cluster_->NewClient(NamenodePolicy::kSticky, "c1"));
  }

  // Builds a 2-level tree under `base`: `dirs` subdirectories each holding
  // `files` one-block files, plus `files` files directly under base.
  void BuildTree(const std::string& base, int dirs, int files) {
    ASSERT_TRUE(client_->Mkdirs(base).ok());
    for (int f = 0; f < files; ++f) {
      ASSERT_TRUE(client_->WriteFile(base + "/f" + std::to_string(f), 1, 10).ok());
    }
    for (int d = 0; d < dirs; ++d) {
      std::string dir = base + "/d" + std::to_string(d);
      ASSERT_TRUE(client_->Mkdirs(dir).ok());
      for (int f = 0; f < files; ++f) {
        ASSERT_TRUE(client_->WriteFile(dir + "/f" + std::to_string(f), 1, 10).ok());
      }
    }
  }

  int64_t CountInodes() {
    return static_cast<int64_t>(cluster_->db().TableRowCount(cluster_->schema().inodes));
  }

  std::unique_ptr<MiniCluster> cluster_;
  std::unique_ptr<Client> client_;
};

TEST_F(SubtreeTest, RecursiveDeleteRemovesEverything) {
  BuildTree("/big", 4, 6);
  int64_t before = CountInodes();
  ASSERT_GT(before, 30);
  ASSERT_TRUE(client_->Delete("/big", true).ok());
  EXPECT_EQ(client_->Stat("/big").status().code(), hops::StatusCode::kNotFound);
  EXPECT_EQ(CountInodes(), 1) << "only the root remains";
  EXPECT_EQ(cluster_->db().TableRowCount(cluster_->schema().blocks), 0u);
  EXPECT_EQ(cluster_->db().TableRowCount(cluster_->schema().replicas), 0u);
  EXPECT_EQ(cluster_->db().TableRowCount(cluster_->schema().active_subtree_ops), 0u);
}

TEST_F(SubtreeTest, RenameNonEmptyDirectoryMovesSubtree) {
  BuildTree("/srcdir", 2, 3);
  ASSERT_TRUE(client_->Mkdirs("/elsewhere").ok());
  ASSERT_TRUE(client_->Rename("/srcdir", "/elsewhere/moved").ok());
  EXPECT_EQ(client_->Stat("/srcdir").status().code(), hops::StatusCode::kNotFound);
  EXPECT_TRUE(client_->Stat("/elsewhere/moved/d1/f2").ok());
  auto cs = client_->ContentSummaryOf("/elsewhere/moved");
  ASSERT_TRUE(cs.ok());
  EXPECT_EQ(cs->file_count, 9);
  EXPECT_EQ(cs->dir_count, 3);
  // All subtree locks and registrations are cleared.
  EXPECT_EQ(cluster_->db().TableRowCount(cluster_->schema().active_subtree_ops), 0u);
  EXPECT_TRUE(client_->WriteFile("/elsewhere/moved/new", 1, 1).ok());
}

TEST_F(SubtreeTest, MoveUpdatesResolutionOnAllNamenodes) {
  BuildTree("/from", 1, 2);
  for (int i = 0; i < cluster_->num_namenodes(); ++i) {
    ASSERT_TRUE(cluster_->namenode(i).GetFileInfo("/from/d0/f0").ok());
  }
  ASSERT_TRUE(client_->Rename("/from", "/to").ok());
  for (int i = 0; i < cluster_->num_namenodes(); ++i) {
    EXPECT_TRUE(cluster_->namenode(i).GetFileInfo("/to/d0/f0").ok()) << "nn" << i;
    EXPECT_EQ(cluster_->namenode(i).GetFileInfo("/from/d0/f0").status().code(),
              hops::StatusCode::kNotFound);
  }
}

TEST_F(SubtreeTest, InodeOpWaitsForSubtreeLockRelease) {
  BuildTree("/locked", 2, 4);
  // Manually set a subtree lock owned by an alive namenode (nn1), then watch
  // an inode op from nn0 abort-and-retry until the flag clears.
  Namenode& owner = cluster_->namenode(1);
  Namenode& worker = cluster_->namenode(0);
  {
    auto tx = cluster_->db().Begin();
    auto row = tx->Read(cluster_->schema().inodes, {kRootInode, std::string("locked")},
                        ndb::LockMode::kExclusive, HashBytes("locked"));
    ASSERT_TRUE(row.ok());
    Inode dir = InodeFromRow(*row);
    dir.subtree_lock_owner = owner.id();
    ASSERT_TRUE(tx->Update(cluster_->schema().inodes, ToRow(dir), HashBytes("locked")).ok());
    ASSERT_TRUE(tx->Commit().ok());
  }
  std::atomic<bool> created{false};
  std::thread t([&] {
    if (worker.Create("/locked/newfile", "c9").ok()) created.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(created.load()) << "op must back off while the subtree lock is held";
  {
    auto tx = cluster_->db().Begin();
    auto row = tx->Read(cluster_->schema().inodes, {kRootInode, std::string("locked")},
                        ndb::LockMode::kExclusive, HashBytes("locked"));
    ASSERT_TRUE(row.ok());
    Inode dir = InodeFromRow(*row);
    dir.subtree_lock_owner = kNoSubtreeLock;
    ASSERT_TRUE(tx->Update(cluster_->schema().inodes, ToRow(dir), HashBytes("locked")).ok());
    ASSERT_TRUE(tx->Commit().ok());
  }
  t.join();
  EXPECT_TRUE(created.load()) << "op must proceed once the lock clears";
}

TEST_F(SubtreeTest, DeadOwnerSubtreeLockIsLazilyCleared) {
  BuildTree("/stale", 1, 2);
  Namenode& doomed = cluster_->namenode(2);
  NamenodeId doomed_id = doomed.id();
  {
    auto tx = cluster_->db().Begin();
    auto row = tx->Read(cluster_->schema().inodes, {kRootInode, std::string("stale")},
                        ndb::LockMode::kExclusive, HashBytes("stale"));
    ASSERT_TRUE(row.ok());
    Inode dir = InodeFromRow(*row);
    dir.subtree_lock_owner = doomed_id;
    ASSERT_TRUE(tx->Update(cluster_->schema().inodes, ToRow(dir), HashBytes("stale")).ok());
    ASSERT_TRUE(tx->Commit().ok());
  }
  cluster_->KillNamenode(2);
  // Surviving namenodes advance their views; the dead peer misses rounds.
  cluster_->TickHeartbeats(4);
  // An op from nn0 trips over the stale lock, sees the owner is dead, clears
  // it, and proceeds (§6.2).
  EXPECT_TRUE(cluster_->namenode(0).Create("/stale/after", "c1").ok());
  auto tx = cluster_->db().Begin();
  auto row = tx->Read(cluster_->schema().inodes, {kRootInode, std::string("stale")},
                      ndb::LockMode::kReadCommitted, HashBytes("stale"));
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(InodeFromRow(*row).subtree_lock_owner, kNoSubtreeLock);
}

TEST_F(SubtreeTest, ConcurrentSubtreeOpsOnOverlappingPathsSerialize) {
  BuildTree("/outer/inner", 2, 3);
  std::atomic<int> successes{0};
  std::thread t1([&] {
    if (cluster_->namenode(0).Delete("/outer", true).ok()) successes.fetch_add(1);
  });
  std::thread t2([&] {
    if (cluster_->namenode(1).Delete("/outer/inner", true).ok()) successes.fetch_add(1);
  });
  t1.join();
  t2.join();
  // Both may succeed (serialized) or the inner one may find the tree gone;
  // in every case the namespace must be consistent: /outer fully deleted by
  // at least one op or /outer exists without /outer/inner.
  auto outer = client_->Stat("/outer");
  auto inner = client_->Stat("/outer/inner");
  EXPECT_GE(successes.load(), 1);
  if (outer.ok()) {
    EXPECT_FALSE(inner.ok());
  } else {
    EXPECT_EQ(inner.status().code(), hops::StatusCode::kNotFound);
  }
  EXPECT_EQ(cluster_->db().TableRowCount(cluster_->schema().active_subtree_ops), 0u);
}

TEST_F(SubtreeTest, CrashAfterFlagLeavesRecoverableState) {
  BuildTree("/crashy", 2, 3);
  int64_t before = CountInodes();
  Namenode& doomed = cluster_->namenode(2);
  doomed.set_die_at([](std::string_view point) { return point == "subtree:flagged"; });
  auto st = doomed.Delete("/crashy", true);
  EXPECT_EQ(st.code(), hops::StatusCode::kFailover);
  EXPECT_FALSE(doomed.alive());
  EXPECT_EQ(CountInodes(), before) << "nothing was deleted";
  // Survivors detect the death and clear the stale flag lazily; the retried
  // delete on another namenode succeeds.
  cluster_->TickHeartbeats(4);
  EXPECT_TRUE(cluster_->namenode(0).Delete("/crashy", true).ok());
  EXPECT_EQ(CountInodes(), 1);
}

TEST_F(SubtreeTest, CrashMidDeleteNeverOrphansInodes) {
  BuildTree("/victim", 3, 5);
  Namenode& doomed = cluster_->namenode(2);
  // Die after a few delete batches have committed.
  std::atomic<int> batches{0};
  doomed.set_die_at([&](std::string_view point) {
    return point == "subtree:batch" && batches.fetch_add(1) == 2;
  });
  auto st = doomed.Delete("/victim", true);
  EXPECT_EQ(st.code(), hops::StatusCode::kFailover);

  // Invariant (§6.2): every surviving inode is reachable from the root --
  // post-order deletion means a deleted parent implies deleted children.
  auto tx = cluster_->db().Begin();
  auto rows = tx->FullTableScan(cluster_->schema().inodes);
  ASSERT_TRUE(rows.ok());
  std::map<InodeId, InodeId> parent_of;
  std::set<InodeId> ids;
  for (const auto& row : *rows) {
    Inode n = InodeFromRow(row);
    ids.insert(n.id);
    parent_of[n.id] = n.parent_id;
  }
  for (const auto& [id, parent] : parent_of) {
    if (id == kRootInode) continue;
    EXPECT_TRUE(ids.count(parent)) << "inode " << id << " is orphaned";
  }

  // The client retries the delete on a surviving namenode and finishes the
  // job (paper: "clients will transparently resubmit the operation").
  cluster_->TickHeartbeats(4);
  ASSERT_TRUE(client_->Delete("/victim", true).ok());
  EXPECT_EQ(CountInodes(), 1);
  EXPECT_EQ(cluster_->db().TableRowCount(cluster_->schema().active_subtree_ops), 0u);
}

TEST_F(SubtreeTest, CrashAfterQuiesceOnRenameLeavesTreeIntact) {
  BuildTree("/mv", 2, 2);
  ASSERT_TRUE(client_->Mkdirs("/dest").ok());
  Namenode& doomed = cluster_->namenode(2);
  doomed.set_die_at([](std::string_view point) { return point == "subtree:quiesced"; });
  EXPECT_EQ(doomed.Rename("/mv", "/dest/mv").code(), hops::StatusCode::kFailover);
  // Until failure detection, the stale subtree lock correctly blocks
  // operations under /mv; after the survivors notice the death the lock is
  // lazily cleared and the tree is exactly where it was.
  cluster_->TickHeartbeats(4);
  EXPECT_TRUE(client_->Stat("/mv/d0/f0").ok());
  EXPECT_EQ(client_->Stat("/dest/mv").status().code(), hops::StatusCode::kNotFound);
  ASSERT_TRUE(client_->Rename("/mv", "/dest/mv").ok());
  EXPECT_TRUE(client_->Stat("/dest/mv/d0/f0").ok());
}

TEST_F(SubtreeTest, QuiesceWaitsForInFlightInodeOp) {
  BuildTree("/busy", 1, 2);
  // An in-flight create holds an X lock on its parent; the quiesce scan must
  // wait it out rather than skip it.
  std::atomic<bool> delete_done{false};
  std::thread creator([&] {
    for (int i = 0; i < 50; ++i) {
      (void)client_->WriteFile("/busy/d0/extra" + std::to_string(i), 1, 1);
    }
  });
  std::thread deleter([&] {
    Client c2 = cluster_->NewClient(NamenodePolicy::kSticky, "c2", 9);
    for (int attempt = 0; attempt < 200; ++attempt) {
      if (c2.Delete("/busy", true).ok()) {
        delete_done.store(true);
        break;
      }
    }
  });
  creator.join();
  deleter.join();
  EXPECT_TRUE(delete_done.load());
  // Whatever interleaving happened, nothing may be orphaned or left locked.
  EXPECT_EQ(client_->Stat("/busy").status().code(), hops::StatusCode::kNotFound);
  auto tx = cluster_->db().Begin();
  auto rows = tx->FullTableScan(cluster_->schema().inodes);
  ASSERT_TRUE(rows.ok());
  std::set<InodeId> ids;
  std::map<InodeId, InodeId> parent_of;
  for (const auto& row : *rows) {
    Inode n = InodeFromRow(row);
    ids.insert(n.id);
    parent_of[n.id] = n.parent_id;
  }
  for (const auto& [id, parent] : parent_of) {
    if (id != kRootInode) {
      EXPECT_TRUE(ids.count(parent)) << id << " orphaned";
    }
  }
}

TEST_F(SubtreeTest, SubtreeDeleteOfDeepChain) {
  ASSERT_TRUE(client_->Mkdirs("/c1/c2/c3/c4/c5/c6").ok());
  ASSERT_TRUE(client_->WriteFile("/c1/c2/c3/c4/c5/c6/leaf", 1, 1).ok());
  ASSERT_TRUE(client_->Delete("/c1", true).ok());
  EXPECT_EQ(CountInodes(), 1);
}

}  // namespace
}  // namespace hops::fs
