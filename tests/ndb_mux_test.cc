// The cross-transaction completion mux: N transactions x M in-flight
// windows on one shared completion loop -- deterministic co-flushing of
// windows from different transactions into one overlapped round trip,
// out-of-order completion, per-transaction read-your-writes isolation,
// sticky error delivery to the right transaction, a crossing-lock-order
// case proving no deadlock across transactions, lock-timeout delivery to a
// deferred window, and the accounting invariant that round_trips +
// overlapped_round_trips stays the sync-equivalent trip count (no double
// counting when windows merge).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "ndb/mux.h"

namespace hops::ndb {
namespace {

class NdbMuxTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cluster_ = std::make_unique<Cluster>(ClusterConfig{
        .num_datanodes = 4,
        .replication = 2,
        .partitions_per_table = 8,
        .lock_wait_timeout = std::chrono::milliseconds(400),
        .max_in_flight_batches = 8,
        .use_completion_mux = true,
    });
    Schema s;
    s.table_name = "t";
    s.columns = {{"parent", ColumnType::kInt64},
                 {"name", ColumnType::kString},
                 {"id", ColumnType::kInt64}};
    s.primary_key = {0, 1};
    s.partition_key = {0};
    table_ = *cluster_->CreateTable(s);
  }

  void MustInsert(int64_t parent, const std::string& name, int64_t id) {
    auto tx = cluster_->Begin();
    ASSERT_TRUE(tx->Insert(table_, Row{parent, name, id}).ok());
    ASSERT_TRUE(tx->Commit().ok());
  }

  // Blocks until `n` submissions are parked on the (paused) mux.
  void AwaitQueued(size_t n) {
    for (int i = 0; i < 4000 && cluster_->mux()->QueuedForTesting() < n; ++i) {
      std::this_thread::sleep_for(std::chrono::microseconds(250));
    }
    ASSERT_GE(cluster_->mux()->QueuedForTesting(), n);
  }

  std::unique_ptr<Cluster> cluster_;
  TableId table_ = 0;
};

TEST_F(NdbMuxTest, ClusterRunsASharedMuxByDefaultAndItIsSelectable) {
  EXPECT_NE(cluster_->mux(), nullptr);
  Cluster per_tx(ClusterConfig{.num_datanodes = 2,
                               .replication = 1,
                               .use_completion_mux = false});
  EXPECT_EQ(per_tx.mux(), nullptr) << "the per-transaction path stays selectable";
}

TEST_F(NdbMuxTest, SingleWindowThroughTheMuxKeepsPerTransactionAccounting) {
  for (int64_t p = 0; p < 6; ++p) MustInsert(p, "f", p);
  auto tx = cluster_->Begin();
  ReadBatch b1, b2, b3;
  b1.Get(table_, {int64_t{0}, "f"});
  b2.Get(table_, {int64_t{1}, "f"});
  b3.Get(table_, {int64_t{2}, "f"});
  auto before = cluster_->StatsSnapshot();
  auto p1 = tx->ExecuteAsync(b1);
  auto p2 = tx->ExecuteAsync(b2);
  auto p3 = tx->ExecuteAsync(b3);
  ASSERT_TRUE(p1.Wait().ok());
  ASSERT_TRUE(p2.Wait().ok());
  ASSERT_TRUE(p3.Wait().ok());
  auto after = cluster_->StatsSnapshot();
  EXPECT_EQ(after.round_trips - before.round_trips, 1u);
  EXPECT_EQ(after.overlapped_round_trips - before.overlapped_round_trips, 2u);
  EXPECT_EQ(after.cross_tx_overlapped_round_trips - before.cross_tx_overlapped_round_trips, 0u)
      << "one transaction alone saves nothing across transactions";
  EXPECT_EQ(after.mux_windows - before.mux_windows, 1u);
  EXPECT_EQ((*b3.row(0))[2].i64(), 2);
}

// The tentpole scenario: windows from three concurrent transactions parked
// on the paused loop co-flush in ONE deterministic round = one shared round
// trip, with the saving recorded exactly once (satellite: no double
// counting; totals reconcile with the sync-equivalent trip count).
TEST_F(NdbMuxTest, WindowsFromDifferentTransactionsMergeIntoOneTrip) {
  constexpr int kTx = 3, kBatchesPerWindow = 2;
  for (int64_t p = 0; p < 8; ++p) MustInsert(p, "f", p);
  auto before = cluster_->StatsSnapshot();
  cluster_->mux()->SetPausedForTesting(true);
  std::vector<std::thread> threads;
  std::atomic<int> ok{0};
  for (int t = 0; t < kTx; ++t) {
    threads.emplace_back([&, t] {
      auto tx = cluster_->Begin();
      tx->EnableTrace();
      std::vector<ReadBatch> batches(kBatchesPerWindow);
      std::vector<PendingBatch> pending;
      for (int b = 0; b < kBatchesPerWindow; ++b) {
        batches[static_cast<size_t>(b)].Get(table_, {int64_t{t * 2 + b}, "f"});
        pending.push_back(tx->ExecuteAsync(batches[static_cast<size_t>(b)]));
      }
      bool all = true;
      for (auto& p : pending) all &= p.Wait().ok();  // parks on the paused mux
      for (int b = 0; b < kBatchesPerWindow; ++b) {
        all &= batches[static_cast<size_t>(b)].row(0).has_value() &&
               (*batches[static_cast<size_t>(b)].row(0))[2].i64() == t * 2 + b;
      }
      all &= tx->Commit().ok();
      // Exactly one of the merged windows carried the shared trip; the
      // others' opening access is marked co-scheduled for the DES model.
      int carried = 0, co_scheduled = 0;
      for (const auto& a : tx->trace().accesses) {
        if (a.kind == AccessKind::kCommit) continue;
        carried += a.round_trips;
        co_scheduled += a.co_scheduled ? 1 : 0;
      }
      if (carried + co_scheduled != 1) all = false;
      if (all) ok.fetch_add(1);
    });
  }
  AwaitQueued(kTx);
  cluster_->mux()->SetPausedForTesting(false);
  for (auto& t : threads) t.join();
  EXPECT_EQ(ok.load(), kTx);

  auto after = cluster_->StatsSnapshot();
  const uint64_t sync_equivalent = kTx * kBatchesPerWindow;  // one trip per batch, sync
  EXPECT_EQ(after.round_trips - before.round_trips, 1u)
      << "three transactions' windows co-flushed as ONE shared trip";
  EXPECT_EQ(after.overlapped_round_trips - before.overlapped_round_trips,
            sync_equivalent - 1)
      << "the whole round's saving is recorded exactly once";
  EXPECT_EQ((after.round_trips + after.overlapped_round_trips) -
                (before.round_trips + before.overlapped_round_trips),
            sync_equivalent)
      << "totals reconcile: no double counting when windows merge";
  EXPECT_EQ(after.cross_tx_overlapped_round_trips - before.cross_tx_overlapped_round_trips,
            static_cast<uint64_t>(kTx - 1))
      << "two of the three windows would each have paid their own trip";
  EXPECT_EQ(after.mux_rounds - before.mux_rounds, 1u);
  EXPECT_EQ(after.mux_windows - before.mux_windows, static_cast<uint64_t>(kTx));
}

// N transactions x M windows each, free-running: whatever way the loop
// groups them, every handle resolves correctly and the accounting invariant
// round_trips + overlapped_round_trips == sync-equivalent trips holds.
TEST_F(NdbMuxTest, ManyTransactionsManyWindowsReconcileExactly) {
  constexpr int kTx = 4, kWindows = 3, kBatches = 2;
  for (int64_t p = 0; p < 8; ++p) MustInsert(p, "f", p);
  auto before = cluster_->StatsSnapshot();
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kTx; ++t) {
    threads.emplace_back([&, t] {
      auto tx = cluster_->Begin();
      for (int w = 0; w < kWindows; ++w) {
        std::vector<ReadBatch> batches(kBatches);
        std::vector<PendingBatch> pending;
        for (int b = 0; b < kBatches; ++b) {
          batches[static_cast<size_t>(b)].Get(table_, {int64_t{(t + w + b) % 8}, "f"});
          pending.push_back(tx->ExecuteAsync(batches[static_cast<size_t>(b)]));
        }
        for (auto& p : pending) {
          if (!p.Wait().ok()) failures.fetch_add(1);
        }
        for (const auto& b : batches) {
          if (!b.row(0).has_value()) failures.fetch_add(1);
        }
      }
      if (!tx->Commit().ok()) failures.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  auto after = cluster_->StatsSnapshot();
  const uint64_t sync_equivalent = kTx * kWindows * kBatches;
  EXPECT_EQ((after.round_trips + after.overlapped_round_trips) -
                (before.round_trips + before.overlapped_round_trips),
            sync_equivalent);
  EXPECT_LE(after.round_trips - before.round_trips,
            static_cast<uint64_t>(kTx * kWindows));
  EXPECT_EQ(after.lock_timeouts - before.lock_timeouts, 0u);
  EXPECT_EQ(after.mux_windows - before.mux_windows,
            static_cast<uint64_t>(kTx * kWindows));
}

TEST_F(NdbMuxTest, OutOfOrderCompletionThroughTheSharedLoop) {
  MustInsert(1, "f", 10);
  MustInsert(2, "f", 20);
  auto tx = cluster_->Begin();
  ReadBatch first, second;
  first.Get(table_, {int64_t{1}, "f"});
  second.Get(table_, {int64_t{2}, "f"});
  auto p1 = tx->ExecuteAsync(first);
  auto p2 = tx->ExecuteAsync(second);
  ASSERT_TRUE(p2.Wait().ok());  // waiting on the LATER handle first
  EXPECT_TRUE(p1.done()) << "the earlier window member completed in the same round";
  ASSERT_TRUE(p1.Wait().ok());
  EXPECT_EQ((*first.row(0))[2].i64(), 10);
  EXPECT_EQ((*second.row(0))[2].i64(), 20);
}

// Two transactions co-flushed in one round stay isolated: the reader's
// window must see the committed value, never the writer's staged row -- and
// the writer still reads its own write through the same loop.
TEST_F(NdbMuxTest, ReadYourWritesStaysPerTransactionAcrossMergedWindows) {
  MustInsert(7, "shared", 1);
  auto writer = cluster_->Begin();
  auto reader = cluster_->Begin();

  cluster_->mux()->SetPausedForTesting(true);
  WriteBatch wb;
  wb.Write(table_, Row{int64_t{7}, "shared", int64_t{99}});
  ReadBatch rb;
  rb.Get(table_, {int64_t{7}, "shared"});
  std::thread tw([&] {
    auto p = writer->ExecuteAsync(wb);
    ASSERT_TRUE(p.Wait().ok());
  });
  std::thread tr([&] {
    auto p = reader->ExecuteAsync(rb);
    ASSERT_TRUE(p.Wait().ok());
  });
  AwaitQueued(2);
  cluster_->mux()->SetPausedForTesting(false);
  tw.join();
  tr.join();

  ASSERT_TRUE(rb.row(0).has_value());
  EXPECT_EQ((*rb.row(0))[2].i64(), 1)
      << "the reader must see the committed value, not the writer's staged row";
  // The writer observes its own staged write through a later window.
  ReadBatch own;
  own.Get(table_, {int64_t{7}, "shared"});
  ASSERT_TRUE(writer->ExecuteAsync(own).Wait().ok());
  EXPECT_EQ((*own.row(0))[2].i64(), 99);
  ASSERT_TRUE(writer->Commit().ok());
  // After the writer's commit the change is visible to everyone.
  ReadBatch again;
  again.Get(table_, {int64_t{7}, "shared"});
  ASSERT_TRUE(reader->ExecuteAsync(again).Wait().ok());
  EXPECT_EQ((*again.row(0))[2].i64(), 99);
  ASSERT_TRUE(reader->Commit().ok());
}

// A failing window poisons only its own transaction, even when it flushed
// in the same round as a healthy one.
TEST_F(NdbMuxTest, StickyErrorsDeliverToTheRightTransaction) {
  MustInsert(3, "dup", 1);
  MustInsert(4, "f", 4);
  auto bad_tx = cluster_->Begin();
  auto good_tx = cluster_->Begin();

  cluster_->mux()->SetPausedForTesting(true);
  WriteBatch bad;
  bad.Insert(table_, Row{int64_t{3}, "dup", int64_t{9}});  // collides
  ReadBatch good;
  good.Get(table_, {int64_t{4}, "f"});
  hops::Status bad_st, good_st;
  std::thread tb([&] { bad_st = bad_tx->ExecuteAsync(bad).Wait(); });
  std::thread tg([&] { good_st = good_tx->ExecuteAsync(good).Wait(); });
  AwaitQueued(2);
  cluster_->mux()->SetPausedForTesting(false);
  tb.join();
  tg.join();

  EXPECT_EQ(bad_st.code(), hops::StatusCode::kAlreadyExists);
  EXPECT_TRUE(good_st.ok());
  EXPECT_EQ((*good.row(0))[2].i64(), 4);
  // The failure stays sticky on the failing transaction only.
  EXPECT_EQ(bad_tx->Commit().code(), hops::StatusCode::kAlreadyExists);
  EXPECT_TRUE(good_tx->Commit().ok());
}

// Crossing lock order ACROSS transactions: two windows wanting the same
// X-locked rows in opposite staging orders land in one round. The combined
// global-order pass grants one window; the other defers (its fresh locks
// handed back), retries, and completes after the winner commits -- no
// deadlock, no lock timeout.
TEST_F(NdbMuxTest, CrossingLockOrderAcrossTransactionsDoesNotDeadlock) {
  constexpr int kRows = 8;
  for (int64_t i = 0; i < kRows; ++i) MustInsert(i, "f", i);
  auto before = cluster_->StatsSnapshot();
  std::atomic<int> failures{0};
  cluster_->mux()->SetPausedForTesting(true);
  auto worker = [&](bool reversed) {
    auto tx = cluster_->Begin();
    std::vector<ReadBatch> batches(2);
    for (int b = 0; b < 2; ++b) {
      for (int k = 0; k < kRows / 2; ++k) {
        int64_t row = b * (kRows / 2) + k;
        if (reversed) row = kRows - 1 - row;
        batches[static_cast<size_t>(b)].Get(table_, {row, "f"}, LockMode::kExclusive);
      }
    }
    std::vector<PendingBatch> pending;
    for (auto& b : batches) pending.push_back(tx->ExecuteAsync(b));
    bool ok = true;
    for (auto& p : pending) ok &= p.Wait().ok();
    if (!ok || !tx->Commit().ok()) failures.fetch_add(1);
  };
  std::thread t1(worker, false);
  std::thread t2(worker, true);
  AwaitQueued(2);
  cluster_->mux()->SetPausedForTesting(false);
  t1.join();
  t2.join();
  EXPECT_EQ(failures.load(), 0) << "crossing windows must serialize, not deadlock";
  auto after = cluster_->StatsSnapshot();
  EXPECT_EQ(after.lock_timeouts - before.lock_timeouts, 0u);
  // Free-running repetition for good measure.
  constexpr int kIters = 20;
  std::thread r1([&] {
    for (int i = 0; i < kIters; ++i) worker(false);
  });
  std::thread r2([&] {
    for (int i = 0; i < kIters; ++i) worker(true);
  });
  r1.join();
  r2.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(cluster_->StatsSnapshot().lock_timeouts - before.lock_timeouts, 0u);
}

// A window deferred on a row whose holder never commits times out exactly
// like a blocked per-transaction acquisition: kLockTimeout through the
// handle, the transaction aborted, the holder unharmed.
TEST_F(NdbMuxTest, DeferredWindowTimesOutAndAbortsItsOwnTransaction) {
  MustInsert(5, "held", 1);
  auto holder = cluster_->Begin();
  ASSERT_TRUE(holder->Read(table_, {int64_t{5}, "held"}, LockMode::kExclusive).ok());

  auto before = cluster_->StatsSnapshot();
  auto blocked = cluster_->Begin();
  ReadBatch rb;
  rb.Get(table_, {int64_t{5}, "held"}, LockMode::kExclusive);
  hops::Status st = blocked->ExecuteAsync(rb).Wait();
  EXPECT_EQ(st.code(), hops::StatusCode::kLockTimeout);
  EXPECT_FALSE(blocked->active());
  EXPECT_EQ(cluster_->StatsSnapshot().lock_timeouts - before.lock_timeouts, 1u);
  // The holder is unaffected and can still commit.
  EXPECT_TRUE(holder->Commit().ok());
}

// A deferred window must hold nothing it did not already hold: a
// shared->exclusive upgrade taken in the combined pass is atomically stepped
// back down when the window defers, so other shared readers are not blocked
// behind a window that is itself waiting.
TEST_F(NdbMuxTest, DeferredWindowRollsBackItsSharedToExclusiveUpgrade) {
  // Same parent => same partition; "aa" < "zz" in the encoded-key order, so
  // the combined pass upgrades row "aa" BEFORE hitting the contended "zz".
  MustInsert(9, "aa", 1);
  MustInsert(9, "zz", 2);
  auto holder = cluster_->Begin();  // pins "zz" exclusively, no commit yet
  ASSERT_TRUE(holder->Read(table_, {int64_t{9}, "zz"}, LockMode::kExclusive).ok());

  auto upgrader = cluster_->Begin();
  ASSERT_TRUE(upgrader->Read(table_, {int64_t{9}, "aa"}, LockMode::kShared).ok());
  ReadBatch window;
  window.Get(table_, {int64_t{9}, "aa"}, LockMode::kExclusive);  // upgrade
  window.Get(table_, {int64_t{9}, "zz"}, LockMode::kExclusive);  // contended
  hops::Status window_st;
  std::thread tw([&] { window_st = upgrader->ExecuteAsync(window).Wait(); });
  // Let the window enter the loop and defer (it retries every
  // mux_retry_interval; any of those attempts upgrades then rolls back).
  std::this_thread::sleep_for(std::chrono::milliseconds(30));

  // A third transaction must still get the SHARED lock on "aa" immediately;
  // a retained upgrade would park it until the lock-wait timeout.
  auto reader = cluster_->Begin();
  auto row = reader->Read(table_, {int64_t{9}, "aa"}, LockMode::kShared);
  ASSERT_TRUE(row.ok()) << "deferred window must not retain its upgrade: "
                        << row.status().ToString();
  EXPECT_EQ((*row)[2].i64(), 1);
  ASSERT_TRUE(reader->Commit().ok());

  ASSERT_TRUE(holder->Commit().ok());  // releases "zz"; the window completes
  tw.join();
  EXPECT_TRUE(window_st.ok()) << window_st.ToString();
  ASSERT_TRUE(upgrader->Commit().ok());
  EXPECT_EQ(cluster_->StatsSnapshot().lock_timeouts, 0u);
}

// Locking scans and staged-order windows bypass the shared loop (their lock
// waits must stay on the submitting thread) but still work alongside it.
TEST_F(NdbMuxTest, LockingScanWindowsFlushOnTheSubmittingThread) {
  for (int64_t i = 0; i < 4; ++i) MustInsert(6, "s" + std::to_string(i), i);
  auto before = cluster_->StatsSnapshot();
  auto tx = cluster_->Begin();
  ReadBatch scan;
  ScanOptions opts;
  opts.lock = LockMode::kShared;
  scan.Scan(table_, {int64_t{6}}, opts);
  ASSERT_TRUE(tx->ExecuteAsync(scan).Wait().ok());
  EXPECT_EQ(scan.rows(0).size(), 4u);
  ASSERT_TRUE(tx->Commit().ok());
  auto after = cluster_->StatsSnapshot();
  EXPECT_EQ(after.mux_windows - before.mux_windows, 0u)
      << "a locking-scan window must not enter the shared loop";
}

// Adaptive gather (ClusterConfig::mux_adaptive_gather): after a round that
// merged windows from several transactions, the loop holds the door open up
// to mux_gather_delay for trailing submissions, folding them into the same
// shared trip instead of paying a fresh round.
TEST_F(NdbMuxTest, AdaptiveGatherHoldsTheDoorForTrailingWindows) {
  Cluster cluster(ClusterConfig{
      .num_datanodes = 4,
      .replication = 2,
      .partitions_per_table = 8,
      .lock_wait_timeout = std::chrono::milliseconds(400),
      .use_completion_mux = true,
      .mux_adaptive_gather = true,
      .mux_gather_delay = std::chrono::milliseconds(300),
  });
  Schema s;
  s.table_name = "t";
  s.columns = {{"parent", ColumnType::kInt64},
               {"name", ColumnType::kString},
               {"id", ColumnType::kInt64}};
  s.primary_key = {0, 1};
  s.partition_key = {0};
  TableId table = *cluster.CreateTable(s);
  for (int64_t p = 0; p < 4; ++p) {
    auto tx = cluster.Begin();
    ASSERT_TRUE(tx->Insert(table, Row{p, "f", p}).ok());
    ASSERT_TRUE(tx->Commit().ok());
  }
  auto submit_one = [&](int64_t key) {
    auto tx = cluster.Begin();
    ReadBatch b;
    b.Get(table, {key, "f"});
    ASSERT_TRUE(tx->ExecuteAsync(b).Wait().ok());
    ASSERT_TRUE(tx->Commit().ok());
  };
  // Round 1, staged via the pause hook: two transactions' windows co-flush,
  // arming the loop's merged-recently signal. No gather happens yet (the
  // signal was off when the round started).
  cluster.mux()->SetPausedForTesting(true);
  std::thread t1([&] { submit_one(0); });
  std::thread t2([&] { submit_one(1); });
  for (int i = 0; i < 4000 && cluster.mux()->QueuedForTesting() < 2; ++i) {
    std::this_thread::sleep_for(std::chrono::microseconds(250));
  }
  ASSERT_GE(cluster.mux()->QueuedForTesting(), 2u);
  cluster.mux()->SetPausedForTesting(false);
  t1.join();
  t2.join();
  // Round 2: one window arrives, the loop gathers, and a second window
  // submitted well inside the gather delay rides the same shared trip.
  auto before = cluster.StatsSnapshot();
  std::thread t3([&] { submit_one(2); });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  std::thread t4([&] { submit_one(3); });
  t3.join();
  t4.join();
  auto after = cluster.StatsSnapshot();
  EXPECT_GE(after.mux_gather_waits - before.mux_gather_waits, 1u)
      << "the loop must have held the door after the merged round";
  EXPECT_GE(after.mux_gathered_windows - before.mux_gathered_windows, 1u)
      << "the trailing window must have arrived during the gather wait";
  EXPECT_EQ(after.cross_tx_overlapped_round_trips - before.cross_tx_overlapped_round_trips,
            1u)
      << "the gathered window's trip merged into the shared flush";
  EXPECT_EQ((after.round_trips + after.overlapped_round_trips) -
                (before.round_trips + before.overlapped_round_trips),
            2u)
      << "accounting invariant: sync-equivalent trips, gathered or not";
}

TEST_F(NdbMuxTest, AdaptiveGatherIsOffByDefault) {
  for (int64_t p = 0; p < 4; ++p) MustInsert(p, "f", p);
  // Force a merged round (which would arm the gather if it were enabled)...
  cluster_->mux()->SetPausedForTesting(true);
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&, t] {
      auto tx = cluster_->Begin();
      ReadBatch b;
      b.Get(table_, {int64_t{t}, "f"});
      ASSERT_TRUE(tx->ExecuteAsync(b).Wait().ok());
      ASSERT_TRUE(tx->Commit().ok());
    });
  }
  AwaitQueued(2);
  cluster_->mux()->SetPausedForTesting(false);
  for (auto& t : threads) t.join();
  // ...then another window: with the default config the loop never waits.
  auto tx = cluster_->Begin();
  ReadBatch b;
  b.Get(table_, {int64_t{2}, "f"});
  ASSERT_TRUE(tx->ExecuteAsync(b).Wait().ok());
  ASSERT_TRUE(tx->Commit().ok());
  auto stats = cluster_->StatsSnapshot();
  EXPECT_EQ(stats.mux_gather_waits, 0u);
  EXPECT_EQ(stats.mux_gathered_windows, 0u);
}

}  // namespace
}  // namespace hops::ndb
