// The async pipelined batch engine: ExecuteAsync/PendingBatch semantics --
// deferred execution, overlapped round-trip windows, the in-flight limit,
// out-of-order completion delivery, read-your-writes across pipelined
// batches, error delivery through handles, and deadlock freedom when two
// transactions each hold several batches in flight.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "ndb/cluster.h"

namespace hops::ndb {
namespace {

class NdbAsyncTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cluster_ = std::make_unique<Cluster>(ClusterConfig{
        .num_datanodes = 4,
        .replication = 2,
        .partitions_per_table = 8,
        .lock_wait_timeout = std::chrono::milliseconds(400),
        .max_in_flight_batches = 4,
    });
    Schema s;
    s.table_name = "t";
    s.columns = {{"parent", ColumnType::kInt64},
                 {"name", ColumnType::kString},
                 {"id", ColumnType::kInt64}};
    s.primary_key = {0, 1};
    s.partition_key = {0};
    table_ = *cluster_->CreateTable(s);
  }

  void MustInsert(int64_t parent, const std::string& name, int64_t id) {
    auto tx = cluster_->Begin();
    ASSERT_TRUE(tx->Insert(table_, Row{parent, name, id}).ok());
    ASSERT_TRUE(tx->Commit().ok());
  }

  static ReadBatch MakeGets(TableId table, std::initializer_list<int64_t> parents,
                            LockMode mode = LockMode::kReadCommitted) {
    ReadBatch b;
    for (int64_t p : parents) b.Get(table, {p, "f"}, mode);
    return b;
  }

  std::unique_ptr<Cluster> cluster_;
  TableId table_ = 0;
};

TEST_F(NdbAsyncTest, WindowFlushesAsOneOverlappedRoundTrip) {
  for (int64_t p = 0; p < 8; ++p) MustInsert(p, "f", p);
  auto tx = cluster_->Begin();
  tx->EnableTrace();
  ReadBatch b1 = MakeGets(table_, {0, 1});
  ReadBatch b2 = MakeGets(table_, {2, 3});
  ReadBatch b3 = MakeGets(table_, {4, 5});
  auto before = cluster_->StatsSnapshot();
  auto p1 = tx->ExecuteAsync(b1);
  auto p2 = tx->ExecuteAsync(b2);
  auto p3 = tx->ExecuteAsync(b3);
  // Nothing executed yet: preparation is free and results are not ready.
  EXPECT_EQ(tx->InFlightBatches(), 3u);
  EXPECT_FALSE(p1.done());
  EXPECT_EQ(cluster_->StatsSnapshot().round_trips, before.round_trips);

  ASSERT_TRUE(p1.Wait().ok());  // flush point: the whole window executes
  EXPECT_EQ(tx->InFlightBatches(), 0u);
  EXPECT_TRUE(p2.done());
  EXPECT_TRUE(p3.done());
  ASSERT_TRUE(p2.Wait().ok());
  ASSERT_TRUE(p3.Wait().ok());

  auto after = cluster_->StatsSnapshot();
  EXPECT_EQ(after.round_trips - before.round_trips, 1u)
      << "three batches in flight cost ONE overlapped trip, not three";
  EXPECT_EQ(after.overlapped_round_trips - before.overlapped_round_trips, 2u)
      << "the sync path would have paid two more trips";
  EXPECT_EQ(after.batch_reads - before.batch_reads, 3u);
  for (size_t slot = 0; slot < 2; ++slot) {
    EXPECT_TRUE(b1.row(slot).has_value());
    EXPECT_TRUE(b2.row(slot).has_value());
    EXPECT_TRUE(b3.row(slot).has_value());
  }
  EXPECT_EQ((*b3.row(1))[2].i64(), 5);
}

TEST_F(NdbAsyncTest, InFlightLimitForcesAFlush) {
  for (int64_t p = 0; p < 8; ++p) MustInsert(p, "f", p);
  auto tx = cluster_->Begin();
  std::vector<ReadBatch> batches;
  batches.reserve(5);
  std::vector<PendingBatch> pending;
  auto before = cluster_->StatsSnapshot();
  for (int64_t i = 0; i < 5; ++i) {
    batches.push_back(MakeGets(table_, {i}));
    pending.push_back(tx->ExecuteAsync(batches.back()));
    EXPECT_LE(tx->InFlightBatches(), 4u) << "the configured window is never exceeded";
  }
  // The 4th prepare filled the window and flushed it; the 5th started a new
  // window.
  EXPECT_EQ(tx->InFlightBatches(), 1u);
  EXPECT_TRUE(pending[3].done());
  EXPECT_FALSE(pending[4].done());
  EXPECT_EQ(cluster_->StatsSnapshot().round_trips - before.round_trips, 1u);
  for (auto& p : pending) ASSERT_TRUE(p.Wait().ok());
  EXPECT_EQ(cluster_->StatsSnapshot().round_trips - before.round_trips, 2u);
}

TEST_F(NdbAsyncTest, OutOfOrderCompletionDelivery) {
  MustInsert(1, "f", 10);
  MustInsert(2, "f", 20);
  auto tx = cluster_->Begin();
  ReadBatch first = MakeGets(table_, {1});
  ReadBatch second = MakeGets(table_, {2});
  auto p1 = tx->ExecuteAsync(first);
  auto p2 = tx->ExecuteAsync(second);
  // Waiting on the LATER batch first still delivers both results correctly.
  ASSERT_TRUE(p2.Wait().ok());
  ASSERT_TRUE(second.row(0).has_value());
  EXPECT_EQ((*second.row(0))[2].i64(), 20);
  EXPECT_TRUE(p1.done()) << "the earlier batch completed in the same flush";
  ASSERT_TRUE(p1.Wait().ok());
  ASSERT_TRUE(first.row(0).has_value());
  EXPECT_EQ((*first.row(0))[2].i64(), 10);
  // Wait is idempotent.
  EXPECT_TRUE(p1.Wait().ok());
  EXPECT_TRUE(p2.Wait().ok());
}

TEST_F(NdbAsyncTest, ReadYourWritesAcrossPipelinedBatches) {
  MustInsert(1, "old", 1);
  auto tx = cluster_->Begin();
  WriteBatch writes;
  writes.Insert(table_, Row{int64_t{1}, "new", int64_t{42}});
  writes.Delete(table_, {int64_t{1}, "old"});
  auto wp = tx->ExecuteAsync(writes);
  ReadBatch reads;
  size_t fresh = reads.Get(table_, {int64_t{1}, "new"});
  size_t gone = reads.Get(table_, {int64_t{1}, "old"});
  size_t scan = reads.Scan(table_, {int64_t{1}});
  auto rp = tx->ExecuteAsync(reads);
  // One flush runs both: the read batch, prepared after the write batch,
  // observes its staged rows.
  ASSERT_TRUE(rp.Wait().ok());
  ASSERT_TRUE(wp.Wait().ok());
  ASSERT_TRUE(reads.row(fresh).has_value()) << "staged insert visible downstream";
  EXPECT_EQ((*reads.row(fresh))[2].i64(), 42);
  EXPECT_FALSE(reads.row(gone).has_value()) << "staged delete hides the row";
  EXPECT_EQ(reads.rows(scan).size(), 1u);
  ASSERT_TRUE(tx->Commit().ok());
}

TEST_F(NdbAsyncTest, ErrorsDeliverThroughHandles) {
  MustInsert(1, "dup", 1);
  auto tx = cluster_->Begin();
  ReadBatch ok_reads = MakeGets(table_, {1});
  auto p_ok = tx->ExecuteAsync(ok_reads);
  WriteBatch bad;
  bad.Insert(table_, Row{int64_t{1}, "dup", int64_t{9}});  // will collide
  auto p_bad = tx->ExecuteAsync(bad);
  ReadBatch after = MakeGets(table_, {1});
  auto p_after = tx->ExecuteAsync(after);

  // The batch prepared before the failure completed; the failing batch
  // reports its own cause; the one behind it reports the aborted window.
  EXPECT_TRUE(p_ok.Wait().ok());
  EXPECT_EQ(p_bad.Wait().code(), hops::StatusCode::kAlreadyExists);
  EXPECT_EQ(p_after.Wait().code(), hops::StatusCode::kTxAborted);
  // The failed batch is partially staged, so the transaction refuses to
  // commit even though the failure was already observed.
  EXPECT_TRUE(tx->active());
  EXPECT_EQ(tx->Commit().code(), hops::StatusCode::kAlreadyExists);
  EXPECT_FALSE(tx->active());
}

TEST_F(NdbAsyncTest, CommitSurfacesAnUnobservedBatchFailure) {
  MustInsert(1, "dup", 1);
  auto tx = cluster_->Begin();
  WriteBatch bad;
  bad.Insert(table_, Row{int64_t{1}, "dup", int64_t{9}});
  auto p_bad = tx->ExecuteAsync(bad);
  // The caller commits without ever Waiting: the commit-point flush runs the
  // window, surfaces the batch's own error, and aborts the transaction.
  hops::Status st = tx->Commit();
  EXPECT_EQ(st.code(), hops::StatusCode::kAlreadyExists);
  EXPECT_FALSE(tx->active());
  EXPECT_EQ(p_bad.Wait().code(), hops::StatusCode::kAlreadyExists);
}

TEST_F(NdbAsyncTest, CommitIsAFlushPoint) {
  auto tx = cluster_->Begin();
  WriteBatch writes;
  writes.Insert(table_, Row{int64_t{3}, "via-commit", int64_t{7}});
  auto wp = tx->ExecuteAsync(writes);
  EXPECT_FALSE(wp.done());
  ASSERT_TRUE(tx->Commit().ok()) << "commit flushes the window first";
  EXPECT_TRUE(wp.done());
  EXPECT_TRUE(wp.Wait().ok());
  auto check = cluster_->Begin();
  EXPECT_TRUE(check->Read(table_, {int64_t{3}, "via-commit"}, LockMode::kReadCommitted).ok());
}

TEST_F(NdbAsyncTest, SyncOperationsFlushThePipeline) {
  auto tx = cluster_->Begin();
  WriteBatch writes;
  writes.Insert(table_, Row{int64_t{4}, "pipelined", int64_t{1}});
  auto wp = tx->ExecuteAsync(writes);
  // A per-row read is a flush point and observes the batch's staged row.
  auto row = tx->Read(table_, {int64_t{4}, "pipelined"}, LockMode::kReadCommitted);
  ASSERT_TRUE(row.ok());
  EXPECT_TRUE(wp.done());
  ASSERT_TRUE(tx->Commit().ok());
}

TEST_F(NdbAsyncTest, AbortFailsInFlightBatches) {
  auto tx = cluster_->Begin();
  ReadBatch reads = MakeGets(table_, {1});
  auto p = tx->ExecuteAsync(reads);
  tx->Abort();
  EXPECT_EQ(p.Wait().code(), hops::StatusCode::kTxAborted);
}

// The acceptance scenario: two transactions, each holding several batches in
// flight whose combined lock sets collide in opposite staging orders. The
// flush acquires every window's locks in the global (table, partition, key)
// order ACROSS batches, so the windows queue behind each other instead of
// deadlocking into lock-wait timeouts.
TEST_F(NdbAsyncTest, CrossingInFlightWindowsDoNotDeadlock) {
  constexpr int kRows = 12;
  constexpr int kIters = 25;
  for (int64_t i = 0; i < kRows; ++i) MustInsert(i, "f", i);
  std::atomic<int> failures{0};
  auto worker = [&](bool reversed) {
    for (int it = 0; it < kIters; ++it) {
      auto tx = cluster_->Begin();
      // Three in-flight batches of four X-locked rows each; `reversed`
      // flips both the per-batch staging order and the batch order, so the
      // two transactions want the same rows in opposite sequences.
      std::vector<ReadBatch> batches(3);
      for (int b = 0; b < 3; ++b) {
        for (int k = 0; k < 4; ++k) {
          int64_t row = b * 4 + k;
          if (reversed) row = kRows - 1 - row;
          batches[static_cast<size_t>(b)].Get(table_, {row, "f"}, LockMode::kExclusive);
        }
      }
      std::vector<PendingBatch> pending;
      for (auto& b : batches) pending.push_back(tx->ExecuteAsync(b));
      bool ok = true;
      for (auto& p : pending) ok &= p.Wait().ok();
      if (!ok || !tx->Commit().ok()) failures++;
    }
  };
  std::thread t1(worker, false);
  std::thread t2(worker, true);
  t1.join();
  t2.join();
  EXPECT_EQ(failures.load(), 0) << "crossing windows must serialize, not time out";
  EXPECT_EQ(cluster_->StatsSnapshot().lock_timeouts, 0u);
}

TEST_F(NdbAsyncTest, DoubleExecuteIsRejectedThroughTheAsyncPath) {
  MustInsert(1, "f", 1);
  auto tx = cluster_->Begin();
  ReadBatch b = MakeGets(table_, {1});
  ASSERT_TRUE(tx->ExecuteAsync(b).Wait().ok());
  EXPECT_EQ(tx->ExecuteAsync(b).Wait().code(), hops::StatusCode::kInvalidArgument);
}

TEST_F(NdbAsyncTest, EmptyBatchCompletesImmediately) {
  auto tx = cluster_->Begin();
  ReadBatch empty;
  auto p = tx->ExecuteAsync(empty);
  EXPECT_TRUE(p.done());
  EXPECT_TRUE(p.Wait().ok());
  EXPECT_EQ(tx->InFlightBatches(), 0u);
}

}  // namespace
}  // namespace hops::ndb
