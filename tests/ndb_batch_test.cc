// The batched read/write path: partition grouping and single-round-trip
// cost accounting, read-your-writes inside a batch, global lock ordering
// (deadlock freedom under concurrent batches), and failure behavior when a
// partition's whole node group is down.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "ndb/cluster.h"

namespace hops::ndb {
namespace {

class NdbBatchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cluster_ = std::make_unique<Cluster>(ClusterConfig{
        .num_datanodes = 4,
        .replication = 2,
        .partitions_per_table = 8,
        .lock_wait_timeout = std::chrono::milliseconds(400),
    });
    Schema s;
    s.table_name = "inodes";
    s.columns = {{"parent", ColumnType::kInt64},
                 {"name", ColumnType::kString},
                 {"id", ColumnType::kInt64}};
    s.primary_key = {0, 1};
    s.partition_key = {0};
    table_ = *cluster_->CreateTable(s);
    Schema s2;
    s2.table_name = "blocks";
    s2.columns = {{"inode", ColumnType::kInt64}, {"block", ColumnType::kInt64}};
    s2.primary_key = {0, 1};
    s2.partition_key = {0};
    blocks_ = *cluster_->CreateTable(s2);
  }

  void MustInsert(int64_t parent, const std::string& name, int64_t id) {
    auto tx = cluster_->Begin();
    ASSERT_TRUE(tx->Insert(table_, Row{parent, name, id}).ok());
    ASSERT_TRUE(tx->Commit().ok());
  }

  std::unique_ptr<Cluster> cluster_;
  TableId table_ = 0;
  TableId blocks_ = 0;
};

TEST_F(NdbBatchTest, GroupsKeysByPartitionInOneRoundTrip) {
  for (int64_t p = 0; p < 16; ++p) MustInsert(p, "f", p * 10);
  auto tx = cluster_->Begin();
  tx->EnableTrace();
  std::vector<Key> keys;
  for (int64_t p = 0; p < 16; ++p) keys.push_back({p, "f"});
  auto before = cluster_->StatsSnapshot();
  auto res = tx->BatchRead(table_, keys, LockMode::kReadCommitted);
  ASSERT_TRUE(res.ok());
  auto after = cluster_->StatsSnapshot();

  // One batch, one simulated round trip, however many keys.
  EXPECT_EQ(after.batch_reads - before.batch_reads, 1u);
  EXPECT_EQ(after.round_trips - before.round_trips, 1u);
  EXPECT_EQ(tx->trace().TotalRoundTrips(), 1u);
  EXPECT_EQ(tx->trace().TotalRows(), 16u);
  // Keys collapse onto their partitions: at most one PartTouch per partition
  // and at most partitions_per_table of them for 16 distinct parents.
  ASSERT_EQ(tx->trace().accesses.size(), 1u);
  const Access& a = tx->trace().accesses[0];
  EXPECT_EQ(a.kind, AccessKind::kBatchRead);
  EXPECT_LE(a.parts.size(), 8u);
  std::set<uint32_t> parts;
  uint32_t rows = 0;
  for (const auto& pt : a.parts) {
    EXPECT_TRUE(parts.insert(pt.partition).second) << "partition listed twice";
    rows += pt.rows;
  }
  EXPECT_EQ(rows, 16u);
}

TEST_F(NdbBatchTest, MixedGetAndScanBatchIsOneRoundTrip) {
  MustInsert(1, "a", 10);
  {
    auto tx = cluster_->Begin();
    ASSERT_TRUE(tx->Insert(blocks_, Row{int64_t{10}, int64_t{1}}).ok());
    ASSERT_TRUE(tx->Insert(blocks_, Row{int64_t{10}, int64_t{2}}).ok());
    ASSERT_TRUE(tx->Commit().ok());
  }
  auto tx = cluster_->Begin();
  tx->EnableTrace();
  ReadBatch batch;
  size_t get_slot = batch.Get(table_, {int64_t{1}, "a"});
  size_t scan_slot = batch.Scan(blocks_, {int64_t{10}});
  ASSERT_TRUE(tx->Execute(batch).ok());
  ASSERT_TRUE(batch.row(get_slot).has_value());
  EXPECT_EQ((*batch.row(get_slot))[2].i64(), 10);
  EXPECT_EQ(batch.rows(scan_slot).size(), 2u);
  EXPECT_EQ(tx->trace().TotalRoundTrips(), 1u)
      << "a cross-table batch still costs one round trip";
}

TEST_F(NdbBatchTest, BatchSeesOwnStagedWrites) {
  MustInsert(1, "keep", 1);
  MustInsert(1, "gone", 2);
  auto tx = cluster_->Begin();
  ASSERT_TRUE(tx->Insert(table_, Row{int64_t{1}, "new", int64_t{3}}).ok());
  ASSERT_TRUE(tx->Delete(table_, {int64_t{1}, "gone"}).ok());
  ReadBatch batch;
  size_t keep = batch.Get(table_, {int64_t{1}, "keep"});
  size_t gone = batch.Get(table_, {int64_t{1}, "gone"});
  size_t fresh = batch.Get(table_, {int64_t{1}, "new"});
  size_t scan = batch.Scan(table_, {int64_t{1}});
  ASSERT_TRUE(tx->Execute(batch).ok());
  EXPECT_TRUE(batch.row(keep).has_value());
  EXPECT_FALSE(batch.row(gone).has_value()) << "own staged delete must hide the row";
  ASSERT_TRUE(batch.row(fresh).has_value()) << "own staged insert must be visible";
  EXPECT_EQ((*batch.row(fresh))[2].i64(), 3);
  EXPECT_EQ(batch.rows(scan).size(), 2u) << "scan overlays the staged writes";
}

TEST_F(NdbBatchTest, ExecuteTwiceIsRejected) {
  MustInsert(1, "a", 10);
  auto tx = cluster_->Begin();
  ReadBatch batch;
  batch.Get(table_, {int64_t{1}, "a"});
  ASSERT_TRUE(tx->Execute(batch).ok());
  EXPECT_EQ(tx->Execute(batch).code(), hops::StatusCode::kInvalidArgument);
}

TEST_F(NdbBatchTest, ConcurrentOpposedBatchesDoNotDeadlock) {
  // Two transactions lock the same 8 rows, staged in opposite orders. With
  // per-op acquisition this interleaving deadlocks (resolved only by the
  // lock-wait timeout); the batch's global (table, partition, key) order
  // makes one batch simply queue behind the other.
  constexpr int kRows = 8;
  constexpr int kIters = 25;
  for (int64_t i = 0; i < kRows; ++i) MustInsert(i, "r", i);
  std::atomic<int> failures{0};
  auto worker = [&](bool reversed) {
    for (int it = 0; it < kIters; ++it) {
      auto tx = cluster_->Begin();
      std::vector<Key> keys;
      for (int64_t i = 0; i < kRows; ++i) {
        int64_t p = reversed ? kRows - 1 - i : i;
        keys.push_back({p, "r"});
      }
      auto res = tx->BatchRead(table_, keys, LockMode::kExclusive);
      if (!res.ok() || !tx->Commit().ok()) failures++;
    }
  };
  std::thread t1(worker, false);
  std::thread t2(worker, true);
  t1.join();
  t2.join();
  EXPECT_EQ(failures.load(), 0) << "opposed batches should serialize, not time out";
  EXPECT_EQ(cluster_->StatsSnapshot().lock_timeouts, 0u);
}

TEST_F(NdbBatchTest, UnlockRowReleasesADiscardedBatchLock) {
  MustInsert(1, "a", 10);
  auto tx = cluster_->Begin();
  ReadBatch batch;
  batch.Get(table_, {int64_t{1}, "a"}, LockMode::kExclusive);
  ASSERT_TRUE(tx->Execute(batch).ok());
  // Caller decides the value is stale and discards it.
  tx->UnlockRow(table_, {int64_t{1}, "a"});
  // Another transaction can now lock the row without waiting out the first.
  auto other = cluster_->Begin();
  auto row = other->Read(table_, {int64_t{1}, "a"}, LockMode::kExclusive);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(cluster_->StatsSnapshot().lock_timeouts, 0u);
  // Unlocking a row with a staged write is refused.
  ASSERT_TRUE(tx->Insert(table_, Row{int64_t{2}, "w", int64_t{1}}).ok());
  tx->UnlockRow(table_, {int64_t{2}, "w"});
  auto blocked = cluster_->Begin();
  auto res = blocked->Read(table_, {int64_t{2}, "w"}, LockMode::kExclusive);
  EXPECT_FALSE(res.ok()) << "the staged write's lock must survive UnlockRow";
}

TEST_F(NdbBatchTest, WriteBatchStagesAtomicallyAndCountsOneRoundTrip) {
  MustInsert(1, "old", 1);
  MustInsert(1, "dead", 2);
  auto tx = cluster_->Begin();
  tx->EnableTrace();
  WriteBatch writes;
  writes.Insert(table_, Row{int64_t{2}, "new", int64_t{3}});
  writes.Update(table_, Row{int64_t{1}, "old", int64_t{11}});
  writes.Delete(table_, {int64_t{1}, "dead"});
  writes.DeleteIfExists(table_, {int64_t{9}, "absent"});
  ASSERT_TRUE(tx->Execute(writes).ok());
  EXPECT_EQ(tx->trace().TotalRoundTrips(), 1u)
      << "the whole write batch acquires its locks in one trip";

  // Nothing visible to others until commit.
  {
    auto peek = cluster_->Begin();
    EXPECT_FALSE(peek->Read(table_, {int64_t{2}, "new"}, LockMode::kReadCommitted).ok());
  }
  ASSERT_TRUE(tx->Commit().ok());
  auto check = cluster_->Begin();
  ASSERT_TRUE(check->Read(table_, {int64_t{2}, "new"}, LockMode::kReadCommitted).ok());
  auto updated = check->Read(table_, {int64_t{1}, "old"}, LockMode::kReadCommitted);
  ASSERT_TRUE(updated.ok());
  EXPECT_EQ((*updated)[2].i64(), 11);
  EXPECT_FALSE(check->Read(table_, {int64_t{1}, "dead"}, LockMode::kReadCommitted).ok());
}

TEST_F(NdbBatchTest, WriteBatchValidatesLikeIndividualOps) {
  MustInsert(1, "a", 1);
  {
    auto tx = cluster_->Begin();
    WriteBatch writes;
    writes.Insert(table_, Row{int64_t{1}, "a", int64_t{9}});
    EXPECT_EQ(tx->Execute(writes).code(), hops::StatusCode::kAlreadyExists);
  }
  {
    auto tx = cluster_->Begin();
    WriteBatch writes;
    writes.Update(table_, Row{int64_t{7}, "missing", int64_t{9}});
    EXPECT_EQ(tx->Execute(writes).code(), hops::StatusCode::kNotFound);
  }
  {
    auto tx = cluster_->Begin();
    WriteBatch writes;
    writes.Delete(table_, {int64_t{7}, "missing"});
    EXPECT_EQ(tx->Execute(writes).code(), hops::StatusCode::kNotFound);
  }
}

TEST_F(NdbBatchTest, BatchFailsWhenNodeGroupIsDown) {
  for (int64_t p = 0; p < 32; ++p) MustInsert(p, "f", p);
  // 4 datanodes, replication 2 => groups {0,1} and {2,3}. Killing both
  // members of group 0 takes down every even-numbered partition.
  cluster_->KillDatanode(0);
  cluster_->KillDatanode(1);
  ASSERT_FALSE(cluster_->Available());
  auto tx = cluster_->Begin();
  std::vector<Key> keys;
  for (int64_t p = 0; p < 32; ++p) keys.push_back({p, "f"});
  auto res = tx->BatchRead(table_, keys, LockMode::kReadCommitted);
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), hops::StatusCode::kUnavailable);
  EXPECT_FALSE(tx->active()) << "an unusable partition aborts the transaction";

  // Restoring the group restores batched reads (a fresh transaction).
  cluster_->RestartDatanode(0);
  auto tx2 = cluster_->Begin();
  auto res2 = tx2->BatchRead(table_, keys, LockMode::kReadCommitted);
  ASSERT_TRUE(res2.ok());
  for (const auto& slot : *res2) EXPECT_TRUE(slot.has_value());
}

}  // namespace
}  // namespace hops::ndb
