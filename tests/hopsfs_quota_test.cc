// Directory quota semantics: initialization from the quiesced subtree,
// enforcement on create/mkdir/addBlock/setReplication, usage transfer on
// rename, decrement on delete, and clearing.
#include <gtest/gtest.h>

#include "hopsfs/mini_cluster.h"

namespace hops::fs {
namespace {

class QuotaTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MiniClusterOptions options;
    options.db.num_datanodes = 4;
    options.db.replication = 2;
    options.db.lock_wait_timeout = std::chrono::milliseconds(300);
    options.num_namenodes = 2;
    options.num_datanodes = 3;
    auto cluster = MiniCluster::Start(options);
    ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
    cluster_ = *std::move(cluster);
    client_ = std::make_unique<Client>(cluster_->NewClient(NamenodePolicy::kSticky, "c1"));
  }

  DirectoryQuota ReadQuota(const std::string& path) {
    auto st = client_->Stat(path);
    EXPECT_TRUE(st.ok());
    auto tx = cluster_->db().Begin();
    auto row = tx->Read(cluster_->schema().quotas, {st->inode_id},
                        ndb::LockMode::kReadCommitted);
    EXPECT_TRUE(row.ok()) << row.status().ToString();
    return QuotaFromRow(*row);
  }

  std::unique_ptr<MiniCluster> cluster_;
  std::unique_ptr<Client> client_;
};

TEST_F(QuotaTest, SetQuotaInitializesUsageFromSubtree) {
  ASSERT_TRUE(client_->Mkdirs("/q/sub").ok());
  ASSERT_TRUE(client_->WriteFile("/q/f", 2, 100).ok());  // 200B x3 repl
  ASSERT_TRUE(client_->SetQuota("/q", 100, 1 << 20).ok());
  DirectoryQuota q = ReadQuota("/q");
  EXPECT_EQ(q.ns_used, 3) << "/q itself + /q/sub + /q/f";
  EXPECT_EQ(q.ss_used, 600);
  EXPECT_EQ(q.ns_quota, 100);
}

TEST_F(QuotaTest, NamespaceQuotaEnforced) {
  ASSERT_TRUE(client_->Mkdirs("/q").ok());
  ASSERT_TRUE(client_->SetQuota("/q", 3, -1).ok());  // self + 2 more
  ASSERT_TRUE(client_->CreateFile("/q/f1").ok());
  ASSERT_TRUE(client_->CompleteFile("/q/f1").ok());
  ASSERT_TRUE(client_->Mkdirs("/q/d1").ok());
  EXPECT_EQ(client_->CreateFile("/q/f2").code(), hops::StatusCode::kQuotaExceeded);
  EXPECT_EQ(client_->Mkdirs("/q/d2").code(), hops::StatusCode::kQuotaExceeded);
  // Deleting frees quota.
  ASSERT_TRUE(client_->Delete("/q/f1", false).ok());
  EXPECT_TRUE(client_->CreateFile("/q/f2").ok());
}

TEST_F(QuotaTest, StorageQuotaEnforcedOnAddBlock) {
  ASSERT_TRUE(client_->Mkdirs("/q").ok());
  ASSERT_TRUE(client_->SetQuota("/q", -1, 500).ok());
  ASSERT_TRUE(client_->CreateFile("/q/f").ok());
  // One block of 100 bytes at replication 3 = 300 <= 500: fine.
  ASSERT_TRUE(client_->AddBlock("/q/f", 100).ok());
  // Another would exceed 500.
  EXPECT_EQ(client_->AddBlock("/q/f", 100).status().code(),
            hops::StatusCode::kQuotaExceeded);
  DirectoryQuota q = ReadQuota("/q");
  EXPECT_EQ(q.ss_used, 300);
}

TEST_F(QuotaTest, NestedQuotasBothEnforced) {
  ASSERT_TRUE(client_->Mkdirs("/outer/inner").ok());
  ASSERT_TRUE(client_->SetQuota("/outer", 10, -1).ok());
  ASSERT_TRUE(client_->SetQuota("/outer/inner", 3, -1).ok());
  ASSERT_TRUE(client_->Mkdirs("/outer/inner/a").ok());
  ASSERT_TRUE(client_->Mkdirs("/outer/inner/b").ok());
  EXPECT_EQ(client_->Mkdirs("/outer/inner/c").code(), hops::StatusCode::kQuotaExceeded)
      << "inner quota hit first";
  // The failed mkdir must not leak a partial increment into the outer quota.
  EXPECT_EQ(ReadQuota("/outer").ns_used, 4);  // outer itself, inner, a, b
  EXPECT_EQ(ReadQuota("/outer/inner").ns_used, 3);  // inner itself, a, b
}

TEST_F(QuotaTest, SetReplicationCountsAgainstStorageQuota) {
  ASSERT_TRUE(client_->Mkdirs("/q").ok());
  ASSERT_TRUE(client_->WriteFile("/q/f", 1, 100).ok());  // 300 used at repl 3
  ASSERT_TRUE(client_->SetQuota("/q", -1, 400).ok());
  EXPECT_EQ(client_->SetReplication("/q/f", 5).code(), hops::StatusCode::kQuotaExceeded);
  ASSERT_TRUE(client_->SetReplication("/q/f", 1).ok());
  EXPECT_EQ(ReadQuota("/q").ss_used, 100);
}

TEST_F(QuotaTest, RenameMovesUsageBetweenQuotaTrees) {
  ASSERT_TRUE(client_->Mkdirs("/src").ok());
  ASSERT_TRUE(client_->Mkdirs("/dst").ok());
  ASSERT_TRUE(client_->WriteFile("/src/f", 1, 100).ok());
  ASSERT_TRUE(client_->SetQuota("/src", -1, -1).ok());
  ASSERT_TRUE(client_->SetQuota("/src", 100, 10000).ok());
  ASSERT_TRUE(client_->SetQuota("/dst", 100, 10000).ok());
  int64_t src_before = ReadQuota("/src").ns_used;
  int64_t dst_before = ReadQuota("/dst").ns_used;
  ASSERT_TRUE(client_->Rename("/src/f", "/dst/f").ok());
  EXPECT_EQ(ReadQuota("/src").ns_used, src_before - 1);
  EXPECT_EQ(ReadQuota("/dst").ns_used, dst_before + 1);
  EXPECT_EQ(ReadQuota("/src").ss_used, 0);
  EXPECT_EQ(ReadQuota("/dst").ss_used, 300);
}

TEST_F(QuotaTest, RenameIntoFullQuotaFails) {
  ASSERT_TRUE(client_->Mkdirs("/src").ok());
  ASSERT_TRUE(client_->Mkdirs("/dst").ok());
  ASSERT_TRUE(client_->WriteFile("/src/f", 1, 100).ok());
  ASSERT_TRUE(client_->SetQuota("/dst", 1, -1).ok());  // only itself fits
  EXPECT_EQ(client_->Rename("/src/f", "/dst/f").code(),
            hops::StatusCode::kQuotaExceeded);
  EXPECT_TRUE(client_->Stat("/src/f").ok()) << "failed rename must not move the file";
}

TEST_F(QuotaTest, SubtreeDeleteDecrementsAncestorQuota) {
  ASSERT_TRUE(client_->Mkdirs("/q/tree/deep").ok());
  ASSERT_TRUE(client_->WriteFile("/q/tree/f1", 1, 100).ok());
  ASSERT_TRUE(client_->WriteFile("/q/tree/deep/f2", 1, 100).ok());
  ASSERT_TRUE(client_->SetQuota("/q", 100, 10000).ok());
  int64_t used_before = ReadQuota("/q").ns_used;
  ASSERT_TRUE(client_->Delete("/q/tree", true).ok());
  DirectoryQuota q = ReadQuota("/q");
  EXPECT_EQ(q.ns_used, used_before - 4);  // tree, deep, f1, f2
  EXPECT_EQ(q.ss_used, 0);
}

TEST_F(QuotaTest, SubtreeMoveTransfersWholeSubtreeUsage) {
  ASSERT_TRUE(client_->Mkdirs("/a/tree/x").ok());
  ASSERT_TRUE(client_->WriteFile("/a/tree/x/f", 1, 100).ok());
  ASSERT_TRUE(client_->Mkdirs("/b").ok());
  ASSERT_TRUE(client_->SetQuota("/a", 100, 10000).ok());
  ASSERT_TRUE(client_->SetQuota("/b", 100, 10000).ok());
  int64_t a_before = ReadQuota("/a").ns_used;
  ASSERT_TRUE(client_->Rename("/a/tree", "/b/tree").ok());
  EXPECT_EQ(ReadQuota("/a").ns_used, a_before - 3);  // tree, x, f
  EXPECT_EQ(ReadQuota("/b").ns_used, 1 + 3);
  EXPECT_EQ(ReadQuota("/b").ss_used, 300);
}

TEST_F(QuotaTest, ClearQuotaRemovesRow) {
  ASSERT_TRUE(client_->Mkdirs("/q").ok());
  ASSERT_TRUE(client_->SetQuota("/q", 10, 1000).ok());
  EXPECT_EQ(cluster_->db().TableRowCount(cluster_->schema().quotas), 1u);
  ASSERT_TRUE(client_->SetQuota("/q", -1, -1).ok());
  EXPECT_EQ(cluster_->db().TableRowCount(cluster_->schema().quotas), 0u);
  // No more enforcement.
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(client_->Mkdirs("/q/d" + std::to_string(i)).ok());
  }
}

TEST_F(QuotaTest, QuotaOnFileRejected) {
  ASSERT_TRUE(client_->Mkdirs("/q").ok());
  ASSERT_TRUE(client_->WriteFile("/q/f", 1, 1).ok());
  EXPECT_EQ(client_->SetQuota("/q/f", 10, 100).code(), hops::StatusCode::kNotDirectory);
}

}  // namespace
}  // namespace hops::fs
