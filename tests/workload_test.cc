// Workload generator: op mixes match Table 1, namespaces match the §7.2
// shape statistics, the bulk loader produces the same layout the client API
// produces, and the closed-loop driver runs both systems.
#include <gtest/gtest.h>

#include "workload/driver.h"
#include "workload/trace.h"

namespace hops::wl {
namespace {

TEST(OpMixTest, SpotifyMatchesTable1) {
  OpMix mix = OpMix::Spotify();
  EXPECT_NEAR(mix.TotalPct(), 100.0, 0.5);
  double reads = 0;
  for (const auto& e : mix.entries) {
    if (e.op == OpType::kList || e.op == OpType::kStat || e.op == OpType::kRead ||
        e.op == OpType::kContentSummary) {
      reads += e.pct;
    }
  }
  EXPECT_NEAR(reads, 94.74, 0.1) << "Table 1: total read ops = 94.74%";
}

TEST(OpMixTest, WriteIntensiveRaisesCreates) {
  for (double pct : {5.0, 10.0, 20.0}) {
    OpMix mix = OpMix::WriteIntensive(pct);
    double create = 0, addblk = 0, append = 0, read = 0;
    for (const auto& e : mix.entries) {
      if (e.op == OpType::kCreateFile) create = e.pct;
      if (e.op == OpType::kAddBlock) addblk = e.pct;
      if (e.op == OpType::kAppendFile) append = e.pct;
      if (e.op == OpType::kRead) read = e.pct;
    }
    EXPECT_NEAR(create + addblk + append, pct, 0.01) << "file-write share";
    EXPECT_NEAR(mix.TotalPct(), 100.0, 0.5);
    EXPECT_GT(read, 0);
  }
}

TEST(OpMixTest, SamplerMatchesFrequencies) {
  OpMix mix = OpMix::Spotify();
  OpSampler sampler(mix);
  hops::Rng rng(42);
  std::map<OpType, int> counts;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) counts[sampler.Sample(rng).first]++;
  EXPECT_NEAR(counts[OpType::kRead] / double(kSamples), 0.6873, 0.01);
  EXPECT_NEAR(counts[OpType::kStat] / double(kSamples), 0.17, 0.01);
  EXPECT_NEAR(counts[OpType::kList] / double(kSamples), 0.09, 0.01);
  EXPECT_NEAR(counts[OpType::kCreateFile] / double(kSamples), 0.012, 0.005);
}

TEST(OpMixTest, DirFractionRespected) {
  OpMix mix = OpMix::Single(OpType::kList, 0.945);
  OpSampler sampler(mix);
  hops::Rng rng(7);
  int dirs = 0;
  for (int i = 0; i < 10000; ++i) {
    if (sampler.Sample(rng).second) dirs++;
  }
  EXPECT_NEAR(dirs / 10000.0, 0.945, 0.02);
}

TEST(NamespaceGenTest, ShapeApproximatelyHolds) {
  NamespaceShape shape;
  auto ns = PlanNamespace(shape, 2000, 1);
  EXPECT_EQ(ns.files.size(), 2000u);
  double files_per_dir = double(ns.files.size()) / double(ns.dirs.size());
  EXPECT_NEAR(files_per_dir, shape.files_per_dir, 2.0);
  // Average path depth (components) of files should be several levels.
  double total_depth = 0;
  for (const auto& f : ns.files) {
    total_depth += std::count(f.begin(), f.end(), '/');
  }
  double avg_depth = total_depth / double(ns.files.size());
  EXPECT_GE(avg_depth, 4.0);
  EXPECT_LE(avg_depth, 10.0);
  // Name length statistic.
  std::string last = ns.files.back();
  EXPECT_EQ(last.substr(last.rfind('/') + 1).size(), shape.name_length);
}

TEST(NamespaceGenTest, DeterministicForSeed) {
  NamespaceShape shape;
  auto a = PlanNamespace(shape, 500, 9);
  auto b = PlanNamespace(shape, 500, 9);
  EXPECT_EQ(a.dirs, b.dirs);
  EXPECT_EQ(a.files, b.files);
}

TEST(NamespaceGenTest, HotspotVariantSharesAncestor) {
  NamespaceShape shape;
  auto ns = PlanNamespaceUnder("/shared-dir", shape, 200, 2);
  for (const auto& d : ns.dirs) EXPECT_EQ(d.rfind("/shared-dir/", 0), 0u) << d;
  for (const auto& f : ns.files) EXPECT_EQ(f.rfind("/shared-dir/", 0), 0u) << f;
}

class WorkloadClusterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    hops::fs::MiniClusterOptions options;
    options.db.num_datanodes = 4;
    options.db.replication = 2;
    options.db.lock_wait_timeout = std::chrono::milliseconds(300);
    options.num_namenodes = 1;
    options.num_datanodes = 3;
    auto cluster = hops::fs::MiniCluster::Start(options);
    ASSERT_TRUE(cluster.ok());
    cluster_ = *std::move(cluster);
  }

  std::unique_ptr<hops::fs::MiniCluster> cluster_;
};

TEST_F(WorkloadClusterTest, MaterializeBuildsNamespaceViaApi) {
  NamespaceShape shape;
  auto ns = PlanNamespace(shape, 64, 3);
  auto client = cluster_->NewClient(hops::fs::NamenodePolicy::kSticky, "mat");
  ASSERT_TRUE(Materialize(client, ns, shape, 3).ok());
  for (const auto& f : {ns.files.front(), ns.files.back()}) {
    EXPECT_TRUE(client.Stat(f).ok()) << f;
  }
}

TEST_F(WorkloadClusterTest, BulkLoaderMatchesClientLayout) {
  NamespaceShape shape;
  auto ns = PlanNamespace(shape, 128, 4);
  BulkLoader loader(&cluster_->db(), &cluster_->schema(), &cluster_->fs_config());
  auto loaded = loader.Load(ns, 1.3, 0, 4);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(*loaded, static_cast<int64_t>(ns.dirs.size() + ns.files.size()));
  // Everything bulk-loaded is visible through the ordinary client path.
  auto client = cluster_->NewClient(hops::fs::NamenodePolicy::kSticky, "bulk");
  EXPECT_TRUE(client.Stat(ns.files.front()).ok());
  EXPECT_TRUE(client.Stat(ns.files.back()).ok());
  EXPECT_TRUE(client.Read(ns.files.front()).ok());
  auto listing = client.List(ns.dirs.front());
  ASSERT_TRUE(listing.ok());
  EXPECT_GT(listing->size(), 0u);
  // And ordinary operations work on top of it.
  EXPECT_TRUE(client.Delete(ns.files.back(), false).ok());
  EXPECT_TRUE(client.Rename(ns.files.front(), ns.dirs.front() + "/renamed").ok());
}

TEST_F(WorkloadClusterTest, DriverRunsSpotifyMixOnHopsFs) {
  NamespaceShape shape;
  auto ns = PlanNamespace(shape, 100, 5);
  BulkLoader loader(&cluster_->db(), &cluster_->schema(), &cluster_->fs_config());
  ASSERT_TRUE(loader.Load(ns, 1.3, 0, 5).ok());
  DriverOptions opts;
  opts.num_threads = 2;
  opts.ops_per_thread = 150;
  auto report = RunDriver(
      [&](int t) {
        return MakeHopsAdapter(cluster_->NewClient(hops::fs::NamenodePolicy::kSticky,
                                                   "drv" + std::to_string(t), 50 + t));
      },
      ns, OpMix::Spotify(), opts);
  EXPECT_EQ(report.ops, 300u);
  EXPECT_EQ(report.failures, 0u) << "driver ops must all succeed";
  EXPECT_GT(report.ops_per_second, 0);
  // Read-dominated mix: reads sampled most.
  EXPECT_GT(report.counts[OpType::kRead], report.counts[OpType::kCreateFile]);
  const hops::Histogram* read_lat = report.LatencyOf(OpType::kRead);
  ASSERT_NE(read_lat, nullptr);
  EXPECT_GT(read_lat->count(), 0u);
}

TEST_F(WorkloadClusterTest, DriverRunsOnHdfsBaseline) {
  hops::hdfs::EditLog journal(3);
  hops::hdfs::Namesystem hdfs(hops::hdfs::HdfsConfig{}, &journal);
  NamespaceShape shape;
  auto ns = PlanNamespace(shape, 100, 6);
  for (const auto& d : ns.dirs) ASSERT_TRUE(hdfs.Mkdirs(d).ok());
  for (const auto& f : ns.files) {
    ASSERT_TRUE(hdfs.Create(f, "init").ok());
    ASSERT_TRUE(hdfs.AddBlock(f, "init", 1024).ok());
    ASSERT_TRUE(hdfs.CompleteFile(f, "init").ok());
  }
  DriverOptions opts;
  opts.num_threads = 2;
  opts.ops_per_thread = 150;
  auto report = RunDriver(
      [&](int t) { return MakeHdfsAdapter(&hdfs, "h" + std::to_string(t)); }, ns,
      OpMix::Spotify(), opts);
  EXPECT_EQ(report.ops, 300u);
  EXPECT_EQ(report.failures, 0u);
}

// Deterministic-seed stress mode: the closed-loop driver pushed through a
// namenode handler pool sharing the completion mux, under a fixed RNG seed.
// Two runs on identical clusters must sample the identical op stream (the
// per-op counts fingerprint) and complete without a single failure, however
// the mux interleaves the concurrent transactions' windows.
TEST(WorkloadStressTest, DriverDeterministicSeedStressThroughHandlerPoolAndMux) {
  constexpr uint64_t kSeed = 77;
  auto run_once = [&] {
    hops::fs::MiniClusterOptions options;
    options.db.num_datanodes = 4;
    options.db.replication = 2;
    options.db.lock_wait_timeout = std::chrono::milliseconds(500);
    options.db.use_completion_mux = true;
    options.fs.num_handlers = 4;
    options.num_namenodes = 2;
    options.num_datanodes = 3;
    auto cluster = *hops::fs::MiniCluster::Start(options);
    NamespaceShape shape;
    auto ns = PlanNamespace(shape, 120, kSeed);
    BulkLoader loader(&cluster->db(), &cluster->schema(), &cluster->fs_config());
    EXPECT_TRUE(loader.Load(ns, 1.3, 0, kSeed).ok());
    DriverOptions opts;
    opts.num_threads = 4;
    opts.ops_per_thread = 150;
    opts.seed = kSeed;
    auto report = RunDriver(
        [&](int t) {
          return MakeHopsAdapter(cluster->NewClient(hops::fs::NamenodePolicy::kRoundRobin,
                                                    "st" + std::to_string(t), 50 + t));
        },
        ns, OpMix::Spotify(), opts);
    // The multiplexed path really ran: handler pools served the requests and
    // the mux flushed windows.
    uint64_t served = 0;
    for (int i = 0; i < cluster->num_namenodes(); ++i) {
      served += cluster->namenode(i).handler_pool()->requests_served();
    }
    EXPECT_GT(served, 0u);
    auto stats = cluster->db().StatsSnapshot();
    if (cluster->db().kind() == hops::kv::EngineKind::kNdb) {
      EXPECT_GT(stats.mux_windows, 0u);
    }
    EXPECT_EQ(stats.lock_timeouts, 0u);
    return report;
  };

  auto first = run_once();
  EXPECT_EQ(first.ops, 600u);
  EXPECT_EQ(first.failures, 0u) << "stress ops must all succeed through the pool";

  auto second = run_once();
  EXPECT_EQ(second.ops, first.ops);
  EXPECT_EQ(second.failures, 0u);
  EXPECT_EQ(second.counts, first.counts)
      << "a fixed seed samples the identical op stream on every run";
}

TEST_F(WorkloadClusterTest, TraceCaptureCoversMixAndShowsLocality) {
  NamespaceShape shape;
  auto ns = PlanNamespace(shape, 100, 7);
  BulkLoader loader(&cluster_->db(), &cluster_->schema(), &cluster_->fs_config());
  ASSERT_TRUE(loader.Load(ns, 1.3, 0, 7).ok());
  auto pools = CollectTraces(*cluster_, ns, OpMix::Spotify(), 10, 7);
  EXPECT_EQ(pools.num_partitions, cluster_->db().num_partitions());
  // Every op with weight gets a pool.
  for (auto op : {OpType::kRead, OpType::kStat, OpType::kList, OpType::kCreateFile,
                  OpType::kDelete, OpType::kMove, OpType::kMkdirs}) {
    const auto& pool = pools.PoolFor(op);
    ASSERT_FALSE(pool.empty()) << OpTypeName(op);
    for (const auto& t : pool) {
      EXPECT_GT(t.RoundTrips(), 0u);
      EXPECT_GT(t.Rows(), 0u);
    }
  }
  // A read touches the file's shard (PPIS for blocks + replicas): its trace
  // must include pruned scans, not index scans.
  for (const auto& t : pools.PoolFor(OpType::kRead)) {
    for (const auto& a : t.accesses) {
      EXPECT_NE(a.kind, ndb::AccessKind::kFullTableScan);
    }
  }
  // Writes commit: create traces include a commit access.
  bool saw_commit = false;
  for (const auto& t : pools.PoolFor(OpType::kCreateFile)) {
    for (const auto& a : t.accesses) {
      if (a.kind == ndb::AccessKind::kCommit) saw_commit = true;
    }
  }
  EXPECT_TRUE(saw_commit);
}

}  // namespace
}  // namespace hops::wl
