// The trie-backed inode hint cache: chain lookups, LRU eviction edges,
// O(depth) prefix invalidation (no cache scan, verified on a full-capacity
// cache), lazy dead-entry reclaim, and the epoch barrier that keeps
// in-flight resolutions from re-inserting invalidated hints.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "hopsfs/inode_cache.h"
#include "hopsfs/types.h"

namespace hops::fs {
namespace {

std::vector<std::string> P(std::initializer_list<const char*> parts) {
  return std::vector<std::string>(parts.begin(), parts.end());
}

std::vector<std::string> P(std::initializer_list<std::string> parts) {
  return std::vector<std::string>(parts.begin(), parts.end());
}

TEST(InodeCacheTest, ChainLookupStopsAtGap) {
  InodeHintCache cache(128);
  auto path = P({"a", "b", "c"});
  cache.Put(path, 0, kRootInode, 10, cache.epoch());
  cache.Put(path, 1, 10, 20, cache.epoch());
  auto chain = cache.LookupChain(path).hints;
  ASSERT_EQ(chain.size(), 2u);
  EXPECT_EQ(chain[0].inode_id, 10);
  EXPECT_EQ(chain[1].inode_id, 20);
  EXPECT_EQ(chain[1].parent_id, 10);
}

TEST(InodeCacheTest, FullChainCountsAsHit) {
  InodeHintCache cache(128);
  auto path = P({"a", "b"});
  cache.Put(path, 0, kRootInode, 10, cache.epoch());
  cache.Put(path, 1, 10, 20, cache.epoch());
  ASSERT_EQ(cache.LookupChain(path).hints.size(), 2u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 0u);
  EXPECT_EQ(cache.LookupChain(P({"a", "z"})).hints.size(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(InodeCacheTest, PeekChainDoesNotCountOrRefresh) {
  InodeHintCache cache(2);
  cache.Put(P({"a"}), 0, 1, 10, cache.epoch());
  cache.Put(P({"b"}), 0, 1, 11, cache.epoch());
  ASSERT_EQ(cache.PeekChain(P({"a"})).hints.size(), 1u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
  // The peek did not refresh /a's recency: /a is still the LRU victim.
  cache.Put(P({"c"}), 0, 1, 12, cache.epoch());
  EXPECT_TRUE(cache.PeekChain(P({"a"})).hints.empty());
  EXPECT_EQ(cache.PeekChain(P({"b"})).hints.size(), 1u);
}

TEST(InodeCacheTest, PrefixInvalidation) {
  InodeHintCache cache(128);
  auto p1 = P({"a", "b", "c"});
  auto p2 = P({"a", "bx"});
  cache.Put(p1, 0, 1, 10, cache.epoch());
  cache.Put(p1, 1, 10, 20, cache.epoch());
  cache.Put(p1, 2, 20, 30, cache.epoch());
  cache.Put(p2, 1, 10, 40, cache.epoch());
  cache.InvalidatePrefix("/a/b");
  EXPECT_EQ(cache.LookupChain(p1).hints.size(), 1u)
      << "/a survives, /a/b and /a/b/c are gone";
  EXPECT_EQ(cache.LookupChain(p2).hints.size(), 2u)
      << "/a/bx is not under the /a/b prefix";
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().entries_invalidated, 2u);
}

TEST(InodeCacheTest, InvalidateRootPrefixDropsEverything) {
  InodeHintCache cache(128);
  cache.Put(P({"a"}), 0, 1, 10, cache.epoch());
  cache.Put(P({"b"}), 0, 1, 11, cache.epoch());
  cache.InvalidatePrefix("/");
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_TRUE(cache.LookupChain(P({"a"})).hints.empty());
  EXPECT_TRUE(cache.LookupChain(P({"b"})).hints.empty());
}

TEST(InodeCacheTest, LruEviction) {
  InodeHintCache cache(2);
  cache.Put(P({"a"}), 0, 1, 10, cache.epoch());
  cache.Put(P({"b"}), 0, 1, 11, cache.epoch());
  ASSERT_EQ(cache.LookupChain(P({"a"})).hints.size(), 1u);  // touch /a
  cache.Put(P({"c"}), 0, 1, 12, cache.epoch());             // evicts /b
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.LookupChain(P({"b"})).hints.size(), 0u);
  EXPECT_EQ(cache.LookupChain(P({"a"})).hints.size(), 1u);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(InodeCacheTest, EvictingInteriorKeepsDescendantsAddressable) {
  // Evicting an interior prefix only removes that node's hint; descendants
  // keep theirs and become reachable again once the interior is re-put.
  InodeHintCache cache(3);
  auto deep = P({"a", "b", "c"});
  cache.Put(deep, 0, 1, 10, cache.epoch());
  cache.Put(deep, 1, 10, 20, cache.epoch());
  cache.Put(deep, 2, 20, 30, cache.epoch());
  // Refresh the deeper entries, then overflow: /a is the victim.
  ASSERT_EQ(cache.LookupChain(deep).hints.size(), 3u);
  (void)cache.LookupChain(deep);
  cache.Put(P({"z"}), 0, 1, 40, cache.epoch());
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_TRUE(cache.LookupChain(deep).hints.empty()) << "chain breaks at evicted /a";
  cache.Put(deep, 0, 1, 10, cache.epoch());
  EXPECT_GE(cache.LookupChain(deep).hints.size(), 1u);
}

TEST(InodeCacheTest, ZeroCapacityDisables) {
  InodeHintCache cache(0);
  cache.Put(P({"a"}), 0, 1, 10, cache.epoch());
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_TRUE(cache.LookupChain(P({"a"})).hints.empty());
}

TEST(InodeCacheTest, ClearDropsEverythingAndBarsInflightPuts) {
  InodeHintCache cache(128);
  uint64_t before = cache.epoch();
  cache.Put(P({"a"}), 0, 1, 10, before);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  cache.Put(P({"a"}), 0, 1, 10, before);  // snapshot predates the clear
  EXPECT_TRUE(cache.LookupChain(P({"a"})).hints.empty());
  cache.Put(P({"a"}), 0, 1, 10, cache.epoch());
  EXPECT_EQ(cache.LookupChain(P({"a"})).hints.size(), 1u);
}

// --- Epoch barrier edges -----------------------------------------------------

TEST(InodeCacheTest, EpochRejectsPutThatRacedAnInvalidation) {
  InodeHintCache cache(128);
  auto path = P({"a", "b"});
  // A resolution snapshots the epoch, reads the database... meanwhile a
  // rename invalidates the prefix. The late Put must not land.
  uint64_t snapshot = cache.epoch();
  cache.InvalidatePrefix("/a/b");
  cache.Put(path, 1, 10, 20, snapshot);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().stale_put_rejections, 1u);
  // A resolution that started after the invalidation may cache normally.
  cache.Put(path, 1, 10, 21, cache.epoch());
  cache.Put(path, 0, 1, 10, cache.epoch());
  EXPECT_EQ(cache.LookupChain(path).hints.size(), 2u);
}

TEST(InodeCacheTest, BarrierCoversDescendantsOfInvalidatedPrefix) {
  InodeHintCache cache(128);
  uint64_t snapshot = cache.epoch();
  cache.InvalidatePrefix("/a");
  // The stale resolution tries to re-plant a hint BELOW the invalidated
  // prefix; the barrier on /a must cover it.
  cache.Put(P({"a", "b", "c"}), 2, 20, 30, snapshot);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().stale_put_rejections, 1u);
}

TEST(InodeCacheTest, BarrierExistsEvenWhenNothingWasCached) {
  InodeHintCache cache(128);
  uint64_t snapshot = cache.epoch();
  cache.InvalidatePrefix("/ghost");  // nothing cached under /ghost
  cache.Put(P({"ghost"}), 0, 1, 10, snapshot);
  EXPECT_EQ(cache.size(), 0u) << "the barrier must exist for uncached prefixes too";
  EXPECT_EQ(cache.stats().stale_put_rejections, 1u);
}

TEST(InodeCacheTest, BarrierDoesNotAffectSiblings) {
  InodeHintCache cache(128);
  uint64_t snapshot = cache.epoch();
  cache.InvalidatePrefix("/a/b");
  cache.Put(P({"a"}), 0, 1, 10, snapshot);        // above the barrier
  cache.Put(P({"a", "bx"}), 1, 10, 40, snapshot);  // sibling of the barrier
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().stale_put_rejections, 0u);
}

// --- O(depth) invalidation & lazy reclaim ------------------------------------

TEST(InodeCacheTest, InvalidateOnFullCapacityCacheIsODepth) {
  // The regression this rebuild fixes: InvalidatePrefix used to walk the
  // WHOLE map under the mutex (capacity entries) on every rename/delete.
  // The trie detaches one subtree edge instead; on a cache filled to
  // capacity, invalidating one deep prefix must touch ~depth nodes, not
  // thousands.
  constexpr size_t kCapacity = 4096;
  InodeHintCache cache(kCapacity);
  // Fill to capacity with sibling subtrees /dN/f.
  for (size_t i = 0; cache.size() < kCapacity; ++i) {
    auto dir = P({"d" + std::to_string(i)});
    cache.Put(dir, 0, 1, static_cast<InodeId>(100 + i), cache.epoch());
    auto file = P({"d" + std::to_string(i), "f"});
    cache.Put(file, 1, static_cast<InodeId>(100 + i), static_cast<InodeId>(10000 + i),
              cache.epoch());
  }
  ASSERT_EQ(cache.size(), kCapacity);
  cache.InvalidatePrefix("/d7/f");
  EXPECT_LE(cache.last_invalidate_visited(), 4u)
      << "a full-capacity cache must not be scanned";
  EXPECT_EQ(cache.size(), kCapacity - 1);
  EXPECT_EQ(cache.LookupChain(P({"d7"})).hints.size(), 1u);
  EXPECT_EQ(cache.LookupChain(P({"d7", "f"})).hints.size(), 1u)
      << "only the /d7 hint remains; /d7/f is gone";
  // Invalidating a whole subtree is still an O(depth) detach.
  cache.InvalidatePrefix("/d9");
  EXPECT_LE(cache.last_invalidate_visited(), 3u);
  EXPECT_EQ(cache.size(), kCapacity - 3);
}

TEST(InodeCacheTest, DeadEntriesAreReclaimedLazily) {
  InodeHintCache cache(64);
  // Repeated fill + invalidate cycles: detached entries linger on the LRU
  // list only until eviction or the sweep unlinks them; neither the dead
  // count nor the graveyard may grow without bound.
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 32; ++i) {
      auto path = P({"r" + std::to_string(round), "f" + std::to_string(i)});
      cache.Put(path, 0, 1, 10, cache.epoch());
      cache.Put(path, 1, 10, static_cast<InodeId>(i), cache.epoch());
    }
    cache.InvalidatePrefix("/r" + std::to_string(round));
  }
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_LE(cache.dead_in_lru(), 64u + 33u);
  EXPECT_LE(cache.graveyard_size(), cache.dead_in_lru());
  // The cache still works after heavy churn.
  cache.Put(P({"x"}), 0, 1, 10, cache.epoch());
  EXPECT_EQ(cache.LookupChain(P({"x"})).hints.size(), 1u);
}

TEST(InodeCacheTest, EvictionSkipsDeadEntriesAndReleasesTheirSubtrees) {
  InodeHintCache cache(4);
  cache.Put(P({"a"}), 0, 1, 10, cache.epoch());
  cache.Put(P({"a", "f"}), 1, 10, 20, cache.epoch());
  cache.InvalidatePrefix("/a");
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.dead_in_lru(), 2u);
  EXPECT_EQ(cache.graveyard_size(), 1u);
  // Fill past capacity: evictions must burn through the dead tail entries
  // and, once the last one unlinks, release the graveyard subtree.
  for (int i = 0; i < 6; ++i) {
    cache.Put(P({"n" + std::to_string(i)}), 0, 1, static_cast<InodeId>(i),
              cache.epoch());
  }
  EXPECT_EQ(cache.size(), 4u);
  EXPECT_EQ(cache.dead_in_lru(), 0u);
  EXPECT_EQ(cache.graveyard_size(), 0u);
}

TEST(InodeCacheTest, TriePruneKeepsFreshBarriersAndLiveHints) {
  // Push past the barrier-plant threshold so the amortized trie prune runs:
  // fresh (unexpired) barriers must keep rejecting stale puts and live
  // hints must survive the walk.
  InodeHintCache cache(64);
  cache.Put(P({"keep"}), 0, 1, 7, cache.epoch());
  uint64_t snapshot = cache.epoch();
  for (int i = 0; i < 1100; ++i) {
    cache.InvalidatePrefix("/ghost" + std::to_string(i));
  }
  EXPECT_EQ(cache.LookupChain(P({"keep"})).hints.size(), 1u);
  cache.Put(P({"ghost5"}), 0, 1, 10, snapshot);
  EXPECT_EQ(cache.stats().stale_put_rejections, 1u)
      << "a fresh barrier must survive the prune";
  cache.Put(P({"ghost5"}), 0, 1, 10, cache.epoch());
  EXPECT_EQ(cache.LookupChain(P({"ghost5"})).hints.size(), 1u);
}

TEST(InodeCacheTest, UpdateOfExistingHintRefreshesValueAndRecency) {
  InodeHintCache cache(2);
  cache.Put(P({"a"}), 0, 1, 10, cache.epoch());
  cache.Put(P({"b"}), 0, 1, 11, cache.epoch());
  cache.Put(P({"a"}), 0, 1, 99, cache.epoch());  // update + refresh
  cache.Put(P({"c"}), 0, 1, 12, cache.epoch());  // evicts /b, not /a
  auto chain = cache.LookupChain(P({"a"})).hints;
  ASSERT_EQ(chain.size(), 1u);
  EXPECT_EQ(chain[0].inode_id, 99);
  EXPECT_TRUE(cache.LookupChain(P({"b"})).hints.empty());
}

}  // namespace
}  // namespace hops::fs
