// The HDFS baseline: namesystem semantics under the global lock, quorum
// journal behaviour, batched big deletes, standby replay and HA failover.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "hdfs/ha_cluster.h"
#include "util/thread_pool.h"

namespace hops::hdfs {
namespace {

class HdfsTest : public ::testing::Test {
 protected:
  HdfsTest() : journal_(3), fs_(HdfsConfig{}, &journal_) {}
  EditLog journal_;
  Namesystem fs_;
};

TEST_F(HdfsTest, MkdirsCreateList) {
  ASSERT_TRUE(fs_.Mkdirs("/a/b").ok());
  ASSERT_TRUE(fs_.Create("/a/b/f", "c1").ok());
  ASSERT_TRUE(fs_.CompleteFile("/a/b/f", "c1").ok());
  auto listing = fs_.ListStatus("/a/b");
  ASSERT_TRUE(listing.ok());
  ASSERT_EQ(listing->size(), 1u);
  EXPECT_EQ((*listing)[0].name, "f");
}

TEST_F(HdfsTest, WriteAndReadBlocks) {
  ASSERT_TRUE(fs_.Mkdirs("/d").ok());
  ASSERT_TRUE(fs_.Create("/d/f", "c1").ok());
  auto b1 = fs_.AddBlock("/d/f", "c1", 100);
  auto b2 = fs_.AddBlock("/d/f", "c1", 200);
  ASSERT_TRUE(b1.ok());
  ASSERT_TRUE(b2.ok());
  ASSERT_TRUE(fs_.CompleteFile("/d/f", "c1").ok());
  auto blocks = fs_.GetBlockLocations("/d/f");
  ASSERT_TRUE(blocks.ok());
  ASSERT_EQ(blocks->size(), 2u);
  EXPECT_EQ(fs_.GetFileInfo("/d/f")->size, 300);
}

TEST_F(HdfsTest, ErrorPathsMatchHopsFsSemantics) {
  ASSERT_TRUE(fs_.Mkdirs("/a").ok());
  ASSERT_TRUE(fs_.Create("/a/f", "c1").ok());
  EXPECT_EQ(fs_.Create("/a/f", "c2").code(), hops::StatusCode::kAlreadyExists);
  EXPECT_EQ(fs_.AddBlock("/a/f", "c2", 10).status().code(),
            hops::StatusCode::kLeaseConflict);
  EXPECT_EQ(fs_.Create("/missing/f", "c1").code(), hops::StatusCode::kNotFound);
  EXPECT_EQ(fs_.Delete("/a", false).code(), hops::StatusCode::kNotEmpty);
  EXPECT_EQ(fs_.Rename("/a", "/a/sub").code(), hops::StatusCode::kInvalidArgument);
}

TEST_F(HdfsTest, RenameMovesSubtree) {
  ASSERT_TRUE(fs_.Mkdirs("/x/y").ok());
  ASSERT_TRUE(fs_.Create("/x/y/f", "c1").ok());
  ASSERT_TRUE(fs_.CompleteFile("/x/y/f", "c1").ok());
  ASSERT_TRUE(fs_.Rename("/x", "/z").ok());
  EXPECT_TRUE(fs_.GetFileInfo("/z/y/f").ok());
  EXPECT_FALSE(fs_.GetFileInfo("/x/y/f").ok());
}

TEST_F(HdfsTest, BatchedBigDelete) {
  HdfsConfig cfg;
  cfg.delete_batch = 16;  // force many batches
  EditLog journal(3);
  Namesystem fs(cfg, &journal);
  ASSERT_TRUE(fs.Mkdirs("/big").ok());
  for (int d = 0; d < 4; ++d) {
    std::string dir = "/big/d" + std::to_string(d);
    ASSERT_TRUE(fs.Mkdirs(dir).ok());
    for (int f = 0; f < 40; ++f) {
      ASSERT_TRUE(fs.Create(dir + "/f" + std::to_string(f), "c").ok());
    }
  }
  size_t before = fs.NumInodes();
  ASSERT_GT(before, 160u);
  ASSERT_TRUE(fs.Delete("/big", true).ok());
  EXPECT_EQ(fs.NumInodes(), 1u);
}

TEST_F(HdfsTest, QuotaEnforcement) {
  ASSERT_TRUE(fs_.Mkdirs("/q").ok());
  ASSERT_TRUE(fs_.SetQuota("/q", 3, -1).ok());
  ASSERT_TRUE(fs_.Create("/q/f1", "c").ok());
  ASSERT_TRUE(fs_.Mkdirs("/q/d1").ok());
  EXPECT_EQ(fs_.Create("/q/f2", "c").code(), hops::StatusCode::kQuotaExceeded);
  ASSERT_TRUE(fs_.Delete("/q/f1", false).ok());
  EXPECT_TRUE(fs_.Create("/q/f2", "c").ok());
}

TEST_F(HdfsTest, ContentSummary) {
  ASSERT_TRUE(fs_.Mkdirs("/cs/sub").ok());
  ASSERT_TRUE(fs_.Create("/cs/f", "c").ok());
  ASSERT_TRUE(fs_.AddBlock("/cs/f", "c", 100).ok());
  ASSERT_TRUE(fs_.CompleteFile("/cs/f", "c").ok());
  auto cs = fs_.GetContentSummary("/cs");
  ASSERT_TRUE(cs.ok());
  EXPECT_EQ(cs->dir_count, 2);
  EXPECT_EQ(cs->file_count, 1);
  EXPECT_EQ(cs->total_bytes, 300);
}

TEST_F(HdfsTest, GlobalLockAllowsParallelReaders) {
  ASSERT_TRUE(fs_.Mkdirs("/r").ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(fs_.Create("/r/f" + std::to_string(i), "c").ok());
  }
  hops::ThreadPool pool(4);
  std::atomic<int> reads{0};
  for (int t = 0; t < 4; ++t) {
    pool.Submit([&] {
      for (int i = 0; i < 200; ++i) {
        if (fs_.GetFileInfo("/r/f" + std::to_string(i % 50)).ok()) reads.fetch_add(1);
      }
    });
  }
  pool.Wait();
  EXPECT_EQ(reads.load(), 800);
}

TEST_F(HdfsTest, ConcurrentWritersSerializeCorrectly) {
  ASSERT_TRUE(fs_.Mkdirs("/w").ok());
  hops::ThreadPool pool(4);
  std::atomic<int> created{0};
  for (int t = 0; t < 4; ++t) {
    pool.Submit([&, t] {
      for (int i = 0; i < 50; ++i) {
        std::string p = "/w/t" + std::to_string(t) + "_" + std::to_string(i);
        if (fs_.Create(p, "c").ok()) created.fetch_add(1);
      }
    });
  }
  pool.Wait();
  EXPECT_EQ(created.load(), 200);
  EXPECT_EQ(fs_.ListStatus("/w")->size(), 200u);
}

TEST_F(HdfsTest, EditsAreLogged) {
  ASSERT_TRUE(fs_.Mkdirs("/log").ok());
  ASSERT_TRUE(fs_.Create("/log/f", "c").ok());
  ASSERT_TRUE(fs_.CompleteFile("/log/f", "c").ok());
  EXPECT_GE(journal_.size(), 3u);
}

TEST(EditLogTest, QuorumRules) {
  EditLog log(3);
  EXPECT_TRUE(log.QuorumAlive());
  log.KillJournal(0);
  EXPECT_TRUE(log.QuorumAlive()) << "3 journals tolerate 1 failure";
  EXPECT_TRUE(log.Append({EditEntry::Kind::kMkdir, "/a", "", 0, 0, 0}).ok());
  log.KillJournal(1);
  EXPECT_FALSE(log.QuorumAlive());
  EXPECT_EQ(log.Append({EditEntry::Kind::kMkdir, "/b", "", 0, 0, 0}).code(),
            hops::StatusCode::kUnavailable);
  log.RestartJournal(1);
  EXPECT_TRUE(log.Append({EditEntry::Kind::kMkdir, "/b", "", 0, 0, 0}).ok());
}

TEST(EditLogTest, FiveJournalsTolerateTwo) {
  EditLog log(5);
  log.KillJournal(0);
  log.KillJournal(1);
  EXPECT_TRUE(log.QuorumAlive());
  log.KillJournal(2);
  EXPECT_FALSE(log.QuorumAlive());
}

TEST(EditLogTest, ReadSinceReturnsSuffix) {
  EditLog log(3);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(log.Append({EditEntry::Kind::kMkdir, "/" + std::to_string(i), "", 0, 0, 0})
                    .ok());
  }
  auto tail = log.ReadSince(3);
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail[0].txid, 4u);
  EXPECT_EQ(tail[1].txid, 5u);
}

TEST(HaClusterTest, StandbyReplaysAndTakesOver) {
  HaCluster ha(HaCluster::Options{});
  ASSERT_NE(ha.active(), nullptr);
  ASSERT_TRUE(ha.active()->Mkdirs("/a").ok());
  ASSERT_TRUE(ha.active()->Create("/a/f", "c").ok());
  ASSERT_TRUE(ha.active()->CompleteFile("/a/f", "c").ok());
  ha.TailJournal();  // standby keeps up

  ha.KillActive();
  EXPECT_EQ(ha.active(), nullptr) << "no service during failover (§7.6.1)";
  EXPECT_TRUE(ha.InFailover());
  ha.FailoverToStandby();
  ASSERT_NE(ha.active(), nullptr);
  EXPECT_TRUE(ha.active()->GetFileInfo("/a/f").ok()) << "namespace preserved";
  // The promoted namesystem serves mutations and logs them.
  EXPECT_TRUE(ha.active()->Mkdirs("/after").ok());
}

TEST(HaClusterTest, LaggingStandbyCatchesUpDuringFailover) {
  HaCluster ha(HaCluster::Options{});
  ASSERT_TRUE(ha.active()->Mkdirs("/x").ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(ha.active()->Create("/x/f" + std::to_string(i), "c").ok());
  }
  // Standby never tailed; all edits replay at failover time.
  ha.KillActive();
  size_t replayed = ha.FailoverToStandby();
  EXPECT_GE(replayed, 21u);
  EXPECT_TRUE(ha.active()->GetFileInfo("/x/f19").ok());
}

TEST(HaClusterTest, MemoryEstimateMatchesPaperModel) {
  HaCluster ha(HaCluster::Options{});
  ASSERT_TRUE(ha.active()->Mkdirs("/m").ok());
  size_t before = ha.active()->EstimatedMemoryBytes();
  // Paper: a 2-block file costs ~448 + L bytes.
  ASSERT_TRUE(ha.active()->Create("/m/0123456789", "c").ok());
  ASSERT_TRUE(ha.active()->AddBlock("/m/0123456789", "c", 100).ok());
  ASSERT_TRUE(ha.active()->AddBlock("/m/0123456789", "c", 100).ok());
  ASSERT_TRUE(ha.active()->CompleteFile("/m/0123456789", "c").ok());
  size_t per_file = ha.active()->EstimatedMemoryBytes() - before;
  EXPECT_NEAR(static_cast<double>(per_file), 448 + 10, 20.0);
}

}  // namespace
}  // namespace hops::hdfs
