// Semantics of the transactional inode operations: mkdir/create/read/list/
// stat/rename/delete/chmod/chown/setrepl/content-summary, error paths,
// hint-cache behaviour, root immutability, and permission enforcement.
#include <gtest/gtest.h>

#include "hopsfs/mini_cluster.h"

namespace hops::fs {
namespace {

class HopsFsOpsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MiniClusterOptions options;
    options.db.num_datanodes = 4;
    options.db.replication = 2;
    options.db.lock_wait_timeout = std::chrono::milliseconds(300);
    options.num_namenodes = 2;
    options.num_datanodes = 3;
    auto cluster = MiniCluster::Start(options);
    ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
    cluster_ = *std::move(cluster);
    client_ = std::make_unique<Client>(cluster_->NewClient(NamenodePolicy::kRoundRobin, "c1"));
  }

  std::unique_ptr<MiniCluster> cluster_;
  std::unique_ptr<Client> client_;
};

TEST_F(HopsFsOpsTest, MkdirsCreatesChain) {
  ASSERT_TRUE(client_->Mkdirs("/a/b/c").ok());
  auto st = client_->Stat("/a/b/c");
  ASSERT_TRUE(st.ok());
  EXPECT_TRUE(st->is_dir);
  auto parent = client_->Stat("/a/b");
  ASSERT_TRUE(parent.ok());
  EXPECT_TRUE(parent->is_dir);
}

TEST_F(HopsFsOpsTest, MkdirsIsIdempotent) {
  ASSERT_TRUE(client_->Mkdirs("/a/b").ok());
  EXPECT_TRUE(client_->Mkdirs("/a/b").ok());
}

TEST_F(HopsFsOpsTest, MkdirsThroughFileFails) {
  ASSERT_TRUE(client_->Mkdirs("/d").ok());
  ASSERT_TRUE(client_->WriteFile("/d/f", 1, 100).ok());
  auto st = client_->Mkdirs("/d/f/sub");
  EXPECT_EQ(st.code(), hops::StatusCode::kNotDirectory);
}

TEST_F(HopsFsOpsTest, CreateWriteReadRoundTrip) {
  ASSERT_TRUE(client_->Mkdirs("/data").ok());
  ASSERT_TRUE(client_->CreateFile("/data/f1").ok());
  auto blk = client_->AddBlock("/data/f1", 1024);
  ASSERT_TRUE(blk.ok()) << blk.status().ToString();
  EXPECT_EQ(blk->num_bytes, 1024);
  EXPECT_FALSE(blk->locations.empty());
  ASSERT_TRUE(cluster_->PipelineWrite(*blk).ok());
  ASSERT_TRUE(client_->CompleteFile("/data/f1").ok());

  auto located = client_->Read("/data/f1");
  ASSERT_TRUE(located.ok());
  ASSERT_EQ(located->size(), 1u);
  EXPECT_EQ((*located)[0].block_id, blk->block_id);
  EXPECT_FALSE((*located)[0].locations.empty());

  auto st = client_->Stat("/data/f1");
  ASSERT_TRUE(st.ok());
  EXPECT_FALSE(st->is_dir);
  EXPECT_EQ(st->size, 1024);
  EXPECT_EQ(st->num_blocks, 1);
}

TEST_F(HopsFsOpsTest, CreateInMissingDirFails) {
  EXPECT_EQ(client_->CreateFile("/nope/f").code(), hops::StatusCode::kNotFound);
}

TEST_F(HopsFsOpsTest, DuplicateCreateFails) {
  ASSERT_TRUE(client_->Mkdirs("/a").ok());
  ASSERT_TRUE(client_->WriteFile("/a/f", 1, 10).ok());
  EXPECT_EQ(client_->CreateFile("/a/f").code(), hops::StatusCode::kAlreadyExists);
}

TEST_F(HopsFsOpsTest, CreateOverDirectoryFails) {
  ASSERT_TRUE(client_->Mkdirs("/a/b").ok());
  EXPECT_EQ(client_->CreateFile("/a/b").code(), hops::StatusCode::kIsDirectory);
}

TEST_F(HopsFsOpsTest, LeaseBlocksSecondWriter) {
  ASSERT_TRUE(client_->Mkdirs("/a").ok());
  ASSERT_TRUE(client_->CreateFile("/a/f").ok());
  Client other = cluster_->NewClient(NamenodePolicy::kRoundRobin, "c2", 7);
  // The file is under construction by c1: c2 cannot add blocks or append.
  EXPECT_EQ(other.AddBlock("/a/f", 10).status().code(), hops::StatusCode::kLeaseConflict);
  ASSERT_TRUE(client_->CompleteFile("/a/f").ok());
  // After completion c2 can append (takes the lease).
  EXPECT_TRUE(other.Append("/a/f").ok());
  EXPECT_EQ(client_->Append("/a/f").code(), hops::StatusCode::kLeaseConflict);
}

TEST_F(HopsFsOpsTest, ListDirectory) {
  ASSERT_TRUE(client_->Mkdirs("/dir").ok());
  ASSERT_TRUE(client_->Mkdirs("/dir/sub").ok());
  ASSERT_TRUE(client_->WriteFile("/dir/f1", 1, 5).ok());
  ASSERT_TRUE(client_->WriteFile("/dir/f2", 2, 5).ok());
  auto listing = client_->List("/dir");
  ASSERT_TRUE(listing.ok());
  ASSERT_EQ(listing->size(), 3u);
  EXPECT_EQ((*listing)[0].name, "f1");
  EXPECT_EQ((*listing)[1].name, "f2");
  EXPECT_EQ((*listing)[2].name, "sub");
  EXPECT_EQ((*listing)[0].path, "/dir/f1");
}

TEST_F(HopsFsOpsTest, ListRootUsesScatteredPartitions) {
  // Root children are pseudo-randomly partitioned (§4.2.1); listing the root
  // must still find them all (it pays an index scan).
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(client_->Mkdirs("/top" + std::to_string(i)).ok());
  }
  auto before = cluster_->db().StatsSnapshot();
  auto listing = client_->List("/");
  auto after = cluster_->db().StatsSnapshot();
  ASSERT_TRUE(listing.ok());
  EXPECT_EQ(listing->size(), 8u);
  EXPECT_GT(after.index_scans, before.index_scans) << "root listing is an index scan";
}

TEST_F(HopsFsOpsTest, ListDeepDirUsesPrunedScan) {
  ASSERT_TRUE(client_->Mkdirs("/a/b").ok());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(client_->WriteFile("/a/b/f" + std::to_string(i), 1, 1).ok());
  }
  auto before = cluster_->db().StatsSnapshot();
  auto listing = client_->List("/a/b");
  auto after = cluster_->db().StatsSnapshot();
  ASSERT_TRUE(listing.ok());
  EXPECT_EQ(listing->size(), 4u);
  EXPECT_GT(after.ppis_scans, before.ppis_scans);
  EXPECT_EQ(after.index_scans, before.index_scans)
      << "deep listing must not touch all shards";
}

TEST_F(HopsFsOpsTest, ListFileReturnsItself) {
  ASSERT_TRUE(client_->Mkdirs("/a").ok());
  ASSERT_TRUE(client_->WriteFile("/a/f", 1, 3).ok());
  auto listing = client_->List("/a/f");
  ASSERT_TRUE(listing.ok());
  ASSERT_EQ(listing->size(), 1u);
  EXPECT_EQ((*listing)[0].name, "f");
}

TEST_F(HopsFsOpsTest, StatRoot) {
  auto st = client_->Stat("/");
  ASSERT_TRUE(st.ok());
  EXPECT_TRUE(st->is_dir);
  EXPECT_EQ(st->inode_id, kRootInode);
}

TEST_F(HopsFsOpsTest, RootIsImmutable) {
  EXPECT_EQ(client_->Delete("/", true).code(), hops::StatusCode::kPermissionDenied);
  EXPECT_EQ(client_->Rename("/", "/x").code(), hops::StatusCode::kPermissionDenied);
  EXPECT_EQ(client_->SetPermission("/", 0700).code(), hops::StatusCode::kPermissionDenied);
  EXPECT_EQ(client_->SetOwner("/", "x", "y").code(), hops::StatusCode::kPermissionDenied);
}

TEST_F(HopsFsOpsTest, RenameFile) {
  ASSERT_TRUE(client_->Mkdirs("/src").ok());
  ASSERT_TRUE(client_->Mkdirs("/dst").ok());
  ASSERT_TRUE(client_->WriteFile("/src/f", 2, 100).ok());
  ASSERT_TRUE(client_->Rename("/src/f", "/dst/g").ok());
  EXPECT_EQ(client_->Stat("/src/f").status().code(), hops::StatusCode::kNotFound);
  auto st = client_->Stat("/dst/g");
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->size, 200);
  // Blocks survive the move: they key on the inode id.
  auto located = client_->Read("/dst/g");
  ASSERT_TRUE(located.ok());
  EXPECT_EQ(located->size(), 2u);
}

TEST_F(HopsFsOpsTest, RenameEmptyDirInOneTransaction) {
  ASSERT_TRUE(client_->Mkdirs("/a/empty").ok());
  ASSERT_TRUE(client_->Rename("/a/empty", "/a/renamed").ok());
  EXPECT_TRUE(client_->Stat("/a/renamed").ok());
}

TEST_F(HopsFsOpsTest, RenameErrors) {
  ASSERT_TRUE(client_->Mkdirs("/a/b").ok());
  ASSERT_TRUE(client_->WriteFile("/a/f", 1, 1).ok());
  EXPECT_EQ(client_->Rename("/missing", "/x").code(), hops::StatusCode::kNotFound);
  EXPECT_EQ(client_->Rename("/a/f", "/a/b/c/d").code(), hops::StatusCode::kNotFound);
  EXPECT_EQ(client_->Rename("/a", "/a/b/inside").code(),
            hops::StatusCode::kInvalidArgument);
  ASSERT_TRUE(client_->WriteFile("/a/g", 1, 1).ok());
  EXPECT_EQ(client_->Rename("/a/f", "/a/g").code(), hops::StatusCode::kAlreadyExists);
}

TEST_F(HopsFsOpsTest, RenameIntoTopLevelRepartitions) {
  // Moving a dir to depth 1 must relocate its row to the name-hash partition
  // and keep it resolvable.
  ASSERT_TRUE(client_->Mkdirs("/deep/nest/dir").ok());
  ASSERT_TRUE(client_->WriteFile("/deep/nest/dir/f", 1, 1).ok());
  ASSERT_TRUE(client_->Rename("/deep/nest/dir", "/promoted").ok());
  EXPECT_TRUE(client_->Stat("/promoted").ok());
  EXPECT_TRUE(client_->Stat("/promoted/f").ok());
  ASSERT_TRUE(client_->Rename("/promoted", "/deep/demoted").ok());
  EXPECT_TRUE(client_->Stat("/deep/demoted/f").ok());
}

TEST_F(HopsFsOpsTest, StaleHintCacheSelfRepairsAfterMove) {
  ASSERT_TRUE(client_->Mkdirs("/olddir/sub").ok());
  ASSERT_TRUE(client_->WriteFile("/olddir/sub/f", 1, 1).ok());
  // Warm the hint caches of both namenodes.
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(client_->Stat("/olddir/sub/f").ok());
  ASSERT_TRUE(client_->Rename("/olddir", "/newdir").ok());
  // Every namenode must now resolve the new path and fail the old one, even
  // the one with stale hints.
  for (int i = 0; i < cluster_->num_namenodes(); ++i) {
    auto st = cluster_->namenode(i).GetFileInfo("/newdir/sub/f");
    EXPECT_TRUE(st.ok()) << "nn" << i << ": " << st.status().ToString();
    EXPECT_EQ(cluster_->namenode(i).GetFileInfo("/olddir/sub/f").status().code(),
              hops::StatusCode::kNotFound);
  }
}

TEST_F(HopsFsOpsTest, DeleteFileRemovesArtifacts) {
  ASSERT_TRUE(client_->Mkdirs("/a").ok());
  ASSERT_TRUE(client_->WriteFile("/a/f", 2, 50).ok());
  auto located = client_->Read("/a/f");
  ASSERT_TRUE(located.ok());
  ASSERT_TRUE(client_->Delete("/a/f", false).ok());
  EXPECT_EQ(client_->Stat("/a/f").status().code(), hops::StatusCode::kNotFound);
  // Satellite tables are clean.
  EXPECT_EQ(cluster_->db().TableRowCount(cluster_->schema().blocks), 0u);
  EXPECT_EQ(cluster_->db().TableRowCount(cluster_->schema().replicas), 0u);
  EXPECT_EQ(cluster_->db().TableRowCount(cluster_->schema().block_lookup), 0u);
  EXPECT_EQ(cluster_->db().TableRowCount(cluster_->schema().leases), 0u);
  // Replica invalidations were queued for the datanodes that stored blocks.
  EXPECT_GT(cluster_->db().TableRowCount(cluster_->schema().inv), 0u);
}

TEST_F(HopsFsOpsTest, DeleteNonEmptyDirNeedsRecursive) {
  ASSERT_TRUE(client_->Mkdirs("/a").ok());
  ASSERT_TRUE(client_->WriteFile("/a/f", 1, 1).ok());
  EXPECT_EQ(client_->Delete("/a", false).code(), hops::StatusCode::kNotEmpty);
  EXPECT_TRUE(client_->Delete("/a", true).ok());
  EXPECT_EQ(client_->Stat("/a").status().code(), hops::StatusCode::kNotFound);
}

TEST_F(HopsFsOpsTest, DeleteEmptyDirWithoutRecursive) {
  ASSERT_TRUE(client_->Mkdirs("/a/b").ok());
  EXPECT_TRUE(client_->Delete("/a/b", false).ok());
  EXPECT_EQ(client_->Stat("/a/b").status().code(), hops::StatusCode::kNotFound);
}

TEST_F(HopsFsOpsTest, SetPermissionOnFileAndDir) {
  ASSERT_TRUE(client_->Mkdirs("/a").ok());
  ASSERT_TRUE(client_->WriteFile("/a/f", 1, 1).ok());
  ASSERT_TRUE(client_->SetPermission("/a/f", 0600).ok());
  EXPECT_EQ(client_->Stat("/a/f")->perm, 0600);
  // chmod on a directory goes through the subtree protocol.
  ASSERT_TRUE(client_->SetPermission("/a", 0750).ok());
  EXPECT_EQ(client_->Stat("/a")->perm, 0750);
  // The subtree lock must be fully released afterwards.
  EXPECT_TRUE(client_->WriteFile("/a/g", 1, 1).ok());
  EXPECT_EQ(cluster_->db().TableRowCount(cluster_->schema().active_subtree_ops), 0u);
}

TEST_F(HopsFsOpsTest, SetOwner) {
  ASSERT_TRUE(client_->Mkdirs("/a").ok());
  ASSERT_TRUE(client_->SetOwner("/a", "alice", "users").ok());
  auto st = client_->Stat("/a");
  EXPECT_EQ(st->owner, "alice");
  EXPECT_EQ(st->group, "users");
}

TEST_F(HopsFsOpsTest, PermissionEnforcement) {
  ASSERT_TRUE(client_->Mkdirs("/secure").ok());
  ASSERT_TRUE(client_->SetOwner("/secure", "alice", "users").ok());
  ASSERT_TRUE(client_->SetPermission("/secure", 0700).ok());
  UserContext bob{"bob", false};
  Namenode& nn = cluster_->namenode(0);
  EXPECT_EQ(nn.Create("/secure/f", "bob-client", bob).code(),
            hops::StatusCode::kPermissionDenied);
  EXPECT_EQ(nn.ListStatus("/secure", bob).status().code(),
            hops::StatusCode::kPermissionDenied);
  UserContext alice{"alice", false};
  EXPECT_TRUE(nn.Create("/secure/f", "alice-client", alice).ok());
}

TEST_F(HopsFsOpsTest, SetReplicationAdjustsBlocks) {
  ASSERT_TRUE(client_->Mkdirs("/a").ok());
  ASSERT_TRUE(client_->CreateFile("/a/f").ok());
  auto blk = client_->AddBlock("/a/f", 100);
  ASSERT_TRUE(blk.ok());
  ASSERT_TRUE(cluster_->PipelineWrite(*blk).ok());
  ASSERT_TRUE(client_->CompleteFile("/a/f").ok());
  // 3 replicas exist; shrinking to 1 queues excess + invalidation rows.
  ASSERT_TRUE(client_->SetReplication("/a/f", 1).ok());
  EXPECT_EQ(client_->Stat("/a/f")->replication, 1);
  EXPECT_GT(cluster_->db().TableRowCount(cluster_->schema().er), 0u);
  EXPECT_GT(cluster_->db().TableRowCount(cluster_->schema().inv), 0u);
  // Growing to 3 queues an under-replication entry.
  ASSERT_TRUE(client_->SetReplication("/a/f", 3).ok());
  EXPECT_GT(cluster_->db().TableRowCount(cluster_->schema().urb), 0u);
}

TEST_F(HopsFsOpsTest, ContentSummary) {
  ASSERT_TRUE(client_->Mkdirs("/proj/sub").ok());
  ASSERT_TRUE(client_->WriteFile("/proj/f1", 1, 100).ok());
  ASSERT_TRUE(client_->WriteFile("/proj/sub/f2", 2, 100).ok());
  auto cs = client_->ContentSummaryOf("/proj");
  ASSERT_TRUE(cs.ok());
  EXPECT_EQ(cs->dir_count, 2);   // /proj and /proj/sub
  EXPECT_EQ(cs->file_count, 2);
  EXPECT_EQ(cs->total_bytes, 300 * 3);  // size x replication
}

TEST_F(HopsFsOpsTest, HintCacheTurnsResolutionIntoBatchedRead) {
  ASSERT_TRUE(client_->Mkdirs("/w/x/y/z").ok());
  ASSERT_TRUE(client_->WriteFile("/w/x/y/z/f", 1, 1).ok());
  Namenode& nn = cluster_->namenode(0);
  ASSERT_TRUE(nn.GetFileInfo("/w/x/y/z/f").ok());  // warm the cache
  auto before = cluster_->db().StatsSnapshot();
  ASSERT_TRUE(nn.GetFileInfo("/w/x/y/z/f").ok());
  auto after = cluster_->db().StatsSnapshot();
  // Two batched reads -- the resolve+lock batch over the cached chain plus
  // the speculative block-count rider -- that flush as ONE overlapped
  // round-trip window; the rider replaces the separate block scan a cold
  // stat pays after resolution.
  EXPECT_EQ(after.batch_reads - before.batch_reads, 2u);
  EXPECT_EQ(after.ppis_scans - before.ppis_scans, 1u)
      << "exactly the rider's scan member -- a discarded rider plus the "
         "post-resolution fallback scan would count two";
  EXPECT_EQ(after.round_trips - before.round_trips, 1u)
      << "a warm stat costs a single round-trip window";
  EXPECT_EQ(after.overlapped_round_trips - before.overlapped_round_trips, 1u);
  // Recursive resolution would have cost one PK read per interior component;
  // with hints the only extra PK reads are the locked target read.
  EXPECT_LE(after.pk_reads - before.pk_reads, 2u);
}

TEST_F(HopsFsOpsTest, WarmDirectoryStatSkipsBlockRider) {
  ASSERT_TRUE(client_->Mkdirs("/w/x/y/dir").ok());
  Namenode& nn = cluster_->namenode(0);
  // Warm the cache; the hint chain now records the target's kind.
  ASSERT_TRUE(nn.GetFileInfo("/w/x/y/dir").ok());
  auto before = cluster_->db().StatsSnapshot();
  auto info = nn.GetFileInfo("/w/x/y/dir");
  ASSERT_TRUE(info.ok());
  EXPECT_TRUE(info->is_dir);
  auto after = cluster_->db().StatsSnapshot();
  // The hint knows the target is a directory, so the speculative blocks
  // rider is not staged at all: no pruned scan anywhere, and the whole warm
  // stat is the single resolve+lock window.
  EXPECT_EQ(after.ppis_scans - before.ppis_scans, 0u)
      << "a dir-known hint must not stage (and then discard) a blocks scan";
  EXPECT_EQ(after.round_trips - before.round_trips, 1u);
}

TEST_F(HopsFsOpsTest, OperationsSpreadAcrossNamenodes) {
  // Both namenodes serve the same namespace with no coordination beyond NDB.
  Namenode& nn0 = cluster_->namenode(0);
  Namenode& nn1 = cluster_->namenode(1);
  ASSERT_TRUE(nn0.Mkdirs("/shared").ok());
  ASSERT_TRUE(nn1.Create("/shared/f", "c1").ok());
  ASSERT_TRUE(nn0.CompleteFile("/shared/f", "c1").ok());
  auto st = nn1.GetFileInfo("/shared/f");
  ASSERT_TRUE(st.ok());
  EXPECT_FALSE(st->is_dir);
}

}  // namespace
}  // namespace hops::fs
