// Transaction semantics: CRUD, read-your-writes, atomic commit/abort,
// scans (PPIS vs index scan vs full scan), cost traces, failure injection.
#include <gtest/gtest.h>

#include "ndb/cluster.h"
#include "util/hash.h"

namespace hops::ndb {
namespace {

class NdbTxTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cluster_ = std::make_unique<Cluster>(ClusterConfig{
        .num_datanodes = 4,
        .replication = 2,
        .lock_wait_timeout = std::chrono::milliseconds(200),
    });
    // inode-like table: PK (parent, name), partitioned by parent.
    Schema s;
    s.table_name = "inodes";
    s.columns = {{"parent", ColumnType::kInt64},
                 {"name", ColumnType::kString},
                 {"id", ColumnType::kInt64},
                 {"size", ColumnType::kInt64}};
    s.primary_key = {0, 1};
    s.partition_key = {0};
    table_ = *cluster_->CreateTable(s);
  }

  Row MakeRow(int64_t parent, std::string name, int64_t id, int64_t size = 0) {
    return Row{parent, std::move(name), id, size};
  }

  void MustInsert(int64_t parent, const std::string& name, int64_t id) {
    auto tx = cluster_->Begin();
    ASSERT_TRUE(tx->Insert(table_, MakeRow(parent, name, id)).ok());
    ASSERT_TRUE(tx->Commit().ok());
  }

  std::unique_ptr<Cluster> cluster_;
  TableId table_ = 0;
};

TEST_F(NdbTxTest, InsertReadCommit) {
  MustInsert(1, "foo", 100);
  auto tx = cluster_->Begin();
  auto row = tx->Read(table_, {int64_t{1}, "foo"}, LockMode::kReadCommitted);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ((*row)[2].i64(), 100);
}

TEST_F(NdbTxTest, ReadMissingRowIsNotFound) {
  auto tx = cluster_->Begin();
  auto row = tx->Read(table_, {int64_t{1}, "nope"}, LockMode::kShared);
  EXPECT_EQ(row.status().code(), hops::StatusCode::kNotFound);
}

TEST_F(NdbTxTest, DuplicateInsertRejected) {
  MustInsert(1, "foo", 100);
  auto tx = cluster_->Begin();
  EXPECT_EQ(tx->Insert(table_, MakeRow(1, "foo", 200)).code(),
            hops::StatusCode::kAlreadyExists);
}

TEST_F(NdbTxTest, UpdateRequiresExistingRow) {
  auto tx = cluster_->Begin();
  EXPECT_EQ(tx->Update(table_, MakeRow(1, "foo", 1)).code(), hops::StatusCode::kNotFound);
}

TEST_F(NdbTxTest, DeleteThenReadSameTx) {
  MustInsert(1, "foo", 100);
  auto tx = cluster_->Begin();
  ASSERT_TRUE(tx->Delete(table_, {int64_t{1}, "foo"}).ok());
  EXPECT_EQ(tx->Read(table_, {int64_t{1}, "foo"}, LockMode::kExclusive).status().code(),
            hops::StatusCode::kNotFound);
  ASSERT_TRUE(tx->Commit().ok());
  auto tx2 = cluster_->Begin();
  EXPECT_EQ(tx2->Read(table_, {int64_t{1}, "foo"}, LockMode::kReadCommitted).status().code(),
            hops::StatusCode::kNotFound);
}

TEST_F(NdbTxTest, ReadYourOwnWrites) {
  auto tx = cluster_->Begin();
  ASSERT_TRUE(tx->Insert(table_, MakeRow(1, "foo", 100)).ok());
  auto row = tx->Read(table_, {int64_t{1}, "foo"}, LockMode::kExclusive);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ((*row)[2].i64(), 100);
}

TEST_F(NdbTxTest, AbortDiscardsStagedWrites) {
  auto tx = cluster_->Begin();
  ASSERT_TRUE(tx->Insert(table_, MakeRow(1, "foo", 100)).ok());
  tx->Abort();
  auto tx2 = cluster_->Begin();
  EXPECT_EQ(tx2->Read(table_, {int64_t{1}, "foo"}, LockMode::kReadCommitted).status().code(),
            hops::StatusCode::kNotFound);
}

TEST_F(NdbTxTest, UncommittedWritesInvisibleToOthers) {
  auto tx = cluster_->Begin();
  ASSERT_TRUE(tx->Insert(table_, MakeRow(1, "foo", 100)).ok());
  {
    auto other = cluster_->Begin();
    // Read-committed does not block and does not see the staged insert.
    EXPECT_EQ(
        other->Read(table_, {int64_t{1}, "foo"}, LockMode::kReadCommitted).status().code(),
        hops::StatusCode::kNotFound);
  }
  ASSERT_TRUE(tx->Commit().ok());
  auto after = cluster_->Begin();
  EXPECT_TRUE(after->Read(table_, {int64_t{1}, "foo"}, LockMode::kReadCommitted).ok());
}

TEST_F(NdbTxTest, ReadCommittedSeesOldValueDuringConcurrentUpdate) {
  MustInsert(1, "foo", 100);
  auto writer = cluster_->Begin();
  ASSERT_TRUE(writer->Update(table_, MakeRow(1, "foo", 999)).ok());
  auto reader = cluster_->Begin();
  auto row = reader->Read(table_, {int64_t{1}, "foo"}, LockMode::kReadCommitted);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ((*row)[2].i64(), 100) << "read-committed must see the committed version";
  ASSERT_TRUE(writer->Commit().ok());
  auto row2 = reader->Read(table_, {int64_t{1}, "foo"}, LockMode::kReadCommitted);
  ASSERT_TRUE(row2.ok());
  EXPECT_EQ((*row2)[2].i64(), 999) << "fuzzy read is permitted at read-committed";
}

TEST_F(NdbTxTest, MultiPartitionCommitIsApplied) {
  auto tx = cluster_->Begin();
  for (int64_t parent = 0; parent < 20; ++parent) {
    ASSERT_TRUE(tx->Insert(table_, MakeRow(parent, "f", parent * 10)).ok());
  }
  ASSERT_TRUE(tx->Commit().ok());
  auto check = cluster_->Begin();
  for (int64_t parent = 0; parent < 20; ++parent) {
    auto row = check->Read(table_, {parent, "f"}, LockMode::kReadCommitted);
    ASSERT_TRUE(row.ok());
    EXPECT_EQ((*row)[2].i64(), parent * 10);
  }
}

TEST_F(NdbTxTest, BatchReadAlignsResults) {
  MustInsert(1, "a", 10);
  MustInsert(2, "b", 20);
  auto tx = cluster_->Begin();
  auto res = tx->BatchRead(table_,
                           {{int64_t{1}, "a"}, {int64_t{9}, "missing"}, {int64_t{2}, "b"}},
                           LockMode::kReadCommitted);
  ASSERT_TRUE(res.ok());
  ASSERT_EQ(res->size(), 3u);
  ASSERT_TRUE((*res)[0].has_value());
  EXPECT_EQ((*(*res)[0])[2].i64(), 10);
  EXPECT_FALSE((*res)[1].has_value());
  ASSERT_TRUE((*res)[2].has_value());
  EXPECT_EQ((*(*res)[2])[2].i64(), 20);
}

TEST_F(NdbTxTest, PpisReturnsOnlyChildrenOfParent) {
  for (int i = 0; i < 10; ++i) MustInsert(7, "c" + std::to_string(i), 100 + i);
  MustInsert(8, "other", 500);
  auto tx = cluster_->Begin();
  auto rows = tx->Ppis(table_, {int64_t{7}});
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 10u);
  for (const auto& r : *rows) EXPECT_EQ(r[0].i64(), 7);
}

TEST_F(NdbTxTest, PpisSeesOwnStagedWrites) {
  MustInsert(7, "a", 1);
  auto tx = cluster_->Begin();
  ASSERT_TRUE(tx->Insert(table_, MakeRow(7, "b", 2)).ok());
  ASSERT_TRUE(tx->Delete(table_, {int64_t{7}, "a"}).ok());
  auto rows = tx->Ppis(table_, {int64_t{7}});
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0][1].str(), "b");
}

TEST_F(NdbTxTest, IndexScanFindsRowsAcrossPartitions) {
  for (int64_t parent = 0; parent < 16; ++parent) MustInsert(parent, "x", parent);
  auto tx = cluster_->Begin();
  Transaction::ScanOptions opts;
  opts.eq_filter = {{1, Value("x")}};
  auto rows = tx->IndexScan(table_, {}, opts);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 16u);
}

TEST_F(NdbTxTest, FullTableScanSeesEverything) {
  for (int64_t parent = 0; parent < 12; ++parent) {
    MustInsert(parent, "a", parent);
    MustInsert(parent, "b", parent + 100);
  }
  auto tx = cluster_->Begin();
  auto rows = tx->FullTableScan(table_);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 24u);
}

TEST_F(NdbTxTest, ScanWithPredicate) {
  for (int i = 0; i < 10; ++i) MustInsert(3, "f" + std::to_string(i), i);
  auto tx = cluster_->Begin();
  Transaction::ScanOptions opts;
  opts.predicate = [](const Row& r) { return r[2].i64() % 2 == 0; };
  auto rows = tx->Ppis(table_, {int64_t{3}}, opts);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 5u);
}

TEST_F(NdbTxTest, ExplicitPartitionValueRouting) {
  Schema s;
  s.table_name = "adp";
  s.columns = {{"parent", ColumnType::kInt64},
               {"name", ColumnType::kString},
               {"id", ColumnType::kInt64}};
  s.primary_key = {0, 1};
  s.requires_explicit_partition = true;
  TableId adp = *cluster_->CreateTable(s);

  // Writes and reads must agree on the explicit partition value.
  uint64_t pv = hops::HashBytes("top-dir");
  auto tx = cluster_->Begin();
  ASSERT_TRUE(tx->Insert(adp, Row{int64_t{1}, "top-dir", int64_t{5}}, pv).ok());
  ASSERT_TRUE(tx->Commit().ok());

  auto tx2 = cluster_->Begin();
  auto row = tx2->Read(adp, {int64_t{1}, "top-dir"}, LockMode::kReadCommitted, pv);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ((*row)[2].i64(), 5);

  // Accessing without a partition value is an error for this table.
  auto bad = tx2->Read(adp, {int64_t{1}, "top-dir"}, LockMode::kReadCommitted);
  EXPECT_EQ(bad.status().code(), hops::StatusCode::kInvalidArgument);

  // A wrong partition value misses the row (it lives in another shard).
  uint64_t wrong_pv = pv + 1;
  if (cluster_->PartitionForValue(wrong_pv) != cluster_->PartitionForValue(pv)) {
    auto miss = tx2->Read(adp, {int64_t{1}, "top-dir"}, LockMode::kReadCommitted, wrong_pv);
    EXPECT_EQ(miss.status().code(), hops::StatusCode::kNotFound);
  }
}

TEST_F(NdbTxTest, CostTraceOrdersAccessPaths) {
  // Figure 2's premise: PK and batched ops touch one/few partitions, PPIS
  // touches exactly one, IS/FTS touch all.
  for (int i = 0; i < 50; ++i) MustInsert(5, "f" + std::to_string(i), i);

  auto tx = cluster_->Begin(TxHint{table_, 5});
  tx->EnableTrace();
  ASSERT_TRUE(tx->Read(table_, {int64_t{5}, "f0"}, LockMode::kReadCommitted).ok());
  ASSERT_TRUE(tx->Ppis(table_, {int64_t{5}}).ok());
  ASSERT_TRUE(tx->IndexScan(table_, {int64_t{5}}).ok());
  const auto& trace = tx->trace();
  ASSERT_EQ(trace.accesses.size(), 3u);
  EXPECT_EQ(trace.accesses[0].kind, AccessKind::kPkRead);
  EXPECT_EQ(trace.accesses[0].parts.size(), 1u);
  EXPECT_TRUE(trace.accesses[0].parts[0].local) << "DAT hint should make the PK read local";
  EXPECT_EQ(trace.accesses[1].kind, AccessKind::kPpis);
  EXPECT_EQ(trace.accesses[1].parts.size(), 1u);
  EXPECT_EQ(trace.accesses[2].kind, AccessKind::kIndexScan);
  EXPECT_EQ(trace.accesses[2].parts.size(), cluster_->num_partitions());
}

TEST_F(NdbTxTest, StatsCountersTrackOperations) {
  cluster_->ResetStats();
  MustInsert(1, "a", 1);
  auto tx = cluster_->Begin();
  ASSERT_TRUE(tx->Read(table_, {int64_t{1}, "a"}, LockMode::kReadCommitted).ok());
  ASSERT_TRUE(tx->Ppis(table_, {int64_t{1}}).ok());
  ASSERT_TRUE(tx->FullTableScan(table_).ok());
  auto s = cluster_->StatsSnapshot();
  EXPECT_EQ(s.commits, 1u);
  EXPECT_EQ(s.pk_reads, 1u);
  EXPECT_EQ(s.ppis_scans, 1u);
  EXPECT_EQ(s.full_table_scans, 1u);
  EXPECT_EQ(s.rows_written, 1u);
}

TEST_F(NdbTxTest, CoordinatorFailureAbortsTransaction) {
  MustInsert(1, "a", 1);
  auto tx = cluster_->Begin();
  ASSERT_TRUE(tx->Read(table_, {int64_t{1}, "a"}, LockMode::kExclusive).ok());
  cluster_->KillDatanode(tx->coordinator());
  auto st = tx->Read(table_, {int64_t{1}, "a"}, LockMode::kExclusive);
  EXPECT_EQ(st.status().code(), hops::StatusCode::kTxAborted);
  EXPECT_FALSE(tx->active());
  cluster_->RestartDatanode(0);
  cluster_->RestartDatanode(1);
  cluster_->RestartDatanode(2);
  cluster_->RestartDatanode(3);
  // The abort released the X lock: a fresh transaction can take it.
  auto tx2 = cluster_->Begin();
  EXPECT_TRUE(tx2->Read(table_, {int64_t{1}, "a"}, LockMode::kExclusive).ok());
}

TEST_F(NdbTxTest, CommitFailsWhenCoordinatorDies) {
  auto tx = cluster_->Begin();
  ASSERT_TRUE(tx->Insert(table_, MakeRow(1, "b", 2)).ok());
  cluster_->KillDatanode(tx->coordinator());
  EXPECT_EQ(tx->Commit().code(), hops::StatusCode::kTxAborted);
  for (uint32_t n = 0; n < 4; ++n) cluster_->RestartDatanode(n);
  auto check = cluster_->Begin();
  EXPECT_EQ(check->Read(table_, {int64_t{1}, "b"}, LockMode::kReadCommitted).status().code(),
            hops::StatusCode::kNotFound)
      << "aborted 2PC must not leak writes";
}

TEST_F(NdbTxTest, WholeGroupDownMakesOperationsUnavailable) {
  MustInsert(1, "a", 1);
  cluster_->KillDatanode(0);
  cluster_->KillDatanode(1);
  // Some partition now has no live replica; an op landing there fails with
  // kUnavailable. Find such a row deterministically by scanning parents.
  bool saw_unavailable = false;
  for (int64_t parent = 0; parent < 64 && !saw_unavailable; ++parent) {
    auto tx = cluster_->Begin();
    auto st = tx->Read(table_, {parent, "x"}, LockMode::kReadCommitted);
    if (st.status().code() == hops::StatusCode::kUnavailable) saw_unavailable = true;
  }
  EXPECT_TRUE(saw_unavailable);
}

TEST_F(NdbTxTest, DestructorAbortsActiveTransaction) {
  {
    auto tx = cluster_->Begin();
    ASSERT_TRUE(tx->Insert(table_, MakeRow(1, "tmp", 1)).ok());
    // dropped without Commit
  }
  auto check = cluster_->Begin();
  EXPECT_EQ(check->Read(table_, {int64_t{1}, "tmp"}, LockMode::kReadCommitted).status().code(),
            hops::StatusCode::kNotFound);
}

}  // namespace
}  // namespace hops::ndb
