// Discrete-event core sanity (stations obey queueing theory, the RW lock is
// fair and correct) and cluster-model shape checks: HopsFS throughput grows
// with namenodes until the database saturates; HDFS collapses under writes;
// failover behaviour matches §7.6.1.
#include <gtest/gtest.h>

#include "sim/model.h"
#include "workload/trace.h"

namespace hops::sim {
namespace {

TEST(SimulatorTest, EventsRunInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.At(30, [&] { order.push_back(3); });
  sim.At(10, [&] { order.push_back(1); });
  sim.At(20, [&] { order.push_back(2); });
  sim.Run(100);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 100);
}

TEST(SimulatorTest, TiesBreakInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.At(5, [&] { order.push_back(1); });
  sim.At(5, [&] { order.push_back(2); });
  sim.Run(10);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(StationTest, SingleServerSerializes) {
  Simulator sim;
  Station st(&sim, 1, "s");
  std::vector<double> completions;
  for (int i = 0; i < 3; ++i) {
    st.Submit(10, [&] { completions.push_back(sim.now()); });
  }
  sim.Run(1000);
  ASSERT_EQ(completions.size(), 3u);
  EXPECT_DOUBLE_EQ(completions[0], 10);
  EXPECT_DOUBLE_EQ(completions[1], 20);
  EXPECT_DOUBLE_EQ(completions[2], 30);
}

TEST(StationTest, MultiServerParallelism) {
  Simulator sim;
  Station st(&sim, 2, "s");
  std::vector<double> completions;
  for (int i = 0; i < 4; ++i) {
    st.Submit(10, [&] { completions.push_back(sim.now()); });
  }
  sim.Run(1000);
  ASSERT_EQ(completions.size(), 4u);
  EXPECT_DOUBLE_EQ(completions[0], 10);
  EXPECT_DOUBLE_EQ(completions[1], 10);
  EXPECT_DOUBLE_EQ(completions[2], 20);
  EXPECT_DOUBLE_EQ(completions[3], 20);
}

TEST(StationTest, ThroughputMatchesCapacity) {
  // A c-server station with deterministic service s saturates at c/s.
  Simulator sim;
  Station st(&sim, 4, "s");
  // Closed loop: 16 customers resubmitting forever.
  std::function<void()> loop[16];
  for (int i = 0; i < 16; ++i) {
    loop[i] = [&, i] { st.Submit(10, loop[i]); };
    loop[i]();
  }
  sim.Run(100000);  // 0.1 virtual seconds
  double rate = static_cast<double>(st.completed()) / 100000.0;  // per us
  EXPECT_NEAR(rate, 4.0 / 10.0, 0.01);
  EXPECT_NEAR(st.Utilization(), 1.0, 0.02);
}

TEST(RwLockResTest, ReadersShareWritersExclude) {
  Simulator sim;
  RwLockRes lock;
  int readers_in = 0;
  bool writer_in = false;
  lock.AcquireShared([&] { readers_in++; });
  lock.AcquireShared([&] { readers_in++; });
  EXPECT_EQ(readers_in, 2);
  lock.AcquireExclusive([&] { writer_in = true; });
  EXPECT_FALSE(writer_in) << "writer must wait for readers";
  // A reader arriving behind a queued writer must also wait (no starvation).
  int late_reader = 0;
  lock.AcquireShared([&] { late_reader++; });
  EXPECT_EQ(late_reader, 0);
  lock.ReleaseShared();
  lock.ReleaseShared();
  EXPECT_TRUE(writer_in);
  EXPECT_EQ(late_reader, 0);
  lock.ReleaseExclusive();
  EXPECT_EQ(late_reader, 1);
}

TEST(RwLockResTest, BatchGrantsConsecutiveReaders) {
  Simulator sim;
  RwLockRes lock;
  bool w = false;
  lock.AcquireExclusive([&] { w = true; });
  ASSERT_TRUE(w);
  int granted = 0;
  lock.AcquireShared([&] { granted++; });
  lock.AcquireShared([&] { granted++; });
  lock.ReleaseExclusive();
  EXPECT_EQ(granted, 2) << "both waiting readers admitted together";
}

// An overlapped round-trip window (a carrying access plus zero-trip riders,
// the shape the async pipelined engine emits) must cost the max, not the
// sum, of its members' latencies: one network trip, all partitions serving
// in parallel.
TEST(ModelOverlapTest, OverlappedWindowCostsMaxNotSum) {
  Calibration cal;
  auto mix = wl::OpMix::Single(wl::OpType::kRead);

  // Hand-crafted traces; partitions 0 and 1 land on distinct db stations in
  // a 2-node topology, so their service genuinely parallelizes.
  constexpr uint32_t kRows = 100;
  const double service_us = cal.db_access_base_us + kRows * cal.db_row_cpu_us;
  auto make_pools = [&](uint32_t rider_trips) {
    wl::TracePools pools;
    pools.num_partitions = 2;
    wl::OpTrace trace;
    ndb::Access carrier;
    carrier.kind = ndb::AccessKind::kBatchRead;
    carrier.round_trips = 1;
    carrier.parts = {ndb::PartTouch{0, 0, kRows, false}};
    ndb::Access rider;
    rider.kind = ndb::AccessKind::kBatchRead;
    rider.round_trips = rider_trips;
    rider.parts = {ndb::PartTouch{1, 1, kRows, false}};
    trace.accesses = {carrier, rider};
    pools.pools[wl::OpType::kRead] = {trace};
    return pools;
  };

  WorkloadSpec spec;
  spec.mix = &mix;
  spec.num_clients = 1;
  spec.duration_s = 0.05;
  spec.warmup_s = 0;

  auto overlapped_pools = make_pools(/*rider_trips=*/0);
  spec.traces = &overlapped_pools;
  auto overlapped = SimulateHopsFs(HopsTopology{1, 2}, spec, cal);
  auto chained_pools = make_pools(/*rider_trips=*/1);
  spec.traces = &chained_pools;
  auto chained = SimulateHopsFs(HopsTopology{1, 2}, spec, cal);

  // Overlapped: request RTT + NN CPU + one DB RTT + max(service, service),
  // plus the response RTT FinishOp adds.
  const double expect_overlapped =
      2 * cal.client_nn_rtt_us + cal.nn_cpu_per_op_us + cal.nn_db_rtt_us + service_us;
  // Chained: a second DB RTT and the second service in sequence.
  const double expect_chained = expect_overlapped + cal.nn_db_rtt_us + service_us;
  ASSERT_GT(overlapped.ops, 0u);
  ASSERT_GT(chained.ops, 0u);
  EXPECT_NEAR(overlapped.latency_us.Mean(), expect_overlapped, expect_overlapped * 0.05);
  EXPECT_NEAR(chained.latency_us.Mean(), expect_chained, expect_chained * 0.05);
}

// A window co-scheduled by the completion mux (round_trips == 0 but
// co_scheduled set: its network trip was paid by ANOTHER transaction's
// window in the same round) must open its own scatter wave without a second
// DB round trip -- windows merged across transactions cost max, not sum, of
// their trips.
TEST(ModelOverlapTest, CoScheduledWindowFromAnotherTransactionCostsMaxNotSum) {
  Calibration cal;
  auto mix = wl::OpMix::Single(wl::OpType::kRead);

  constexpr uint32_t kRows = 100;
  const double service_us = cal.db_access_base_us + kRows * cal.db_row_cpu_us;
  auto make_pools = [&](bool co_scheduled) {
    wl::TracePools pools;
    pools.num_partitions = 2;
    wl::OpTrace trace;
    ndb::Access first;
    first.kind = ndb::AccessKind::kBatchRead;
    first.round_trips = 1;
    first.parts = {ndb::PartTouch{0, 0, kRows, false}};
    ndb::Access second;
    second.kind = ndb::AccessKind::kBatchRead;
    second.round_trips = co_scheduled ? 0 : 1;
    second.co_scheduled = co_scheduled;
    second.parts = {ndb::PartTouch{1, 1, kRows, false}};
    trace.accesses = {first, second};
    pools.pools[wl::OpType::kRead] = {trace};
    return pools;
  };

  WorkloadSpec spec;
  spec.mix = &mix;
  spec.num_clients = 1;
  spec.duration_s = 0.05;
  spec.warmup_s = 0;

  auto co_pools = make_pools(/*co_scheduled=*/true);
  spec.traces = &co_pools;
  auto co = SimulateHopsFs(HopsTopology{1, 2}, spec, cal);
  auto paid_pools = make_pools(/*co_scheduled=*/false);
  spec.traces = &paid_pools;
  auto paid = SimulateHopsFs(HopsTopology{1, 2}, spec, cal);

  // Co-scheduled: both windows scatter, but the second trip is shared with
  // another transaction -- only the service remains. A co-scheduled access
  // is still a window BOUNDARY (not a rider of the previous window), so its
  // service queues behind the first wave.
  const double expect_co = 2 * cal.client_nn_rtt_us + cal.nn_cpu_per_op_us +
                           cal.nn_db_rtt_us + 2 * service_us;
  const double expect_paid = expect_co + cal.nn_db_rtt_us;
  ASSERT_GT(co.ops, 0u);
  ASSERT_GT(paid.ops, 0u);
  EXPECT_NEAR(co.latency_us.Mean(), expect_co, expect_co * 0.05);
  EXPECT_NEAR(paid.latency_us.Mean(), expect_paid, expect_paid * 0.05);
}

// ---------------------------------------------------------------------------
// Cluster-model shape tests (trace-driven; small capture cluster).
// ---------------------------------------------------------------------------

class ModelTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    hops::fs::MiniClusterOptions options;
    options.db.num_datanodes = 12;
    options.db.replication = 2;
    options.db.partitions_per_table = 48;
    options.num_namenodes = 1;
    options.num_datanodes = 3;
    cluster_ = MiniCluster::Start(options)->release();
    // A reasonably wide namespace: with only a handful of top-level
    // directories the interior-resolution traffic concentrates on a few
    // partitions and the model (correctly) shows that skew instead of the
    // paper's uniform load.
    wl::NamespaceShape shape;
    shape.top_level_dirs = 16;
    ns_ = new wl::GeneratedNamespace(wl::PlanNamespace(shape, 2000, 11));
    wl::BulkLoader loader(&cluster_->db(), &cluster_->schema(), &cluster_->fs_config());
    ASSERT_TRUE(loader.Load(*ns_, 1.3, 0, 11).ok());
    auto mix = wl::OpMix::Spotify();
    pools_ = new wl::TracePools(wl::CollectTraces(*cluster_, *ns_, mix, 12, 11));
  }
  static void TearDownTestSuite() {
    delete pools_;
    delete ns_;
    delete cluster_;
  }

  using MiniCluster = hops::fs::MiniCluster;
  static MiniCluster* cluster_;
  static wl::GeneratedNamespace* ns_;
  static wl::TracePools* pools_;
};

ModelTest::MiniCluster* ModelTest::cluster_ = nullptr;
wl::GeneratedNamespace* ModelTest::ns_ = nullptr;
wl::TracePools* ModelTest::pools_ = nullptr;

TEST_F(ModelTest, HopsFsScalesWithNamenodes) {
  auto mix = wl::OpMix::Spotify();
  WorkloadSpec spec;
  spec.mix = &mix;
  spec.traces = pools_;
  spec.duration_s = 0.15;
  spec.warmup_s = 0.05;

  spec.num_clients = 128;
  auto one = SimulateHopsFs(HopsTopology{1, 12}, spec);
  spec.num_clients = 512;
  auto four = SimulateHopsFs(HopsTopology{4, 12}, spec);
  spec.num_clients = 1024;
  auto eight = SimulateHopsFs(HopsTopology{8, 12}, spec);
  EXPECT_GT(four.ops_per_sec, 3.0 * one.ops_per_sec);
  EXPECT_GT(eight.ops_per_sec, 1.7 * four.ops_per_sec);
}

TEST_F(ModelTest, SmallDbCapsThroughput) {
  auto mix = wl::OpMix::Spotify();
  WorkloadSpec spec;
  spec.mix = &mix;
  spec.traces = pools_;
  spec.duration_s = 0.15;
  spec.warmup_s = 0.05;
  spec.num_clients = 2048;
  auto small_db = SimulateHopsFs(HopsTopology{32, 2}, spec);
  auto big_db = SimulateHopsFs(HopsTopology{32, 12}, spec);
  EXPECT_GT(big_db.ops_per_sec, 1.3 * small_db.ops_per_sec)
      << "a 2-node NDB cluster must saturate well below a 12-node one";
  EXPECT_GT(small_db.db_utilization, 0.85) << "the small DB should be the bottleneck";
}

TEST_F(ModelTest, HdfsThroughputCollapsesWithWrites) {
  WorkloadSpec spec;
  spec.duration_s = 0.3;
  spec.warmup_s = 0.05;
  spec.num_clients = 256;
  auto spotify = wl::OpMix::Spotify();
  spec.mix = &spotify;
  auto read_heavy = SimulateHdfs(spec);
  auto writey = wl::OpMix::WriteIntensive(20.0);
  spec.mix = &writey;
  auto write_heavy = SimulateHdfs(spec);
  EXPECT_GT(read_heavy.ops_per_sec, 2.5 * write_heavy.ops_per_sec)
      << "the global lock serializes mutations (Table 2's trend)";
}

TEST_F(ModelTest, HopsFsBeatsHdfsAndFactorGrowsWithWrites) {
  WorkloadSpec spec;
  spec.duration_s = 0.15;
  spec.warmup_s = 0.05;
  spec.traces = pools_;

  auto spotify = wl::OpMix::Spotify();
  spec.mix = &spotify;
  spec.num_clients = 3072;
  auto hops_spotify = SimulateHopsFs(HopsTopology{60, 12}, spec);
  spec.num_clients = 256;
  auto hdfs_spotify = SimulateHdfs(spec);
  double factor_spotify = hops_spotify.ops_per_sec / hdfs_spotify.ops_per_sec;
  EXPECT_GT(factor_spotify, 8) << "paper: 16x for the Spotify workload";

  auto writey = wl::OpMix::WriteIntensive(20.0);
  spec.mix = &writey;
  spec.num_clients = 3072;
  auto hops_writes = SimulateHopsFs(HopsTopology{60, 12}, spec);
  spec.num_clients = 256;
  auto hdfs_writes = SimulateHdfs(spec);
  double factor_writes = hops_writes.ops_per_sec / hdfs_writes.ops_per_sec;
  EXPECT_GT(factor_writes, factor_spotify)
      << "paper: the scaling factor grows with the write share (Table 2)";
}

TEST_F(ModelTest, HdfsFailoverStopsServiceHopsFsDoesNot) {
  auto mix = wl::OpMix::Spotify();
  WorkloadSpec spec;
  spec.mix = &mix;
  spec.traces = pools_;
  spec.num_clients = 256;
  spec.duration_s = 30;
  spec.warmup_s = 0;

  Calibration cal;
  cal.hdfs_failover_s = 9.0;
  auto hdfs = SimulateHdfs(spec, cal, /*kill_active_at_s=*/10, /*timeline_bucket_s=*/1);
  ASSERT_GE(hdfs.timeline_ops_per_sec.size(), 25u);
  EXPECT_GT(hdfs.timeline_ops_per_sec[5], 0);
  double during = hdfs.timeline_ops_per_sec[13];
  EXPECT_LT(during, hdfs.timeline_ops_per_sec[5] * 0.05)
      << "no service during HDFS failover";
  EXPECT_GT(hdfs.timeline_ops_per_sec[25], hdfs.timeline_ops_per_sec[5] * 0.5)
      << "service resumes after the standby takes over";

  std::vector<FailureEvent> failures{{10.0, 1, -1}};
  auto hops = SimulateHopsFs(HopsTopology{4, 12}, spec, cal, failures, 1);
  ASSERT_GE(hops.timeline_ops_per_sec.size(), 25u);
  double before = hops.timeline_ops_per_sec[5];
  double after = hops.timeline_ops_per_sec[13];
  EXPECT_GT(after, before * 0.6) << "HopsFS keeps serving when one namenode dies";
}

TEST_F(ModelTest, LatencyRisesWithClientCount) {
  auto mix = wl::OpMix::Spotify();
  WorkloadSpec spec;
  spec.mix = &mix;
  spec.traces = pools_;
  spec.duration_s = 0.15;
  spec.warmup_s = 0.05;
  HopsTopology topo{8, 12};
  spec.num_clients = 64;
  auto light = SimulateHopsFs(topo, spec);
  spec.num_clients = 4096;
  auto heavy = SimulateHopsFs(topo, spec);
  EXPECT_GT(heavy.latency_us.Mean(), light.latency_us.Mean());
  EXPECT_GT(light.ops, 0u);
  EXPECT_GT(heavy.per_op_latency_us.at(wl::OpType::kRead).count(), 0u);
}

}  // namespace
}  // namespace hops::sim
