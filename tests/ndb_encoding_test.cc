// Order-preserving key encoding: the per-partition primary index depends on
// byte order == tuple order and on prefix containment.
#include <gtest/gtest.h>

#include "ndb/value.h"

namespace hops::ndb {
namespace {

std::string Enc(const Key& k) { return EncodeKey(k); }

TEST(EncodingTest, IntOrderPreserved) {
  EXPECT_LT(Enc({int64_t{-5}}), Enc({int64_t{-1}}));
  EXPECT_LT(Enc({int64_t{-1}}), Enc({int64_t{0}}));
  EXPECT_LT(Enc({int64_t{0}}), Enc({int64_t{1}}));
  EXPECT_LT(Enc({int64_t{1}}), Enc({int64_t{1000000}}));
  EXPECT_LT(Enc({int64_t{1000000}}), Enc({INT64_MAX}));
  EXPECT_LT(Enc({INT64_MIN}), Enc({int64_t{-1000000}}));
}

TEST(EncodingTest, StringOrderPreserved) {
  EXPECT_LT(Enc({"a"}), Enc({"b"}));
  EXPECT_LT(Enc({"a"}), Enc({"aa"}));
  EXPECT_LT(Enc({"abc"}), Enc({"abd"}));
  EXPECT_LT(Enc({""}), Enc({"a"}));
}

TEST(EncodingTest, EmbeddedNulHandled) {
  std::string with_nul("a\0b", 3);
  EXPECT_LT(Enc({"a"}), Enc({Value(with_nul)}));
  EXPECT_LT(Enc({Value(with_nul)}), Enc({"ab"}));
  EXPECT_NE(Enc({Value(with_nul)}), Enc({"ab"}));
}

TEST(EncodingTest, TupleOrderIsComponentwise) {
  EXPECT_LT(Enc({int64_t{1}, "zzz"}), Enc({int64_t{2}, "aaa"}));
  EXPECT_LT(Enc({int64_t{2}, "aaa"}), Enc({int64_t{2}, "aab"}));
}

TEST(EncodingTest, PrefixContainment) {
  // Encoding of (a) must be a byte prefix of (a, b): prefix scans rely on it.
  std::string parent = Enc({int64_t{42}});
  std::string child1 = Enc({int64_t{42}, "foo"});
  std::string child2 = Enc({int64_t{42}, ""});
  EXPECT_EQ(child1.compare(0, parent.size(), parent), 0);
  EXPECT_EQ(child2.compare(0, parent.size(), parent), 0);
  // A different parent id must not share the prefix.
  std::string other = Enc({int64_t{43}, "foo"});
  EXPECT_NE(other.compare(0, parent.size(), parent), 0);
}

TEST(EncodingTest, DistinctKeysDistinctEncodings) {
  EXPECT_NE(Enc({int64_t{1}, "ab"}), Enc({int64_t{1}, "a"}));
  EXPECT_NE(Enc({"1"}), Enc({int64_t{1}}));
}

TEST(ValueTest, TypeAccessors) {
  Value i(int64_t{7});
  Value s("hello");
  EXPECT_TRUE(i.is_int());
  EXPECT_TRUE(s.is_string());
  EXPECT_EQ(i.i64(), 7);
  EXPECT_EQ(s.str(), "hello");
  EXPECT_EQ(i.type(), ColumnType::kInt64);
  EXPECT_EQ(s.type(), ColumnType::kString);
}

TEST(ValueTest, DebugString) {
  Row r{int64_t{1}, "x"};
  EXPECT_EQ(ToDebugString(r), "(1, \"x\")");
}

}  // namespace
}  // namespace hops::ndb
