// Chaos harness tests: the seeded fault injector, fault-plan determinism,
// the crash-point sweep (a namenode dies at EVERY intent-log boundary and
// the replay must be idempotent with no lost ack), the adoption race (two
// would-be leaders adopting a dead namenode's partition concurrently), the
// resumed-identity restart regression, and the multi-seed smoke run of the
// full harness with its three oracles.
//
// Seeds: HOPS_CHAOS_SEED runs one specific seed (reproducing a CI failure);
// HOPS_CHAOS_LONG=1 widens the sweep for the nightly job.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "chaos/chaos.h"
#include "hopsfs/mini_cluster.h"
#include "ndb/fault.h"

namespace hops::chaos {
namespace {

using fs::MiniCluster;
using fs::MiniClusterOptions;
using fs::Namenode;

// --- Fault injector ----------------------------------------------------------

class FaultInjectorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cluster_ = std::make_unique<ndb::Cluster>(ndb::ClusterConfig{
        .num_datanodes = 2,
        .replication = 2,
    });
    ndb::Schema s;
    s.table_name = "t";
    s.columns = {{"k", ndb::ColumnType::kInt64}, {"v", ndb::ColumnType::kInt64}};
    s.primary_key = {0};
    s.partition_key = {0};
    table_ = *cluster_->CreateTable(s);
    auto tx = cluster_->Begin();
    ASSERT_TRUE(tx->Insert(table_, ndb::Row{int64_t{1}, int64_t{10}}).ok());
    ASSERT_TRUE(tx->Commit().ok());
  }

  std::unique_ptr<ndb::Cluster> cluster_;
  ndb::TableId table_ = 0;
};

TEST_F(FaultInjectorTest, DisarmedInjectorNeverFires) {
  auto tx = cluster_->Begin();
  EXPECT_TRUE(tx->Read(table_, {int64_t{1}}, ndb::LockMode::kShared).ok());
  EXPECT_EQ(cluster_->fault_injector().injected_errors(), 0u);
}

TEST_F(FaultInjectorTest, CertainErrorAbortsTheTransaction) {
  ndb::FaultInjector& inj = cluster_->fault_injector();
  inj.Seed(7);
  inj.Arm(table_, {/*error_probability=*/1.0, 0.0, std::chrono::microseconds{0}});
  auto tx = cluster_->Begin();
  auto read = tx->Read(table_, {int64_t{1}}, ndb::LockMode::kShared);
  EXPECT_EQ(read.status().code(), hops::StatusCode::kTxAborted);
  EXPECT_FALSE(tx->active());  // per-row faults mirror coordinator failure
  EXPECT_GE(inj.injected_errors(), 1u);

  inj.Disarm(table_);
  auto tx2 = cluster_->Begin();
  EXPECT_TRUE(tx2->Read(table_, {int64_t{1}}, ndb::LockMode::kShared).ok());
}

TEST_F(FaultInjectorTest, WildcardSpecCoversEveryTable) {
  ndb::FaultInjector& inj = cluster_->fault_injector();
  inj.Seed(7);
  inj.Arm(ndb::FaultInjector::kAllTables,
          {/*error_probability=*/1.0, 0.0, std::chrono::microseconds{0}});
  auto tx = cluster_->Begin();
  EXPECT_EQ(tx->Read(table_, {int64_t{1}}, ndb::LockMode::kShared).status().code(),
            hops::StatusCode::kTxAborted);
  inj.DisarmAll();
  EXPECT_FALSE(inj.armed());
}

TEST_F(FaultInjectorTest, LatencySpecDelaysWithoutFailing) {
  ndb::FaultInjector& inj = cluster_->fault_injector();
  inj.Seed(7);
  inj.Arm(table_, {0.0, /*delay_probability=*/1.0, std::chrono::microseconds{500}});
  auto tx = cluster_->Begin();
  EXPECT_TRUE(tx->Read(table_, {int64_t{1}}, ndb::LockMode::kShared).ok());
  EXPECT_GE(inj.injected_delays(), 1u);
  EXPECT_EQ(inj.injected_errors(), 0u);
}

TEST_F(FaultInjectorTest, SeededDiceAreReproducible) {
  // Same seed, same access sequence => same injected-error pattern.
  auto run = [this](uint64_t seed) {
    ndb::FaultInjector& inj = cluster_->fault_injector();
    inj.Seed(seed);
    inj.Arm(table_, {0.5, 0.0, std::chrono::microseconds{0}});
    std::vector<bool> outcomes;
    for (int i = 0; i < 32; ++i) {
      auto tx = cluster_->Begin();
      outcomes.push_back(tx->Read(table_, {int64_t{1}}, ndb::LockMode::kShared).ok());
      if (tx->active()) (void)tx->Abort();
    }
    inj.Disarm(table_);
    return outcomes;
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));
}

// --- Fault plans -------------------------------------------------------------

TEST(FaultPlanTest, PureFunctionOfTheSeed) {
  ChaosOptions o;
  o.seed = 1234;
  FaultPlan a = GeneratePlan(o);
  FaultPlan b = GeneratePlan(o);
  EXPECT_EQ(a.Fingerprint(), b.Fingerprint());
  ASSERT_EQ(a.events.size(), b.events.size());
  for (size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].fault, b.events[i].fault);
    EXPECT_EQ(a.events[i].at_ms, b.events[i].at_ms);
    EXPECT_EQ(a.events[i].dwell_ms, b.events[i].dwell_ms);
    EXPECT_EQ(a.events[i].target, b.events[i].target);
  }
  o.seed = 1235;
  EXPECT_NE(GeneratePlan(o).Fingerprint(), a.Fingerprint());
}

TEST(FaultPlanTest, OnlyClassFilterKeepsTimingAligned) {
  // The schedule Rng draws every field regardless of the class filter, so a
  // per-class bench run reuses the SAME fault times as the mixed run.
  ChaosOptions mixed;
  mixed.seed = 99;
  ChaosOptions filtered = mixed;
  filtered.only_class = FaultClass::kNamenodeCrash;
  FaultPlan a = GeneratePlan(mixed);
  FaultPlan b = GeneratePlan(filtered);
  ASSERT_EQ(a.events.size(), b.events.size());
  for (size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].at_ms, b.events[i].at_ms);
    EXPECT_EQ(b.events[i].fault, FaultClass::kNamenodeCrash);
  }
}

TEST(FaultPlanTest, PinnedSingleEventSchedule) {
  ChaosOptions o;
  o.seed = 7;
  o.num_faults = 1;
  o.only_class = FaultClass::kNdbLatency;
  o.pin_at_ms = 1000;
  o.pin_dwell_ms = 300;
  FaultPlan plan = GeneratePlan(o);
  ASSERT_EQ(plan.events.size(), 1u);
  EXPECT_EQ(plan.events[0].fault, FaultClass::kNdbLatency);
  EXPECT_EQ(plan.events[0].at_ms, 1000);
  EXPECT_EQ(plan.events[0].dwell_ms, 300);
}

// --- Crash-point sweep (satellite: every append/apply/cleanup boundary) ------

class CrashPointSweepTest : public ::testing::Test {
 protected:
  static constexpr std::string_view kPoints[] = {
      "append:pre-commit", "append:post-commit", "apply:claimed", "apply:applied",
      "cleanup:pre",       "cleanup:mid",        "cleanup:post",
  };

  std::unique_ptr<MiniCluster> NewCluster() {
    MiniClusterOptions o;
    o.db.num_datanodes = 4;
    o.db.replication = 2;
    o.fs.async_metadata_commit = true;
    o.num_namenodes = 2;
    auto cluster = MiniCluster::Start(o);
    EXPECT_TRUE(cluster.ok()) << cluster.status().ToString();
    return cluster.ok() ? *std::move(cluster) : nullptr;
  }

  // Ticks heartbeats until the intent table is empty (dead publishers aged
  // out and adopted) or the deadline passes; returns the remaining rows.
  static size_t DrainAll(MiniCluster& cluster) {
    for (int round = 0; round < 400; ++round) {
      cluster.TickHeartbeats();
      cluster.DrainIntents();
      if (cluster.db().TableRowCount(cluster.schema().op_intents) == 0) return 0;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return cluster.db().TableRowCount(cluster.schema().op_intents);
  }

  static bool WaitFor(const std::atomic<bool>& flag) {
    for (int i = 0; i < 1000 && !flag.load(); ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return flag.load();
  }
};

TEST_F(CrashPointSweepTest, EveryBoundaryReplaysIdempotentlyWithNoLostAck) {
  for (std::string_view point : kPoints) {
    SCOPED_TRACE(std::string(point));
    auto cluster = NewCluster();
    ASSERT_NE(cluster, nullptr);
    Namenode* victim = &cluster->namenode(0);

    // Setup ops complete (acked + applied) before the crash hook arms, so
    // the crash hits exactly the op(s) submitted afterwards.
    ASSERT_TRUE(victim->Mkdirs("/sweep").ok());
    victim->FlushIntents();

    const bool cleanup_mid = point == "cleanup:mid";
    if (cleanup_mid) victim->SetIntentCleanerPausedForTesting(true);

    std::atomic<bool> fired{false};
    victim->SetIntentCrashHookForTesting([&fired, victim, point](std::string_view p) {
      if (p == point && !fired.exchange(true)) {
        victim->Kill();  // the whole namenode process dies at this boundary
        return true;
      }
      return false;
    });

    // Acked paths that MUST survive the crash. Ops returning kFailover were
    // never acknowledged; the oracle owes them nothing (either outcome is
    // legal), so they are simply not recorded.
    std::vector<std::string> acked{"/sweep"};
    if (cleanup_mid) {
      // cleanup:mid only exists with >64 records in one cleaner batch: let
      // the paused cleaner accumulate 70 applied records, then release it.
      for (int i = 0; i < 70; ++i) {
        std::string path = "/sweep/f" + std::to_string(i);
        hops::Status st = victim->Create(path, "sweeper");
        ASSERT_TRUE(st.ok()) << st.ToString();
        acked.push_back(path);
      }
      // FlushIntents would wait for the (paused) cleanup queue too; wait on
      // the applied counter instead, then release the cleaner into its
      // 70-record batch (2 chunks -- the only way cleanup:mid can fire).
      for (int i = 0; i < 1000 && victim->intent_stats().intents_applied < 71; ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
      ASSERT_GE(victim->intent_stats().intents_applied, 71u);
      victim->SetIntentCleanerPausedForTesting(false);
    } else {
      hops::Status st = victim->Create("/sweep/target", "sweeper");
      if (st.ok()) acked.push_back("/sweep/target");
    }

    ASSERT_TRUE(WaitFor(fired)) << "crash point never reached: " << point;
    EXPECT_FALSE(victim->alive());

    // Restart the slot under a fresh id; the survivors' heartbeats age the
    // dead id out and the leader adopts its surviving partition.
    ASSERT_TRUE(cluster->RestartNamenode(0).ok());
    EXPECT_EQ(DrainAll(*cluster), 0u) << "intent rows stranded after " << point;

    Namenode& survivor = cluster->namenode(1);
    for (const std::string& path : acked) {
      auto info = survivor.GetFileInfo(path);
      EXPECT_TRUE(info.ok()) << "acked op lost at " << point << ": " << path << " ("
                             << info.status().ToString() << ")";
    }

    // Replay idempotence: crashing and readopting AGAIN (no new ops) must
    // change nothing -- the log is empty, so the sweep finds nothing.
    cluster->KillNamenode(0);
    ASSERT_TRUE(cluster->RestartNamenode(0).ok());
    EXPECT_EQ(DrainAll(*cluster), 0u);
    for (const std::string& path : acked) {
      EXPECT_TRUE(cluster->namenode(1).GetFileInfo(path).ok());
    }
  }
}

// --- Adoption race (satellite: two leaders-elect, one dead partition) --------

TEST(AdoptionRaceTest, ConcurrentAdoptersNeverDoubleApplyOrStrandRecords) {
  MiniClusterOptions o;
  o.db.num_datanodes = 4;
  o.db.replication = 2;
  o.fs.async_metadata_commit = true;
  o.num_namenodes = 3;
  auto cluster_or = MiniCluster::Start(o);
  ASSERT_TRUE(cluster_or.ok()) << cluster_or.status().ToString();
  auto cluster = *std::move(cluster_or);

  // Build a backlog: the victim acknowledges ops its paused applier never
  // applies, then dies -- the backlog is exactly its durable partition.
  Namenode& victim = cluster->namenode(2);
  victim.SetIntentApplierPausedForTesting(true);
  constexpr int kFiles = 20;
  ASSERT_TRUE(victim.Mkdirs("/race").ok());
  for (int i = 0; i < kFiles; ++i) {
    ASSERT_TRUE(victim.Create("/race/f" + std::to_string(i), "racer").ok());
  }
  ASSERT_GT(cluster->db().TableRowCount(cluster->schema().op_intents), 0u);
  cluster->KillNamenode(2);

  // Age the dead id out of both survivors' membership views.
  for (int round = 0; round < 6; ++round) {
    (void)cluster->namenode(0).Heartbeat();
    (void)cluster->namenode(1).Heartbeat();
  }

  // Both survivors believe they should adopt; race the sweeps.
  std::thread a([&] { cluster->namenode(0).AdoptOrphanedIntentsForTesting(); });
  std::thread b([&] { cluster->namenode(1).AdoptOrphanedIntentsForTesting(); });
  a.join();
  b.join();

  // No stranded records (racing deletes tolerate each other's consumption).
  for (int round = 0; round < 100; ++round) {
    if (cluster->db().TableRowCount(cluster->schema().op_intents) == 0) break;
    cluster->namenode(0).AdoptOrphanedIntentsForTesting();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(cluster->db().TableRowCount(cluster->schema().op_intents), 0u);

  // No double-apply: every acked file exists exactly once, nothing extra.
  auto listing = cluster->namenode(0).ListStatus("/race");
  ASSERT_TRUE(listing.ok()) << listing.status().ToString();
  EXPECT_EQ(listing->size(), static_cast<size_t>(kFiles));
  for (int i = 0; i < kFiles; ++i) {
    EXPECT_TRUE(cluster->namenode(0).GetFileInfo("/race/f" + std::to_string(i)).ok());
  }
}

// --- Resumed-identity restart (satellite: old nn_id mid-drain) ---------------

TEST(RestartSameIdTest, ResumedNamenodeDrainsItsOwnBacklogAndKeepsLiveness) {
  MiniClusterOptions o;
  o.db.num_datanodes = 4;
  o.db.replication = 2;
  o.fs.async_metadata_commit = true;
  o.num_namenodes = 2;
  auto cluster_or = MiniCluster::Start(o);
  ASSERT_TRUE(cluster_or.ok()) << cluster_or.status().ToString();
  auto cluster = *std::move(cluster_or);

  Namenode& before = cluster->namenode(0);
  const fs::NamenodeId old_id = before.id();
  before.SetIntentApplierPausedForTesting(true);
  ASSERT_TRUE(before.Mkdirs("/resume").ok());
  constexpr int kFiles = 10;
  for (int i = 0; i < kFiles; ++i) {
    ASSERT_TRUE(before.Create("/resume/f" + std::to_string(i), "w").ok());
  }
  ASSERT_GT(cluster->db().TableRowCount(cluster->schema().op_intents), 0u);

  // Process restart keeping the identity: the new incarnation must replay
  // its OWN partition at Start -- no peer has declared it dead, so nobody
  // else will (the acked ops would otherwise strand = lost acks).
  ASSERT_TRUE(cluster->RestartNamenodeSameId(0).ok());
  Namenode& after = cluster->namenode(0);
  EXPECT_EQ(after.id(), old_id);

  for (const char* path : {"/resume", "/resume/f0", "/resume/f9"}) {
    auto info = after.GetFileInfo(path);
    EXPECT_TRUE(info.ok()) << path << ": " << info.status().ToString();
  }
  for (int round = 0; round < 100; ++round) {
    if (cluster->db().TableRowCount(cluster->schema().op_intents) == 0) break;
    cluster->TickHeartbeats();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(cluster->db().TableRowCount(cluster->schema().op_intents), 0u);

  // Election-counter continuity: the resumed id never reads as dead to its
  // peer (a counter restarting at zero would look like missed heartbeats
  // and invite wrongful adoption + ack GC of the live namenode's logs).
  (void)after.Heartbeat();
  (void)cluster->namenode(1).Heartbeat();
  EXPECT_TRUE(cluster->namenode(1).election().IsNamenodeAlive(old_id));

  // And the resumed incarnation keeps acking + applying at fresh sequence
  // numbers (the preserved head row keeps sequences monotonic across the gap).
  ASSERT_TRUE(after.Create("/resume/after-restart", "w").ok());
  after.FlushIntents();
  EXPECT_TRUE(after.GetFileInfo("/resume/after-restart").ok());
}

// --- Full-harness smoke (tentpole oracle run) --------------------------------

TEST(ChaosSmokeTest, SeededRunsSatisfyAllOracles) {
  std::vector<uint64_t> seeds;
  if (const char* env = std::getenv("HOPS_CHAOS_SEED"); env != nullptr && env[0] != '\0') {
    seeds.push_back(std::strtoull(env, nullptr, 10));
  } else if (const char* lng = std::getenv("HOPS_CHAOS_LONG");
             lng != nullptr && lng[0] == '1') {
    for (uint64_t s = 1; s <= 8; ++s) seeds.push_back(s);
  } else {
    seeds = {1, 2};
  }
  const bool long_run = std::getenv("HOPS_CHAOS_LONG") != nullptr;

  // Every seed runs against BOTH KV backends: the oracles (convergence, no
  // lost ack, bounded unavailability) are engine-independent claims, so a
  // schedule that holds under 2PL must also hold under OCC retries. When
  // HOPS_KV_ENGINE is set it wins inside MiniCluster::Start and both legs
  // exercise the pinned engine.
  for (kv::EngineKind engine : {kv::EngineKind::kNdb, kv::EngineKind::kOcc}) {
    for (uint64_t seed : seeds) {
      SCOPED_TRACE("HOPS_CHAOS_SEED=" + std::to_string(seed) + " engine=" +
                   std::string(kv::EngineKindName(engine)));
      ChaosOptions o;
      o.engine = engine;
      o.seed = seed;
      o.duration = std::chrono::milliseconds(long_run ? 8000 : 2500);
      o.num_faults = long_run ? 10 : 5;
      ChaosReport report = RunChaos(o);
      for (const std::string& v : report.violations) ADD_FAILURE() << v;
      EXPECT_GT(report.ops_acked, 0u);
      // The plan itself must be reproducible from the seed alone.
      EXPECT_EQ(report.plan.Fingerprint(), GeneratePlan(o).Fingerprint());
    }
  }
}

}  // namespace
}  // namespace hops::chaos
