// Asynchronous metadata commits: the ordered intent log's acknowledgment
// semantics (validate -> reserve -> durable append), read-your-writes via
// the pending index + covering waits, conflict detection against
// acknowledged-but-unapplied state, and the crash path -- acknowledged
// intents surviving namenode death and being replayed in order by the
// leader's adoption sweep.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "hopsfs/mini_cluster.h"

namespace hops::fs {
namespace {

class IntentLogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MiniClusterOptions options;
    options.db.num_datanodes = 4;
    options.db.replication = 2;
    options.fs.async_metadata_commit = true;
    options.num_namenodes = 2;
    auto cluster = MiniCluster::Start(options);
    ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
    cluster_ = *std::move(cluster);
  }

  // Sorted (path, is_dir) fingerprint of the committed namespace under `root`.
  static void ListTree(Namenode& nn, const std::string& root,
                       std::vector<std::tuple<std::string, bool>>& out) {
    auto listing = nn.ListStatus(root);
    ASSERT_TRUE(listing.ok()) << root << ": " << listing.status().ToString();
    for (const auto& st : *listing) {
      std::string child = root + "/" + st.name;
      out.emplace_back(child, st.is_dir);
      if (st.is_dir) ListTree(nn, child, out);
    }
  }
  static std::vector<std::tuple<std::string, bool>> Fingerprint(Namenode& nn,
                                                                const std::string& root) {
    std::vector<std::tuple<std::string, bool>> out;
    ListTree(nn, root, out);
    std::sort(out.begin(), out.end());
    return out;
  }

  std::unique_ptr<MiniCluster> cluster_;
};

TEST_F(IntentLogTest, CreateAcksBeforeApplyAndReadWaitsForIt) {
  Namenode& nn = cluster_->namenode(0);
  ASSERT_TRUE(nn.Mkdirs("/d").ok());
  nn.FlushIntents();

  IntentLogStats before = nn.intent_stats();
  nn.SetIntentApplierPausedForTesting(true);
  // Acknowledged while the apply stage is parked: the op returned at intent
  // durability, not at transaction commit.
  ASSERT_TRUE(nn.Create("/d/f", "writer").ok());
  IntentLogStats stats = nn.intent_stats();
  EXPECT_EQ(stats.intents_appended - before.intents_appended, 1u);
  EXPECT_EQ(stats.intents_applied, before.intents_applied);
  EXPECT_EQ(stats.acked_ops - before.acked_ops, 1u);
  // Durable in the log, not yet in the inode table.
  EXPECT_GT(cluster_->db().TableRowCount(cluster_->schema().op_intents), 0u);

  // A read of the covered path blocks until the covering intent applies
  // (read-your-writes), instead of reporting NotFound from committed state.
  std::atomic<bool> stat_done{false};
  std::thread reader([&] {
    auto info = nn.GetFileInfo("/d/f");
    EXPECT_TRUE(info.ok()) << info.status().ToString();
    if (info.ok()) EXPECT_FALSE(info->is_dir);
    stat_done.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(stat_done.load()) << "the stat must wait out the unapplied intent";
  nn.SetIntentApplierPausedForTesting(false);
  reader.join();
  EXPECT_TRUE(stat_done.load());

  nn.FlushIntents();
  stats = nn.intent_stats();
  EXPECT_EQ(stats.intents_applied, stats.intents_appended);
  EXPECT_GE(stats.covering_waits, 1u);
  EXPECT_EQ(cluster_->db().TableRowCount(cluster_->schema().op_intents), 0u);
}

TEST_F(IntentLogTest, ConflictsValidateAgainstAcknowledgedState) {
  Namenode& nn = cluster_->namenode(0);
  ASSERT_TRUE(nn.Mkdirs("/c").ok());
  nn.FlushIntents();
  nn.SetIntentApplierPausedForTesting(true);

  ASSERT_TRUE(nn.Create("/c/f", "w1").ok());
  // A second create of the same path must lose against the PENDING file --
  // without waiting for it to apply.
  EXPECT_EQ(nn.Create("/c/f", "w2").code(), hops::StatusCode::kAlreadyExists);
  // A path through the pending file is not a directory.
  EXPECT_EQ(nn.Create("/c/f/x", "w3").code(), hops::StatusCode::kNotDirectory);
  EXPECT_EQ(nn.Mkdirs("/c/f/x").code(), hops::StatusCode::kNotDirectory);

  // Creating UNDER an acknowledged-but-unapplied mkdirs chain validates
  // against the pending index alone (nothing below an unapplied directory
  // exists committed) and acks without blocking.
  ASSERT_TRUE(nn.Mkdirs("/c/a/b").ok());
  ASSERT_TRUE(nn.Create("/c/a/b/leaf", "w4").ok());
  // Re-acknowledged mkdirs over the pending chain is idempotent.
  ASSERT_TRUE(nn.Mkdirs("/c/a/b").ok());
  // Missing pending level under a pending chain is NotFound.
  EXPECT_EQ(nn.Create("/c/a/missing/leaf", "w5").code(), hops::StatusCode::kNotFound);

  nn.SetIntentApplierPausedForTesting(false);
  nn.FlushIntents();
  // Everything acknowledged materialized, in order.
  EXPECT_TRUE(nn.GetFileInfo("/c/f").ok());
  auto leaf = nn.GetFileInfo("/c/a/b/leaf");
  ASSERT_TRUE(leaf.ok());
  EXPECT_FALSE(leaf->is_dir);
  EXPECT_EQ(nn.intent_stats().apply_failures, 0u);
}

TEST_F(IntentLogTest, SetattrRidesTheLogOnPendingAndCommittedFiles) {
  Namenode& nn = cluster_->namenode(0);
  ASSERT_TRUE(nn.Mkdirs("/s").ok());
  ASSERT_TRUE(nn.Create("/s/committed", "w").ok());
  nn.FlushIntents();

  nn.SetIntentApplierPausedForTesting(true);
  ASSERT_TRUE(nn.Create("/s/pending", "w").ok());
  // Both the pending and the committed file accept an async chmod/chown.
  ASSERT_TRUE(nn.SetPermission("/s/pending", 0700).ok());
  ASSERT_TRUE(nn.SetPermission("/s/committed", 0711).ok());
  ASSERT_TRUE(nn.SetOwner("/s/pending", "alice", "users").ok());
  nn.SetIntentApplierPausedForTesting(false);
  nn.FlushIntents();

  auto pending = nn.GetFileInfo("/s/pending");
  ASSERT_TRUE(pending.ok());
  EXPECT_EQ(pending->perm, 0700);
  EXPECT_EQ(pending->owner, "alice");
  auto committed = nn.GetFileInfo("/s/committed");
  ASSERT_TRUE(committed.ok());
  EXPECT_EQ(committed->perm, 0711);
  EXPECT_EQ(nn.intent_stats().apply_failures, 0u);
}

TEST_F(IntentLogTest, AppendCoalescesQueuedIntentsIntoOneTransaction) {
  Namenode& nn = cluster_->namenode(0);
  ASSERT_TRUE(nn.Mkdirs("/g").ok());
  nn.FlushIntents();
  // Hold group-commit leadership so every thread's first create parks in the
  // append queue -- exactly what happens when they arrive while another
  // leader's append transaction is in flight -- then release: one leader
  // must drain all of them in a single transaction. The remaining creates
  // race naturally.
  constexpr int kThreads = 8;
  nn.SetIntentAppendHoldForTesting(true);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 8; ++i) {
        EXPECT_TRUE(
            nn.Create("/g/f" + std::to_string(t) + "_" + std::to_string(i), "w").ok());
      }
    });
  }
  while (nn.IntentQueuedAppendsForTesting() < kThreads) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  nn.SetIntentAppendHoldForTesting(false);
  for (auto& t : threads) t.join();
  nn.FlushIntents();
  IntentLogStats stats = nn.intent_stats();
  EXPECT_EQ(stats.intents_applied, stats.intents_appended);
  EXPECT_GE(stats.intents_coalesced, static_cast<uint64_t>(kThreads - 1))
      << "the parked submissions must share one append transaction";
  auto listing = nn.ListStatus("/g");
  ASSERT_TRUE(listing.ok());
  EXPECT_EQ(listing->size(), static_cast<size_t>(kThreads * 8));
}

TEST_F(IntentLogTest, CrashReplayLosesNoAcknowledgedOp) {
  Namenode& nn0 = cluster_->namenode(0);
  ASSERT_TRUE(nn0.Mkdirs("/crash").ok());
  nn0.FlushIntents();

  // Acknowledge a batch of ops and KILL the namenode before any of them
  // applies: durable intents, empty committed namespace below /crash.
  nn0.SetIntentApplierPausedForTesting(true);
  std::vector<std::string> acked_files;
  ASSERT_TRUE(nn0.Mkdirs("/crash/dir/sub").ok());
  for (int i = 0; i < 6; ++i) {
    std::string path = "/crash/f" + std::to_string(i);
    ASSERT_TRUE(nn0.Create(path, "w").ok());
    acked_files.push_back(path);
  }
  ASSERT_TRUE(nn0.Create("/crash/dir/sub/leaf", "w").ok());
  ASSERT_TRUE(nn0.SetPermission("/crash/f0", 0700).ok());
  uint64_t logged = cluster_->db().TableRowCount(cluster_->schema().op_intents);
  ASSERT_GE(logged, 9u);

  cluster_->KillNamenode(0);
  // The survivor's election view must age the dead namenode out before its
  // log partition is adopted; then the leader's heartbeat replays it.
  cluster_->TickHeartbeats(6);
  ASSERT_TRUE(cluster_->RestartNamenode(0).ok());
  cluster_->TickHeartbeats(6);

  // Every acknowledged op survived the crash.
  Namenode& nn1 = cluster_->namenode(1);
  for (const auto& path : acked_files) {
    auto info = nn1.GetFileInfo(path);
    EXPECT_TRUE(info.ok()) << path << " lost in the crash: " << info.status().ToString();
  }
  auto leaf = nn1.GetFileInfo("/crash/dir/sub/leaf");
  ASSERT_TRUE(leaf.ok()) << "ordered replay must materialize parents before children";
  EXPECT_FALSE(leaf->is_dir);
  auto chmodded = nn1.GetFileInfo("/crash/f0");
  ASSERT_TRUE(chmodded.ok());
  EXPECT_EQ(chmodded->perm, 0700) << "the acked chmod must replay after the create";

  // The adopted partition is consumed: no intent rows, no orphaned head row.
  EXPECT_EQ(cluster_->db().TableRowCount(cluster_->schema().op_intents), 0u);
  EXPECT_GE(cluster_->AggregateIntentStats().intents_adopted, 9u);

  // The replayed namespace matches a synchronous oracle of the same ops.
  MiniClusterOptions sync_options;
  sync_options.db.num_datanodes = 4;
  sync_options.db.replication = 2;
  sync_options.num_namenodes = 1;
  auto oracle = MiniCluster::Start(sync_options);
  ASSERT_TRUE(oracle.ok());
  Namenode& onn = (*oracle)->namenode(0);
  ASSERT_TRUE(onn.Mkdirs("/crash").ok());
  ASSERT_TRUE(onn.Mkdirs("/crash/dir/sub").ok());
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(onn.Create("/crash/f" + std::to_string(i), "w").ok());
  }
  ASSERT_TRUE(onn.Create("/crash/dir/sub/leaf", "w").ok());
  ASSERT_TRUE(onn.SetPermission("/crash/f0", 0700).ok());
  auto replayed = Fingerprint(nn1, "/crash");
  auto expected = Fingerprint(onn, "/crash");
  EXPECT_EQ(replayed, expected);
  EXPECT_FALSE(replayed.empty());
}

TEST_F(IntentLogTest, SyncModeNeverTouchesTheLog) {
  MiniClusterOptions options;
  options.db.num_datanodes = 4;
  options.db.replication = 2;
  options.fs.async_metadata_commit = false;
  options.num_namenodes = 1;
  auto cluster = MiniCluster::Start(options);
  ASSERT_TRUE(cluster.ok());
  Namenode& nn = (*cluster)->namenode(0);
  ASSERT_TRUE(nn.Mkdirs("/plain").ok());
  ASSERT_TRUE(nn.Create("/plain/f", "w").ok());
  ASSERT_TRUE(nn.SetPermission("/plain/f", 0700).ok());
  EXPECT_EQ((*cluster)->db().TableRowCount((*cluster)->schema().op_intents), 0u);
  ClusterIntentStats stats = (*cluster)->AggregateIntentStats();
  EXPECT_EQ(stats.log.intents_appended, 0u);
  EXPECT_EQ(stats.log.acked_ops, 0u);
}

}  // namespace
}  // namespace hops::fs
