// Block life-cycle: RUC -> Replica on receipt, block reports, datanode
// failure handling, the replication monitor, and invalidation delivery.
#include <gtest/gtest.h>

#include "hopsfs/mini_cluster.h"

namespace hops::fs {
namespace {

class BlocksTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MiniClusterOptions options;
    options.db.num_datanodes = 4;
    options.db.replication = 2;
    options.db.lock_wait_timeout = std::chrono::milliseconds(300);
    options.num_namenodes = 2;
    options.num_datanodes = 5;
    auto cluster = MiniCluster::Start(options);
    ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
    cluster_ = *std::move(cluster);
    client_ = std::make_unique<Client>(cluster_->NewClient(NamenodePolicy::kSticky, "c1"));
    ASSERT_TRUE(client_->Mkdirs("/data").ok());
  }

  size_t Rows(ndb::TableId t) { return cluster_->db().TableRowCount(t); }

  std::unique_ptr<MiniCluster> cluster_;
  std::unique_ptr<Client> client_;
};

TEST_F(BlocksTest, AddBlockCreatesRucAndLookup) {
  ASSERT_TRUE(client_->CreateFile("/data/f").ok());
  auto blk = client_->AddBlock("/data/f", 100);
  ASSERT_TRUE(blk.ok());
  EXPECT_EQ(blk->locations.size(), 3u);
  EXPECT_EQ(Rows(cluster_->schema().ruc), 3u);
  EXPECT_EQ(Rows(cluster_->schema().block_lookup), 1u);
  EXPECT_EQ(Rows(cluster_->schema().replicas), 0u);
}

TEST_F(BlocksTest, BlockReceivedPromotesRucToReplica) {
  ASSERT_TRUE(client_->CreateFile("/data/f").ok());
  auto blk = client_->AddBlock("/data/f", 100);
  ASSERT_TRUE(blk.ok());
  Namenode& nn = cluster_->namenode(0);
  for (DatanodeId dn : blk->locations) {
    cluster_->FindDatanode(dn)->StoreBlock(blk->block_id);
    ASSERT_TRUE(nn.BlockReceived(dn, blk->block_id).ok());
  }
  EXPECT_EQ(Rows(cluster_->schema().ruc), 0u);
  EXPECT_EQ(Rows(cluster_->schema().replicas), 3u);
}

TEST_F(BlocksTest, StaleBlockReceivedIsIgnored) {
  Namenode& nn = cluster_->namenode(0);
  EXPECT_TRUE(nn.BlockReceived(1, 999999).ok());
  EXPECT_EQ(Rows(cluster_->schema().replicas), 0u);
}

TEST_F(BlocksTest, CompleteFinalizesPendingReplicas) {
  ASSERT_TRUE(client_->CreateFile("/data/f").ok());
  auto blk = client_->AddBlock("/data/f", 100);
  ASSERT_TRUE(blk.ok());
  // No datanode acknowledged; Complete finalizes the pipeline server-side.
  ASSERT_TRUE(client_->CompleteFile("/data/f").ok());
  EXPECT_EQ(Rows(cluster_->schema().ruc), 0u);
  EXPECT_EQ(Rows(cluster_->schema().replicas), 3u);
  auto located = client_->Read("/data/f");
  ASSERT_TRUE(located.ok());
  EXPECT_EQ((*located)[0].locations.size(), 3u);
}

TEST_F(BlocksTest, BlockReportMatchesCleanState) {
  ASSERT_TRUE(client_->CreateFile("/data/f").ok());
  auto blk = client_->AddBlock("/data/f", 100);
  ASSERT_TRUE(blk.ok());
  ASSERT_TRUE(cluster_->PipelineWrite(*blk).ok());
  ASSERT_TRUE(client_->CompleteFile("/data/f").ok());
  DatanodeId dn = blk->locations[0];
  auto report = cluster_->FindDatanode(dn)->GenerateBlockReport();
  auto result = cluster_->namenode(0).ProcessBlockReport(dn, report);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->blocks_matched, 1);
  EXPECT_EQ(result->replicas_added, 0);
  EXPECT_EQ(result->orphans_invalidated, 0);
  EXPECT_EQ(result->replicas_removed, 0);
}

TEST_F(BlocksTest, BlockReportRepairsMissingReplica) {
  ASSERT_TRUE(client_->CreateFile("/data/f").ok());
  auto blk = client_->AddBlock("/data/f", 100);
  ASSERT_TRUE(blk.ok());
  ASSERT_TRUE(cluster_->PipelineWrite(*blk).ok());
  ASSERT_TRUE(client_->CompleteFile("/data/f").ok());
  DatanodeId dn = blk->locations[0];
  // Drop the replica row behind the namenode's back; the report restores it.
  {
    auto file = client_->Stat("/data/f");
    ASSERT_TRUE(file.ok());
    auto tx = cluster_->db().Begin();
    ASSERT_TRUE(tx->Delete(cluster_->schema().replicas,
                           {file->inode_id, blk->block_id, static_cast<int64_t>(dn)})
                    .ok());
    ASSERT_TRUE(tx->Commit().ok());
  }
  auto result = cluster_->namenode(0).ProcessBlockReport(
      dn, cluster_->FindDatanode(dn)->GenerateBlockReport());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->replicas_added, 1);
}

TEST_F(BlocksTest, BlockReportInvalidatesOrphanBlocks) {
  Datanode& dn = cluster_->datanode(0);
  dn.StoreBlock(424242);  // a block the namespace has never heard of
  auto result = cluster_->namenode(0).ProcessBlockReport(dn.id(), dn.GenerateBlockReport());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->orphans_invalidated, 1);
  auto inv = cluster_->namenode(0).FetchInvalidations(dn.id());
  ASSERT_TRUE(inv.ok());
  ASSERT_EQ(inv->size(), 1u);
  EXPECT_EQ((*inv)[0], 424242);
}

TEST_F(BlocksTest, BlockReportDetectsLostReplica) {
  ASSERT_TRUE(client_->CreateFile("/data/f").ok());
  auto blk = client_->AddBlock("/data/f", 100);
  ASSERT_TRUE(blk.ok());
  ASSERT_TRUE(cluster_->PipelineWrite(*blk).ok());
  ASSERT_TRUE(client_->CompleteFile("/data/f").ok());
  DatanodeId dn = blk->locations[0];
  cluster_->FindDatanode(dn)->DropBlock(blk->block_id);  // disk ate it
  auto result = cluster_->namenode(0).ProcessBlockReport(
      dn, cluster_->FindDatanode(dn)->GenerateBlockReport());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->replicas_removed, 1);
  EXPECT_EQ(Rows(cluster_->schema().urb), 1u) << "block is now under-replicated";
}

TEST_F(BlocksTest, DatanodeFailureQueuesReReplication) {
  ASSERT_TRUE(client_->CreateFile("/data/f").ok());
  auto blk = client_->AddBlock("/data/f", 100);
  ASSERT_TRUE(blk.ok());
  ASSERT_TRUE(cluster_->PipelineWrite(*blk).ok());
  ASSERT_TRUE(client_->CompleteFile("/data/f").ok());
  DatanodeId failed = blk->locations[0];
  cluster_->FindDatanode(failed)->Kill();
  auto affected = cluster_->namenode(0).HandleDatanodeFailure(failed);
  ASSERT_TRUE(affected.ok());
  EXPECT_EQ(*affected, 1);
  EXPECT_EQ(Rows(cluster_->schema().replicas), 2u);
  EXPECT_EQ(Rows(cluster_->schema().urb), 1u);

  // The replication monitor schedules a new target (PRB + RUC)...
  auto scheduled = cluster_->namenode(0).RunReplicationMonitor();
  ASSERT_TRUE(scheduled.ok());
  EXPECT_EQ(*scheduled, 1);
  EXPECT_EQ(Rows(cluster_->schema().prb), 1u);
  // ... and once the new datanode acknowledges, the block is healthy again.
  auto prb_rows = [&] {
    auto tx = cluster_->db().Begin();
    return *tx->FullTableScan(cluster_->schema().prb);
  }();
  ASSERT_EQ(prb_rows.size(), 1u);
  DatanodeId new_dn = prb_rows[0][col::kReplicaDatanode].i64();
  cluster_->FindDatanode(new_dn)->StoreBlock(blk->block_id);
  ASSERT_TRUE(cluster_->namenode(0).BlockReceived(new_dn, blk->block_id).ok());
  EXPECT_EQ(Rows(cluster_->schema().replicas), 3u);
  EXPECT_EQ(Rows(cluster_->schema().urb), 0u);
  EXPECT_EQ(Rows(cluster_->schema().prb), 0u);
}

TEST_F(BlocksTest, ReplicationMonitorClearsSatisfiedEntries) {
  ASSERT_TRUE(client_->CreateFile("/data/f").ok());
  auto blk = client_->AddBlock("/data/f", 100);
  ASSERT_TRUE(blk.ok());
  ASSERT_TRUE(cluster_->PipelineWrite(*blk).ok());
  ASSERT_TRUE(client_->CompleteFile("/data/f").ok());
  // Plant a spurious URB row; the monitor should notice the block is fine.
  auto file = client_->Stat("/data/f");
  {
    auto tx = cluster_->db().Begin();
    Replica urb{file->inode_id, blk->block_id, 0, ReplicaState::kFinalized};
    ASSERT_TRUE(tx->Insert(cluster_->schema().urb, ToRow(urb)).ok());
    ASSERT_TRUE(tx->Commit().ok());
  }
  auto scheduled = cluster_->namenode(0).RunReplicationMonitor();
  ASSERT_TRUE(scheduled.ok());
  EXPECT_EQ(*scheduled, 0);
  EXPECT_EQ(Rows(cluster_->schema().urb), 0u);
}

TEST_F(BlocksTest, MultiBlockFileKeepsBlockOrder) {
  ASSERT_TRUE(client_->CreateFile("/data/f").ok());
  std::vector<BlockId> ids;
  for (int i = 0; i < 4; ++i) {
    auto blk = client_->AddBlock("/data/f", 10 * (i + 1));
    ASSERT_TRUE(blk.ok());
    EXPECT_EQ(blk->block_index, i);
    ids.push_back(blk->block_id);
  }
  ASSERT_TRUE(client_->CompleteFile("/data/f").ok());
  auto located = client_->Read("/data/f");
  ASSERT_TRUE(located.ok());
  ASSERT_EQ(located->size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ((*located)[static_cast<size_t>(i)].block_id, ids[static_cast<size_t>(i)]);
    EXPECT_EQ((*located)[static_cast<size_t>(i)].num_bytes, 10 * (i + 1));
  }
  auto st = client_->Stat("/data/f");
  EXPECT_EQ(st->size, 10 + 20 + 30 + 40);
}

TEST_F(BlocksTest, DeleteUnderConstructionFileCleansRuc) {
  ASSERT_TRUE(client_->CreateFile("/data/f").ok());
  ASSERT_TRUE(client_->AddBlock("/data/f", 100).ok());
  ASSERT_TRUE(client_->Delete("/data/f", false).ok());
  EXPECT_EQ(Rows(cluster_->schema().ruc), 0u);
  EXPECT_EQ(Rows(cluster_->schema().blocks), 0u);
  EXPECT_EQ(Rows(cluster_->schema().leases), 0u);
}

}  // namespace
}  // namespace hops::fs
