// Cluster topology, partition routing, node groups, failure semantics and
// memory accounting of the NDB substrate.
#include <gtest/gtest.h>

#include "ndb/cluster.h"

namespace hops::ndb {
namespace {

Schema KvSchema(std::string name = "kv") {
  Schema s;
  s.table_name = std::move(name);
  s.columns = {{"k", ColumnType::kInt64}, {"v", ColumnType::kString}};
  s.primary_key = {0};
  s.partition_key = {0};
  return s;
}

TEST(SchemaTest, ValidatesPartitionKeySubsetOfPk) {
  Schema s = KvSchema();
  s.partition_key = {1};  // "v" is not part of the PK
  std::string error;
  EXPECT_FALSE(s.Validate(&error));
  EXPECT_NE(error.find("partition key"), std::string::npos);
}

TEST(SchemaTest, RejectsMissingPk) {
  Schema s = KvSchema();
  s.primary_key = {};
  std::string error;
  EXPECT_FALSE(s.Validate(&error));
}

TEST(SchemaTest, ExplicitPartitioningNeedsNoPartitionKey) {
  Schema s = KvSchema();
  s.partition_key = {};
  s.requires_explicit_partition = true;
  std::string error;
  EXPECT_TRUE(s.Validate(&error)) << error;
}

TEST(ClusterTest, NodeGroupLayout) {
  Cluster c(ClusterConfig{.num_datanodes = 12, .replication = 2});
  EXPECT_EQ(c.num_node_groups(), 6u);
  EXPECT_EQ(c.num_partitions(), 24u);
  EXPECT_EQ(c.NumAliveNodes(), 12u);
  EXPECT_TRUE(c.Available());
}

TEST(ClusterTest, PartitionRoutingIsStable) {
  Cluster c(ClusterConfig{.num_datanodes = 4, .replication = 2});
  for (uint64_t v = 0; v < 100; ++v) {
    EXPECT_EQ(c.PartitionForValue(v), c.PartitionForValue(v));
    EXPECT_LT(c.PartitionForValue(v), c.num_partitions());
  }
}

TEST(ClusterTest, SurvivesSingleNodeFailurePerGroup) {
  // Paper §7.6.2: a 12-node cluster with R=2 tolerates 6 failures in
  // disjoint node groups.
  Cluster c(ClusterConfig{.num_datanodes = 12, .replication = 2});
  for (uint32_t g = 0; g < 6; ++g) c.KillDatanode(g * 2);
  EXPECT_EQ(c.NumAliveNodes(), 6u);
  EXPECT_TRUE(c.Available());
}

TEST(ClusterTest, WholeGroupFailureBringsClusterDown) {
  Cluster c(ClusterConfig{.num_datanodes = 4, .replication = 2});
  c.KillDatanode(0);
  EXPECT_TRUE(c.Available());
  c.KillDatanode(1);  // both members of group 0
  EXPECT_FALSE(c.Available());
  c.RestartDatanode(0);
  EXPECT_TRUE(c.Available());
}

TEST(ClusterTest, PrimaryNodeFailsOverWithinGroup) {
  Cluster c(ClusterConfig{.num_datanodes = 4, .replication = 2});
  // Find a partition whose group is group 0 (nodes 0 and 1).
  uint32_t partition = 0;
  bool found = false;
  for (uint32_t p = 0; p < c.num_partitions(); ++p) {
    if (p % c.num_node_groups() == 0) {
      partition = p;
      found = true;
      break;
    }
  }
  ASSERT_TRUE(found);
  ASSERT_EQ(c.PrimaryNode(partition), 0u);
  c.KillDatanode(0);
  EXPECT_EQ(c.PrimaryNode(partition), 1u);
  c.KillDatanode(1);
  EXPECT_FALSE(c.PrimaryNode(partition).has_value());
}

TEST(ClusterTest, ReplicationDegreeThree) {
  Cluster c(ClusterConfig{.num_datanodes = 6, .replication = 3});
  EXPECT_EQ(c.num_node_groups(), 2u);
  c.KillDatanode(0);
  c.KillDatanode(1);
  EXPECT_TRUE(c.Available());  // node 2 still carries group 0
  c.KillDatanode(2);
  EXPECT_FALSE(c.Available());
}

TEST(ClusterTest, CreateTableRejectsInvalidSchema) {
  Cluster c(ClusterConfig{.num_datanodes = 2, .replication = 2});
  Schema s = KvSchema();
  s.primary_key = {5};
  auto r = c.CreateTable(s);
  EXPECT_FALSE(r.ok());
}

TEST(ClusterTest, FindTableByName) {
  Cluster c(ClusterConfig{.num_datanodes = 2, .replication = 2});
  auto t1 = c.CreateTable(KvSchema("alpha"));
  auto t2 = c.CreateTable(KvSchema("beta"));
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(t2.ok());
  EXPECT_EQ(c.FindTable("alpha"), *t1);
  EXPECT_EQ(c.FindTable("beta"), *t2);
  EXPECT_FALSE(c.FindTable("gamma").has_value());
}

TEST(ClusterTest, MemoryAccountingGrowsWithRowsAndReplication) {
  ClusterConfig cfg{.num_datanodes = 2, .replication = 2};
  Cluster c(cfg);
  auto t = c.CreateTable(KvSchema());
  ASSERT_TRUE(t.ok());
  size_t empty = c.TableMemoryBytes(*t);
  auto tx = c.Begin();
  for (int64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(tx->Insert(*t, Row{i, std::string(100, 'x')}).ok());
  }
  ASSERT_TRUE(tx->Commit().ok());
  size_t filled = c.TableMemoryBytes(*t);
  EXPECT_EQ(c.TableRowCount(*t), 100u);
  // >= 100 rows * (100B payload + overhead) * R=2
  EXPECT_GT(filled - empty, 100u * 100u * 2u);
}

TEST(ClusterTest, GlobalCheckpointEpochAdvances) {
  Cluster c(ClusterConfig{.num_datanodes = 2, .replication = 2});
  auto t = c.CreateTable(KvSchema());
  ASSERT_TRUE(t.ok());
  uint64_t epoch0 = c.GlobalCheckpointEpoch();
  for (int64_t i = 0; i < 300; ++i) {
    auto tx = c.Begin();
    ASSERT_TRUE(tx->Insert(*t, Row{i, "v"}).ok());
    ASSERT_TRUE(tx->Commit().ok());
  }
  EXPECT_GT(c.GlobalCheckpointEpoch(), epoch0);
}

TEST(ClusterTest, CoordinatorPlacementFollowsHint) {
  Cluster c(ClusterConfig{.num_datanodes = 4, .replication = 2});
  auto t = c.CreateTable(KvSchema());
  ASSERT_TRUE(t.ok());
  // Distribution-aware transaction: the coordinator must be the primary node
  // of the hinted partition.
  for (uint64_t v = 0; v < 32; ++v) {
    auto tx = c.Begin(TxHint{*t, v});
    uint32_t partition = c.PartitionForValue(v);
    EXPECT_EQ(tx->coordinator(), c.PrimaryNode(partition).value());
  }
}

TEST(ClusterTest, CoordinatorAvoidsDeadNodesWithoutHint) {
  Cluster c(ClusterConfig{.num_datanodes = 4, .replication = 2});
  c.KillDatanode(2);
  for (int i = 0; i < 16; ++i) {
    auto tx = c.Begin();
    EXPECT_NE(tx->coordinator(), 2u);
  }
}

}  // namespace
}  // namespace hops::ndb
